package sweep

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hermes"
)

// mixCfg is the canonical 2-class sweep configuration the class tests
// share: the registry's mixed trace (80% heavy-tailed batch, 20%
// small latency-critical) at one over-knee rate.
func mixCfg(dispatch string, quantum time.Duration) Config {
	return Config{
		Workload:       tinySpec(),
		Trace:          "mix",
		Modes:          []hermes.Mode{hermes.Unified},
		RatesRPS:       []float64{800},
		Window:         100 * time.Millisecond,
		Seed:           7,
		Workers:        2,
		Dispatch:       dispatch,
		PreemptQuantum: quantum,
	}
}

// TestSweepFIFOByteCompat is the refactor's compatibility pin: an
// unclassed sweep under the default dispatch must emit byte-identical
// JSON whether dispatch is unset, named "fifo", or predates the class
// dimension entirely — no dispatch, classes or quantum keys may
// appear.
func TestSweepFIFOByteCompat(t *testing.T) {
	cfg := Config{
		Workload: tinySpec(),
		Modes:    []hermes.Mode{hermes.Baseline, hermes.Unified},
		RatesRPS: []float64{200, 800},
		Window:   50 * time.Millisecond,
		Seed:     7,
		Workers:  2,
	}
	unset, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dispatch = "fifo"
	named, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(unset)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(named)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("dispatch \"\" vs \"fifo\" diverged:\n%s\nvs\n%s", ja, jb)
	}
	for _, key := range []string{`"dispatch"`, `"classes"`, `"preempt_quantum_ms"`, `"tenant"`} {
		if strings.Contains(string(ja), key) {
			t.Fatalf("unclassed fifo artifact leaked %s:\n%s", key, ja)
		}
	}
	if unset.Classed() {
		t.Fatal("unclassed sweep reported Classed()")
	}
	if unset.ClassCSV() != "" {
		t.Fatal("unclassed sweep rendered a class CSV")
	}
}

// TestSweepMixedTraceClassAccounting: a mixed trace must yield
// per-class rows whose counts fold back into the flat point, with SLO
// fields only on the class that declared a target.
func TestSweepMixedTraceClassAccounting(t *testing.T) {
	res, err := Run(mixCfg("", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Classed() {
		t.Fatal("mixed sweep not Classed()")
	}
	p := res.Curves[0].Points[0]
	if len(p.Classes) != 2 {
		t.Fatalf("want 2 class rows, got %d: %+v", len(p.Classes), p.Classes)
	}
	var arrivals, completed int64
	byTenant := map[string]ClassPoint{}
	for _, c := range p.Classes {
		arrivals += c.Arrivals
		completed += c.Completed
		byTenant[c.Tenant] = c
	}
	if arrivals != p.Arrivals || completed != p.Completed {
		t.Fatalf("class rows (%d arrivals, %d completed) do not fold into the point (%d, %d)",
			arrivals, completed, p.Arrivals, p.Completed)
	}
	lc, ok := byTenant["lc"]
	if !ok || lc.Priority != 1 {
		t.Fatalf("missing latency-critical row: %+v", p.Classes)
	}
	if lc.SLOTargetMS == nil || *lc.SLOTargetMS != 5 || lc.SLOAttainment == nil {
		t.Fatalf("lc row lost its SLO fields: %+v", lc)
	}
	if *lc.SLOAttainment < 0 || *lc.SLOAttainment > 1 {
		t.Fatalf("SLO attainment out of range: %v", *lc.SLOAttainment)
	}
	batch, ok := byTenant["batch"]
	if !ok || batch.SLOTargetMS != nil || batch.SLOAttainment != nil {
		t.Fatalf("batch row should carry no SLO fields: %+v", batch)
	}
	// Ranked rows lead: priority 1 sorts before priority 0.
	if p.Classes[0].Tenant != "lc" {
		t.Fatalf("class rows out of order: %+v", p.Classes)
	}
	csv := res.ClassCSV()
	if !strings.HasPrefix(csv, "mode,offered_rps,tenant,priority,") {
		t.Fatalf("class CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, ",lc,1,") || !strings.Contains(csv, ",batch,0,") {
		t.Fatalf("class CSV missing rows:\n%s", csv)
	}
}

// TestSweepClassedDeterministicArtifact: the class dimension must not
// cost determinism — two identical mixed sweeps under a ranked,
// preempting policy emit byte-identical JSON.
func TestSweepClassedDeterministicArtifact(t *testing.T) {
	cfg := mixCfg("edf", 50*time.Microsecond)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("identical classed sweeps diverged:\n%s\nvs\n%s", ja, jb)
	}
	if a.Dispatch != "edf" || a.PreemptQuantumMS != 0.05 {
		t.Fatalf("artifact lost its dispatch header: dispatch=%q quantum=%vms", a.Dispatch, a.PreemptQuantumMS)
	}
	if a.ClassCSV() != b.ClassCSV() {
		t.Fatal("class CSV renderings of identical sweeps differ")
	}
}

// lcP99 digs the latency-critical class's p99 sojourn out of the
// single-point result.
func lcP99(t *testing.T, res Result) (p99, flatJoules float64) {
	t.Helper()
	p := res.Curves[0].Points[0]
	for _, c := range p.Classes {
		if c.Tenant == "lc" {
			return c.P99SojournMS, p.JoulesPerRequest
		}
	}
	t.Fatalf("no lc class row in %+v", p.Classes)
	return 0, 0
}

// TestRankedDispatchCutsLCTailAtEqualEnergy is the PR's headline
// acceptance pin (the figure-28 claim): on the mixed trace past the
// knee, priority and EDF dispatch give the latency-critical class a
// strictly lower p99 sojourn than FIFO, at approximately equal
// joules/request — the win is reordering, not added energy.
func TestRankedDispatchCutsLCTailAtEqualEnergy(t *testing.T) {
	fifo, err := Run(mixCfg("", 0))
	if err != nil {
		t.Fatal(err)
	}
	fifoP99, fifoJ := lcP99(t, fifo)
	for _, dispatch := range []string{"priority", "edf"} {
		ranked, err := Run(mixCfg(dispatch, 50*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		p99, joules := lcP99(t, ranked)
		if p99 >= fifoP99 {
			t.Fatalf("%s: lc p99 %.3fms not strictly below fifo's %.3fms", dispatch, p99, fifoP99)
		}
		if ratio := joules / fifoJ; ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("%s: joules/request moved %.1f%% vs fifo (%.4f vs %.4f); want ~equal",
				dispatch, (ratio-1)*100, joules, fifoJ)
		}
	}
}

package sweep

import (
	"encoding/json"
	"testing"
	"time"

	"hermes"
	"hermes/internal/workload"
)

// TestClusterSweepDeterministicArtifact is the cluster acceptance pin:
// two runs of the same (machines, placement, seed, trace) grid yield
// byte-identical JSON artifacts.
func TestClusterSweepDeterministicArtifact(t *testing.T) {
	cfg := ClusterConfig{
		Workload: tinySpec(),
		Mode:     hermes.Unified,
		Policies: []hermes.Placement{hermes.PlacementPowerOfChoices(2), hermes.PlacementGossip(0, 0, 0)},
		Machines: []int{2, 3},
		RatesRPS: []float64{400},
		Window:   30 * time.Millisecond,
		Seed:     7,
		Workers:  2,
	}
	a, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("cluster sweep artifact not byte-identical across identical runs")
	}
	if len(a.Curves) != 4 {
		t.Fatalf("grid shape: %d curves, want 2 policies × 2 machine counts", len(a.Curves))
	}
	for _, c := range a.Curves {
		for _, p := range c.Points {
			if p.Completed == 0 || p.Errors != 0 {
				t.Fatalf("%s ×%d: completed %d, errors %d", c.Policy, c.Machines, p.Completed, p.Errors)
			}
			if len(p.PerMachine) != c.Machines {
				t.Fatalf("%s ×%d: %d per-machine rows", c.Policy, c.Machines, len(p.PerMachine))
			}
		}
	}
	if a.CSV() != b.CSV() {
		t.Fatal("cluster sweep CSV not byte-identical across identical runs")
	}
}

// TestClusterSweepPolicySeparation is the consolidation acceptance
// pin at the sweep layer: on the SAME low-rate trace over the same
// fleet, p2c with the idle-machine heap leaves strictly more machines
// fully idle than load-blind random placement, and spends strictly
// fewer fleet joules per request — collisions under random queue jobs
// behind busy machines while idle ones burn their floor draw.
func TestClusterSweepPolicySeparation(t *testing.T) {
	cfg := ClusterConfig{
		Workload: workload.Spec{Kind: "ticks", N: 128, Grain: 4, Work: 200_000},
		Mode:     hermes.Unified,
		Policies: []hermes.Placement{hermes.PlacementPowerOfChoices(2), hermes.PlacementRandom()},
		Machines: []int{6},
		RatesRPS: []float64{300, 600},
		Window:   40 * time.Millisecond,
		Seed:     11,
		Workers:  2,
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("want 2 curves, got %d", len(res.Curves))
	}
	p2c, random := res.Curves[0], res.Curves[1]
	// Low rate: the idle-machine heap leaves strictly more machines
	// fully parked than load-blind spreading.
	if a, b := p2c.Points[0], random.Points[0]; a.IdleMachines <= b.IdleMachines {
		t.Fatalf("p2c did not consolidate: %d idle machines vs random's %d at %g rps",
			a.IdleMachines, b.IdleMachines, a.OfferedRPS)
	}
	// At every rate on the same trace, consolidation spends fewer fleet
	// joules per request and keeps the tail shorter: random's placement
	// collisions queue jobs behind busy machines while idle ones burn
	// their floor draw, stretching both the window and the tail.
	for i := range p2c.Points {
		a, b := p2c.Points[i], random.Points[i]
		if a.Completed != b.Completed {
			t.Fatalf("policies served different traces at %g rps: %d vs %d completed",
				a.OfferedRPS, a.Completed, b.Completed)
		}
		if a.FleetJoulesPerRequest >= b.FleetJoulesPerRequest {
			t.Fatalf("p2c did not save fleet energy at %g rps: %.4f J/req vs random's %.4f",
				a.OfferedRPS, a.FleetJoulesPerRequest, b.FleetJoulesPerRequest)
		}
		if a.P99SojournMS >= b.P99SojournMS {
			t.Fatalf("p2c did not shorten the tail at %g rps: p99 %.3fms vs random's %.3fms",
				a.OfferedRPS, a.P99SojournMS, b.P99SojournMS)
		}
	}
}

// TestClusterSweepGossipMigrates: at a rate with real contention, the
// gossip tier actually moves jobs between machines, and the artifact
// records it.
func TestClusterSweepGossipMigrates(t *testing.T) {
	cfg := ClusterConfig{
		Workload: tinySpec(),
		Mode:     hermes.Unified,
		Policies: []hermes.Placement{hermes.PlacementGossip(100*hermes.Microsecond, 0, 0)},
		Machines: []int{3},
		RatesRPS: []float64{1500},
		Window:   30 * time.Millisecond,
		Seed:     5,
		Workers:  2,
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt := res.Curves[0].Points[0]
	if pt.Errors != 0 || pt.Completed != pt.Arrivals {
		t.Fatalf("gossip lost jobs: %d arrivals, %d completed, %d errors", pt.Arrivals, pt.Completed, pt.Errors)
	}
	if pt.Migrated == 0 {
		t.Fatal("gossip never migrated a job at a contended rate")
	}
	var perMachine int64
	for _, m := range pt.PerMachine {
		perMachine += m.Migrated
	}
	if perMachine != pt.Migrated {
		t.Fatalf("migration ledger inconsistent: point %d, per-machine sum %d", pt.Migrated, perMachine)
	}
}

// TestClusterSweepRejects covers the grid validation surface.
func TestClusterSweepRejects(t *testing.T) {
	base := ClusterConfig{
		Workload: tinySpec(),
		Mode:     hermes.Unified,
		Policies: []hermes.Placement{hermes.PlacementJSQ()},
		Machines: []int{2},
		RatesRPS: []float64{100},
		Window:   10 * time.Millisecond,
	}
	bad := base
	bad.Policies = nil
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("no policies accepted")
	}
	bad = base
	bad.Machines = []int{0}
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("zero machines accepted")
	}
	bad = base
	bad.RatesRPS = []float64{-1}
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("negative rate accepted")
	}
	bad = base
	bad.Window = 0
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("zero window accepted")
	}
	bad = base
	bad.Policies = []hermes.Placement{{Kind: "spray"}}
	if _, err := RunCluster(bad); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

package sweep

import (
	"fmt"

	"hermes"
	"hermes/internal/units"
)

// ReplayConfig parameterizes one arrival-trace replay on a throwaway
// Sim pool.
type ReplayConfig struct {
	Mode    hermes.Mode
	Workers int // 0 = backend default
	Seed    int64
	// Log, when non-nil, receives a diagnostic line per failed job.
	Log func(string)
}

// Replay is the measured outcome of replaying one arrival trace
// through a fresh simulated machine: the deterministic prediction the
// /capacity digital twin returns. A fixed (config, trace) pair
// reproduces it exactly.
type Replay struct {
	Arrivals     int64   `json:"arrivals"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	PeakInflight int64   `json:"peak_inflight"`
	MakespanS    float64 `json:"makespan_s"`
	// OfferedRPS is arrivals over the trace's arrival span; ObservedRPS
	// is completions over the makespan.
	OfferedRPS  float64 `json:"offered_rps"`
	ObservedRPS float64 `json:"observed_rps"`

	P50SojournMS float64 `json:"p50_sojourn_ms"`
	P95SojournMS float64 `json:"p95_sojourn_ms"`
	P99SojournMS float64 `json:"p99_sojourn_ms"`
	MaxSojournMS float64 `json:"max_sojourn_ms"`
	P99QueueMS   float64 `json:"p99_queue_ms"`

	JoulesPerRequest float64 `json:"joules_per_request"`
	AvgPowerW        float64 `json:"avg_power_w"`
}

// ReplayTrace replays an explicit arrival trace through a fresh
// virtual-time Sim pool and measures the open-system outcome — the
// primitive under both the sweep's generated grid points and the
// serving layer's /capacity endpoint, which replays a captured (and
// rate-scaled) production trace to predict behaviour at traffic the
// machine has not yet seen. Arrival times must be non-negative and
// ascending.
func ReplayTrace(cfg ReplayConfig, arrivals []hermes.Arrival) (Replay, error) {
	var out Replay
	if len(arrivals) == 0 {
		return out, fmt.Errorf("sweep: replay: empty arrival trace")
	}
	for i, a := range arrivals {
		if a.At < 0 {
			return out, fmt.Errorf("sweep: replay: arrival %d at negative time %v", i, a.At)
		}
		if i > 0 && a.At < arrivals[i-1].At {
			return out, fmt.Errorf("sweep: replay: arrivals not ascending at %d", i)
		}
	}
	ropts := []hermes.Option{
		hermes.WithBackend(hermes.Sim),
		hermes.WithMode(cfg.Mode),
		hermes.WithSeed(cfg.Seed),
	}
	if cfg.Workers > 0 {
		ropts = append(ropts, hermes.WithWorkers(cfg.Workers))
	}
	rt, err := hermes.New(ropts...)
	if err != nil {
		return out, err
	}
	jobs, err := rt.SubmitTrace(nil, arrivals)
	if err != nil {
		rt.Close()
		return out, err
	}
	out.Arrivals = int64(len(arrivals))
	var (
		sojourns, queues []units.Time
		spans            []Span
		makespan         units.Time
		jobJoules        float64
	)
	for i, j := range jobs {
		rep, err := j.Wait()
		done := arrivals[i].At + rep.Sojourn
		spans = append(spans, Span{Arrive: arrivals[i].At, Done: done})
		if done > makespan {
			makespan = done
		}
		if err != nil {
			out.Errors++
			if cfg.Log != nil {
				cfg.Log(fmt.Sprintf("sweep: replay: job %d failed: %v", j.ID(), err))
			}
			continue
		}
		sojourns = append(sojourns, rep.Sojourn)
		q := rep.Sojourn - rep.Span
		if q < 0 {
			q = 0
		}
		queues = append(queues, q)
		jobJoules += rep.EnergyJ
	}
	if err := rt.Close(); err != nil {
		return out, err
	}
	ms, err := rt.MachineStats()
	if err != nil {
		return out, err
	}
	out.Completed = int64(len(sojourns))
	out.PeakInflight = PeakInflight(spans)
	out.MakespanS = makespan.Seconds()
	if span := arrivals[len(arrivals)-1].At - arrivals[0].At; span > 0 {
		out.OfferedRPS = float64(len(arrivals)) / span.Seconds()
	}
	if out.MakespanS > 0 {
		out.ObservedRPS = float64(out.Completed) / out.MakespanS
	}
	sortTimes(sojourns)
	sortTimes(queues)
	out.P50SojournMS = pctMS(sojourns, 0.50)
	out.P95SojournMS = pctMS(sojourns, 0.95)
	out.P99SojournMS = pctMS(sojourns, 0.99)
	out.MaxSojournMS = pctMS(sojourns, 1)
	out.P99QueueMS = pctMS(queues, 0.99)
	if out.Completed > 0 {
		out.JoulesPerRequest = jobJoules / float64(out.Completed)
	}
	if s := ms.Elapsed.Seconds(); s > 0 {
		out.AvgPowerW = ms.EnergyJ / s
	}
	return out, nil
}

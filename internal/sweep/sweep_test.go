package sweep

import (
	"encoding/json"
	"testing"
	"time"

	"hermes"
	"hermes/internal/units"
	"hermes/internal/workload"
)

// tinySpec is a workload small enough that a grid point completes in
// milliseconds of wall time while still forking parallel tasks.
func tinySpec() workload.Spec {
	return workload.Spec{Kind: "ticks", N: 16, Grain: 4, Work: 50_000}
}

func TestTraceSeededAndBounded(t *testing.T) {
	spec := tinySpec()
	a, err := Trace(spec, 500, 100*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Trace(spec, 500, 100*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	horizon := units.Time((100 * time.Millisecond).Nanoseconds()) * units.Nanosecond
	for i := range a {
		if a[i].At != b[i].At {
			t.Fatalf("arrival %d at %v vs %v with the same seed", i, a[i].At, b[i].At)
		}
		if a[i].At <= 0 || a[i].At > horizon {
			t.Fatalf("arrival %d outside (0, window]: %v", i, a[i].At)
		}
	}
	c, err := Trace(spec, 500, 100*time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) && c[0].At == a[0].At {
		t.Fatal("different seeds produced an identical trace")
	}
	if _, err := Trace(spec, 0, time.Second, 1); err == nil {
		t.Error("rps=0 accepted")
	}
	if _, err := Trace(spec, 100, 0, 1); err == nil {
		t.Error("window=0 accepted")
	}
}

// TestSweepDeterministicArtifact is the acceptance pin: the same
// config and seed must yield byte-identical JSON artifacts across two
// full grid runs (2 modes × 2 rates here; CI diffs a larger grid).
func TestSweepDeterministicArtifact(t *testing.T) {
	cfg := Config{
		Workload: tinySpec(),
		Modes:    []hermes.Mode{hermes.Baseline, hermes.Unified},
		RatesRPS: []float64{200, 800},
		Window:   50 * time.Millisecond,
		Seed:     7,
		Workers:  2,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("identical sweeps diverged:\n%s\nvs\n%s", ja, jb)
	}
	if len(a.Curves) != 2 {
		t.Fatalf("want 2 curves, got %d", len(a.Curves))
	}
	for _, c := range a.Curves {
		if len(c.Points) != 2 {
			t.Fatalf("mode %s: want 2 points, got %d", c.Mode, len(c.Points))
		}
		for _, p := range c.Points {
			if p.Arrivals == 0 || p.Completed != p.Arrivals || p.Errors != 0 {
				t.Fatalf("mode %s @ %g rps lost requests: %+v", c.Mode, p.OfferedRPS, p)
			}
			if p.P50SojournMS <= 0 || p.JoulesPerRequest <= 0 || p.AvgPowerW <= 0 {
				t.Fatalf("mode %s @ %g rps degenerate point: %+v", c.Mode, p.OfferedRPS, p)
			}
			if len(p.Tiers) == 0 {
				t.Fatalf("mode %s @ %g rps has no DVFS-tier residency", c.Mode, p.OfferedRPS)
			}
			var frac float64
			for _, tier := range p.Tiers {
				frac += tier.Frac
			}
			if frac < 0.999 || frac > 1.001 {
				t.Fatalf("tier residency fractions sum to %g", frac)
			}
		}
		if c.UnloadedP50MS != c.Points[0].P50SojournMS {
			t.Fatalf("unloaded p50 %g != lowest-rate p50 %g", c.UnloadedP50MS, c.Points[0].P50SojournMS)
		}
	}
	// The artifact's CSV must be derivable and non-trivial too.
	csv := a.CSV()
	if csv != b.CSV() {
		t.Fatal("CSV renderings of identical sweeps differ")
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV")
	}
}

// TestSweepModeSeparation: at the same offered load, Unified must
// spend busy time below the max frequency (slow-tier residency) while
// Baseline never does — the curves are genuinely mode-separated.
func TestSweepModeSeparation(t *testing.T) {
	cfg := Config{
		Workload: workload.Spec{Kind: "fib", N: 14, Grain: 6, Work: 30_000},
		Modes:    []hermes.Mode{hermes.Baseline, hermes.Unified},
		RatesRPS: []float64{400},
		Window:   50 * time.Millisecond,
		Seed:     3,
		Workers:  4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slowFrac := func(c Curve) float64 {
		var f float64
		max := c.Points[0].Tiers[0].FreqKHz
		for _, tier := range c.Points[0].Tiers {
			if tier.FreqKHz > max {
				max = tier.FreqKHz
			}
		}
		for _, tier := range c.Points[0].Tiers {
			if tier.FreqKHz < max {
				f += tier.Frac
			}
		}
		return f
	}
	var base, uni Curve
	for _, c := range res.Curves {
		switch c.Mode {
		case "baseline":
			base = c
		case "hermes":
			uni = c
		}
	}
	if f := slowFrac(base); f != 0 {
		t.Errorf("baseline spent %.3f of busy time below max frequency", f)
	}
	if f := slowFrac(uni); f <= 0 {
		t.Error("unified shows no slow-tier residency; tempo control never engaged")
	}
}

func TestKneeSyntheticCurve(t *testing.T) {
	rates := []float64{50, 100, 200, 400}
	cases := []struct {
		name     string
		p99      []float64
		unloaded float64
		factor   float64
		want     float64
	}{
		{"hockey stick", []float64{2.1, 2.4, 3.0, 30}, 2.0, 5, 400},
		{"earlier knee", []float64{2.1, 2.4, 11, 30}, 2.0, 5, 200},
		{"no knee", []float64{2.1, 2.4, 3.0, 9.9}, 2.0, 5, 0},
		{"knee at first rate", []float64{25, 30, 40, 50}, 2.0, 5, 50},
		{"degenerate baseline", []float64{2.1, 2.4, 3.0, 30}, 0, 5, 0},
		{"tighter factor", []float64{2.1, 2.4, 3.0, 30}, 2.0, 1.4, 200},
	}
	for _, c := range cases {
		if got := Knee(rates, c.p99, c.unloaded, c.factor); got != c.want {
			t.Errorf("%s: knee = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestPeakInflightTieAndNesting(t *testing.T) {
	ms := func(x int64) units.Time { return units.Time(x) * units.Millisecond }
	cases := []struct {
		name  string
		spans []Span
		want  int64
	}{
		{"empty", nil, 0},
		{"disjoint", []Span{{ms(0), ms(1)}, {ms(2), ms(3)}}, 1},
		{"nested", []Span{{ms(0), ms(10)}, {ms(1), ms(2)}, {ms(3), ms(4)}}, 2},
		{"stacked", []Span{{ms(0), ms(10)}, {ms(1), ms(9)}, {ms(2), ms(8)}}, 3},
		// An arrival exactly at another job's completion instant counts
		// before the departure: depth 2, not 1.
		{"tie arrival first", []Span{{ms(0), ms(5)}, {ms(5), ms(9)}}, 2},
	}
	for _, c := range cases {
		if got := PeakInflight(c.spans); got != c.want {
			t.Errorf("%s: peak = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestPeakInflightCountsQueuedJobs is the regression pin for the
// in-flight-depth bugfix: under a queueing-heavy trace (one worker,
// offered load far above capacity) the measured depth must count jobs
// from arrival — queued-but-unstarted included — and match an
// independent brute-force reconstruction from the per-job reports.
func TestPeakInflightCountsQueuedJobs(t *testing.T) {
	cfg := PointConfig{
		Workload: workload.Spec{Kind: "ticks", N: 64, Grain: 8, Work: 100_000},
		Mode:     hermes.Unified,
		RPS:      2000,
		Window:   50 * time.Millisecond,
		Seed:     7,
		Workers:  1,
	}
	pt, err := RunPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Errors != 0 || pt.Completed != pt.Arrivals {
		t.Fatalf("lost requests: %+v", pt)
	}
	// Independent reconstruction: replay the same seed through the
	// public API and sweep the (arrival, completion) intervals.
	arrivals, err := Trace(cfg.Workload, cfg.RPS, cfg.Window, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Sim),
		hermes.WithMode(cfg.Mode),
		hermes.WithSeed(cfg.Seed),
		hermes.WithWorkers(cfg.Workers),
	)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := rt.SubmitTrace(nil, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	var spans []Span
	for i, j := range jobs {
		rep, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, Span{Arrive: arrivals[i].At, Done: arrivals[i].At + rep.Sojourn})
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	want := PeakInflight(spans)
	if pt.PeakInflight != want {
		t.Fatalf("point peak in-flight %d != brute-force arrival→completion depth %d", pt.PeakInflight, want)
	}
	// Under ~100 arrivals in the window against a single worker whose
	// service time alone exceeds the interarrival gap 5×, the backlog
	// must dominate: an executing-jobs-only count could never reach it.
	if pt.PeakInflight < pt.Arrivals/2 {
		t.Fatalf("peak in-flight %d does not reflect the queue (%d arrivals, 1 worker)", pt.PeakInflight, pt.Arrivals)
	}
	if pt.P99QueueMS <= 0 || pt.P99SojournMS <= pt.P50SojournMS {
		t.Fatalf("queueing not visible in latency percentiles: %+v", pt)
	}
}

package sweep

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hermes"
	"hermes/internal/units"
	"hermes/internal/workload"
)

func f64(v float64) *float64 { return &v }

// modelResult builds a minimal two-mode artifact for model tests:
// baseline knees at 200 rps, unified at 400, and unified is cheaper
// per request at low rates.
func modelResult() Result {
	rates := []float64{50, 100, 200, 400}
	mk := func(mode string, joules []float64, knee *float64, reason string) Curve {
		c := Curve{Mode: mode, UnloadedP50MS: 2, KneeRPS: knee, KneeReason: reason}
		for i, r := range rates {
			c.Points = append(c.Points, Point{OfferedRPS: r, JoulesPerRequest: joules[i]})
		}
		return c
	}
	return Result{
		Workload:   workload.Spec{Kind: "ticks"},
		RatesRPS:   rates,
		KneeFactor: 5,
		Curves: []Curve{
			mk("baseline", []float64{0.5, 0.5, 0.6, 0.9}, f64(200), ""),
			mk("unified", []float64{0.3, 0.35, 0.7, 1.0}, f64(400), ""),
		},
	}
}

func TestModelLookups(t *testing.T) {
	m, err := ModelFromResult(modelResult())
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := m.Knee("baseline"); !ok || k != 200 {
		t.Fatalf("baseline knee = %g, %v; want 200, true", k, ok)
	}
	if _, ok := m.Knee("nope"); ok {
		t.Fatal("knee for unknown mode should report !ok")
	}
	if got := m.KneeLatencyMS("unified"); got != 10 {
		t.Fatalf("knee latency = %g, want 10 (5 × 2ms)", got)
	}
	// Interpolation: halfway between 100 and 200 for unified.
	if j, ok := m.JoulesPerRequestAt("unified", 150); !ok || math.Abs(j-0.525) > 1e-9 {
		t.Fatalf("J/req at 150 = %g, %v; want 0.525", j, ok)
	}
	// Clamp below and above the grid.
	if j, _ := m.JoulesPerRequestAt("baseline", 1); j != 0.5 {
		t.Fatalf("J/req below grid = %g, want 0.5", j)
	}
	if j, _ := m.JoulesPerRequestAt("baseline", 9999); j != 0.9 {
		t.Fatalf("J/req above grid = %g, want 0.9", j)
	}
}

func TestModelBestMode(t *testing.T) {
	m, err := ModelFromResult(modelResult())
	if err != nil {
		t.Fatal(err)
	}
	// At 60 rps both modes sustain; unified is cheaper (0.31 vs 0.52).
	if mode, ok := m.BestMode(60); !ok || mode != "unified" {
		t.Fatalf("best mode at 60 = %q, want unified", mode)
	}
	// At 300 rps only unified's knee (400) exceeds the load.
	if mode, _ := m.BestMode(300); mode != "unified" {
		t.Fatalf("best mode at 300 = %q, want unified", mode)
	}
	// Past every knee: the mode with the most headroom wins.
	if mode, _ := m.BestMode(1000); mode != "unified" {
		t.Fatalf("best mode at 1000 = %q, want unified", mode)
	}
}

func TestModelRejectsStaleArtifacts(t *testing.T) {
	good := modelResult()
	cases := []struct {
		name string
		mut  func(*Result)
	}{
		{"no rates", func(r *Result) { r.RatesRPS = nil }},
		{"no curves", func(r *Result) { r.Curves = nil }},
		{"point count mismatch", func(r *Result) { r.Curves[0].Points = r.Curves[0].Points[:2] }},
		{"duplicate mode", func(r *Result) { r.Curves[1].Mode = r.Curves[0].Mode }},
		{"unsorted grid", func(r *Result) { r.RatesRPS[0], r.RatesRPS[1] = r.RatesRPS[1], r.RatesRPS[0] }},
		{"zero knee factor", func(r *Result) { r.KneeFactor = 0 }},
	}
	for _, c := range cases {
		res := good
		res.RatesRPS = append([]float64(nil), good.RatesRPS...)
		res.Curves = make([]Curve, len(good.Curves))
		copy(res.Curves, good.Curves)
		c.mut(&res)
		if _, err := ModelFromResult(res); err == nil {
			t.Errorf("%s: ModelFromResult accepted a stale artifact", c.name)
		}
	}
}

func TestLoadModelRoundTrip(t *testing.T) {
	res := modelResult()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "SWEEP_sim.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Path != path {
		t.Fatalf("model path = %q, want %q", m.Path, path)
	}
	if k, ok := m.Knee("unified"); !ok || k != 400 {
		t.Fatalf("loaded knee = %g, %v; want 400", k, ok)
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("LoadModel on a missing file should error")
	}
}

func TestDetectKneeNullSemantics(t *testing.T) {
	// Single-rate grid: no slope to detect, knee must be null with the
	// single-rate reason — not a zero-value knee (the -sweep bugfix).
	k, reason := DetectKnee([]float64{100}, []float64{50}, 2, 5)
	if k != nil || reason != KneeReasonSingleRate {
		t.Fatalf("single-rate knee = %v (%q), want nil + single-rate reason", k, reason)
	}
	// No crossing inside the grid.
	k, reason = DetectKnee([]float64{50, 100}, []float64{2.1, 2.4}, 2, 5)
	if k != nil || reason != KneeReasonNoCrossing {
		t.Fatalf("no-crossing knee = %v (%q), want nil + no-crossing reason", k, reason)
	}
	// Zero baseline.
	k, reason = DetectKnee([]float64{50, 100}, []float64{0, 0}, 0, 5)
	if k != nil || reason != KneeReasonNoBaseline {
		t.Fatalf("zero-baseline knee = %v (%q), want nil + no-baseline reason", k, reason)
	}
	// Resolved knee.
	k, reason = DetectKnee([]float64{50, 100, 200}, []float64{2.1, 2.4, 30}, 2, 5)
	if k == nil || *k != 200 || reason != "" {
		t.Fatalf("resolved knee = %v (%q), want 200", k, reason)
	}
}

func TestSingleRateSweepEmitsNullKnee(t *testing.T) {
	res, err := Run(Config{
		Workload: workload.Spec{Kind: "ticks", N: 8, Grain: 4, Work: 50_000},
		Modes:    []hermes.Mode{hermes.Baseline},
		RatesRPS: []float64{100},
		Window:   50 * time.Millisecond,
		Seed:     7,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Curves[0]
	if c.KneeRPS != nil {
		t.Fatalf("single-rate sweep knee = %g, want null", *c.KneeRPS)
	}
	if c.KneeReason != KneeReasonSingleRate {
		t.Fatalf("knee reason = %q, want %q", c.KneeReason, KneeReasonSingleRate)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if v, present := raw["knee_rps"]; !present || v != nil {
		t.Fatalf("knee_rps JSON = %v, want explicit null", v)
	}
}

func TestReplayTraceDeterministic(t *testing.T) {
	spec := workload.Spec{Kind: "ticks", N: 16, Grain: 4, Work: 100_000}
	mkTrace := func() []hermes.Arrival {
		var arrivals []hermes.Arrival
		for i := 0; i < 40; i++ {
			task, _, err := spec.Task()
			if err != nil {
				t.Fatal(err)
			}
			arrivals = append(arrivals, hermes.Arrival{
				At:   units.Time(i) * 2 * units.Millisecond,
				Task: task,
			})
		}
		return arrivals
	}
	cfg := ReplayConfig{Mode: hermes.Unified, Workers: 2, Seed: 7}
	a, err := ReplayTrace(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayTrace(cfg, mkTrace())
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("replay not deterministic:\n%s\n%s", aj, bj)
	}
	if a.Completed != 40 || a.Errors != 0 {
		t.Fatalf("completed %d / errors %d, want 40 / 0", a.Completed, a.Errors)
	}
	if a.P99SojournMS <= 0 || a.JoulesPerRequest <= 0 {
		t.Fatalf("degenerate replay: %+v", a)
	}
	// Validation: empty and descending traces are rejected.
	if _, err := ReplayTrace(cfg, nil); err == nil {
		t.Fatal("empty trace should error")
	}
	tr := mkTrace()
	tr[1].At = 0
	tr[0].At = units.Millisecond
	if _, err := ReplayTrace(cfg, tr); err == nil {
		t.Fatal("descending trace should error")
	}
}

package sweep

import (
	"encoding/json"
	"fmt"
	"os"

	"hermes/internal/workload"
)

// Model is a sweep artifact (Result) loaded as a calibrated capacity
// model: the serving control plane's lookup table. Where the sweep
// answers "what does this machine do at rate r in mode m?" offline,
// the model answers the controller's online questions — what arrival
// rate knees the current mode, what p99 bound defines that knee, and
// which mode serves an observed rate for the fewest joules per
// request.
//
// A Model is immutable after construction and safe for concurrent
// use.
type Model struct {
	// Path is the artifact file the model was loaded from ("" when
	// built in-process from a Result).
	Path string

	res Result
}

// LoadModel reads a sweep JSON artifact (the hermes-bench -sweep
// -json output) and validates it into a capacity model.
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: model: %w", err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("sweep: model %s: %w", path, err)
	}
	m, err := ModelFromResult(res)
	if err != nil {
		return nil, fmt.Errorf("sweep: model %s: %w", path, err)
	}
	m.Path = path
	return m, nil
}

// ModelFromResult validates a sweep Result into a capacity model: it
// must carry at least one curve, every curve one point per grid rate,
// and an ascending rate grid — anything less is a stale or truncated
// artifact a controller must not calibrate against.
func ModelFromResult(res Result) (*Model, error) {
	if len(res.RatesRPS) == 0 {
		return nil, fmt.Errorf("no rate grid")
	}
	for i, r := range res.RatesRPS {
		if r <= 0 {
			return nil, fmt.Errorf("non-positive grid rate %g", r)
		}
		if i > 0 && r <= res.RatesRPS[i-1] {
			return nil, fmt.Errorf("rate grid not ascending at %g", r)
		}
	}
	if len(res.Curves) == 0 {
		return nil, fmt.Errorf("no curves")
	}
	if res.KneeFactor <= 0 {
		return nil, fmt.Errorf("non-positive knee factor %g", res.KneeFactor)
	}
	seen := map[string]bool{}
	for _, c := range res.Curves {
		if seen[c.Mode] {
			return nil, fmt.Errorf("duplicate curve for mode %q", c.Mode)
		}
		seen[c.Mode] = true
		if len(c.Points) != len(res.RatesRPS) {
			return nil, fmt.Errorf("mode %q has %d points for a %d-rate grid",
				c.Mode, len(c.Points), len(res.RatesRPS))
		}
	}
	return &Model{res: res}, nil
}

// Result returns the underlying sweep artifact.
func (m *Model) Result() Result { return m.res }

// Workload returns the workload spec the model was calibrated with.
func (m *Model) Workload() workload.Spec { return m.res.Workload }

// KneeFactor returns the knee threshold multiple the artifact was
// computed with (p99 > KneeFactor × unloaded p50 defines the knee).
func (m *Model) KneeFactor() float64 { return m.res.KneeFactor }

// Modes lists the tempo modes the model carries curves for, in
// artifact order.
func (m *Model) Modes() []string {
	out := make([]string, len(m.res.Curves))
	for i, c := range m.res.Curves {
		out[i] = c.Mode
	}
	return out
}

// MaxRate returns the highest calibrated grid rate: beyond it the
// model extrapolates by clamping.
func (m *Model) MaxRate() float64 { return m.res.RatesRPS[len(m.res.RatesRPS)-1] }

// curve returns the curve for mode, or nil.
func (m *Model) curve(mode string) *Curve {
	for i := range m.res.Curves {
		if m.res.Curves[i].Mode == mode {
			return &m.res.Curves[i]
		}
	}
	return nil
}

// HasMode reports whether the model carries a curve for mode.
func (m *Model) HasMode(mode string) bool { return m.curve(mode) != nil }

// Knee returns mode's calibrated knee rate. ok is false when the model
// has no curve for mode or the curve's knee did not resolve (null in
// the artifact).
func (m *Model) Knee(mode string) (rps float64, ok bool) {
	c := m.curve(mode)
	if c == nil {
		return 0, false
	}
	return c.Knee()
}

// KneeLatencyMS returns the p99 sojourn bound (milliseconds) whose
// crossing defines mode's knee: KneeFactor × the mode's unloaded p50.
// This is the controller's latency trip wire — the live analogue of
// the offline knee test. Returns 0 when the model has no curve for
// mode or no unloaded baseline.
func (m *Model) KneeLatencyMS(mode string) float64 {
	c := m.curve(mode)
	if c == nil || c.UnloadedP50MS <= 0 {
		return 0
	}
	return m.res.KneeFactor * c.UnloadedP50MS
}

// JoulesPerRequestAt returns mode's calibrated joules/request at
// offered rate rps, linearly interpolated between grid rates and
// clamped at the grid's ends. ok is false when the model has no curve
// for mode.
func (m *Model) JoulesPerRequestAt(mode string, rps float64) (float64, bool) {
	c := m.curve(mode)
	if c == nil {
		return 0, false
	}
	rates := m.res.RatesRPS
	if rps <= rates[0] {
		return c.Points[0].JoulesPerRequest, true
	}
	last := len(rates) - 1
	if rps >= rates[last] {
		return c.Points[last].JoulesPerRequest, true
	}
	for i := 1; i <= last; i++ {
		if rps <= rates[i] {
			frac := (rps - rates[i-1]) / (rates[i] - rates[i-1])
			lo, hi := c.Points[i-1].JoulesPerRequest, c.Points[i].JoulesPerRequest
			return lo + frac*(hi-lo), true
		}
	}
	return c.Points[last].JoulesPerRequest, true
}

// BestMode returns the energy-optimal tempo mode for offered rate rps:
// among modes whose calibrated knee exceeds rps (they can sustain the
// load without kneeing), the one with the lowest interpolated
// joules/request; when no mode sustains rps, the one with the highest
// knee (most latency headroom). Modes whose knee did not resolve are
// considered only when no mode has a resolved knee at all — then the
// first curve wins by artifact order, keeping the choice
// deterministic. ok is false only for a model with no curves (which
// ModelFromResult rejects, so in practice never).
func (m *Model) BestMode(rps float64) (mode string, ok bool) {
	var (
		bestSustain  string
		bestSustainJ float64
		bestKnee     string
		bestKneeRPS  float64
	)
	for _, c := range m.res.Curves {
		k, resolved := c.Knee()
		if !resolved {
			continue
		}
		if k > bestKneeRPS {
			bestKnee, bestKneeRPS = c.Mode, k
		}
		if k > rps {
			j, _ := m.JoulesPerRequestAt(c.Mode, rps)
			if bestSustain == "" || j < bestSustainJ {
				bestSustain, bestSustainJ = c.Mode, j
			}
		}
	}
	switch {
	case bestSustain != "":
		return bestSustain, true
	case bestKnee != "":
		return bestKnee, true
	case len(m.res.Curves) > 0:
		return m.res.Curves[0].Mode, true
	}
	return "", false
}

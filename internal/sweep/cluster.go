package sweep

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hermes"
	"hermes/internal/fault"
	"hermes/internal/trace"
	"hermes/internal/units"
	"hermes/internal/workload"
)

// ClusterConfig describes a cluster sweep: a (placement policy ×
// machine count × arrival rate) grid under one workload and tempo
// mode. Every (rate, trial) cell replays the SAME seeded trace through
// every policy and fleet size, so curves differ only by placement —
// the experiment the fleet-consolidation claim rests on.
type ClusterConfig struct {
	Workload workload.Spec
	// Trace names the arrival process from the internal/trace registry
	// ("" = poisson).
	Trace string
	// Faults names the fault plans from the internal/fault registry to
	// sweep over ("" or "none" = fault-free). Empty means a single
	// fault-free pass — the pre-chaos artifact, byte for byte.
	Faults     []string
	Mode       hermes.Mode
	Policies   []hermes.Placement
	Machines   []int // fleet sizes; ascending preferred
	RatesRPS   []float64
	Window     time.Duration
	Seed       int64
	Trials     int
	Workers    int // per machine; 0 = backend default
	KneeFactor float64
	// Dispatch names the intake dispatch policy every machine runs
	// ("" or "fifo" = arrival order, "priority", "edf").
	Dispatch string
	// PreemptQuantum caps uninterrupted execution under a ranked
	// dispatch policy (0 = jobs run to completion once started).
	PreemptQuantum time.Duration
	// Log, when non-nil, receives one progress line per completed point.
	Log func(string)
}

// MachinePoint is one machine's share of a grid point, summed over
// trials — the per-machine consolidation picture: which machines the
// policy actually woke, how much energy each drew, and how often one
// stayed entirely idle.
type MachinePoint struct {
	Machine  int   `json:"machine"`
	Placed   int64 `json:"placed"`
	Migrated int64 `json:"migrated"`
	Tasks    int64 `json:"tasks"`
	Steals   int64 `json:"steals"`
	// EnergyJ is the machine's integrated draw over the fleet window
	// (idle floor included); BusyFrac its busy core-time over
	// workers × elapsed.
	EnergyJ  float64 `json:"energy_j"`
	BusyFrac float64 `json:"busy_frac"`
	// IdleTrials counts trials in which this machine executed no task
	// at all — parked in the lowest DVFS tier for the whole run.
	IdleTrials int `json:"idle_trials"`
}

// ClusterPoint is the measured outcome of one (policy, machines, rate)
// grid point, pooled over trials.
type ClusterPoint struct {
	OfferedRPS   float64 `json:"offered_rps"`
	Arrivals     int64   `json:"arrivals"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	PeakInflight int64   `json:"peak_inflight"`
	MakespanS    float64 `json:"makespan_s"`
	ObservedRPS  float64 `json:"observed_rps"`

	P50SojournMS float64 `json:"p50_sojourn_ms"`
	P95SojournMS float64 `json:"p95_sojourn_ms"`
	P99SojournMS float64 `json:"p99_sojourn_ms"`
	MaxSojournMS float64 `json:"max_sojourn_ms"`
	P50QueueMS   float64 `json:"p50_queue_ms"`
	P95QueueMS   float64 `json:"p95_queue_ms"`
	P99QueueMS   float64 `json:"p99_queue_ms"`

	// FleetJoulesPerRequest divides the WHOLE fleet's energy — idle
	// machines' floor draw included, every machine charged over the
	// same virtual window — by completed jobs: the quantity placement
	// policies compete on.
	FleetJoulesPerRequest float64 `json:"fleet_joules_per_request"`
	FleetAvgPowerW        float64 `json:"fleet_avg_power_w"`
	StealsPerRequest      float64 `json:"steals_per_request"`
	Migrated              int64   `json:"migrated"`
	// IdleMachines counts (machine, trial) pairs where the machine ran
	// no task: Trials × Machines at zero load, 0 when every machine
	// woke in every trial.
	IdleMachines int64 `json:"idle_machines"`

	// Availability ledger, summed over trials. All zero (and omitted
	// from JSON) on fault-free points, so pre-chaos artifacts keep
	// their byte-exact shape. Availability is completed over
	// completed+lost; DowntimeS total machine-seconds of crash
	// downtime across the fleet.
	Crashes      int64   `json:"crashes,omitempty"`
	Rejoins      int64   `json:"rejoins,omitempty"`
	Retries      int64   `json:"retries,omitempty"`
	Lost         int64   `json:"lost,omitempty"`
	Availability float64 `json:"availability,omitempty"`
	DowntimeS    float64 `json:"downtime_s,omitempty"`

	PerMachine []MachinePoint `json:"per_machine"`
	// Tiers is fleet-wide DVFS residency (share of busy core-time per
	// frequency), fastest first.
	Tiers []Tier `json:"tiers"`

	// Classes breaks the point down per service class when the trace
	// is mixed; absent (omitted from JSON) for unclassed traces, so
	// single-class artifacts keep their byte-exact shape.
	Classes []ClassPoint `json:"classes,omitempty"`
}

// ClusterCurve is one (policy, machines) combination's curve over the
// rate grid.
type ClusterCurve struct {
	Policy   string `json:"policy"`
	Machines int    `json:"machines"`
	// Faults is the curve's fault plan, normalized so the fault-free
	// default stays "" (byte-stable pre-chaos artifacts).
	Faults        string  `json:"faults,omitempty"`
	UnloadedP50MS float64 `json:"unloaded_p50_ms"`
	// KneeRPS is null when no knee resolved (single-rate grid, no
	// crossing); KneeReason says why — same semantics as Curve.
	KneeRPS    *float64       `json:"knee_rps"`
	KneeReason string         `json:"knee_reason,omitempty"`
	Points     []ClusterPoint `json:"points"`
}

// Knee returns the curve's resolved knee rate, reporting false when
// knee detection could not resolve one (KneeRPS is null).
func (c ClusterCurve) Knee() (float64, bool) {
	if c.KneeRPS == nil {
		return 0, false
	}
	return *c.KneeRPS, true
}

// ClusterResult is the cluster sweep artifact: one curve per (policy,
// machine count), policy-major. Deterministic for a fixed config.
type ClusterResult struct {
	Workload workload.Spec `json:"workload"`
	// Trace is the arrival process, normalized so the default poisson
	// process stays "" (byte-stable poisson-era artifacts).
	Trace      string    `json:"trace,omitempty"`
	Mode       string    `json:"mode"`
	Policies   []string  `json:"policies"`
	Machines   []int     `json:"machines"`
	RatesRPS   []float64 `json:"rates_rps"`
	WindowS    float64   `json:"window_s"`
	Seed       int64     `json:"seed"`
	Trials     int       `json:"trials"`
	Workers    int       `json:"workers"`
	KneeFactor float64   `json:"knee_factor"`
	// FaultPlans lists the swept fault plans by registered name; nil
	// when the sweep was entirely fault-free (pre-chaos artifact shape).
	FaultPlans []string `json:"fault_plans,omitempty"`
	// Dispatch is the intake policy, normalized so the default FIFO
	// stays "" — pre-dispatch artifacts keep their byte-exact shape.
	// PreemptQuantumMS is the ranked-dispatch quantum, 0 (omitted) when
	// jobs run to completion.
	Dispatch         string         `json:"dispatch,omitempty"`
	PreemptQuantumMS float64        `json:"preempt_quantum_ms,omitempty"`
	Curves           []ClusterCurve `json:"curves"`
}

// clusterTrialOut is one cluster trial's raw measurements.
type clusterTrialOut struct {
	arrivals int64
	errors   int64
	sojourns []units.Time
	queues   []units.Time
	spans    []Span
	steals   int64
	makespan units.Time
	stats    hermes.ClusterStats
	workers  int
	// classes holds per-service-class raw measurements, keyed by the
	// full class value; empty for unclassed traces.
	classes map[hermes.Class]*classAcc
}

// classOf returns the trial's accumulator for class c, creating it on
// first use.
func (out *clusterTrialOut) classOf(c hermes.Class) *classAcc {
	if out.classes == nil {
		out.classes = map[hermes.Class]*classAcc{}
	}
	acc := out.classes[c]
	if acc == nil {
		acc = &classAcc{}
		out.classes[c] = acc
	}
	return acc
}

// runClusterTrial replays one seeded trace through a fresh Cluster,
// injecting plan's fault schedule compiled for the same seed.
func runClusterTrial(cfg ClusterConfig, plan string, policy hermes.Placement, machines int, rps float64, seed int64) (clusterTrialOut, error) {
	var out clusterTrialOut
	arrivals, err := TraceArrivals(cfg.Workload, cfg.Trace, rps, cfg.Window, seed)
	if err != nil {
		return out, err
	}
	dispatch, err := hermes.ParseDispatch(cfg.Dispatch)
	if err != nil {
		return out, err
	}
	copts := []hermes.Option{
		hermes.WithMachines(machines),
		hermes.WithPlacement(policy),
		hermes.WithMode(cfg.Mode),
		hermes.WithSeed(seed),
	}
	if dispatch != hermes.DispatchFIFO {
		copts = append(copts, hermes.WithDispatch(dispatch))
	}
	if cfg.PreemptQuantum > 0 {
		copts = append(copts, hermes.WithPreemptQuantum(units.Time(cfg.PreemptQuantum)*units.Nanosecond))
	}
	if fault.Canonical(plan) != "" {
		horizon := units.Time(cfg.Window.Nanoseconds()) * units.Nanosecond
		evs, err := fault.Compile(plan, seed, machines, horizon)
		if err != nil {
			return out, err
		}
		copts = append(copts, hermes.WithFaults(evs...))
	}
	if cfg.Workers > 0 {
		copts = append(copts, hermes.WithWorkers(cfg.Workers))
	}
	c, err := hermes.NewCluster(copts...)
	if err != nil {
		return out, err
	}
	out.workers = c.Config().Workers
	jobs, err := c.SubmitTrace(nil, arrivals)
	if err != nil {
		c.Close()
		return out, err
	}
	out.arrivals = int64(len(arrivals))
	mixed := false
	for _, a := range arrivals {
		if !a.Class.IsZero() {
			mixed = true
			break
		}
	}
	for i, j := range jobs {
		rep, err := j.Wait()
		// Failed jobs count toward depth and makespan but not latency
		// or steals — same convention as the single-machine sweep.
		done := arrivals[i].At + rep.Sojourn
		out.spans = append(out.spans, Span{Arrive: arrivals[i].At, Done: done})
		if done > out.makespan {
			out.makespan = done
		}
		var acc *classAcc
		if mixed {
			acc = out.classOf(arrivals[i].Class)
			acc.arrivals++
		}
		if err != nil {
			out.errors++
			if acc != nil {
				acc.errors++
			}
			if cfg.Log != nil {
				cfg.Log(fmt.Sprintf("sweep: cluster job %d failed: %v", j.ID(), err))
			}
			continue
		}
		out.sojourns = append(out.sojourns, rep.Sojourn)
		q := rep.Sojourn - rep.Span
		if q < 0 {
			q = 0
		}
		out.queues = append(out.queues, q)
		out.steals += rep.Steals
		if acc != nil {
			acc.sojourns = append(acc.sojourns, rep.Sojourn)
			acc.jobJoules += rep.EnergyJ
			if t := arrivals[i].Class.SLOTarget; t > 0 && rep.Sojourn <= t {
				acc.sloMet++
			}
		}
	}
	if err := c.Close(); err != nil {
		return out, err
	}
	out.stats = c.ClusterStats()
	return out, nil
}

// runClusterPoint measures one (plan, policy, machines, rate) grid
// point over cfg.Trials seeded traces.
func runClusterPoint(cfg ClusterConfig, plan string, policy hermes.Placement, machines int, rps float64) (ClusterPoint, error) {
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	pt := ClusterPoint{
		OfferedRPS: rps,
		PerMachine: make([]MachinePoint, machines),
	}
	for m := range pt.PerMachine {
		pt.PerMachine[m].Machine = m
	}
	var (
		sojourns, queues []units.Time
		fleetJ           float64
		fleetElapsed     units.Time
		tierBusy         = map[units.Freq]units.Time{}
		totalBusy        units.Time
		steals           int64
		makespan         units.Time
	)
	var (
		lost     int64
		downtime units.Time
		classes  = map[hermes.Class]*classAcc{}
	)
	for trial := 0; trial < trials; trial++ {
		out, err := runClusterTrial(cfg, plan, policy, machines, rps, cfg.Seed+int64(trial))
		if err != nil {
			return ClusterPoint{}, err
		}
		for c, acc := range out.classes {
			pool := classes[c]
			if pool == nil {
				pool = &classAcc{}
				classes[c] = pool
			}
			pool.arrivals += acc.arrivals
			pool.errors += acc.errors
			pool.sojourns = append(pool.sojourns, acc.sojourns...)
			pool.jobJoules += acc.jobJoules
			pool.sloMet += acc.sloMet
		}
		pt.Crashes += out.stats.Crashes
		pt.Rejoins += out.stats.Rejoins
		pt.Retries += out.stats.Retries
		lost += out.stats.Lost
		for _, d := range out.stats.Downtime {
			downtime += d
		}
		pt.Arrivals += out.arrivals
		pt.Errors += out.errors
		pt.Completed += int64(len(out.sojourns))
		if p := PeakInflight(out.spans); p > pt.PeakInflight {
			pt.PeakInflight = p
		}
		sojourns = append(sojourns, out.sojourns...)
		queues = append(queues, out.queues...)
		makespan += out.makespan
		steals += out.steals
		st := out.stats
		fleetJ += st.EnergyJ
		fleetElapsed += st.Elapsed
		for m, ms := range st.Machines {
			mp := &pt.PerMachine[m]
			mp.Placed += st.Placed[m]
			mp.Migrated += st.Migrated[m]
			mp.Tasks += ms.Tasks
			mp.Steals += ms.Steals
			mp.EnergyJ += ms.EnergyJ
			pt.Migrated += st.Migrated[m]
			if ms.Tasks == 0 {
				mp.IdleTrials++
				pt.IdleMachines++
			}
			totalBusy += ms.Busy
			for f, d := range ms.FreqBusy {
				tierBusy[f] += d
			}
			if w := out.workers; w > 0 && st.Elapsed > 0 {
				mp.BusyFrac += float64(ms.Busy) / (float64(st.Elapsed) * float64(w))
			}
		}
	}
	// BusyFrac accumulated one share per trial; average them.
	for m := range pt.PerMachine {
		pt.PerMachine[m].BusyFrac /= float64(trials)
	}
	sortTimes(sojourns)
	sortTimes(queues)
	pt.MakespanS = makespan.Seconds()
	if pt.MakespanS > 0 {
		pt.ObservedRPS = float64(pt.Completed) / pt.MakespanS
	}
	pt.P50SojournMS = pctMS(sojourns, 0.50)
	pt.P95SojournMS = pctMS(sojourns, 0.95)
	pt.P99SojournMS = pctMS(sojourns, 0.99)
	pt.MaxSojournMS = pctMS(sojourns, 1)
	pt.P50QueueMS = pctMS(queues, 0.50)
	pt.P95QueueMS = pctMS(queues, 0.95)
	pt.P99QueueMS = pctMS(queues, 0.99)
	if pt.Completed > 0 {
		pt.FleetJoulesPerRequest = fleetJ / float64(pt.Completed)
		pt.StealsPerRequest = float64(steals) / float64(pt.Completed)
	}
	// Availability and downtime only appear on chaos points: a
	// fault-free point's availability is trivially 1 and writing it
	// would reshape the pre-chaos artifact.
	if fault.Canonical(plan) != "" {
		pt.Lost = lost
		pt.DowntimeS = downtime.Seconds()
		if pt.Completed+lost > 0 {
			pt.Availability = float64(pt.Completed) / float64(pt.Completed+lost)
		}
	}
	if s := fleetElapsed.Seconds(); s > 0 {
		pt.FleetAvgPowerW = fleetJ / s
	}
	freqs := make([]units.Freq, 0, len(tierBusy))
	for f := range tierBusy {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	for _, f := range freqs {
		tier := Tier{FreqKHz: int64(f), BusyS: tierBusy[f].Seconds()}
		if totalBusy > 0 {
			tier.Frac = float64(tierBusy[f]) / float64(totalBusy)
		}
		pt.Tiers = append(pt.Tiers, tier)
	}
	pt.Classes = classPoints(classes)
	return pt, nil
}

// RunCluster executes the whole (policy × machines × rate) grid and
// assembles the artifact.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) {
	spec, err := cfg.Workload.Validate()
	if err != nil {
		return ClusterResult{}, err
	}
	cfg.Workload = spec
	if _, err := trace.Resolve(cfg.Trace); err != nil {
		return ClusterResult{}, err
	}
	dispatch, err := hermes.ParseDispatch(cfg.Dispatch)
	if err != nil {
		return ClusterResult{}, err
	}
	if cfg.PreemptQuantum < 0 {
		return ClusterResult{}, fmt.Errorf("sweep: preempt quantum must be non-negative, got %v", cfg.PreemptQuantum)
	}
	plans := cfg.Faults
	if len(plans) == 0 {
		plans = []string{""}
	}
	chaos := false
	for _, plan := range plans {
		if _, err := fault.Resolve(plan); err != nil {
			return ClusterResult{}, err
		}
		if fault.Canonical(plan) != "" {
			chaos = true
		}
	}
	if len(cfg.Policies) == 0 {
		return ClusterResult{}, fmt.Errorf("sweep: no placement policies given")
	}
	if len(cfg.Machines) == 0 {
		return ClusterResult{}, fmt.Errorf("sweep: no machine counts given")
	}
	for _, n := range cfg.Machines {
		if n < 1 {
			return ClusterResult{}, fmt.Errorf("sweep: machine counts must be positive, got %d", n)
		}
	}
	if len(cfg.RatesRPS) == 0 {
		return ClusterResult{}, fmt.Errorf("sweep: no arrival rates given")
	}
	rates := append([]float64(nil), cfg.RatesRPS...)
	sort.Float64s(rates)
	for _, r := range rates {
		if r <= 0 {
			return ClusterResult{}, fmt.Errorf("sweep: rates must be positive, got %g", r)
		}
	}
	if cfg.Window <= 0 {
		return ClusterResult{}, fmt.Errorf("sweep: window must be positive, got %v", cfg.Window)
	}
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	factor := cfg.KneeFactor
	if factor == 0 {
		factor = DefaultKneeFactor
	}
	if factor < 0 {
		return ClusterResult{}, fmt.Errorf("sweep: knee factor must be positive, got %g", factor)
	}
	res := ClusterResult{
		Workload:   cfg.Workload,
		Trace:      trace.Canonical(cfg.Trace),
		Mode:       cfg.Mode.String(),
		Machines:   append([]int(nil), cfg.Machines...),
		RatesRPS:   rates,
		WindowS:    cfg.Window.Seconds(),
		Seed:       cfg.Seed,
		Trials:     trials,
		Workers:    cfg.Workers,
		KneeFactor: factor,
		Dispatch:   CanonicalDispatch(dispatch),
	}
	if cfg.PreemptQuantum > 0 {
		res.PreemptQuantumMS = float64(cfg.PreemptQuantum) / float64(time.Millisecond)
	}
	if chaos {
		for _, plan := range plans {
			p, _ := fault.Resolve(plan)
			res.FaultPlans = append(res.FaultPlans, p.Name)
		}
	}
	// Plans outermost: every fault plan replays the full (policy ×
	// machines × rate) grid over the SAME seeded traces, so curves
	// differ only by injected faults.
	for planIdx, plan := range plans {
		for _, p := range cfg.Policies {
			v, err := p.Validate()
			if err != nil {
				return ClusterResult{}, err
			}
			if planIdx == 0 {
				res.Policies = append(res.Policies, v.String())
			}
			for _, machines := range cfg.Machines {
				curve := ClusterCurve{Policy: v.String(), Machines: machines, Faults: fault.Canonical(plan)}
				var p99s []float64
				for _, rate := range rates {
					pt, err := runClusterPoint(cfg, plan, v, machines, rate)
					if err != nil {
						return ClusterResult{}, fmt.Errorf("sweep: %s ×%d @ %g rps (faults %q): %w", v, machines, rate, plan, err)
					}
					curve.Points = append(curve.Points, pt)
					p99s = append(p99s, pt.P99SojournMS)
					if cfg.Log != nil {
						line := fmt.Sprintf("cluster %s ×%d @ %g rps: p50=%.3fms p99=%.3fms fleetJ/req=%.4f idle=%d migr=%d",
							v, machines, rate, pt.P50SojournMS, pt.P99SojournMS,
							pt.FleetJoulesPerRequest, pt.IdleMachines, pt.Migrated)
						if f := fault.Canonical(plan); f != "" {
							line += fmt.Sprintf(" [%s: crashes=%d retries=%d lost=%d avail=%.4f]",
								f, pt.Crashes, pt.Retries, pt.Lost, pt.Availability)
						}
						cfg.Log(line)
					}
				}
				curve.UnloadedP50MS = curve.Points[0].P50SojournMS
				curve.KneeRPS, curve.KneeReason = DetectKnee(rates, p99s, curve.UnloadedP50MS, factor)
				res.Curves = append(res.Curves, curve)
			}
		}
	}
	return res, nil
}

// CSV renders the cluster sweep flat, one row per (policy, machines,
// rate) point, with per-machine consolidation packed as
// machine:placed:migrated:energy tuples.
func (r ClusterResult) CSV() string {
	var b strings.Builder
	b.WriteString("policy,machines,faults,offered_rps,arrivals,completed,errors,peak_inflight,observed_rps," +
		"p50_sojourn_ms,p95_sojourn_ms,p99_sojourn_ms,max_sojourn_ms," +
		"p50_queue_ms,p95_queue_ms,p99_queue_ms," +
		"fleet_joules_per_request,fleet_avg_power_w,steals_per_request,migrated,idle_machines," +
		"crashes,rejoins,retries,lost,availability,downtime_s,knee_rps,per_machine\n")
	for _, c := range r.Curves {
		faults := c.Faults
		if faults == "" {
			faults = "none"
		}
		for _, p := range c.Points {
			per := make([]string, len(p.PerMachine))
			for i, m := range p.PerMachine {
				per[i] = fmt.Sprintf("%d:%d:%d:%.6f", m.Machine, m.Placed, m.Migrated, m.EnergyJ)
			}
			// Fault-free points never set Availability (keeps the JSON
			// artifact byte-stable); in the flat CSV render it as the 1
			// it trivially is.
			avail := p.Availability
			if c.Faults == "" && p.Completed > 0 {
				avail = 1
			}
			fmt.Fprintf(&b, "%s,%d,%s,%g,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.8f,%.6f,%.6f,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%s,%s\n",
				c.Policy, c.Machines, faults, p.OfferedRPS, p.Arrivals, p.Completed, p.Errors, p.PeakInflight, p.ObservedRPS,
				p.P50SojournMS, p.P95SojournMS, p.P99SojournMS, p.MaxSojournMS,
				p.P50QueueMS, p.P95QueueMS, p.P99QueueMS,
				p.FleetJoulesPerRequest, p.FleetAvgPowerW, p.StealsPerRequest, p.Migrated, p.IdleMachines,
				p.Crashes, p.Rejoins, p.Retries, p.Lost, avail, p.DowntimeS, kneeCSV(c.KneeRPS),
				strings.Join(per, ";"))
		}
	}
	return b.String()
}

// Classed reports whether any point in the result carries per-class
// rows — true only for mixed traces.
func (r ClusterResult) Classed() bool {
	for _, c := range r.Curves {
		for _, p := range c.Points {
			if len(p.Classes) > 0 {
				return true
			}
		}
	}
	return false
}

// ClassCSV renders the per-class breakdown flat, one row per
// (policy, machines, rate, class). Empty string when the result has no
// class rows.
func (r ClusterResult) ClassCSV() string {
	if !r.Classed() {
		return ""
	}
	var b strings.Builder
	b.WriteString("policy,machines,offered_rps,tenant,priority,arrivals,completed,errors," +
		"p50_sojourn_ms,p95_sojourn_ms,p99_sojourn_ms," +
		"slo_target_ms,slo_attainment,joules_per_request\n")
	for _, c := range r.Curves {
		for _, p := range c.Points {
			for _, cp := range p.Classes {
				target, attain := "", ""
				if cp.SLOTargetMS != nil {
					target = fmt.Sprintf("%g", *cp.SLOTargetMS)
				}
				if cp.SLOAttainment != nil {
					attain = fmt.Sprintf("%.6f", *cp.SLOAttainment)
				}
				fmt.Fprintf(&b, "%s,%d,%g,%s,%d,%d,%d,%d,%.6f,%.6f,%.6f,%s,%s,%.8f\n",
					c.Policy, c.Machines, p.OfferedRPS, cp.Tenant, cp.Priority,
					cp.Arrivals, cp.Completed, cp.Errors,
					cp.P50SojournMS, cp.P95SojournMS, cp.P99SojournMS,
					target, attain, cp.JoulesPerRequest)
			}
		}
	}
	return b.String()
}

// String renders the cluster sweep as one compact table per curve.
func (r ClusterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster sweep: %s, mode=%s, window=%.3gs, seed=%d, trials=%d, workers/machine=%d\n",
		r.Workload, r.Mode, r.WindowS, r.Seed, r.Trials, r.Workers)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "policy %s × %d machines", c.Policy, c.Machines)
		if c.Faults != "" {
			fmt.Fprintf(&b, " [faults %s]", c.Faults)
		}
		fmt.Fprintf(&b, " (unloaded p50 %.3fms", c.UnloadedP50MS)
		if k, ok := c.Knee(); ok {
			fmt.Fprintf(&b, ", knee @ %g rps ×%g", k, r.KneeFactor)
		} else {
			fmt.Fprintf(&b, ", no knee ≤ %g rps", r.RatesRPS[len(r.RatesRPS)-1])
		}
		b.WriteString(")\n")
		b.WriteString("  rps      p50ms    p99ms    queue99  fleetJ/req avgW     idle  migr  peak\n")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %-8g %-8.3f %-8.3f %-8.3f %-10.4f %-8.2f %-5d %-5d %d\n",
				p.OfferedRPS, p.P50SojournMS, p.P99SojournMS, p.P99QueueMS,
				p.FleetJoulesPerRequest, p.FleetAvgPowerW, p.IdleMachines, p.Migrated, p.PeakInflight)
		}
	}
	return b.String()
}

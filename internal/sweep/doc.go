// Package sweep runs open-system evaluations over the virtual-time
// Sim pool: for each point of a (workload × tempo-mode × arrival-rate)
// grid it generates a seeded Poisson arrival trace, replays it through
// Runtime.SubmitTrace on the deterministic discrete-event machine, and
// measures the open-system quantities the paper's closed-system
// figures cannot show — sojourn percentiles, queueing delay,
// joules/request, average power, steals/request and DVFS-tier
// residency as functions of offered load, per tempo mode.
//
// Every point is deterministic: a fixed config and seed reproduce
// byte-identical JSON artifacts, so the curves are CI-diffable
// evaluation results rather than wall-clock experiments. Knee
// detection marks the first rate whose p99 sojourn exceeds a
// configurable multiple of the unloaded p50 — where the mode's
// latency curve leaves the flat regime. A knee can also come back
// unresolved (knee_rps null in the artifact) with a KneeReason saying
// why: a single-rate grid, no crossing inside the grid, or no baseline
// latency to compare against.
//
// A finished sweep artifact has a second life as a capacity model:
// LoadModel validates one back in as a Model, whose Knee,
// KneeLatencyMS, JoulesPerRequestAt and BestMode lookups calibrate the
// serving control loop (internal/control). ReplayTrace runs an
// explicit arrival trace — rather than a generated Poisson one —
// through the same deterministic pool, which is what hermes-serve's
// /capacity endpoint uses to answer what-if questions about recorded
// traffic.
package sweep

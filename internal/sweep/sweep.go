package sweep

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hermes"
	"hermes/internal/trace"
	"hermes/internal/units"
	"hermes/internal/workload"
)

// DefaultKneeFactor is the knee threshold when Config leaves it unset:
// the curve has "kneed" once p99 sojourn exceeds 5× the unloaded p50.
const DefaultKneeFactor = 5.0

// Trace generates the seeded Poisson arrival trace for one point —
// the historical entry point, now a thin wrapper over the
// internal/trace registry's default process. The trace depends only
// on (spec, rps, window, seed).
func Trace(spec workload.Spec, rps float64, window time.Duration, seed int64) ([]hermes.Arrival, error) {
	return TraceArrivals(spec, "", rps, window, seed)
}

// TraceArrivals generates one grid point's arrival trace through the
// named process from the internal/trace registry ("" = poisson): the
// process draws seeded arrival times and per-arrival sizes, and every
// arrival runs the workload spec's task at its drawn size.
func TraceArrivals(spec workload.Spec, proc string, rps float64, window time.Duration, seed int64) ([]hermes.Arrival, error) {
	p, err := trace.Resolve(proc)
	if err != nil {
		return nil, err
	}
	spec, err = spec.Validate()
	if err != nil {
		return nil, err
	}
	return p.Arrivals(spec.SizedTask, seed, rps, window)
}

// Span is one job's residence interval in the system, from virtual
// arrival to virtual completion.
type Span struct {
	Arrive, Done units.Time
}

// PeakInflight returns the maximum number of jobs simultaneously in
// the system, counting each job from its arrival to its completion —
// not merely while executing — so queued-but-unstarted jobs deepen the
// measurement exactly as they deepen the system. An arrival and a
// completion at the same instant count the arrival first, matching the
// wall-clock generator, whose gauge increments at submission before
// any same-moment completion decrements it.
func PeakInflight(spans []Span) int64 {
	type edge struct {
		t units.Time
		d int64
	}
	edges := make([]edge, 0, 2*len(spans))
	for _, s := range spans {
		edges = append(edges, edge{s.Arrive, 1}, edge{s.Done, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d > edges[j].d
	})
	var depth, peak int64
	for _, e := range edges {
		depth += e.d
		if depth > peak {
			peak = depth
		}
	}
	return peak
}

// Knee returns the first rate whose p99 sojourn exceeds
// factor × unloadedP50 — the saturation knee of an open-system latency
// curve — or 0 when no grid point crosses the threshold. rates and
// p99MS run in parallel, rates ascending.
func Knee(rates []float64, p99MS []float64, unloadedP50MS, factor float64) float64 {
	if unloadedP50MS <= 0 || factor <= 0 {
		return 0
	}
	for i, r := range rates {
		if i < len(p99MS) && p99MS[i] > factor*unloadedP50MS {
			return r
		}
	}
	return 0
}

// Knee-unresolved reasons carried by Curve.KneeReason when KneeRPS is
// null.
const (
	// KneeReasonSingleRate: a one-rate grid has no unloaded baseline
	// distinct from its only loaded point, so no knee slope exists.
	KneeReasonSingleRate = "single-rate grid: no unloaded baseline to detect a knee against"
	// KneeReasonNoCrossing: no grid rate pushed p99 past the threshold.
	KneeReasonNoCrossing = "no rate in the grid crossed the knee threshold"
	// KneeReasonNoBaseline: the unloaded p50 was zero (no completions
	// at the lowest rate), leaving the threshold undefined.
	KneeReasonNoBaseline = "unloaded p50 is zero: knee threshold undefined"
)

// DetectKnee runs knee detection with explicit "no knee" semantics: it
// returns a pointer to the knee rate when one resolved, or nil plus a
// human-readable reason. A single-rate grid can never resolve a knee —
// its only point doubles as the unloaded baseline — and reporting that
// as a zero-value knee would read downstream as "knee at rate 0", so
// artifacts carry null instead (the hermes-bench -sweep bugfix).
func DetectKnee(rates []float64, p99MS []float64, unloadedP50MS, factor float64) (*float64, string) {
	if len(rates) < 2 {
		return nil, KneeReasonSingleRate
	}
	if unloadedP50MS <= 0 {
		return nil, KneeReasonNoBaseline
	}
	if k := Knee(rates, p99MS, unloadedP50MS, factor); k > 0 {
		return &k, ""
	}
	return nil, KneeReasonNoCrossing
}

// Tier is one DVFS frequency tier's share of the machine's busy time
// over a point's run.
type Tier struct {
	FreqKHz int64   `json:"freq_khz"`
	BusyS   float64 `json:"busy_s"`
	Frac    float64 `json:"frac"`
}

// Point is the measured outcome of one (workload, mode, rate) grid
// point. All latency quantities are virtual time at full picosecond
// resolution, pooled across the point's trials.
type Point struct {
	OfferedRPS   float64 `json:"offered_rps"`
	Arrivals     int64   `json:"arrivals"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	PeakInflight int64   `json:"peak_inflight"`
	// MakespanS is the virtual time from the window's start to the last
	// completion, summed over trials; ObservedRPS is completions over
	// that time.
	MakespanS   float64 `json:"makespan_s"`
	ObservedRPS float64 `json:"observed_rps"`

	P50SojournMS float64 `json:"p50_sojourn_ms"`
	P95SojournMS float64 `json:"p95_sojourn_ms"`
	P99SojournMS float64 `json:"p99_sojourn_ms"`
	MaxSojournMS float64 `json:"max_sojourn_ms"`
	// Queueing delay is Sojourn − Span: time in the system before (or
	// between) execution, the pure open-system penalty.
	P50QueueMS float64 `json:"p50_queue_ms"`
	P95QueueMS float64 `json:"p95_queue_ms"`
	P99QueueMS float64 `json:"p99_queue_ms"`

	JoulesPerRequest float64 `json:"joules_per_request"`
	AvgPowerW        float64 `json:"avg_power_w"`
	StealsPerRequest float64 `json:"steals_per_request"`
	DroppedEvents    uint64  `json:"dropped_events"`

	// Tiers is the machine's DVFS residency (share of busy core-time
	// per frequency), fastest tier first.
	Tiers []Tier `json:"tiers"`

	// Classes breaks the point down per service class when the trace
	// is mixed; absent (omitted from JSON) for unclassed traces, so
	// single-class artifacts keep their byte-exact shape.
	Classes []ClassPoint `json:"classes,omitempty"`
}

// ClassPoint is one service class's share of a grid point: its own
// latency percentiles, SLO attainment and energy per request —
// "who pays for energy savings", resolved per class.
type ClassPoint struct {
	Tenant    string `json:"tenant"`
	Priority  int    `json:"priority"`
	Arrivals  int64  `json:"arrivals"`
	Completed int64  `json:"completed"`
	Errors    int64  `json:"errors"`

	P50SojournMS float64 `json:"p50_sojourn_ms"`
	P95SojournMS float64 `json:"p95_sojourn_ms"`
	P99SojournMS float64 `json:"p99_sojourn_ms"`

	// SLOTargetMS echoes the class's sojourn target; SLOAttainment is
	// the fraction of completed jobs that met it. Both null for
	// classes without a target.
	SLOTargetMS   *float64 `json:"slo_target_ms,omitempty"`
	SLOAttainment *float64 `json:"slo_attainment,omitempty"`

	JoulesPerRequest float64 `json:"joules_per_request"`
}

// PointConfig parameterizes one grid point for RunPoint.
type PointConfig struct {
	Workload workload.Spec
	// Trace names the arrival process from the internal/trace registry
	// ("" = poisson).
	Trace   string
	Mode    hermes.Mode
	RPS     float64
	Window  time.Duration
	Seed    int64
	Trials  int // <1 means 1; trial t shifts the seed by t
	Workers int // 0 = backend default
	// Dispatch names the intake dispatch policy ("" or "fifo" = arrival
	// order, "priority", "edf").
	Dispatch string
	// PreemptQuantum caps uninterrupted execution under a ranked
	// dispatch policy (0 = jobs run to completion once started).
	PreemptQuantum time.Duration
	// Log, when non-nil, receives a diagnostic line per failed job.
	Log func(string)
}

// trialOut is one trial's raw measurements.
type trialOut struct {
	arrivals  int64
	errors    int64
	sojourns  []units.Time
	queues    []units.Time
	spans     []Span
	jobJoules float64
	steals    int64
	makespan  units.Time
	dropped   uint64
	machine   hermes.MachineStats
	// classes holds per-service-class raw measurements, keyed by the
	// full class value; empty for unclassed traces.
	classes map[hermes.Class]*classAcc
}

// classAcc accumulates one service class's raw measurements across a
// trial (and, pooled, across trials).
type classAcc struct {
	arrivals  int64
	errors    int64
	sojourns  []units.Time
	jobJoules float64
	sloMet    int64
}

// classOf returns the trial's accumulator for class c, creating it on
// first use.
func (out *trialOut) classOf(c hermes.Class) *classAcc {
	if out.classes == nil {
		out.classes = map[hermes.Class]*classAcc{}
	}
	acc := out.classes[c]
	if acc == nil {
		acc = &classAcc{}
		out.classes[c] = acc
	}
	return acc
}

// runTrial replays one seeded trace through a fresh Runtime and
// collects raw per-job and machine-level measurements.
func runTrial(cfg PointConfig, seed int64) (trialOut, error) {
	var out trialOut
	arrivals, err := TraceArrivals(cfg.Workload, cfg.Trace, cfg.RPS, cfg.Window, seed)
	if err != nil {
		return out, err
	}
	dispatch, err := hermes.ParseDispatch(cfg.Dispatch)
	if err != nil {
		return out, err
	}
	ropts := []hermes.Option{
		hermes.WithBackend(hermes.Sim),
		hermes.WithMode(cfg.Mode),
		hermes.WithSeed(seed),
	}
	if cfg.Workers > 0 {
		ropts = append(ropts, hermes.WithWorkers(cfg.Workers))
	}
	if dispatch != hermes.DispatchFIFO {
		ropts = append(ropts, hermes.WithDispatch(dispatch))
	}
	if cfg.PreemptQuantum > 0 {
		ropts = append(ropts, hermes.WithPreemptQuantum(units.Time(cfg.PreemptQuantum)*units.Nanosecond))
	}
	rt, err := hermes.New(ropts...)
	if err != nil {
		return out, err
	}
	jobs, err := rt.SubmitTrace(nil, arrivals)
	if err != nil {
		rt.Close()
		return out, err
	}
	out.arrivals = int64(len(arrivals))
	mixed := false
	for _, a := range arrivals {
		if !a.Class.IsZero() {
			mixed = true
			break
		}
	}
	for i, j := range jobs {
		rep, err := j.Wait()
		// A failed job occupied the system from arrival until it
		// failed (its partial report still carries the real sojourn),
		// so it counts toward in-flight depth and the makespan exactly
		// as the wall-clock generator's gauge counts errored requests —
		// only the latency percentiles and energy stay success-only.
		done := arrivals[i].At + rep.Sojourn
		out.spans = append(out.spans, Span{Arrive: arrivals[i].At, Done: done})
		if done > out.makespan {
			out.makespan = done
		}
		var acc *classAcc
		if mixed {
			acc = out.classOf(arrivals[i].Class)
			acc.arrivals++
		}
		if err != nil {
			out.errors++
			if acc != nil {
				acc.errors++
			}
			if cfg.Log != nil {
				cfg.Log(fmt.Sprintf("sweep: job %d failed: %v", j.ID(), err))
			}
			continue
		}
		out.sojourns = append(out.sojourns, rep.Sojourn)
		q := rep.Sojourn - rep.Span
		if q < 0 {
			q = 0
		}
		out.queues = append(out.queues, q)
		out.jobJoules += rep.EnergyJ
		out.steals += rep.Steals
		if acc != nil {
			acc.sojourns = append(acc.sojourns, rep.Sojourn)
			acc.jobJoules += rep.EnergyJ
			if t := arrivals[i].Class.SLOTarget; t > 0 && rep.Sojourn <= t {
				acc.sloMet++
			}
		}
	}
	// One close, error-checked: the engine must have shut down cleanly
	// for the machine ledger below to be final.
	if err := rt.Close(); err != nil {
		return out, err
	}
	out.dropped = rt.EventsDropped()
	ms, err := rt.MachineStats()
	if err != nil {
		return out, err
	}
	out.machine = ms
	return out, nil
}

// RunPoint measures one grid point: Trials seeded traces (seed,
// seed+1, …) each replayed on a fresh simulated machine, percentiles
// pooled over every completed job, energy and counts summed. The
// result is deterministic in the config.
func RunPoint(cfg PointConfig) (Point, error) {
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	pt := Point{OfferedRPS: cfg.RPS}
	var (
		sojourns, queues []units.Time
		machineJ         float64
		machineElapsed   units.Time
		tierBusy         = map[units.Freq]units.Time{}
		totalBusy        units.Time
		steals           int64
		makespan         units.Time
		classes          = map[hermes.Class]*classAcc{}
	)
	for trial := 0; trial < trials; trial++ {
		out, err := runTrial(cfg, cfg.Seed+int64(trial))
		if err != nil {
			return Point{}, err
		}
		for c, acc := range out.classes {
			pool := classes[c]
			if pool == nil {
				pool = &classAcc{}
				classes[c] = pool
			}
			pool.arrivals += acc.arrivals
			pool.errors += acc.errors
			pool.sojourns = append(pool.sojourns, acc.sojourns...)
			pool.jobJoules += acc.jobJoules
			pool.sloMet += acc.sloMet
		}
		pt.Arrivals += out.arrivals
		pt.Errors += out.errors
		pt.Completed += int64(len(out.sojourns))
		pt.DroppedEvents += out.dropped
		if p := PeakInflight(out.spans); p > pt.PeakInflight {
			pt.PeakInflight = p
		}
		sojourns = append(sojourns, out.sojourns...)
		queues = append(queues, out.queues...)
		makespan += out.makespan
		pt.JoulesPerRequest += out.jobJoules // divided below
		steals += out.steals
		machineJ += out.machine.EnergyJ
		machineElapsed += out.machine.Elapsed
		totalBusy += out.machine.Busy
		for f, d := range out.machine.FreqBusy {
			tierBusy[f] += d
		}
	}
	sortTimes(sojourns)
	sortTimes(queues)
	pt.MakespanS = makespan.Seconds()
	if pt.MakespanS > 0 {
		pt.ObservedRPS = float64(pt.Completed) / pt.MakespanS
	}
	pt.P50SojournMS = pctMS(sojourns, 0.50)
	pt.P95SojournMS = pctMS(sojourns, 0.95)
	pt.P99SojournMS = pctMS(sojourns, 0.99)
	pt.MaxSojournMS = pctMS(sojourns, 1)
	pt.P50QueueMS = pctMS(queues, 0.50)
	pt.P95QueueMS = pctMS(queues, 0.95)
	pt.P99QueueMS = pctMS(queues, 0.99)
	if pt.Completed > 0 {
		pt.JoulesPerRequest /= float64(pt.Completed)
		pt.StealsPerRequest = float64(steals) / float64(pt.Completed)
	} else {
		pt.JoulesPerRequest = 0
	}
	if s := machineElapsed.Seconds(); s > 0 {
		pt.AvgPowerW = machineJ / s
	}
	freqs := make([]units.Freq, 0, len(tierBusy))
	for f := range tierBusy {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	for _, f := range freqs {
		tier := Tier{FreqKHz: int64(f), BusyS: tierBusy[f].Seconds()}
		if totalBusy > 0 {
			tier.Frac = float64(tierBusy[f]) / float64(totalBusy)
		}
		pt.Tiers = append(pt.Tiers, tier)
	}
	pt.Classes = classPoints(classes)
	return pt, nil
}

// classPoints folds pooled per-class accumulators into the artifact
// rows, ordered highest priority first then by tenant — deterministic
// for a fixed config. Returns nil for unclassed traces so Point.Classes
// stays omitted from JSON.
func classPoints(classes map[hermes.Class]*classAcc) []ClassPoint {
	if len(classes) == 0 {
		return nil
	}
	keys := make([]hermes.Class, 0, len(classes))
	for c := range classes {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		return a.SLOTarget < b.SLOTarget
	})
	out := make([]ClassPoint, 0, len(keys))
	for _, c := range keys {
		acc := classes[c]
		sortTimes(acc.sojourns)
		cp := ClassPoint{
			Tenant:       c.Tenant,
			Priority:     c.Priority,
			Arrivals:     acc.arrivals,
			Errors:       acc.errors,
			Completed:    int64(len(acc.sojourns)),
			P50SojournMS: pctMS(acc.sojourns, 0.50),
			P95SojournMS: pctMS(acc.sojourns, 0.95),
			P99SojournMS: pctMS(acc.sojourns, 0.99),
		}
		if cp.Completed > 0 {
			cp.JoulesPerRequest = acc.jobJoules / float64(cp.Completed)
		}
		if c.SLOTarget > 0 {
			target := float64(c.SLOTarget) / float64(units.Millisecond)
			cp.SLOTargetMS = &target
			attain := 0.0
			if cp.Completed > 0 {
				attain = float64(acc.sloMet) / float64(cp.Completed)
			}
			cp.SLOAttainment = &attain
		}
		out = append(out, cp)
	}
	return out
}

// sortTimes sorts virtual times ascending.
func sortTimes(ts []units.Time) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

// pctMS returns the p-quantile (0..1, nearest rank) of sorted virtual
// times in milliseconds at full picosecond resolution — sub-millisecond
// sim sojourns survive instead of truncating through microseconds.
func pctMS(sorted []units.Time, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(units.Millisecond)
}

// Config describes a whole sweep: the grid plus shared run shape.
type Config struct {
	Workload workload.Spec
	// Trace names the arrival process from the internal/trace registry
	// ("" = poisson).
	Trace      string
	Modes      []hermes.Mode
	RatesRPS   []float64 // ascending; Run sorts a copy if not
	Window     time.Duration
	Seed       int64
	Trials     int
	Workers    int
	KneeFactor float64 // 0 = DefaultKneeFactor
	// Dispatch names the intake dispatch policy every point runs under
	// ("" or "fifo" = arrival order, "priority", "edf").
	Dispatch string
	// PreemptQuantum caps uninterrupted execution under a ranked
	// dispatch policy (0 = jobs run to completion once started).
	PreemptQuantum time.Duration
	// Log, when non-nil, receives one progress line per completed point.
	Log func(string)
}

// Curve is one tempo mode's measured curve over the rate grid.
type Curve struct {
	Mode string `json:"mode"`
	// UnloadedP50MS is the p50 sojourn at the grid's lowest rate — the
	// knee detector's baseline for "unloaded" latency.
	UnloadedP50MS float64 `json:"unloaded_p50_ms"`
	// KneeRPS is the first rate whose p99 sojourn exceeds
	// KneeFactor × UnloadedP50MS, or null when no knee resolved —
	// KneeReason says why (single-rate grid, no crossing). Null is
	// deliberate: a zero value would read as "knee at rate 0" to model
	// loaders.
	KneeRPS *float64 `json:"knee_rps"`
	// KneeReason explains a null KneeRPS; empty when a knee resolved.
	KneeReason string  `json:"knee_reason,omitempty"`
	Points     []Point `json:"points"`
}

// Knee returns the curve's resolved knee rate, reporting false when
// knee detection could not resolve one (KneeRPS is null).
func (c Curve) Knee() (float64, bool) {
	if c.KneeRPS == nil {
		return 0, false
	}
	return *c.KneeRPS, true
}

// Result is the sweep artifact: one curve per tempo mode over the
// shared rate grid. It marshals deterministically for a fixed config.
type Result struct {
	Workload workload.Spec `json:"workload"`
	// Trace is the arrival process the grid ran under, normalized so
	// the default poisson process stays "" — poisson-era artifacts
	// keep their byte-exact shape.
	Trace      string    `json:"trace,omitempty"`
	RatesRPS   []float64 `json:"rates_rps"`
	WindowS    float64   `json:"window_s"`
	Seed       int64     `json:"seed"`
	Trials     int       `json:"trials"`
	Workers    int       `json:"workers"`
	KneeFactor float64   `json:"knee_factor"`
	// Dispatch is the intake policy the grid ran under, normalized so
	// the default FIFO stays "" — pre-dispatch artifacts keep their
	// byte-exact shape. PreemptQuantumMS is the ranked-dispatch
	// quantum, 0 (omitted) when jobs run to completion.
	Dispatch         string  `json:"dispatch,omitempty"`
	PreemptQuantumMS float64 `json:"preempt_quantum_ms,omitempty"`
	Curves           []Curve `json:"curves"`
}

// Run executes the whole grid and assembles the artifact.
func Run(cfg Config) (Result, error) {
	spec, err := cfg.Workload.Validate()
	if err != nil {
		return Result{}, err
	}
	cfg.Workload = spec
	if _, err := trace.Resolve(cfg.Trace); err != nil {
		return Result{}, err
	}
	dispatch, err := hermes.ParseDispatch(cfg.Dispatch)
	if err != nil {
		return Result{}, err
	}
	if cfg.PreemptQuantum < 0 {
		return Result{}, fmt.Errorf("sweep: preempt quantum must be non-negative, got %v", cfg.PreemptQuantum)
	}
	if len(cfg.Modes) == 0 {
		return Result{}, fmt.Errorf("sweep: no tempo modes given")
	}
	if len(cfg.RatesRPS) == 0 {
		return Result{}, fmt.Errorf("sweep: no arrival rates given")
	}
	rates := append([]float64(nil), cfg.RatesRPS...)
	sort.Float64s(rates)
	for _, r := range rates {
		if r <= 0 {
			return Result{}, fmt.Errorf("sweep: rates must be positive, got %g", r)
		}
	}
	if cfg.Window <= 0 {
		return Result{}, fmt.Errorf("sweep: window must be positive, got %v", cfg.Window)
	}
	trials := cfg.Trials
	if trials < 1 {
		trials = 1
	}
	factor := cfg.KneeFactor
	if factor == 0 {
		factor = DefaultKneeFactor
	}
	if factor < 0 {
		return Result{}, fmt.Errorf("sweep: knee factor must be positive, got %g", factor)
	}
	res := Result{
		Workload:   cfg.Workload,
		Trace:      trace.Canonical(cfg.Trace),
		RatesRPS:   rates,
		WindowS:    cfg.Window.Seconds(),
		Seed:       cfg.Seed,
		Trials:     trials,
		Workers:    cfg.Workers,
		KneeFactor: factor,
		Dispatch:   CanonicalDispatch(dispatch),
	}
	if cfg.PreemptQuantum > 0 {
		res.PreemptQuantumMS = float64(cfg.PreemptQuantum) / float64(time.Millisecond)
	}
	for _, mode := range cfg.Modes {
		curve := Curve{Mode: mode.String()}
		var p99s []float64
		for _, rate := range rates {
			pt, err := RunPoint(PointConfig{
				Workload:       cfg.Workload,
				Trace:          cfg.Trace,
				Mode:           mode,
				RPS:            rate,
				Window:         cfg.Window,
				Seed:           cfg.Seed,
				Trials:         trials,
				Workers:        cfg.Workers,
				Dispatch:       cfg.Dispatch,
				PreemptQuantum: cfg.PreemptQuantum,
				Log:            cfg.Log,
			})
			if err != nil {
				return Result{}, fmt.Errorf("sweep: %s @ %g rps: %w", mode, rate, err)
			}
			curve.Points = append(curve.Points, pt)
			p99s = append(p99s, pt.P99SojournMS)
			if cfg.Log != nil {
				cfg.Log(fmt.Sprintf("sweep %s %s @ %g rps: p50=%.3fms p99=%.3fms J/req=%.4f peak=%d",
					cfg.Workload.Kind, mode, rate, pt.P50SojournMS, pt.P99SojournMS, pt.JoulesPerRequest, pt.PeakInflight))
			}
		}
		curve.UnloadedP50MS = curve.Points[0].P50SojournMS
		curve.KneeRPS, curve.KneeReason = DetectKnee(rates, p99s, curve.UnloadedP50MS, factor)
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// CanonicalDispatch normalizes a dispatch policy for artifacts: the
// default FIFO renders as "" (omitted from JSON) so pre-dispatch
// artifacts keep their byte-exact shape; ranked policies render their
// canonical names.
func CanonicalDispatch(d hermes.Dispatch) string {
	if d == hermes.DispatchFIFO {
		return ""
	}
	return d.String()
}

// kneeCSV renders a curve's knee for a CSV cell: the rate, or empty
// when no knee resolved (never a synthetic 0).
func kneeCSV(k *float64) string {
	if k == nil {
		return ""
	}
	return fmt.Sprintf("%g", *k)
}

// CSV renders the sweep flat, one row per (mode, rate) point, with the
// tier residency packed as freqkHz:frac pairs.
func (r Result) CSV() string {
	var b strings.Builder
	b.WriteString("mode,offered_rps,arrivals,completed,errors,peak_inflight,observed_rps," +
		"p50_sojourn_ms,p95_sojourn_ms,p99_sojourn_ms,max_sojourn_ms," +
		"p50_queue_ms,p95_queue_ms,p99_queue_ms," +
		"joules_per_request,avg_power_w,steals_per_request,knee_rps,tier_residency\n")
	for _, c := range r.Curves {
		for _, p := range c.Points {
			tiers := make([]string, len(p.Tiers))
			for i, t := range p.Tiers {
				tiers[i] = fmt.Sprintf("%d:%.6f", t.FreqKHz, t.Frac)
			}
			fmt.Fprintf(&b, "%s,%g,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.8f,%.6f,%.6f,%s,%s\n",
				c.Mode, p.OfferedRPS, p.Arrivals, p.Completed, p.Errors, p.PeakInflight, p.ObservedRPS,
				p.P50SojournMS, p.P95SojournMS, p.P99SojournMS, p.MaxSojournMS,
				p.P50QueueMS, p.P95QueueMS, p.P99QueueMS,
				p.JoulesPerRequest, p.AvgPowerW, p.StealsPerRequest, kneeCSV(c.KneeRPS),
				strings.Join(tiers, ";"))
		}
	}
	return b.String()
}

// Classed reports whether any point in the result carries per-class
// rows — true only for mixed traces.
func (r Result) Classed() bool {
	for _, c := range r.Curves {
		for _, p := range c.Points {
			if len(p.Classes) > 0 {
				return true
			}
		}
	}
	return false
}

// ClassCSV renders the per-class breakdown flat, one row per
// (mode, rate, class). Empty string when the result has no class rows,
// so callers can skip the file entirely for unclassed traces.
func (r Result) ClassCSV() string {
	if !r.Classed() {
		return ""
	}
	var b strings.Builder
	b.WriteString("mode,offered_rps,tenant,priority,arrivals,completed,errors," +
		"p50_sojourn_ms,p95_sojourn_ms,p99_sojourn_ms," +
		"slo_target_ms,slo_attainment,joules_per_request\n")
	for _, c := range r.Curves {
		for _, p := range c.Points {
			for _, cp := range p.Classes {
				target, attain := "", ""
				if cp.SLOTargetMS != nil {
					target = fmt.Sprintf("%g", *cp.SLOTargetMS)
				}
				if cp.SLOAttainment != nil {
					attain = fmt.Sprintf("%.6f", *cp.SLOAttainment)
				}
				fmt.Fprintf(&b, "%s,%g,%s,%d,%d,%d,%d,%.6f,%.6f,%.6f,%s,%s,%.8f\n",
					c.Mode, p.OfferedRPS, cp.Tenant, cp.Priority,
					cp.Arrivals, cp.Completed, cp.Errors,
					cp.P50SojournMS, cp.P95SojournMS, cp.P99SojournMS,
					target, attain, cp.JoulesPerRequest)
			}
		}
	}
	return b.String()
}

// String renders the sweep as one compact table per mode.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open-system sweep: %s, window=%.3gs, seed=%d, trials=%d, workers=%d\n",
		r.Workload, r.WindowS, r.Seed, r.Trials, r.Workers)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "mode %s (unloaded p50 %.3fms", c.Mode, c.UnloadedP50MS)
		if k, ok := c.Knee(); ok {
			fmt.Fprintf(&b, ", knee @ %g rps ×%g", k, r.KneeFactor)
		} else {
			fmt.Fprintf(&b, ", no knee ≤ %g rps", r.RatesRPS[len(r.RatesRPS)-1])
		}
		b.WriteString(")\n")
		b.WriteString("  rps      p50ms    p99ms    queue99  J/req    avgW     steals/req  peak\n")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "  %-8g %-8.3f %-8.3f %-8.3f %-8.4f %-8.2f %-11.3f %d\n",
				p.OfferedRPS, p.P50SojournMS, p.P99SojournMS, p.P99QueueMS,
				p.JoulesPerRequest, p.AvgPowerW, p.StealsPerRequest, p.PeakInflight)
		}
	}
	return b.String()
}

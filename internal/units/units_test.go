package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDurationAtExact(t *testing.T) {
	// 2.4 GHz = 2.4e6 kHz; 2.4e6 cycles take exactly 1 ms.
	got := Cycles(2_400_000).DurationAt(2_400_000 * KHz)
	if got != Millisecond {
		t.Fatalf("2.4e6 cycles @2.4GHz = %v, want 1ms", got)
	}
}

func TestDurationAtRounding(t *testing.T) {
	// 1 cycle at 2.4 GHz is 416.67 ps; round half-up to 417.
	got := Cycles(1).DurationAt(2_400_000 * KHz)
	if got != 417*Picosecond {
		t.Fatalf("1 cycle @2.4GHz = %v ps, want 417", int64(got))
	}
}

func TestDurationAtLargeNoOverflow(t *testing.T) {
	// 1e13 cycles at 1.4 GHz ≈ 7142.86 s; must not overflow.
	c := Cycles(10_000_000_000_000)
	got := c.DurationAt(1_400_000 * KHz)
	want := 7142.857
	if s := got.Seconds(); s < want-0.01 || s > want+0.01 {
		t.Fatalf("large conversion = %vs, want ≈%v", s, want)
	}
}

func TestCyclesIn(t *testing.T) {
	if got := CyclesIn(Millisecond, 2_400_000*KHz); got != 2_400_000 {
		t.Fatalf("CyclesIn(1ms, 2.4GHz) = %d, want 2400000", got)
	}
	if got := CyclesIn(0, GHz); got != 0 {
		t.Fatalf("CyclesIn(0) = %d, want 0", got)
	}
	if got := CyclesIn(-Second, GHz); got != 0 {
		t.Fatalf("CyclesIn(neg) = %d, want 0", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Converting cycles → time → cycles must be within 1 cycle for any
	// realistic cycle count and frequency.
	f := func(c uint32, fsel uint8) bool {
		freqs := []Freq{1_400_000, 1_600_000, 1_900_000, 2_200_000, 2_400_000, 3_600_000}
		fr := freqs[int(fsel)%len(freqs)]
		cy := Cycles(c)
		back := CyclesIn(cy.DurationAt(fr), fr)
		d := int64(back) - int64(cy)
		return d >= -1 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationAtMonotonicInFreq(t *testing.T) {
	// Higher frequency must never take longer.
	f := func(c uint32) bool {
		cy := Cycles(c)
		return cy.DurationAt(2_400_000*KHz) <= cy.DurationAt(1_400_000*KHz)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationAtZeroFreqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero frequency")
		}
	}()
	Cycles(1).DurationAt(0)
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000s"},
		{1500 * Microsecond, "1.500ms"},
		{250 * Nanosecond * 10, "2.500µs"},
		{500 * Picosecond, "500ps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestFreqString(t *testing.T) {
	if got := (2_400_000 * KHz).String(); got != "2.4GHz" {
		t.Fatalf("Freq.String = %q", got)
	}
}

func TestDuration(t *testing.T) {
	if got := (3 * Millisecond).Duration(); got != 3*time.Millisecond {
		t.Fatalf("Duration = %v", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v", got)
	}
}

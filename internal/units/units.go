// Package units defines the scalar quantities used throughout the
// simulator: virtual time, CPU frequency, and cycle counts.
//
// Virtual time is an int64 count of picoseconds. At picosecond
// resolution the accumulated rounding error of a cycles/frequency
// conversion is below one nanosecond per million events, and an int64
// spans roughly 106 days, far beyond any simulated run.
package units

import (
	"fmt"
	"time"
)

// Time is a point in (or span of) virtual time, in picoseconds.
type Time int64

// Common time spans.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (nanosecond resolution,
// truncating sub-nanosecond detail).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Freq is a CPU core frequency in kilohertz, matching the granularity
// of the Linux cpufreq interface the paper drives.
type Freq int64

// Convenience multiples.
const (
	KHz Freq = 1
	MHz Freq = 1000 * KHz
	GHz Freq = 1000 * MHz
)

// GHzF returns the frequency as a floating-point number of gigahertz.
func (f Freq) GHzF() float64 { return float64(f) / float64(GHz) }

// String formats the frequency in GHz.
func (f Freq) String() string { return fmt.Sprintf("%.1fGHz", f.GHzF()) }

// Cycles is an amount of computational work expressed in CPU cycles.
type Cycles int64

// DurationAt returns the virtual time needed to retire c cycles at
// frequency f. It rounds half-up so repeated conversions do not drift
// systematically low.
func (c Cycles) DurationAt(f Freq) Time {
	if f <= 0 {
		panic("units: non-positive frequency")
	}
	// cycles / (kHz) = milliseconds of work; time[ps] = cycles * 1e9 / f[kHz].
	// Split the multiply to avoid overflowing int64 for large cycle counts:
	// c * 1e9 overflows beyond ~9.2e9 cycles, so compute quotient and
	// remainder separately.
	q := int64(c) / int64(f)
	r := int64(c) % int64(f)
	ps := q*1_000_000_000 + (r*1_000_000_000+int64(f)/2)/int64(f)
	return Time(ps)
}

// CyclesIn returns how many whole cycles retire in span t at frequency f.
func CyclesIn(t Time, f Freq) Cycles {
	if t <= 0 {
		return 0
	}
	// cycles = t[ps] * f[kHz] / 1e9, computed without overflow:
	q := int64(t) / 1_000_000_000
	r := int64(t) % 1_000_000_000
	return Cycles(q*int64(f) + r*int64(f)/1_000_000_000)
}

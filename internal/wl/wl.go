// Package wl defines the programming interface parallel workloads use
// against the HERMES runtime: Cilk-style fork-join blocks over a
// work-stealing scheduler, plus explicit cost accounting that lets the
// same workload code run on the discrete-event simulator (costs drive
// virtual time) and on the real-concurrency executor (costs drive
// calibrated throttling).
package wl

import "hermes/internal/units"

// Task is a unit of parallel work.
type Task func(Ctx)

// Ctx is the per-task handle into the runtime.
type Ctx interface {
	// Go executes a fork-join block with Cilk spawn semantics: the
	// serial order is tasks[0], tasks[1], …; the runtime pushes
	// tasks[n-1] … tasks[1] onto the worker's deque (so a thief
	// stealing from the head takes the serially-latest, least
	// immediate work) and runs tasks[0] inline, then joins the whole
	// block before returning.
	Go(tasks ...Task)

	// Work accounts c cycles of CPU-bound computation. The cycles
	// retire at the hosting core's current frequency; a DVFS
	// transition mid-task re-rates the remainder.
	Work(c units.Cycles)

	// Mem accounts d of frequency-independent time (memory-bound
	// stalls, which do not speed up or slow down with DVFS).
	Mem(d units.Time)

	// WorkMix accounts c total cycles of which memFrac (0..1) is
	// memory-bound: the memory share is converted to time at the
	// machine's maximum frequency and does not scale with DVFS.
	WorkMix(c units.Cycles, memFrac float64)

	// Worker returns the executing worker's id, for diagnostics.
	Worker() int
}

// For runs body(i, j) over [lo, hi) in parallel chunks of at most
// grain elements, using recursive binary splitting — the standard
// Cilk parallel-for skeleton. The serially-first half is the inline
// branch, so deque order preserves work-first immediacy.
func For(c Ctx, lo, hi, grain int, body func(Ctx, int, int)) {
	if grain < 1 {
		grain = 1
	}
	var split func(c Ctx, lo, hi int)
	split = func(c Ctx, lo, hi int) {
		if hi-lo <= grain {
			body(c, lo, hi)
			return
		}
		mid := lo + (hi-lo)/2
		c.Go(
			func(c Ctx) { split(c, lo, mid) },
			func(c Ctx) { split(c, mid, hi) },
		)
	}
	if lo < hi {
		split(c, lo, hi)
	}
}

// Seq runs tasks serially in order on the current worker. It exists so
// workload code can switch a block between parallel and serial without
// restructuring.
func Seq(c Ctx, tasks ...Task) {
	for _, t := range tasks {
		t(c)
	}
}

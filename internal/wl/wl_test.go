package wl

import (
	"testing"

	"hermes/internal/units"
)

// fakeCtx runs tasks inline and records Work/Mem accounting, for
// testing the wl helpers without a scheduler.
type fakeCtx struct {
	cycles units.Cycles
	mem    units.Time
	blocks int
}

func (f *fakeCtx) Go(tasks ...Task) {
	f.blocks++
	for _, t := range tasks {
		t(f)
	}
}
func (f *fakeCtx) Work(c units.Cycles) { f.cycles += c }
func (f *fakeCtx) Mem(d units.Time)    { f.mem += d }
func (f *fakeCtx) WorkMix(c units.Cycles, frac float64) {
	mem := units.Cycles(float64(c) * frac)
	f.cycles += c - mem
	f.mem += mem.DurationAt(2_400_000 * units.KHz)
}
func (f *fakeCtx) Worker() int { return 0 }

func TestForCoversRangeOnce(t *testing.T) {
	seen := make([]int, 100)
	f := &fakeCtx{}
	For(f, 0, 100, 7, func(c Ctx, lo, hi int) {
		if hi-lo > 7 {
			t.Errorf("chunk [%d,%d) exceeds grain", lo, hi)
		}
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEmptyAndReversed(t *testing.T) {
	f := &fakeCtx{}
	calls := 0
	For(f, 5, 5, 1, func(c Ctx, lo, hi int) { calls++ })
	For(f, 9, 3, 1, func(c Ctx, lo, hi int) { calls++ })
	if calls != 0 {
		t.Fatalf("empty/reversed ranges ran body %d times", calls)
	}
}

func TestForGrainClamp(t *testing.T) {
	f := &fakeCtx{}
	total := 0
	For(f, 0, 10, 0, func(c Ctx, lo, hi int) { total += hi - lo })
	if total != 10 {
		t.Fatalf("covered %d of 10 with grain 0 (clamped to 1)", total)
	}
}

func TestSeqOrder(t *testing.T) {
	f := &fakeCtx{}
	var order []int
	Seq(f,
		func(Ctx) { order = append(order, 1) },
		func(Ctx) { order = append(order, 2) },
		func(Ctx) { order = append(order, 3) },
	)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("Seq order = %v", order)
	}
}

func TestForSingleElement(t *testing.T) {
	f := &fakeCtx{}
	ran := false
	For(f, 3, 4, 10, func(c Ctx, lo, hi int) {
		if lo != 3 || hi != 4 {
			t.Fatalf("bounds [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("single-element range skipped")
	}
}

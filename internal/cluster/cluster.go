package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"hermes/internal/core"
	"hermes/internal/units"
)

// DefaultGossipInterval is the gossip tick period when the policy does
// not set one: fine-grained against millisecond-scale service times,
// coarse against the simulator's microsecond events.
const DefaultGossipInterval = 500 * units.Microsecond

// Policy describes one placement policy by name and parameters.
type Policy struct {
	// Kind is the policy family: "random", "jsq", "pkc" or "gossip".
	Kind string `json:"kind"`
	// Choices is k for the "pkc" family (2 = the classic
	// power-of-two-choices); ignored otherwise.
	Choices int `json:"choices,omitempty"`
	// Interval, Staleness and Batch configure the gossip tier for the
	// "gossip" family (see core.ClusterConfig); ignored otherwise.
	Interval  units.Time `json:"interval,omitempty"`
	Staleness units.Time `json:"staleness,omitempty"`
	Batch     int        `json:"batch,omitempty"`
}

// Known lists the canonical policy names a CLI should advertise.
func Known() []string { return []string{"random", "jsq", "p2c", "gossip"} }

// Parse maps a policy name onto a Policy: "random", "jsq", "p2c" (or
// any "p<k>c", e.g. "p3c"), and "gossip". The result is validated.
func Parse(s string) (Policy, error) {
	switch s {
	case "random":
		return Policy{Kind: "random"}, nil
	case "jsq":
		return Policy{Kind: "jsq"}, nil
	case "gossip":
		return Policy{Kind: "gossip", Interval: DefaultGossipInterval}, nil
	}
	if rest, ok := strings.CutPrefix(s, "p"); ok {
		if digits, ok := strings.CutSuffix(rest, "c"); ok {
			if k, err := strconv.Atoi(digits); err == nil && k >= 1 {
				return Policy{Kind: "pkc", Choices: k}, nil
			}
		}
	}
	return Policy{}, fmt.Errorf("cluster: unknown placement policy %q (want one of %s)",
		s, strings.Join(Known(), ", "))
}

// String renders the canonical name Parse accepts.
func (p Policy) String() string {
	if p.Kind == "pkc" {
		k := p.Choices
		if k == 0 {
			k = 2
		}
		return fmt.Sprintf("p%dc", k)
	}
	return p.Kind
}

// Validate fills family defaults and rejects unknown kinds or
// nonsensical parameters.
func (p Policy) Validate() (Policy, error) {
	switch p.Kind {
	case "random", "jsq":
	case "pkc":
		if p.Choices == 0 {
			p.Choices = 2
		}
		if p.Choices < 1 {
			return p, fmt.Errorf("cluster: pkc needs at least one choice, got %d", p.Choices)
		}
	case "gossip":
		if p.Interval == 0 {
			p.Interval = DefaultGossipInterval
		}
		if p.Interval < 0 {
			return p, fmt.Errorf("cluster: gossip interval must be positive, got %v", p.Interval)
		}
		if p.Staleness < 0 {
			return p, fmt.Errorf("cluster: gossip staleness must not be negative, got %v", p.Staleness)
		}
		if p.Batch < 0 {
			return p, fmt.Errorf("cluster: gossip batch must not be negative, got %d", p.Batch)
		}
	default:
		return p, fmt.Errorf("cluster: unknown placement policy kind %q", p.Kind)
	}
	return p, nil
}

// Placer materialises the core.Placement behind the policy. The
// "gossip" family places load-blind (random) — balancing is the gossip
// tier's job, configured via GossipParams.
func (p Policy) Placer() core.Placement {
	switch p.Kind {
	case "jsq":
		return jsqPlacer{}
	case "pkc":
		k := p.Choices
		if k == 0 {
			k = 2
		}
		return pkcPlacer{k: k}
	default: // "random", "gossip"
		return randomPlacer{}
	}
}

// GossipParams returns the gossip-tier configuration for the "gossip"
// family and zeros (gossip disabled) for every other policy.
func (p Policy) GossipParams() (interval, staleness units.Time, batch int) {
	if p.Kind != "gossip" {
		return 0, 0, 0
	}
	interval = p.Interval
	if interval == 0 {
		interval = DefaultGossipInterval
	}
	return interval, p.Staleness, p.Batch
}

// randomPlacer is uniform random, load-blind: the spreading baseline
// consolidating policies are measured against. Dead machines are
// skipped by scanning forward from the draw, so the stream stays
// byte-identical to the fault-free run (one draw per placement).
type randomPlacer struct{}

func (randomPlacer) Place(v core.PlacementView, rng *rand.Rand) int {
	n := v.Machines()
	m := rng.Intn(n)
	for i := 0; i < n; i++ {
		if c := (m + i) % n; v.Alive(c) {
			return c
		}
	}
	return m // whole fleet down; the cluster defers or loses the job
}

// jsqPlacer is join-shortest-queue over exact instantaneous loads,
// ties to the lowest live machine index.
type jsqPlacer struct{}

func (jsqPlacer) Place(v core.PlacementView, _ *rand.Rand) int {
	best, load := -1, 0
	for m := 0; m < v.Machines(); m++ {
		if !v.Alive(m) {
			continue
		}
		if l := v.Load(m); best < 0 || l < load {
			best, load = m, l
		}
	}
	if best < 0 {
		return 0 // whole fleet down; the cluster defers or loses the job
	}
	return best
}

// pkcPlacer is power-of-k-choices backed by the cluster's idle-machine
// heap: while any machine is idle, take the lowest-indexed one (this
// is what consolidates — higher-indexed machines stay parked in the
// lowest DVFS tier); once the fleet is saturated, sample k machines
// and join the least loaded, ties to the lowest sampled index. The rng
// only advances when sampling actually happens, keeping the stream
// deterministic per (trace, seed); dead samples are discarded but
// still drawn (k draws either way), so enabling faults never shifts
// the fault-free stream. If every sample is dead, fall back to the
// lowest-indexed live machine.
type pkcPlacer struct{ k int }

func (p pkcPlacer) Place(v core.PlacementView, rng *rand.Rand) int {
	if m, ok := v.IdleMachine(); ok {
		return m
	}
	n := v.Machines()
	best, load := -1, 0
	for i := 0; i < p.k; i++ {
		m := rng.Intn(n)
		if !v.Alive(m) {
			continue
		}
		if l := v.Load(m); best < 0 || l < load || (l == load && m < best) {
			best, load = m, l
		}
	}
	if best < 0 {
		for m := 0; m < n; m++ {
			if v.Alive(m) {
				return m
			}
		}
		return 0 // whole fleet down; the cluster defers or loses the job
	}
	return best
}

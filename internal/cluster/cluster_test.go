package cluster

import (
	"math/rand"
	"testing"

	"hermes/internal/core"
	"hermes/internal/units"
)

// fakeView is a canned PlacementView for exercising placers without a
// running cluster.
type fakeView struct {
	loads []int
	idle  int   // lowest idle index, -1 for none
	dead  []int // crashed machine indices (nil = whole fleet alive)
}

func (f fakeView) Machines() int  { return len(f.loads) }
func (f fakeView) Load(m int) int { return f.loads[m] }
func (f fakeView) Alive(m int) bool {
	for _, d := range f.dead {
		if d == m {
			return false
		}
	}
	return true
}
func (f fakeView) IdleMachine() (int, bool) {
	if f.idle < 0 {
		return 0, false
	}
	return f.idle, true
}

func TestParseRoundTrip(t *testing.T) {
	for _, name := range Known() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.String() != name {
			t.Fatalf("Parse(%q).String() = %q", name, p.String())
		}
		if _, err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) not valid: %v", name, err)
		}
	}
	p, err := Parse("p4c")
	if err != nil || p.Kind != "pkc" || p.Choices != 4 {
		t.Fatalf("Parse(p4c) = %+v, %v", p, err)
	}
	for _, bad := range []string{"", "p0c", "pxc", "rr", "least-loaded"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidateDefaults(t *testing.T) {
	p, err := Policy{Kind: "pkc"}.Validate()
	if err != nil || p.Choices != 2 {
		t.Fatalf("pkc defaults: %+v, %v", p, err)
	}
	g, err := Policy{Kind: "gossip"}.Validate()
	if err != nil || g.Interval != DefaultGossipInterval {
		t.Fatalf("gossip defaults: %+v, %v", g, err)
	}
	if _, err := (Policy{Kind: "spray"}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (Policy{Kind: "gossip", Batch: -1}).Validate(); err == nil {
		t.Fatal("negative gossip batch accepted")
	}
}

func TestGossipParams(t *testing.T) {
	i, s, b := Policy{Kind: "gossip", Interval: 100 * units.Microsecond,
		Staleness: 300 * units.Microsecond, Batch: 2}.GossipParams()
	if i != 100*units.Microsecond || s != 300*units.Microsecond || b != 2 {
		t.Fatalf("gossip params: %v %v %d", i, s, b)
	}
	for _, kind := range []string{"random", "jsq", "pkc"} {
		if i, s, b := (Policy{Kind: kind, Interval: 1, Batch: 1}).GossipParams(); i != 0 || s != 0 || b != 0 {
			t.Fatalf("%s leaked gossip params: %v %v %d", kind, i, s, b)
		}
	}
}

func TestJSQPlacer(t *testing.T) {
	v := fakeView{loads: []int{3, 1, 1, 2}, idle: -1}
	if m := (jsqPlacer{}).Place(v, nil); m != 1 {
		t.Fatalf("jsq chose %d, want lowest-index shortest queue 1", m)
	}
}

func TestPKCPlacerPrefersIdleHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := fakeView{loads: []int{2, 0, 0, 1}, idle: 1}
	p := Policy{Kind: "pkc", Choices: 2}.Placer()
	for i := 0; i < 10; i++ {
		if m := p.Place(v, rng); m != 1 {
			t.Fatalf("p2c ignored the idle heap: chose %d", m)
		}
	}
	// Saturated fleet: samples k and joins the least loaded of them —
	// both samples landing on the heaviest machine is legal but rare,
	// so over many draws the lightest machine dominates the heaviest.
	sat := fakeView{loads: []int{5, 1, 4, 2}, idle: -1}
	counts := make([]int, len(sat.loads))
	for i := 0; i < 400; i++ {
		counts[p.Place(sat, rng)]++
	}
	if counts[1] <= counts[0] || counts[1] <= counts[2] {
		t.Fatalf("p2c did not favour the lightest machine: %v over loads %v", counts, sat.loads)
	}
}

func TestRandomPlacerCoversFleet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := fakeView{loads: make([]int, 4), idle: 0}
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[(randomPlacer{}).Place(v, rng)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random placement did not cover the fleet: %v", seen)
	}
}

// TestPlacersSkipDeadMachines pins the failure-aware contract: no
// family ever routes to a machine whose Alive is false while any live
// machine remains.
func TestPlacersSkipDeadMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := fakeView{loads: []int{0, 9, 1, 2}, idle: -1, dead: []int{0, 2}}
	if m := (jsqPlacer{}).Place(v, nil); m != 3 {
		t.Fatalf("jsq chose %d, want live shortest queue 3", m)
	}
	for i := 0; i < 200; i++ {
		if m := (randomPlacer{}).Place(v, rng); m == 0 || m == 2 {
			t.Fatalf("random placed on dead machine %d", m)
		}
		if m := (pkcPlacer{k: 2}).Place(v, rng); m == 0 || m == 2 {
			t.Fatalf("p2c placed on dead machine %d", m)
		}
	}
	// All samples dead every draw is possible with k=1; the fallback
	// must still find a live machine.
	mostlyDead := fakeView{loads: []int{4, 7}, idle: -1, dead: []int{0}}
	for i := 0; i < 50; i++ {
		if m := (pkcPlacer{k: 1}).Place(mostlyDead, rng); m != 1 {
			t.Fatalf("p1c fallback chose dead machine %d", m)
		}
	}
}

// TestPlacerSatisfiesCoreInterface pins that every family materialises
// a core.Placement.
func TestPlacerSatisfiesCoreInterface(t *testing.T) {
	for _, name := range Known() {
		p, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		var _ core.Placement = p.Placer()
	}
}

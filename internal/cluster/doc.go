// Package cluster is the placement tier for multi-machine hermes
// simulations: named, parseable policies that route arriving jobs
// across a fleet of simulated machines (core.Cluster). The policies
// mirror the classic load-balancing menu — load-blind random,
// join-shortest-queue, power-of-k-choices backed by the cluster's
// idle-machine heap, and a gossip variant where placement stays blind
// and idle machines periodically pull work from loaded peers over
// deliberately stale queue views.
//
// Policies are pure descriptions (Kind + parameters), so they survive
// JSON round trips in sweep configs; Placer materialises the
// core.Placement behind one.
package cluster

package meter

import (
	"math"
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/power"
	"hermes/internal/units"
)

func newRig() (*power.Model, *cpu.Machine, *Meter) {
	spec := cpu.SystemB()
	model := power.NewModel(spec)
	mach := cpu.NewMachine(spec)
	return model, mach, New(model, mach)
}

func TestConstantPowerIntegration(t *testing.T) {
	model, mach, m := newRig()
	w := model.MachineWatts(mach)
	m.Advance(1 * units.Second)
	if got := m.Energy(); math.Abs(got-w) > 1e-9 {
		t.Fatalf("1s at %.3f W integrated to %.3f J", w, got)
	}
}

func TestPiecewiseIntegration(t *testing.T) {
	model, mach, m := newRig()
	w0 := model.MachineWatts(mach)
	m.Advance(500 * units.Millisecond) // 0.5 s at w0
	mach.Cores[0].State = cpu.Busy     // mutate after Advance
	w1 := model.MachineWatts(mach)
	m.Advance(1 * units.Second) // 0.5 s at w1
	want := 0.5*w0 + 0.5*w1
	if got := m.Energy(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("piecewise energy = %.4f, want %.4f", got, want)
	}
}

func TestAdvanceIdempotentAtSameTime(t *testing.T) {
	_, _, m := newRig()
	m.Advance(10 * units.Millisecond)
	e := m.Energy()
	m.Advance(10 * units.Millisecond)
	if m.Energy() != e {
		t.Fatal("Advance at the same time must not add energy")
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	_, _, m := newRig()
	m.Advance(time10())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards time")
		}
	}()
	m.Advance(time10() - 1)
}

func time10() units.Time { return 10 * units.Millisecond }

func TestSampler100Hz(t *testing.T) {
	_, _, m := newRig()
	m.Advance(1 * units.Second)
	// Samples at t = 0, 10ms, …, 1000ms inclusive → 101 samples.
	if n := len(m.Samples()); n != 101 {
		t.Fatalf("got %d samples over 1s, want 101", n)
	}
	s := m.Samples()[0]
	if s.Amps*SupplyVolts != s.Watts {
		t.Fatalf("sample amps inconsistent: %v", s)
	}
}

func TestMeterEnergyApproximatesIntegral(t *testing.T) {
	model, mach, m := newRig()
	// Alternate machine state every 100 ms for 2 s.
	for i := 1; i <= 20; i++ {
		m.Advance(units.Time(i) * 100 * units.Millisecond)
		if i%2 == 0 {
			mach.Cores[0].State = cpu.Busy
		} else {
			mach.Cores[0].State = cpu.IdleHalt
		}
	}
	exact := m.Energy()
	sampled := m.MeterEnergy()
	if exact <= 0 {
		t.Fatal("no energy integrated")
	}
	// The DAQ emulation should agree with the integral within a few
	// percent plus one extra boundary sample.
	if rel := math.Abs(sampled-exact) / exact; rel > 0.05 {
		t.Fatalf("meter %.3f J vs exact %.3f J (%.1f%% off)", sampled, exact, 100*rel)
	}
	_ = model
}

func TestEDP(t *testing.T) {
	if got := EDP(10, 2*units.Second); got != 20 {
		t.Fatalf("EDP = %v, want 20", got)
	}
}

func TestNow(t *testing.T) {
	_, _, m := newRig()
	m.Advance(42 * units.Microsecond)
	if m.Now() != 42*units.Microsecond {
		t.Fatalf("Now = %v", m.Now())
	}
}

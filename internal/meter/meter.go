// Package meter measures energy the way the paper does: the physical
// setup was a current meter on the 12 V CPU supply lines feeding an NI
// DAQ at 100 samples per second, with energy computed as
// Σ I · 12 V · 0.01 s. This package reproduces both that sampled
// measurement and an exact piecewise-constant integration of the power
// model, so experiments can report meter-faithful numbers while tests
// assert against the noise-free integral.
package meter

import (
	"hermes/internal/cpu"
	"hermes/internal/power"
	"hermes/internal/units"
)

// SupplyVolts is the CPU module supply rail voltage of the paper's
// measurement rig.
const SupplyVolts = 12.0

// SamplePeriod is the paper's DAQ sampling period (100 samples/s).
const SamplePeriod = 10 * units.Millisecond

// Sample is one meter reading.
type Sample struct {
	T     units.Time
	Watts float64
	// Amps is the current the paper's meter would report on the 12 V
	// rail for this power draw.
	Amps float64
	// Joules is the exact cumulative integrated energy at T.
	Joules float64
}

// Meter integrates machine power over virtual time. The owner must
// call Advance(now) before any machine state mutation and before
// reading totals; power is treated as constant between Advance calls
// (which is exact, because state only changes at Advance points).
type Meter struct {
	model *power.Model
	mach  *cpu.Machine

	last   units.Time
	joules float64
	gated  bool

	samples    []Sample
	nextSample units.Time
}

// New creates a meter over mach starting at time 0.
func New(model *power.Model, mach *cpu.Machine) *Meter {
	return &Meter{model: model, mach: mach}
}

// Advance integrates power from the previous Advance time to now using
// the machine's current (pre-mutation) state, and takes any 100 Hz
// samples that fall inside the interval.
func (m *Meter) Advance(now units.Time) {
	if now < m.last {
		panic("meter: time went backwards")
	}
	if now == m.last {
		return
	}
	w := m.model.MachineWatts(m.mach)
	if m.gated {
		w = 0
	}
	// 100 Hz samples inside (last, now]. The sample records the power
	// that was flowing when the DAQ tick fired and the cumulative
	// energy integrated up to that tick.
	for m.nextSample <= now {
		if m.nextSample > m.last || (m.nextSample == 0 && m.last == 0) {
			j := m.joules + w*(m.nextSample-m.last).Seconds()
			m.samples = append(m.samples, Sample{T: m.nextSample, Watts: w, Amps: w / SupplyVolts, Joules: j})
		}
		m.nextSample += SamplePeriod
	}
	m.joules += w * (now - m.last).Seconds()
	m.last = now
}

// Gate forces the meter to integrate zero power while on — the
// fail-stop model of a crashed machine: no draw through downtime, and
// the 100 Hz trace shows the outage as 0 W samples. Callers must
// Advance to the fault instant first so the preceding interval
// integrates at the live (or dead) rate it actually ran at.
func (m *Meter) Gate(on bool) { m.gated = on }

// Energy returns the exact integrated energy in joules up to the last
// Advance.
func (m *Meter) Energy() float64 { return m.joules }

// MeterEnergy returns the energy the paper's measurement rig would
// report: the sum over DAQ samples of I · 12 V · 0.01 s.
func (m *Meter) MeterEnergy() float64 {
	e := 0.0
	for _, s := range m.samples {
		e += s.Amps * SupplyVolts * SamplePeriod.Seconds()
	}
	return e
}

// Samples returns the recorded 100 Hz series (shared slice; callers
// must not mutate).
func (m *Meter) Samples() []Sample { return m.samples }

// DropSamplesBefore discards recorded samples with T < t and returns
// how many were dropped. Long-lived owners (the multi-job pool) call
// it to keep the trace bounded by their in-flight window; energy
// accumulators are unaffected. Note MeterEnergy only sums samples
// still held.
func (m *Meter) DropSamplesBefore(t units.Time) int {
	k := 0
	for k < len(m.samples) && m.samples[k].T < t {
		k++
	}
	if k > 0 {
		m.samples = m.samples[:copy(m.samples, m.samples[k:])]
	}
	return k
}

// Now returns the time of the last Advance.
func (m *Meter) Now() units.Time { return m.last }

// EDP returns the energy-delay product for energy e (joules) and
// duration t: the paper's energy-efficiency indicator (smaller is
// better).
func EDP(e float64, t units.Time) float64 { return e * t.Seconds() }

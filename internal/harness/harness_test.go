package harness

import (
	"strings"
	"testing"

	"hermes/internal/bench"
	"hermes/internal/core"
	"hermes/internal/cpu"
)

func tinySession() *Session {
	return NewSession(Options{Trials: 1, Scale: 0.05, InputSeed: 3})
}

func TestRunAndCache(t *testing.T) {
	s := tinySession()
	b, _ := bench.ByName("sort")
	spec := norm(Spec{System: cpu.SystemA(), Bench: b, Workers: 4, Mode: core.Unified})
	a1 := s.Run(spec)
	if a1.Span <= 0 || a1.Energy <= 0 || a1.Trials != 1 {
		t.Fatalf("bad avg: %+v", a1)
	}
	a2 := s.Run(spec)
	if a1.Span != a2.Span || a1.Energy != a2.Energy {
		t.Fatal("cache returned a different result")
	}
}

func TestNormUnifiesKeys(t *testing.T) {
	b, _ := bench.ByName("sort")
	implicit := norm(Spec{System: cpu.SystemA(), Bench: b, Workers: 4, Mode: core.Unified})
	explicit := norm(Spec{System: cpu.SystemA(), Bench: b, Workers: 4, Mode: core.Unified,
		Freqs: core.DefaultFreqs(cpu.SystemA())})
	if implicit.key() != explicit.key() {
		t.Fatalf("keys differ: %q vs %q", implicit.key(), explicit.key())
	}
	base := norm(Spec{System: cpu.SystemA(), Bench: b, Workers: 4, Mode: core.Baseline,
		Freqs: core.DefaultFreqs(cpu.SystemA())})
	if strings.Contains(base.key(), "GHz") {
		t.Fatal("baseline keys must not carry tempo frequencies")
	}
}

func TestCompareDirections(t *testing.T) {
	s := tinySession()
	b, _ := bench.ByName("sort")
	save, loss, edp := s.Compare(norm(Spec{System: cpu.SystemA(), Bench: b, Workers: 8, Mode: core.Unified}))
	if save < -0.5 || save > 0.6 {
		t.Fatalf("implausible saving %v", save)
	}
	if loss < -0.5 || loss > 0.6 {
		t.Fatalf("implausible loss %v", loss)
	}
	if edp <= 0 || edp > 2 {
		t.Fatalf("implausible EDP ratio %v", edp)
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	ids := Figures()
	want := []int{6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28}
	if len(ids) != len(want) {
		t.Fatalf("figures = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("figures[%d] = %d, want %d", i, ids[i], want[i])
		}
	}
	if _, err := NewSession(Quick()).Figure(99); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Figure:  "Figure X",
		Title:   "test",
		Columns: []string{"a", "bench"},
		Rows:    [][]string{{"1", "knn"}, {"22", "ray"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"Figure X", "bench", "22", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bench\n1,knn\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestWorkerCounts(t *testing.T) {
	a := workerCounts(cpu.SystemA())
	if len(a) != 4 || a[3] != 16 {
		t.Fatalf("SystemA workers = %v", a)
	}
	b := workerCounts(cpu.SystemB())
	if len(b) != 3 || b[2] != 4 {
		t.Fatalf("SystemB workers = %v", b)
	}
}

// TestFigure18Tiny regenerates the cheapest figure at tiny scale as an
// end-to-end harness smoke test.
func TestFigure18Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness end-to-end is not short")
	}
	s := NewSession(Options{Trials: 1, Scale: 0.04, InputSeed: 2})
	tab, err := s.Figure(18)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 5 benchmarks × 2 worker counts
		t.Fatalf("figure 18 rows = %d", len(tab.Rows))
	}
}

// TestFigure19TraceTiny checks the time-series figure produces sample
// rows.
func TestFigure19TraceTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness end-to-end is not short")
	}
	s := NewSession(Options{Trials: 1, Scale: 0.3, InputSeed: 2})
	tab, err := s.Figure(19)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("trace rows = %d, want some samples", len(tab.Rows))
	}
	if len(tab.Columns) != 3 {
		t.Fatalf("trace columns = %v", tab.Columns)
	}
}

// TestFigure23OpenSystemTiny renders the open-system extension figure
// at tiny scale: baseline and unified curves over the full rate grid,
// deterministic across two sessions.
func TestFigure23OpenSystemTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness end-to-end is not short")
	}
	render := func() Table {
		tab, err := tinySession().Figure(23)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	tab := render()
	if len(tab.Rows) != 2*len(openSystemRates) { // 2 modes × rate grid
		t.Fatalf("figure 23 rows = %d, want %d", len(tab.Rows), 2*len(openSystemRates))
	}
	modes := map[string]bool{}
	for _, row := range tab.Rows {
		modes[row[0]] = true
	}
	if !modes["baseline"] || !modes["hermes"] {
		t.Fatalf("figure 23 missing a mode: %v", modes)
	}
	if len(tab.Notes) < 4 { // 2 method notes + one knee line per mode
		t.Fatalf("figure 23 notes = %v", tab.Notes)
	}
	if again := render(); again.CSV() != tab.CSV() {
		t.Fatal("open-system figure not deterministic across sessions")
	}
}

// TestFigure25ClusterTiny renders the cluster placement-policy figure
// at tiny scale: one row per (policy, rate) on the fixed 6-machine
// fleet, deterministic across two sessions.
func TestFigure25ClusterTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness end-to-end is not short")
	}
	render := func() Table {
		tab, err := tinySession().Figure(25)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	tab := render()
	if len(tab.Rows) != 4*len(clusterRates) { // 4 policies × rate grid
		t.Fatalf("figure 25 rows = %d, want %d", len(tab.Rows), 4*len(clusterRates))
	}
	policies := map[string]bool{}
	for _, row := range tab.Rows {
		policies[row[0]] = true
		if row[1] != "6" {
			t.Fatalf("figure 25 fleet size = %q, want 6", row[1])
		}
	}
	for _, want := range []string{"random", "jsq", "p2c", "gossip"} {
		if !policies[want] {
			t.Fatalf("figure 25 missing policy %q: %v", want, policies)
		}
	}
	if again := render(); again.CSV() != tab.CSV() {
		t.Fatal("cluster figure not deterministic across sessions")
	}
}

// TestFigure26ClusterScalingTiny renders the fleet-size scaling figure
// at tiny scale: p2c and random over machines {2,4,8}.
func TestFigure26ClusterScalingTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("harness end-to-end is not short")
	}
	tab, err := tinySession().Figure(26)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2*3*len(clusterRates) { // 2 policies × 3 fleet sizes × rates
		t.Fatalf("figure 26 rows = %d, want %d", len(tab.Rows), 2*3*len(clusterRates))
	}
	fleets := map[string]bool{}
	for _, row := range tab.Rows {
		fleets[row[1]] = true
	}
	for _, want := range []string{"2", "4", "8"} {
		if !fleets[want] {
			t.Fatalf("figure 26 missing fleet size %q: %v", want, fleets)
		}
	}
}

func TestPctRatioFormat(t *testing.T) {
	if got := pct(0.123); got != "+12.3%" {
		t.Fatalf("pct = %q", got)
	}
	if got := pct(-0.05); got != "-5.0%" {
		t.Fatalf("pct = %q", got)
	}
	if got := ratio(0.9217); got != "0.922" {
		t.Fatalf("ratio = %q", got)
	}
}

func TestQuickFullOptions(t *testing.T) {
	q := Quick().withDefaults()
	if q.Trials != 2 || q.Scale != 0.25 {
		t.Fatalf("quick = %+v", q)
	}
	f := Full().withDefaults()
	if f.Trials != 5 || f.Scale != 1.0 || f.InputSeed != 42 {
		t.Fatalf("full = %+v", f)
	}
}

package harness

import (
	"fmt"
	"time"

	"hermes"
	"hermes/internal/bench"
	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/sweep"
	"hermes/internal/units"
	"hermes/internal/workload"
)

// figureFns maps paper figure numbers to their regenerators. Ids
// beyond 22 are open-system extensions of the evaluation (the paper's
// figures are all closed-system); they render through the same Table
// pipeline so `hermes-bench -fig 23 -csv out/` works like any other.
var figureFns = map[int]func(*Session) Table{
	6:  func(s *Session) Table { return s.overall(cpu.SystemA(), 6) },
	7:  func(s *Session) Table { return s.overall(cpu.SystemB(), 7) },
	8:  func(s *Session) Table { return s.edp(cpu.SystemA(), 8) },
	9:  func(s *Session) Table { return s.edp(cpu.SystemB(), 9) },
	10: func(s *Session) Table { return s.strategyEnergy(cpu.SystemA(), 10) },
	11: func(s *Session) Table { return s.strategyTime(cpu.SystemA(), 11) },
	12: func(s *Session) Table { return s.strategyEnergy(cpu.SystemB(), 12) },
	13: func(s *Session) Table { return s.strategyTime(cpu.SystemB(), 13) },
	14: func(s *Session) Table { return s.freqSelection(cpu.SystemA(), 14) },
	15: func(s *Session) Table { return s.freqSelection(cpu.SystemB(), 15) },
	16: func(s *Session) Table { return s.nFreq(cpu.SystemA(), 16) },
	17: func(s *Session) Table { return s.nFreq(cpu.SystemB(), 17) },
	18: func(s *Session) Table { return s.staticDynamic(18) },
	19: func(s *Session) Table { return s.timeSeries(19, "knn", 16) },
	20: func(s *Session) Table { return s.timeSeries(20, "knn", 8) },
	21: func(s *Session) Table { return s.timeSeries(21, "ray", 16) },
	22: func(s *Session) Table { return s.timeSeries(22, "ray", 8) },
	23: func(s *Session) Table {
		return s.openSystem(23, workload.Spec{Kind: "ticks", N: 64, Grain: 16, Work: 100_000})
	},
	24: func(s *Session) Table {
		return s.openSystem(24, workload.Spec{Kind: "fib", N: 14, Grain: 6, Work: 30_000})
	},
	25: func(s *Session) Table { return s.clusterPolicies(25) },
	26: func(s *Session) Table { return s.clusterScaling(26) },
	27: func(s *Session) Table { return s.clusterFaults(27) },
	28: func(s *Session) Table { return s.serviceClasses(28) },
}

// openSystemRates is the offered-load grid of the open-system figures.
var openSystemRates = []float64{50, 100, 200, 400}

// openSystem renders an open-system figure: baseline-vs-unified curves
// of latency, queueing delay, energy and steal interference against
// offered load, measured by the sweep subsystem over the virtual-time
// Sim pool (seeded Poisson arrivals replayed via SubmitTrace). The
// arrival window scales with the session's Scale like benchmark input
// sizes do, so quick sessions stay quick.
func (s *Session) openSystem(fig int, spec workload.Spec) Table {
	window := time.Duration(float64(2*time.Second) * s.opts.Scale)
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	cfg := sweep.Config{
		Workload: spec,
		Modes:    []core.Mode{core.Baseline, core.Unified},
		RatesRPS: openSystemRates,
		Window:   window,
		Seed:     s.opts.InputSeed,
		Trials:   s.opts.Trials,
		Workers:  4,
	}
	if s.opts.Verbose && s.Log != nil {
		cfg.Log = s.Log
	}
	res, err := sweep.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: open-system sweep failed: %v", err))
	}
	t := Table{
		Figure: fmt.Sprintf("Figure %d", fig),
		Title: fmt.Sprintf("Open system (extension): %s under Poisson load, baseline vs unified, 4 workers",
			spec.Kind),
		Columns: []string{"mode", "rps", "p50-ms", "p99-ms", "queue99-ms", "J/req", "avg-W", "steals/req", "peak-inflight"},
		Notes: []string{
			"extension beyond the paper (its evaluation is closed-system): deterministic",
			"virtual-time replay; sojourn includes queueing, queue99 = p99 of sojourn-span",
		},
	}
	for _, c := range res.Curves {
		for _, p := range c.Points {
			t.Rows = append(t.Rows, []string{
				c.Mode, fmt.Sprintf("%g", p.OfferedRPS),
				fmt.Sprintf("%.3f", p.P50SojournMS), fmt.Sprintf("%.3f", p.P99SojournMS),
				fmt.Sprintf("%.3f", p.P99QueueMS),
				fmt.Sprintf("%.4f", p.JoulesPerRequest), fmt.Sprintf("%.2f", p.AvgPowerW),
				fmt.Sprintf("%.2f", p.StealsPerRequest), fmt.Sprint(p.PeakInflight),
			})
		}
		if k, ok := c.Knee(); ok {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: latency knee at %g rps (p99 > %g× unloaded p50 %.3fms)",
				c.Mode, k, res.KneeFactor, c.UnloadedP50MS))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: no latency knee within the grid (unloaded p50 %.3fms)",
				c.Mode, c.UnloadedP50MS))
		}
	}
	return t
}

// serviceClasses renders Figure 28 (extension): per-class latency and
// SLO attainment vs offered load on the canonical mixed trace (80%
// heavy-tailed batch, 20% small latency-critical with a deadline and
// SLO target), baseline vs unified tempo. The per-class rows come from
// the same sweep the flat open-system figures use — the class
// dimension rides the existing deterministic replay, it does not get
// its own measurement path.
func (s *Session) serviceClasses(fig int) Table {
	window := time.Duration(float64(2*time.Second) * s.opts.Scale)
	if window < 50*time.Millisecond {
		window = 50 * time.Millisecond
	}
	spec := workload.Spec{Kind: "ticks", N: 64, Grain: 16, Work: 100_000}
	cfg := sweep.Config{
		Workload: spec,
		Trace:    "mix",
		Modes:    []core.Mode{core.Baseline, core.Unified},
		RatesRPS: openSystemRates,
		Window:   window,
		Seed:     s.opts.InputSeed,
		Trials:   s.opts.Trials,
		Workers:  4,
	}
	if s.opts.Verbose && s.Log != nil {
		cfg.Log = s.Log
	}
	res, err := sweep.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: service-class sweep failed: %v", err))
	}
	t := Table{
		Figure: fmt.Sprintf("Figure %d", fig),
		Title: fmt.Sprintf("Service classes (extension): per-class latency on the mixed trace, %s, baseline vs unified, 4 workers",
			spec.Kind),
		Columns: []string{"mode", "rps", "tenant", "priority", "p50-ms", "p95-ms", "p99-ms", "slo-att", "J/req"},
		Notes: []string{
			"extension beyond the paper: the mix trace interleaves 80% heavy-tailed batch arrivals with 20%",
			"small latency-critical jobs (priority 1, 5ms deadline and SLO); rows split each sweep point by",
			"service class — the latency-critical tail under FIFO intake is the cost ranked dispatch removes",
		},
	}
	for _, c := range res.Curves {
		for _, p := range c.Points {
			for _, cp := range p.Classes {
				att := "-"
				if cp.SLOAttainment != nil {
					att = fmt.Sprintf("%.3f", *cp.SLOAttainment)
				}
				t.Rows = append(t.Rows, []string{
					c.Mode, fmt.Sprintf("%g", p.OfferedRPS),
					cp.Tenant, fmt.Sprint(cp.Priority),
					fmt.Sprintf("%.3f", cp.P50SojournMS), fmt.Sprintf("%.3f", cp.P95SojournMS),
					fmt.Sprintf("%.3f", cp.P99SojournMS),
					att, fmt.Sprintf("%.4f", cp.JoulesPerRequest),
				})
			}
		}
	}
	return t
}

// clusterSpec is the workload the cluster figures run: service times
// of a few milliseconds per job on a 2-worker machine, so offered
// loads in the hundreds of rps genuinely contend for the fleet.
func clusterSpec() workload.Spec {
	return workload.Spec{Kind: "ticks", N: 128, Grain: 4, Work: 200_000}
}

// clusterRates is the offered-load grid of the cluster figures.
var clusterRates = []float64{100, 300, 600}

// runClusterFigure executes one cluster sweep for a figure, sharing
// the session's window scaling and seed discipline with openSystem.
func (s *Session) runClusterFigure(policies []hermes.Placement, machines []int, faults []string) sweep.ClusterResult {
	window := time.Duration(float64(time.Second) * s.opts.Scale)
	if window < 40*time.Millisecond {
		window = 40 * time.Millisecond
	}
	cfg := sweep.ClusterConfig{
		Workload: clusterSpec(),
		Faults:   faults,
		Mode:     core.Unified,
		Policies: policies,
		Machines: machines,
		RatesRPS: clusterRates,
		Window:   window,
		Seed:     s.opts.InputSeed,
		Trials:   s.opts.Trials,
		Workers:  2,
	}
	if s.opts.Verbose && s.Log != nil {
		cfg.Log = s.Log
	}
	res, err := sweep.RunCluster(cfg)
	if err != nil {
		panic(fmt.Sprintf("harness: cluster sweep failed: %v", err))
	}
	return res
}

// clusterRows flattens cluster curves into figure rows.
func clusterRows(t *Table, res sweep.ClusterResult) {
	for _, c := range res.Curves {
		for _, p := range c.Points {
			t.Rows = append(t.Rows, []string{
				c.Policy, fmt.Sprint(c.Machines), fmt.Sprintf("%g", p.OfferedRPS),
				fmt.Sprintf("%.3f", p.P50SojournMS), fmt.Sprintf("%.3f", p.P99SojournMS),
				fmt.Sprintf("%.4f", p.FleetJoulesPerRequest), fmt.Sprintf("%.2f", p.FleetAvgPowerW),
				fmt.Sprint(p.IdleMachines), fmt.Sprint(p.Migrated), fmt.Sprint(p.PeakInflight),
			})
		}
	}
}

// clusterPolicies renders Figure 25 (extension): placement policies
// compared on one fleet — fleet joules/request, tail latency and
// idle-machine consolidation vs offered load for random, jsq, p2c and
// gossip over six 2-worker machines.
func (s *Session) clusterPolicies(fig int) Table {
	res := s.runClusterFigure([]hermes.Placement{
		hermes.PlacementRandom(),
		hermes.PlacementJSQ(),
		hermes.PlacementPowerOfChoices(2),
		hermes.PlacementGossip(0, 0, 0),
	}, []int{6}, nil)
	t := Table{
		Figure: fmt.Sprintf("Figure %d", fig),
		Title: fmt.Sprintf("Cluster (extension): placement policies on 6 machines, %s under Poisson load, unified mode",
			clusterSpec().Kind),
		Columns: []string{"policy", "machines", "rps", "p50-ms", "p99-ms", "fleetJ/req", "fleet-W", "idle-machines", "migrated", "peak-inflight"},
		Notes: []string{
			"extension beyond the paper: N simulated machines in one virtual-time engine behind a placement tier;",
			"fleet energy charges every machine over the same window, so consolidating policies (p2c's idle heap)",
			"win by leaving whole machines parked in the lowest DVFS tier while random's collisions queue jobs",
		},
	}
	clusterRows(&t, res)
	return t
}

// clusterScaling renders Figure 26 (extension): fleet-size scaling for
// the consolidating vs spreading pair — how joules/request and the
// latency tail move as the same offered load runs over 2, 4 and 8
// machines.
func (s *Session) clusterScaling(fig int) Table {
	res := s.runClusterFigure([]hermes.Placement{
		hermes.PlacementPowerOfChoices(2),
		hermes.PlacementRandom(),
	}, []int{2, 4, 8}, nil)
	t := Table{
		Figure: fmt.Sprintf("Figure %d", fig),
		Title: fmt.Sprintf("Cluster (extension): fleet-size scaling, p2c vs random, %s under Poisson load, unified mode",
			clusterSpec().Kind),
		Columns: []string{"policy", "machines", "rps", "p50-ms", "p99-ms", "fleetJ/req", "fleet-W", "idle-machines", "migrated", "peak-inflight"},
		Notes: []string{
			"extension beyond the paper: growing the fleet at fixed offered load trades fleet joules/request",
			"(more idle floor draw) against tail latency; p2c keeps the extra machines parked until needed",
		},
	}
	clusterRows(&t, res)
	return t
}

// clusterFaults renders Figure 27 (extension): availability vs energy
// under injected faults — every registered fault plan replayed over
// the SAME seeded traces on a p2c fleet, so the availability ledger
// (crashes, retries, lost jobs, downtime) and the fleet energy bill
// are directly comparable against the fault-free row.
func (s *Session) clusterFaults(fig int) Table {
	res := s.runClusterFigure(
		[]hermes.Placement{hermes.PlacementPowerOfChoices(2)},
		[]int{4},
		[]string{"none", "crash", "failslow", "blip"},
	)
	t := Table{
		Figure: fmt.Sprintf("Figure %d", fig),
		Title: fmt.Sprintf("Cluster (extension): availability vs energy under fault injection, p2c on 4 machines, %s, unified mode",
			clusterSpec().Kind),
		Columns: []string{"faults", "rps", "p50-ms", "p99-ms", "fleetJ/req", "availability", "crashes", "retries", "lost", "downtime-ms"},
		Notes: []string{
			"extension beyond the paper: deterministic fault plans (crash = fail-stop with rejoin, failslow =",
			"long stragglers, blip = short 25x stalls) compiled from the run seed and replayed in virtual time;",
			"crashed machines draw zero power, their jobs are re-placed with seeded backoff (bounded retries)",
		},
	}
	for _, c := range res.Curves {
		faults := c.Faults
		if faults == "" {
			faults = "none"
		}
		for _, p := range c.Points {
			// Fault-free points leave Availability unset to keep the JSON
			// artifact byte-stable; the figure prints the 1 it trivially is.
			avail := p.Availability
			if c.Faults == "" && p.Completed > 0 {
				avail = 1
			}
			t.Rows = append(t.Rows, []string{
				faults, fmt.Sprintf("%g", p.OfferedRPS),
				fmt.Sprintf("%.3f", p.P50SojournMS), fmt.Sprintf("%.3f", p.P99SojournMS),
				fmt.Sprintf("%.4f", p.FleetJoulesPerRequest),
				fmt.Sprintf("%.4f", avail),
				fmt.Sprint(p.Crashes), fmt.Sprint(p.Retries), fmt.Sprint(p.Lost),
				fmt.Sprintf("%.3f", p.DowntimeS*1000),
			})
		}
	}
	return t
}

// norm fills in the default tempo pair so cache keys unify the "nil =
// default" and explicit spellings.
func norm(spec Spec) Spec {
	if spec.Mode != core.Baseline && len(spec.Freqs) == 0 {
		spec.Freqs = core.DefaultFreqs(spec.System)
	}
	if spec.Mode == core.Baseline {
		spec.Freqs = nil
	}
	return spec
}

// overall regenerates Figure 6 / Figure 7: normalized energy savings
// and time loss of unified HERMES vs the baseline runtime.
func (s *Session) overall(sys *cpu.Spec, fig int) Table {
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   fmt.Sprintf("Normalized energy savings and time loss of HERMES vs baseline on %s", sys.Name),
		Columns: []string{"bench", "workers", "energy-saving", "time-loss", "steals/trial"},
		Notes: []string{
			"paper: average 11-12% energy savings, 3-4% time loss across benchmarks and worker counts",
		},
	}
	var sumSave, sumLoss float64
	cells := 0
	for _, b := range bench.All() {
		for _, w := range workerCounts(sys) {
			spec := norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.Unified})
			save, loss, _ := s.Compare(spec)
			h := s.Run(spec)
			t.Rows = append(t.Rows, []string{b.Name, fmt.Sprint(w), pct(save), pct(loss), fmt.Sprintf("%.0f", h.Steals)})
			sumSave += save
			sumLoss += loss
			cells++
		}
	}
	t.Rows = append(t.Rows, []string{"average", "-", pct(sumSave / float64(cells)), pct(sumLoss / float64(cells)), "-"})
	return t
}

// edp regenerates Figure 8 / Figure 9: normalized energy-delay product.
func (s *Session) edp(sys *cpu.Spec, fig int) Table {
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   fmt.Sprintf("Normalized EDP of HERMES vs baseline on %s", sys.Name),
		Columns: []string{"bench", "workers", "normalized-EDP"},
		Notes:   []string{"paper: average ≈0.92; EDP improved (below 1.0) without exception"},
	}
	var sum float64
	cells := 0
	for _, b := range bench.All() {
		for _, w := range workerCounts(sys) {
			_, _, edp := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.Unified}))
			t.Rows = append(t.Rows, []string{b.Name, fmt.Sprint(w), ratio(edp)})
			sum += edp
			cells++
		}
	}
	t.Rows = append(t.Rows, []string{"average", "-", ratio(sum / float64(cells))})
	return t
}

// strategyEnergy regenerates Figure 10 / Figure 12: energy savings of
// each strategy alone, normalized by the unified algorithm's savings.
func (s *Session) strategyEnergy(sys *cpu.Spec, fig int) Table {
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   fmt.Sprintf("Energy: workpath-only and workload-only savings relative to unified on %s", sys.Name),
		Columns: []string{"bench", "workers", "workpath/unified", "workload/unified"},
		Notes: []string{
			"paper: each strategy alone contributes roughly half the unified savings;",
			"their sum approaches (or slightly exceeds) the unified total",
		},
	}
	for _, b := range bench.All() {
		for _, w := range workerCounts(sys) {
			uSave, _, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.Unified}))
			pSave, _, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.WorkpathOnly}))
			lSave, _, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.WorkloadOnly}))
			pr, lr := "n/a", "n/a"
			if uSave > 0.001 {
				pr, lr = ratio(pSave/uSave), ratio(lSave/uSave)
			}
			t.Rows = append(t.Rows, []string{b.Name, fmt.Sprint(w), pr, lr})
		}
	}
	return t
}

// strategyTime regenerates Figure 11 / Figure 13: time loss of each
// strategy alone relative to the unified algorithm's loss.
func (s *Session) strategyTime(sys *cpu.Spec, fig int) Table {
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   fmt.Sprintf("Time: workpath-only and workload-only loss relative to unified on %s", sys.Name),
		Columns: []string{"bench", "workers", "workpath/unified", "workload/unified"},
		Notes: []string{
			"paper: each strategy alone loses MORE time than unified (ratios above 1,",
			"e.g. ≈1.6-1.7x on Compare/8 workers): unification gets the best of both",
		},
	}
	for _, b := range bench.All() {
		for _, w := range workerCounts(sys) {
			_, uLoss, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.Unified}))
			_, pLoss, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.WorkpathOnly}))
			_, lLoss, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.WorkloadOnly}))
			pr, lr := "n/a", "n/a"
			if uLoss > 0.001 {
				pr, lr = ratio(pLoss/uLoss), ratio(lLoss/uLoss)
			}
			t.Rows = append(t.Rows, []string{b.Name, fmt.Sprint(w), pr, lr})
		}
	}
	return t
}

// slowPairs returns the paper's slow-frequency sweep per system
// (Figure 14: 2.4/{1.6,1.4,1.9}; Figure 15: 3.6/{2.7,2.1,3.3}).
func slowPairs(sys *cpu.Spec) []units.Freq {
	if sys.Name == "SystemB" {
		return []units.Freq{2_700_000 * units.KHz, 2_100_000 * units.KHz, 3_300_000 * units.KHz}
	}
	return []units.Freq{1_600_000 * units.KHz, 1_400_000 * units.KHz, 1_900_000 * units.KHz}
}

// freqSelection regenerates Figure 14 / Figure 15: the effect of the
// slow-tempo frequency choice under 2-frequency tempo control.
func (s *Session) freqSelection(sys *cpu.Spec, fig int) Table {
	pairs := slowPairs(sys)
	max := sys.MaxFreq()
	t := Table{
		Figure: fmt.Sprintf("Figure %d", fig),
		Title:  fmt.Sprintf("Effect of slow-frequency selection (fast fixed at %v) on %s", max, sys.Name),
		Columns: []string{"bench", "workers",
			"save@" + pairs[0].String(), "loss@" + pairs[0].String(),
			"save@" + pairs[1].String(), "loss@" + pairs[1].String(),
			"save@" + pairs[2].String(), "loss@" + pairs[2].String()},
		Notes: []string{
			"paper: a higher slow frequency gives less loss but fewer savings; a very low",
			"slow frequency loses heavily (and can even cost energy); the sweet spot is",
			"a slow/fast ratio near the golden ratio (~60%)",
		},
	}
	for _, b := range bench.All() {
		for _, w := range workerCounts(sys) {
			row := []string{b.Name, fmt.Sprint(w)}
			for _, slow := range pairs {
				save, loss, _ := s.Compare(norm(Spec{
					System: sys, Bench: b, Workers: w, Mode: core.Unified,
					Freqs: []units.Freq{max, slow},
				}))
				row = append(row, pct(save), pct(loss))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// nFreqSets returns the paper's N-frequency comparison sets.
func nFreqSets(sys *cpu.Spec) [][]units.Freq {
	if sys.Name == "SystemB" {
		return [][]units.Freq{
			{3_600_000 * units.KHz, 2_700_000 * units.KHz},
			{3_600_000 * units.KHz, 3_300_000 * units.KHz, 2_700_000 * units.KHz},
		}
	}
	return [][]units.Freq{
		{2_400_000 * units.KHz, 1_600_000 * units.KHz},
		{2_400_000 * units.KHz, 1_600_000 * units.KHz, 1_400_000 * units.KHz},
		{2_400_000 * units.KHz, 1_900_000 * units.KHz, 1_600_000 * units.KHz},
	}
}

// nFreq regenerates Figure 16 / Figure 17: 2-frequency vs 3-frequency
// tempo control.
func (s *Session) nFreq(sys *cpu.Spec, fig int) Table {
	sets := nFreqSets(sys)
	cols := []string{"bench", "workers"}
	for _, set := range sets {
		label := ""
		for i, f := range set {
			if i > 0 {
				label += "/"
			}
			label += f.String()
		}
		cols = append(cols, "save@"+label, "loss@"+label)
	}
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   fmt.Sprintf("N-frequency tempo control on %s", sys.Name),
		Columns: cols,
		Notes: []string{
			"paper: 2-frequency and 3-frequency results are similar; 3-frequency can",
			"lose slightly less time, 2-frequency keeps a slight edge on energy",
			"(less DVFS switching overhead)",
		},
	}
	for _, b := range bench.All() {
		for _, w := range workerCounts(sys) {
			row := []string{b.Name, fmt.Sprint(w)}
			for _, set := range sets {
				save, loss, _ := s.Compare(norm(Spec{
					System: sys, Bench: b, Workers: w, Mode: core.Unified, Freqs: set,
				}))
				row = append(row, pct(save), pct(loss))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t
}

// staticDynamic regenerates Figure 18: HERMES under static vs dynamic
// worker-core scheduling.
func (s *Session) staticDynamic(fig int) Table {
	sys := cpu.SystemA()
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   "Static vs dynamic scheduling (HERMES on SystemA)",
		Columns: []string{"bench", "workers", "static-save", "static-loss", "dynamic-save", "dynamic-loss"},
		Notes: []string{
			"paper: dynamic scheduling shows slightly higher energy than static, due to",
			"per-WORK affinity set/reset overhead; no significant imbalance from static",
		},
	}
	for _, b := range bench.All() {
		for _, w := range []int{8, 16} {
			stSave, stLoss, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.Unified, Sched: core.Static}))
			dySave, dyLoss, _ := s.Compare(norm(Spec{System: sys, Bench: b, Workers: w, Mode: core.Unified, Sched: core.Dynamic}))
			t.Rows = append(t.Rows, []string{
				b.Name, fmt.Sprint(w), pct(stSave), pct(stLoss), pct(dySave), pct(dyLoss),
			})
		}
	}
	return t
}

// timeSeries regenerates Figures 19–22: 100 Hz power traces of static
// vs dynamic scheduling for one benchmark and worker count.
func (s *Session) timeSeries(fig int, benchName string, workers int) Table {
	sys := cpu.SystemA()
	b, err := bench.ByName(benchName)
	if err != nil {
		panic(err)
	}
	// Larger inputs than the bar figures: the 100 Hz DAQ needs a run
	// spanning hundreds of milliseconds to draw a shape.
	st := s.Run(norm(Spec{System: sys, Bench: b, Workers: workers, Mode: core.Unified, Sched: core.Static, NFactor: 8}))
	dy := s.Run(norm(Spec{System: sys, Bench: b, Workers: workers, Mode: core.Unified, Sched: core.Dynamic, NFactor: 8}))
	t := Table{
		Figure:  fmt.Sprintf("Figure %d", fig),
		Title:   fmt.Sprintf("Power time series, %s, %d workers, SystemA (static vs dynamic)", benchName, workers),
		Columns: []string{"t", "static-W", "dynamic-W"},
		Notes: []string{
			"paper: the two schedules show similar shapes from separate executions;",
			"dynamic runs at a slightly higher level (affinity overhead)",
		},
	}
	n := len(st.LastSamples)
	if len(dy.LastSamples) > n {
		n = len(dy.LastSamples)
	}
	for i := 0; i < n; i++ {
		var ts units.Time
		stW, dyW := "-", "-"
		if i < len(st.LastSamples) {
			ts = st.LastSamples[i].T
			stW = fmt.Sprintf("%.1f", st.LastSamples[i].Watts)
		}
		if i < len(dy.LastSamples) {
			ts = dy.LastSamples[i].T
			dyW = fmt.Sprintf("%.1f", dy.LastSamples[i].Watts)
		}
		t.Rows = append(t.Rows, []string{ts.String(), stW, dyW})
	}
	return t
}

// Package harness maps every figure of the paper's evaluation
// (Figures 6–22) to the simulated experiment that regenerates it:
// which benchmarks, worker counts, scheduler modes, tempo frequency
// sets and scheduling policies to run, how to aggregate trials, and
// how to print the resulting series.
//
// The paper runs 20 trials per configuration and discards the first
// two; the harness runs a configurable number of trials that vary the
// scheduler seed (victim selection) while holding the input fixed,
// and averages. Results are cached within a Session so figures that
// share runs (e.g. Figure 6 and Figure 8) do not recompute them.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"hermes/internal/bench"
	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/meter"
	"hermes/internal/units"
)

// Options scale experiments between CI-quick and paper-full.
type Options struct {
	// Trials per configuration (averaged). Default 5.
	Trials int
	// Scale multiplies benchmark input sizes. Default 1.0.
	Scale float64
	// InputSeed fixes the benchmark inputs. Default 42.
	InputSeed int64
	// Verbose prints each run as it completes.
	Verbose bool
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 5
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.InputSeed == 0 {
		o.InputSeed = 42
	}
	return o
}

// Quick returns options sized for unit tests and smoke runs.
func Quick() Options { return Options{Trials: 2, Scale: 0.25} }

// Full returns the paper-scale defaults.
func Full() Options { return Options{} }

// Session runs experiments with caching.
type Session struct {
	opts  Options
	cache map[string]Avg
	Log   func(string)
}

// NewSession creates a session with the given options.
func NewSession(opts Options) *Session {
	return &Session{opts: opts.withDefaults(), cache: map[string]Avg{}}
}

// Spec identifies one simulated configuration to average over trials.
type Spec struct {
	System  *cpu.Spec
	Bench   *bench.Bench
	Workers int
	Mode    core.Mode
	Sched   core.Scheduling
	Freqs   []units.Freq // nil = system default pair
	// NFactor multiplies the benchmark's input size (default 1). The
	// time-series figures use larger inputs so the 100 Hz meter
	// records a useful trace.
	NFactor int
}

func (s Spec) key() string {
	fs := make([]string, len(s.Freqs))
	for i, f := range s.Freqs {
		fs[i] = f.String()
	}
	nf := s.NFactor
	if nf == 0 {
		nf = 1
	}
	return fmt.Sprintf("%s|%s|w%d|%s|%s|%s|n%d",
		s.System.Name, s.Bench.Name, s.Workers, s.Mode, s.Sched, strings.Join(fs, ","), nf)
}

// Avg is the trial-averaged outcome of one Spec.
type Avg struct {
	Span    float64 // seconds
	Energy  float64 // joules (exact integral)
	MeterJ  float64 // joules (100 Hz DAQ emulation)
	EDP     float64
	Steals  float64
	SlowOcc float64 // fraction of busy time below max frequency
	Trials  int
	// LastSamples is the 100 Hz trace of the final trial (time-series
	// figures want one representative trace, like the paper's).
	LastSamples []meter.Sample
}

// Run executes (or returns the cached) average for spec.
func (s *Session) Run(spec Spec) Avg {
	k := spec.key()
	if a, ok := s.cache[k]; ok {
		return a
	}
	nf := spec.NFactor
	if nf == 0 {
		nf = 1
	}
	n := int(float64(spec.Bench.DefaultN*nf) * s.opts.Scale)
	if n < 1000 {
		n = 1000
	}
	var a Avg
	for trial := 0; trial < s.opts.Trials; trial++ {
		load := spec.Bench.Build(n, s.opts.InputSeed)
		cfg := core.Config{
			Spec:       spec.System,
			Workers:    spec.Workers,
			Mode:       spec.Mode,
			Scheduling: spec.Sched,
			Freqs:      spec.Freqs,
			Seed:       s.opts.InputSeed*7919 + int64(trial)*104729 + 1,
		}
		r := core.Run(cfg, load.Root)
		if load.Check != nil {
			if err := load.Check(); err != nil {
				panic(fmt.Sprintf("harness: %s verification failed: %v", spec.Bench.Name, err))
			}
		}
		a.Span += r.Span.Seconds()
		a.Energy += r.EnergyJ
		a.MeterJ += r.MeterJ
		a.EDP += r.EDP
		a.Steals += float64(r.Steals)
		if r.BusyTime > 0 {
			a.SlowOcc += float64(r.SlowBusyTime) / float64(r.BusyTime)
		}
		a.LastSamples = r.Samples
		if s.Log != nil && s.opts.Verbose {
			s.Log(fmt.Sprintf("  %s trial %d: %s", k, trial, r.String()))
		}
	}
	t := float64(s.opts.Trials)
	a.Span /= t
	a.Energy /= t
	a.MeterJ /= t
	a.EDP /= t
	a.Steals /= t
	a.SlowOcc /= t
	a.Trials = s.opts.Trials
	s.cache[k] = a
	return a
}

// Compare runs spec and its baseline twin, returning the normalized
// quantities the paper plots: energy saving, time loss, EDP ratio.
func (s *Session) Compare(spec Spec) (saving, loss, edp float64) {
	h := s.Run(spec)
	b := spec
	b.Mode = core.Baseline
	b.Freqs = nil
	base := s.Run(b)
	return 1 - h.Energy/base.Energy, h.Span/base.Span - 1, h.EDP / base.EDP
}

// --- table rendering -------------------------------------------------

// Table is a printable experiment result.
type Table struct {
	Figure  string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the paper-expected shape, printed under the table.
	Notes []string
}

// String renders the table with fixed-width columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Figure, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// workerCounts returns the paper's worker sweeps per system:
// System A: 2, 4, 8, 16; System B: 2, 3, 4.
func workerCounts(spec *cpu.Spec) []int {
	if spec.Name == "SystemB" {
		return []int{2, 3, 4}
	}
	return []int{2, 4, 8, 16}
}

// pct formats a fraction as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }

// ratio formats a ratio to three decimals.
func ratio(x float64) string { return fmt.Sprintf("%.3f", x) }

// Figures lists the available figure ids in order.
func Figures() []int {
	ids := make([]int, 0, len(figureFns))
	for id := range figureFns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Figure regenerates the given paper figure.
func (s *Session) Figure(id int) (Table, error) {
	fn, ok := figureFns[id]
	if !ok {
		return Table{}, fmt.Errorf("harness: no figure %d (have %v)", id, Figures())
	}
	return fn(s), nil
}

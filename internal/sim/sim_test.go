package sim

import (
	"fmt"
	"strings"
	"testing"

	"hermes/internal/units"
)

func TestSingleProcSleep(t *testing.T) {
	e := NewEngine()
	var resumed units.Time
	e.Go("a", func(p *Proc) {
		resumed = p.Sleep(5 * units.Microsecond)
	})
	e.Run()
	if resumed != 5*units.Microsecond {
		t.Fatalf("resumed at %v, want 5µs", resumed)
	}
	if e.Now() != 5*units.Microsecond {
		t.Fatalf("engine now = %v", e.Now())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() string {
		var log []string
		e := NewEngine()
		for i := 0; i < 3; i++ {
			i := i
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Sleep(units.Time(i+1) * units.Microsecond)
					log = append(log, fmt.Sprintf("p%d@%v", i, e.Now()))
				}
			})
		}
		e.Run()
		return strings.Join(log, " ")
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	// Same-time events fire in schedule order: p0's 3µs wake (scheduled
	// 3rd overall among its own) vs p2's first — verify expected total
	// ordering by spot-checking the trace begins with p0@1µs.
	if !strings.HasPrefix(first, "p0@1.000µs") {
		t.Fatalf("unexpected trace start: %s", first)
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		p.Sleep(time1())
		order = append(order, "a")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(time1())
		order = append(order, "b")
	})
	e.Run()
	if strings.Join(order, "") != "ab" {
		t.Fatalf("same-time order = %v, want a before b", order)
	}
}

func time1() units.Time { return 1 * units.Microsecond }

func TestParkAndWake(t *testing.T) {
	e := NewEngine()
	var parked *Proc
	var wokenAt units.Time
	parked = e.Go("sleeper", func(p *Proc) {
		wokenAt = p.ParkUntilWake()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(7 * units.Microsecond)
		parked.Wake()
	})
	e.Run()
	if wokenAt != 7*units.Microsecond {
		t.Fatalf("woken at %v, want 7µs", wokenAt)
	}
}

func TestEarlyWakeCancelsTimer(t *testing.T) {
	e := NewEngine()
	var resumed units.Time
	var wakes int
	sleeper := e.Go("sleeper", func(p *Proc) {
		resumed = p.Sleep(100 * units.Microsecond)
		// Park again; if the stale timer still fired we'd resume at
		// 100µs instead of the partner's second wake at 20µs.
		resumed2 := p.ParkUntilWake()
		if resumed2 != 20*units.Microsecond {
			t.Errorf("second resume at %v, want 20µs", resumed2)
		}
		wakes++
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(10 * units.Microsecond)
		sleeper.Wake()
		p.Sleep(10 * units.Microsecond)
		sleeper.Wake()
	})
	e.Run()
	if resumed != 10*units.Microsecond {
		t.Fatalf("early wake at %v, want 10µs", resumed)
	}
	if wakes != 1 {
		t.Fatalf("sleeper body incomplete")
	}
}

func TestDoubleWakeSameInstant(t *testing.T) {
	e := NewEngine()
	count := 0
	sleeper := e.Go("sleeper", func(p *Proc) {
		p.ParkUntilWake()
		count++
	})
	e.Go("w1", func(p *Proc) {
		p.Sleep(time1())
		sleeper.Wake()
		sleeper.Wake() // duplicate at the same instant: no-op
	})
	e.Run()
	if count != 1 {
		t.Fatalf("sleeper ran %d times", count)
	}
}

func TestWakeFinishedProcIsNoop(t *testing.T) {
	e := NewEngine()
	done := e.Go("short", func(p *Proc) {})
	e.Go("late", func(p *Proc) {
		p.Sleep(time1())
		done.Wake() // must not panic or hang
	})
	e.Run()
}

func TestSpawnFromRunningProc(t *testing.T) {
	e := NewEngine()
	var childRan units.Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(3 * units.Microsecond)
		e.Go("child", func(c *Proc) {
			c.Sleep(2 * units.Microsecond)
			childRan = e.Now()
		})
		p.Sleep(10 * units.Microsecond)
	})
	e.Run()
	if childRan != 5*units.Microsecond {
		t.Fatalf("child ran at %v, want 5µs", childRan)
	}
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) {
		p.ParkUntilWake() // nobody will wake it
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.Run()
}

func TestNegativeSleepPanics(t *testing.T) {
	e := NewEngine()
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative sleep")
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine()
	const n = 100
	total := 0
	for i := 0; i < n; i++ {
		i := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for k := 0; k < 50; k++ {
				p.Sleep(units.Time(1+(i*7+k*13)%23) * units.Microsecond)
			}
			total++
		})
	}
	e.Run()
	if total != n {
		t.Fatalf("%d procs finished, want %d", total, n)
	}
}

func TestEventCancel(t *testing.T) {
	ev := &Event{}
	ev.Cancel()
	ev.Cancel() // idempotent
	if !ev.canceled {
		t.Fatal("cancel did not mark event")
	}
}

// TestIdleHookFeedsQuiescentEngine: a parked process plus an empty
// event queue triggers the idle hook instead of the deadlock panic;
// the hook injects a future wake and the simulation proceeds at that
// virtual time.
func TestIdleHookFeedsQuiescentEngine(t *testing.T) {
	e := NewEngine()
	var woke units.Time
	p := e.Go("sleeper", func(p *Proc) {
		woke = p.ParkUntilWake()
	})
	fed := false
	e.SetIdle(func() bool {
		if fed {
			return false // second quiescence: let the engine drain
		}
		fed = true
		e.Inject(p, 3*units.Millisecond)
		return true
	})
	e.Run()
	if woke != 3*units.Millisecond {
		t.Fatalf("woke at %v, want 3ms", woke)
	}
}

// TestInjectFrontPriority: an injected wake at a virtual time where an
// ordinary event is already scheduled dispatches first, regardless of
// how late (in wall-clock terms) it was injected — the determinism
// property external arrivals rely on.
func TestInjectFrontPriority(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("timer", func(p *Proc) {
		p.Sleep(units.Millisecond)
		order = append(order, "timer")
	})
	parked := false
	target := e.Go("injected", func(p *Proc) {
		parked = true
		p.ParkUntilWake()
		order = append(order, "injected")
	})
	armed := false
	e.SetTick(func() {
		if parked && !armed {
			armed = true
			e.Inject(target, units.Millisecond) // same instant as the timer, injected later
		}
	})
	e.Run()
	if strings.Join(order, ",") != "injected,timer" {
		t.Fatalf("order = %v, want injected before timer at the same instant", order)
	}
}

// TestInjectKeepsEarlierWake: injecting a later wake than the one
// already pending must not postpone the process.
func TestInjectKeepsEarlierWake(t *testing.T) {
	e := NewEngine()
	var woke units.Time
	p := e.Go("sleeper", func(p *Proc) {
		woke = p.Sleep(units.Microsecond)
	})
	armed := false
	e.SetTick(func() {
		if !armed {
			armed = true
			e.Inject(p, units.Millisecond) // later than the pending 1µs timer
		}
	})
	e.Run()
	if woke != units.Microsecond {
		t.Fatalf("woke at %v; a later Inject displaced an earlier wake", woke)
	}
}

// TestIsUnwind distinguishes the teardown signal from user panics.
func TestIsUnwind(t *testing.T) {
	if !IsUnwind(abortSignal{}) {
		t.Fatal("abortSignal not recognized")
	}
	if IsUnwind("boom") || IsUnwind(nil) {
		t.Fatal("user values misclassified as unwind")
	}
}

package sim

import (
	"container/heap"
	"fmt"
	"runtime/debug"
	"strings"

	"hermes/internal/units"
)

// Event is a scheduled wake-up for a process. Cancelled events stay in
// the heap and are skipped lazily.
type Event struct {
	t        units.Time
	prio     int8
	seq      uint64
	p        *Proc
	canceled bool
}

// Cancel marks the event so it will not fire. Safe to call on an
// already-cancelled event.
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type procState uint8

const (
	stateNew procState = iota
	stateRunning
	stateParked
	stateDone
)

// Proc is a simulated process.
type Proc struct {
	eng     *Engine
	ID      int
	Name    string
	wake    chan struct{}
	pending *Event
	state   procState
	fn      func(*Proc)
}

type ctrl struct {
	p        *Proc
	finished bool
}

// Engine owns the virtual clock and the event queue.
type Engine struct {
	now     units.Time
	events  eventHeap
	seq     uint64
	procs   []*Proc
	alive   int
	control chan ctrl
	current *Proc

	// trap records the first panic raised inside a process. Once set,
	// the engine stops event processing, unwinds every remaining
	// process (park resumes panic with abortSignal, so user defers
	// run), and re-raises the original panic from Run on the caller's
	// goroutine — where it can be recovered like any function panic
	// instead of crashing the process from an engine goroutine.
	trap    any
	trapped bool

	// tick, if set, runs at the top of every Run iteration, and idle
	// runs when the event queue is empty with processes still alive
	// (idle returning true retries instead of declaring deadlock).
	// Both execute on the engine goroutine with no process current, so
	// they may call Inject to hand external stimuli (job arrivals,
	// shutdown) into the deterministic event order.
	tick func()
	idle func() bool
}

// abortSignal unwinds a parked process during trap cleanup.
type abortSignal struct{}

// TaskPanic is the value Engine.Run re-raises when a process
// panicked: the original panic value plus the stack of the faulting
// process goroutine, which would otherwise be lost in the trap/
// re-raise handoff.
type TaskPanic struct {
	Value any
	Stack []byte
}

func (t *TaskPanic) Error() string {
	return fmt.Sprintf("%v\n%s", t.Value, t.Stack)
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{control: make(chan ctrl)}
}

// SetTick installs fn to run at the top of every Run iteration, before
// the next event is dispatched. Use it to poll external (non-virtual)
// inputs without blocking event processing.
func (e *Engine) SetTick(fn func()) { e.tick = fn }

// SetIdle installs fn to run when the event queue is empty while
// processes are still alive — the quiescent state a persistent
// simulation reaches between stimuli. fn returning true resumes the
// loop (it is expected to have scheduled new events, typically via
// Inject); false falls through to the deadlock panic.
func (e *Engine) SetIdle(fn func() bool) { e.idle = fn }

// Inject schedules an out-of-band wake for p at virtual time t (never
// before now), replacing any later pending wake. It may only be called
// when no process is running — from the tick/idle hooks or between
// runs. Injected wakes carry front priority: at equal virtual time
// they dispatch before ordinary events, so the order of the simulation
// cannot depend on *when* in wall-clock time the stimulus was handed
// in, only on its virtual timestamp.
func (e *Engine) Inject(p *Proc, t units.Time) {
	if e.current != nil {
		panic("sim: Inject while a process is running")
	}
	if p.state == stateDone {
		return
	}
	if t < e.now {
		t = e.now
	}
	if p.pending != nil {
		if p.pending.t <= t {
			return // already waking at or before t
		}
		p.pending.Cancel()
	}
	p.pending = e.scheduleAt(t, -1, p)
}

// IsUnwind reports whether a recovered panic value is the engine's
// internal teardown signal. Recover blocks inside process bodies must
// re-raise it untouched so trap cleanup can finish unwinding.
func IsUnwind(v any) bool {
	_, ok := v.(abortSignal)
	return ok
}

// Now returns the current virtual time. Only the running process (or
// the caller of Run, between runs) may call it.
func (e *Engine) Now() units.Time { return e.now }

// Current returns the process executing right now, or nil between
// events (hooks, or the caller of Run). Engine-side plumbing that may
// run on several processes uses it to avoid illegal self-wakes.
func (e *Engine) Current() *Proc { return e.current }

// Go registers a new process whose body starts at the current virtual
// time, after already-scheduled events at that time. It may be called
// before Run or from a running process.
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, ID: len(e.procs), Name: name, wake: make(chan struct{}), fn: fn}
	e.procs = append(e.procs, p)
	e.alive++
	p.pending = e.schedule(e.now, p)
	go func() {
		<-p.wake // first resume
		p.pending = nil
		p.state = stateRunning
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, unwinding := r.(abortSignal); !unwinding && !e.trapped {
						e.trapped = true
						e.trap = &TaskPanic{Value: r, Stack: debug.Stack()}
					}
				}
			}()
			if e.trapped {
				return // woken only to unwind before ever starting
			}
			p.fn(p)
		}()
		p.state = stateDone
		e.control <- ctrl{p: p, finished: true}
	}()
	return p
}

func (e *Engine) schedule(t units.Time, p *Proc) *Event {
	return e.scheduleAt(t, 0, p)
}

// scheduleAt enqueues a wake with an explicit tie-break priority; the
// priority must be fixed before the heap insert or ordering breaks.
func (e *Engine) scheduleAt(t units.Time, prio int8, p *Proc) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (%v < %v)", t, e.now))
	}
	e.seq++
	ev := &Event{t: t, prio: prio, seq: e.seq, p: p}
	heap.Push(&e.events, ev)
	return ev
}

// Run executes events until every process has finished. It panics on
// deadlock: no runnable events while processes are still alive. A
// panic inside a process is re-raised here, on the caller's
// goroutine, after every other process has been unwound.
func (e *Engine) Run() {
	for e.alive > 0 {
		var p *Proc
		if e.trapped {
			p = e.nextUnfinished()
			if p == nil {
				break
			}
			if p.pending != nil {
				p.pending.Cancel()
				p.pending = nil
			}
		} else {
			if e.tick != nil {
				e.tick()
			}
			ev := e.next()
			if ev == nil {
				if e.idle != nil && e.idle() {
					continue
				}
				panic("sim: deadlock — " + e.describeStall())
			}
			if ev.t < e.now {
				panic("sim: time went backwards")
			}
			e.now = ev.t
			p = ev.p
			p.pending = nil
		}
		p.state = stateRunning
		e.current = p
		p.wake <- struct{}{}
		c := <-e.control
		e.current = nil
		if c.finished {
			e.alive--
		}
	}
	if e.trapped {
		panic(e.trap)
	}
}

// nextUnfinished returns any process that has not completed, for trap
// unwinding. At the top of Run's loop no process is mid-handshake, so
// every non-done process is parked (or never started) and safe to
// resume.
func (e *Engine) nextUnfinished() *Proc {
	for _, p := range e.procs {
		if p.state != stateDone {
			return p
		}
	}
	return nil
}

func (e *Engine) next() *Event {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if !ev.canceled {
			return ev
		}
	}
	return nil
}

func (e *Engine) describeStall() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d processes alive at %v with empty event queue:", e.alive, e.now)
	for _, p := range e.procs {
		if p.state != stateDone {
			fmt.Fprintf(&b, " [%d %s state=%d]", p.ID, p.Name, p.state)
		}
	}
	return b.String()
}

// park hands control back to the engine and blocks until woken. If
// another process panicked while we were parked, resume by unwinding
// (user defers on this process's stack still run).
func (p *Proc) park() {
	p.state = stateParked
	p.eng.control <- ctrl{p: p}
	<-p.wake
	p.pending = nil
	p.state = stateRunning
	if p.eng.trapped {
		panic(abortSignal{})
	}
}

// WaitUntil parks until virtual time t (or an early Wake). It returns
// the time at which the process resumed.
func (p *Proc) WaitUntil(t units.Time) units.Time {
	p.mustBeCurrent("WaitUntil")
	if t < p.eng.now {
		panic("sim: WaitUntil into the past")
	}
	p.pending = p.eng.schedule(t, p)
	p.park()
	return p.eng.now
}

// Sleep parks for span d (or until an early Wake) and returns the
// resume time.
func (p *Proc) Sleep(d units.Time) units.Time {
	if d < 0 {
		panic("sim: negative sleep")
	}
	return p.WaitUntil(p.eng.now + d)
}

// ParkUntilWake parks with no timer; only Wake resumes the process.
func (p *Proc) ParkUntilWake() units.Time {
	p.mustBeCurrent("ParkUntilWake")
	p.pending = nil
	p.park()
	return p.eng.now
}

// Wake makes a parked process runnable at the current virtual time,
// cancelling any pending timer. The caller must be the currently
// running process (or the engine owner between runs); a process cannot
// wake itself. Waking an already-runnable or finished process is a
// no-op, so completion broadcasts are safe.
func (p *Proc) Wake() {
	if p.eng.current == p {
		panic("sim: process woke itself")
	}
	switch p.state {
	case stateDone:
		return
	case stateParked, stateNew:
		if p.pending != nil {
			if p.pending.t == p.eng.now {
				return // already scheduled to run now
			}
			p.pending.Cancel()
		}
		p.pending = p.eng.schedule(p.eng.now, p)
	case stateRunning:
		// Running but not current can only mean it is mid-handshake;
		// it will park or finish momentarily and has its own event.
	}
}

func (p *Proc) mustBeCurrent(op string) {
	if p.eng.current != nil && p.eng.current != p {
		panic("sim: " + op + " called by non-current process " + p.Name)
	}
}

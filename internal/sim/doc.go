// Package sim is a deterministic discrete-event engine. Simulated
// activities (workers, the DAQ sampler) run as coroutine-style
// processes: ordinary goroutines that the engine resumes one at a
// time, so execution is single-threaded in effect and fully
// reproducible — the event order depends only on (virtual time,
// schedule order).
//
// A process parks either until a scheduled virtual time (Sleep /
// WaitUntil) or indefinitely (ParkUntilWake), and any running process
// may wake a parked one (Wake), cancelling its pending timer. This
// early-wake primitive is what lets the scheduler re-rate in-flight
// task work when a DVFS transition commits mid-task.
package sim

// Package obs defines the observer hook through which the runtime
// streams scheduler events — steals, tempo switches, DVFS commits,
// energy samples, job lifecycle — to external telemetry without the
// observer being able to perturb scheduling decisions.
//
// Both executors emit through the same Event type. Under the
// discrete-event simulator events arrive on the single engine
// goroutine in deterministic order; under the real-concurrency
// executor they arrive from many worker goroutines at once, so
// Observer implementations must be safe for concurrent use.
package obs

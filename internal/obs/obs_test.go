package obs

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Steal:        "steal",
		TempoSwitch:  "tempo-switch",
		DVFSCommit:   "dvfs-commit",
		EnergySample: "energy-sample",
		JobStart:     "job-start",
		JobDone:      "job-done",
		Kind(250):    "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFuncAdapter(t *testing.T) {
	var got []Event
	var o Observer = Func(func(e Event) { got = append(got, e) })
	o.Observe(Event{Kind: Steal, Worker: 2, Victim: 0})
	o.Observe(Event{Kind: JobDone, Job: 5})
	if len(got) != 2 || got[0].Kind != Steal || got[1].Job != 5 {
		t.Fatalf("events = %+v", got)
	}
}

package obs

import "hermes/internal/units"

// Kind discriminates scheduler events.
type Kind uint8

const (
	// Steal is a successful steal: Worker took a task from Victim.
	Steal Kind = iota
	// TempoSwitch is a worker filing a tempo change: Worker requested
	// its core run at Freq.
	TempoSwitch
	// DVFSCommit is a clock-domain transition landing at Freq.
	DVFSCommit
	// EnergySample is one 100 Hz meter reading: Power is the
	// instantaneous draw, Energy the cumulative joules so far.
	EnergySample
	// JobStart marks a submitted job entering the system: on the
	// multi-job pool it fires at the job's (virtual) arrival time, when
	// the job may still be queued behind busy workers — not when its
	// first task begins executing. In-flight gauges built from
	// JobStart/JobDone therefore measure arrival→completion depth,
	// queued jobs included.
	JobStart
	// JobDone marks a job completing; Energy carries the job's
	// integrated joules.
	JobDone
)

func (k Kind) String() string {
	switch k {
	case Steal:
		return "steal"
	case TempoSwitch:
		return "tempo-switch"
	case DVFSCommit:
		return "dvfs-commit"
	case EnergySample:
		return "energy-sample"
	case JobStart:
		return "job-start"
	case JobDone:
		return "job-done"
	}
	return "invalid"
}

// Event is one scheduler occurrence. Fields not meaningful for a kind
// are zero (Worker and Victim use -1 for "no worker").
type Event struct {
	Kind Kind
	// Time is the event's timestamp: one monotonic clock across all
	// jobs on either backend. On the native backend it is wall-clock
	// time since executor start; on the simulator backend it is the
	// persistent engine's virtual time, globally ordered across the
	// multi-job stream (JobStart carries the job's virtual arrival,
	// JobDone its completion time). Only the single-shot core.Run
	// path still measures from its own run's time zero.
	Time units.Time
	// Worker is the acting worker id, -1 if not worker-scoped.
	Worker int
	// Victim is the steal victim's worker id (Steal only), else -1.
	Victim int
	// Freq is the target frequency (TempoSwitch, DVFSCommit).
	Freq units.Freq
	// Power is instantaneous watts (EnergySample).
	Power float64
	// Energy is cumulative joules (EnergySample) or the job's total
	// (JobDone).
	Energy float64
	// Sojourn is the job's enqueue-to-completion latency (JobDone
	// only): virtual on the simulator, wall-clock on the native
	// backend. It is carried explicitly so latency telemetry does not
	// depend on pairing JobDone with a JobStart that a lossy sink may
	// have dropped.
	Sojourn units.Time
	// Job is the owning job id (JobStart, JobDone), 0 otherwise.
	Job int64
	// Machine is the index of the simulated machine the event occurred
	// on. Single-machine runtimes emit 0 for every event; cluster runs
	// (hermes.NewCluster) stamp the owning machine, so one observer
	// stream can be demultiplexed per machine.
	Machine int
}

// Observer receives scheduler events. Observe must not block for long
// — on the simulator it runs inline with the engine; on the native
// executor it runs inline with workers — and must be concurrency-safe
// for the native backend.
type Observer interface {
	Observe(Event)
}

// Func adapts a plain function to the Observer interface.
type Func func(Event)

// Observe calls f.
func (f Func) Observe(e Event) { f(e) }

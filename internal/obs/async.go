package obs

import (
	"sync"
	"sync/atomic"
)

// DefaultBuffer is the Async event buffer size used when the caller
// passes a non-positive size.
const DefaultBuffer = 4096

// Async decouples event production from consumption: producers
// (scheduler workers, the meter loop) enqueue onto a bounded buffer
// with one atomic check and one channel send — never blocking, never
// waiting on the downstream sink — while a single consumer goroutine
// drains the buffer into the wrapped Observer.
//
// The buffer is bounded: when the consumer falls behind and the buffer
// is full, new events are dropped and counted rather than applying
// backpressure to the scheduler hot path. Telemetry loss is always
// observable through Dropped, so a sized-out deployment (Dropped
// staying 0) knows its event stream is complete.
//
// Close stops intake, drains every buffered event into the sink, and
// waits for the consumer to finish — events accepted before Close are
// never lost. Events observed after Close has begun are dropped and
// counted. Producers should therefore be stopped before Close when a
// complete stream matters (the Runtime closes its executor first for
// exactly this reason).
type Async struct {
	sink Observer
	buf  chan Event
	quit chan struct{}
	done chan struct{}

	closed    atomic.Bool
	closeOnce sync.Once
	closeMu   sync.Mutex // serializes the post-drain straggler sweep

	dropped   atomic.Uint64
	delivered atomic.Uint64
}

// NewAsync starts an async sink delivering to downstream with a
// buffer of size events (DefaultBuffer if size <= 0). The returned
// Async is itself an Observer, safe for concurrent use from any
// number of producers.
func NewAsync(downstream Observer, size int) *Async {
	if size <= 0 {
		size = DefaultBuffer
	}
	a := &Async{
		sink: downstream,
		buf:  make(chan Event, size),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.loop()
	return a
}

// Observe enqueues e without blocking: if the buffer has room the
// event is accepted, otherwise it is dropped and counted. Never
// called on the consumer goroutine's stack, so a slow sink cannot
// stall the caller.
func (a *Async) Observe(e Event) {
	if a.closed.Load() {
		a.dropped.Add(1)
		return
	}
	select {
	case a.buf <- e:
	default:
		a.dropped.Add(1)
	}
}

// Dropped returns how many events were discarded because the buffer
// was full (or because they arrived after Close began).
func (a *Async) Dropped() uint64 { return a.dropped.Load() }

// Delivered returns how many events have been handed to the
// downstream sink so far.
func (a *Async) Delivered() uint64 { return a.delivered.Load() }

// Close stops intake, drains all buffered events into the downstream
// sink, and waits for delivery to finish. Safe to call multiple
// times, including concurrently; every call returns only once the
// drain is complete.
func (a *Async) Close() error {
	a.closeOnce.Do(func() {
		a.closed.Store(true)
		close(a.quit)
	})
	<-a.done
	// Sweep stragglers: a producer that passed the closed check just
	// before Close flipped it may have enqueued after the drain loop
	// saw an empty buffer. By contract producers are stopped by now,
	// so one final non-blocking drain empties the buffer for good.
	a.closeMu.Lock()
	defer a.closeMu.Unlock()
	for {
		select {
		case e := <-a.buf:
			a.deliver(e)
		default:
			return nil
		}
	}
}

// loop is the single consumer: drain until quit, then drain the
// residue and exit.
func (a *Async) loop() {
	defer close(a.done)
	for {
		select {
		case e := <-a.buf:
			a.deliver(e)
		case <-a.quit:
			for {
				select {
				case e := <-a.buf:
					a.deliver(e)
				default:
					return
				}
			}
		}
	}
}

func (a *Async) deliver(e Event) {
	a.sink.Observe(e)
	a.delivered.Add(1)
}

package obs

import (
	"sync"
	"testing"
	"time"
)

// countingSink records every delivered event.
type countingSink struct {
	mu     sync.Mutex
	events []Event
}

func (c *countingSink) Observe(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *countingSink) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func TestAsyncDeliversInOrderAndDrains(t *testing.T) {
	sink := &countingSink{}
	a := NewAsync(sink, 128)
	const n = 100
	for i := 0; i < n; i++ {
		a.Observe(Event{Kind: Steal, Worker: i})
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.len(); got != n {
		t.Fatalf("delivered %d events, want %d", got, n)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, e := range sink.events {
		if e.Worker != i {
			t.Fatalf("event %d out of order: worker=%d", i, e.Worker)
		}
	}
	if a.Dropped() != 0 {
		t.Fatalf("dropped %d events below buffer size", a.Dropped())
	}
	if a.Delivered() != n {
		t.Fatalf("Delivered() = %d, want %d", a.Delivered(), n)
	}
}

// blockingSink parks inside Observe until released, signalling entry.
type blockingSink struct {
	entered chan struct{}
	release chan struct{}
	count   int
}

func (b *blockingSink) Observe(Event) {
	if b.count == 0 {
		b.entered <- struct{}{}
		<-b.release
	}
	b.count++
}

// TestAsyncDropCountExactUnderOverflow pins the drop accounting: with
// the consumer wedged inside the sink and the buffer full, every
// additional event must be counted as dropped — no more, no fewer.
func TestAsyncDropCountExactUnderOverflow(t *testing.T) {
	const bufSize = 16
	sink := &blockingSink{entered: make(chan struct{}, 1), release: make(chan struct{})}
	a := NewAsync(sink, bufSize)

	// Wedge the consumer inside the first delivery.
	a.Observe(Event{Kind: Steal})
	<-sink.entered

	// Fill the buffer exactly, then overflow by a known amount.
	for i := 0; i < bufSize; i++ {
		a.Observe(Event{Kind: Steal})
	}
	const overflow = 37
	for i := 0; i < overflow; i++ {
		a.Observe(Event{Kind: Steal})
	}
	if got := a.Dropped(); got != overflow {
		t.Fatalf("Dropped() = %d, want exactly %d", got, overflow)
	}

	close(sink.release)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything accepted must have been delivered: 1 wedged + bufSize.
	if sink.count != 1+bufSize {
		t.Fatalf("sink saw %d events, want %d", sink.count, 1+bufSize)
	}
	if got := a.Dropped(); got != overflow {
		t.Fatalf("Dropped() after close = %d, want %d", got, overflow)
	}
}

// TestAsyncProducerNotBlockedBySlowConsumer asserts the decoupling
// the async sink exists for: a consumer that takes ~forever per event
// must not make Observe slow.
func TestAsyncProducerNotBlockedBySlowConsumer(t *testing.T) {
	slow := Func(func(Event) { time.Sleep(50 * time.Millisecond) })
	a := NewAsync(slow, 4)
	const n = 10_000
	start := time.Now()
	for i := 0; i < n; i++ {
		a.Observe(Event{Kind: Steal})
	}
	elapsed := time.Since(start)
	// Synchronous delivery would take n*50ms = 500 s. Allow a huge
	// margin over the real cost (tens of microseconds) to stay
	// flake-free on loaded CI machines.
	if elapsed > 2*time.Second {
		t.Fatalf("10k Observe calls took %v with a slow consumer; producer is being blocked", elapsed)
	}
	if a.Dropped() == 0 {
		t.Fatal("expected drops with a 4-slot buffer and slow consumer")
	}
	a.Close() // ~5 slow deliveries to drain: ~250ms
}

func TestAsyncCloseIdempotentAndConcurrent(t *testing.T) {
	sink := &countingSink{}
	a := NewAsync(sink, 8)
	a.Observe(Event{Kind: JobStart, Job: 1})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := sink.len(); got != 1 {
		t.Fatalf("delivered %d events, want 1", got)
	}
	// Post-close events are dropped and counted, never delivered.
	a.Observe(Event{Kind: JobDone, Job: 1})
	if a.Dropped() != 1 {
		t.Fatalf("post-close Observe: Dropped() = %d, want 1", a.Dropped())
	}
	if got := sink.len(); got != 1 {
		t.Fatalf("post-close event was delivered (%d events)", got)
	}
}

func TestAsyncDefaultBuffer(t *testing.T) {
	sink := &countingSink{}
	a := NewAsync(sink, 0)
	if cap(a.buf) != DefaultBuffer {
		t.Fatalf("cap(buf) = %d, want %d", cap(a.buf), DefaultBuffer)
	}
	a.Close()
}

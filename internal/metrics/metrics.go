package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hermes/internal/obs"
	"hermes/internal/units"
)

// maxTrackedJobs bounds the in-flight job-start and job-kind tables:
// entries whose JobDone event was dropped (async-sink overflow) are
// swept once they fall this many job ids behind, instead of leaking.
const maxTrackedJobs = 8192

// UnknownKind labels jobs never tagged with a workload kind (submitted
// outside the serving path, or whose tag raced a very fast
// completion).
const UnknownKind = "unknown"

// LatencyBuckets are the upper bounds (seconds) of the job-latency
// histogram, exponential from 1 ms to 60 s; an implicit +Inf bucket
// catches the rest.
var LatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60,
}

// Snapshot is a consistent copy of every scalar series, for
// programmatic readers (load generators, tests, the serving
// controller).
type Snapshot struct {
	Steals        int64
	TempoSwitches int64
	DVFSCommits   int64
	JobsSubmitted int64 // accepted submissions, summed across kinds
	JobsStarted   int64
	JobsCompleted int64
	JobsInflight  int64
	EnergyJ       float64 // machine cumulative joules (last sample)
	PowerW        float64 // instantaneous watts (last sample)
	JobEnergyJ    float64 // sum of per-job joules over completed jobs
	LatencySum    float64 // seconds, over completed jobs, all kinds
	LatencyCount  int64
	DroppedEvents uint64
}

// Key identifies one labeled series slice: the workload kind plus the
// job's service class (tenant, priority). Unclassed jobs leave Tenant
// empty and Priority zero, and their series render with the workload
// label alone — the pre-tenancy scrape schema, byte for byte.
type Key struct {
	Kind     string
	Tenant   string
	Priority int
}

// classed reports whether the key carries a non-default service class
// and so renders tenant/priority labels.
func (k Key) classed() bool { return k.Tenant != "" || k.Priority != 0 }

// kindSeries is the per-(kind, class) slice of the labeled series:
// submissions and the sojourn histogram.
type kindSeries struct {
	submitted  int64
	latSum     float64
	latCount   int64
	latBuckets []int64 // per-bucket; cumulative is computed at scrape
}

// Registry accumulates Observer events into scrapeable series. All
// methods are safe for concurrent use; the expected deployment is a
// single obs.Async consumer feeding it while HTTP scrapes read.
type Registry struct {
	mu            sync.Mutex
	steals        int64
	tempoSwitches int64
	dvfsCommits   int64
	jobsStarted   int64
	jobsDone      int64
	energyJ       float64
	powerW        float64
	jobEnergyJ    float64
	jobStart      map[int64]units.Time // job id -> JobStart event time
	jobKind       map[int64]Key        // job id -> series key tag
	byKind        map[Key]*kindSeries
	// unknownDone remembers the latencies of jobs whose JobDone
	// arrived before their kind tag (the tag races the fold on fast
	// jobs): a late JobSubmitted migrates the observation from the
	// "unknown" series to the real kind, so per-kind latency counts
	// reconcile with submission counts.
	unknownDone map[int64]float64
	latSum      float64 // totals across kinds
	latCount    int64
	latBuckets  []int64 // per-bucket totals across kinds, non-cumulative

	dropSource func() uint64 // optional: async sink's drop counter
	collectors []func(io.Writer) error
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		jobStart:    make(map[int64]units.Time),
		jobKind:     make(map[int64]Key),
		byKind:      make(map[Key]*kindSeries),
		unknownDone: make(map[int64]float64),
		latBuckets:  make([]int64, len(LatencyBuckets)+1),
	}
}

// bucketFor returns the index of the latency bucket sec falls in
// (len(LatencyBuckets) = the +Inf bucket).
func bucketFor(sec float64) int {
	for i, ub := range LatencyBuckets {
		if sec <= ub {
			return i
		}
	}
	return len(LatencyBuckets)
}

// kind returns (creating if needed) the labeled series for one series
// key; r.mu must be held.
func (r *Registry) kind(k Key) *kindSeries {
	ks := r.byKind[k]
	if ks == nil {
		ks = &kindSeries{latBuckets: make([]int64, len(LatencyBuckets)+1)}
		r.byKind[k] = ks
	}
	return ks
}

// unknownKey is the series jobs fold under when they were never tagged
// (or their tag raced a very fast completion).
var unknownKey = Key{Kind: UnknownKind}

// JobSubmitted records one accepted submission of the given workload
// kind (hermes_jobs_submitted_total{workload=...}) and tags job id so
// its completion lands in that kind's latency histogram. Call it right
// after the runtime accepts the job. Unclassed convenience wrapper
// around JobSubmittedClass.
func (r *Registry) JobSubmitted(id int64, kind string) {
	r.JobSubmittedClass(id, kind, "", 0)
}

// JobSubmittedClass records one accepted submission with its service
// class: the submission counter and the job's latency observation land
// in the (workload, tenant, priority) series. Unclassed submissions
// (empty tenant, zero priority) keep the workload-only label set, so
// pre-tenancy scrape output is unchanged byte for byte.
func (r *Registry) JobSubmittedClass(id int64, kind, tenant string, priority int) {
	if kind == "" {
		kind = UnknownKind
	}
	key := Key{Kind: kind, Tenant: tenant, Priority: priority}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kind(key).submitted++
	if lat, raced := r.unknownDone[id]; raced && key != unknownKey {
		// The job finished before this tag landed and was folded under
		// "unknown": move the observation to its real series.
		delete(r.unknownDone, id)
		u := r.kind(unknownKey)
		u.latSum -= lat
		u.latCount--
		u.latBuckets[bucketFor(lat)]--
		ks := r.kind(key)
		ks.latSum += lat
		ks.latCount++
		ks.latBuckets[bucketFor(lat)]++
		return
	}
	r.jobKind[id] = key
	if len(r.jobKind) > 2*maxTrackedJobs {
		for old := range r.jobKind {
			if old <= id-maxTrackedJobs {
				delete(r.jobKind, old)
			}
		}
	}
}

// SetDropSource wires the registry to an event-drop counter (e.g.
// (*obs.Async).Dropped) so scrapes expose telemetry loss alongside
// the series it affects.
func (r *Registry) SetDropSource(fn func() uint64) {
	r.mu.Lock()
	r.dropSource = fn
	r.mu.Unlock()
}

// Observe folds one scheduler event into the registry.
func (r *Registry) Observe(e obs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e.Kind {
	case obs.Steal:
		r.steals++
	case obs.TempoSwitch:
		r.tempoSwitches++
	case obs.DVFSCommit:
		r.dvfsCommits++
	case obs.EnergySample:
		r.powerW = e.Power
		r.energyJ = e.Energy
	case obs.JobStart:
		r.jobsStarted++
		r.jobStart[e.Job] = e.Time
		// A JobDone lost to async-sink overflow would leave its start
		// entry behind forever; job ids are monotonic per executor, so
		// sweep entries too old to ever complete. Triggering at twice
		// the window keeps the sweep amortized O(1) per event: each
		// full scan evicts at least a window's worth of orphans.
		if len(r.jobStart) > 2*maxTrackedJobs {
			for id := range r.jobStart {
				if id <= e.Job-maxTrackedJobs {
					delete(r.jobStart, id)
				}
			}
		}
	case obs.JobDone:
		r.jobsDone++
		r.jobEnergyJ += e.Energy
		// Prefer the sojourn the backend stamped on the event — it
		// survives a dropped JobStart; fall back to start/done pairing
		// for older event sources.
		lat := e.Sojourn.Seconds()
		start, paired := r.jobStart[e.Job]
		if paired {
			delete(r.jobStart, e.Job)
		}
		if e.Sojourn <= 0 {
			if !paired {
				return
			}
			lat = (e.Time - start).Seconds()
		}
		if lat < 0 {
			lat = 0
		}
		key, tagged := r.jobKind[e.Job]
		if !tagged {
			key = unknownKey
			// Remember the fold so a late kind tag can migrate it.
			r.unknownDone[e.Job] = lat
			if len(r.unknownDone) > 2*maxTrackedJobs {
				for old := range r.unknownDone {
					if old <= e.Job-maxTrackedJobs {
						delete(r.unknownDone, old)
					}
				}
			}
		} else {
			delete(r.jobKind, e.Job)
		}
		r.observeLatencyLocked(key, lat)
	}
}

func (r *Registry) observeLatencyLocked(key Key, sec float64) {
	r.latSum += sec
	r.latCount++
	r.latBuckets[bucketFor(sec)]++
	ks := r.kind(key)
	ks.latSum += sec
	ks.latCount++
	ks.latBuckets[bucketFor(sec)]++
}

// snapshotLocked copies the scalar series; r.mu must be held.
// DroppedEvents is left for the caller to fill outside the lock (the
// drop source is an external callback that must not run under r.mu).
func (r *Registry) snapshotLocked() Snapshot {
	var submitted int64
	for _, ks := range r.byKind {
		submitted += ks.submitted
	}
	return Snapshot{
		Steals:        r.steals,
		TempoSwitches: r.tempoSwitches,
		DVFSCommits:   r.dvfsCommits,
		JobsSubmitted: submitted,
		JobsStarted:   r.jobsStarted,
		JobsCompleted: r.jobsDone,
		JobsInflight:  r.jobsStarted - r.jobsDone,
		EnergyJ:       r.energyJ,
		PowerW:        r.powerW,
		JobEnergyJ:    r.jobEnergyJ,
		LatencySum:    r.latSum,
		LatencyCount:  r.latCount,
	}
}

// Snapshot returns a consistent copy of the scalar series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := r.snapshotLocked()
	dropSource := r.dropSource
	r.mu.Unlock()
	if dropSource != nil {
		s.DroppedEvents = dropSource()
	}
	return s
}

// Hist is a point-in-time copy of the all-kinds job-latency histogram.
// Buckets are non-cumulative counts per LatencyBuckets bound, with one
// extra trailing +Inf bucket. Two Hists taken at different times can be
// differenced with Sub to get a windowed histogram, which Quantile then
// summarizes — the controller's view of "p99 over the last tick".
type Hist struct {
	Buckets []int64
	Sum     float64 // seconds
	Count   int64
}

// Sub returns the windowed histogram h − prev (observations recorded
// after prev was taken). Counts never decrease, so the result is
// well-formed whenever prev was taken from the same registry earlier.
func (h Hist) Sub(prev Hist) Hist {
	out := Hist{
		Buckets: make([]int64, len(h.Buckets)),
		Sum:     h.Sum - prev.Sum,
		Count:   h.Count - prev.Count,
	}
	for i := range h.Buckets {
		out.Buckets[i] = h.Buckets[i]
		if i < len(prev.Buckets) {
			out.Buckets[i] -= prev.Buckets[i]
		}
	}
	return out
}

// Quantile estimates the q-th latency quantile (seconds) by linear
// interpolation within the bucket the rank falls in, the same estimate
// Prometheus's histogram_quantile computes. Returns 0 for an empty
// histogram; observations in the +Inf bucket report the last finite
// bound.
func (h Hist) Quantile(q float64) float64 {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, n := range h.Buckets {
		if n <= 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(LatencyBuckets) {
			// +Inf bucket: the best finite statement is the last bound.
			return LatencyBuckets[len(LatencyBuckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = LatencyBuckets[i-1]
		}
		hi := LatencyBuckets[i]
		frac := (rank - float64(prev)) / float64(n)
		return lo + frac*(hi-lo)
	}
	return LatencyBuckets[len(LatencyBuckets)-1]
}

// LatencyHist returns a copy of the cumulative-since-boot job-latency
// histogram folded across workload kinds.
func (r *Registry) LatencyHist() Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Hist{
		Buckets: append([]int64(nil), r.latBuckets...),
		Sum:     r.latSum,
		Count:   r.latCount,
	}
}

// AddCollector appends an auxiliary series producer to scrapes: fn is
// invoked at the end of every WritePrometheus, after the registry's own
// series and outside its lock, so collectors may take their own locks
// freely. The serving controller uses this to publish hermes_control_*
// without the registry knowing about it.
func (r *Registry) AddCollector(fn func(io.Writer) error) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every series in the Prometheus text
// exposition format. Labeled families (submissions, the latency
// histogram) are broken down by workload kind, in sorted order so
// scrapes are stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	snap := r.snapshotLocked()
	kinds := make([]Key, 0, len(r.byKind))
	for k := range r.byKind {
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		// Keep the labeled families present (zeroed) before the first
		// job, so scrapers and series checks see a stable schema.
		r.kind(unknownKey)
		kinds = append(kinds, unknownKey)
	}
	sort.Slice(kinds, func(i, j int) bool {
		a, b := kinds[i], kinds[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Priority < b.Priority
	})
	series := make([]kindSeries, len(kinds))
	for i, k := range kinds {
		ks := r.byKind[k]
		series[i] = kindSeries{
			submitted:  ks.submitted,
			latSum:     ks.latSum,
			latCount:   ks.latCount,
			latBuckets: append([]int64(nil), ks.latBuckets...),
		}
	}
	dropSource := r.dropSource
	collectors := r.collectors
	r.mu.Unlock()
	if dropSource != nil {
		snap.DroppedEvents = dropSource()
	}

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, v any) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter("hermes_steals_total", "Successful task steals.", snap.Steals)
	counter("hermes_tempo_switches_total", "Worker tempo-level changes requested.", snap.TempoSwitches)
	counter("hermes_dvfs_commits_total", "Clock-domain frequency transitions that landed.", snap.DVFSCommits)
	counter("hermes_jobs_started_total", "Jobs that began execution.", snap.JobsStarted)
	counter("hermes_jobs_completed_total", "Jobs that completed (success, cancellation or failure).", snap.JobsCompleted)
	gauge("hermes_jobs_inflight", "Jobs started and not yet completed.", snap.JobsInflight)
	gauge("hermes_power_watts", "Instantaneous modeled machine power draw.", snap.PowerW)
	gauge("hermes_energy_joules", "Cumulative modeled machine energy.", snap.EnergyJ)
	counter("hermes_job_energy_joules_total", "Sum of per-job attributed energy over completed jobs.", snap.JobEnergyJ)
	counter("hermes_observer_dropped_events_total", "Observer events dropped by the async sink's bounded buffer.", snap.DroppedEvents)

	// Classed series carry tenant and priority labels after the
	// workload label; unclassed series render the workload label alone,
	// keeping the pre-tenancy scrape schema byte-identical.
	labels := func(k Key) string {
		if k.classed() {
			return fmt.Sprintf("workload=%q,tenant=%q,priority=\"%d\"", k.Kind, k.Tenant, k.Priority)
		}
		return fmt.Sprintf("workload=%q", k.Kind)
	}
	p("# HELP hermes_jobs_submitted_total Accepted job submissions by workload kind and service class.\n")
	p("# TYPE hermes_jobs_submitted_total counter\n")
	for i, k := range kinds {
		p("hermes_jobs_submitted_total{%s} %d\n", labels(k), series[i].submitted)
	}

	p("# HELP hermes_job_latency_seconds Job sojourn time from submission to completion, by workload kind and service class.\n")
	p("# TYPE hermes_job_latency_seconds histogram\n")
	for i, k := range kinds {
		ks := series[i]
		lk := labels(k)
		var cum int64
		for b, ub := range LatencyBuckets {
			cum += ks.latBuckets[b]
			p("hermes_job_latency_seconds_bucket{%s,le=%q} %d\n", lk, formatBound(ub), cum)
		}
		cum += ks.latBuckets[len(LatencyBuckets)]
		p("hermes_job_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", lk, cum)
		p("hermes_job_latency_seconds_sum{%s} %v\n", lk, ks.latSum)
		p("hermes_job_latency_seconds_count{%s} %d\n", lk, ks.latCount)
	}
	if err != nil {
		return err
	}
	for _, fn := range collectors {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal representation.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format, for mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ParseText extracts series values from a Prometheus text exposition —
// the minimal reader the load generator uses to diff /metrics scrapes
// without a client dependency. Unlabeled series map under their bare
// name. Labeled series map under the full "name{labels}" string AND
// fold (sum) into the bare name, so readers of the formerly-unlabeled
// totals — hermes_job_latency_seconds_count, the per-kind submission
// counter — keep working on labeled output. The bare-name fold is
// meaningful for counter families; for bucketed series it sums across
// le bounds and should be read via the full labeled keys instead.
func ParseText(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		if bare, _, labeled := strings.Cut(name, "{"); labeled {
			out[name] = v
			out[bare] += v
			continue
		}
		out[name] = v
	}
	return out
}

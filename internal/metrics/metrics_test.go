package metrics

import (
	"io"
	"strings"
	"testing"

	"hermes/internal/obs"
	"hermes/internal/units"
)

func feed(r *Registry, events ...obs.Event) {
	for _, e := range events {
		r.Observe(e)
	}
}

func TestRegistryFoldsEvents(t *testing.T) {
	r := New()
	feed(r,
		obs.Event{Kind: obs.JobStart, Job: 1, Time: 0},
		obs.Event{Kind: obs.Steal, Worker: 1, Victim: 0},
		obs.Event{Kind: obs.Steal, Worker: 2, Victim: 1},
		obs.Event{Kind: obs.TempoSwitch, Worker: 1, Freq: units.GHz},
		obs.Event{Kind: obs.DVFSCommit, Worker: 1, Freq: units.GHz},
		obs.Event{Kind: obs.EnergySample, Power: 42.5, Energy: 1.25},
		obs.Event{Kind: obs.JobDone, Job: 1, Time: 50 * units.Millisecond, Energy: 0.75},
	)
	s := r.Snapshot()
	if s.Steals != 2 || s.TempoSwitches != 1 || s.DVFSCommits != 1 {
		t.Fatalf("scheduler counters wrong: %+v", s)
	}
	if s.JobsStarted != 1 || s.JobsCompleted != 1 || s.JobsInflight != 0 {
		t.Fatalf("job counters wrong: %+v", s)
	}
	if s.PowerW != 42.5 || s.EnergyJ != 1.25 || s.JobEnergyJ != 0.75 {
		t.Fatalf("energy series wrong: %+v", s)
	}
	if s.LatencyCount != 1 || s.LatencySum < 0.049 || s.LatencySum > 0.051 {
		t.Fatalf("latency fold wrong: count=%d sum=%g", s.LatencyCount, s.LatencySum)
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	r := New()
	// 3 untagged jobs: 2 ms, 30 ms, 2 s — they land in the "unknown"
	// workload label.
	lat := []units.Time{2 * units.Millisecond, 30 * units.Millisecond, 2 * units.Second}
	for i, l := range lat {
		id := int64(i + 1)
		feed(r,
			obs.Event{Kind: obs.JobStart, Job: id, Time: 0},
			obs.Event{Kind: obs.JobDone, Job: id, Time: l},
		)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`hermes_job_latency_seconds_bucket{workload="unknown",le="0.0025"} 1`,
		`hermes_job_latency_seconds_bucket{workload="unknown",le="0.05"} 2`,
		`hermes_job_latency_seconds_bucket{workload="unknown",le="2.5"} 3`,
		`hermes_job_latency_seconds_bucket{workload="unknown",le="+Inf"} 3`,
		`hermes_job_latency_seconds_count{workload="unknown"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
	// The bare-name fold keeps pre-label readers working.
	if vals := ParseText(text); vals["hermes_job_latency_seconds_count"] != 3 {
		t.Errorf("bare-name count fold = %g, want 3", vals["hermes_job_latency_seconds_count"])
	}
}

// TestPerKindLatencyLabels pins the per-workload breakdown: tagged
// jobs land in their own kind's histogram and submission counter,
// with sojourn taken from the JobDone event itself.
func TestPerKindLatencyLabels(t *testing.T) {
	r := New()
	r.JobSubmitted(1, "fib")
	r.JobSubmitted(2, "matmul")
	r.JobSubmitted(3, "fib")
	feed(r,
		obs.Event{Kind: obs.JobStart, Job: 1, Time: 0},
		obs.Event{Kind: obs.JobStart, Job: 2, Time: 0},
		obs.Event{Kind: obs.JobStart, Job: 3, Time: 0},
		obs.Event{Kind: obs.JobDone, Job: 1, Time: 5 * units.Second, Sojourn: 2 * units.Millisecond},
		obs.Event{Kind: obs.JobDone, Job: 2, Time: 5 * units.Second, Sojourn: 30 * units.Millisecond},
		obs.Event{Kind: obs.JobDone, Job: 3, Time: 5 * units.Second, Sojourn: 40 * units.Millisecond},
	)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`hermes_jobs_submitted_total{workload="fib"} 2`,
		`hermes_jobs_submitted_total{workload="matmul"} 1`,
		`hermes_job_latency_seconds_count{workload="fib"} 2`,
		`hermes_job_latency_seconds_count{workload="matmul"} 1`,
		`hermes_job_latency_seconds_bucket{workload="fib",le="0.0025"} 1`,
		`hermes_job_latency_seconds_bucket{workload="matmul",le="0.05"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
	// Sojourn carried on the event wins over Time-pairing (Time here
	// would be a wild 5 s); the fib job's 2 ms proves it.
	s := r.Snapshot()
	if s.LatencySum > 0.1 {
		t.Errorf("latency folded from Time pairing, not Sojourn: sum=%g", s.LatencySum)
	}
	vals := ParseText(text)
	if vals["hermes_jobs_submitted_total"] != 3 {
		t.Errorf("bare-name submitted fold = %g, want 3", vals["hermes_jobs_submitted_total"])
	}
}

func TestWritePrometheusSeriesComplete(t *testing.T) {
	r := New()
	r.SetDropSource(func() uint64 { return 7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, series := range []string{
		"hermes_steals_total", "hermes_tempo_switches_total",
		"hermes_dvfs_commits_total", "hermes_jobs_started_total",
		"hermes_jobs_completed_total", "hermes_jobs_inflight",
		"hermes_power_watts", "hermes_energy_joules",
		"hermes_job_energy_joules_total", "hermes_observer_dropped_events_total",
		"hermes_job_latency_seconds_sum",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("scrape missing series %s", series)
		}
	}
	if !strings.Contains(text, "hermes_observer_dropped_events_total 7") {
		t.Error("drop source not wired into scrape")
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := New()
	feed(r,
		obs.Event{Kind: obs.Steal},
		obs.Event{Kind: obs.Steal},
		obs.Event{Kind: obs.EnergySample, Power: 10.5, Energy: 3.5},
	)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	vals := ParseText(b.String())
	if vals["hermes_steals_total"] != 2 {
		t.Fatalf("parsed steals = %g, want 2", vals["hermes_steals_total"])
	}
	if vals["hermes_energy_joules"] != 3.5 {
		t.Fatalf("parsed energy = %g, want 3.5", vals["hermes_energy_joules"])
	}
}

// TestLateKindTagMigratesLatency: a job whose JobDone races ahead of
// its kind tag is first folded under "unknown", then migrated to its
// real kind when the tag lands — per-kind latency counts reconcile
// with submission counts even for jobs faster than the tagging path.
func TestLateKindTagMigratesLatency(t *testing.T) {
	r := New()
	feed(r,
		obs.Event{Kind: obs.JobStart, Job: 1, Time: 0},
		obs.Event{Kind: obs.JobDone, Job: 1, Sojourn: 2 * units.Millisecond},
	)
	r.JobSubmitted(1, "fib")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`hermes_job_latency_seconds_count{workload="fib"} 1`,
		`hermes_job_latency_seconds_count{workload="unknown"} 0`,
		`hermes_job_latency_seconds_bucket{workload="fib",le="0.0025"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

// TestParseTextLabeledSeries pins the labeled-output contract: full
// "name{labels}" keys are exposed and fold into the bare name.
func TestParseTextLabeledSeries(t *testing.T) {
	vals := ParseText("a_total{workload=\"fib\"} 2\na_total{workload=\"ticks\"} 3\nb_gauge 1.5\n")
	if vals[`a_total{workload="fib"}`] != 2 || vals[`a_total{workload="ticks"}`] != 3 {
		t.Fatalf("labeled keys wrong: %v", vals)
	}
	if vals["a_total"] != 5 {
		t.Fatalf("bare-name fold = %g, want 5", vals["a_total"])
	}
	if vals["b_gauge"] != 1.5 {
		t.Fatalf("unlabeled series = %g, want 1.5", vals["b_gauge"])
	}
}

func TestUnmatchedJobDoneDoesNotPanic(t *testing.T) {
	r := New()
	// JobDone without a recorded JobStart (e.g. registry attached
	// mid-stream): counted, but no latency observation.
	feed(r, obs.Event{Kind: obs.JobDone, Job: 9, Time: units.Second, Energy: 1})
	s := r.Snapshot()
	if s.JobsCompleted != 1 || s.LatencyCount != 0 {
		t.Fatalf("mid-stream JobDone handled wrong: %+v", s)
	}
}

// TestJobStartTableBounded pins the leak fix: JobStart entries whose
// JobDone was lost to sink overflow are swept instead of accumulating
// forever.
func TestJobStartTableBounded(t *testing.T) {
	r := New()
	for id := int64(1); id <= 3*maxTrackedJobs; id++ {
		r.Observe(obs.Event{Kind: obs.JobStart, Job: id})
	}
	r.mu.Lock()
	n := len(r.jobStart)
	r.mu.Unlock()
	if n > 2*maxTrackedJobs+1 {
		t.Fatalf("jobStart table grew to %d entries (window %d); orphaned starts leak", n, maxTrackedJobs)
	}
}

// TestLatencyHistAndQuantile exercises the controller-facing histogram
// accessors: the all-kinds Hist, windowed differencing, and quantile
// interpolation.
func TestLatencyHistAndQuantile(t *testing.T) {
	r := New()
	for i := int64(1); i <= 100; i++ {
		// 100 jobs at 2 ms sojourn: p99 interpolates inside (1ms, 2.5ms].
		feed(r,
			obs.Event{Kind: obs.JobStart, Job: i, Time: 0},
			obs.Event{Kind: obs.JobDone, Job: i, Time: 2 * units.Millisecond, Sojourn: 2 * units.Millisecond},
		)
	}
	h := r.LatencyHist()
	if h.Count != 100 {
		t.Fatalf("hist count = %d, want 100", h.Count)
	}
	if got := h.Buckets[bucketFor(0.002)]; got != 100 {
		t.Fatalf("2ms bucket = %d, want 100", got)
	}
	q := h.Quantile(0.99)
	if q <= 0.001 || q > 0.0025 {
		t.Fatalf("p99 = %g, want within (1ms, 2.5ms]", q)
	}

	// Window: 50 more jobs at 40 ms; the diff must only see those.
	before := h
	for i := int64(101); i <= 150; i++ {
		feed(r,
			obs.Event{Kind: obs.JobStart, Job: i, Time: 0},
			obs.Event{Kind: obs.JobDone, Job: i, Time: 40 * units.Millisecond, Sojourn: 40 * units.Millisecond},
		)
	}
	win := r.LatencyHist().Sub(before)
	if win.Count != 50 {
		t.Fatalf("windowed count = %d, want 50", win.Count)
	}
	if q := win.Quantile(0.5); q <= 0.025 || q > 0.05 {
		t.Fatalf("windowed p50 = %g, want within (25ms, 50ms]", q)
	}

	var empty Hist
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty-hist quantile = %g, want 0", got)
	}
}

// TestSnapshotJobsSubmitted pins the submitted-total accessor.
func TestSnapshotJobsSubmitted(t *testing.T) {
	r := New()
	r.JobSubmitted(1, "fib")
	r.JobSubmitted(2, "fib")
	r.JobSubmitted(3, "matmul")
	if got := r.Snapshot().JobsSubmitted; got != 3 {
		t.Fatalf("JobsSubmitted = %d, want 3", got)
	}
}

// TestAddCollector verifies auxiliary series land at the end of a
// scrape.
func TestAddCollector(t *testing.T) {
	r := New()
	r.AddCollector(func(w io.Writer) error {
		_, err := io.WriteString(w, "hermes_control_state 1\n")
		return err
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(b.String(), "hermes_control_state 1\n") {
		t.Fatal("collector output missing from scrape tail")
	}
}

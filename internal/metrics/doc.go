// Package metrics folds the runtime's Observer event stream into
// Prometheus-text-format series — counters for scheduler activity
// (steals, tempo switches, DVFS commits, job lifecycle), gauges for
// instantaneous power and cumulative energy, and a histogram for job
// latency — with no external dependencies. A Registry is an
// obs.Observer, so it can sit directly behind an obs.Async sink and
// be scraped over HTTP via Handler.
//
// Beyond the scrape surface, a Registry is also a programmatic metrics
// source: Snapshot returns a consistent counter/gauge view, and
// LatencyHist exposes the cumulative latency histogram as a Hist value
// whose Sub and Quantile methods let a caller compute windowed
// percentiles — the signal the serving control loop
// (internal/control) reads every tick. AddCollector appends external
// series (e.g. hermes_control_*) to each scrape without coupling this
// package to their owners.
package metrics

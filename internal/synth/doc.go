// Package synth builds parameterized synthetic workloads — the job
// bodies hermes-serve accepts over HTTP and hermes-bench's load
// generator replays. Each workload is expressed through the wl.Ctx
// cost-accounting API, so the same request shapes run on either
// backend: the simulator charges the declared cycles to virtual time,
// the native executor throttles them in wall-clock time.
//
// Three shapes cover the classic stealing regimes:
//
//   - fib: an irregular recursive spawn tree (steal-heavy, the
//     canonical Cilk microbenchmark);
//   - matmul: a row-parallel dense kernel (regular, wide, memory-mixed);
//   - ticks: a flat parallel loop of independent units (embarrassingly
//     parallel service work).
package synth

package synth

import (
	"strings"
	"testing"

	"hermes/internal/core"
	"hermes/internal/units"
)

func TestDefaultsFilled(t *testing.T) {
	for _, kind := range Kinds {
		s, err := Spec{Kind: kind}.Validate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if s.N == 0 || s.Grain == 0 || s.Work == 0 {
			t.Fatalf("%s: defaults not filled: %+v", kind, s)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		spec Spec
		frag string
	}{
		{Spec{}, "missing workload"},
		{Spec{Kind: "quicksort"}, "unknown workload"},
		{Spec{Kind: "fib", N: 99}, "exceeds max"},
		{Spec{Kind: "matmul", N: 100000}, "exceeds max"},
		{Spec{Kind: "ticks", N: 1 << 24}, "exceeds max"},
		{Spec{Kind: "ticks", N: -1}, "must be positive"},
		{Spec{Kind: "ticks", Grain: -2}, "must be positive"},
		{Spec{Kind: "ticks", Work: -5}, "work must be"},
		{Spec{Kind: "ticks", Work: 2_000_000_000}, "work must be"},
		{Spec{Kind: "ticks", MemFrac: 1.5}, "memfrac"},
	}
	for _, c := range cases {
		if _, err := c.spec.Validate(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.spec, err, c.frag)
		}
	}
}

// TestWorkloadsRunOnSimulator compiles each workload and runs it to
// completion on the deterministic backend, checking the accounted
// work landed (tasks executed, cycles charged to virtual time).
func TestWorkloadsRunOnSimulator(t *testing.T) {
	for _, kind := range Kinds {
		spec, err := Spec{Kind: kind, N: smallN(kind)}.Validate()
		if err != nil {
			t.Fatal(err)
		}
		task, _, err := spec.Task()
		if err != nil {
			t.Fatal(err)
		}
		r := core.Run(core.Config{Workers: 4}, task)
		if r.Tasks == 0 || r.Span <= 0 || r.EnergyJ <= 0 {
			t.Errorf("%s: degenerate run: tasks=%d span=%v energy=%g", kind, r.Tasks, r.Span, r.EnergyJ)
		}
	}
}

// TestFibSpawnShape asserts fib produces the irregular spawn tree the
// stealing benchmarks rely on: parallel spawns above the cutoff only.
func TestFibSpawnShape(t *testing.T) {
	spec, err := Spec{Kind: "fib", N: 14, Grain: 8, Work: 100}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	task, _, err := spec.Task()
	if err != nil {
		t.Fatal(err)
	}
	r := core.Run(core.Config{Workers: 2}, task)
	// Nodes with n > cutoff spawn two children each; fib(14) with
	// cutoff 8 has a known small parallel region.
	if r.Spawns == 0 {
		t.Fatal("fib above cutoff spawned nothing")
	}
	serial, err := Spec{Kind: "fib", N: 14, Grain: 14, Work: 100}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	sTask, _, err := serial.Task()
	if err != nil {
		t.Fatal(err)
	}
	sr := core.Run(core.Config{Workers: 2}, sTask)
	if sr.Spawns != 0 {
		t.Fatalf("fib at full cutoff should run serially, spawned %d", sr.Spawns)
	}
	// Same accounted work either way: virtual spans must agree on one
	// worker... they ran on 2, so just check energy is comparable.
	if sr.Tasks != 1 {
		t.Fatalf("serial fib ran %d tasks, want 1", sr.Tasks)
	}
}

// TestDeterministicOnSim pins the sim-backend reproducibility synth
// inherits: identical specs give bit-identical reports.
func TestDeterministicOnSim(t *testing.T) {
	spec, err := Spec{Kind: "matmul", N: 16}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	run := func() core.Report {
		task, _, err := spec.Task()
		if err != nil {
			t.Fatal(err)
		}
		return core.Run(core.Config{Workers: 4, Seed: 7}, task)
	}
	a, b := run(), run()
	if a.Span != b.Span || a.EnergyJ != b.EnergyJ || a.Tasks != b.Tasks {
		t.Fatalf("sim runs diverged: %+v vs %+v", a, b)
	}
}

func smallN(kind string) int {
	switch kind {
	case "fib":
		return 12
	case "matmul":
		return 16
	default:
		return 32
	}
}

func TestWorkDefaultsScaleSanely(t *testing.T) {
	// Guard the service sizing: a default job must stay under ~1 s of
	// accounted serial work so request latencies remain service-shaped.
	for _, kind := range Kinds {
		spec, err := Spec{Kind: kind}.Validate()
		if err != nil {
			t.Fatal(err)
		}
		units_ := int64(0)
		switch kind {
		case "fib":
			units_ = fibNodes(spec.N)
		case "matmul":
			units_ = int64(spec.N) * int64(spec.N)
		case "ticks":
			units_ = int64(spec.N)
		}
		serial := units.Cycles(units_) * spec.Work
		if sec := serial.DurationAt(2400 * units.MHz).Seconds(); sec > 1 {
			t.Errorf("%s default = %.2fs serial at 2.4GHz; too heavy for a service default", kind, sec)
		}
	}
}

func fibNodes(n int) int64 {
	if n < 2 {
		return 1
	}
	return 1 + fibNodes(n-1) + fibNodes(n-2)
}

package synth

import (
	"fmt"

	"hermes/internal/units"
	"hermes/internal/wl"
)

// Kinds enumerates the accepted workload names.
var Kinds = []string{"fib", "matmul", "ticks"}

// Spec parameterizes one synthetic job. The zero value of every field
// except Kind picks a sensible default sized for service requests
// (milliseconds, not minutes); Validate fills them in and bounds the
// rest so an HTTP client cannot request an effectively unbounded job.
type Spec struct {
	// Kind selects the workload: "fib", "matmul" or "ticks".
	Kind string `json:"workload"`
	// N scales the problem: fib argument, matrix dimension, or tick
	// count. Defaults: fib 18, matmul 64, ticks 256.
	N int `json:"n,omitempty"`
	// Grain bounds task granularity: fib serial cutoff (subtrees at or
	// below it run serially), matmul rows per task, ticks per task.
	// Defaults: 10, 8, 16.
	Grain int `json:"grain,omitempty"`
	// Work is the accounted cost in cycles of one unit: one fib node,
	// one matrix element, one tick. Defaults: 20000, 1500, 100000.
	Work units.Cycles `json:"work,omitempty"`
	// MemFrac is the memory-bound (frequency-independent) fraction of
	// Work, 0..1. Default 0 for fib/ticks, 0.3 for matmul.
	MemFrac float64 `json:"memfrac,omitempty"`
}

// Bounds protecting the service from unbounded requests.
const (
	maxFibN    = 32
	maxMatmulN = 2048
	maxTicksN  = 1 << 20
	maxWork    = 1_000_000_000 // 1e9 cycles/unit ≈ 0.4 s at 2.4 GHz
)

// Validate fills defaults and rejects out-of-range parameters,
// returning the effective spec.
func (s Spec) Validate() (Spec, error) {
	switch s.Kind {
	case "fib":
		s = s.withDefaults(18, 10, 20_000, 0)
		if s.N > maxFibN {
			return s, fmt.Errorf("synth: fib n=%d exceeds max %d", s.N, maxFibN)
		}
	case "matmul":
		s = s.withDefaults(64, 8, 1_500, 0.3)
		if s.N > maxMatmulN {
			return s, fmt.Errorf("synth: matmul n=%d exceeds max %d", s.N, maxMatmulN)
		}
	case "ticks":
		s = s.withDefaults(256, 16, 100_000, 0)
		if s.N > maxTicksN {
			return s, fmt.Errorf("synth: ticks n=%d exceeds max %d", s.N, maxTicksN)
		}
	case "":
		return s, fmt.Errorf("synth: missing workload kind (want one of %v)", Kinds)
	default:
		return s, fmt.Errorf("synth: unknown workload %q (want one of %v)", s.Kind, Kinds)
	}
	if s.N < 1 {
		return s, fmt.Errorf("synth: n must be positive, got %d", s.N)
	}
	if s.Grain < 1 {
		return s, fmt.Errorf("synth: grain must be positive, got %d", s.Grain)
	}
	if s.Work < 0 || s.Work > maxWork {
		return s, fmt.Errorf("synth: work must be in [0, %d], got %d", int64(maxWork), s.Work)
	}
	if s.MemFrac < 0 || s.MemFrac > 1 {
		return s, fmt.Errorf("synth: memfrac must be in [0, 1], got %g", s.MemFrac)
	}
	return s, nil
}

// withDefaults fills zero fields. MemFrac has no in-band zero marker,
// so the default applies only when the whole spec left it unset along
// with Work (the common "just give me a matmul" request).
func (s Spec) withDefaults(n, grain int, work units.Cycles, memFrac float64) Spec {
	if s.N == 0 {
		s.N = n
	}
	if s.Grain == 0 {
		s.Grain = grain
	}
	if s.Work == 0 {
		s.Work = work
		if s.MemFrac == 0 {
			s.MemFrac = memFrac
		}
	}
	return s
}

// Task validates the spec and compiles it into a runnable root task,
// returning the effective (defaults-filled) spec alongside so callers
// report exactly what will run without validating twice.
func (s Spec) Task() (wl.Task, Spec, error) {
	s, err := s.Validate()
	if err != nil {
		return nil, s, err
	}
	switch s.Kind {
	case "fib":
		return func(c wl.Ctx) { fib(c, s.N, s.Grain, s.Work, s.MemFrac) }, s, nil
	case "matmul":
		return s.matmul(), s, nil
	case "ticks":
		return s.ticks(), s, nil
	}
	return nil, s, fmt.Errorf("synth: unknown workload %q", s.Kind)
}

// fib spawns the canonical binary recursion; every node accounts work
// cycles, and subtrees of height <= cutoff run serially on the owning
// worker (the usual Cilk granularity control).
func fib(c wl.Ctx, n, cutoff int, work units.Cycles, memFrac float64) {
	c.WorkMix(work, memFrac)
	if n < 2 {
		return
	}
	if n <= cutoff {
		fibSerial(c, n-1, work, memFrac)
		fibSerial(c, n-2, work, memFrac)
		return
	}
	c.Go(
		func(c wl.Ctx) { fib(c, n-1, cutoff, work, memFrac) },
		func(c wl.Ctx) { fib(c, n-2, cutoff, work, memFrac) },
	)
}

func fibSerial(c wl.Ctx, n int, work units.Cycles, memFrac float64) {
	c.WorkMix(work, memFrac)
	if n < 2 {
		return
	}
	fibSerial(c, n-1, work, memFrac)
	fibSerial(c, n-2, work, memFrac)
}

// matmul models a dense N×N multiply parallelized over rows: each row
// accounts N·work cycles with the spec's memory fraction (dense
// kernels stall on loads, so the default mixes in 30%).
func (s Spec) matmul() wl.Task {
	n, work, memFrac := s.N, s.Work, s.MemFrac
	return func(c wl.Ctx) {
		wl.For(c, 0, n, s.Grain, func(c wl.Ctx, lo, hi int) {
			for range hi - lo {
				c.WorkMix(units.Cycles(n)*work, memFrac)
			}
		})
	}
}

// ticks is a flat loop of N independent units of work cycles each —
// the shape of a batch of homogeneous service requests.
func (s Spec) ticks() wl.Task {
	n, work, memFrac := s.N, s.Work, s.MemFrac
	return func(c wl.Ctx) {
		wl.For(c, 0, n, s.Grain, func(c wl.Ctx, lo, hi int) {
			for range hi - lo {
				c.WorkMix(work, memFrac)
			}
		})
	}
}

// String renders the spec compactly for logs.
func (s Spec) String() string {
	return fmt.Sprintf("%s(n=%d grain=%d work=%d memfrac=%g)", s.Kind, s.N, s.Grain, s.Work, s.MemFrac)
}

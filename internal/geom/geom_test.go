package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Ops(t *testing.T) {
	a, b := Vec2{3, 4}, Vec2{1, 1}
	if d := a.Sub(b); d.X != 2 || d.Y != 3 {
		t.Fatalf("Sub = %v", d)
	}
	if c := (Vec2{1, 0}).Cross(Vec2{0, 1}); c != 1 {
		t.Fatalf("Cross = %v", c)
	}
	if d2 := a.Dist2(Vec2{0, 0}); d2 != 25 {
		t.Fatalf("Dist2 = %v", d2)
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	if s := a.Scale(2); s != (Vec3{2, 4, 6}) {
		t.Fatalf("Scale = %v", s)
	}
	if d := a.Dot(Vec3{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %v", d)
	}
	x := Vec3{1, 0, 0}.Cross(Vec3{0, 1, 0})
	if x != (Vec3{0, 0, 1}) {
		t.Fatalf("Cross = %v", x)
	}
}

func TestRayTriangleHit(t *testing.T) {
	tri := Triangle{A: Vec3{0, 0, 1}, B: Vec3{1, 0, 1}, C: Vec3{0, 1, 1}}
	r := Ray{O: Vec3{0.2, 0.2, 0}, D: Vec3{0, 0, 1}}
	d, ok := r.IntersectTriangle(tri)
	if !ok || math.Abs(d-1) > 1e-12 {
		t.Fatalf("hit = %v,%v, want t=1", d, ok)
	}
	// Ray pointing away misses.
	r.D = Vec3{0, 0, -1}
	if _, ok := r.IntersectTriangle(tri); ok {
		t.Fatal("backwards ray reported a hit")
	}
	// Ray outside the triangle misses.
	r = Ray{O: Vec3{2, 2, 0}, D: Vec3{0, 0, 1}}
	if _, ok := r.IntersectTriangle(tri); ok {
		t.Fatal("outside ray reported a hit")
	}
	// Parallel ray misses.
	r = Ray{O: Vec3{0, 0, 0}, D: Vec3{1, 0, 0}}
	if _, ok := r.IntersectTriangle(tri); ok {
		t.Fatal("parallel ray reported a hit")
	}
}

func TestAABBExtendUnion(t *testing.T) {
	bb := EmptyAABB()
	bb.Extend(Vec3{1, 2, 3})
	bb.Extend(Vec3{-1, 0, 5})
	if bb.Min != (Vec3{-1, 0, 3}) || bb.Max != (Vec3{1, 2, 5}) {
		t.Fatalf("bounds = %v", bb)
	}
	other := EmptyAABB()
	other.Extend(Vec3{10, 10, 10})
	bb.Union(other)
	if bb.Max != (Vec3{10, 10, 10}) {
		t.Fatalf("union max = %v", bb.Max)
	}
}

func TestLongestAxis(t *testing.T) {
	bb := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 5, 2}}
	if a := bb.LongestAxis(); a != 1 {
		t.Fatalf("axis = %d, want 1", a)
	}
}

func TestAABBRay(t *testing.T) {
	bb := AABB{Min: Vec3{0, 0, 0}, Max: Vec3{1, 1, 1}}
	hit := Ray{O: Vec3{0.5, 0.5, -1}, D: Vec3{0, 0, 1}}
	if !bb.IntersectRay(hit, 100) {
		t.Fatal("central ray should hit the box")
	}
	if bb.IntersectRay(hit, 0.5) {
		t.Fatal("tMax shorter than box entry should miss")
	}
	miss := Ray{O: Vec3{5, 5, -1}, D: Vec3{0, 0, 1}}
	if bb.IntersectRay(miss, 100) {
		t.Fatal("offset ray should miss the box")
	}
	par := Ray{O: Vec3{-1, 0.5, 0.5}, D: Vec3{0, 1, 0}} // parallel to x slabs, outside
	if bb.IntersectRay(par, 100) {
		t.Fatal("outside axis-parallel ray should miss")
	}
}

func TestRayHitInsideTriangleBoundsProperty(t *testing.T) {
	// Any reported hit point must lie inside the triangle's AABB
	// (within epsilon).
	f := func(ox, oy uint8, seed int64) bool {
		tris := RandomTriangles(4, seed)
		r := Ray{
			O: Vec3{float64(ox)/255 - 0.5, float64(oy)/255 - 0.5, -2},
			D: Vec3{0.1, 0.1, 1},
		}
		for _, tri := range tris {
			d, ok := r.IntersectTriangle(tri)
			if !ok {
				continue
			}
			p := r.O.Add(r.D.Scale(d))
			bb := tri.Bounds()
			const eps = 1e-9
			if p.X < bb.Min.X-eps || p.X > bb.Max.X+eps ||
				p.Y < bb.Min.Y-eps || p.Y > bb.Max.Y+eps ||
				p.Z < bb.Min.Z-eps || p.Z > bb.Max.Z+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomPoints2(100, 42)
	b := RandomPoints2(100, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomPoints2 not deterministic")
		}
	}
	t1 := RandomTriangles(10, 7)
	t2 := RandomTriangles(10, 7)
	if t1[9] != t2[9] {
		t.Fatal("RandomTriangles not deterministic")
	}
	r1 := RandomRays(10, 7)
	r2 := RandomRays(10, 7)
	if r1[9] != r2[9] {
		t.Fatal("RandomRays not deterministic")
	}
	c := RandomPoints2(100, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical points")
	}
}

func TestCentroid(t *testing.T) {
	tri := Triangle{A: Vec3{0, 0, 0}, B: Vec3{3, 0, 0}, C: Vec3{0, 3, 0}}
	if c := tri.Centroid(); c != (Vec3{1, 1, 0}) {
		t.Fatalf("centroid = %v", c)
	}
}

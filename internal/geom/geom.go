// Package geom provides the small amount of 2-D/3-D geometry the PBBS
// workloads need: vectors, bounding boxes, ray-triangle intersection
// (Möller–Trumbore) and deterministic point generators.
package geom

import (
	"math"
	"math/rand"
)

// Vec2 is a point or vector in the plane.
type Vec2 struct{ X, Y float64 }

// Sub returns a - b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Cross returns the z-component of the cross product a × b.
func (a Vec2) Cross(b Vec2) float64 { return a.X*b.Y - a.Y*b.X }

// Dist2 returns the squared distance between a and b.
func (a Vec2) Dist2(b Vec2) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Vec3 is a point or vector in space.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns a · b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns a × b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Triangle is a triangle in space.
type Triangle struct{ A, B, C Vec3 }

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() Vec3 {
	return Vec3{(t.A.X + t.B.X + t.C.X) / 3, (t.A.Y + t.B.Y + t.C.Y) / 3, (t.A.Z + t.B.Z + t.C.Z) / 3}
}

// Bounds returns the triangle's axis-aligned bounding box.
func (t Triangle) Bounds() AABB {
	bb := EmptyAABB()
	bb.Extend(t.A)
	bb.Extend(t.B)
	bb.Extend(t.C)
	return bb
}

// Ray is a half-line with origin O and direction D (not necessarily
// normalized).
type Ray struct{ O, D Vec3 }

// IntersectTriangle runs the Möller–Trumbore test. It returns the ray
// parameter t ≥ 0 of the hit and whether the ray hits the triangle.
func (r Ray) IntersectTriangle(tri Triangle) (float64, bool) {
	const eps = 1e-12
	e1 := tri.B.Sub(tri.A)
	e2 := tri.C.Sub(tri.A)
	p := r.D.Cross(e2)
	det := e1.Dot(p)
	if det > -eps && det < eps {
		return 0, false // parallel
	}
	inv := 1 / det
	s := r.O.Sub(tri.A)
	u := s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, false
	}
	q := s.Cross(e1)
	v := r.D.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, false
	}
	t := e2.Dot(q) * inv
	if t < eps {
		return 0, false
	}
	return t, true
}

// AABB is an axis-aligned bounding box.
type AABB struct{ Min, Max Vec3 }

// EmptyAABB returns an inverted box that Extend can grow from.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Extend grows the box to cover p.
func (b *AABB) Extend(p Vec3) {
	b.Min.X = math.Min(b.Min.X, p.X)
	b.Min.Y = math.Min(b.Min.Y, p.Y)
	b.Min.Z = math.Min(b.Min.Z, p.Z)
	b.Max.X = math.Max(b.Max.X, p.X)
	b.Max.Y = math.Max(b.Max.Y, p.Y)
	b.Max.Z = math.Max(b.Max.Z, p.Z)
}

// Union grows the box to cover o.
func (b *AABB) Union(o AABB) {
	b.Extend(o.Min)
	b.Extend(o.Max)
}

// LongestAxis returns 0, 1 or 2 for the box's longest extent.
func (b AABB) LongestAxis() int {
	dx := b.Max.X - b.Min.X
	dy := b.Max.Y - b.Min.Y
	dz := b.Max.Z - b.Min.Z
	if dx >= dy && dx >= dz {
		return 0
	}
	if dy >= dz {
		return 1
	}
	return 2
}

// IntersectRay returns whether r hits the box at some parameter in
// [0, tMax] using the slab method.
func (b AABB) IntersectRay(r Ray, tMax float64) bool {
	t0, t1 := 0.0, tMax
	for axis := 0; axis < 3; axis++ {
		var o, d, mn, mx float64
		switch axis {
		case 0:
			o, d, mn, mx = r.O.X, r.D.X, b.Min.X, b.Max.X
		case 1:
			o, d, mn, mx = r.O.Y, r.D.Y, b.Min.Y, b.Max.Y
		default:
			o, d, mn, mx = r.O.Z, r.D.Z, b.Min.Z, b.Max.Z
		}
		if d == 0 {
			if o < mn || o > mx {
				return false
			}
			continue
		}
		inv := 1 / d
		near := (mn - o) * inv
		far := (mx - o) * inv
		if near > far {
			near, far = far, near
		}
		if near > t0 {
			t0 = near
		}
		if far < t1 {
			t1 = far
		}
		if t0 > t1 {
			return false
		}
	}
	return true
}

// RandomPoints2 returns n deterministic pseudo-random points in the
// unit square, with a mild cluster structure (a fraction of points
// concentrate around a few centers) so spatial workloads are
// irregular, like PBBS's Plummer-style inputs.
func RandomPoints2(n int, seed int64) []Vec2 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Vec2, n)
	centers := make([]Vec2, 8)
	for i := range centers {
		centers[i] = Vec2{rng.Float64(), rng.Float64()}
	}
	for i := range pts {
		if rng.Intn(4) == 0 { // 25% clustered
			c := centers[rng.Intn(len(centers))]
			pts[i] = Vec2{
				c.X + 0.05*rng.NormFloat64(),
				c.Y + 0.05*rng.NormFloat64(),
			}
		} else {
			pts[i] = Vec2{rng.Float64(), rng.Float64()}
		}
	}
	return pts
}

// RandomTriangles returns n small deterministic triangles inside the
// unit cube, clustered like a scene rather than uniform dust.
func RandomTriangles(n int, seed int64) []Triangle {
	rng := rand.New(rand.NewSource(seed))
	tris := make([]Triangle, n)
	for i := range tris {
		c := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		size := 0.05 + 0.12*rng.Float64()
		jitter := func() Vec3 {
			return Vec3{
				(rng.Float64() - 0.5) * size,
				(rng.Float64() - 0.5) * size,
				(rng.Float64() - 0.5) * size,
			}
		}
		tris[i] = Triangle{A: c.Add(jitter()), B: c.Add(jitter()), C: c.Add(jitter())}
	}
	return tris
}

// RandomRays returns n deterministic rays shot from a plane in front
// of the unit cube toward it, like a camera.
func RandomRays(n int, seed int64) []Ray {
	rng := rand.New(rand.NewSource(seed))
	rays := make([]Ray, n)
	for i := range rays {
		o := Vec3{rng.Float64(), rng.Float64(), -1.5}
		target := Vec3{rng.Float64(), rng.Float64(), rng.Float64()}
		rays[i] = Ray{O: o, D: target.Sub(o)}
	}
	return rays
}

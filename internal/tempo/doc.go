// Package tempo implements the two HERMES tempo-control mechanisms of
// Ribic & Liu (ASPLOS 2014), independent of any executor:
//
//   - the immediacy list for workpath-sensitive control (Section 3.1):
//     a doubly-linked list across workers ordered by work-first
//     immediacy, grown at steal time and relayed when a victim runs
//     out of work;
//   - the deque-size thresholds for workload-sensitive control
//     (Section 3.2), including the online profiler that derives
//     thresholds from the recent average deque size:
//     thld_i = (2L/(K+1))·i for i = 1..K.
//
// The paper's Figure 5 pseudocode has two known slips that this
// package resolves (documented in DESIGN.md): list insertion line 23
// is corrected to the standard doubly-linked insert, and the tier
// index S spans [0, K] so that K thresholds yield K+1 tempo tiers as
// the prose example (L=15, K=2 → thresholds {10, 20}, three tiers)
// requires.
package tempo

package tempo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type w struct{ id int }

func nodes(n int) []*Node[*w] {
	out := make([]*Node[*w], n)
	for i := range out {
		out[i] = &Node[*w]{Val: &w{id: i}}
	}
	return out
}

func chainIDs(head *Node[*w]) []int {
	var ids []int
	for x := head; x != nil; x = x.Next() {
		ids = append(ids, x.Val.id)
	}
	return ids
}

func TestInsertThiefBasic(t *testing.T) {
	ns := nodes(3)
	InsertThief(ns[1], ns[0]) // 0 <- 1
	InsertThief(ns[2], ns[1]) // 0 <- 1 <- 2
	got := chainIDs(ns[0])
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
	if !ns[0].AtHead() || ns[1].AtHead() || ns[2].AtHead() {
		t.Fatal("AtHead wrong")
	}
}

// TestLaterThiefMoreImmediate reproduces Algorithm 3.1 lines 21–24: a
// second thief of the same victim is inserted between the victim and
// the earlier thief, because later-stolen tasks are more immediate.
func TestLaterThiefMoreImmediate(t *testing.T) {
	ns := nodes(3)
	InsertThief(ns[1], ns[0]) // thief 1 steals from 0
	InsertThief(ns[2], ns[0]) // thief 2 also steals from 0, later
	got := chainIDs(ns[0])
	want := []int{0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v (later thief is more immediate)", got, want)
		}
	}
	// Back-links must be consistent.
	if ns[1].Prev() != ns[2] || ns[2].Prev() != ns[0] {
		t.Fatal("prev pointers inconsistent after middle insert")
	}
}

func TestUnlinkMiddle(t *testing.T) {
	ns := nodes(3)
	InsertThief(ns[1], ns[0])
	InsertThief(ns[2], ns[1])
	ns[1].Unlink()
	got := chainIDs(ns[0])
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("chain after unlink = %v, want [0 2]", got)
	}
	if ns[1].InList() {
		t.Fatal("unlinked node still claims list membership")
	}
	ns[1].Unlink() // idempotent on detached node
}

func TestRelayVisitsDownstreamOnly(t *testing.T) {
	ns := nodes(4)
	InsertThief(ns[1], ns[0])
	InsertThief(ns[2], ns[1])
	InsertThief(ns[3], ns[2])
	var visited []int
	ns[1].Relay(func(x *w) { visited = append(visited, x.id) })
	if len(visited) != 2 || visited[0] != 2 || visited[1] != 3 {
		t.Fatalf("relay visited %v, want [2 3]", visited)
	}
	// Relay from the tail visits nobody.
	visited = nil
	ns[3].Relay(func(x *w) { visited = append(visited, x.id) })
	if len(visited) != 0 {
		t.Fatalf("tail relay visited %v", visited)
	}
}

// TestFigure3Sequence replays the workpath example of Figure 3 at the
// list/level granularity: steals chain workers 1→2→3, worker 1 runs
// out (relay), then worker 1 re-steals from worker 2.
func TestFigure3Sequence(t *testing.T) {
	ns := nodes(4) // workers 1..3 used; index = worker-1
	level := []int{0, 0, 0, 0}
	down := func(thief, victim int) { level[thief] = level[victim] + 1 }

	// (b) worker 2 steals from worker 1.
	InsertThief(ns[1], ns[0])
	down(1, 0)
	// (c) worker 3 steals from worker 2 (a thief's thief).
	InsertThief(ns[2], ns[1])
	down(2, 1)
	if level[0] != 0 || level[1] != 1 || level[2] != 2 {
		t.Fatalf("levels after two steals = %v", level[:3])
	}
	// (d,e) worker 1 finishes: relay raises every downstream worker.
	ns[0].Relay(func(x *w) { level[x.id]-- })
	ns[0].Unlink()
	if level[1] != 0 || level[2] != 1 {
		t.Fatalf("levels after relay = %v, want worker2=0 worker3=1", level[:3])
	}
	// Thief ordering is preserved: worker 3 remains slower than 2.
	if !(level[2] > level[1]) {
		t.Fatal("relay must preserve relative tempo order")
	}
	// (f) worker 1 steals from worker 2: now 2 is the victim, 1 the thief.
	InsertThief(ns[0], ns[1])
	down(0, 1)
	if level[0] != 1 {
		t.Fatalf("worker1 after re-steal = %d, want victim level+1 = 1", level[0])
	}
	ids := chainIDs(ns[1])
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 0 || ids[2] != 2 {
		t.Fatalf("chain = %v, want [1 0 2]", ids)
	}
}

func TestListWellFormedProperty(t *testing.T) {
	// Random steal/unlink sequences keep the list well-formed: every
	// next/prev pair is mutual and no node is reachable twice.
	f := func(ops []uint16) bool {
		const n = 8
		ns := nodes(n)
		rng := rand.New(rand.NewSource(1))
		for _, op := range ops {
			a := int(op) % n
			b := int(op>>4) % n
			if a == b {
				continue
			}
			if op>>12%3 == 0 {
				ns[a].Unlink()
			} else if !ns[a].InList() || rng.Intn(2) == 0 {
				// a steals from b if a is free to be inserted
				if !ns[a].InList() {
					InsertThief(ns[a], ns[b])
				}
			}
			// Validate invariants over all nodes.
			for _, x := range ns {
				if x.next != nil && x.next.prev != x {
					return false
				}
				if x.prev != nil && x.prev.next != x {
					return false
				}
				if x.next == x || x.prev == x {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertPanics(t *testing.T) {
	ns := nodes(2)
	InsertThief(ns[1], ns[0])
	for _, fn := range []func(){
		func() { InsertThief(ns[1], ns[0]) }, // already linked
		func() { InsertThief(ns[0], ns[0]) }, // self-steal
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// --- workload thresholds ---

func TestPaperThresholdExample(t *testing.T) {
	// Paper, Section 3.2: average 15, K=2 → thresholds {10, 20}.
	th := NewThresholds(2, 15)
	v := th.Values()
	if v[0] != 10 || v[1] != 20 {
		t.Fatalf("thresholds = %v, want [10 20]", v)
	}
	if th.Tier() != 2 {
		t.Fatalf("bootstrap tier = %d, want top (fastest)", th.Tier())
	}
}

func TestTierTransitions(t *testing.T) {
	th := NewThresholds(2, 15) // {10, 20}, tier 2
	// Steal drops size from 20 to 19: below th[1]=20 → tier 1, slow down.
	if !th.WouldLower(19) {
		t.Fatal("shrink below 20 should advise lowering")
	}
	th.Lower()
	if th.Tier() != 1 {
		t.Fatalf("tier = %d", th.Tier())
	}
	// Pop to 9: below th[0]=10 → tier 0.
	if !th.WouldLower(9) {
		t.Fatal("shrink below 10 should advise lowering")
	}
	th.Lower()
	// Further shrink at tier 0: floor.
	if th.WouldLower(0) {
		t.Fatal("tier must not advise below 0")
	}
	th.Lower() // no-op at floor
	if th.Tier() != 0 {
		t.Fatalf("tier = %d, want floor 0", th.Tier())
	}
	// Push back to 10 (= th[0], "no less than" semantics): tier 1.
	if !th.WouldRaise(10) {
		t.Fatal("push reaching 10 should advise raising")
	}
	th.Raise()
	// Push to 20: tier 2 (fastest).
	if !th.WouldRaise(20) {
		t.Fatal("push reaching 20 should advise raising")
	}
	th.Raise()
	if th.WouldRaise(25) {
		t.Fatal("tier must not advise above K")
	}
	th.Raise() // no-op at ceiling
	if th.Tier() != 2 {
		t.Fatalf("tier = %d, want ceiling 2", th.Tier())
	}
}

func TestStrictPairingNoFreeUps(t *testing.T) {
	// The bug the Would/commit API prevents: a worker at the slowest
	// frequency whose DOWN is clamped must not bank tier decrements
	// that later convert into free UPs. The caller simply never
	// commits Lower() when the tempo move didn't happen, so the tier
	// (and thus WouldRaise) is unchanged.
	th := NewThresholds(2, 15) // tier 2
	if !th.WouldLower(5) {
		t.Fatal("shrink advice expected")
	}
	// Tempo DOWN was clamped → caller does NOT call Lower().
	if th.Tier() != 2 {
		t.Fatal("tier moved without commit")
	}
	// A subsequent push cannot raise: tier is still at the ceiling.
	if th.WouldRaise(25) {
		t.Fatal("free UP banked despite strict pairing")
	}
}

func TestTierFor(t *testing.T) {
	th := NewThresholds(2, 15) // {10, 20}
	cases := map[int]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 100: 2}
	for size, want := range cases {
		if got := th.TierFor(size); got != want {
			t.Fatalf("TierFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestRetune(t *testing.T) {
	th := NewThresholds(3, 8) // base = 2·8/4 = 4 → {4, 8, 12}
	v := th.Values()
	if v[0] != 4 || v[1] != 8 || v[2] != 12 {
		t.Fatalf("thresholds = %v", v)
	}
	th.Retune(0)
	for _, x := range th.Values() {
		if x != 0 {
			t.Fatalf("zero-average retune = %v", th.Values())
		}
	}
	th.Retune(-5) // clamped to 0
	if th.Values()[0] != 0 {
		t.Fatal("negative average must clamp")
	}
}

func TestNewThresholdsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for K < 1")
		}
	}()
	NewThresholds(0, 1)
}

func TestTierMonotoneProperty(t *testing.T) {
	// Under any op sequence the tier stays within [0, K] and only
	// moves by single steps.
	f := func(ops []uint8) bool {
		th := NewThresholds(2, 6)
		size := 0
		for _, op := range ops {
			before := th.Tier()
			switch op % 3 {
			case 0:
				size++
				if th.WouldRaise(size) {
					th.Raise()
				}
			case 1:
				if size > 0 {
					size--
				}
				if th.WouldLower(size) {
					th.Lower()
				}
			case 2:
				th.Retune(float64(op % 17))
			}
			after := th.Tier()
			if after < 0 || after > 2 {
				return false
			}
			if d := after - before; d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- profiler ---

func TestProfilerWindow(t *testing.T) {
	p := NewProfiler(2)
	p.Observe([]int{10, 10})
	p.Observe([]int{20, 20})
	if avg := p.Average(); avg != 15 {
		t.Fatalf("avg = %v, want 15", avg)
	}
	p.Observe([]int{30, 30}) // evicts the {10,10} period
	if avg := p.Average(); avg != 25 {
		t.Fatalf("windowed avg = %v, want 25", avg)
	}
}

func TestProfilerEmpty(t *testing.T) {
	p := NewProfiler(4)
	if p.Average() != 0 {
		t.Fatal("empty profiler should average 0")
	}
}

func TestProfilerCopiesInput(t *testing.T) {
	p := NewProfiler(4)
	s := []int{5}
	p.Observe(s)
	s[0] = 500
	if p.Average() != 5 {
		t.Fatal("profiler must copy observed slices")
	}
}

func TestProfilerWindowClamp(t *testing.T) {
	p := NewProfiler(0) // treated as 1
	p.Observe([]int{1})
	p.Observe([]int{9})
	if p.Average() != 9 {
		t.Fatalf("avg = %v, want 9 (window of 1)", p.Average())
	}
}

// TestFastPathBoundsTrackSlowPath pins the lock-free pre-check
// contract: after any mutation, WouldRaiseFast/WouldLowerFast must
// report false only when WouldRaise/WouldLower would too — a false
// fast answer is what lets the scheduler skip the tempo lock.
func TestFastPathBoundsTrackSlowPath(t *testing.T) {
	th := NewThresholds(2, 15) // thresholds {10, 20}
	check := func(ctx string) {
		t.Helper()
		for size := 0; size <= 40; size++ {
			if got, want := th.WouldRaiseFast(size), th.WouldRaise(size); got != want {
				t.Fatalf("%s: WouldRaiseFast(%d) = %v, slow = %v (tier %d)", ctx, size, got, want, th.Tier())
			}
			if got, want := th.WouldLowerFast(size), th.WouldLower(size); got != want {
				t.Fatalf("%s: WouldLowerFast(%d) = %v, slow = %v (tier %d)", ctx, size, got, want, th.Tier())
			}
		}
	}
	check("fresh")
	th.Lower()
	check("after Lower")
	th.Lower()
	check("after second Lower")
	th.Raise()
	check("after Raise")
	th.SetTier(0)
	check("after SetTier(0)")
	th.SetTier(2)
	check("after SetTier(2)")
	th.Retune(30) // thresholds {20, 40}
	check("after Retune")
	th.Retune(0) // degenerate thresholds {0, 0}
	check("after Retune(0)")
}

package tempo

import (
	"math"
	"sync/atomic"
)

// Node is the intrusive immediacy-list node embedded in each worker.
// Val points back to the owning worker.
type Node[T any] struct {
	next, prev *Node[T]
	Val        T
}

// Next returns the node's successor (the less immediate neighbour: its
// most recent thief), or nil.
func (n *Node[T]) Next() *Node[T] { return n.next }

// Prev returns the node's predecessor (the more immediate neighbour),
// or nil.
func (n *Node[T]) Prev() *Node[T] { return n.prev }

// InList reports whether the node is currently linked to any other
// node. A single detached node is "not in a relationship".
func (n *Node[T]) InList() bool { return n.next != nil || n.prev != nil }

// AtHead reports whether the node has no predecessor — it processes
// the most immediate work and must not be slowed by workload control
// (the `prev != null` guard in Figure 5's POP and STEAL).
func (n *Node[T]) AtHead() bool { return n.prev == nil }

// InsertThief links thief immediately after victim, per Algorithm 3.1
// lines 20–26: if the victim already had a thief, the new thief is
// more immediate than the previous one (tasks stolen later are more
// immediate), so it is inserted between them.
func InsertThief[T any](thief, victim *Node[T]) {
	if thief == victim {
		panic("tempo: worker cannot be its own thief")
	}
	if thief.InList() {
		panic("tempo: thief already linked")
	}
	if victim.next != nil {
		thief.next = victim.next
		victim.next.prev = thief
	}
	victim.next = thief
	thief.prev = victim
}

// Unlink removes n from the list (Algorithm 3.1 lines 11–14), stitching
// its neighbours together. Safe on a detached node.
func (n *Node[T]) Unlink() {
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.next = nil
	n.prev = nil
}

// Relay visits every node strictly after n in immediacy order — its
// thief, the thief's thief, and so on (Algorithm 3.1 lines 6–10) — and
// applies up. Called when n runs out of work: the immediacy baton
// passes down the chain.
func (n *Node[T]) Relay(up func(T)) {
	for x := n.next; x != nil; x = x.next {
		up(x.Val)
	}
}

// Thresholds is the workload-sensitive tier state of one worker.
//
// With K thresholds th[0] < th[1] < … < th[K-1] there are K+1 tiers;
// tier S means the deque size sits between th[S-1] (inclusive) and
// th[S] (exclusive). Higher tiers mean more pending work and a faster
// tempo. Crossings move one tier at a time, which is exact because
// deque sizes change by one per operation.
type Thresholds struct {
	th []float64
	s  int

	// raiseAt and lowerAt republish the bounds the WouldRaise /
	// WouldLower predicates compare against — float64 bits, updated
	// (under the caller's tempo lock) by every mutation. They exist so
	// a concurrent hot path can pre-check a threshold crossing with
	// one atomic load and skip the tempo lock entirely when no
	// crossing is possible: the lock-free fast path of the Native
	// PUSH/POP. raiseAt is +Inf at the top tier (nothing to raise),
	// lowerAt -Inf at the bottom.
	raiseAt atomic.Uint64
	lowerAt atomic.Uint64
}

// publish refreshes the lock-free raise/lower bounds from the current
// tier and thresholds. Called by every mutation; mutations themselves
// are serialized by the caller's tempo lock.
func (t *Thresholds) publish() {
	up := math.Inf(1)
	if t.s < len(t.th) {
		up = t.th[t.s]
	}
	down := math.Inf(-1)
	if t.s > 0 {
		down = t.th[t.s-1]
	}
	t.raiseAt.Store(math.Float64bits(up))
	t.lowerAt.Store(math.Float64bits(down))
}

// WouldRaiseFast is the lock-free pre-check for WouldRaise: it may
// only be trusted when it reports false (no crossing possible at this
// size, against a possibly stale bound — the same staleness snapshot
// deque sizes already have). A true result must be confirmed by
// WouldRaise under the tempo lock before committing.
func (t *Thresholds) WouldRaiseFast(size int) bool {
	return float64(size) >= math.Float64frombits(t.raiseAt.Load())
}

// WouldLowerFast is the lock-free pre-check for WouldLower, with the
// same contract as WouldRaiseFast: false means skip the lock, true
// means re-check under it.
func (t *Thresholds) WouldLowerFast(size int) bool {
	return float64(size) < math.Float64frombits(t.lowerAt.Load())
}

// NewThresholds returns tier state with K thresholds derived from the
// initial average deque size avg, starting at the top tier (HERMES
// bootstraps every worker at the fastest tempo).
func NewThresholds(k int, avg float64) *Thresholds {
	if k < 1 {
		panic("tempo: need at least one threshold")
	}
	t := &Thresholds{th: make([]float64, k)}
	t.Retune(avg)
	t.s = k
	t.publish()
	return t
}

// K returns the number of thresholds.
func (t *Thresholds) K() int { return len(t.th) }

// Tier returns the current tier S ∈ [0, K].
func (t *Thresholds) Tier() int { return t.s }

// Values returns a copy of the current threshold values.
func (t *Thresholds) Values() []float64 {
	out := make([]float64, len(t.th))
	copy(out, t.th)
	return out
}

// Retune recomputes the thresholds from a freshly profiled average
// deque size L: thld_i = (2L/(K+1))·i. The current tier is clamped
// into range (it cannot be, today, but the invariant is kept locally).
func (t *Thresholds) Retune(avg float64) {
	if avg < 0 {
		avg = 0
	}
	k := len(t.th)
	base := 2 * avg / float64(k+1)
	for i := range t.th {
		t.th[i] = base * float64(i+1)
	}
	t.publish()
}

// WouldRaise reports whether a deque that has just grown to size
// crosses the next threshold up (Figure 5 PUSH). The tier itself moves
// only via Raise: callers commit the tier move if — and only if — the
// paired tempo UP actually raised the frequency level, keeping tier
// and tempo strictly synchronized. Without that pairing, DOWNs clamped
// at the slowest frequency would bank "free" UPs that cancel
// workpath-sensitive procrastination (see DESIGN.md).
func (t *Thresholds) WouldRaise(size int) bool {
	return t.s < len(t.th) && float64(size) >= t.th[t.s]
}

// WouldLower reports whether a deque that has just shrunk to size
// falls below the current tier's lower threshold (Figure 5 POP and
// STEAL). Callers commit via Lower only when the paired tempo DOWN
// actually moved, and never for workers at the head of the immediacy
// list (the `prev != null` guard).
func (t *Thresholds) WouldLower(size int) bool {
	return t.s > 0 && float64(size) < t.th[t.s-1]
}

// Raise commits one tier increment (paired with a real tempo UP).
func (t *Thresholds) Raise() {
	if t.s < len(t.th) {
		t.s++
		t.publish()
	}
}

// Lower commits one tier decrement (paired with a real tempo DOWN).
func (t *Thresholds) Lower() {
	if t.s > 0 {
		t.s--
		t.publish()
	}
}

// SetTier forces the tier to v (clamped to [0, K]): used when a
// workload-only thief re-derives its tier from its own deque at steal
// time (Figure 4(b)).
func (t *Thresholds) SetTier(v int) {
	if v < 0 {
		v = 0
	}
	if v > len(t.th) {
		v = len(t.th)
	}
	t.s = v
	t.publish()
}

// TierFor returns the tier a deque of the given size belongs in:
// the number of thresholds at or below size (Figure 4's reading —
// size ≥ th[K-1] is the top tier, size < th[0] the bottom).
func (t *Thresholds) TierFor(size int) int {
	s := 0
	for s < len(t.th) && float64(size) >= t.th[s] {
		s++
	}
	return s
}

// Profiler computes the rolling average deque size used to retune
// thresholds. Every profiling period the runtime feeds it one sample
// per worker; it averages the last Window periods.
type Profiler struct {
	window  int
	periods [][]int
}

// NewProfiler returns a profiler averaging over the last window
// periods. window < 1 is treated as 1.
func NewProfiler(window int) *Profiler {
	if window < 1 {
		window = 1
	}
	return &Profiler{window: window}
}

// Observe records one period's deque sizes (one entry per worker).
func (p *Profiler) Observe(sizes []int) {
	s := make([]int, len(sizes))
	copy(s, sizes)
	p.periods = append(p.periods, s)
	if len(p.periods) > p.window {
		p.periods = p.periods[len(p.periods)-p.window:]
	}
}

// Average returns the mean deque size across all samples in the
// window, or 0 if nothing has been observed.
func (p *Profiler) Average() float64 {
	sum, n := 0, 0
	for _, period := range p.periods {
		for _, v := range period {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"hermes/internal/meter"
	"hermes/internal/units"
)

// Report summarizes one simulated run. Energy and samples follow the
// paper's measurement methodology (100 Hz meter on a 12 V rail);
// EnergyJ is the exact piecewise integral for noise-free comparisons.
type Report struct {
	System  string
	Workers int
	Mode    Mode
	Sched   Scheduling
	// Class is the job's service class as submitted (zero for
	// unclassed jobs and single-shot runs).
	Class Class

	// Span is the execution time: from the job's first task beginning
	// to run to root-task completion (the makespan of a single-shot
	// run, where execution starts at time zero).
	Span units.Time
	// Sojourn is the open-system latency: from the job entering the
	// system (virtual arrival on the Sim pool, wall-clock submission
	// on Native) to completion. Sojourn − Span is time spent queued
	// before any worker picked the job up; for a single-shot run
	// Sojourn equals Span.
	Sojourn units.Time
	// EnergyJ is the exact integrated CPU energy over the span.
	EnergyJ float64
	// MeterJ is the energy the paper's 100 Hz DAQ rig would report.
	MeterJ float64
	// EDP is the energy-delay product (exact energy × span).
	EDP float64
	// AvgPowerW is EnergyJ / span.
	AvgPowerW float64
	// Samples is the 100 Hz power trace (time series figures).
	Samples []meter.Sample

	// Scheduler statistics.
	Tasks         int64 // tasks executed (spawned tasks + root)
	Spawns        int64 // tasks pushed to deques
	Steals        int64 // successful steals
	FailedSteals  int64
	TempoSwitches int64 // worker tempo-level changes requested
	DVFSCommits   int64 // domain frequency transitions that actually landed
	Parks         int64 // join-depth-cap parks

	// Failure-recovery history (cluster fault injection; zero/nil
	// otherwise). Retries counts how many times a machine crash evicted
	// the job and the cluster re-placed it; Placements lists every
	// machine that accepted the job, in order — including gossip
	// migrations, so len(Placements) >= Retries+1 when recorded.
	Retries    int64
	Placements []int

	// Residency, summed over worker cores.
	BusyTime units.Time
	SpinTime units.Time
	IdleTime units.Time
	// SlowBusyTime is busy time spent below the maximum frequency.
	SlowBusyTime units.Time
	// FreqBusy maps frequency → busy core-time at that frequency.
	FreqBusy map[units.Freq]units.Time
	// PerWorker breaks residency down by worker.
	PerWorker []WorkerStats
}

// WorkerStats is one worker's residency breakdown.
type WorkerStats struct {
	Busy, SlowBusy, Spin, SlowSpin, Idle units.Time
	Steals                               int64
}

// String renders a human-readable one-run summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s w=%d %s: span=%v", r.System, r.Mode, r.Workers, r.Sched, r.Span)
	if r.Sojourn != r.Span {
		fmt.Fprintf(&b, " sojourn=%v", r.Sojourn)
	}
	fmt.Fprintf(&b, " energy=%.2fJ (meter %.2fJ) avg=%.1fW EDP=%.3f\n",
		r.EnergyJ, r.MeterJ, r.AvgPowerW, r.EDP)
	fmt.Fprintf(&b, "  tasks=%d spawns=%d steals=%d (failed %d) tempo-switches=%d dvfs-commits=%d parks=%d\n",
		r.Tasks, r.Spawns, r.Steals, r.FailedSteals, r.TempoSwitches, r.DVFSCommits, r.Parks)
	fmt.Fprintf(&b, "  residency: busy=%v spin=%v idle=%v slow-busy=%v", r.BusyTime, r.SpinTime, r.IdleTime, r.SlowBusyTime)
	if len(r.FreqBusy) > 0 {
		freqs := make([]units.Freq, 0, len(r.FreqBusy))
		for f := range r.FreqBusy {
			freqs = append(freqs, f)
		}
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
		b.WriteString("\n  busy by freq:")
		for _, f := range freqs {
			fmt.Fprintf(&b, " %v=%v", f, r.FreqBusy[f])
		}
	}
	return b.String()
}

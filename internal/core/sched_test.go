package core

import (
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// spinTree spawns a binary tree of depth d whose leaves each burn c
// cycles — an irregular-enough workload to exercise stealing.
func spinTree(d int, c units.Cycles) wl.Task {
	var node func(depth int) wl.Task
	node = func(depth int) wl.Task {
		return func(ctx wl.Ctx) {
			if depth == 0 {
				ctx.Work(c)
				return
			}
			ctx.Go(node(depth-1), node(depth-1))
		}
	}
	return node(d)
}

func baseCfg(workers int, mode Mode) Config {
	return Config{Spec: cpu.SystemA(), Workers: workers, Mode: mode, Seed: 1}
}

func TestRunTrivialSpan(t *testing.T) {
	// 24e6 cycles at 2.4 GHz = 10 ms, plus sub-µs overheads.
	r := Run(baseCfg(1, Baseline), func(c wl.Ctx) { c.Work(24_000_000) })
	if r.Span < 10*units.Millisecond || r.Span > 10*units.Millisecond+100*units.Microsecond {
		t.Fatalf("span = %v, want ≈10ms", r.Span)
	}
	if r.Tasks != 1 {
		t.Fatalf("tasks = %d, want 1", r.Tasks)
	}
	if r.EnergyJ <= 0 {
		t.Fatal("no energy integrated")
	}
}

func TestEveryTaskRunsExactlyOnce(t *testing.T) {
	const n = 500
	counts := make([]int, n)
	root := func(c wl.Ctx) {
		wl.For(c, 0, n, 1, func(c wl.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i]++
				c.Work(30_000)
			}
		})
	}
	r := Run(baseCfg(8, Unified), root)
	for i, v := range counts {
		if v != 1 {
			t.Fatalf("element %d ran %d times", i, v)
		}
	}
	if r.Steals == 0 {
		t.Fatal("8-worker parallel-for produced no steals")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Report { return Run(baseCfg(8, Unified), spinTree(8, 120_000)) }
	a, b := run(), run()
	if a.Span != b.Span || a.EnergyJ != b.EnergyJ || a.Steals != b.Steals ||
		a.TempoSwitches != b.TempoSwitches || a.Tasks != b.Tasks {
		t.Fatalf("non-deterministic runs:\n%v\n%v", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	cfg := baseCfg(8, Unified)
	a := Run(cfg, spinTree(8, 120_000))
	cfg.Seed = 99
	b := Run(cfg, spinTree(8, 120_000))
	// Same total work, different victim choices: spans will differ at
	// sub-percent scale, steals almost surely differ.
	if a.Steals == b.Steals && a.Span == b.Span && a.FailedSteals == b.FailedSteals {
		t.Log("warning: identical schedules across seeds (possible but unlikely)")
	}
	if a.Tasks != b.Tasks {
		t.Fatalf("task counts differ across seeds: %d vs %d", a.Tasks, b.Tasks)
	}
}

func TestParallelSpeedup(t *testing.T) {
	work := spinTree(9, 200_000) // 512 leaves × 200k cycles
	r1 := Run(baseCfg(1, Baseline), work)
	r8 := Run(baseCfg(8, Baseline), work)
	speedup := r1.Span.Seconds() / r8.Span.Seconds()
	if speedup < 5 {
		t.Fatalf("8-worker speedup = %.2fx, want ≥5x (r1=%v r8=%v)", speedup, r1.Span, r8.Span)
	}
}

func TestBaselineNeverLeavesMaxFreq(t *testing.T) {
	r := Run(baseCfg(8, Baseline), spinTree(8, 120_000))
	if r.TempoSwitches != 0 {
		t.Fatalf("baseline made %d tempo switches", r.TempoSwitches)
	}
	if r.SlowBusyTime != 0 {
		t.Fatalf("baseline spent %v busy below max frequency", r.SlowBusyTime)
	}
	for f := range r.FreqBusy {
		if f != cpu.SystemA().MaxFreq() {
			t.Fatalf("baseline busy at %v", f)
		}
	}
}

func TestHermesUsesSlowTempo(t *testing.T) {
	for _, mode := range []Mode{WorkpathOnly, WorkloadOnly, Unified} {
		r := Run(baseCfg(8, mode), spinTree(9, 150_000))
		if r.TempoSwitches == 0 {
			t.Fatalf("%v: no tempo switches", mode)
		}
		if r.SlowBusyTime == 0 {
			t.Fatalf("%v: no busy time below max frequency", mode)
		}
	}
}

// mixTree is a paper-like workload: an uneven task tree whose leaves
// are 80% memory-bound, the regime where DVFS slowdown is cheap (the
// PBBS benchmarks at full-machine scale are bandwidth-bound).
func mixTree(d int, c units.Cycles) wl.Task {
	var node func(depth int, cy units.Cycles) wl.Task
	node = func(depth int, cy units.Cycles) wl.Task {
		return func(ctx wl.Ctx) {
			if depth == 0 {
				ctx.WorkMix(cy, 0.8)
				return
			}
			ctx.Go(
				node(depth-1, cy/3),
				node(depth-1, cy-cy/3),
			)
		}
	}
	return node(d, c)
}

func TestHermesSavesEnergy(t *testing.T) {
	work := mixTree(10, 2_000_000_000)
	base := Run(baseCfg(8, Baseline), work)
	herm := Run(baseCfg(8, Unified), work)
	if herm.EnergyJ >= base.EnergyJ {
		t.Fatalf("hermes energy %.3fJ not below baseline %.3fJ", herm.EnergyJ, base.EnergyJ)
	}
	loss := herm.Span.Seconds()/base.Span.Seconds() - 1
	if loss > 0.15 {
		t.Fatalf("time loss %.1f%% unreasonably high", 100*loss)
	}
	if herm.EDP >= base.EDP {
		t.Fatalf("hermes EDP %.4f not below baseline %.4f", herm.EDP, base.EDP)
	}
}

// TestImmediacyRelayRerating builds the paper's Figure 3 situation at
// run scale: a victim finishes while its thief still holds a long
// stolen task. The relay must raise the thief's tempo mid-task, so the
// span lands strictly between the all-fast and all-slow bounds.
func TestImmediacyRelayRerating(t *testing.T) {
	const bigCycles = 48_000_000 // 20ms at 2.4GHz, 30ms at 1.6GHz
	root := func(c wl.Ctx) {
		c.Go(
			func(c wl.Ctx) { c.Work(2_400_000) }, // victim's own work: 1ms
			func(c wl.Ctx) { c.Work(bigCycles) }, // stolen by the thief
		)
	}
	cfg := baseCfg(2, WorkpathOnly)
	r := Run(cfg, root)
	fast := units.Cycles(bigCycles).DurationAt(2_400_000 * units.KHz)
	slow := units.Cycles(bigCycles).DurationAt(1_600_000 * units.KHz)
	if r.Steals == 0 {
		t.Skip("no steal occurred; scenario needs the second worker to take the big task")
	}
	if r.Span <= fast || r.Span >= slow {
		t.Fatalf("span %v outside (fast %v, slow %v): relay re-rating missing", r.Span, fast, slow)
	}
	// The thief must have run at both frequencies.
	if r.FreqBusy[1_600_000*units.KHz] == 0 {
		t.Fatal("no busy time at slow tempo — procrastination missing")
	}
	if r.FreqBusy[2_400_000*units.KHz] == 0 {
		t.Fatal("no busy time at fast tempo")
	}
}

func TestDynamicSchedulingCostsMore(t *testing.T) {
	work := spinTree(9, 100_000)
	st := Run(Config{Spec: cpu.SystemA(), Workers: 8, Mode: Unified, Seed: 3, Scheduling: Static}, work)
	dy := Run(Config{Spec: cpu.SystemA(), Workers: 8, Mode: Unified, Seed: 3, Scheduling: Dynamic}, work)
	if dy.Span <= st.Span {
		t.Fatalf("dynamic span %v not above static %v", dy.Span, st.Span)
	}
	if dy.EnergyJ <= st.EnergyJ {
		t.Fatalf("dynamic energy %.3fJ not above static %.3fJ", dy.EnergyJ, st.EnergyJ)
	}
}

func TestMemWorkInsensitiveToTempo(t *testing.T) {
	// A purely memory-bound root takes the same time whatever the mode.
	mem := func(c wl.Ctx) { c.Mem(5 * units.Millisecond) }
	b := Run(baseCfg(1, Baseline), mem)
	h := Run(baseCfg(1, Unified), mem)
	if b.Span != h.Span {
		t.Fatalf("mem-bound span differs: %v vs %v", b.Span, h.Span)
	}
}

func TestWorkMixSplits(t *testing.T) {
	// 24e6 cycles, half memory-bound: CPU half 5ms + mem half 5ms at
	// max frequency = 10ms on baseline.
	r := Run(baseCfg(1, Baseline), func(c wl.Ctx) { c.WorkMix(24_000_000, 0.5) })
	if r.Span < 10*units.Millisecond || r.Span > 10*units.Millisecond+100*units.Microsecond {
		t.Fatalf("span = %v, want ≈10ms", r.Span)
	}
}

func TestSystemBRuns(t *testing.T) {
	cfg := Config{Spec: cpu.SystemB(), Workers: 4, Mode: Unified, Seed: 7}
	r := Run(cfg, spinTree(8, 150_000))
	if r.System != "SystemB" || r.Workers != 4 {
		t.Fatalf("report header wrong: %v %d", r.System, r.Workers)
	}
	if r.EnergyJ <= 0 || r.Span <= 0 {
		t.Fatal("empty report")
	}
}

func TestWorkerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: 17 workers on 16 domains")
		}
	}()
	Run(Config{Spec: cpu.SystemA(), Workers: 17}, func(wl.Ctx) {})
}

func TestFreqValidation(t *testing.T) {
	cases := []Config{
		{Spec: cpu.SystemA(), Workers: 2, Mode: Unified, Freqs: []units.Freq{2_400_000 * units.KHz, 2_000_000 * units.KHz}},                        // unsupported slow
		{Spec: cpu.SystemA(), Workers: 2, Mode: Unified, Freqs: []units.Freq{1_600_000 * units.KHz, 1_400_000 * units.KHz}},                        // fastest ≠ max
		{Spec: cpu.SystemA(), Workers: 2, Mode: Unified, Freqs: []units.Freq{2_400_000 * units.KHz}},                                               // single freq with tempo
		{Spec: cpu.SystemA(), Workers: 2, Mode: Unified, Freqs: []units.Freq{2_400_000 * units.KHz, 1_600_000 * units.KHz, 1_900_000 * units.KHz}}, // not descending
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected config panic", i)
				}
			}()
			Run(cfg, func(wl.Ctx) {})
		}()
	}
}

func TestNFrequencyControl(t *testing.T) {
	// 3-frequency tempo control must put busy time on all three levels
	// for a deep-stealing workload.
	cfg := Config{
		Spec: cpu.SystemA(), Workers: 8, Mode: Unified, Seed: 5,
		Freqs: []units.Freq{2_400_000 * units.KHz, 1_900_000 * units.KHz, 1_600_000 * units.KHz},
	}
	r := Run(cfg, spinTree(10, 150_000))
	if r.FreqBusy[1_900_000*units.KHz] == 0 {
		t.Fatal("no busy time at the middle tempo")
	}
}

func TestMeterAgreesWithIntegral(t *testing.T) {
	r := Run(baseCfg(8, Unified), spinTree(10, 2_000_000))
	if r.Span < 100*units.Millisecond {
		t.Fatalf("test workload too short for meter comparison: %v", r.Span)
	}
	rel := (r.MeterJ - r.EnergyJ) / r.EnergyJ
	if rel < -0.1 || rel > 0.1 {
		t.Fatalf("meter %.3fJ vs integral %.3fJ (%.1f%%)", r.MeterJ, r.EnergyJ, 100*rel)
	}
}

func TestReportString(t *testing.T) {
	r := Run(baseCfg(2, Unified), spinTree(4, 100_000))
	s := r.String()
	if len(s) == 0 {
		t.Fatal("empty report string")
	}
}

func TestGoZeroAndOne(t *testing.T) {
	ran := 0
	r := Run(baseCfg(2, Baseline), func(c wl.Ctx) {
		c.Go()
		c.Go(func(wl.Ctx) { ran++ })
		wl.Seq(c, func(wl.Ctx) { ran++ }, func(wl.Ctx) { ran++ })
	})
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
	if r.Spawns != 0 {
		t.Fatalf("inline-only blocks must not spawn (got %d)", r.Spawns)
	}
}

package core

import (
	"fmt"
	"math/rand"
	"runtime/debug"

	"hermes/internal/cpu"
	"hermes/internal/deque"
	"hermes/internal/obs"
	"hermes/internal/sim"
	"hermes/internal/tempo"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// task is one deque item: a workload closure, the fork-join block it
// belongs to, and (in pool mode) the job it is accounted against.
// root marks a job's injected root task, whose completion completes
// the job.
type task struct {
	fn   wl.Task
	blk  *block
	job  *jobRun
	root bool
}

// block tracks one Ctx.Go fork-join block: how many of its pushed
// tasks are still outstanding and, if the owning worker had to park
// waiting for stolen tasks, who to wake.
type block struct {
	pending int
	waiter  *worker
}

// worker is one scheduler thread pinned to a core on its own clock
// domain (the paper's placement).
type worker struct {
	s    *sched
	id   int
	core *cpu.Core
	dq   deque.Queue[*task]
	proc *sim.Proc
	rng  *rand.Rand

	// Tempo state. node is the immediacy-list hook (workpath); th the
	// threshold tiers (workload). The worker's tempo level is the sum
	// of two components — the workpath chain depth (wpLevel, set by
	// thief procrastination, lowered by immediacy relays) and the
	// workload tier deficit (K - S) — mapped onto cfg.Freqs by
	// saturation. Composing the strategies this way is what makes
	// their unification additive, matching the paper's observation
	// that unified savings approach the sum of each strategy alone.
	node    tempo.Node[*worker]
	th      *tempo.Thresholds
	wpLevel int

	// inWork marks an in-flight CPU work segment so the DVFS daemon
	// knows to wake us for re-rating when our domain's clock changes.
	inWork bool

	// curJob is the job of the innermost in-flight runTask frame (a
	// join runs other tasks — possibly other jobs' — inline): the job
	// this worker's busy time, and so its share of the machine's power
	// draw, belongs to right now. idlePark marks a worker halted in
	// poolIdle, the only parked state a job arrival should wake.
	// Pool-mode accounting.
	curJob   *jobRun
	idlePark bool

	helpDepth int
	backoff   units.Time
	// preemptDepth bounds quantum-preemption nesting: each preemption
	// runs the overtaking job's root inline inside workCycles, so a
	// pathological trace could otherwise stack frames without limit.
	preemptDepth int
}

// maxPreemptDepth caps nested quantum preemptions per worker.
const maxPreemptDepth = 8

func newWorker(s *sched, id int, c *cpu.Core) *worker {
	w := &worker{
		s:    s,
		id:   id,
		core: c,
		dq:   newDeque(s.cfg.Deque),
		rng:  rand.New(rand.NewSource(s.cfg.Seed*1_000_003 + int64(id))),
		th:   tempo.NewThresholds(s.cfg.K, s.cfg.InitialAvgDeque),
	}
	w.node.Val = w
	return w
}

// newDeque instantiates the configured deque implementation. The Sim
// backend's DequeAuto choice is THE: the simulator is the paper's
// measurement instrument, deque overheads are modeled (PushPopCost,
// StealCost) rather than paid, and the single-threaded engine never
// contends — so fidelity wins over concurrency here. Forcing
// DequeChaseLev is still useful to pin that both implementations
// produce identical schedules under the engine's deterministic
// interleaving.
func newDeque(kind DequeKind) deque.Queue[*task] {
	if kind == DequeChaseLev {
		return deque.NewChaseLev[task](64)
	}
	return deque.New[*task](64)
}

func (w *worker) name() string { return fmt.Sprintf("%sworker%d", w.s.tag, w.id) }

// run is the process body. In single-run mode worker 0 executes the
// root task directly (the program's main); everyone else — and every
// worker in pool mode, where roots arrive through the intake — enters
// the SCHEDULE loop.
func (w *worker) run(p *sim.Proc) {
	w.proc = p
	if w.s.pool == nil && w.id == 0 {
		w.runTask(&task{fn: w.s.root})
		w.s.finish()
		return
	}
	w.schedule()
}

// schedule is Algorithm 3.1: pop local work; failing that, relay
// immediacy and unlink (out of work), then steal; failing that, yield
// — or, in pool mode with no job in the system, halt the core until
// the intake delivers an arrival.
func (w *worker) schedule() {
	for {
		if w.s.done {
			return
		}
		if t, ok := w.popLocal(); ok {
			w.runTask(t)
			continue
		}
		w.outOfWork()
		if t := w.s.poolTake(); t != nil {
			w.backoff = 0
			w.poolResume()
			w.runTask(t)
			continue
		}
		if w.poolIdle() {
			continue
		}
		if t, ok := w.stealRound(); ok {
			w.backoff = 0
			w.runTask(t)
			continue
		}
		if w.poolIdle() {
			continue
		}
		w.yield()
	}
}

// poolIdle parks the worker (core halted, no modeled draw) while the
// pool has no active jobs, instead of burning virtual time probing an
// empty machine. The intake wakes every worker when a job arrives.
// Always false outside pool mode.
func (w *worker) poolIdle() bool {
	p := w.s.pool
	if p == nil || w.s.done || len(p.active) > 0 {
		return false
	}
	w.backoff = 0
	w.poolPark()
	w.setState(cpu.IdleHalt)
	w.idlePark = true
	w.proc.ParkUntilWake()
	w.idlePark = false
	return true
}

// poolPark files the slowest tempo before the core halts — race to
// idle, then drop V/f. A halted core's leakage follows its domain's
// held voltage, so an empty machine parks in the lowest DVFS tier
// instead of idling at whatever frequency its last job left behind
// (or, for a machine that never ran anything, the boot-time maximum).
// This is what makes fleet-level consolidation pay: placement policies
// that concentrate load keep whole machines in this cheapest idle
// state. No-op under Baseline, which models no tempo control at all.
func (w *worker) poolPark() {
	if w.s.cfg.Mode == Baseline {
		return
	}
	if w.s.cfg.Mode.Workpath() {
		w.wpLevel = w.s.cfg.MaxTempoLevels - 1
	}
	if w.s.cfg.Mode.Workload() {
		w.th.SetTier(w.th.TierFor(0))
	}
	w.s.retune(w)
}

// poolResume re-derives tempo for a worker taking a fresh root from
// the inject queue: executing a new job's root is the most immediate
// work in the system, so leftover thief procrastination (including the
// park-time floor poolPark set) is shed, while the workload tier comes
// from the worker's (empty) deque per Figure 4(b).
func (w *worker) poolResume() {
	if w.s.cfg.Mode == Baseline {
		return
	}
	if w.s.cfg.Mode.Workpath() {
		w.wpLevel = 0
	}
	if w.s.cfg.Mode.Workload() {
		w.th.SetTier(w.th.TierFor(w.dq.Size()))
	}
	w.s.retune(w)
}

// setState transitions the hosting core's activity state, integrating
// power first.
func (w *worker) setState(st cpu.CoreState) {
	if w.core.State == st {
		return
	}
	w.s.touch()
	w.core.State = st
}

// popLocal pops the worker's own tail (Figure 5 POP), charging the
// local-deque cost and applying the workload-sensitive shrink check.
func (w *worker) popLocal() (*task, bool) {
	t, ok := w.dq.Pop()
	if !ok {
		return nil, false
	}
	w.setState(cpu.Busy)
	w.proc.Sleep(w.s.cfg.PushPopCost)
	w.afterShrink()
	return t, true
}

// push places a spawned task on the worker's own tail (Figure 5
// PUSH): deque op cost, then the workload-sensitive growth check.
func (w *worker) push(t *task) {
	w.s.spawns++
	if t.job != nil {
		t.job.spawns++
	}
	w.dq.Push(t)
	w.proc.Sleep(w.s.cfg.PushPopCost)
	if w.s.cfg.Mode.Workload() {
		if w.th.WouldRaise(w.dq.Size()) {
			w.th.Raise()
			// A deque that climbs past the top threshold marks a
			// worker with substantial pending work: immediacy has
			// effectively transferred to it, so any remaining thief
			// procrastination is shed. This is the unified
			// algorithm's loss guard — light thieves stay slow
			// (energy), loaded thieves run fast (time).
			if w.th.Tier() == w.th.K() && w.wpLevel > 0 {
				w.wpLevel = 0
			}
			w.s.retune(w)
		}
	}
}

// afterShrink applies Figure 5's POP tail check: a deque that shrank
// below the current tier's threshold lowers the tempo — unless the
// worker holds the most immediate work (head of the immediacy list).
func (w *worker) afterShrink() {
	if !w.s.cfg.Mode.Workload() {
		return
	}
	atHead := w.s.cfg.Mode.Workpath() && w.node.AtHead()
	if !atHead && w.th.WouldLower(w.dq.Size()) {
		w.th.Lower()
		w.s.retune(w)
	}
}

// afterStolenFrom applies Figure 5's STEAL check on the victim side.
func (w *worker) afterStolenFrom() {
	w.afterShrink()
}

// outOfWork runs Algorithm 3.1 lines 6–14: the worker's deque is
// empty, so any thief-victim relationships it anchored terminate —
// immediacy is relayed down the chain (each downstream worker speeds
// up one level) and the worker leaves the list. Idempotent while the
// worker stays out of the list.
func (w *worker) outOfWork() {
	if !w.s.cfg.Mode.Workpath() || !w.node.InList() {
		return
	}
	w.node.Relay(func(x *worker) { w.s.up(x) })
	w.node.Unlink()
}

// selectVictim picks a uniformly random other worker.
func (w *worker) selectVictim() *worker {
	n := len(w.s.workers)
	if n == 1 {
		return w
	}
	j := w.rng.Intn(n - 1)
	if j >= w.id {
		j++
	}
	return w.s.workers[j]
}

// stealRound probes every other worker once, starting from a random
// victim and sweeping cyclically (the usual randomized SELECT loop),
// until a steal lands or the round is exhausted.
func (w *worker) stealRound() (*task, bool) {
	n := len(w.s.workers)
	if n == 1 {
		return nil, false
	}
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.s.workers[(start+i)%n]
		if v == w {
			continue
		}
		if w.s.done {
			return nil, false
		}
		if t, ok := w.stealFrom(v); ok {
			return t, true
		}
	}
	return nil, false
}

// stealFrom attempts to steal the head of v's deque, spending the
// steal cost spinning. On success it applies the thief-side tempo
// rules: thief procrastination (workpath: one level slower than the
// victim, inserted after it on the immediacy list) or the
// deque-size-derived tempo of Figure 4 (workload-only), plus the
// victim-side shrink check.
func (w *worker) stealFrom(v *worker) (*task, bool) {
	if v == w {
		return nil, false
	}
	w.setState(cpu.Spin)
	w.proc.Sleep(w.s.cfg.StealCost)
	if w.s.done {
		return nil, false
	}
	t, ok := v.dq.Steal()
	if !ok {
		w.s.failedSteals++
		return nil, false
	}
	w.s.steals++
	w.s.perWorker[w.id].Steals++
	if t.job != nil {
		t.job.steals++
	}
	w.s.emit(obs.Event{Kind: obs.Steal, Time: w.s.eng.Now(), Worker: w.id, Victim: v.id})
	if w.s.cfg.Mode.Workpath() {
		// Thief procrastination: one workpath level below the victim,
		// inserted after it on the immediacy list — unless the thief
		// is already linked as someone's victim (it was stolen from
		// mid-probe, e.g. a join holding an enclosing block's task),
		// in which case it keeps its existing, more immediate slot
		// (same guard as the native executor).
		w.s.downFrom(w, v)
		if !w.node.InList() {
			tempo.InsertThief(&w.node, &v.node)
		}
	} else if w.s.cfg.Mode.Workload() {
		// Figure 4(b): the fresh thief's tempo comes from its own
		// deque size — empty deque, lowest tier.
		w.th.SetTier(w.th.TierFor(w.dq.Size()))
		w.s.retune(w)
	}
	v.afterStolenFrom()
	return t, true
}

// yield backs off after a failed steal round, spinning at the core's
// current tempo (the paper does not adjust frequency for idle
// workers). Backoff grows exponentially to a cap and resets on the
// next successful pop or steal.
func (w *worker) yield() {
	if w.backoff == 0 {
		w.backoff = w.s.cfg.YieldSpin
	} else {
		w.backoff *= 2
		if w.backoff > w.s.cfg.YieldSpinMax {
			w.backoff = w.s.cfg.YieldSpinMax
		}
	}
	w.setState(cpu.Spin)
	w.proc.Sleep(w.backoff)
}

// runTask executes one task: under dynamic scheduling the worker pays
// the affinity set/reset cost around the WORK invocation
// (Section 3.4); on completion the task's block is notified. In pool
// mode the worker's curJob tracks the innermost frame's job while it
// runs, so every power-integration interval attributes this worker's
// busy time (and energy share) to the right job, and completing a
// job's root task completes the job.
func (w *worker) runTask(t *task) {
	w.setState(cpu.Busy)
	j := t.job
	prevJob := w.curJob
	w.setJob(j)
	if j != nil && !j.started {
		j.started = true
		j.startAt = w.s.eng.Now()
	}
	if w.s.cfg.Scheduling == Dynamic {
		w.proc.Sleep(2 * w.s.cfg.AffinityCost)
	}
	if !w.s.taskCancelled(j) {
		w.s.tasks++
		if j != nil {
			j.tasks++
		}
		w.runBody(t)
	}
	if blk := t.blk; blk != nil {
		blk.pending--
		if blk.pending == 0 && blk.waiter != nil {
			waiter := blk.waiter
			blk.waiter = nil
			waiter.proc.Wake()
		}
	}
	if t.root {
		// Completion runs while curJob still points at j, so the final
		// power-integration sliver inside jobDone's touch lands on the
		// finishing job.
		w.s.jobDone(j, false)
	}
	w.setJob(prevJob)
}

// setJob moves the worker's energy-attribution pointer. The core may
// stay Busy straight across a job switch (setState would early-return,
// leaving no integration boundary), so the interval run under the old
// job must be integrated before the pointer moves — otherwise the
// whole stretch since the last touch lands on whichever job is
// current at the next one.
func (w *worker) setJob(j *jobRun) {
	if w.s.pool != nil && w.curJob != j {
		w.s.touch()
	}
	w.curJob = j
}

// runBody invokes the task closure. In pool mode a panicking body
// fails only its own job — the error surfaces from the job's
// completion, the rest of the job drains like a cancellation, and
// concurrent jobs on the shared machine are untouched (matching the
// Native backend). The single-run path keeps the engine's trap
// behaviour: the panic is re-raised from core.Run after teardown.
func (w *worker) runBody(t *task) {
	if t.job == nil {
		t.fn(ctx{w: w})
		return
	}
	defer func() {
		if p := recover(); p != nil {
			if sim.IsUnwind(p) {
				panic(p) // engine teardown, not a task fault
			}
			t.job.fail(fmt.Errorf("core: job %d task panicked: %v\n%s",
				t.job.id, p, debug.Stack()))
		}
	}()
	t.fn(ctx{w: w, j: t.job})
}

// join completes a fork-join block: run the block's own pushed tasks
// from the local tail; once they are gone (run or stolen), help by
// stealing elsewhere — going through the same out-of-work tempo path
// as the main loop — and, past the help-depth cap, park until the
// block drains.
func (w *worker) join(blk *block) {
	localExhausted := false
	for blk.pending > 0 {
		if w.s.done {
			return
		}
		if !localExhausted {
			if t, ok := w.dq.Pop(); ok {
				if t.blk != blk {
					// Tail belongs to an enclosing block: not legal to
					// run before this join completes. Put it back (same
					// position) and stop popping — our remaining block
					// tasks were stolen.
					w.dq.Push(t)
					localExhausted = true
				} else {
					w.setState(cpu.Busy)
					w.proc.Sleep(w.s.cfg.PushPopCost)
					w.afterShrink()
					w.runTask(t)
					w.setState(cpu.Busy)
					continue
				}
			} else {
				localExhausted = true
			}
		}
		if blk.pending == 0 {
			break
		}
		if w.helpDepth >= w.s.cfg.MaxHelpDepth {
			w.parkOnBlock(blk)
			continue
		}
		w.outOfWork()
		if t, ok := w.stealRound(); ok {
			w.backoff = 0
			w.helpDepth++
			w.runTask(t)
			w.helpDepth--
			w.setState(cpu.Busy)
			continue
		}
		if blk.pending == 0 {
			break
		}
		w.yield()
	}
	w.setState(cpu.Busy)
}

// parkOnBlock halts the core until the block's last task completes.
// Re-parking after a spurious wake (pool arrivals, DVFS re-rating)
// continues the same logical park and is not recounted.
func (w *worker) parkOnBlock(blk *block) {
	if blk.pending == 0 {
		return
	}
	if blk.waiter != w {
		blk.waiter = w
		w.s.parks++
	}
	w.setState(cpu.IdleHalt)
	w.proc.ParkUntilWake()
	w.setState(cpu.Busy)
}

// workCycles advances virtual time by c cycles at the core's current
// frequency, re-rating the remainder whenever the clock domain
// commits a DVFS transition — or the machine's straggler factor
// changes — mid-segment. An eviction (machine crash under this job)
// abandons the remaining cycles: the job re-runs elsewhere. With a
// preemption quantum configured, segments are additionally chopped at
// quantum boundaries and the ready queue re-checked between slices
// (maybePreempt), so a higher-ranked arrival overtakes a long CPU
// burst mid-stream.
func (w *worker) workCycles(c units.Cycles) {
	rem := c
	for rem > 0 {
		if j := w.curJob; j != nil && j.evicted {
			return
		}
		w.maybePreempt()
		if w.s.done {
			return
		}
		f := w.core.Dom.Freq()
		slow := w.s.slowFactor
		start := w.s.eng.Now()
		dur := rem.DurationAt(f)
		if slow > 1 {
			dur = units.Time(float64(dur) * slow)
		}
		full := start + dur
		end := full
		if q := w.s.cfg.PreemptQuantum; w.preemptible() && dur > q {
			end = start + q
		}
		w.inWork = true
		resumed := w.proc.WaitUntil(end)
		w.inWork = false
		if resumed >= full {
			return // full segment retired at constant frequency
		}
		el := resumed - start
		if slow > 1 {
			el = units.Time(float64(el) / slow)
		}
		done := units.CyclesIn(el, f)
		if done >= rem {
			return
		}
		rem -= done
	}
}

// preemptible reports whether this worker's CPU segments are subject
// to quantum preemption: a quantum is configured, a ranked dispatch
// policy is active, pool mode, and the nesting cap is not exhausted.
// FIFO never preempts, so the default configuration retires segments
// exactly as before the quantum existed.
func (w *worker) preemptible() bool {
	return w.s.cfg.PreemptQuantum > 0 &&
		w.s.cfg.Dispatch != DispatchFIFO &&
		w.s.pool != nil &&
		w.preemptDepth < maxPreemptDepth
}

// maybePreempt lets a waiting root that strictly outranks the job this
// worker is executing take the worker now (Shinjuku-style quantum
// preemption): the overtaking job runs inline to completion on this
// worker — runTask's curJob save/restore keeps energy attribution
// exact across the switch — then the preempted segment resumes.
func (w *worker) maybePreempt() {
	if !w.preemptible() || w.curJob == nil {
		return
	}
	s := w.s
	if len(s.pool.injectq) == 0 {
		return
	}
	i := s.poolPick()
	t := s.pool.injectq[i]
	if !s.outranks(t.job, w.curJob) {
		return
	}
	s.pool.injectq = append(s.pool.injectq[:i], s.pool.injectq[i+1:]...)
	w.preemptDepth++
	w.runTask(t)
	w.preemptDepth--
	w.setState(cpu.Busy)
}

// memWork advances frequency-independent time (memory-bound stalls).
func (w *worker) memWork(d units.Time) {
	if d <= 0 {
		return
	}
	end := w.s.eng.Now() + d
	for {
		if w.proc.WaitUntil(end) >= end {
			return
		}
		// Spurious wake (e.g. run teardown, eviction); re-park until
		// done unless the stall no longer matters.
		if w.s.done {
			return
		}
		if j := w.curJob; j != nil && j.evicted {
			return
		}
	}
}

// --- wl.Ctx implementation ------------------------------------------

// ctx adapts a worker to the workload API; j is the owning job in
// pool mode (nil on the single-run path).
type ctx struct {
	w *worker
	j *jobRun
}

var _ wl.Ctx = ctx{}

// Go implements Cilk block semantics: push tasks[n-1]…tasks[1] (so
// the head of the deque holds the serially-latest work), run tasks[0]
// inline, then join.
func (c ctx) Go(tasks ...wl.Task) {
	w := c.w
	if w.s.taskCancelled(c.j) {
		return // spawn boundary: a cancelled run forks no new work
	}
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0](c)
		return
	}
	blk := &block{pending: len(tasks) - 1}
	for i := len(tasks) - 1; i >= 1; i-- {
		w.push(&task{fn: tasks[i], blk: blk, job: c.j})
	}
	tasks[0](c)
	w.join(blk)
}

// Work accounts CPU-bound cycles.
func (c ctx) Work(cy units.Cycles) {
	if cy > 0 {
		c.w.workCycles(cy)
	}
}

// Mem accounts frequency-independent stall time.
func (c ctx) Mem(d units.Time) { c.w.memWork(d) }

// WorkMix splits c into a CPU-bound part (scales with DVFS) and a
// memory-bound part (converted to time at the machine's maximum
// frequency, insensitive to DVFS).
func (c ctx) WorkMix(cy units.Cycles, memFrac float64) {
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	memCycles := units.Cycles(float64(cy) * memFrac)
	c.Work(cy - memCycles)
	c.Mem(memCycles.DurationAt(c.w.s.cfg.Spec.MaxFreq()))
}

// Worker returns the executing worker id.
func (c ctx) Worker() int { return c.w.id }

package core

import (
	"fmt"

	"hermes/internal/cpu"
	"hermes/internal/obs"
	"hermes/internal/units"
)

// Mode selects which tempo-control strategies are active.
type Mode uint8

const (
	// Baseline is the unmodified work-stealing runtime (the paper's
	// Intel Cilk Plus control): no tempo control, all cores at the
	// maximum frequency.
	Baseline Mode = iota
	// WorkpathOnly enables only thief procrastination and immediacy
	// relay (Section 3.1).
	WorkpathOnly
	// WorkloadOnly enables only deque-size-driven tempo (Section 3.2).
	WorkloadOnly
	// Unified enables both strategies (Section 3.3) — full HERMES.
	Unified
)

func (m Mode) String() string {
	switch m {
	case Baseline:
		return "baseline"
	case WorkpathOnly:
		return "workpath"
	case WorkloadOnly:
		return "workload"
	case Unified:
		return "hermes"
	}
	return "invalid"
}

// Workpath reports whether the immediacy-list strategy is active.
func (m Mode) Workpath() bool { return m == WorkpathOnly || m == Unified }

// Workload reports whether the deque-size strategy is active.
func (m Mode) Workload() bool { return m == WorkloadOnly || m == Unified }

// DequeKind selects the work-stealing deque implementation behind the
// scheduler's per-worker queues.
type DequeKind uint8

const (
	// DequeAuto picks the backend's preferred implementation: the
	// lock-free Chase–Lev deque on the Native backend (real thieves
	// contend, so the steal path must not serialize the pool) and the
	// THE-protocol deque on the Sim backend (the paper-fidelity
	// measurement instrument, where overheads are modeled rather than
	// paid).
	DequeAuto DequeKind = iota
	// DequeTHE forces the THE-protocol deque of the paper's Figure 2:
	// optimistic owner operations, a mutex on every steal.
	DequeTHE
	// DequeChaseLev forces the lock-free Chase–Lev deque: atomic
	// top/bottom indices, a CAS only on steals and the owner's
	// last-item race.
	DequeChaseLev
)

func (k DequeKind) String() string {
	switch k {
	case DequeAuto:
		return "auto"
	case DequeTHE:
		return "the"
	case DequeChaseLev:
		return "chaselev"
	}
	return "invalid"
}

// Scheduling selects the worker-core mapping policy of Section 3.4.
type Scheduling uint8

const (
	// Static pre-assigns each worker to a core for the whole run.
	Static Scheduling = iota
	// Dynamic re-pins the worker around every WORK invocation
	// (affinity set before, reset after), paying AffinityCost twice
	// per task. This is the paper's explanation for dynamic
	// scheduling's slightly higher energy (Figure 18).
	Dynamic
)

func (s Scheduling) String() string {
	if s == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Config describes one simulated run.
type Config struct {
	// Spec is the machine model; defaults to cpu.SystemA().
	Spec *cpu.Spec
	// Workers is the number of worker threads; each is pinned to a
	// core on a distinct clock domain, per the paper's setup.
	Workers int
	// Mode selects the tempo-control strategy.
	Mode Mode
	// Freqs is the N-frequency tempo set, fastest first (Section 3.4).
	// Tempo level i maps to Freqs[min(i, N-1)]. Empty selects the
	// paper's default 2-frequency pair for the system: 2.4/1.6 GHz on
	// System A, 3.6/2.7 GHz on System B.
	Freqs []units.Freq
	// K is the number of workload thresholds (default 2).
	K int
	// ProfilePeriod is the online-profiling sampling period for deque
	// sizes (default 500µs); ProfileWindow is how many periods the
	// rolling average spans (default 16).
	ProfilePeriod units.Time
	ProfileWindow int
	// InitialAvgDeque seeds the thresholds before the first profile
	// period completes (default 2).
	InitialAvgDeque float64
	// Scheduling selects static or dynamic worker-core mapping.
	Scheduling Scheduling
	// Deque selects the work-stealing deque implementation. The
	// default (DequeAuto) picks Chase–Lev on the Native backend and
	// THE on Sim; DequeTHE and DequeChaseLev force one.
	Deque DequeKind
	// Seed drives every random choice (victim selection). Identical
	// configs and seeds produce bit-identical runs.
	Seed int64
	// Dispatch orders the pool's ready jobs awaiting a worker:
	// DispatchFIFO (default, class-blind delivery order),
	// DispatchPriority (strict Class.Priority) or DispatchEDF
	// (earliest absolute deadline first). Single-shot runs ignore it.
	Dispatch Dispatch
	// PreemptQuantum, when positive and Dispatch is not FIFO, lets a
	// waiting job that outranks the one a worker is executing take
	// that worker at the next quantum boundary mid-task
	// (Shinjuku-style preemption): long CPU segments are chopped into
	// quantum-sized slices and the ready queue is re-checked between
	// slices, so a short latency-critical arrival overtakes
	// heavy-tailed batch work already in flight. Zero disables
	// preemption; Sim pool mode only.
	PreemptQuantum units.Time

	// Overheads. Zero values select defaults consistent with the
	// paper's Section 3.4 discussion.
	StealCost    units.Time // per steal attempt (lock + probe), default 1.2µs
	PushPopCost  units.Time // per local deque operation, default 60ns
	YieldSpin    units.Time // initial failed-steal backoff, default 25µs
	YieldSpinMax units.Time // backoff cap, default 200µs
	AffinityCost units.Time // per affinity syscall under Dynamic, default 1.5µs
	MaxHelpDepth int        // join help-steal nesting cap, default 128
	// MaxTempoLevels bounds how deep tempo levels can stack (thief
	// chains, workload tiers). Levels map onto the N frequencies by
	// saturation: level i runs at Freqs[min(i, N-1)], per the paper's
	// N-frequency tempo control. Default N+2.
	MaxTempoLevels int

	// Observer, if non-nil, receives scheduler events (steals, tempo
	// switches, DVFS commits, energy samples). Purely observational:
	// it cannot influence scheduling, so a fixed config and seed stay
	// deterministic with or without it.
	Observer obs.Observer
	// Cancelled, if non-nil, is polled at spawn and task-execution
	// boundaries by the simulator. Once it reports true the scheduler
	// stops executing task bodies and drains the remaining fork-join
	// structure, so a run under a cancelled context completes quickly.
	// Runs that are never cancelled are unaffected. Simulator-only:
	// the real-concurrency executor (internal/rt) cancels per job
	// through the Submit context instead and ignores this hook.
	Cancelled func() bool
}

// withDefaults fills in zero fields and validates the configuration,
// panicking on invalid configs. It backs the package-level Run entry
// point; error-returning callers use Validate.
func (c Config) withDefaults() Config {
	v, err := c.Validate()
	if err != nil {
		panic(err.Error())
	}
	return v
}

// Validate fills in zero fields and checks the configuration,
// returning the completed config or an error describing the first
// problem found.
func (c Config) Validate() (Config, error) {
	if c.Spec == nil {
		c.Spec = cpu.SystemA()
	}
	if c.Workers == 0 {
		c.Workers = c.Spec.Domains()
	}
	if c.Workers < 1 || c.Workers > c.Spec.Domains() {
		return c, fmt.Errorf("core: %d workers not supported on %s (%d clock domains)",
			c.Workers, c.Spec.Name, c.Spec.Domains())
	}
	if c.Mode > Unified {
		return c, fmt.Errorf("core: invalid mode %d", c.Mode)
	}
	if c.Scheduling > Dynamic {
		return c, fmt.Errorf("core: invalid scheduling policy %d", c.Scheduling)
	}
	if c.Deque > DequeChaseLev {
		return c, fmt.Errorf("core: invalid deque kind %d", c.Deque)
	}
	if c.Dispatch > DispatchEDF {
		return c, fmt.Errorf("core: invalid dispatch policy %d", c.Dispatch)
	}
	if c.PreemptQuantum < 0 {
		return c, fmt.Errorf("core: PreemptQuantum must not be negative, got %v", c.PreemptQuantum)
	}
	if len(c.Freqs) == 0 {
		c.Freqs = DefaultFreqs(c.Spec)
	}
	for i, f := range c.Freqs {
		if !c.Spec.Supports(f) {
			return c, fmt.Errorf("core: %s does not support tempo frequency %v", c.Spec.Name, f)
		}
		if i > 0 && f >= c.Freqs[i-1] {
			return c, fmt.Errorf("core: tempo frequencies must be strictly descending (got %v after %v)",
				f, c.Freqs[i-1])
		}
	}
	if c.Freqs[0] != c.Spec.MaxFreq() {
		return c, fmt.Errorf("core: the fastest tempo must map to the maximum frequency %v, got %v",
			c.Spec.MaxFreq(), c.Freqs[0])
	}
	if c.Mode != Baseline && len(c.Freqs) < 2 {
		return c, fmt.Errorf("core: tempo control needs at least two frequencies, got %d", len(c.Freqs))
	}
	if c.K < 0 {
		return c, fmt.Errorf("core: K must not be negative, got %d (zero selects the default)", c.K)
	}
	// Negative values are never meaningful for these knobs (zero means
	// "use the default"); reject them here so backends can trust the
	// validated config — a negative ProfilePeriod, for example, would
	// otherwise panic the native profiler's ticker.
	for _, f := range []struct {
		name string
		v    units.Time
	}{
		{"ProfilePeriod", c.ProfilePeriod},
		{"StealCost", c.StealCost},
		{"PushPopCost", c.PushPopCost},
		{"YieldSpin", c.YieldSpin},
		{"YieldSpinMax", c.YieldSpinMax},
		{"AffinityCost", c.AffinityCost},
	} {
		if f.v < 0 {
			return c, fmt.Errorf("core: %s must not be negative, got %v", f.name, f.v)
		}
	}
	if c.ProfileWindow < 0 {
		return c, fmt.Errorf("core: ProfileWindow must not be negative, got %d", c.ProfileWindow)
	}
	if c.InitialAvgDeque < 0 {
		return c, fmt.Errorf("core: InitialAvgDeque must not be negative, got %v", c.InitialAvgDeque)
	}
	if c.MaxHelpDepth < 0 {
		return c, fmt.Errorf("core: MaxHelpDepth must not be negative, got %d", c.MaxHelpDepth)
	}
	if c.MaxTempoLevels < 0 {
		return c, fmt.Errorf("core: MaxTempoLevels must not be negative, got %d", c.MaxTempoLevels)
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.ProfilePeriod == 0 {
		c.ProfilePeriod = 500 * units.Microsecond
	}
	if c.ProfileWindow == 0 {
		c.ProfileWindow = 16
	}
	if c.InitialAvgDeque == 0 {
		c.InitialAvgDeque = 2
	}
	if c.StealCost == 0 {
		c.StealCost = 1200 * units.Nanosecond
	}
	if c.PushPopCost == 0 {
		c.PushPopCost = 60 * units.Nanosecond
	}
	if c.YieldSpin == 0 {
		c.YieldSpin = 25 * units.Microsecond
	}
	if c.YieldSpinMax == 0 {
		c.YieldSpinMax = 200 * units.Microsecond
	}
	if c.AffinityCost == 0 {
		c.AffinityCost = 1500 * units.Nanosecond
	}
	if c.MaxHelpDepth == 0 {
		c.MaxHelpDepth = 128
	}
	if c.MaxTempoLevels == 0 {
		c.MaxTempoLevels = len(c.Freqs) + 2
	}
	if c.MaxTempoLevels < len(c.Freqs) {
		return c, fmt.Errorf("core: MaxTempoLevels (%d) must cover the tempo frequency set (%d)",
			c.MaxTempoLevels, len(c.Freqs))
	}
	return c, nil
}

// DefaultFreqs returns the paper's default 2-frequency tempo mapping
// for a system: the maximum frequency paired with the slow frequency
// nearest the "golden ratio" ≈60–75% the paper found optimal
// (2.4/1.6 GHz on System A, 3.6/2.7 GHz on System B).
func DefaultFreqs(spec *cpu.Spec) []units.Freq {
	switch spec.Name {
	case "SystemA":
		return []units.Freq{2_400_000 * units.KHz, 1_600_000 * units.KHz}
	case "SystemB":
		return []units.Freq{3_600_000 * units.KHz, 2_700_000 * units.KHz}
	}
	// Generic fallback: max plus the point closest to 2/3 of max.
	max := spec.MaxFreq()
	bestD := units.Freq(1 << 62)
	best := spec.MinFreq()
	for _, p := range spec.Points[1:] {
		d := p.F - max*2/3
		if d < 0 {
			d = -d
		}
		if d < bestD {
			bestD, best = d, p.F
		}
	}
	return []units.Freq{max, best}
}

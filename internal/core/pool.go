package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"hermes/internal/meter"
	"hermes/internal/obs"
	"hermes/internal/sim"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// ErrPoolClosed is returned by Submit after Close has begun.
var ErrPoolClosed = errors.New("core: pool closed")

// ErrNilRoot is returned by Submit for a request with no root task.
var ErrNilRoot = errors.New("core: nil root task")

// ErrInterrupted is the completion error of a job whose cancellation
// hook fired while work remained: the scheduler skipped task bodies
// and drained the fork-join structure instead of running it. Callers
// that cancelled through a context typically translate it back to the
// context's error.
var ErrInterrupted = errors.New("core: job interrupted by cancellation")

// JobRequest describes one job handed to a Pool.
type JobRequest struct {
	// ID is the caller-assigned job id: unique, positive, and
	// ascending in submission order (it breaks virtual-time ties
	// between arrivals).
	ID int64
	// At is the requested virtual arrival time. Negative means "on
	// receipt": the engine's current virtual now. Arrivals whose time
	// has already passed are delivered immediately at now.
	At units.Time
	// Root is the job's root task.
	Root wl.Task
	// Class is the job's service class (tenant, priority, deadline,
	// SLO target). The zero Class reproduces pre-class behaviour.
	Class Class
	// Cancelled, if non-nil, is polled at spawn and task boundaries;
	// once true the job's remaining bodies are skipped and the job
	// completes with ErrInterrupted.
	Cancelled func() bool
	// Done receives the job's report exactly once, on the engine
	// goroutine. It must not block.
	Done func(Report, error)
}

// Pool is the persistent multi-job discrete-event executor: one
// simulated machine — workers, deques, tempo controller, DVFS state,
// power meter — shared by every job submitted to it, exactly as the
// Native pool shares its goroutine workers. Jobs are injected as
// virtual-time arrivals by an in-engine intake process, so concurrent
// jobs genuinely contend for workers and steals inside the simulation,
// and open-system quantities (sojourn time, queueing delay, energy per
// request under load) become measurable deterministically.
//
// Determinism: the simulation's event order depends only on the
// configuration (including Seed) and on each job's virtual arrival
// time and id — never on wall-clock submission timing — because
// external stimuli enter the event order through front-priority
// injection at their virtual timestamps. Submitting a whole trace in
// one Submit call to a quiescent pool therefore reproduces
// byte-identical per-job reports and observer event sequences run
// after run. Jobs submitted "at now" from live callers (a serving
// process) get arrival times assigned by wall-clock race and are
// individually valid but not reproducible.
type Pool struct {
	cfg Config
	s   *sched

	msgs chan poolMsg
	dead chan struct{} // closed when the engine goroutine exits

	// pendingClose holds a close message received mid-timeline until
	// the engine is quiescent: applying it between scheduled events
	// would race the wall clock against the virtual one, making the
	// post-drain event tail (idle parks, tempo spin-downs)
	// nondeterministic.
	pendingClose bool

	mu     sync.Mutex
	closed bool
	// broken is set (under mu, after dead closes) by the engine
	// goroutine's teardown before it drains msgs: a Submit that saw
	// broken false while holding mu completed its send before the
	// drain ran, so no message can be stranded unconsumed.
	broken bool
	runErr error // engine crash (scheduler bug), poisons Submit

	wg sync.WaitGroup
}

type poolMsg struct {
	arrivals []*jobRun
	close    bool
}

// jobRun is the engine-side record of one submitted job.
type jobRun struct {
	id        int64
	at        units.Time // requested arrival; <0 = on receipt
	root      wl.Task
	class     Class
	cancelled func() bool
	done      func(Report, error)

	arriveAt    units.Time
	started     bool
	startAt     units.Time
	interrupted bool
	failErr     error
	// delivered marks that the job has entered some machine: arrival
	// framing (arriveAt, JobStart) happens exactly once, while gossip
	// migration may re-deliver an unstarted job to another machine,
	// re-baselining its snapshot there without restarting its sojourn
	// clock.
	delivered bool
	// Fault-recovery state (cluster mode): evicted marks a job whose
	// machine crashed under it — remaining bodies are skipped and the
	// drained job routes through the cluster's requeue instead of a
	// report. retries counts re-placements; placements the machines
	// that accepted the job, in order (recorded only with faults
	// configured).
	evicted    bool
	retries    int64
	placements []int

	tasks, spawns, steals int64
	energyJ               float64 // exact interval-partitioned share of machine joules
	snap                  poolSnap
}

// fail records the job's first task panic; the rest of the job drains
// like a cancellation.
func (j *jobRun) fail(err error) {
	if j.failErr == nil {
		j.failErr = err
	}
}

// poolSnap is a consistent copy of the machine-wide accumulators,
// taken at job arrival and completion; a job's report is the delta.
type poolSnap struct {
	joules                 float64
	busy, spin, idle, slow units.Time
	freqBusy               map[units.Freq]units.Time
	perWorker              []WorkerStats
	failedSteals           int64
	tempoSwitches          int64
	dvfsCommits            int64
	parks                  int64
}

// poolRun is the engine-side pool state; only the engine goroutine
// (its processes plus the tick/idle hooks) touches it.
type poolRun struct {
	intake   *sim.Proc
	arrivals arrivalHeap
	active   []*jobRun
	// injectq holds delivered root tasks awaiting pickup by a worker's
	// schedule loop — the virtual-time analogue of the native
	// executor's intake channel. Roots are taken, not stolen: a
	// worker's own deque only ever holds its own pushes, preserving
	// the immediacy-list invariants.
	injectq []*task
	stop    bool
}

type arrivalHeap []*jobRun

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(*jobRun)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// NewPool validates cfg and starts the engine goroutine. The pool
// idles (halted cores, no events, no wall-clock work) until jobs
// arrive.
func NewPool(cfg Config) (*Pool, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:  cfg,
		msgs: make(chan poolMsg, 64),
		dead: make(chan struct{}),
	}
	s := newSched(cfg)
	s.pool = &poolRun{}
	p.s = s
	s.eng.SetTick(p.pump)
	s.eng.SetIdle(p.pumpBlocking)
	s.start()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.failRemaining() // closes p.dead
		s.eng.Run()
	}()
	return p, nil
}

// Config returns the validated configuration the pool runs with.
func (p *Pool) Config() Config { return p.cfg }

// pump drains pending submissions without blocking; it runs on the
// engine goroutine between events.
func (p *Pool) pump() {
	for {
		select {
		case msg := <-p.msgs:
			if msg.close {
				p.pendingClose = true
				continue
			}
			p.apply(msg)
		default:
			return
		}
	}
}

// pumpBlocking waits for the next submission (or close) while the
// engine is quiescent; it is the engine's idle hook, so a pool with no
// jobs costs nothing until the next arrival. An idle engine with jobs
// still in flight is a genuine scheduling deadlock — refuse so the
// engine's loud deadlock diagnostics fire instead of hanging silently.
func (p *Pool) pumpBlocking() bool {
	if len(p.s.pool.active) > 0 {
		return false
	}
	if p.pendingClose {
		p.pendingClose = false
		p.apply(poolMsg{close: true})
		return true
	}
	p.apply(<-p.msgs)
	return true
}

// apply folds one external message into the engine-side state and
// injects the intake wake that will act on it. Runs with no process
// current, so Inject is legal.
func (p *Pool) apply(msg poolMsg) {
	s := p.s
	if msg.close {
		s.pool.stop = true
		s.eng.Inject(s.pool.intake, s.eng.Now())
		return
	}
	for _, j := range msg.arrivals {
		if j.at < s.eng.Now() {
			j.at = s.eng.Now()
		}
		heap.Push(&s.pool.arrivals, j)
	}
	if s.pool.arrivals.Len() > 0 {
		s.eng.Inject(s.pool.intake, s.pool.arrivals[0].at)
	}
}

// Submit enqueues a batch of jobs atomically and returns once they
// are handed to the engine. A batch submitted to a quiescent pool is
// delivered exactly at its virtual arrival times; see the Pool
// determinism contract.
func (p *Pool) Submit(reqs ...JobRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	jobs := make([]*jobRun, len(reqs))
	for i, rq := range reqs {
		if rq.Root == nil {
			return ErrNilRoot
		}
		if rq.ID <= 0 {
			return fmt.Errorf("core: job id must be positive, got %d", rq.ID)
		}
		if rq.Done == nil {
			return fmt.Errorf("core: job %d has no completion callback", rq.ID)
		}
		if err := rq.Class.Validate(); err != nil {
			return err
		}
		jobs[i] = &jobRun{
			id:        rq.ID,
			at:        rq.At,
			root:      rq.Root,
			class:     rq.Class,
			cancelled: rq.Cancelled,
			done:      rq.Done,
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	if p.broken {
		return fmt.Errorf("core: pool engine stopped: %v", p.runErr)
	}
	// The send happens under p.mu so submission batches and the close
	// message reach the engine in a well-defined order, and so a send
	// racing engine teardown always completes before failRemaining's
	// drain (which takes p.mu after setting broken). The dead case
	// covers a full channel with no consumer left.
	select {
	case p.msgs <- poolMsg{arrivals: jobs}:
		return nil
	case <-p.dead:
		return fmt.Errorf("core: pool engine stopped: %v", p.runErr)
	}
}

// Close rejects further submissions, delivers and completes every
// already-submitted job (pending virtual arrivals included), then
// stops the engine. Safe to call more than once.
func (p *Pool) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		select {
		case p.msgs <- poolMsg{close: true}:
		case <-p.dead:
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
	return p.engineErr()
}

func (p *Pool) engineErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runErr
}

// MachineEnergyJ returns the machine's total integrated energy over
// the pool's lifetime. Valid after Close; it is the quantity per-job
// attributed energies partition.
func (p *Pool) MachineEnergyJ() float64 {
	<-p.dead
	return p.s.met.Energy()
}

// MachineStats is the machine-wide aggregate through the pool's most
// recent job completion — the quantities per-job Reports carry only as
// deltas over their own sojourn windows, which overlap under load and
// so cannot be summed. Open-system evaluations (energy, power and
// DVFS-tier residency vs offered load) read the machine totals from
// here. The snapshot is taken at the last JobDone rather than at
// engine shutdown: the time at which Close lands relative to the idle
// engine's parked daemons is a wall-clock race, whereas the trace's
// last completion is a deterministic virtual instant — so for a fixed
// config, seed and arrival trace this aggregate is byte-reproducible.
type MachineStats struct {
	// Elapsed is the virtual time of the last job completion: the
	// trace's makespan when the pool started quiescent at time zero.
	Elapsed units.Time
	// EnergyJ is the machine's exact integrated energy through Elapsed
	// (MachineEnergyJ keeps integrating idle draw until shutdown, so it
	// is at least this).
	EnergyJ float64

	// Residency, summed over worker cores.
	Busy, Spin, Idle units.Time
	// SlowBusy is busy time spent below the maximum frequency.
	SlowBusy units.Time
	// FreqBusy maps frequency → busy core-time at that frequency: the
	// DVFS-tier residency of everything the pool executed.
	FreqBusy map[units.Freq]units.Time

	// Scheduler totals across all jobs.
	Tasks, Spawns, Steals, FailedSteals int64
	TempoSwitches, DVFSCommits, Parks   int64
}

// MachineStats returns the machine-wide totals through the last job
// completion. It blocks until the engine goroutine has exited, so call
// it after Close (like MachineEnergyJ); the returned snapshot is final
// and immutable. A pool that never completed a job returns the zero
// aggregate.
func (p *Pool) MachineStats() MachineStats {
	<-p.dead
	s := p.s
	snap := s.lastDone
	ms := MachineStats{
		Elapsed:       s.lastDoneAt,
		EnergyJ:       snap.joules,
		Busy:          snap.busy,
		Spin:          snap.spin,
		Idle:          snap.idle,
		SlowBusy:      snap.slow,
		FreqBusy:      make(map[units.Freq]units.Time, len(snap.freqBusy)),
		Tasks:         s.lastDoneTasks,
		Spawns:        s.lastDoneSpawns,
		Steals:        s.lastDoneSteals,
		FailedSteals:  snap.failedSteals,
		TempoSwitches: snap.tempoSwitches,
		DVFSCommits:   snap.dvfsCommits,
		Parks:         snap.parks,
	}
	for f, t := range snap.freqBusy {
		ms.FreqBusy[f] = t
	}
	return ms
}

// failRemaining runs when the engine goroutine exits: on a clean
// shutdown there is nothing left, but if the engine died to a
// scheduler panic every in-flight and queued job still needs its
// completion callback. It runs after sim.Engine.Run has returned or
// panicked, so the engine-side state is quiescent. Ordering matters:
// p.dead closes first (unblocking any sender stuck on a full
// channel), then broken is set and the channel drained under p.mu —
// a Submit that saw broken false completed its send under the same
// mutex, so the drain sees every message no late sender can strand.
func (p *Pool) failRemaining() {
	var cause error
	if r := recover(); r != nil {
		cause = fmt.Errorf("core: pool engine panicked: %v", r)
	} else {
		cause = ErrPoolClosed
	}
	close(p.dead)
	fail := func(j *jobRun) {
		if j.done != nil {
			done := j.done
			j.done = nil
			done(Report{}, cause)
		}
	}
	p.mu.Lock()
	p.broken = true
	if p.runErr == nil && cause != ErrPoolClosed {
		p.runErr = cause
	}
	// Batches sent but never pumped.
	for {
		select {
		case msg := <-p.msgs:
			for _, j := range msg.arrivals {
				fail(j)
			}
			continue
		default:
		}
		break
	}
	p.mu.Unlock()
	for _, j := range p.s.pool.active {
		fail(j)
	}
	for _, j := range p.s.pool.arrivals {
		fail(j)
	}
}

// --- engine-side scheduling -----------------------------------------

// intakeLoop is the virtual-time arrival process: it sleeps until the
// earliest pending arrival, delivers every arrival that is due (in
// (time, id) order), and parks when none are pending. External
// submissions reach it through front-priority injected wakes, job
// completions through Wake, so it also drives the shutdown handshake.
func (s *sched) intakeLoop(p *sim.Proc) {
	for {
		if s.pool.stop && s.pool.arrivals.Len() == 0 && len(s.pool.active) == 0 {
			s.poolShutdown()
			return
		}
		if s.pool.arrivals.Len() > 0 && s.pool.arrivals[0].at <= s.eng.Now() {
			j := heap.Pop(&s.pool.arrivals).(*jobRun)
			s.deliver(j)
			// Delivery can complete the job on this very process (a
			// job already cancelled at arrival): re-evaluate the
			// shutdown condition instead of parking past it.
			continue
		}
		if s.pool.arrivals.Len() > 0 {
			p.WaitUntil(s.pool.arrivals[0].at)
			continue
		}
		p.ParkUntilWake()
	}
}

// deliver admits one job at the current virtual time: baseline
// snapshots for the delta report, JobStart framing, root task onto a
// worker deque, and a wake for the (possibly halted) machine. A job
// already cancelled at arrival completes immediately without
// executing. Re-delivery (gossip migration moving an unstarted job to
// another machine) re-baselines the machine snapshot on the new
// machine but keeps the original arrival: the job's sojourn spans its
// whole time in the cluster, wherever it ran.
func (s *sched) deliver(j *jobRun) {
	now := s.eng.Now()
	s.touch()
	j.snap = s.poolSnapNow()
	if !j.delivered {
		j.delivered = true
		j.arriveAt = now
		s.emit(obs.Event{Kind: obs.JobStart, Job: j.id, Time: now, Worker: -1, Victim: -1})
	}
	if s.onEvicted != nil {
		j.placements = append(j.placements, s.mid)
	}
	s.pool.active = append(s.pool.active, j)
	if s.taskCancelled(j) {
		s.jobDone(j, true)
		return
	}
	s.pool.injectq = append(s.pool.injectq, &task{fn: j.root, job: j, root: true})
	// Wake only idle-halted workers: busy workers find the root at
	// their next schedule pass, and workers parked on fork-join blocks
	// cannot take it anyway.
	for _, w := range s.workers {
		if w.idlePark {
			w.proc.Wake()
		}
	}
	s.profProc.Wake()
}

// poolTake hands out the delivered root the dispatch policy ranks
// first (delivery order under FIFO), or nil. Only meaningful in pool
// mode.
func (s *sched) poolTake() *task {
	if s.pool == nil || len(s.pool.injectq) == 0 {
		return nil
	}
	i := s.poolPick()
	t := s.pool.injectq[i]
	if i == 0 {
		s.pool.injectq = s.pool.injectq[1:]
	} else {
		s.pool.injectq = append(s.pool.injectq[:i], s.pool.injectq[i+1:]...)
	}
	return t
}

// jobDone completes a job: snapshot deltas into its report, JobDone
// framing with the virtual sojourn, the completion callback, and — if
// the pool is both stopping and drained — the intake wake that lets
// shutdown proceed. fromIntake marks completion on the intake process
// itself (a job cancelled at arrival): it must not wake itself, and
// its own loop re-checks the shutdown condition instead.
func (s *sched) jobDone(j *jobRun, fromIntake bool) {
	if j != nil && j.evicted && s.onEvicted != nil {
		// The machine crashed under this job and its fork-join drain
		// just finished: no report, no JobDone framing, no aggregate
		// freeze — the job re-enters placement through the cluster.
		// Sojourn keeps running across the retry; tasks, steals and
		// attributed energy accumulate across attempts.
		s.touch()
		for i, a := range s.pool.active {
			if a == j {
				s.pool.active = append(s.pool.active[:i], s.pool.active[i+1:]...)
				break
			}
		}
		s.onEvicted(j)
		return
	}
	s.touch()
	now := s.eng.Now()
	end := s.poolSnapNow()
	rep := s.buildJobReport(j, now, end)
	for i, a := range s.pool.active {
		if a == j {
			s.pool.active = append(s.pool.active[:i], s.pool.active[i+1:]...)
			break
		}
	}
	s.emit(obs.Event{Kind: obs.JobDone, Job: j.id, Time: now, Worker: -1, Victim: -1,
		Energy: rep.EnergyJ, Sojourn: now - j.arriveAt})
	// Freeze the machine aggregate at this completion: MachineStats
	// reports through the LAST job done, a deterministic virtual
	// instant, not through the wall-clock-racy shutdown time.
	s.lastDone = end
	s.lastDoneAt = now
	s.lastDoneTasks, s.lastDoneSpawns, s.lastDoneSteals = s.tasks, s.spawns, s.steals
	var err error
	switch {
	case j.failErr != nil:
		err = j.failErr
	case j.interrupted:
		err = ErrInterrupted
	}
	done := j.done
	j.done = nil
	done(rep, err)
	s.trimSamples()
	if s.onJobDone != nil {
		s.onJobDone()
	}
	if !fromIntake && len(s.pool.active) == 0 && s.pool.stop && s.pool.arrivals.Len() == 0 {
		s.pool.intake.Wake()
	}
}

// poolShutdown ends the simulation: every process observes done and
// exits, draining the engine.
func (s *sched) poolShutdown() {
	s.touch()
	s.done = true
	for _, w := range s.workers {
		w.proc.Wake()
	}
	s.dvfsProc.Wake()
	s.profProc.Wake()
}

// poolSnapNow copies the machine-wide accumulators; callers touch()
// first.
func (s *sched) poolSnapNow() poolSnap {
	snap := poolSnap{
		joules:        s.met.Energy(),
		busy:          s.busy,
		spin:          s.spin,
		idle:          s.idle,
		slow:          s.slowBusy,
		freqBusy:      make(map[units.Freq]units.Time, len(s.freqBusy)),
		perWorker:     make([]WorkerStats, len(s.perWorker)),
		failedSteals:  s.failedSteals,
		tempoSwitches: s.tempoSwitches,
		dvfsCommits:   s.dvfsCommitCount,
		parks:         s.parks,
	}
	for f, t := range s.freqBusy {
		snap.freqBusy[f] = t
	}
	copy(snap.perWorker, s.perWorker)
	return snap
}

// buildJobReport renders a job's report as the machine delta over its
// sojourn window [arrival, completion]. Tasks, Spawns and Steals are
// exact per-job attributions; counts the machine cannot attribute to
// one job (failed steals, tempo switches, residency) cover everything
// that happened during the window, concurrent neighbours included.
// Energy is the exact interval partition accumulated by touch():
// worker-time weighted like the Native backend, but integrated per
// interval, so the sum over concurrent jobs equals the machine's
// joules over every instant a job held a worker — no double counting
// regardless of how the jobs' windows overlap.
func (s *sched) buildJobReport(j *jobRun, now units.Time, end poolSnap) Report {
	var span units.Time
	if j.started {
		span = now - j.startAt
	}
	sojourn := now - j.arriveAt
	energy := j.energyJ
	var samples []meter.Sample
	for _, smp := range s.met.Samples() {
		if smp.T >= j.arriveAt && smp.T <= now {
			samples = append(samples, smp)
		}
	}
	r := Report{
		System:        s.cfg.Spec.Name,
		Workers:       s.cfg.Workers,
		Mode:          s.cfg.Mode,
		Sched:         s.cfg.Scheduling,
		Class:         j.class,
		Span:          span,
		Sojourn:       sojourn,
		EnergyJ:       energy,
		MeterJ:        energy, // the DAQ meters the machine, not one job
		EDP:           meter.EDP(energy, span),
		Samples:       samples,
		Tasks:         j.tasks,
		Spawns:        j.spawns,
		Steals:        j.steals,
		FailedSteals:  end.failedSteals - j.snap.failedSteals,
		TempoSwitches: end.tempoSwitches - j.snap.tempoSwitches,
		DVFSCommits:   end.dvfsCommits - j.snap.dvfsCommits,
		Parks:         end.parks - j.snap.parks,
		BusyTime:      end.busy - j.snap.busy,
		SpinTime:      end.spin - j.snap.spin,
		IdleTime:      end.idle - j.snap.idle,
		SlowBusyTime:  end.slow - j.snap.slow,
		FreqBusy:      map[units.Freq]units.Time{},
		PerWorker:     make([]WorkerStats, len(end.perWorker)),
		Retries:       j.retries,
		Placements:    append([]int(nil), j.placements...),
	}
	if sojourn > 0 {
		r.AvgPowerW = energy / sojourn.Seconds()
	}
	for f, t := range end.freqBusy {
		if d := t - j.snap.freqBusy[f]; d > 0 {
			r.FreqBusy[f] = d
		}
	}
	for i := range end.perWorker {
		a, b := j.snap.perWorker[i], end.perWorker[i]
		r.PerWorker[i] = WorkerStats{
			Busy:     b.Busy - a.Busy,
			SlowBusy: b.SlowBusy - a.SlowBusy,
			Spin:     b.Spin - a.Spin,
			SlowSpin: b.SlowSpin - a.SlowSpin,
			Idle:     b.Idle - a.Idle,
			Steals:   b.Steals - a.Steals,
		}
	}
	return r
}

// trimSamples discards 100 Hz meter samples that precede every active
// job's arrival, so a long-lived pool's sample trace stays bounded by
// the in-flight window instead of growing with uptime.
func (s *sched) trimSamples() {
	min := s.eng.Now()
	for _, a := range s.pool.active {
		if a.arriveAt < min {
			min = a.arriveAt
		}
	}
	dropped := s.met.DropSamplesBefore(min)
	s.emittedSamples -= dropped
	if s.emittedSamples < 0 {
		s.emittedSamples = 0
	}
}

package core

import (
	"hermes/internal/cpu"
	"hermes/internal/meter"
	"hermes/internal/obs"
	"hermes/internal/power"
	"hermes/internal/sim"
	"hermes/internal/tempo"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// sched owns one simulated run: machine, meter, engine, workers and
// the service processes (DVFS commit daemon, threshold profiler).
type sched struct {
	cfg   Config
	eng   *sim.Engine
	mach  *cpu.Machine
	model *power.Model
	met   *meter.Meter

	workers  []*worker
	byCore   map[*cpu.Core]*worker
	prof     *tempo.Profiler
	root     wl.Task
	done     bool
	finishAt units.Time

	// pool is non-nil when the sched serves a stream of jobs injected
	// at virtual arrival times instead of one root task (see pool.go).
	// done then means "pool shut down" rather than "root completed".
	pool *poolRun
	// mid and tag identify this machine inside a multi-machine cluster
	// (cluster.go): mid stamps every observer event's Machine field and
	// tag prefixes process names ("m3/worker0"). Zero values for the
	// ordinary single-machine pool.
	mid int
	tag string
	// onJobDone, if non-nil, runs at the end of every jobDone — the
	// cluster's hook for idle-machine tracking and the fleet-wide stats
	// snapshot, taken at the deterministic virtual instant of each
	// completion.
	onJobDone func()
	// onEvicted, if non-nil, receives each job whose drain finished
	// after a crash evicted it — the cluster's re-placement hook. Set
	// only when fault injection is configured.
	onEvicted func(*jobRun)
	// Fault-injection state (cluster.go / fault.go). dead marks a
	// fail-stopped machine: residency accumulation pauses, the meter
	// gates to zero draw, and the placement tier routes around it.
	// downAt/downTotal track the availability ledger. slowFactor > 1
	// inflates CPU work segments (a straggler); slowPinned pins every
	// worker to the lowest DVFS tier instead.
	dead       bool
	downAt     units.Time
	downTotal  units.Time
	slowFactor float64
	slowPinned bool
	// lastDone freezes the machine-wide aggregate at the most recent
	// job completion (pool mode): the deterministic end-of-trace
	// snapshot Pool.MachineStats reports.
	lastDone                                      poolSnap
	lastDoneAt                                    units.Time
	lastDoneTasks, lastDoneSpawns, lastDoneSteals int64

	// DVFS commit daemon state: per-domain pending commit time
	// (0 = none), and the daemon process to wake on new requests.
	dvfsCommits []units.Time
	dvfsProc    *sim.Proc
	profProc    *sim.Proc

	// statistics (single-threaded in the DES; plain ints)
	tasks, spawns, steals, failedSteals int64
	tempoSwitches, parks                int64
	dvfsCommitCount                     int64
	emittedSamples                      int
	lastTouch                           units.Time
	busy, spin, idle, slowBusy          units.Time
	freqBusy                            map[units.Freq]units.Time
	perWorker                           []WorkerStats
	frozen                              bool

	report Report
}

// Run executes root to completion on a fresh simulated machine and
// returns the measured report. It is deterministic: identical configs
// (including Seed) produce identical reports.
func Run(cfg Config, root wl.Task) Report {
	cfg = cfg.withDefaults()
	s := newSched(cfg)
	s.root = root
	s.start()
	s.eng.Run()
	return s.report
}

// newSched builds the simulated machine, meter and workers for a
// validated config, without starting any engine process.
func newSched(cfg Config) *sched {
	return newSchedOn(sim.NewEngine(), cfg)
}

// newSchedOn builds a sched over an existing engine, so several
// simulated machines can share one virtual timeline (cluster mode):
// each keeps its own cores, meter, workers and daemons, but every
// event lands in the same deterministic order.
func newSchedOn(eng *sim.Engine, cfg Config) *sched {
	s := &sched{
		cfg:         cfg,
		eng:         eng,
		mach:        cpu.NewMachine(cfg.Spec),
		byCore:      map[*cpu.Core]*worker{},
		prof:        tempo.NewProfiler(cfg.ProfileWindow),
		freqBusy:    map[units.Freq]units.Time{},
		dvfsCommits: make([]units.Time, cfg.Spec.Domains()),
	}
	s.model = power.NewModel(cfg.Spec)
	s.met = meter.New(s.model, s.mach)

	s.perWorker = make([]WorkerStats, cfg.Workers)
	cores := s.mach.DistinctDomainCores(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := newWorker(s, i, cores[i])
		s.workers = append(s.workers, w)
		s.byCore[w.core] = w
		w.core.State = cpu.IdleHalt
	}
	return s
}

// start registers the service daemons and workers with the engine.
// Service daemons first, then workers, so worker 0's initial event
// lands after theirs at t=0 — irrelevant for correctness, fixed
// for determinism.
func (s *sched) start() {
	s.dvfsProc = s.eng.Go(s.tag+"dvfsd", s.dvfsLoop)
	s.profProc = s.eng.Go(s.tag+"profiler", s.profLoop)
	if s.pool != nil {
		s.pool.intake = s.eng.Go(s.tag+"intake", s.intakeLoop)
	}
	for _, w := range s.workers {
		w := w
		w.proc = s.eng.Go(w.name(), w.run)
	}
}

// touch integrates power and frequency residency up to the current
// virtual time. It must be called before any mutation of machine
// state (core states, domain frequencies). In pool mode it also
// partitions the interval's machine energy exactly among the jobs
// whose tasks held busy workers through it (equal worker-time
// weights, the Native backend's attribution rule applied per
// integration interval): concurrent jobs split the machine's joules
// with no double counting, and a solo job keeps the full draw, idle
// cores included.
func (s *sched) touch() {
	now := s.eng.Now()
	served := 0
	if now > s.lastTouch && !s.frozen && s.dead {
		// A crashed machine accrues no residency: the interval is
		// downtime, not busy/spin/idle time, and the gated meter
		// integrates it at zero watts below.
		s.lastTouch = now
	}
	if now > s.lastTouch && !s.frozen {
		dt := now - s.lastTouch
		maxF := s.cfg.Spec.MaxFreq()
		for i, w := range s.workers {
			f := w.core.Dom.Freq()
			pw := &s.perWorker[i]
			switch w.core.State {
			case cpu.Busy:
				s.busy += dt
				s.freqBusy[f] += dt
				pw.Busy += dt
				if f != maxF {
					s.slowBusy += dt
					pw.SlowBusy += dt
				}
				if w.curJob != nil {
					served++
				}
			case cpu.Spin:
				s.spin += dt
				pw.Spin += dt
				if f != maxF {
					pw.SlowSpin += dt
				}
			case cpu.IdleHalt:
				s.idle += dt
				pw.Idle += dt
			}
		}
		s.lastTouch = now
	}
	e0 := s.met.Energy()
	s.met.Advance(now)
	if s.pool != nil && served > 0 {
		if dJ := s.met.Energy() - e0; dJ > 0 {
			share := dJ / float64(served)
			for _, w := range s.workers {
				if w.core.State == cpu.Busy && w.curJob != nil {
					w.curJob.energyJ += share
				}
			}
		}
	}
	if s.cfg.Observer != nil {
		samples := s.met.Samples()
		for _, smp := range samples[s.emittedSamples:] {
			s.emit(obs.Event{Kind: obs.EnergySample, Time: smp.T, Worker: -1, Victim: -1,
				Power: smp.Watts, Energy: smp.Joules})
		}
		s.emittedSamples = len(samples)
	}
}

// cancelled reports whether the run's cancellation hook has fired.
func (s *sched) cancelled() bool {
	return s.cfg.Cancelled != nil && s.cfg.Cancelled()
}

// taskCancelled reports whether work for job j must be skipped: the
// run-wide hook for the single-shot path (j == nil), the job's own
// failure or cancellation state in pool mode. A positive per-job poll
// records that cancellation genuinely interrupted the job, so late
// cancellations of already-finished work still report success.
func (s *sched) taskCancelled(j *jobRun) bool {
	if j == nil {
		return s.cancelled()
	}
	if j.failErr != nil {
		return true
	}
	if j.evicted {
		// The machine crashed under this job: skip remaining bodies so
		// the fork-join structure drains at zero work cost, without
		// marking the job interrupted — it re-places and runs elsewhere.
		return true
	}
	if j.cancelled != nil && j.cancelled() {
		j.interrupted = true
		return true
	}
	return false
}

// emit streams one event to the configured observer. Callers stamp
// Time themselves: virtual time 0 is a legitimate timestamp (the
// first 100 Hz sample), so no default is inferred here.
func (s *sched) emit(ev obs.Event) {
	if s.cfg.Observer == nil {
		return
	}
	ev.Machine = s.mid
	s.cfg.Observer.Observe(ev)
}

// finish snapshots the report at root completion and releases every
// parked process so the engine can drain. Called from worker 0.
func (s *sched) finish() {
	s.touch()
	now := s.eng.Now()
	s.done = true
	s.finishAt = now
	samples := make([]meter.Sample, len(s.met.Samples()))
	copy(samples, s.met.Samples())
	e := s.met.Energy()
	span := now
	s.report = Report{
		System:  s.cfg.Spec.Name,
		Workers: s.cfg.Workers,
		Mode:    s.cfg.Mode,
		Sched:   s.cfg.Scheduling,
		Span:    span,
		Sojourn: span, // single-shot: execution starts at arrival

		EnergyJ:       e,
		MeterJ:        s.met.MeterEnergy(),
		EDP:           meter.EDP(e, span),
		AvgPowerW:     e / span.Seconds(),
		Samples:       samples,
		Tasks:         s.tasks,
		Spawns:        s.spawns,
		Steals:        s.steals,
		FailedSteals:  s.failedSteals,
		TempoSwitches: s.tempoSwitches,
		DVFSCommits:   s.dvfsCommitCount,
		Parks:         s.parks,
		BusyTime:      s.busy,
		SpinTime:      s.spin,
		IdleTime:      s.idle,
		SlowBusyTime:  s.slowBusy,
		FreqBusy:      s.freqBusy,
		PerWorker:     s.perWorker,
	}
	s.frozen = true
	// Wake every parked process so loops observe done and exit.
	// Worker 0 is the caller (running) and needs no wake.
	for _, w := range s.workers[1:] {
		w.proc.Wake()
	}
	s.dvfsProc.Wake()
	s.profProc.Wake()
}

// --- tempo plumbing -------------------------------------------------

// level returns w's composed tempo level: workpath chain depth plus
// workload tier deficit (K - S). Level 0 is the fastest tempo.
func (s *sched) level(w *worker) int {
	l := w.wpLevel
	if s.cfg.Mode.Workload() {
		l += w.th.K() - w.th.Tier()
	}
	return l
}

// retune files the DVFS request matching w's current composed level.
// Levels map onto the N-frequency set by saturation (level i runs at
// Freqs[min(i, N-1)]), so deep thief chains and workload tiers stack
// below the slowest frequency without losing their relative order —
// Figure 3's "a thief's thief" keeps a slower tempo than its victim
// even when both saturate the frequency range.
func (s *sched) retune(w *worker) {
	fi := s.level(w)
	if max := len(s.cfg.Freqs) - 1; fi > max {
		fi = max
	}
	if s.slowPinned {
		// Tier-pinned straggler: whatever the tempo strategies ask for,
		// the machine answers with its lowest frequency.
		fi = len(s.cfg.Freqs) - 1
	}
	f := s.cfg.Freqs[fi]
	if w.core.Req == f && !s.pendingDiffers(w, f) {
		return
	}
	s.tempoSwitches++
	s.emit(obs.Event{Kind: obs.TempoSwitch, Time: s.eng.Now(), Worker: w.id, Victim: -1, Freq: f})
	changed, at := s.mach.Request(w.core, f, s.eng.Now())
	dom := w.core.Dom
	if changed {
		s.dvfsCommits[dom.ID] = at
		s.dvfsProc.Wake()
		return
	}
	if _, _, pending := dom.Pending(); !pending {
		s.dvfsCommits[dom.ID] = 0
	}
}

// pendingDiffers reports whether the domain is mid-transition to a
// frequency other than f (so a re-request is still needed).
func (s *sched) pendingDiffers(w *worker, f units.Freq) bool {
	target, _, pending := w.core.Dom.Pending()
	return pending && target != f
}

// up raises w one workpath level (immediacy relay).
func (s *sched) up(w *worker) {
	if w.wpLevel > 0 {
		w.wpLevel--
	}
	s.retune(w)
}

// downFrom applies thief procrastination: the thief's workpath level
// sits one below its victim's, capped so pathological chains cannot
// stack beyond MaxTempoLevels.
func (s *sched) downFrom(w, victim *worker) {
	l := victim.wpLevel + 1
	if max := s.cfg.MaxTempoLevels - 1; l > max {
		l = max
	}
	w.wpLevel = l
	s.retune(w)
}

// dvfsLoop is the commit daemon: it sleeps until the earliest pending
// domain transition, applies it, and re-rates any in-flight work on
// that domain. New requests wake it early.
func (s *sched) dvfsLoop(p *sim.Proc) {
	for {
		if s.done {
			return
		}
		t := s.earliestCommit()
		var now units.Time
		if t == 0 {
			now = p.ParkUntilWake()
		} else {
			now = p.WaitUntil(t)
		}
		if s.done {
			return
		}
		for id, at := range s.dvfsCommits {
			if at == 0 || at > now {
				continue
			}
			d := s.mach.Domains[id]
			s.touch()
			if d.Commit(now) {
				s.dvfsCommitCount++
				s.emit(obs.Event{Kind: obs.DVFSCommit, Time: s.eng.Now(), Worker: -1, Victim: -1, Freq: d.Freq()})
				s.onFreqChange(d)
			}
			if _, cAt, pending := d.Pending(); pending {
				s.dvfsCommits[id] = cAt
			} else {
				s.dvfsCommits[id] = 0
			}
		}
	}
}

func (s *sched) earliestCommit() units.Time {
	var min units.Time
	for _, at := range s.dvfsCommits {
		if at != 0 && (min == 0 || at < min) {
			min = at
		}
	}
	return min
}

// onFreqChange wakes workers with in-flight CPU work on domain d so
// they re-rate the remaining cycles at the new frequency.
func (s *sched) onFreqChange(d *cpu.Domain) {
	for _, c := range d.Cores {
		if w := s.byCore[c]; w != nil && w.inWork {
			w.proc.Wake()
		}
	}
}

// profLoop is the online profiler of Section 3.2: every ProfilePeriod
// it samples all deque sizes and retunes every worker's thresholds
// from the rolling average. In pool mode it parks while no jobs are
// active (the intake wakes it on arrival) so an idle pool generates no
// events and the engine can quiesce.
func (s *sched) profLoop(p *sim.Proc) {
	if !s.cfg.Mode.Workload() {
		return
	}
	for {
		if s.pool != nil && len(s.pool.active) == 0 {
			p.ParkUntilWake()
			if s.done {
				return
			}
			continue
		}
		p.Sleep(s.cfg.ProfilePeriod)
		if s.done {
			return
		}
		sizes := make([]int, len(s.workers))
		for i, w := range s.workers {
			sizes[i] = w.dq.Size()
		}
		s.prof.Observe(sizes)
		avg := s.prof.Average()
		for _, w := range s.workers {
			w.th.Retune(avg)
		}
	}
}

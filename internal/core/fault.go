package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"hermes/internal/sim"
	"hermes/internal/units"
)

// faultSeedSalt decorrelates the retry-backoff jitter stream from the
// placement RNG (clusterSeedSalt) and the per-worker victim streams,
// so enabling fault injection leaves every fault-free random sequence
// byte-identical.
const faultSeedSalt = 0x9e3779b9

// ErrJobLost is the completion error of a job the cluster could not
// finish: every machine it was placed on crashed and the retry budget
// (or the fleet) ran out.
var ErrJobLost = errors.New("core: job lost to machine failure")

// Retry defaults applied by ClusterConfig.Validate.
const (
	defaultRetryBudget  = 3
	defaultRetryBackoff = 100 * units.Microsecond
)

// FaultKind names one kind of injected machine fault.
type FaultKind int

const (
	// FaultCrash fail-stops a machine: its meter gates to zero draw,
	// unstarted jobs re-place immediately, and running jobs drain
	// cheaply (bodies skipped) before re-placement with backoff.
	FaultCrash FaultKind = iota
	// FaultRejoin brings a crashed machine back, cold: workers parked
	// in the lowest DVFS tier, ready to accept placements again.
	FaultRejoin
	// FaultSlow makes a machine a straggler: work inflated by Factor
	// (>= 1), or — Factor zero — every worker pinned to the lowest
	// DVFS tier.
	FaultSlow
	// FaultRecover ends a FaultSlow episode.
	FaultRecover
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRejoin:
		return "rejoin"
	case FaultSlow:
		return "slow"
	case FaultRecover:
		return "recover"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault: at virtual time At, machine
// Machine suffers (or recovers from) Kind. Like arrivals, events whose
// time has already passed when the cluster reaches them apply at the
// current virtual instant — the fault daemon parks with the rest of
// the cluster while it is empty, so an idle cluster still generates no
// events.
type FaultEvent struct {
	// At is the virtual time the fault fires.
	At units.Time
	// Machine is the victim's index.
	Machine int
	// Kind is what happens.
	Kind FaultKind
	// Factor is FaultSlow's work inflation (>= 1); zero means "pin to
	// the lowest DVFS tier" instead. Ignored by the other kinds.
	Factor float64
}

// validateFaults checks every event against the fleet size and returns
// a copy sorted by (At, Machine, Kind) — the order the fault daemon
// replays them in.
func validateFaults(events []FaultEvent, machines int) ([]FaultEvent, error) {
	evs := append([]FaultEvent(nil), events...)
	for _, ev := range evs {
		if ev.Machine < 0 || ev.Machine >= machines {
			return nil, fmt.Errorf("core: fault targets machine %d of %d", ev.Machine, machines)
		}
		if ev.At < 0 {
			return nil, fmt.Errorf("core: fault time must not be negative, got %v", ev.At)
		}
		if ev.Kind < FaultCrash || ev.Kind > FaultRecover {
			return nil, fmt.Errorf("core: unknown fault kind %d", int(ev.Kind))
		}
		if ev.Kind == FaultSlow && ev.Factor != 0 && ev.Factor < 1 {
			return nil, fmt.Errorf("core: slow-fault factor must be 0 (tier pin) or >= 1, got %g", ev.Factor)
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		if evs[i].Machine != evs[j].Machine {
			return evs[i].Machine < evs[j].Machine
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs, nil
}

// faultLoop is the cluster's fault daemon: it replays the validated,
// sorted fault plan on the shared virtual timeline. Like the gossip
// daemon it parks while the cluster is empty — an idle cluster must
// generate no events so wall-clock arrivals keep their virtual-time
// injection semantics — which clamps faults scheduled across an empty
// stretch to the next arrival's instant, deterministically.
func (c *Cluster) faultLoop(p *sim.Proc) {
	for {
		if c.faultIdx >= len(c.cfg.Faults) {
			return
		}
		if c.stop && c.arrivals.Len() == 0 && c.totalActive() == 0 {
			return
		}
		if c.totalActive() == 0 && c.arrivals.Len() == 0 {
			c.faultParked = true
			p.ParkUntilWake()
			c.faultParked = false
			continue
		}
		ev := c.cfg.Faults[c.faultIdx]
		if ev.At > c.eng.Now() {
			if p.WaitUntil(ev.At) < ev.At {
				continue // woken early: re-check park/stop conditions
			}
		}
		c.faultIdx++
		c.applyFault(ev)
	}
}

// applyFault mutates one machine's failure state at the current
// virtual time. Idempotent events (crashing a dead machine, rejoining
// a live one) are ignored so overlapping plan windows stay legal.
func (c *Cluster) applyFault(ev FaultEvent) {
	s := c.ms[ev.Machine]
	now := c.eng.Now()
	switch ev.Kind {
	case FaultCrash:
		if s.dead {
			return
		}
		s.touch()
		s.dead = true
		s.downAt = now
		s.met.Gate(true)
		c.crashes++
		// A dead machine publishes an empty queue: gossip stops seeing
		// it as a victim, and it cannot thieve while dead either.
		c.views[ev.Machine] = queueView{load: 0, at: now}
		// Unstarted roots re-place immediately — they lost nothing.
		for len(s.pool.injectq) > 0 {
			t := s.pool.injectq[0]
			s.pool.injectq = s.pool.injectq[1:]
			j := t.job
			for i, a := range s.pool.active {
				if a == j {
					s.pool.active = append(s.pool.active[:i], s.pool.active[i+1:]...)
					break
				}
			}
			c.requeue(j)
		}
		// Running jobs drain: bodies are skipped from here on, the
		// fork-join structure unwinds at zero work cost, and root
		// completion routes into requeue instead of a report.
		for _, j := range s.pool.active {
			j.evicted = true
		}
		for _, w := range s.workers {
			w.proc.Wake()
		}
	case FaultRejoin:
		if !s.dead {
			return
		}
		s.touch() // integrates the downtime at the gated zero draw
		s.met.Gate(false)
		s.dead = false
		s.downTotal += now - s.downAt
		c.rejoins++
		// The machine re-enters cold: its workers parked in the lowest
		// DVFS tier, and — if it drained empty — back in the idle index.
		if len(s.pool.active) == 0 {
			c.idle.push(ev.Machine)
		}
	case FaultSlow:
		s.touch()
		if ev.Factor > 1 {
			s.slowFactor = ev.Factor
		} else {
			s.slowPin(true)
		}
		s.wakeInWork()
	case FaultRecover:
		s.touch()
		s.slowFactor = 0
		s.slowPin(false)
		s.wakeInWork()
	}
}

// requeue routes an evicted job back through placement: bounded
// retries with seeded exponential backoff and jitter, losing the job
// once the budget is spent. Runs engine-side, on whichever process
// observed the eviction (a draining worker or the fault daemon).
func (c *Cluster) requeue(j *jobRun) {
	j.evicted = false
	if int(j.retries) >= c.cfg.RetryBudget {
		c.lose(j)
		return
	}
	j.retries++
	c.retries++
	d := c.cfg.RetryBackoff << (j.retries - 1)
	jitter := 0.5 + c.frng.Float64()
	j.at = c.eng.Now() + units.Time(float64(d)*jitter)
	heap.Push(&c.arrivals, j)
	c.wakeIntake()
}

// deferOrLose handles placement with zero machines alive: if the plan
// still holds a rejoin, the job waits for it in the arrival heap;
// otherwise it is lost.
func (c *Cluster) deferOrLose(j *jobRun) {
	at, ok := c.nextRejoin()
	if !ok {
		c.lose(j)
		return
	}
	if at <= c.eng.Now() {
		// The rejoin fires at this very instant but the fault daemon
		// has not run yet; nudge past it so the retry sees the machine
		// alive instead of looping at the same timestamp.
		at = c.eng.Now() + 1
	}
	j.at = at
	heap.Push(&c.arrivals, j)
}

// nextRejoin scans the unapplied suffix of the fault plan for the
// earliest rejoin.
func (c *Cluster) nextRejoin() (units.Time, bool) {
	for _, ev := range c.cfg.Faults[c.faultIdx:] {
		if ev.Kind == FaultRejoin {
			return ev.At, true
		}
	}
	return 0, false
}

// lose completes a job with ErrJobLost: a minimal report carrying the
// retry history. Lost jobs emit no JobDone observer event — they never
// completed anywhere.
func (c *Cluster) lose(j *jobRun) {
	c.lost++
	rep := Report{
		Retries:    j.retries,
		Placements: append([]int(nil), j.placements...),
	}
	if j.delivered {
		rep.Sojourn = c.eng.Now() - j.arriveAt
	}
	done := j.done
	j.done = nil
	done(rep, ErrJobLost)
	if c.stop && c.arrivals.Len() == 0 && c.totalActive() == 0 {
		c.wakeIntake()
	}
}

// wakeIntake wakes the cluster intake unless the intake itself is the
// running process (a process cannot wake itself; the intake loop
// re-checks its conditions every iteration anyway).
func (c *Cluster) wakeIntake() {
	if c.eng.Current() == c.intake {
		return
	}
	c.intake.Wake()
}

// slowPin pins (or unpins) every worker to the lowest DVFS tier — the
// tier-pinned straggler model. A no-op under Baseline, which models no
// tempo control to pin.
func (s *sched) slowPin(on bool) {
	if s.slowPinned == on {
		return
	}
	s.slowPinned = on
	if s.cfg.Mode == Baseline || len(s.cfg.Freqs) == 0 {
		return
	}
	for _, w := range s.workers {
		s.retune(w)
	}
}

// wakeInWork wakes workers with in-flight CPU segments so they re-rate
// against the new slow factor, mirroring onFreqChange.
func (s *sched) wakeInWork() {
	for _, w := range s.workers {
		if w.inWork {
			w.proc.Wake()
		}
	}
}

package core

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"

	"hermes/internal/sim"
	"hermes/internal/units"
)

// clusterSeedSalt decorrelates the placement RNG from the per-worker
// victim-selection streams (Seed*1_000_003 + worker id).
const clusterSeedSalt = 0x5bd1e995

// PlacementView is the read-only load picture a placement policy sees
// when a job arrives: exact instantaneous queue depths (placement
// decisions happen inside the engine, at the arrival's virtual time)
// plus the cluster's idle-machine index. Gossip's deliberately stale
// views are a property of the migration tier, not of placement.
type PlacementView interface {
	// Machines is the fleet size.
	Machines() int
	// Load is the number of jobs in machine m's system (queued or
	// executing).
	Load(m int) int
	// IdleMachine returns the lowest-indexed machine with no jobs in
	// its system, via the cluster's idle min-heap, or ok=false when
	// every machine is loaded. Always preferring the lowest idle index
	// is what consolidates load: higher-indexed machines stay parked in
	// the lowest DVFS tier instead of each being woken once.
	IdleMachine() (m int, ok bool)
	// Alive reports whether machine m is accepting work — false while
	// fault injection holds it crashed. Policies must not route to
	// dead machines; the cluster re-routes (or defers) if one does.
	Alive(m int) bool
}

// Placement chooses the machine for one arriving job. Implementations
// must be deterministic given (view, rng) — rng is the cluster's own
// seeded stream, advanced only by placement decisions.
type Placement interface {
	Place(v PlacementView, rng *rand.Rand) int
}

// ClusterConfig describes a multi-machine cluster simulation.
type ClusterConfig struct {
	// Machines is the number of simulated machines (>= 1).
	Machines int
	// Machine is the per-machine configuration; machine m runs with
	// Seed+m so victim-selection streams differ across the fleet while
	// staying deterministic.
	Machine Config
	// Placement chooses a machine for each arriving job.
	Placement Placement

	// GossipInterval enables the gossip tier when positive: every
	// interval, idle machines pull a batch of unstarted jobs from the
	// most-loaded peer according to their last refreshed (stale) view
	// of queue sizes. Zero disables gossip entirely.
	GossipInterval units.Time
	// GossipStaleness is the minimum age a machine's published queue
	// view reaches before the next refresh; defaults to GossipInterval.
	// Views refresh after the steal pass, so thieves always act on
	// information at least one interval old — realistically stale.
	GossipStaleness units.Time
	// GossipBatch is how many jobs an idle thief pulls per tick; 0
	// takes half of the victim's visible unstarted backlog.
	GossipBatch int

	// Seed drives the placement RNG; 0 adopts Machine.Seed.
	Seed int64

	// Faults is the injected failure schedule, replayed by an
	// engine-side daemon on the shared virtual timeline; empty runs a
	// fault-free fleet with zero overhead and byte-identical outcomes
	// to a build without fault support at all.
	Faults []FaultEvent
	// RetryBudget bounds how many times a job evicted by a crash is
	// re-placed before it is lost; 0 means the default (3).
	RetryBudget int
	// RetryBackoff is the base delay before an evicted job re-enters
	// placement; attempt k waits backoff·2^(k-1) scaled by a seeded
	// jitter in [0.5, 1.5). 0 means the default (100µs).
	RetryBackoff units.Time
}

// Validate fills defaults and checks the cluster configuration,
// including the embedded machine config.
func (c ClusterConfig) Validate() (ClusterConfig, error) {
	if c.Machines < 1 {
		return c, fmt.Errorf("core: cluster needs at least one machine, got %d", c.Machines)
	}
	mcfg, err := c.Machine.Validate()
	if err != nil {
		return c, err
	}
	c.Machine = mcfg
	if c.Placement == nil {
		return c, fmt.Errorf("core: cluster needs a placement policy")
	}
	if c.GossipInterval < 0 {
		return c, fmt.Errorf("core: gossip interval must not be negative, got %v", c.GossipInterval)
	}
	if c.GossipStaleness < 0 {
		return c, fmt.Errorf("core: gossip staleness must not be negative, got %v", c.GossipStaleness)
	}
	if c.GossipBatch < 0 {
		return c, fmt.Errorf("core: gossip batch must not be negative, got %d", c.GossipBatch)
	}
	if c.GossipStaleness == 0 {
		c.GossipStaleness = c.GossipInterval
	}
	if c.Seed == 0 {
		c.Seed = c.Machine.Seed
	}
	if c.RetryBudget < 0 {
		return c, fmt.Errorf("core: retry budget must not be negative, got %d", c.RetryBudget)
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = defaultRetryBudget
	}
	if c.RetryBackoff < 0 {
		return c, fmt.Errorf("core: retry backoff must not be negative, got %v", c.RetryBackoff)
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = defaultRetryBackoff
	}
	if len(c.Faults) > 0 {
		evs, err := validateFaults(c.Faults, c.Machines)
		if err != nil {
			return c, err
		}
		c.Faults = evs
	}
	return c, nil
}

// ClusterStats is the fleet-wide aggregate through the cluster's most
// recent job completion — the same deterministic virtual instant for
// every machine, idle ones included, so fleet energy comparisons
// (consolidating vs spreading policies) charge each machine's idle
// draw over exactly the same window.
type ClusterStats struct {
	// Machines holds one MachineStats per machine, all snapshotted at
	// Elapsed (the fleet's last completion), so EnergyJ includes the
	// base draw of machines that never ran a job.
	Machines []MachineStats
	// Placed counts jobs the placement tier routed to each machine;
	// Migrated counts jobs each machine pulled in via gossip.
	Placed   []int64
	Migrated []int64
	// Completed is the number of jobs completed fleet-wide; Elapsed is
	// the virtual time of the last completion.
	Completed int64
	Elapsed   units.Time
	// EnergyJ is the fleet total through Elapsed.
	EnergyJ float64

	// Availability ledger (all zero on a fault-free run): Crashes and
	// Rejoins count fault events applied; Retries counts job
	// re-placements after crash evictions; Lost counts jobs the fleet
	// could not finish (completed with ErrJobLost).
	Crashes int64
	Rejoins int64
	Retries int64
	Lost    int64
	// Goodput is Completed / (Completed + Lost), or zero when the
	// cluster finished nothing.
	Goodput float64
	// Downtime is each machine's accumulated dead time through Elapsed,
	// snapshotted — like the rest of the ledger — at the fleet's last
	// completion. Nil on a fault-free run.
	Downtime []units.Time
}

// Cluster multiplexes N independent simulated machines — each its own
// cores, deques, tempo controller, DVFS state and power meter — inside
// one discrete-event engine, fed by a placement tier. Jobs arrive as
// virtual-time events at the cluster intake, which asks the placement
// policy for a machine and delivers the job there; an optional gossip
// daemon then lets idle machines pull queued (unstarted) jobs from
// loaded peers on a realistically stale view of queue sizes.
//
// Determinism matches Pool's contract: for a fixed ClusterConfig
// (seeds included) and arrival trace, per-job reports, per-machine
// MachineStats, observer event streams and the fleet aggregates are
// byte-identical run after run — the single shared engine orders all
// machines' events on one virtual timeline.
type Cluster struct {
	cfg ClusterConfig
	eng *sim.Engine
	ms  []*sched

	// Engine-side state (touched only by engine processes and hooks).
	intake       *sim.Proc
	gossipd      *sim.Proc
	gossipParked bool
	arrivals     arrivalHeap
	stop         bool
	rng          *rand.Rand
	idle         idleIndex
	views        []queueView

	// Fault-injection state: the fault daemon (nil without a plan),
	// its cursor into cfg.Faults, the dedicated retry-jitter RNG, and
	// the availability ledger. fleetDown mirrors fleetSnap: per-machine
	// downtime frozen at each completion.
	faultd      *sim.Proc
	faultParked bool
	faultIdx    int
	frng        *rand.Rand
	crashes     int64
	rejoins     int64
	retries     int64
	lost        int64
	fleetDown   []units.Time

	placed   []int64
	migrated []int64

	// placing holds the job the intake has popped but not yet
	// delivered, so a placement-policy panic mid-place cannot strand
	// it outside every queue failRemaining sweeps.
	placing *jobRun
	// pendingClose mirrors Pool.pendingClose: a close received
	// mid-timeline waits for engine quiescence so the post-drain
	// event tail stays deterministic.
	pendingClose bool

	// Fleet snapshot frozen at every job completion (see onJobDone in
	// pool.go): the last one is the deterministic end-of-trace ledger
	// ClusterStats reports.
	completed   int64
	fleetAt     units.Time
	fleetSnap   []poolSnap
	fleetTasks  []int64
	fleetSpawns []int64
	fleetSteals []int64

	// Submission-side machinery, mirroring Pool's.
	msgs chan poolMsg
	dead chan struct{}

	mu     sync.Mutex
	closed bool
	broken bool
	runErr error

	wg sync.WaitGroup
}

// queueView is one machine's published queue size as the gossip tier
// last refreshed it.
type queueView struct {
	load int
	at   units.Time
}

// NewCluster validates cfg and starts the engine goroutine. Like a
// Pool, an idle cluster parks every process and costs nothing until
// the next arrival.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:         cfg,
		eng:         sim.NewEngine(),
		rng:         rand.New(rand.NewSource(cfg.Seed*1_000_003 + clusterSeedSalt)),
		views:       make([]queueView, cfg.Machines),
		placed:      make([]int64, cfg.Machines),
		migrated:    make([]int64, cfg.Machines),
		fleetSnap:   make([]poolSnap, cfg.Machines),
		fleetTasks:  make([]int64, cfg.Machines),
		fleetSpawns: make([]int64, cfg.Machines),
		fleetSteals: make([]int64, cfg.Machines),
		msgs:        make(chan poolMsg, 64),
		dead:        make(chan struct{}),
	}
	c.idle.init(c, cfg.Machines)
	for m := 0; m < cfg.Machines; m++ {
		mcfg := cfg.Machine
		mcfg.Seed = cfg.Machine.Seed + int64(m)
		s := newSchedOn(c.eng, mcfg)
		s.mid = m
		s.tag = fmt.Sprintf("m%d/", m)
		s.pool = &poolRun{}
		m := m
		s.onJobDone = func() { c.machineJobDone(m) }
		if len(cfg.Faults) > 0 {
			s.onEvicted = c.requeue
		}
		c.ms = append(c.ms, s)
	}
	c.eng.SetTick(c.pump)
	c.eng.SetIdle(c.pumpBlocking)
	for _, s := range c.ms {
		s.start()
	}
	c.intake = c.eng.Go("cluster-intake", c.intakeLoop)
	if cfg.GossipInterval > 0 {
		c.gossipd = c.eng.Go("cluster-gossipd", c.gossipLoop)
	}
	if len(cfg.Faults) > 0 {
		c.frng = rand.New(rand.NewSource(cfg.Seed*1_000_003 + faultSeedSalt))
		c.fleetDown = make([]units.Time, cfg.Machines)
		c.faultd = c.eng.Go("cluster-faultd", c.faultLoop)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer c.failRemaining() // closes c.dead
		c.eng.Run()
	}()
	return c, nil
}

// Config returns the validated cluster configuration.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// --- PlacementView ----------------------------------------------------

func (c *Cluster) Machines() int            { return len(c.ms) }
func (c *Cluster) Load(m int) int           { return len(c.ms[m].pool.active) }
func (c *Cluster) IdleMachine() (int, bool) { return c.idle.min() }
func (c *Cluster) Alive(m int) bool         { return !c.ms[m].dead }

// idleIndex is a lazy min-heap over machine indices believed idle:
// pushes are deduplicated, stale entries (machines observed loaded)
// are dropped at the top on the next query. Everything is engine-side
// and deterministic.
type idleIndex struct {
	c   *Cluster
	ids []int
	in  []bool
}

func (h *idleIndex) init(c *Cluster, n int) {
	h.c = c
	h.in = make([]bool, n)
	// Every machine starts idle.
	for m := 0; m < n; m++ {
		h.push(m)
	}
}

func (h *idleIndex) push(m int) {
	if h.in[m] {
		return
	}
	h.in[m] = true
	h.ids = append(h.ids, m)
	// Sift up.
	i := len(h.ids) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ids[p] <= h.ids[i] {
			break
		}
		h.ids[p], h.ids[i] = h.ids[i], h.ids[p]
		i = p
	}
}

func (h *idleIndex) pop() int {
	m := h.ids[0]
	n := len(h.ids) - 1
	h.ids[0] = h.ids[n]
	h.ids = h.ids[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.ids[l] < h.ids[least] {
			least = l
		}
		if r < n && h.ids[r] < h.ids[least] {
			least = r
		}
		if least == i {
			break
		}
		h.ids[i], h.ids[least] = h.ids[least], h.ids[i]
		i = least
	}
	h.in[m] = false
	return m
}

// min returns the lowest idle machine index, discarding entries that
// have become loaded — or crashed — since they were pushed. The
// returned entry stays in the heap — it is evicted lazily once
// observed busy; a crashed machine is evicted here and re-pushed when
// it rejoins empty.
func (h *idleIndex) min() (int, bool) {
	for len(h.ids) > 0 {
		m := h.ids[0]
		if h.c.Load(m) == 0 && h.c.Alive(m) {
			return m, true
		}
		h.pop()
	}
	return 0, false
}

// --- submission side --------------------------------------------------

// Submit enqueues a batch of jobs atomically, exactly like
// Pool.Submit: a batch handed to a quiescent cluster is delivered at
// its virtual arrival times, placement decided at each arrival's
// virtual instant.
func (c *Cluster) Submit(reqs ...JobRequest) error {
	if len(reqs) == 0 {
		return nil
	}
	jobs := make([]*jobRun, len(reqs))
	for i, rq := range reqs {
		if rq.Root == nil {
			return ErrNilRoot
		}
		if rq.ID <= 0 {
			return fmt.Errorf("core: job id must be positive, got %d", rq.ID)
		}
		if rq.Done == nil {
			return fmt.Errorf("core: job %d has no completion callback", rq.ID)
		}
		jobs[i] = &jobRun{
			id:        rq.ID,
			at:        rq.At,
			root:      rq.Root,
			cancelled: rq.Cancelled,
			done:      rq.Done,
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrPoolClosed
	}
	if c.broken {
		return fmt.Errorf("core: cluster engine stopped: %v", c.runErr)
	}
	// Same ordering argument as Pool.Submit: the send happens under
	// c.mu so batches and close reach the engine in a well-defined
	// order, and a send racing teardown completes before
	// failRemaining's drain.
	select {
	case c.msgs <- poolMsg{arrivals: jobs}:
		return nil
	case <-c.dead:
		return fmt.Errorf("core: cluster engine stopped: %v", c.runErr)
	}
}

// Close rejects further submissions, delivers and completes every
// already-submitted job, then stops the engine. Safe to call more
// than once.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		select {
		case c.msgs <- poolMsg{close: true}:
		case <-c.dead:
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runErr
}

// Stats returns the fleet aggregate through the cluster's last job
// completion. It blocks until the engine goroutine has exited, so call
// it after Close; a cluster that never completed a job reports the
// zero aggregate. Every machine's snapshot shares the same Elapsed —
// the fleet's last completion — so summed energies compare policies at
// equal virtual windows.
func (c *Cluster) Stats() ClusterStats {
	<-c.dead
	st := ClusterStats{
		Machines:  make([]MachineStats, len(c.ms)),
		Placed:    append([]int64(nil), c.placed...),
		Migrated:  append([]int64(nil), c.migrated...),
		Completed: c.completed,
		Elapsed:   c.fleetAt,
		Crashes:   c.crashes,
		Rejoins:   c.rejoins,
		Retries:   c.retries,
		Lost:      c.lost,
	}
	if total := c.completed + c.lost; total > 0 {
		st.Goodput = float64(c.completed) / float64(total)
	}
	if c.fleetDown != nil {
		st.Downtime = append([]units.Time(nil), c.fleetDown...)
	}
	for m := range c.ms {
		snap := c.fleetSnap[m]
		ms := MachineStats{
			Elapsed:       c.fleetAt,
			EnergyJ:       snap.joules,
			Busy:          snap.busy,
			Spin:          snap.spin,
			Idle:          snap.idle,
			SlowBusy:      snap.slow,
			FreqBusy:      make(map[units.Freq]units.Time, len(snap.freqBusy)),
			Tasks:         c.fleetTasks[m],
			Spawns:        c.fleetSpawns[m],
			Steals:        c.fleetSteals[m],
			FailedSteals:  snap.failedSteals,
			TempoSwitches: snap.tempoSwitches,
			DVFSCommits:   snap.dvfsCommits,
			Parks:         snap.parks,
		}
		for f, t := range snap.freqBusy {
			ms.FreqBusy[f] = t
		}
		st.Machines[m] = ms
		st.EnergyJ += snap.joules
	}
	return st
}

// pump drains pending submissions without blocking (engine tick hook).
func (c *Cluster) pump() {
	for {
		select {
		case msg := <-c.msgs:
			if msg.close {
				// Hold the close until the engine is quiescent (see
				// Pool.pendingClose): applying it between scheduled
				// events would race the wall clock against the virtual
				// one and make the post-drain event tail
				// nondeterministic.
				c.pendingClose = true
				continue
			}
			c.apply(msg)
		default:
			return
		}
	}
}

// pumpBlocking waits for the next submission while the whole cluster
// is quiescent (engine idle hook). An idle engine with jobs still in
// flight anywhere is a genuine scheduling deadlock — refuse, so the
// engine's diagnostics fire.
func (c *Cluster) pumpBlocking() bool {
	if c.arrivals.Len() > 0 {
		return false
	}
	for _, s := range c.ms {
		if len(s.pool.active) > 0 {
			return false
		}
	}
	if c.pendingClose {
		c.pendingClose = false
		c.apply(poolMsg{close: true})
		return true
	}
	c.apply(<-c.msgs)
	return true
}

// apply folds one external message into engine-side state; runs with
// no process current, so Inject is legal.
func (c *Cluster) apply(msg poolMsg) {
	if msg.close {
		c.stop = true
		c.eng.Inject(c.intake, c.eng.Now())
		return
	}
	for _, j := range msg.arrivals {
		if j.at < c.eng.Now() {
			j.at = c.eng.Now()
		}
		heap.Push(&c.arrivals, j)
	}
	if c.arrivals.Len() > 0 {
		c.eng.Inject(c.intake, c.arrivals[0].at)
	}
}

// failRemaining mirrors Pool.failRemaining: on engine exit (clean or
// panicked), complete every job still queued anywhere with the cause.
func (c *Cluster) failRemaining() {
	var cause error
	if r := recover(); r != nil {
		cause = fmt.Errorf("core: cluster engine panicked: %v", r)
	} else {
		cause = ErrPoolClosed
	}
	close(c.dead)
	fail := func(j *jobRun) {
		if j.done != nil {
			done := j.done
			j.done = nil
			done(Report{}, cause)
		}
	}
	c.mu.Lock()
	c.broken = true
	if c.runErr == nil && cause != ErrPoolClosed {
		c.runErr = cause
	}
	for {
		select {
		case msg := <-c.msgs:
			for _, j := range msg.arrivals {
				fail(j)
			}
			continue
		default:
		}
		break
	}
	c.mu.Unlock()
	if c.placing != nil {
		fail(c.placing)
	}
	for _, j := range c.arrivals {
		fail(j)
	}
	for _, s := range c.ms {
		for _, j := range s.pool.active {
			fail(j)
		}
		for _, j := range s.pool.arrivals {
			fail(j)
		}
	}
}

// --- engine-side processes --------------------------------------------

// intakeLoop is the cluster's arrival process: it pops due arrivals in
// (time, id) order, asks the placement policy for a machine at each
// arrival's virtual instant, and delivers the job there. On shutdown
// it drains its own heap AND waits for every in-flight job before
// propagating stop to the machines (whose intakes run only the drain
// handshake in cluster mode) and the daemons: a crash can push an
// in-flight job back into the arrival heap, so the intake must outlive
// the last active job, not just the last pristine arrival.
func (c *Cluster) intakeLoop(p *sim.Proc) {
	for {
		if c.stop && c.arrivals.Len() == 0 && c.totalActive() == 0 {
			for _, s := range c.ms {
				s.pool.stop = true
				s.pool.intake.Wake()
			}
			if c.gossipd != nil {
				c.gossipd.Wake()
			}
			if c.faultd != nil {
				c.faultd.Wake()
			}
			return
		}
		if c.arrivals.Len() > 0 && c.arrivals[0].at <= c.eng.Now() {
			j := heap.Pop(&c.arrivals).(*jobRun)
			c.placing = j
			c.place(j)
			c.placing = nil
			continue
		}
		if c.arrivals.Len() > 0 {
			p.WaitUntil(c.arrivals[0].at)
			continue
		}
		p.ParkUntilWake()
	}
}

// place routes one job through the placement policy and delivers it.
// A policy that returns a dead machine (test policies need not be
// failure-aware) is corrected to the lowest-indexed live one; with the
// whole fleet down the job waits for the plan's next rejoin, or is
// lost.
func (c *Cluster) place(j *jobRun) {
	m := c.cfg.Placement.Place(c, c.rng)
	if m < 0 || m >= len(c.ms) {
		panic(fmt.Sprintf("core: placement chose machine %d of %d", m, len(c.ms)))
	}
	if c.ms[m].dead {
		m = -1
		for i, s := range c.ms {
			if !s.dead {
				m = i
				break
			}
		}
		if m < 0 {
			c.deferOrLose(j)
			return
		}
	}
	c.placed[m]++
	if c.gossipParked {
		c.gossipd.Wake()
	}
	if c.faultParked {
		c.faultd.Wake()
	}
	c.ms[m].deliver(j)
}

// machineJobDone is every machine's completion hook: maintain the
// idle index, and freeze the fleet-wide snapshot at this completion's
// virtual instant — across ALL machines, idle ones included, so the
// final snapshot (the one ClusterStats reports) charges every
// machine's draw through the same deterministic window.
func (c *Cluster) machineJobDone(m int) {
	c.completed++
	if len(c.ms[m].pool.active) == 0 && !c.ms[m].dead {
		c.idle.push(m)
	}
	c.fleetAt = c.eng.Now()
	for i, s := range c.ms {
		s.touch()
		c.fleetSnap[i] = s.poolSnapNow()
		c.fleetTasks[i], c.fleetSpawns[i], c.fleetSteals[i] = s.tasks, s.spawns, s.steals
		if c.fleetDown != nil {
			d := s.downTotal
			if s.dead {
				d += c.fleetAt - s.downAt
			}
			c.fleetDown[i] = d
		}
	}
	if c.stop && c.arrivals.Len() == 0 && c.totalActive() == 0 {
		c.wakeIntake()
	}
}

// totalActive is the number of jobs in the cluster's machines (not
// counting undelivered arrivals).
func (c *Cluster) totalActive() int {
	n := 0
	for _, s := range c.ms {
		n += len(s.pool.active)
	}
	return n
}

// gossipLoop is the cluster's migration daemon: every GossipInterval
// it lets idle machines pull unstarted jobs from the most-loaded peer
// as seen through the last refreshed queue views, THEN refreshes views
// that have aged past GossipStaleness — so thieves always act on
// information at least one interval old. It parks while the cluster
// is empty (an idle cluster generates no events) and exits once the
// cluster is stopping and drained.
func (c *Cluster) gossipLoop(p *sim.Proc) {
	for {
		if c.stop && c.arrivals.Len() == 0 && c.totalActive() == 0 {
			return
		}
		if c.totalActive() == 0 && c.arrivals.Len() == 0 {
			c.gossipParked = true
			p.ParkUntilWake()
			c.gossipParked = false
			continue
		}
		p.Sleep(c.cfg.GossipInterval)
		if c.stop && c.arrivals.Len() == 0 && c.totalActive() == 0 {
			return
		}
		c.gossipTick()
	}
}

// gossipTick runs one round: steals first (against stale views), view
// refresh second.
func (c *Cluster) gossipTick() {
	now := c.eng.Now()
	for t := range c.ms {
		thief := c.ms[t]
		if thief.done || thief.dead || len(thief.pool.active) != 0 {
			continue
		}
		// Most-loaded peer by the stale published views; ties go to the
		// lowest index. A view of zero means "believed idle" — nothing
		// worth pulling.
		best, bestLoad := -1, 0
		for v := range c.ms {
			if v != t && c.views[v].load > bestLoad {
				best, bestLoad = v, c.views[v].load
			}
		}
		if best < 0 || c.ms[best].done || c.ms[best].dead {
			continue
		}
		// The pull itself negotiates with the victim, so the batch is
		// bounded by the victim's actual unstarted backlog right now —
		// the staleness cost is choosing the wrong victim, not
		// migrating phantom jobs.
		avail := len(c.ms[best].pool.injectq)
		if avail == 0 {
			continue
		}
		n := c.cfg.GossipBatch
		if n <= 0 {
			n = (avail + 1) / 2
		}
		if n > avail {
			n = avail
		}
		c.migrate(best, t, n)
	}
	for m := range c.ms {
		if now-c.views[m].at >= c.cfg.GossipStaleness {
			load := len(c.ms[m].pool.active)
			if c.ms[m].dead {
				load = 0 // a dead machine has nothing worth pulling
			}
			c.views[m] = queueView{load: load, at: now}
		}
	}
}

// migrate moves up to n unstarted jobs (roots still awaiting pickup)
// from victim to thief. Re-delivery keeps each job's original arrival
// time — its sojourn spans the move — while re-baselining its machine
// snapshot on the thief.
func (c *Cluster) migrate(victim, thief, n int) {
	v := c.ms[victim]
	for i := 0; i < n && len(v.pool.injectq) > 0; i++ {
		t := v.pool.injectq[0]
		v.pool.injectq = v.pool.injectq[1:]
		j := t.job
		for k, a := range v.pool.active {
			if a == j {
				v.pool.active = append(v.pool.active[:k], v.pool.active[k+1:]...)
				break
			}
		}
		c.migrated[thief]++
		c.ms[thief].deliver(j)
	}
	if len(v.pool.active) == 0 {
		c.idle.push(victim)
	}
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// crashConfig is the standard two-machine crash scenario: everything
// pinned to machine 0, which fail-stops mid-trace and rejoins later,
// so every in-flight job must recover onto machine 1.
func crashConfig() ClusterConfig {
	return ClusterConfig{
		Machines:  2,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 11},
		Placement: pinPlace{0},
		Faults: []FaultEvent{
			{At: 60 * units.Microsecond, Machine: 0, Kind: FaultCrash},
			{At: 2 * units.Millisecond, Machine: 0, Kind: FaultRejoin},
		},
	}
}

// TestClusterCrashReplacesJobs is the recovery contract: a machine
// crashing mid-job evicts its work, the cluster re-places it on the
// survivor, and every job completes with its retry history recorded —
// nothing is lost under the default budget.
func TestClusterCrashReplacesJobs(t *testing.T) {
	ats := make([]units.Time, 5)
	for i := range ats {
		ats[i] = units.Time(i) * 20 * units.Microsecond
	}
	reports, errs, _, st := traceCluster(t, crashConfig(), ats, func(int) wl.Task { return poolWork(24) })
	var retried int64
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d not recovered: %v", i+1, err)
		}
		retried += reports[i].Retries
		if reports[i].Retries > 0 {
			// A retried job's placement history must span both machines:
			// first the crashed 0, finally the surviving 1.
			pl := reports[i].Placements
			if len(pl) < 2 || pl[0] != 0 || pl[len(pl)-1] != 1 {
				t.Fatalf("job %d retried with placements %v, want 0 ... 1", i+1, pl)
			}
			if reports[i].Sojourn < reports[i].Span {
				t.Fatalf("job %d sojourn %v < span %v after retry", i+1, reports[i].Sojourn, reports[i].Span)
			}
		}
	}
	if retried == 0 {
		t.Fatal("crash at 60µs mid-trace evicted no running job")
	}
	if st.Crashes != 1 || st.Rejoins != 1 {
		t.Fatalf("ledger crashes=%d rejoins=%d, want 1/1", st.Crashes, st.Rejoins)
	}
	if st.Retries != retried {
		t.Fatalf("ledger retries=%d, reports sum %d", st.Retries, retried)
	}
	if st.Lost != 0 {
		t.Fatalf("lost %d jobs under default retry budget", st.Lost)
	}
	if st.Completed != int64(len(ats)) {
		t.Fatalf("completed %d of %d", st.Completed, len(ats))
	}
	if st.Goodput != 1 {
		t.Fatalf("goodput %g with nothing lost", st.Goodput)
	}
	if len(st.Downtime) != 2 || st.Downtime[0] <= 0 || st.Downtime[1] != 0 {
		t.Fatalf("downtime ledger %v, want machine 0 down and machine 1 clean", st.Downtime)
	}
}

// TestClusterCrashDeterminism extends the reproducibility contract to
// chaos: identical (config, seed, trace, fault plan) produce
// byte-identical per-job reports and fleet stats, crashes included.
func TestClusterCrashDeterminism(t *testing.T) {
	ats := make([]units.Time, 5)
	for i := range ats {
		ats[i] = units.Time(i) * 20 * units.Microsecond
	}
	mk := func(int) wl.Task { return poolWork(24) }
	repA, errA, evA, stA := traceCluster(t, crashConfig(), ats, mk)
	repB, errB, evB, stB := traceCluster(t, crashConfig(), ats, mk)
	for i := range repA {
		if !errors.Is(errA[i], errB[i]) && !errors.Is(errB[i], errA[i]) {
			t.Fatalf("job %d errors diverged: %v vs %v", i+1, errA[i], errB[i])
		}
		a, b := fmt.Sprintf("%+v", repA[i]), fmt.Sprintf("%+v", repB[i])
		if a != b {
			t.Fatalf("job %d report diverged under faults:\n%s\nvs\n%s", i+1, a, b)
		}
	}
	if len(evA) != len(evB) {
		t.Fatalf("event streams differ in length: %d vs %d", len(evA), len(evB))
	}
	if a, b := fmt.Sprintf("%+v", stA), fmt.Sprintf("%+v", stB); a != b {
		t.Fatalf("fleet stats diverged under faults:\n%s\nvs\n%s", a, b)
	}
}

// TestClusterCrashGatesEnergy pins the fail-stop power model: the same
// trace costs measurably less fleet energy when a machine spends a long
// window dead (zero draw) than when the fleet stays up throughout.
func TestClusterCrashGatesEnergy(t *testing.T) {
	ats := []units.Time{0, 20 * units.Microsecond}
	mk := func(int) wl.Task { return poolWork(16) }
	base := crashConfig()
	base.Faults = nil
	_, errs, _, live := traceCluster(t, base, ats, mk)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fault-free job %d: %v", i+1, err)
		}
	}
	crashed := crashConfig()
	// Machine 0 dies almost immediately and stays down past the last
	// completion; machine 1 does all the work while 0 draws nothing.
	crashed.Faults = []FaultEvent{{At: 10 * units.Microsecond, Machine: 0, Kind: FaultCrash}}
	_, errs, _, dead := traceCluster(t, crashed, ats, mk)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("crash-run job %d: %v", i+1, err)
		}
	}
	if dead.Machines[0].EnergyJ >= live.Machines[0].EnergyJ {
		t.Fatalf("dead machine drew %.4f J, live one %.4f J — meter not gated",
			dead.Machines[0].EnergyJ, live.Machines[0].EnergyJ)
	}
}

// TestClusterRetryBudgetLoses: with the whole fleet down for good and
// no rejoin in the plan, jobs fail with ErrJobLost, the loss ledger
// counts them, and goodput reflects the damage.
func TestClusterRetryBudgetLoses(t *testing.T) {
	cfg := ClusterConfig{
		Machines:  1,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 19},
		Placement: pinPlace{0},
		Faults:    []FaultEvent{{At: 30 * units.Microsecond, Machine: 0, Kind: FaultCrash}},
	}
	ats := []units.Time{0, 10 * units.Microsecond, 5 * units.Millisecond}
	reports, errs, _, st := traceCluster(t, cfg, ats, func(int) wl.Task { return poolWork(24) })
	var lost int64
	for i, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrJobLost) {
			t.Fatalf("job %d failed with %v, want ErrJobLost", i+1, err)
		}
		lost++
		if reports[i].Retries == 0 && reports[i].Tasks != 0 {
			t.Fatalf("job %d lost with inconsistent report %+v", i+1, reports[i])
		}
	}
	if lost == 0 {
		t.Fatal("single-machine crash with no rejoin lost nothing")
	}
	if st.Lost != lost {
		t.Fatalf("ledger lost=%d, %d jobs saw ErrJobLost", st.Lost, lost)
	}
	if st.Completed+st.Lost != int64(len(ats)) {
		t.Fatalf("completed %d + lost %d != submitted %d", st.Completed, st.Lost, len(ats))
	}
	if st.Goodput >= 1 {
		t.Fatalf("goodput %g after losing %d jobs", st.Goodput, lost)
	}
}

// TestClusterFailslowStretchesSpan: a work-inflation straggler fault
// makes the same job measurably slower than its fault-free twin, and a
// recover event ends the episode.
func TestClusterFailslowStretchesSpan(t *testing.T) {
	run := func(faults []FaultEvent) Report {
		cfg := ClusterConfig{
			Machines:  1,
			Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 23},
			Placement: pinPlace{0},
			Faults:    faults,
		}
		reports, errs, _, _ := traceCluster(t, cfg, []units.Time{0}, func(int) wl.Task { return poolWork(24) })
		if errs[0] != nil {
			t.Fatal(errs[0])
		}
		return reports[0]
	}
	clean := run(nil)
	slowed := run([]FaultEvent{{At: 10 * units.Microsecond, Machine: 0, Kind: FaultSlow, Factor: 4}})
	if slowed.Span <= clean.Span {
		t.Fatalf("4× straggler span %v not above fault-free span %v", slowed.Span, clean.Span)
	}
	recovered := run([]FaultEvent{
		{At: 10 * units.Microsecond, Machine: 0, Kind: FaultSlow, Factor: 4},
		{At: 30 * units.Microsecond, Machine: 0, Kind: FaultRecover},
	})
	if recovered.Span >= slowed.Span {
		t.Fatalf("recovered span %v not below permanently-slowed span %v", recovered.Span, slowed.Span)
	}
}

// TestClusterFaultValidate covers the fault-config surface: bad
// machine indices, times, kinds, factors and retry knobs all fail
// Validate; defaults land.
func TestClusterFaultValidate(t *testing.T) {
	good := ClusterConfig{
		Machines:  2,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Seed: 1},
		Placement: pinPlace{0},
		Faults:    []FaultEvent{{At: 1, Machine: 1, Kind: FaultCrash}},
	}
	v, err := good.Validate()
	if err != nil {
		t.Fatalf("valid fault config rejected: %v", err)
	}
	if v.RetryBudget != defaultRetryBudget || v.RetryBackoff != defaultRetryBackoff {
		t.Fatalf("retry defaults %d/%v", v.RetryBudget, v.RetryBackoff)
	}
	for _, bad := range []func(*ClusterConfig){
		func(c *ClusterConfig) { c.Faults = []FaultEvent{{Machine: 2, Kind: FaultCrash}} },
		func(c *ClusterConfig) { c.Faults = []FaultEvent{{Machine: -1, Kind: FaultCrash}} },
		func(c *ClusterConfig) { c.Faults = []FaultEvent{{At: -1, Machine: 0, Kind: FaultCrash}} },
		func(c *ClusterConfig) { c.Faults = []FaultEvent{{Machine: 0, Kind: FaultKind(9)}} },
		func(c *ClusterConfig) { c.Faults = []FaultEvent{{Machine: 0, Kind: FaultSlow, Factor: 0.5}} },
		func(c *ClusterConfig) { c.RetryBudget = -1 },
		func(c *ClusterConfig) { c.RetryBackoff = -1 },
	} {
		cfg := good
		bad(&cfg)
		if _, err := cfg.Validate(); err == nil {
			t.Fatalf("invalid fault config accepted: %+v", cfg)
		}
	}
	// Events are replayed sorted regardless of input order.
	shuffled := good
	shuffled.Faults = []FaultEvent{
		{At: 9, Machine: 1, Kind: FaultRejoin},
		{At: 3, Machine: 0, Kind: FaultCrash},
	}
	v, err = shuffled.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.Faults[0].At != 3 || v.Faults[1].At != 9 {
		t.Fatalf("fault plan not sorted: %+v", v.Faults)
	}
}

// panicPlace drives the engine into failRemaining mid-trace.
type panicPlace struct{ after int }

func (p *panicPlace) Place(PlacementView, *rand.Rand) int {
	if p.after--; p.after < 0 {
		panic("placement exploded")
	}
	return 0
}

// TestClusterCloseWithInflight pins failRemaining: when the engine
// dies with jobs still in flight, every outstanding job completes with
// the crash cause instead of hanging, and Close reports it.
func TestClusterCloseWithInflight(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Machines:  2,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Seed: 29},
		Placement: &panicPlace{after: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 5
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	wg.Add(jobs)
	reqs := make([]JobRequest, jobs)
	for i := range reqs {
		i := i
		reqs[i] = JobRequest{
			ID:   int64(i + 1),
			At:   units.Time(i) * 50 * units.Microsecond,
			Root: poolWork(16),
			Done: func(_ Report, err error) {
				errs[i] = err
				wg.Done()
			},
		}
	}
	if err := c.Submit(reqs...); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	var failed int
	for _, err := range errs {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("engine panic failed no jobs")
	}
	if err := c.Close(); err == nil {
		t.Fatal("Close reported success after an engine panic")
	}
}

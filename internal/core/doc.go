// Package core implements the HERMES scheduler of Ribic & Liu
// (ASPLOS 2014): a Cilk-style work-stealing runtime whose workers
// execute at different tempos (DVFS frequencies) chosen by the
// workpath-sensitive and workload-sensitive algorithms of the paper's
// Figure 5, executed over the deterministic discrete-event machine
// model in internal/cpu, internal/power and internal/meter.
package core

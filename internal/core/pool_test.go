package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/obs"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// poolWork is a fork-join tree with enough spawns to provoke steals.
func poolWork(n int) wl.Task {
	return func(c wl.Ctx) {
		wl.For(c, 0, n, 2, func(c wl.Ctx, lo, hi int) {
			c.WorkMix(units.Cycles(200_000*(hi-lo)), 0.3)
		})
	}
}

// recorder collects the full observer stream; the engine is
// single-threaded so no locking is needed for sim observers, but the
// mutex keeps the harness reusable.
type recorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *recorder) Observe(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// tracePool runs one fixed arrival trace through a fresh Pool and
// returns the per-job reports (trace order), errors and event stream.
func tracePool(t *testing.T, cfg Config, ats []units.Time, mk func(i int) wl.Task) ([]Report, []error, []obs.Event) {
	t.Helper()
	rec := &recorder{}
	cfg.Observer = rec
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]Report, len(ats))
	errs := make([]error, len(ats))
	var wg sync.WaitGroup
	wg.Add(len(ats))
	reqs := make([]JobRequest, len(ats))
	for i, at := range ats {
		i := i
		reqs[i] = JobRequest{
			ID:   int64(i + 1),
			At:   at,
			Root: mk(i),
			Done: func(r Report, err error) {
				reports[i], errs[i] = r, err
				wg.Done()
			},
		}
	}
	if err := p.Submit(reqs...); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return reports, errs, rec.events
}

// TestPoolTraceDeterminism is the reproducibility contract of the
// multiplexed simulator: two pools given identical config, seed and
// arrival trace produce byte-identical per-job reports and identical
// observer event sequences.
func TestPoolTraceDeterminism(t *testing.T) {
	cfg := Config{Spec: cpu.SystemB(), Workers: 4, Mode: Unified, Seed: 11}
	ats := []units.Time{0, 200 * units.Microsecond, 450 * units.Microsecond,
		700 * units.Microsecond, 2 * units.Millisecond, 2100 * units.Microsecond}
	mk := func(i int) wl.Task { return poolWork(24 + 8*(i%3)) }

	repA, errA, evA := tracePool(t, cfg, ats, mk)
	repB, errB, evB := tracePool(t, cfg, ats, mk)

	for i := range repA {
		if errA[i] != nil || errB[i] != nil {
			t.Fatalf("job %d errored: %v / %v", i+1, errA[i], errB[i])
		}
		a, b := fmt.Sprintf("%+v", repA[i]), fmt.Sprintf("%+v", repB[i])
		if a != b {
			t.Fatalf("job %d report diverged between identical runs:\n%s\nvs\n%s", i+1, a, b)
		}
	}
	if len(evA) != len(evB) {
		t.Fatalf("event streams differ in length: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, evA[i], evB[i])
		}
	}
}

// TestPoolJobsOverlapInVirtualTime pins the point of the tentpole:
// two jobs arriving close together genuinely share the simulated
// machine — the observer stream shows the second starting before the
// first completes, and both executed work.
func TestPoolJobsOverlapInVirtualTime(t *testing.T) {
	cfg := Config{Spec: cpu.SystemB(), Workers: 4, Mode: Unified, Seed: 3}
	ats := []units.Time{0, 50 * units.Microsecond}
	reports, errs, events := tracePool(t, cfg, ats, func(int) wl.Task { return poolWork(64) })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
		if reports[i].Span <= 0 || reports[i].Tasks == 0 {
			t.Fatalf("job %d did not execute: %+v", i+1, reports[i])
		}
	}
	idx := func(kind obs.Kind, job int64) int {
		for i, e := range events {
			if e.Kind == kind && e.Job == job {
				return i
			}
		}
		t.Fatalf("no %v event for job %d", kind, job)
		return -1
	}
	start2, done1 := idx(obs.JobStart, 2), idx(obs.JobDone, 1)
	if start2 > done1 {
		t.Fatalf("jobs serialized: job 2 started (event %d) only after job 1 finished (event %d)",
			start2, done1)
	}
	// Execution itself overlaps too: job 2 began running before job 1
	// completed in virtual time.
	done1At := events[done1].Time
	if start2At := reports[1].Sojourn - reports[1].Span; ats[1]+start2At >= done1At {
		t.Fatalf("no execution overlap: job 2 first ran at %v, job 1 done at %v",
			ats[1]+start2At, done1At)
	}
}

// TestPoolEnergyPartition mirrors the Native attribution test: two
// identical concurrent jobs partition the machine's joules — their sum
// does not double-count, and neither claims nearly the whole machine.
func TestPoolEnergyPartition(t *testing.T) {
	cfg := Config{Spec: cpu.SystemB(), Workers: 4, Seed: 1}
	ats := []units.Time{0, 10 * units.Microsecond}
	reports, errs, _ := tracePool(t, cfg, ats, func(int) wl.Task { return poolWork(96) })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
	}
	r1, r2 := reports[0], reports[1]
	if r1.EnergyJ <= 0 || r2.EnergyJ <= 0 {
		t.Fatalf("jobs lost their energy: %g, %g", r1.EnergyJ, r2.EnergyJ)
	}
	// Total machine draw over the pool's life bounds the partition
	// (the pool is opened, runs the two jobs, and closes immediately).
	rec := &recorder{}
	cfg2 := cfg
	cfg2.Observer = rec
	p, err := NewPool(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	sum := 0.0
	var mu sync.Mutex
	for i := range ats {
		if err := p.Submit(JobRequest{ID: int64(i + 1), At: ats[i], Root: poolWork(96),
			Done: func(r Report, err error) {
				mu.Lock()
				sum += r.EnergyJ
				mu.Unlock()
				wg.Done()
			}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	total := p.MachineEnergyJ()
	if sum > total*1.05 {
		t.Fatalf("per-job energies double-count: sum=%.3fJ > machine total %.3fJ", sum, total)
	}
	if r1.EnergyJ > total*0.9 || r2.EnergyJ > total*0.9 {
		t.Fatalf("one job claimed nearly the whole machine: %.3fJ and %.3fJ of %.3fJ",
			r1.EnergyJ, r2.EnergyJ, total)
	}
}

// TestPoolSoloJobKeepsFullMachineEnergy: a job running alone owns the
// whole machine's draw over its window, idle cores included.
func TestPoolSoloJobKeepsFullMachineEnergy(t *testing.T) {
	p, err := NewPool(Config{Spec: cpu.SystemB(), Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	done := make(chan struct{})
	if err := p.Submit(JobRequest{ID: 1, At: 0, Root: poolWork(64),
		Done: func(r Report, err error) {
			if err != nil {
				t.Errorf("job failed: %v", err)
			}
			rep = r
			close(done)
		}}); err != nil {
		t.Fatal(err)
	}
	<-done
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	total := p.MachineEnergyJ()
	if rep.EnergyJ < total*0.95 || rep.EnergyJ > total*1.001 {
		t.Fatalf("solo job energy %.4fJ out of band vs machine %.4fJ", rep.EnergyJ, total)
	}
	if rep.Sojourn != rep.Span {
		t.Fatalf("solo job queued? sojourn=%v span=%v", rep.Sojourn, rep.Span)
	}
}

// TestPoolSumOfEnergiesUnderLoad drives many overlapping jobs and pins
// the partition property at scale: the sum of attributed energies
// stays at or below the machine total (within rounding), and well
// above zero.
func TestPoolSumOfEnergiesUnderLoad(t *testing.T) {
	p, err := NewPool(Config{Spec: cpu.SystemB(), Workers: 4, Mode: Unified, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 12
	var wg sync.WaitGroup
	wg.Add(jobs)
	var mu sync.Mutex
	sum := 0.0
	reqs := make([]JobRequest, jobs)
	for i := 0; i < jobs; i++ {
		reqs[i] = JobRequest{
			ID: int64(i + 1), At: units.Time(i) * 100 * units.Microsecond, Root: poolWork(48),
			Done: func(r Report, err error) {
				if err != nil {
					t.Errorf("job failed: %v", err)
				}
				mu.Lock()
				sum += r.EnergyJ
				mu.Unlock()
				wg.Done()
			},
		}
	}
	if err := p.Submit(reqs...); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	total := p.MachineEnergyJ()
	if sum > total*1.05 || sum < total*0.5 {
		t.Fatalf("attributed sum %.3fJ out of band vs machine %.3fJ", sum, total)
	}
}

// TestPoolCancellation: a job cancelled mid-flight completes with
// ErrInterrupted while a concurrent neighbour is untouched.
func TestPoolCancellation(t *testing.T) {
	p, err := NewPool(Config{Spec: cpu.SystemB(), Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var flip bool
	leaves := 0
	var cancelErr, okErr error
	var okRep Report
	var wg sync.WaitGroup
	wg.Add(2)
	err = p.Submit(
		JobRequest{
			ID: 1, At: 0,
			Root: func(c wl.Ctx) {
				wl.For(c, 0, 4096, 1, func(c wl.Ctx, lo, hi int) {
					// Engine-goroutine state: the hook below reads it on
					// the same goroutine.
					leaves++
					if leaves == 3 {
						flip = true
					}
					c.Work(100_000)
				})
			},
			Cancelled: func() bool { return flip },
			Done:      func(r Report, err error) { cancelErr = err; wg.Done() },
		},
		JobRequest{
			ID: 2, At: 0, Root: poolWork(32),
			Done: func(r Report, err error) { okRep, okErr = r, err; wg.Done() },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if cancelErr != ErrInterrupted {
		t.Fatalf("cancelled job err = %v, want ErrInterrupted", cancelErr)
	}
	if leaves >= 4096 {
		t.Fatalf("cancellation did not stop the job (%d leaves)", leaves)
	}
	if okErr != nil || okRep.Tasks == 0 {
		t.Fatalf("concurrent neighbour was hurt: err=%v tasks=%d", okErr, okRep.Tasks)
	}
}

// TestPoolPanicIsolation: a panicking task fails only its own job; a
// concurrent job and the pool itself survive.
func TestPoolPanicIsolation(t *testing.T) {
	p, err := NewPool(Config{Spec: cpu.SystemB(), Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var boomErr, okErr error
	var okRep Report
	var wg sync.WaitGroup
	wg.Add(2)
	err = p.Submit(
		JobRequest{
			ID: 1, At: 0,
			Root: func(c wl.Ctx) {
				c.Go(
					func(wl.Ctx) { panic("boom") },
					func(c wl.Ctx) { c.Work(1_000_000) },
				)
			},
			Done: func(r Report, err error) { boomErr = err; wg.Done() },
		},
		JobRequest{
			ID: 2, At: 0, Root: poolWork(32),
			Done: func(r Report, err error) { okRep, okErr = r, err; wg.Done() },
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if boomErr == nil || !strings.Contains(boomErr.Error(), "panicked") {
		t.Fatalf("panicking job err = %v", boomErr)
	}
	if okErr != nil || okRep.Tasks == 0 {
		t.Fatalf("neighbour died with the panicking job: err=%v tasks=%d", okErr, okRep.Tasks)
	}
	// The pool still serves jobs afterwards.
	done := make(chan error, 1)
	if err := p.Submit(JobRequest{ID: 3, At: -1, Root: poolWork(16),
		Done: func(r Report, err error) { done <- err }}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSubmitAfterClose pins the lifecycle errors.
func TestPoolSubmitAfterClose(t *testing.T) {
	p, err := NewPool(Config{Spec: cpu.SystemB(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	err = p.Submit(JobRequest{ID: 1, At: -1, Root: poolWork(8), Done: func(Report, error) {}})
	if err != ErrPoolClosed {
		t.Fatalf("submit after close err = %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestPoolCancelledFutureArrivalThenClose pins the shutdown path
// where the intake itself completes a job: an arrival scheduled in
// the future whose cancellation hook is already true is delivered and
// finished on the intake process during the Close drain — the pool
// must complete it with ErrInterrupted and shut down cleanly, not
// panic or hang.
func TestPoolCancelledFutureArrivalThenClose(t *testing.T) {
	p, err := NewPool(Config{Spec: cpu.SystemB(), Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	if err := p.Submit(JobRequest{
		ID: 1, At: 5 * units.Millisecond, Root: poolWork(8),
		Cancelled: func() bool { return true },
		Done:      func(r Report, err error) { done <- err },
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-done:
		if err != ErrInterrupted {
			t.Fatalf("cancelled-at-arrival job err = %v, want ErrInterrupted", err)
		}
	default:
		t.Fatal("job never completed")
	}
}

// TestPoolQueueingShowsInSojourn: on a single worker, two jobs
// arriving together cannot run together — the second job's sojourn
// must include the wait while the first holds the machine.
func TestPoolQueueingShowsInSojourn(t *testing.T) {
	cfg := Config{Spec: cpu.SystemB(), Workers: 1, Seed: 1}
	ats := []units.Time{0, 0}
	reports, errs, _ := tracePool(t, cfg, ats, func(int) wl.Task {
		return func(c wl.Ctx) { c.Work(10_000_000) } // ~2.8ms at 3.6GHz
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
	}
	r2 := reports[1]
	if wait := r2.Sojourn - r2.Span; wait < r2.Span/2 {
		t.Fatalf("second job shows no queueing delay: sojourn=%v span=%v", r2.Sojourn, r2.Span)
	}
}

// TestPoolMachineStats pins the machine-wide aggregate: energy matches
// MachineEnergyJ, residency and DVFS-tier busy time are populated, and
// the scheduler totals cover every job the pool executed — quantities
// the overlapping per-job window deltas cannot provide by summation.
func TestPoolMachineStats(t *testing.T) {
	cfg := Config{Spec: cpu.SystemB(), Workers: 3, Mode: Unified, Seed: 5}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 6
	var wg sync.WaitGroup
	wg.Add(jobs)
	reports := make([]Report, jobs)
	reqs := make([]JobRequest, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		reqs[i] = JobRequest{
			ID:   int64(i + 1),
			At:   units.Time(i) * 20 * units.Microsecond,
			Root: poolWork(12),
			Done: func(r Report, err error) {
				if err != nil {
					t.Errorf("job %d failed: %v", i+1, err)
				}
				reports[i] = r
				wg.Done()
			},
		}
	}
	if err := p.Submit(reqs...); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ms := p.MachineStats()
	// MachineStats freezes at the last job completion; the shutdown
	// meter keeps integrating idle draw until Close lands, so the
	// lifetime figure bounds it from above.
	if ms.EnergyJ <= 0 || ms.EnergyJ > p.MachineEnergyJ() {
		t.Errorf("MachineStats energy %g outside (0, MachineEnergyJ %g]", ms.EnergyJ, p.MachineEnergyJ())
	}
	if ms.Elapsed <= 0 || ms.Busy <= 0 {
		t.Fatalf("degenerate machine stats: %+v", ms)
	}
	var lastDone units.Time
	for i, r := range reports {
		if done := reqs[i].At + r.Sojourn; done > lastDone {
			lastDone = done
		}
	}
	if ms.Elapsed != lastDone {
		t.Errorf("MachineStats elapsed %v != last completion %v", ms.Elapsed, lastDone)
	}
	if len(ms.FreqBusy) == 0 {
		t.Error("no DVFS-tier residency recorded")
	}
	var tierBusy units.Time
	for _, d := range ms.FreqBusy {
		tierBusy += d
	}
	if tierBusy != ms.Busy {
		t.Errorf("tier residency sums to %v, busy time is %v", tierBusy, ms.Busy)
	}
	var tasks, spawns, steals int64
	for _, r := range reports {
		tasks += r.Tasks
		spawns += r.Spawns
		steals += r.Steals
	}
	if ms.Tasks != tasks || ms.Spawns != spawns {
		t.Errorf("machine tasks/spawns %d/%d != per-job sums %d/%d", ms.Tasks, ms.Spawns, tasks, spawns)
	}
	if ms.Steals < steals {
		t.Errorf("machine steals %d below per-job sum %d", ms.Steals, steals)
	}
}

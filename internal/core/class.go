package core

import (
	"fmt"

	"hermes/internal/units"
)

// Class is a job's service class: who submitted it (tenant), how it
// ranks against other traffic (priority), and what latency it was
// promised (deadline, SLO target). The zero Class — anonymous tenant,
// priority 0, no deadline, no SLO — is what every pre-class caller
// implicitly submitted, so unclassed traffic behaves exactly as before
// the class dimension existed.
type Class struct {
	// Tenant names the submitting principal ("" = anonymous). It is a
	// label: tenants are reported and filtered, never scheduled on.
	Tenant string
	// Priority ranks the job under DispatchPriority (higher runs
	// first) and under priority-aware load shedding (lower sheds
	// first). Default 0.
	Priority int
	// Deadline is the job's completion deadline relative to its
	// arrival; DispatchEDF orders ready jobs by arrival+Deadline.
	// Zero means no deadline: EDF runs deadline-less jobs after every
	// deadlined one, in arrival order.
	Deadline units.Time
	// SLOTarget is the sojourn the class promises (reporting only:
	// per-class SLO attainment is the fraction of jobs whose sojourn
	// met it). Zero means no target.
	SLOTarget units.Time
}

// IsZero reports whether c is the default (anonymous, priority 0,
// no deadline, no SLO) class.
func (c Class) IsZero() bool { return c == Class{} }

// Validate rejects classes no layer can honor.
func (c Class) Validate() error {
	if c.Deadline < 0 {
		return fmt.Errorf("core: class deadline must not be negative, got %v", c.Deadline)
	}
	if c.SLOTarget < 0 {
		return fmt.Errorf("core: class SLO target must not be negative, got %v", c.SLOTarget)
	}
	return nil
}

// Dispatch selects how a machine's intake orders delivered jobs that
// are waiting for a worker (the pool's inject queue). It is the
// scheduling seam service classes plug into: FIFO ignores classes
// entirely, Priority and EDF read them.
type Dispatch uint8

const (
	// DispatchFIFO hands out roots in delivery order — the original,
	// class-blind behaviour, byte-identical to the pre-class runtime
	// for any trace.
	DispatchFIFO Dispatch = iota
	// DispatchPriority hands out the highest-priority waiting root
	// first; ties keep delivery order.
	DispatchPriority
	// DispatchEDF hands out the waiting root with the earliest
	// absolute deadline (arrival + Class.Deadline) first; jobs without
	// a deadline run after every deadlined job, in delivery order.
	DispatchEDF
)

func (d Dispatch) String() string {
	switch d {
	case DispatchFIFO:
		return "fifo"
	case DispatchPriority:
		return "priority"
	case DispatchEDF:
		return "edf"
	}
	return "invalid"
}

// ParseDispatch maps a policy name to its Dispatch value.
func ParseDispatch(s string) (Dispatch, error) {
	switch s {
	case "", "fifo":
		return DispatchFIFO, nil
	case "priority", "prio":
		return DispatchPriority, nil
	case "edf":
		return DispatchEDF, nil
	}
	return DispatchFIFO, fmt.Errorf("core: unknown dispatch policy %q (want fifo, priority or edf)", s)
}

// deadlineAbs is j's absolute EDF key; ok is false for deadline-less
// jobs, which EDF orders after every deadlined one.
func (j *jobRun) deadlineAbs() (units.Time, bool) {
	if j.class.Deadline <= 0 {
		return 0, false
	}
	return j.arriveAt + j.class.Deadline, true
}

// outranks reports whether waiting job a strictly precedes running (or
// waiting) job b under the configured dispatch policy. Strict: equal
// rank keeps FIFO order (and never preempts).
func (s *sched) outranks(a, b *jobRun) bool {
	switch s.cfg.Dispatch {
	case DispatchPriority:
		return a.class.Priority > b.class.Priority
	case DispatchEDF:
		da, aOK := a.deadlineAbs()
		db, bOK := b.deadlineAbs()
		switch {
		case aOK && !bOK:
			return true
		case !aOK:
			return false
		default:
			return da < db
		}
	}
	return false
}

// poolPick returns the inject-queue index the dispatch policy selects
// next. FIFO always picks the head; Priority and EDF scan for the
// best-ranked root, first-delivered winning ties (outranks is strict).
func (s *sched) poolPick() int {
	q := s.pool.injectq
	if s.cfg.Dispatch == DispatchFIFO {
		return 0
	}
	best := 0
	for i := 1; i < len(q); i++ {
		if s.outranks(q[i].job, q[best].job) {
			best = i
		}
	}
	return best
}

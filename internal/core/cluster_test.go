package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/obs"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// Inline placement policies for tests; the real policy set lives in
// internal/cluster.

// pinPlace sends every job to one machine.
type pinPlace struct{ m int }

func (p pinPlace) Place(PlacementView, *rand.Rand) int { return p.m }

// idleFirstPlace is the consolidating policy skeleton: lowest idle
// machine when one exists, least-loaded otherwise.
type idleFirstPlace struct{}

func (idleFirstPlace) Place(v PlacementView, _ *rand.Rand) int {
	if m, ok := v.IdleMachine(); ok {
		return m
	}
	best, load := 0, v.Load(0)
	for m := 1; m < v.Machines(); m++ {
		if l := v.Load(m); l < load {
			best, load = m, l
		}
	}
	return best
}

// randomPlace is uniform random, load-blind.
type randomPlace struct{}

func (randomPlace) Place(v PlacementView, rng *rand.Rand) int {
	return rng.Intn(v.Machines())
}

// traceCluster runs one fixed arrival trace through a fresh Cluster
// and returns per-job reports (trace order), errors, the observer
// stream and the fleet stats.
func traceCluster(t *testing.T, ccfg ClusterConfig, ats []units.Time, mk func(i int) wl.Task) ([]Report, []error, []obs.Event, ClusterStats) {
	t.Helper()
	rec := &recorder{}
	ccfg.Machine.Observer = rec
	c, err := NewCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]Report, len(ats))
	errs := make([]error, len(ats))
	var wg sync.WaitGroup
	wg.Add(len(ats))
	reqs := make([]JobRequest, len(ats))
	for i, at := range ats {
		i := i
		reqs[i] = JobRequest{
			ID:   int64(i + 1),
			At:   at,
			Root: mk(i),
			Done: func(r Report, err error) {
				reports[i], errs[i] = r, err
				wg.Done()
			},
		}
	}
	if err := c.Submit(reqs...); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return reports, errs, rec.events, c.Stats()
}

// TestClusterTraceDeterminism is the cluster's reproducibility
// contract: identical (config, seed, trace) — gossip tier included —
// produce byte-identical per-job reports, observer streams and fleet
// stats across runs.
func TestClusterTraceDeterminism(t *testing.T) {
	ccfg := ClusterConfig{
		Machines:       3,
		Machine:        Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 7},
		Placement:      randomPlace{},
		GossipInterval: 300 * units.Microsecond,
	}
	ats := make([]units.Time, 8)
	for i := range ats {
		ats[i] = units.Time(i) * 150 * units.Microsecond
	}
	mk := func(i int) wl.Task { return poolWork(16 + 8*(i%3)) }

	repA, errA, evA, stA := traceCluster(t, ccfg, ats, mk)
	repB, errB, evB, stB := traceCluster(t, ccfg, ats, mk)

	for i := range repA {
		if errA[i] != nil || errB[i] != nil {
			t.Fatalf("job %d errored: %v / %v", i+1, errA[i], errB[i])
		}
		a, b := fmt.Sprintf("%+v", repA[i]), fmt.Sprintf("%+v", repB[i])
		if a != b {
			t.Fatalf("job %d report diverged between identical runs:\n%s\nvs\n%s", i+1, a, b)
		}
	}
	if len(evA) != len(evB) {
		t.Fatalf("event streams differ in length: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, evA[i], evB[i])
		}
	}
	if a, b := fmt.Sprintf("%+v", stA), fmt.Sprintf("%+v", stB); a != b {
		t.Fatalf("fleet stats diverged between identical runs:\n%s\nvs\n%s", a, b)
	}
}

// TestClusterEventsStampMachine checks the observer stream is
// demultiplexable: overlapping jobs land on distinct machines under
// the idle-first policy and every job's events carry the machine the
// placement tier chose for it.
func TestClusterEventsStampMachine(t *testing.T) {
	ccfg := ClusterConfig{
		Machines:  3,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 5},
		Placement: idleFirstPlace{},
	}
	ats := []units.Time{0, 40 * units.Microsecond, 80 * units.Microsecond}
	_, errs, events, st := traceCluster(t, ccfg, ats, func(int) wl.Task { return poolWork(32) })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
	}
	// Three near-simultaneous arrivals through idle-first must wake
	// three distinct machines, in index order.
	jobMachine := map[int64]int{}
	for _, e := range events {
		if e.Kind == obs.JobStart {
			jobMachine[e.Job] = e.Machine
		}
	}
	for id := int64(1); id <= 3; id++ {
		if m, ok := jobMachine[id]; !ok || m != int(id-1) {
			t.Fatalf("job %d started on machine %d (present %v), want %d", id, m, ok, id-1)
		}
	}
	// Every event for a job's lifecycle is stamped with its machine.
	for _, e := range events {
		if e.Kind == obs.JobDone && e.Machine != jobMachine[e.Job] {
			t.Fatalf("job %d done on machine %d but started on %d", e.Job, e.Machine, jobMachine[e.Job])
		}
	}
	var placed int64
	for _, p := range st.Placed {
		placed += p
	}
	if placed != int64(len(ats)) || st.Completed != int64(len(ats)) {
		t.Fatalf("placed %d / completed %d, want %d", placed, st.Completed, len(ats))
	}
}

// TestClusterConsolidation pins the fleet-level energy claim: for the
// same arrival trace at moderate load, the consolidating idle-first
// policy leaves strictly more machines fully idle than load-blind
// random placement, and spends strictly fewer fleet joules per
// completed job — random's placement collisions queue jobs behind busy
// machines while idle ones burn their floor draw, stretching the
// measurement window.
func TestClusterConsolidation(t *testing.T) {
	base := ClusterConfig{
		Machines: 6,
		Machine:  Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 9},
	}
	ats := make([]units.Time, 10)
	for i := range ats {
		ats[i] = units.Time(i) * 400 * units.Microsecond
	}
	mk := func(int) wl.Task { return poolWork(24) }

	run := func(p Placement) ClusterStats {
		cfg := base
		cfg.Placement = p
		_, errs, _, st := traceCluster(t, cfg, ats, mk)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("job %d: %v", i+1, err)
			}
		}
		return st
	}
	cons := run(idleFirstPlace{})
	rand := run(randomPlace{})

	idleCount := func(st ClusterStats) int {
		n := 0
		for _, m := range st.Machines {
			if m.Tasks == 0 {
				n++
			}
		}
		return n
	}
	if ic, ir := idleCount(cons), idleCount(rand); ic <= ir {
		t.Fatalf("consolidation did not concentrate load: idle-first left %d machines untouched, random %d", ic, ir)
	}
	jc := cons.EnergyJ / float64(cons.Completed)
	jr := rand.EnergyJ / float64(rand.Completed)
	if jc >= jr {
		t.Fatalf("consolidation did not save energy: idle-first %.3f J/req, random %.3f J/req", jc, jr)
	}
}

// TestClusterGossipRebalances forces every job onto machine 0 and lets
// the gossip tier do all the balancing: idle peers pull unstarted jobs,
// every job still completes exactly once, and migrated jobs keep their
// original arrival in the sojourn.
func TestClusterGossipRebalances(t *testing.T) {
	ccfg := ClusterConfig{
		Machines:       3,
		Machine:        Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 13},
		Placement:      pinPlace{0},
		GossipInterval: 50 * units.Microsecond,
	}
	ats := make([]units.Time, 6)
	for i := range ats {
		ats[i] = units.Time(i) * 10 * units.Microsecond
	}
	reports, errs, events, st := traceCluster(t, ccfg, ats, func(int) wl.Task { return poolWork(32) })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
		if reports[i].Tasks == 0 || reports[i].Sojourn < reports[i].Span {
			t.Fatalf("job %d report inconsistent after migration: %+v", i+1, reports[i])
		}
	}
	var migrated int64
	for m := 1; m < len(st.Migrated); m++ {
		migrated += st.Migrated[m]
	}
	if migrated == 0 {
		t.Fatalf("gossip never migrated a job off the pinned machine: %+v", st.Migrated)
	}
	if st.Migrated[0] != 0 {
		t.Fatalf("machine 0 was never idle yet pulled %d jobs", st.Migrated[0])
	}
	if st.Placed[1] != 0 || st.Placed[2] != 0 {
		t.Fatalf("placement leaked off the pinned machine: %+v", st.Placed)
	}
	// Migrated jobs' events move to the thief machine: some JobDone
	// carries Machine != 0.
	moved := false
	for _, e := range events {
		if e.Kind == obs.JobDone && e.Machine != 0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatalf("all completions still on machine 0 despite %d migrations", migrated)
	}
	if st.Completed != int64(len(ats)) {
		t.Fatalf("completed %d of %d jobs", st.Completed, len(ats))
	}
}

// TestClusterStatsSharedWindow checks the fleet ledger's accounting
// identity: every machine is snapshotted at the same virtual instant
// (the last completion) and the fleet total is exactly the sum of the
// per-machine energies — idle machines' floor draw included.
func TestClusterStatsSharedWindow(t *testing.T) {
	ccfg := ClusterConfig{
		Machines:  4,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Mode: Unified, Seed: 3},
		Placement: idleFirstPlace{},
	}
	ats := []units.Time{0, 100 * units.Microsecond}
	_, errs, _, st := traceCluster(t, ccfg, ats, func(int) wl.Task { return poolWork(24) })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
	}
	if st.Elapsed <= 0 {
		t.Fatalf("fleet window not frozen: %v", st.Elapsed)
	}
	var sum float64
	for m, ms := range st.Machines {
		if ms.Elapsed != st.Elapsed {
			t.Fatalf("machine %d snapshotted at %v, fleet at %v", m, ms.Elapsed, st.Elapsed)
		}
		if ms.EnergyJ <= 0 {
			t.Fatalf("machine %d reports no energy over a %v window", m, st.Elapsed)
		}
		sum += ms.EnergyJ
	}
	if sum != st.EnergyJ {
		t.Fatalf("fleet energy %g is not the sum of machine energies %g", st.EnergyJ, sum)
	}
	// Machines 2 and 3 never ran a job yet still drew their idle floor.
	if st.Machines[3].Tasks != 0 {
		t.Fatalf("low-load idle-first woke machine 3: %+v", st.Machines[3])
	}
}

// TestClusterConfigValidate covers the config surface: rejects and
// defaults.
func TestClusterConfigValidate(t *testing.T) {
	good := ClusterConfig{
		Machines:       2,
		Machine:        Config{Spec: cpu.SystemB(), Workers: 2, Seed: 1},
		Placement:      idleFirstPlace{},
		GossipInterval: 100 * units.Microsecond,
	}
	if _, err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Machines = 0
	if _, err := bad.Validate(); err == nil {
		t.Fatal("zero machines accepted")
	}
	bad = good
	bad.Placement = nil
	if _, err := bad.Validate(); err == nil {
		t.Fatal("nil placement accepted")
	}
	bad = good
	bad.GossipInterval = -1
	if _, err := bad.Validate(); err == nil {
		t.Fatal("negative gossip interval accepted")
	}
	bad = good
	bad.Machine.Workers = -3
	if _, err := bad.Validate(); err == nil {
		t.Fatal("invalid machine config accepted")
	}
	v, err := good.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.GossipStaleness != good.GossipInterval {
		t.Fatalf("staleness default %v, want gossip interval %v", v.GossipStaleness, good.GossipInterval)
	}
	if v.Seed != good.Machine.Seed {
		t.Fatalf("cluster seed default %d, want machine seed %d", v.Seed, good.Machine.Seed)
	}
}

// TestClusterClosedRejects pins the submission lifecycle: Close is
// idempotent and a closed cluster rejects new jobs with ErrPoolClosed.
func TestClusterClosedRejects(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Machines:  2,
		Machine:   Config{Spec: cpu.SystemB(), Workers: 2, Seed: 1},
		Placement: idleFirstPlace{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	err = c.Submit(JobRequest{ID: 1, Root: poolWork(4), Done: func(Report, error) {}})
	if err != ErrPoolClosed {
		t.Fatalf("submit after close: %v, want ErrPoolClosed", err)
	}
}

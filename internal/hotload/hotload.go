// Package hotload defines the fixed scheduler hot-path workloads the
// perf trajectory is measured on. Both the go-test benchmarks
// (native_bench_test.go) and the hermes-bench -trajectory snapshot
// drive exactly these bodies, so their numbers stay comparable across
// PRs — one source of truth for what "spawn/join" and "fib" mean in
// BENCH_native.json and bench output alike.
package hotload

import "hermes/internal/wl"

// Trajectory workload fixpoints: 8 workers is the scale the perf
// record tracks, fib 21/12 the fine-grained task tree it stresses.
const (
	Workers   = 8
	FibN      = 21
	FibCutoff = 12
)

// SpawnJoinLoop returns a root task performing ops two-way fork-join
// blocks with no-op bodies: the steady-state PUSH + POP/STEAL + join
// cycle with everything else stripped away. The pair slice is hoisted
// so the workload measures the runtime's allocations, not the
// caller's variadic.
func SpawnJoinLoop(ops int) wl.Task {
	noop := func(wl.Ctx) {}
	pair := []wl.Task{noop, noop}
	return func(c wl.Ctx) {
		for i := 0; i < ops; i++ {
			c.Go(pair...)
		}
	}
}

// Fib returns a root task computing fib(n) as a binary spawn tree
// with a serial cutoff — the paper's fine-grained stress whose
// task-boundary rate exposes any lock or allocation on the scheduler
// hot path. The result lands in *out for validation against
// SerialFib.
func Fib(n, cutoff int, out *int) wl.Task {
	var fib func(c wl.Ctx, n int, out *int)
	fib = func(c wl.Ctx, n int, out *int) {
		if n < cutoff {
			*out = SerialFib(n)
			return
		}
		var a, b int
		c.Go(
			func(c wl.Ctx) { fib(c, n-1, &a) },
			func(c wl.Ctx) { fib(c, n-2, &b) },
		)
		*out = a + b
	}
	return func(c wl.Ctx) { fib(c, n, out) }
}

// SerialFib is the sequential reference.
func SerialFib(n int) int {
	if n < 2 {
		return n
	}
	a, b := 0, 1
	for i := 2; i <= n; i++ {
		a, b = b, a+b
	}
	return b
}

// Package deque implements the work-stealing deque of Cilk-style
// runtimes, following Figure 2 of Ribic & Liu (ASPLOS 2014): an
// array-backed queue manipulated at the tail by its owning worker
// (PUSH, POP) and at the head by thieves (STEAL), with the THE-style
// optimistic locking protocol — the owner's POP takes the lock only
// when it may race a thief for the last item, while STEAL always
// locks.
//
// The paper's pseudocode indexes the last item with T; this
// implementation uses the equivalent past-the-end convention of the
// original Cilk-5 THE protocol (size = T-H, empty iff H >= T). The
// protocol and its conflict-resolution behaviour are identical.
package deque

// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA 2005, in
// the bounded-fence formulation of Lê, Pop, Cohen & Petrank, PPoPP
// 2013): the owner's PUSH and the common-case POP are wait-free —
// plain atomic loads and stores on the bottom index — while STEAL and
// the owner's race for the last item resolve with a single CAS on the
// top index. No mutex anywhere: where the THE protocol in deque.go
// locks on every steal (and on the owner's last-item conflict), this
// implementation never blocks, so a pool of thieves probing a busy
// owner cannot serialize it.
//
// Go's sync/atomic operations are sequentially consistent, which
// subsumes the explicit fences of the weak-memory formulation; the
// store/load protocol is otherwise exactly the published algorithm,
// including reading the item before the CAS that claims it.
//
// Items are stored through atomic pointers, so the element type is
// *E: the deque hands pointers between owner and thieves without a
// data race and without boxing. ChaseLev[E] implements Queue[*E].
package deque

import "sync/atomic"

// clArray is one power-of-two ring buffer generation. Grown copies
// keep items at the same absolute index, so a thief holding a stale
// generation still reads the right item for any top value its CAS can
// win.
type clArray[E any] struct {
	mask int64
	slot []atomic.Pointer[E]
}

func newCLArray[E any](n int) *clArray[E] {
	size := 8
	for size < n {
		size *= 2
	}
	return &clArray[E]{mask: int64(size - 1), slot: make([]atomic.Pointer[E], size)}
}

// ChaseLev is a lock-free work-stealing deque of *E.
//
// Concurrency contract (same as Deque): Push and Pop may be called
// only by the owning worker; Steal may be called by any other worker;
// Size may be called by anyone and is a snapshot. A Steal that loses
// the CAS race reports failure like an empty deque — callers treat it
// as a failed probe and move to the next victim, which matches how
// the scheduler consumes it.
type ChaseLev[E any] struct {
	top atomic.Int64
	_   [56]byte // top on its own cache line: thieves hammer it
	bot atomic.Int64
	_   [56]byte // bottom is owner-mostly; keep thieves off its line
	arr atomic.Pointer[clArray[E]]
	_   [56]byte

	// Operation counters for Stats. The owner-side pair lives on its
	// own line so counting pushes/pops never contends with thieves;
	// the steal-side pair is shared among thieves, which already
	// serialize on the top CAS.
	pushes, pops         atomic.Int64
	_                    [48]byte
	steals, failedSteals atomic.Int64
}

// NewChaseLev returns an empty lock-free deque with capacity for at
// least n items before the first internal growth (rounded up to a
// power of two, minimum 8).
func NewChaseLev[E any](n int) *ChaseLev[E] {
	d := &ChaseLev[E]{}
	d.arr.Store(newCLArray[E](n))
	return d
}

// Size reports the number of items currently in the deque (snapshot
// semantics, like Deque.Size).
func (d *ChaseLev[E]) Size() int {
	n := d.bot.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque currently holds no items.
func (d *ChaseLev[E]) Empty() bool { return d.Size() == 0 }

// Push appends item at the tail. Owner only; never blocks.
func (d *ChaseLev[E]) Push(item *E) {
	b := d.bot.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t > a.mask {
		a = d.grow(a, t, b)
	}
	a.slot[b&a.mask].Store(item)
	d.bot.Store(b + 1)
	d.pushes.Add(1)
}

// grow doubles the ring, copying the live range [t, b) by absolute
// index. Owner only. The old generation is left intact: a thief still
// holding it reads the same item for any index its top CAS can claim.
func (d *ChaseLev[E]) grow(a *clArray[E], t, b int64) *clArray[E] {
	na := newCLArray[E](int(2 * (a.mask + 1)))
	for i := t; i < b; i++ {
		na.slot[i&na.mask].Store(a.slot[i&a.mask].Load())
	}
	d.arr.Store(na)
	return na
}

// Pop removes and returns the tail item. Owner only. Only when a
// single item remains does it race thieves, with one CAS on top.
func (d *ChaseLev[E]) Pop() (*E, bool) {
	b := d.bot.Load() - 1
	a := d.arr.Load()
	d.bot.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bot.Store(b + 1)
		return nil, false
	}
	item := a.slot[b&a.mask].Load()
	if t == b {
		// Last item: claim it against concurrent thieves.
		if !d.top.CompareAndSwap(t, t+1) {
			d.bot.Store(b + 1)
			return nil, false
		}
		d.bot.Store(b + 1)
		d.pops.Add(1)
		return item, true
	}
	d.pops.Add(1)
	return item, true
}

// Steal removes and returns the head item. Any non-owner may call it;
// it never blocks. Losing the top CAS to another thief (or to the
// owner's last-item Pop) reports failure, counted as a failed steal.
func (d *ChaseLev[E]) Steal() (*E, bool) {
	t := d.top.Load()
	b := d.bot.Load()
	if t >= b {
		d.failedSteals.Add(1)
		return nil, false
	}
	a := d.arr.Load()
	item := a.slot[t&a.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		d.failedSteals.Add(1)
		return nil, false
	}
	d.steals.Add(1)
	return item, true
}

// Stats reports cumulative operation counts: pushes, successful pops,
// successful steals, and failed steal attempts (including lost CAS
// races).
func (d *ChaseLev[E]) Stats() (pushes, pops, steals, failedSteals int64) {
	return d.pushes.Load(), d.pops.Load(), d.steals.Load(), d.failedSteals.Load()
}

package deque

import (
	"sync/atomic"
	"testing"
)

// benchImpls mirrors impls() for the micro-benchmarks, so every
// benchmark reports THE vs Chase–Lev side by side.
func benchImpls() []struct {
	name string
	mk   func(n int) Queue[*int]
} {
	return []struct {
		name string
		mk   func(n int) Queue[*int]
	}{
		{"the", func(n int) Queue[*int] { return New[*int](n) }},
		{"chaselev", func(n int) Queue[*int] { return NewChaseLev[int](n) }},
	}
}

// BenchmarkDequePushPop measures the owner's uncontended PUSH+POP
// cycle — the spawn/join fast path of Algorithm 3.1.
func BenchmarkDequePushPop(b *testing.B) {
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			d := impl.mk(64)
			v := 42
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
		})
	}
}

// BenchmarkDequeStealContended measures the owner's PUSH+POP cycle
// while thieves hammer the head from other goroutines — the regime
// where the THE protocol's steal mutex serializes the pool and the
// lock-free deque should not.
func BenchmarkDequeStealContended(b *testing.B) {
	const thieves = 3
	for _, impl := range benchImpls() {
		b.Run(impl.name, func(b *testing.B) {
			d := impl.mk(64)
			v := 42
			var stop atomic.Bool
			doneCh := make(chan int64, thieves)
			for i := 0; i < thieves; i++ {
				go func() {
					var stolen int64
					for !stop.Load() {
						if _, ok := d.Steal(); ok {
							stolen++
						}
					}
					doneCh <- stolen
				}()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Push(&v)
				d.Pop()
			}
			b.StopTimer()
			stop.Store(true)
			var stolen int64
			for i := 0; i < thieves; i++ {
				stolen += <-doneCh
			}
			if b.N > 0 {
				b.ReportMetric(float64(stolen)/float64(b.N), "steals/op")
			}
		})
	}
}

package deque

import (
	"sync"
	"sync/atomic"
)

// Queue is the work-stealing deque contract the schedulers program
// against: owner-only Push/Pop at the tail, thief-side Steal at the
// head, snapshot Size, and cumulative operation counts. Two
// implementations satisfy it — the THE-protocol Deque below (the
// paper-fidelity reference, a mutex on every steal) and the lock-free
// ChaseLev in chaselev.go — selected per run by core.Config.
type Queue[E any] interface {
	// Push appends item at the tail. Owner only.
	Push(item E)
	// Pop removes and returns the tail item. Owner only.
	Pop() (E, bool)
	// Steal removes and returns the head item. Any non-owner.
	Steal() (E, bool)
	// Size reports the current item count (snapshot semantics).
	Size() int
	// Empty reports whether the deque currently holds no items.
	Empty() bool
	// Stats reports cumulative pushes, successful pops, successful
	// steals and failed steal attempts.
	Stats() (pushes, pops, steals, failedSteals int64)
}

// Deque is a work-stealing deque of items of type E.
//
// Concurrency contract: Push and Pop may be called only by the owning
// worker; Steal may be called by any other worker. Size may be called
// by anyone and is a snapshot.
type Deque[E any] struct {
	mu   sync.Mutex
	head atomic.Int64 // H: absolute index of the head item
	tail atomic.Int64 // T: absolute index one past the tail item

	// buf holds items at absolute index i in buf[i-off]. The owner
	// reads and writes buf without the lock (thieves touch it only
	// under mu); off and buf are replaced only by the owner while
	// holding mu.
	buf []E
	off int64

	// Counters for introspection and tests (owner/lock protected
	// writes; racy reads acceptable for stats).
	pushes, pops, steals, failedSteals atomic.Int64
}

// New returns an empty deque with capacity for at least n items before
// the first internal growth. n < 1 is treated as 1.
func New[E any](n int) *Deque[E] {
	if n < 1 {
		n = 1
	}
	return &Deque[E]{buf: make([]E, n)}
}

// Size reports the number of items currently in the deque. Under
// concurrent stealing the value is a snapshot that may be stale by the
// time it is used; this matches how the HERMES workload-sensitive
// policy consumes deque sizes.
func (d *Deque[E]) Size() int {
	n := d.tail.Load() - d.head.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque currently holds no items.
func (d *Deque[E]) Empty() bool { return d.Size() == 0 }

// Push appends item at the tail (Algorithm 2.2). Owner only.
func (d *Deque[E]) Push(item E) {
	t := d.tail.Load()
	if int(t-d.off) == len(d.buf) {
		d.grow()
	}
	d.buf[t-d.off] = item
	d.tail.Store(t + 1) // publish after the slot is written
	d.pushes.Add(1)
}

// grow makes room for one more tail slot: it compacts the live range
// to the front of the buffer and doubles the buffer if the live range
// fills it. Called by the owner; takes the lock because thieves read
// buf/off under it.
func (d *Deque[E]) grow() {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, t := d.head.Load(), d.tail.Load()
	live := t - h
	nbuf := d.buf
	if int(live) == len(d.buf) {
		nbuf = make([]E, 2*len(d.buf))
	}
	copy(nbuf, d.buf[h-d.off:t-d.off])
	// Zero abandoned slots in the old buffer region so stolen items
	// do not linger (relevant when E holds pointers).
	if &nbuf[0] != &d.buf[0] {
		clear(d.buf)
	} else {
		clear(nbuf[live:])
	}
	d.buf = nbuf
	d.off = h
}

// Pop removes and returns the tail item (Algorithm 2.3). It returns
// the zero value and false when the deque is empty. Owner only.
func (d *Deque[E]) Pop() (E, bool) {
	var zero E
	t := d.tail.Load() - 1
	d.tail.Store(t)
	h := d.head.Load()
	if h > t {
		// Possible conflict with a thief over the last item: back
		// out, then retry the decrement under the lock.
		d.tail.Store(t + 1)
		d.mu.Lock()
		t = d.tail.Load() - 1
		d.tail.Store(t)
		h = d.head.Load()
		if h > t {
			d.tail.Store(t + 1)
			d.mu.Unlock()
			return zero, false
		}
		d.mu.Unlock()
	}
	item := d.buf[t-d.off]
	d.pops.Add(1)
	return item, true
}

// Steal removes and returns the head item (Algorithm 2.4). It returns
// the zero value and false when the deque is empty. Any non-owner may
// call it.
func (d *Deque[E]) Steal() (E, bool) {
	var zero E
	d.mu.Lock()
	h := d.head.Load()
	d.head.Store(h + 1)
	if h+1 > d.tail.Load() {
		d.head.Store(h)
		d.mu.Unlock()
		d.failedSteals.Add(1)
		return zero, false
	}
	// Read the slot before releasing the lock: the owner may compact
	// or grow the buffer once we unlock.
	item := d.buf[h-d.off]
	d.mu.Unlock()
	d.steals.Add(1)
	return item, true
}

// Stats reports cumulative operation counts: pushes, successful pops,
// successful steals, and failed steal attempts.
func (d *Deque[E]) Stats() (pushes, pops, steals, failedSteals int64) {
	return d.pushes.Load(), d.pops.Load(), d.steals.Load(), d.failedSteals.Load()
}

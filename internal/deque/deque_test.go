package deque

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyPop(t *testing.T) {
	d := New[int](4)
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop on empty deque succeeded")
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal on empty deque succeeded")
	}
	if d.Size() != 0 || !d.Empty() {
		t.Fatal("empty deque reports non-zero size")
	}
}

func TestOwnerLIFO(t *testing.T) {
	d := New[int](2)
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	if d.Size() != 10 {
		t.Fatalf("size = %d, want 10", d.Size())
	}
	for i := 9; i >= 0; i-- {
		v, ok := d.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := d.Pop(); ok {
		t.Fatal("Pop succeeded on drained deque")
	}
}

func TestThiefFIFO(t *testing.T) {
	d := New[int](2)
	for i := 0; i < 10; i++ {
		d.Push(i)
	}
	for i := 0; i < 10; i++ {
		v, ok := d.Steal()
		if !ok || v != i {
			t.Fatalf("Steal = %d,%v, want %d", v, ok, i)
		}
	}
	if _, ok := d.Steal(); ok {
		t.Fatal("Steal succeeded on drained deque")
	}
}

// TestFigure1Sequence replays the deque behaviour of Figure 1 of the
// paper for core 2: a spawn pushes the continuation (7 time units), a
// thief steals from the head, and later the owner pops from the tail.
func TestFigure1Sequence(t *testing.T) {
	core2 := New[int](4)
	// Fig 1(a): core 2's deque holds 9 (head) and 7 (tail).
	core2.Push(9)
	core2.Push(7)
	// Fig 1(b): spawn pushes a continuation worth 7 units to the tail.
	core2.Push(71) // marker value for the new tail item
	// Fig 1(c): idle core 4 steals from the head → must get 9.
	v, ok := core2.Steal()
	if !ok || v != 9 {
		t.Fatalf("thief stole %d, want head item 9", v)
	}
	// Fig 1(f): owner pops from the tail → most recently pushed item.
	v, ok = core2.Pop()
	if !ok || v != 71 {
		t.Fatalf("owner popped %d, want tail item 71", v)
	}
	if core2.Size() != 1 {
		t.Fatalf("size = %d, want 1", core2.Size())
	}
}

func TestGrowPreservesOrder(t *testing.T) {
	d := New[int](1)
	const n = 1000
	for i := 0; i < n; i++ {
		d.Push(i)
	}
	for i := 0; i < n/2; i++ {
		if v, ok := d.Steal(); !ok || v != i {
			t.Fatalf("steal %d: got %d,%v", i, v, ok)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if v, ok := d.Pop(); !ok || v != i {
			t.Fatalf("pop %d: got %d,%v", i, v, ok)
		}
	}
}

func TestInterleavedReuse(t *testing.T) {
	// Repeatedly drain and refill so absolute indices march forward;
	// compaction must keep everything consistent.
	d := New[int](4)
	next := 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 7; i++ {
			d.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if _, ok := d.Steal(); !ok {
				t.Fatal("steal failed on non-empty deque")
			}
		}
		for i := 0; i < 4; i++ {
			if _, ok := d.Pop(); !ok {
				t.Fatal("pop failed on non-empty deque")
			}
		}
		if d.Size() != 0 {
			t.Fatalf("round %d: size = %d, want 0", round, d.Size())
		}
	}
}

func TestStats(t *testing.T) {
	d := New[int](4)
	d.Push(1)
	d.Push(2)
	d.Pop()
	d.Steal()
	d.Steal() // fails
	pushes, pops, steals, failed := d.Stats()
	if pushes != 2 || pops != 1 || steals != 1 || failed != 1 {
		t.Fatalf("stats = %d,%d,%d,%d", pushes, pops, steals, failed)
	}
}

// opSequence applies a random op string against both the deque and a
// reference slice model, checking every result. Ops: 'u' push, 'o'
// pop, 's' steal.
func runModelCheck(ops []byte) bool {
	d := New[int](1)
	var model []int
	next := 0
	for _, op := range ops {
		switch op % 3 {
		case 0: // push
			d.Push(next)
			model = append(model, next)
			next++
		case 1: // pop (tail of model)
			v, ok := d.Pop()
			if len(model) == 0 {
				if ok {
					return false
				}
				continue
			}
			want := model[len(model)-1]
			model = model[:len(model)-1]
			if !ok || v != want {
				return false
			}
		case 2: // steal (head of model)
			v, ok := d.Steal()
			if len(model) == 0 {
				if ok {
					return false
				}
				continue
			}
			want := model[0]
			model = model[1:]
			if !ok || v != want {
				return false
			}
		}
		if d.Size() != len(model) {
			return false
		}
	}
	return true
}

func TestModelProperty(t *testing.T) {
	if err := quick.Check(runModelCheck, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentNoLossNoDup hammers one owner against several thieves
// and checks that every pushed item is consumed exactly once.
func TestConcurrentNoLossNoDup(t *testing.T) {
	const (
		items   = 20000
		thieves = 4
	)
	d := New[int](8)
	var mu sync.Mutex
	seen := make(map[int]int, items)
	record := func(v int) {
		mu.Lock()
		seen[v]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if v, ok := d.Steal(); ok {
					record(v)
					continue
				}
				select {
				case <-done:
					// Final drain after the owner stops.
					for {
						v, ok := d.Steal()
						if !ok {
							return
						}
						record(v)
					}
				default:
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < items; i++ {
		d.Push(i)
		if rng.Intn(3) == 0 {
			if v, ok := d.Pop(); ok {
				record(v)
			}
		}
	}
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}
	close(done)
	wg.Wait()
	// One more owner drain in case thieves backed off before the last
	// push became visible.
	for {
		v, ok := d.Pop()
		if !ok {
			break
		}
		record(v)
	}

	if len(seen) != items {
		t.Fatalf("consumed %d distinct items, want %d", len(seen), items)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("item %d consumed %d times", v, n)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	d := New[int](64)
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkStealUncontended(b *testing.B) {
	d := New[int](64)
	for i := 0; i < b.N; i++ {
		d.Push(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Steal()
	}
}

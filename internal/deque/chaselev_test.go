package deque

import (
	"math/rand"
	"sync"
	"testing"
)

// impls enumerates both deque implementations behind the Queue
// interface over *int elements, so every correctness property runs
// against the THE reference and the lock-free Chase–Lev alike.
func impls() map[string]func(n int) Queue[*int] {
	return map[string]func(n int) Queue[*int]{
		"the":      func(n int) Queue[*int] { return New[*int](n) },
		"chaselev": func(n int) Queue[*int] { return NewChaseLev[int](n) },
	}
}

func TestQueueEmptyOps(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			d := mk(4)
			if _, ok := d.Pop(); ok {
				t.Fatal("Pop on empty deque succeeded")
			}
			if _, ok := d.Steal(); ok {
				t.Fatal("Steal on empty deque succeeded")
			}
			if d.Size() != 0 || !d.Empty() {
				t.Fatal("empty deque reports non-zero size")
			}
		})
	}
}

func TestQueueOwnerLIFOThiefFIFO(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			vals := make([]int, 16)
			for i := range vals {
				vals[i] = i
			}
			d := mk(2)
			for i := 0; i < 8; i++ {
				d.Push(&vals[i])
			}
			// Thief drains the head in FIFO order.
			for i := 0; i < 4; i++ {
				v, ok := d.Steal()
				if !ok || *v != i {
					t.Fatalf("Steal = %v,%v, want %d", v, ok, i)
				}
			}
			// Owner drains the tail in LIFO order.
			for i := 7; i >= 4; i-- {
				v, ok := d.Pop()
				if !ok || *v != i {
					t.Fatalf("Pop = %v,%v, want %d", v, ok, i)
				}
			}
			if !d.Empty() {
				t.Fatalf("size = %d, want 0", d.Size())
			}
		})
	}
}

func TestQueueGrowPreservesOrder(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			const n = 1000
			vals := make([]int, n)
			d := mk(1)
			for i := 0; i < n; i++ {
				vals[i] = i
				d.Push(&vals[i])
			}
			for i := 0; i < n/2; i++ {
				if v, ok := d.Steal(); !ok || *v != i {
					t.Fatalf("steal %d: got %v,%v", i, v, ok)
				}
			}
			for i := n - 1; i >= n/2; i-- {
				if v, ok := d.Pop(); !ok || *v != i {
					t.Fatalf("pop %d: got %v,%v", i, v, ok)
				}
			}
		})
	}
}

// TestQueueModel replays a random op sequence against a slice model,
// checking LIFO/FIFO results and sizes for both implementations.
func TestQueueModel(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			d := mk(1)
			vals := make([]int, 0, 4096)
			var model []int
			for op := 0; op < 4096; op++ {
				switch rng.Intn(3) {
				case 0:
					vals = vals[:len(vals)+1]
					vals[len(vals)-1] = op
					d.Push(&vals[len(vals)-1])
					model = append(model, op)
				case 1:
					v, ok := d.Pop()
					if len(model) == 0 {
						if ok {
							t.Fatal("Pop succeeded on empty deque")
						}
						continue
					}
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if !ok || *v != want {
						t.Fatalf("Pop = %v,%v, want %d", v, ok, want)
					}
				case 2:
					v, ok := d.Steal()
					if len(model) == 0 {
						if ok {
							t.Fatal("Steal succeeded on empty deque")
						}
						continue
					}
					want := model[0]
					model = model[1:]
					if !ok || *v != want {
						t.Fatalf("Steal = %v,%v, want %d", v, ok, want)
					}
				}
				if d.Size() != len(model) {
					t.Fatalf("size = %d, want %d", d.Size(), len(model))
				}
			}
		})
	}
}

// TestQueueConcurrentNoLossNoDup hammers one owner (pushing 1e5 items,
// popping a random third of them) against several concurrent thieves
// and checks that every item is consumed exactly once — for both the
// THE reference and the lock-free Chase–Lev, under -race.
func TestQueueConcurrentNoLossNoDup(t *testing.T) {
	const (
		items   = 100_000
		thieves = 4
	)
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			d := mk(8)
			vals := make([]int, items)
			var mu sync.Mutex
			seen := make(map[int]int, items)
			record := func(v *int) {
				mu.Lock()
				seen[*v]++
				mu.Unlock()
			}

			var wg sync.WaitGroup
			done := make(chan struct{})
			for i := 0; i < thieves; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if v, ok := d.Steal(); ok {
							record(v)
							continue
						}
						select {
						case <-done:
							// Final drain after the owner stops.
							for {
								v, ok := d.Steal()
								if !ok {
									return
								}
								record(v)
							}
						default:
						}
					}
				}()
			}

			rng := rand.New(rand.NewSource(42))
			for i := 0; i < items; i++ {
				vals[i] = i
				d.Push(&vals[i])
				if rng.Intn(3) == 0 {
					if v, ok := d.Pop(); ok {
						record(v)
					}
				}
			}
			for {
				v, ok := d.Pop()
				if !ok {
					break
				}
				record(v)
			}
			close(done)
			wg.Wait()
			// One more owner drain in case thieves backed off before the
			// last push became visible.
			for {
				v, ok := d.Pop()
				if !ok {
					break
				}
				record(v)
			}

			if len(seen) != items {
				t.Fatalf("consumed %d distinct items, want %d", len(seen), items)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("item %d consumed %d times", v, n)
				}
			}
		})
	}
}

// TestChaseLevStatsBalance checks the Chase–Lev counters account for
// every successful operation: pushes == pops + steals after a
// concurrent run drains the deque.
func TestChaseLevStatsBalance(t *testing.T) {
	d := NewChaseLev[int](8)
	vals := make([]int, 10_000)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := d.Steal(); ok {
				continue
			}
			select {
			case <-done:
				for {
					if _, ok := d.Steal(); !ok {
						return
					}
				}
			default:
			}
		}
	}()
	for i := range vals {
		d.Push(&vals[i])
		if i%2 == 0 {
			d.Pop()
		}
	}
	for {
		if _, ok := d.Pop(); !ok {
			break
		}
	}
	close(done)
	wg.Wait()
	for {
		if _, ok := d.Pop(); !ok {
			break
		}
	}
	pushes, pops, steals, _ := d.Stats()
	if pushes != int64(len(vals)) {
		t.Fatalf("pushes = %d, want %d", pushes, len(vals))
	}
	if pops+steals != pushes {
		t.Fatalf("pops(%d) + steals(%d) != pushes(%d)", pops, steals, pushes)
	}
}

package power

import (
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/units"
)

func TestCoreWattsOrdering(t *testing.T) {
	// For any operating point: busy > spin > idle > unused.
	for _, spec := range []*cpu.Spec{cpu.SystemA(), cpu.SystemB()} {
		m := NewModel(spec)
		for _, p := range spec.Points {
			busy := m.CoreWatts(cpu.Busy, p.F)
			spin := m.CoreWatts(cpu.Spin, p.F)
			idle := m.CoreWatts(cpu.IdleHalt, p.F)
			unused := m.CoreWatts(cpu.Unused, p.F)
			if !(busy > spin && spin > idle && idle > unused) {
				t.Fatalf("%s @%v: busy=%.2f spin=%.2f idle=%.2f unused=%.2f",
					spec.Name, p.F, busy, spin, idle, unused)
			}
		}
	}
}

func TestPowerFallsWithFrequency(t *testing.T) {
	for _, spec := range []*cpu.Spec{cpu.SystemA(), cpu.SystemB()} {
		m := NewModel(spec)
		prev := -1.0
		// Points are fastest-first; iterate slowest-first.
		for i := len(spec.Points) - 1; i >= 0; i-- {
			w := m.CoreWatts(cpu.Busy, spec.Points[i].F)
			if w <= prev {
				t.Fatalf("%s: power not increasing with frequency at %v", spec.Name, spec.Points[i].F)
			}
			prev = w
		}
	}
}

func TestCalibrationEnvelope(t *testing.T) {
	// Full-load package power should be in the neighbourhood of the
	// real parts' TDP: Opteron 6378 is a 115 W 16-core package, the
	// FX-8150 a 125 W 8-core package. Allow generous slack — we model
	// shape, not a datasheet.
	a := NewModel(cpu.SystemA())
	perCoreA := a.CoreWatts(cpu.Busy, cpu.SystemA().MaxFreq())
	pkgA := 16*perCoreA + a.P.UncoreW
	if pkgA < 80 || pkgA > 160 {
		t.Fatalf("SystemA full-load package = %.1f W, want 80–160", pkgA)
	}

	b := NewModel(cpu.SystemB())
	perCoreB := b.CoreWatts(cpu.Busy, cpu.SystemB().MaxFreq())
	pkgB := 8*perCoreB + b.P.UncoreW
	if pkgB < 90 || pkgB > 170 {
		t.Fatalf("SystemB full-load package = %.1f W, want 90–170", pkgB)
	}
}

func TestSlowFastRatio(t *testing.T) {
	// The energy-saving headroom: a busy core at the paper's default
	// slow frequency should draw well under 70% of its full-speed
	// draw (V² scaling), otherwise no experiment can save energy.
	a := NewModel(cpu.SystemA())
	ratioA := a.CoreWatts(cpu.Busy, 1_600_000*units.KHz) / a.CoreWatts(cpu.Busy, 2_400_000*units.KHz)
	if ratioA > 0.70 || ratioA < 0.30 {
		t.Fatalf("SystemA 1.6/2.4 busy power ratio = %.2f, want 0.30–0.70", ratioA)
	}
	b := NewModel(cpu.SystemB())
	ratioB := b.CoreWatts(cpu.Busy, 2_700_000*units.KHz) / b.CoreWatts(cpu.Busy, 3_600_000*units.KHz)
	if ratioB > 0.75 || ratioB < 0.35 {
		t.Fatalf("SystemB 2.7/3.6 busy power ratio = %.2f, want 0.35–0.75", ratioB)
	}
}

func TestMachineWatts(t *testing.T) {
	spec := cpu.SystemB()
	m := NewModel(spec)
	mach := cpu.NewMachine(spec)
	idleAll := m.MachineWatts(mach) // everything unused
	wantIdle := m.P.UncoreW + 8*m.P.UnusedW
	if diff := idleAll - wantIdle; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("all-unused machine = %.3f W, want %.3f", idleAll, wantIdle)
	}
	mach.Cores[0].State = cpu.Busy
	withOne := m.MachineWatts(mach)
	delta := m.CoreWatts(cpu.Busy, spec.MaxFreq()) - m.P.UnusedW
	if diff := withOne - idleAll - delta; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("busy-core delta = %.3f, want %.3f", withOne-idleAll, delta)
	}
}

func TestDefaultParamsUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown system")
		}
	}()
	DefaultParams(&cpu.Spec{Name: "SystemZ"})
}

// Package power models CPU power draw as a function of each core's
// activity state and operating point, replacing the paper's physical
// current meter on the 12 V CPU supply lines.
//
// The model is the textbook CMOS decomposition the DVFS literature the
// paper cites relies on:
//
//	P_core = activity · C_eff · V² · f  +  k_leak · V     (dynamic + leakage)
//	P_pkg  = P_uncore · packages + Σ P_core
//
// Constants are calibrated once per system from the public TDP
// envelopes of the Opteron 6378 (115 W, 16 cores) and FX-8150 (125 W,
// 8 cores) and then held fixed across every experiment; the
// reproduction targets the *shape* of the paper's results, not
// absolute wattage.
package power

import (
	"fmt"

	"hermes/internal/cpu"
	"hermes/internal/units"
)

// Params are the calibration constants of the power model.
type Params struct {
	// CeffNF is the effective switched capacitance per core in
	// nanofarads: dynamic watts = CeffNF·1e-9 · V² · f(Hz).
	CeffNF float64
	// LeakWPerV is per-core leakage in watts per volt of supply.
	LeakWPerV float64
	// SpinFactor scales dynamic power while a core busy-waits
	// (steal loops, yield backoff): no memory traffic, stalled
	// pipeline, but the clock still toggles.
	SpinFactor float64
	// IdleResidualW is the dynamic residue of a halted (C1) core;
	// leakage still applies because voltage is held.
	IdleResidualW float64
	// UnusedW is the draw of a power-gated core with no worker.
	UnusedW float64
	// UncoreW is the constant per-package draw: memory controller,
	// L3, interconnect.
	UncoreW float64
}

// DefaultParams returns the calibrated constants for one of the two
// modeled systems.
func DefaultParams(spec *cpu.Spec) Params {
	switch spec.Name {
	case "SystemA":
		// Opteron 6378: ~5.5 W dynamic per core at 2.4 GHz/1.3 V.
		return Params{
			CeffNF:        1.36,
			LeakWPerV:     1.20,
			SpinFactor:    0.70,
			IdleResidualW: 0.25,
			UnusedW:       0.10,
			UncoreW:       19.0,
		}
	case "SystemB":
		// FX-8150: ~11 W dynamic per core at 3.6 GHz/1.412 V.
		return Params{
			CeffNF:        1.53,
			LeakWPerV:     1.50,
			SpinFactor:    0.70,
			IdleResidualW: 0.30,
			UnusedW:       0.15,
			UncoreW:       14.0,
		}
	default:
		panic(fmt.Sprintf("power: no calibration for system %q", spec.Name))
	}
}

// Model computes power for a machine spec.
type Model struct {
	Spec *cpu.Spec
	P    Params
}

// NewModel builds a model with the default calibration for spec.
func NewModel(spec *cpu.Spec) *Model {
	return &Model{Spec: spec, P: DefaultParams(spec)}
}

// CoreWatts returns the draw of a single core in state st running at
// frequency f.
func (m *Model) CoreWatts(st cpu.CoreState, f units.Freq) float64 {
	if st == cpu.Unused {
		return m.P.UnusedW
	}
	v := float64(m.Spec.Voltage(f)) / 1000.0
	leak := m.P.LeakWPerV * v
	switch st {
	case cpu.IdleHalt:
		return leak + m.P.IdleResidualW
	case cpu.Spin:
		return leak + m.P.SpinFactor*m.dyn(v, f)
	case cpu.Busy:
		return leak + m.dyn(v, f)
	}
	panic("power: invalid core state")
}

func (m *Model) dyn(v float64, f units.Freq) float64 {
	hz := float64(f) * 1000.0 // kHz → Hz
	return m.P.CeffNF * 1e-9 * v * v * hz
}

// MachineWatts returns the instantaneous draw of the whole machine:
// every core at its domain's current frequency, plus uncore.
func (m *Model) MachineWatts(mach *cpu.Machine) float64 {
	w := m.P.UncoreW * float64(m.Spec.Packages)
	for _, c := range mach.Cores {
		w += m.CoreWatts(c.State, c.Dom.Freq())
	}
	return w
}

package csort

import (
	"sort"
	"testing"

	"hermes/internal/core"
	"hermes/internal/cpu"
)

func TestSortsCorrectly(t *testing.T) {
	j := New(60_000, 1)
	core.Run(core.Config{Spec: cpu.SystemA(), Workers: 8, Mode: core.Unified, Seed: 1}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(j.Keys) {
		t.Fatal("keys not sorted")
	}
}

func TestSmallFallback(t *testing.T) {
	// Below 4×buckets the job sorts serially; all sizes must verify.
	for _, n := range []int{0, 1, 2, 100, 255, 256, 300} {
		j := New(n, 2)
		core.Run(core.Config{Workers: 2, Seed: 2}, j.Root)
		if err := j.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestSkewedInputSorts(t *testing.T) {
	// The generator mixes exponential and uniform keys; heavily skewed
	// buckets must still verify (this exercises uneven phase-4 tasks).
	j := New(30_000, 77)
	core.Run(core.Config{Workers: 16, Mode: core.Unified, Seed: 77}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesUnsorted(t *testing.T) {
	j := New(5000, 3)
	core.Run(core.Config{Workers: 2, Seed: 3}, j.Root)
	j.Keys[0], j.Keys[4000] = j.Keys[4000], j.Keys[0]
	if err := j.Check(); err == nil {
		t.Fatal("swapped keys passed verification")
	}
}

func TestLog2(t *testing.T) {
	if log2(1) != 1 || log2(2) != 1 || log2(1024) != 10 {
		t.Fatalf("log2: %v %v %v", log2(1), log2(2), log2(1024))
	}
}

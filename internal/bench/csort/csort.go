// Package csort implements the paper's "Compare" benchmark (PBBS
// Comparison Sort): a parallel sample sort over float64 keys. An
// oversampled pivot set splits the input into buckets; blocks classify
// and scatter their elements in parallel; buckets then sort in
// parallel with sizes that vary by input skew — the irregularity that
// distinguishes Compare from the radix Sort benchmark.
package csort

import (
	"fmt"
	"math/rand"
	"sort"

	"hermes/internal/units"
	"hermes/internal/wl"
)

const (
	numBuckets   = 64
	oversample   = 8
	classifyCPE  = 24  // cycles per element: binary search over pivots
	scatterCPE   = 32  // cycles per element: bucket write
	sortCPC      = 4.0 // cycles per comparison in the final bucket sorts
	memFrac      = 0.84
	finalMemFrac = 0.76
)

// Job is one sortable instance.
type Job struct {
	Keys   []float64
	tmp    []float64
	sum    float64
	blocks int
}

// New creates a deterministic instance: a mixture of uniform and
// exponentially skewed keys, so bucket sizes are uneven.
func New(n int, seed int64) *Job {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, n)
	var sum float64
	for i := range keys {
		if rng.Intn(3) == 0 {
			keys[i] = rng.ExpFloat64() * 0.1
		} else {
			keys[i] = rng.Float64()
		}
		sum += keys[i]
	}
	blocks := n / 18000
	if blocks < 1 {
		blocks = 1
	}
	if blocks > 512 {
		blocks = 512
	}
	return &Job{Keys: keys, tmp: make([]float64, n), sum: sum, blocks: blocks}
}

// Root sorts Keys in place.
func (j *Job) Root(c wl.Ctx) {
	n := len(j.Keys)
	if n == 0 {
		return
	}
	if n < 4*numBuckets {
		sort.Float64s(j.Keys)
		c.WorkMix(units.Cycles(float64(n)*sortCPC*log2(n)), finalMemFrac)
		return
	}

	// Pivot selection: deterministic oversample, sorted serially.
	rng := rand.New(rand.NewSource(int64(n)))
	sample := make([]float64, numBuckets*oversample)
	for i := range sample {
		sample[i] = j.Keys[rng.Intn(n)]
	}
	sort.Float64s(sample)
	pivots := make([]float64, numBuckets-1)
	for i := range pivots {
		pivots[i] = sample[(i+1)*oversample]
	}
	c.WorkMix(units.Cycles(float64(len(sample))*sortCPC*log2(len(sample))), 0.2)

	B := j.blocks
	counts := make([][]int, B)
	for i := range counts {
		counts[i] = make([]int, numBuckets)
	}
	bucketOf := make([]uint8, n)

	// Phase 1: classify each element (binary search over pivots).
	wl.For(c, 0, B, 1, func(c wl.Ctx, lo, hi int) {
		for b := lo; b < hi; b++ {
			blo, bhi := j.blockRange(b, n)
			cnt := counts[b]
			for i := blo; i < bhi; i++ {
				bk := sort.SearchFloat64s(pivots, j.Keys[i])
				bucketOf[i] = uint8(bk)
				cnt[bk]++
			}
			c.WorkMix(units.Cycles((bhi-blo)*classifyCPE), memFrac)
		}
	})

	// Phase 2: serial scan, bucket-major; record bucket boundaries.
	bucketStart := make([]int, numBuckets+1)
	off := 0
	for bk := 0; bk < numBuckets; bk++ {
		bucketStart[bk] = off
		for b := 0; b < B; b++ {
			v := counts[b][bk]
			counts[b][bk] = off
			off += v
		}
	}
	bucketStart[numBuckets] = n
	c.WorkMix(units.Cycles(numBuckets*B*4), 0.2)

	// Phase 3: scatter into bucket-contiguous tmp, in parallel.
	wl.For(c, 0, B, 1, func(c wl.Ctx, lo, hi int) {
		for b := lo; b < hi; b++ {
			blo, bhi := j.blockRange(b, n)
			cnt := counts[b]
			for i := blo; i < bhi; i++ {
				bk := bucketOf[i]
				j.tmp[cnt[bk]] = j.Keys[i]
				cnt[bk]++
			}
			c.WorkMix(units.Cycles((bhi-blo)*scatterCPE), memFrac)
		}
	})

	// Phase 4: sort each bucket in parallel — sizes are skewed, so
	// this phase is where stealing gets irregular.
	wl.For(c, 0, numBuckets, 1, func(c wl.Ctx, lo, hi int) {
		for bk := lo; bk < hi; bk++ {
			seg := j.tmp[bucketStart[bk]:bucketStart[bk+1]]
			sort.Float64s(seg)
			if len(seg) > 1 {
				c.WorkMix(units.Cycles(float64(len(seg))*sortCPC*log2(len(seg))), finalMemFrac)
			}
		}
	})

	// Copy back in parallel.
	wl.For(c, 0, B, 1, func(c wl.Ctx, lo, hi int) {
		for b := lo; b < hi; b++ {
			blo, bhi := j.blockRange(b, n)
			copy(j.Keys[blo:bhi], j.tmp[blo:bhi])
			c.WorkMix(units.Cycles((bhi-blo)*6), 0.7)
		}
	})
}

func (j *Job) blockRange(b, n int) (int, int) {
	return b * n / j.blocks, (b + 1) * n / j.blocks
}

// Check verifies ordering and the key-sum invariant.
func (j *Job) Check() error {
	var sum float64
	for i, k := range j.Keys {
		if i > 0 && j.Keys[i-1] > k {
			return fmt.Errorf("csort: keys[%d] > keys[%d]", i-1, i)
		}
		sum += k
	}
	diff := sum - j.sum
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-6*(1+j.sum) {
		return fmt.Errorf("csort: key sum drifted: %g vs %g", sum, j.sum)
	}
	return nil
}

func log2(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	if l == 0 {
		return 1
	}
	return l
}

// Package bench is the registry of the five PBBS-style workloads the
// paper evaluates (Section 4.1): K-Nearest Neighbors (knn), Sparse-
// Triangle Intersection (ray), Integer Sort (sort), Comparison Sort
// (compare) and Convex Hull (hull). Each workload builds a
// deterministic instance, runs real computation on the runtime through
// the wl API, and verifies its output against a sequential reference.
package bench

import (
	"fmt"
	"sort"

	"hermes/internal/bench/csort"
	"hermes/internal/bench/hull"
	"hermes/internal/bench/isort"
	"hermes/internal/bench/knn"
	"hermes/internal/bench/ray"
	"hermes/internal/wl"
)

// Workload is one runnable instance.
type Workload struct {
	// Root is the parallel computation, handed to core.Run.
	Root wl.Task
	// Check verifies the computed result; nil means nothing to check.
	Check func() error
}

// Bench describes one benchmark family.
type Bench struct {
	// Name is the paper's label (knn, ray, sort, compare, hull).
	Name string
	// Desc is a one-line description.
	Desc string
	// DefaultN is the input size used by the figure harness.
	DefaultN int
	// Build creates a deterministic instance of size n.
	Build func(n int, seed int64) Workload
}

var all = []*Bench{
	{
		Name:     "knn",
		Desc:     "k-nearest neighbors over 2-D points (kd-tree build + queries)",
		DefaultN: 150_000,
		Build: func(n int, seed int64) Workload {
			j := knn.New(n, 8, seed)
			return Workload{Root: j.Root, Check: j.Check}
		},
	},
	{
		Name:     "ray",
		Desc:     "first ray-triangle intersection (BVH build + traversal)",
		DefaultN: 120_000,
		Build: func(n int, seed int64) Workload {
			j := ray.New(n/2, n, seed)
			return Workload{Root: j.Root, Check: j.Check}
		},
	},
	{
		Name:     "sort",
		Desc:     "integer sort: parallel LSD radix sort",
		DefaultN: 4_000_000,
		Build: func(n int, seed int64) Workload {
			j := isort.New(n, seed)
			return Workload{Root: j.Root, Check: j.Check}
		},
	},
	{
		Name:     "compare",
		Desc:     "comparison sort: parallel sample sort",
		DefaultN: 2_000_000,
		Build: func(n int, seed int64) Workload {
			j := csort.New(n, seed)
			return Workload{Root: j.Root, Check: j.Check}
		},
	},
	{
		Name:     "hull",
		Desc:     "planar convex hull: parallel quickhull",
		DefaultN: 2_500_000,
		Build: func(n int, seed int64) Workload {
			j := hull.New(n, seed)
			return Workload{Root: j.Root, Check: j.Check}
		},
	},
}

// All returns the benchmarks in the paper's presentation order.
func All() []*Bench {
	out := make([]*Bench, len(all))
	copy(out, all)
	return out
}

// Names returns the benchmark names in order.
func Names() []string {
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ByName finds a benchmark by its paper label.
func ByName(name string) (*Bench, error) {
	for _, b := range all {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
}

// sorted is a tiny helper shared by tests.
func sorted(xs []float64) bool { return sort.Float64sAreSorted(xs) }

// Package isort implements the paper's "Sort" benchmark (PBBS Integer
// Sort): a parallel least-significant-digit radix sort over uint32
// keys, 8 bits per pass. Each pass runs a parallel per-block
// histogram, a serial bucket scan, and a parallel scatter into
// per-(block,bucket) disjoint output ranges.
//
// The real computation executes (and is verified against the input's
// key multiset); virtual cost is charged per element with the
// calibrated per-op cycle weights below, at the memory-bound fraction
// typical of radix sort's scatter-heavy access pattern.
package isort

import (
	"fmt"
	"math/rand"

	"hermes/internal/units"
	"hermes/internal/wl"
)

const (
	bits    = 8
	buckets = 1 << bits
	passes  = 32 / bits

	// Virtual cost model: cycles per element for the histogram and
	// scatter phases, and the memory-bound fraction of that work.
	histCyclesPerElem    = 16
	scatterCyclesPerElem = 40
	scanCyclesPerSlot    = 4
	memFrac              = 0.86
)

// Job is one sortable problem instance.
type Job struct {
	Keys   []uint32
	tmp    []uint32
	sum    uint64 // input checksum (order-independent)
	blocks int
}

// New creates a deterministic instance of n random keys split into
// work blocks sized for tasks in the tens of microseconds.
func New(n int, seed int64) *Job {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	var sum uint64
	for i := range keys {
		keys[i] = rng.Uint32()
		sum += uint64(keys[i])
	}
	blocks := n / 18000
	if blocks < 1 {
		blocks = 1
	}
	if blocks > 512 {
		blocks = 512
	}
	return &Job{Keys: keys, tmp: make([]uint32, n), sum: sum, blocks: blocks}
}

// Root sorts Keys in place (an even number of passes lands the result
// back in Keys).
func (j *Job) Root(c wl.Ctx) {
	n := len(j.Keys)
	if n == 0 {
		return
	}
	B := j.blocks
	counts := make([][]int, B)
	for i := range counts {
		counts[i] = make([]int, buckets)
	}
	src, dst := j.Keys, j.tmp
	for pass := 0; pass < passes; pass++ {
		shift := uint(pass * bits)

		// Phase 1: per-block histograms, in parallel.
		wl.For(c, 0, B, 1, func(c wl.Ctx, lo, hi int) {
			for b := lo; b < hi; b++ {
				cnt := counts[b]
				for i := range cnt {
					cnt[i] = 0
				}
				blo, bhi := j.blockRange(b, n)
				for _, k := range src[blo:bhi] {
					cnt[(k>>shift)&(buckets-1)]++
				}
				c.WorkMix(units.Cycles((bhi-blo)*histCyclesPerElem), memFrac)
			}
		})

		// Phase 2: serial exclusive scan, bucket-major, so each
		// (bucket, block) pair owns a disjoint output range.
		off := 0
		for bk := 0; bk < buckets; bk++ {
			for b := 0; b < B; b++ {
				v := counts[b][bk]
				counts[b][bk] = off
				off += v
			}
		}
		c.WorkMix(units.Cycles(buckets*B*scanCyclesPerSlot), 0.2)

		// Phase 3: scatter, in parallel; blocks write disjoint slots.
		wl.For(c, 0, B, 1, func(c wl.Ctx, lo, hi int) {
			for b := lo; b < hi; b++ {
				cnt := counts[b]
				blo, bhi := j.blockRange(b, n)
				for _, k := range src[blo:bhi] {
					bk := (k >> shift) & (buckets - 1)
					dst[cnt[bk]] = k
					cnt[bk]++
				}
				c.WorkMix(units.Cycles((bhi-blo)*scatterCyclesPerElem), memFrac)
			}
		})

		src, dst = dst, src
	}
}

func (j *Job) blockRange(b, n int) (int, int) {
	lo := b * n / j.blocks
	hi := (b + 1) * n / j.blocks
	return lo, hi
}

// Check verifies the result: non-decreasing order and the same key
// checksum as the input.
func (j *Job) Check() error {
	var sum uint64
	for i, k := range j.Keys {
		if i > 0 && j.Keys[i-1] > k {
			return fmt.Errorf("isort: keys[%d]=%d > keys[%d]=%d", i-1, j.Keys[i-1], i, k)
		}
		sum += uint64(k)
	}
	if sum != j.sum {
		return fmt.Errorf("isort: checksum mismatch: %d != %d", sum, j.sum)
	}
	return nil
}

// SerialCycles estimates the total virtual work, for sizing runs.
func (j *Job) SerialCycles() units.Cycles {
	n := len(j.Keys)
	return units.Cycles(passes * n * (histCyclesPerElem + scatterCyclesPerElem))
}

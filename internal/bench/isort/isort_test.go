package isort

import (
	"sort"
	"testing"
	"testing/quick"

	"hermes/internal/core"
	"hermes/internal/cpu"
)

func TestSortsCorrectly(t *testing.T) {
	j := New(50_000, 1)
	core.Run(core.Config{Spec: cpu.SystemA(), Workers: 8, Mode: core.Unified, Seed: 1}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(j.Keys, func(a, b int) bool { return j.Keys[a] < j.Keys[b] }) {
		t.Fatal("keys not sorted")
	}
}

func TestSmallAndEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 255, 256, 257} {
		j := New(n, 2)
		core.Run(core.Config{Workers: 2, Seed: 2}, j.Root)
		if err := j.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestChecksumCatchesCorruption(t *testing.T) {
	j := New(1000, 3)
	core.Run(core.Config{Workers: 2, Seed: 3}, j.Root)
	j.Keys[500] ^= 0xffff
	if err := j.Check(); err == nil {
		t.Fatal("corrupted result passed verification")
	}
}

func TestOrderCatchesCorruption(t *testing.T) {
	j := New(1000, 3)
	core.Run(core.Config{Workers: 2, Seed: 3}, j.Root)
	j.Keys[10], j.Keys[900] = j.Keys[900], j.Keys[10]
	if err := j.Check(); err == nil {
		t.Fatal("swapped result passed verification")
	}
}

func TestRadixEqualsStdSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		j := New(3000, seed)
		ref := make([]uint32, len(j.Keys))
		copy(ref, j.Keys)
		core.Run(core.Config{Workers: 4, Seed: seed}, j.Root)
		sort.Slice(ref, func(a, b int) bool { return ref[a] < ref[b] })
		for i := range ref {
			if ref[i] != j.Keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialCycles(t *testing.T) {
	j := New(1000, 1)
	if j.SerialCycles() <= 0 {
		t.Fatal("no work estimated")
	}
}

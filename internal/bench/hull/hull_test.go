package hull

import (
	"testing"

	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/geom"
)

func TestHullMatchesReference(t *testing.T) {
	j := New(40_000, 1)
	core.Run(core.Config{Spec: cpu.SystemA(), Workers: 8, Mode: core.Unified, Seed: 1}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
	if len(j.Hull) < 3 {
		t.Fatalf("hull of 40k random points has %d vertices", len(j.Hull))
	}
}

func TestTinyInputs(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 10} {
		j := New(n, 2)
		core.Run(core.Config{Workers: 2, Seed: 2}, j.Root)
		if err := j.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestHullPointsAreExtreme(t *testing.T) {
	j := New(5000, 3)
	core.Run(core.Config{Workers: 4, Seed: 3}, j.Root)
	// Every non-hull point must lie inside or on the hull: verify via
	// the reference hull's containment (cross products against the
	// ordered reference chain would be overkill — instead check that
	// removing any hull point changes the hull).
	onHull := map[int]bool{}
	for _, h := range j.Hull {
		onHull[h] = true
	}
	// The two x-extremes are always on the hull.
	mn, mx := 0, 0
	for i, p := range j.pts {
		if less(p, j.pts[mn]) {
			mn = i
		}
		if less(j.pts[mx], p) {
			mx = i
		}
	}
	if !onHull[mn] || !onHull[mx] {
		t.Fatal("x-extreme points missing from hull")
	}
}

func TestReferenceHullDegenerate(t *testing.T) {
	// All-identical points: hull is a single point.
	pts := []geom.Vec2{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	if got := referenceHull(pts); len(got) != 1 {
		t.Fatalf("degenerate hull = %v", got)
	}
	// Collinear points: two endpoints.
	pts = []geom.Vec2{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
	got := referenceHull(pts)
	if len(got) != 2 {
		t.Fatalf("collinear hull = %v, want the two endpoints", got)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	j := New(3000, 4)
	core.Run(core.Config{Workers: 4, Seed: 4}, j.Root)
	j.Hull = j.Hull[:len(j.Hull)-1]
	if err := j.Check(); err == nil {
		t.Fatal("truncated hull passed verification")
	}
}

// Package hull implements the paper's "Hull" benchmark (PBBS Convex
// Hull): planar convex hull by parallel quickhull. Each recursion
// finds the farthest point from the dividing chord, partitions the
// outside points, and recurses on both flanks in parallel. Subproblem
// sizes shrink at wildly uneven rates — the most steal-heavy of the
// five workloads.
package hull

import (
	"fmt"
	"sort"

	"hermes/internal/geom"
	"hermes/internal/units"
	"hermes/internal/wl"
)

const (
	scanCPE     = 40 // cycles per point per farthest/partition scan
	memFrac     = 0.84
	serialBelow = 12000 // recursion sizes below this stay serial
)

// Job is one convex-hull instance.
type Job struct {
	pts []geom.Vec2

	// Hull receives the hull's point indices (unordered set
	// semantics; Check sorts).
	mu   chan struct{} // 1-token semaphore guarding Hull in real-parallel executors
	Hull []int
}

// New creates a deterministic instance of n points.
func New(n int, seed int64) *Job {
	j := &Job{pts: geom.RandomPoints2(n, seed), mu: make(chan struct{}, 1)}
	j.mu <- struct{}{}
	return j
}

func (j *Job) addHull(idx int) {
	<-j.mu
	j.Hull = append(j.Hull, idx)
	j.mu <- struct{}{}
}

// Root computes the hull.
func (j *Job) Root(c wl.Ctx) {
	n := len(j.pts)
	j.Hull = j.Hull[:0]
	if n == 0 {
		return
	}
	if n == 1 {
		j.Hull = []int{0}
		return
	}
	// Find extreme points in x (parallel reduction over chunks).
	const chunks = 64
	mins := make([]int, chunks)
	maxs := make([]int, chunks)
	wl.For(c, 0, chunks, 1, func(c wl.Ctx, lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			a, b := ch*n/chunks, (ch+1)*n/chunks
			if a >= b {
				mins[ch], maxs[ch] = -1, -1
				continue
			}
			mn, mx := a, a
			for i := a + 1; i < b; i++ {
				if less(j.pts[i], j.pts[mn]) {
					mn = i
				}
				if less(j.pts[mx], j.pts[i]) {
					mx = i
				}
			}
			mins[ch], maxs[ch] = mn, mx
			c.WorkMix(units.Cycles((b-a)*6), 0.4)
		}
	})
	mn, mx := -1, -1
	for ch := 0; ch < chunks; ch++ {
		if mins[ch] < 0 {
			continue
		}
		if mn < 0 || less(j.pts[mins[ch]], j.pts[mn]) {
			mn = mins[ch]
		}
		if mx < 0 || less(j.pts[mx], j.pts[maxs[ch]]) {
			mx = maxs[ch]
		}
	}
	if mn == mx {
		j.Hull = []int{mn}
		return
	}
	j.addHull(mn)
	j.addHull(mx)

	// Split into points above and below the chord mn→mx.
	above := make([]int, 0, n/2)
	below := make([]int, 0, n/2)
	a, b := j.pts[mn], j.pts[mx]
	for i := range j.pts {
		if i == mn || i == mx {
			continue
		}
		cr := b.Sub(a).Cross(j.pts[i].Sub(a))
		if cr > 0 {
			above = append(above, i)
		} else if cr < 0 {
			below = append(below, i)
		}
	}
	c.WorkMix(units.Cycles(n*8), memFrac)

	c.Go(
		func(c wl.Ctx) { j.rec(c, above, mn, mx) },
		func(c wl.Ctx) { j.rec(c, below, mx, mn) },
	)
}

// rec processes the points strictly left of chord a→b.
func (j *Job) rec(c wl.Ctx, pts []int, ia, ib int) {
	if len(pts) == 0 {
		return
	}
	a, b := j.pts[ia], j.pts[ib]
	ab := b.Sub(a)

	// Farthest point from the chord.
	far, farDist := pts[0], -1.0
	for _, i := range pts {
		d := ab.Cross(j.pts[i].Sub(a))
		if d > farDist {
			farDist = d
			far = i
		}
	}
	j.addHull(far)

	// Partition outside points of the two new chords.
	f := j.pts[far]
	af := f.Sub(a)
	fb := b.Sub(f)
	left := make([]int, 0, len(pts)/4)
	right := make([]int, 0, len(pts)/4)
	for _, i := range pts {
		if i == far {
			continue
		}
		p := j.pts[i].Sub(a)
		if af.Cross(p) > 0 {
			left = append(left, i)
		} else if q := j.pts[i].Sub(f); fb.Cross(q) > 0 {
			right = append(right, i)
		}
	}
	c.WorkMix(units.Cycles(len(pts)*scanCPE), memFrac)

	if len(pts) > serialBelow {
		c.Go(
			func(c wl.Ctx) { j.rec(c, left, ia, far) },
			func(c wl.Ctx) { j.rec(c, right, far, ib) },
		)
	} else {
		j.rec(c, left, ia, far)
		j.rec(c, right, far, ib)
	}
}

func less(p, q geom.Vec2) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Check verifies the hull against a sequential Andrew's monotone-chain
// reference.
func (j *Job) Check() error {
	want := referenceHull(j.pts)
	got := make([]int, len(j.Hull))
	copy(got, j.Hull)
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		return fmt.Errorf("hull: %d hull points, reference has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("hull: hull point set differs at position %d: %d vs %d", i, got[i], want[i])
		}
	}
	return nil
}

// referenceHull is a sequential monotone-chain convex hull returning
// point indices (excluding collinear boundary points, matching
// quickhull's strict-outside tests).
func referenceHull(pts []geom.Vec2) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return less(pts[order[x]], pts[order[y]]) })
	if pts[order[0]] == pts[order[n-1]] {
		// All points coincide: the hull is a single point.
		return []int{order[0]}
	}

	build := func(seq []int) []int {
		var st []int
		for _, i := range seq {
			for len(st) >= 2 {
				o, a := pts[st[len(st)-2]], pts[st[len(st)-1]]
				if a.Sub(o).Cross(pts[i].Sub(o)) <= 0 {
					st = st[:len(st)-1] // drop right turns and collinear
				} else {
					break
				}
			}
			st = append(st, i)
		}
		return st
	}
	lower := build(order)
	rev := make([]int, n)
	for i := range order {
		rev[i] = order[n-1-i]
	}
	upper := build(rev)

	seen := map[int]bool{}
	var out []int
	for _, chain := range [][]int{lower, upper} {
		for _, i := range chain[:max(len(chain)-1, 0)] { // endpoints shared
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
	}
	if len(out) == 0 {
		out = []int{order[0]}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

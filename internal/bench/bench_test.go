package bench

import (
	"testing"

	"hermes/internal/core"
	"hermes/internal/cpu"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"knn", "ray", "sort", "compare", "hull"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, b := range All() {
		if b.DefaultN <= 0 || b.Desc == "" || b.Build == nil {
			t.Fatalf("incomplete bench %+v", b)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName should reject unknown names")
	}
	b, err := ByName("hull")
	if err != nil || b.Name != "hull" {
		t.Fatalf("ByName(hull) = %v, %v", b, err)
	}
}

// TestAllBenchmarksVerifySmall runs every benchmark at a small size on
// every mode and checks the computed result against its sequential
// reference — the end-to-end correctness net for the runtime.
func TestAllBenchmarksVerifySmall(t *testing.T) {
	sizes := map[string]int{"knn": 4000, "ray": 3000, "sort": 60000, "compare": 40000, "hull": 50000}
	for _, b := range All() {
		for _, mode := range []core.Mode{core.Baseline, core.Unified} {
			b, mode := b, mode
			t.Run(b.Name+"_"+mode.String(), func(t *testing.T) {
				load := b.Build(sizes[b.Name], 5)
				r := core.Run(core.Config{
					Spec:    cpu.SystemA(),
					Workers: 8,
					Mode:    mode,
					Seed:    5,
				}, load.Root)
				if err := load.Check(); err != nil {
					t.Fatal(err)
				}
				if r.Tasks == 0 || r.Span == 0 {
					t.Fatal("empty run")
				}
			})
		}
	}
}

func TestBenchmarksDeterministicBuild(t *testing.T) {
	for _, b := range All() {
		l1 := b.Build(2000, 9)
		l2 := b.Build(2000, 9)
		r1 := core.Run(core.Config{Workers: 4, Seed: 9}, l1.Root)
		r2 := core.Run(core.Config{Workers: 4, Seed: 9}, l2.Root)
		if r1.Span != r2.Span || r1.EnergyJ != r2.EnergyJ {
			t.Fatalf("%s: identical build+seed produced different runs", b.Name)
		}
	}
}

func TestSortedHelper(t *testing.T) {
	if !sorted([]float64{1, 2, 3}) || sorted([]float64{2, 1}) {
		t.Fatal("sorted helper broken")
	}
}

// Package ray implements the paper's "Ray" benchmark (PBBS Sparse-
// Triangle Intersection): for every ray, find the first triangle it
// penetrates inside a 3-D bounding box. A BVH is built in parallel
// over the triangle set (median split on the longest centroid axis),
// then rays traverse it in parallel. Traversal cost varies wildly
// between rays that hit dense clusters and rays that miss everything.
package ray

import (
	"fmt"

	"hermes/internal/geom"
	"hermes/internal/units"
	"hermes/internal/wl"
)

const (
	leafSize     = 8
	buildCPE     = 28 // cycles per triangle per partition level
	nodeVisitCPE = 14 // cycles per BVH node visited
	triTestCPE   = 44 // cycles per ray-triangle test
	buildMemFrac = 0.80
	queryMemFrac = 0.80
	buildGrain   = 4096
	rayGrain     = 512
	maxRayT      = 1e30
)

type node struct {
	box         geom.AABB
	lo, hi      int
	left, right int // -1 for leaves
}

// Job is one ray-casting instance.
type Job struct {
	tris []geom.Triangle
	rays []geom.Ray

	idx   []int
	nodes []node
	root  int

	// Hit holds, per ray, the index of the first triangle hit (-1 for
	// a miss) — the verification artifact.
	Hit []int
}

// New creates a deterministic instance with nTris triangles and nRays
// rays.
func New(nTris, nRays int, seed int64) *Job {
	tris := geom.RandomTriangles(nTris, seed)
	rays := geom.RandomRays(nRays, seed+1)
	idx := make([]int, nTris)
	for i := range idx {
		idx[i] = i
	}
	hit := make([]int, nRays)
	return &Job{tris: tris, rays: rays, idx: idx, Hit: hit}
}

// Root builds the BVH and casts every ray.
func (j *Job) Root(c wl.Ctx) {
	if len(j.tris) == 0 {
		for i := range j.Hit {
			j.Hit[i] = -1
		}
		return
	}
	j.nodes = j.nodes[:0]
	j.root = j.layout(0, len(j.idx))
	j.fill(c, j.root)
	j.refit(j.root)
	c.WorkMix(units.Cycles(len(j.nodes)*8), 0.4) // refit pass

	wl.For(c, 0, len(j.rays), rayGrain, func(c wl.Ctx, lo, hi int) {
		nodesVisited, triTests := 0, 0
		for r := lo; r < hi; r++ {
			var nv, tt int
			j.Hit[r], nv, tt = j.cast(j.rays[r])
			nodesVisited += nv
			triTests += tt
		}
		c.WorkMix(units.Cycles(nodesVisited*nodeVisitCPE+triTests*triTestCPE), queryMemFrac)
	})
}

// layout reserves the (size-determined) node tree serially.
func (j *Job) layout(lo, hi int) int {
	id := len(j.nodes)
	j.nodes = append(j.nodes, node{lo: lo, hi: hi, left: -1, right: -1})
	if hi-lo <= leafSize {
		return id
	}
	mid := lo + (hi-lo)/2
	l := j.layout(lo, mid)
	r := j.layout(mid, hi)
	j.nodes[id].left = l
	j.nodes[id].right = r
	return id
}

// fill partitions triangles by centroid median along the longest axis,
// in parallel above buildGrain.
func (j *Job) fill(c wl.Ctx, id int) {
	n := &j.nodes[id]
	lo, hi := n.lo, n.hi
	c.WorkMix(units.Cycles((hi-lo)*buildCPE), buildMemFrac)
	if n.left < 0 {
		return
	}
	cb := geom.EmptyAABB()
	for _, t := range j.idx[lo:hi] {
		cb.Extend(j.tris[t].Centroid())
	}
	axis := cb.LongestAxis()
	mid := lo + (hi-lo)/2
	j.selectNth(lo, hi, mid, axis)

	left, right := n.left, n.right
	if hi-lo > buildGrain {
		c.Go(
			func(c wl.Ctx) { j.fill(c, left) },
			func(c wl.Ctx) { j.fill(c, right) },
		)
	} else {
		j.fill(c, left)
		j.fill(c, right)
	}
}

// refit computes node bounding boxes bottom-up (serial; cheap).
func (j *Job) refit(id int) geom.AABB {
	n := &j.nodes[id]
	if n.left < 0 {
		bb := geom.EmptyAABB()
		for _, t := range j.idx[n.lo:n.hi] {
			tb := j.tris[t].Bounds()
			bb.Union(tb)
		}
		n.box = bb
		return bb
	}
	bb := j.refit(n.left)
	rb := j.refit(n.right)
	bb.Union(rb)
	n.box = bb
	return bb
}

func (j *Job) centroidCoord(t, axis int) float64 {
	ce := j.tris[t].Centroid()
	switch axis {
	case 0:
		return ce.X
	case 1:
		return ce.Y
	}
	return ce.Z
}

// selectNth is a deterministic Hoare quickselect over triangle
// centroids.
func (j *Job) selectNth(lo, hi, nth, axis int) {
	for hi-lo > 2 {
		mid := lo + (hi-lo)/2
		pivot := median3(
			j.centroidCoord(j.idx[lo], axis),
			j.centroidCoord(j.idx[mid], axis),
			j.centroidCoord(j.idx[hi-1], axis),
		)
		i, k := lo, hi-1
		for i <= k {
			for j.centroidCoord(j.idx[i], axis) < pivot {
				i++
			}
			for j.centroidCoord(j.idx[k], axis) > pivot {
				k--
			}
			if i <= k {
				j.idx[i], j.idx[k] = j.idx[k], j.idx[i]
				i++
				k--
			}
		}
		switch {
		case nth <= k:
			hi = k + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
	for a := lo + 1; a < hi; a++ {
		for b := a; b > lo && j.centroidCoord(j.idx[b], axis) < j.centroidCoord(j.idx[b-1], axis); b-- {
			j.idx[b], j.idx[b-1] = j.idx[b-1], j.idx[b]
		}
	}
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// cast returns the first triangle index hit by r (or -1), plus visit
// counters for cost accounting. Traversal visits the nearer child
// first so an early hit prunes the far subtree.
func (j *Job) cast(r geom.Ray) (hit, nodesVisited, triTests int) {
	hit = -1
	best := maxRayT
	var stack [64]int
	sp := 0
	stack[sp] = j.root
	sp++
	for sp > 0 {
		sp--
		id := stack[sp]
		n := &j.nodes[id]
		nodesVisited++
		if !n.box.IntersectRay(r, best) {
			continue
		}
		if n.left < 0 {
			for _, t := range j.idx[n.lo:n.hi] {
				triTests++
				if d, ok := r.IntersectTriangle(j.tris[t]); ok && d < best {
					best = d
					hit = t
				}
			}
			continue
		}
		// Push the farther child first (approximate: compare box
		// centroids along the dominant ray axis) so the nearer pops
		// first; stack depth is bounded by the tree height.
		near, far := n.left, n.right
		if j.nodes[far].box.Min.Sub(r.O).Dot(r.D) < j.nodes[near].box.Min.Sub(r.O).Dot(r.D) {
			near, far = far, near
		}
		if sp+2 <= len(stack) {
			stack[sp] = far
			sp++
			stack[sp] = near
			sp++
		} else {
			// Tree deeper than the fixed stack (cannot happen with
			// leafSize ≥ 8 and n ≤ 2^60, but stay safe).
			stack[sp] = near
			sp++
		}
	}
	return hit, nodesVisited, triTests
}

// Check verifies a deterministic sample of rays against brute force.
func (j *Job) Check() error {
	if len(j.rays) == 0 {
		return nil
	}
	step := len(j.rays) / 13
	if step == 0 {
		step = 1
	}
	for r := 0; r < len(j.rays); r += step {
		bestT := maxRayT
		want := -1
		for t := range j.tris {
			if d, ok := j.rays[r].IntersectTriangle(j.tris[t]); ok && d < bestT {
				bestT = d
				want = t
			}
		}
		if got := j.Hit[r]; got != want {
			// Two triangles at (numerically) the same depth can swap;
			// accept if the distances match closely.
			if got >= 0 && want >= 0 {
				dg, okg := j.rays[r].IntersectTriangle(j.tris[got])
				if okg {
					diff := dg - bestT
					if diff < 0 {
						diff = -diff
					}
					if diff <= 1e-12*(1+bestT) {
						continue
					}
				}
			}
			return fmt.Errorf("ray: ray %d hit %d, brute force %d", r, got, want)
		}
	}
	return nil
}

// HitCount returns how many rays hit any triangle (example output).
func (j *Job) HitCount() int {
	c := 0
	for _, h := range j.Hit {
		if h >= 0 {
			c++
		}
	}
	return c
}

package ray

import (
	"testing"

	"hermes/internal/core"
	"hermes/internal/cpu"
)

func TestHitsMatchBruteForce(t *testing.T) {
	j := New(2000, 4000, 1)
	core.Run(core.Config{Spec: cpu.SystemA(), Workers: 8, Mode: core.Unified, Seed: 1}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
	if j.HitCount() == 0 {
		t.Fatal("no ray hit anything in a dense scene")
	}
}

func TestSmallScenes(t *testing.T) {
	for _, n := range []int{1, 2, 8, 9, 50} {
		j := New(n, 100, 2)
		core.Run(core.Config{Workers: 2, Seed: 2}, j.Root)
		if err := j.Check(); err != nil {
			t.Fatalf("tris=%d: %v", n, err)
		}
	}
}

func TestEmptyScene(t *testing.T) {
	j := New(0, 50, 3)
	core.Run(core.Config{Workers: 2, Seed: 3}, j.Root)
	for i, h := range j.Hit {
		if h != -1 {
			t.Fatalf("ray %d hit %d in an empty scene", i, h)
		}
	}
}

func TestBVHRefitCoversLeaves(t *testing.T) {
	j := New(500, 10, 4)
	core.Run(core.Config{Workers: 2, Seed: 4}, j.Root)
	// Every triangle's bounds must be inside its leaf's box, and every
	// node box inside its parent's.
	var walk func(id int)
	var depth int
	walk = func(id int) {
		n := &j.nodes[id]
		if n.left < 0 {
			for _, ti := range j.idx[n.lo:n.hi] {
				bb := j.tris[ti].Bounds()
				if bb.Min.X < n.box.Min.X-1e-12 || bb.Max.X > n.box.Max.X+1e-12 {
					t.Fatalf("leaf %d box does not cover triangle %d", id, ti)
				}
			}
			return
		}
		for _, ch := range []int{n.left, n.right} {
			c := &j.nodes[ch]
			if c.box.Min.X < n.box.Min.X-1e-12 || c.box.Max.X > n.box.Max.X+1e-12 {
				t.Fatalf("child %d box exceeds parent %d", ch, id)
			}
		}
		depth++
		walk(n.left)
		walk(n.right)
	}
	walk(j.root)
}

func TestCheckCatchesCorruption(t *testing.T) {
	j := New(1000, 500, 5)
	core.Run(core.Config{Workers: 4, Seed: 5}, j.Root)
	// Flip a sampled ray's hit to a definitely-wrong value.
	j.Hit[0] = -2
	if err := j.Check(); err == nil {
		t.Fatal("corrupted hit passed verification")
	}
}

// Package knn implements the paper's "KNN" benchmark (PBBS
// K-Nearest Neighbors): a kd-tree is built over 2-D points in
// parallel, then every point queries its k nearest neighbours in
// parallel. Query cost varies with local point density (the generator
// clusters a quarter of the points), producing the irregular task
// lengths that drive work stealing.
package knn

import (
	"fmt"
	"sort"

	"hermes/internal/geom"
	"hermes/internal/units"
	"hermes/internal/wl"
)

const (
	leafSize     = 32
	buildCPE     = 18 // cycles per element per partition level
	visitCycles  = 46 // cycles per kd-node visited during a query
	buildMemFrac = 0.82
	queryMemFrac = 0.82
	buildGrain   = 8192 // spawn subtree builds above this size
	queryGrain   = 384
)

type node struct {
	axis        int     // 0 = x, 1 = y; -1 marks a leaf
	split       float64 // splitting coordinate
	lo, hi      int     // index range into idx
	left, right int     // children node ids (leaf: -1)
}

// Job is one KNN problem instance.
type Job struct {
	pts []geom.Vec2
	k   int

	idx   []int
	nodes []node
	root  int

	// Result holds, per point, the sum of squared distances to its k
	// nearest neighbours — the verification artifact.
	Result []float64
}

// New creates a deterministic instance of n points with k neighbours.
func New(n, k int, seed int64) *Job {
	if k < 1 {
		k = 1
	}
	pts := geom.RandomPoints2(n, seed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return &Job{
		pts:    pts,
		k:      k,
		idx:    idx,
		nodes:  make([]node, 0, 2*n/leafSize+4),
		Result: make([]float64, n),
	}
}

// Root builds the kd-tree and answers every point's k-NN query.
func (j *Job) Root(c wl.Ctx) {
	if len(j.pts) == 0 {
		return
	}
	// The tree shape depends only on range sizes (median splits), so a
	// cheap serial pre-pass lays out node ids; the parallel fill pass
	// then writes disjoint pre-reserved slots — no appends from
	// parallel tasks.
	j.nodes = j.nodes[:0]
	j.root = j.layout(0, len(j.idx))
	j.fill(c, j.root)
	wl.For(c, 0, len(j.pts), queryGrain, func(c wl.Ctx, lo, hi int) {
		visited := 0
		for q := lo; q < hi; q++ {
			j.Result[q], visited = j.query(q, visited)
		}
		c.WorkMix(units.Cycles(visited*visitCycles), queryMemFrac)
	})
}

// layout reserves node slots for the subtree over idx[lo:hi] and
// returns the subtree's node id. Serial and data-independent.
func (j *Job) layout(lo, hi int) int {
	id := len(j.nodes)
	j.nodes = append(j.nodes, node{lo: lo, hi: hi, left: -1, right: -1, axis: -1})
	if hi-lo <= leafSize {
		return id
	}
	mid := lo + (hi-lo)/2
	l := j.layout(lo, mid)
	r := j.layout(mid, hi)
	j.nodes[id].left = l
	j.nodes[id].right = r
	return id
}

// fill partitions idx for node id and recurses, spawning parallel
// subtree fills above buildGrain. Each task touches only its node and
// its own idx range.
func (j *Job) fill(c wl.Ctx, id int) {
	n := &j.nodes[id]
	lo, hi := n.lo, n.hi
	if n.left < 0 {
		n.axis = -1
		c.WorkMix(units.Cycles((hi-lo)*buildCPE), buildMemFrac)
		return
	}
	bb := j.bounds(lo, hi)
	axis := 0
	if bb.maxY-bb.minY > bb.maxX-bb.minX {
		axis = 1
	}
	mid := lo + (hi-lo)/2
	j.selectNth(lo, hi, mid, axis)
	n.axis = axis
	n.split = j.coord(j.idx[mid], axis)
	c.WorkMix(units.Cycles((hi-lo)*buildCPE), buildMemFrac)

	left, right := n.left, n.right
	if hi-lo > buildGrain {
		c.Go(
			func(c wl.Ctx) { j.fill(c, left) },
			func(c wl.Ctx) { j.fill(c, right) },
		)
	} else {
		j.fill(c, left)
		j.fill(c, right)
	}
}

type bounds2 struct{ minX, maxX, minY, maxY float64 }

func (j *Job) bounds(lo, hi int) bounds2 {
	b := bounds2{minX: 1e300, maxX: -1e300, minY: 1e300, maxY: -1e300}
	for _, i := range j.idx[lo:hi] {
		p := j.pts[i]
		if p.X < b.minX {
			b.minX = p.X
		}
		if p.X > b.maxX {
			b.maxX = p.X
		}
		if p.Y < b.minY {
			b.minY = p.Y
		}
		if p.Y > b.maxY {
			b.maxY = p.Y
		}
	}
	return b
}

func (j *Job) coord(i, axis int) float64 {
	if axis == 0 {
		return j.pts[i].X
	}
	return j.pts[i].Y
}

// selectNth partially sorts idx[lo:hi] so idx[nth] holds the nth
// element by the axis coordinate (Hoare quickselect with median-of-3
// pivoting; deterministic).
func (j *Job) selectNth(lo, hi, nth, axis int) {
	for hi-lo > 2 {
		mid := lo + (hi-lo)/2
		a, b, c := j.coord(j.idx[lo], axis), j.coord(j.idx[mid], axis), j.coord(j.idx[hi-1], axis)
		pivot := median3(a, b, c)
		i, k := lo, hi-1
		for i <= k {
			for j.coord(j.idx[i], axis) < pivot {
				i++
			}
			for j.coord(j.idx[k], axis) > pivot {
				k--
			}
			if i <= k {
				j.idx[i], j.idx[k] = j.idx[k], j.idx[i]
				i++
				k--
			}
		}
		switch {
		case nth <= k:
			hi = k + 1
		case nth >= i:
			lo = i
		default:
			return
		}
	}
	// Tiny range: insertion sort.
	for a := lo + 1; a < hi; a++ {
		for b := a; b > lo && j.coord(j.idx[b], axis) < j.coord(j.idx[b-1], axis); b-- {
			j.idx[b], j.idx[b-1] = j.idx[b-1], j.idx[b]
		}
	}
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// knnHeap is a fixed-k max-first list of best squared distances.
type knnHeap struct {
	d []float64
	k int
}

func (h *knnHeap) worst() float64 {
	if len(h.d) < h.k {
		return 1e300
	}
	return h.d[0]
}

func (h *knnHeap) add(d2 float64) {
	if len(h.d) < h.k {
		h.d = append(h.d, d2)
		// sift up to keep max at d[0] (simple insertion; k is small)
		for i := len(h.d) - 1; i > 0 && h.d[i] > h.d[i-1]; i-- {
			h.d[i], h.d[i-1] = h.d[i-1], h.d[i]
		}
		return
	}
	if d2 >= h.d[0] {
		return
	}
	h.d[0] = d2
	for i := 0; i < len(h.d)-1 && h.d[i] < h.d[i+1]; i++ {
		h.d[i], h.d[i+1] = h.d[i+1], h.d[i]
	}
}

func (h *knnHeap) sum() float64 {
	s := 0.0
	for _, d := range h.d {
		s += d
	}
	return s
}

// query returns the sum of squared distances from point q to its k
// nearest neighbours (excluding itself) and the running visited-node
// counter for cost accounting.
func (j *Job) query(q int, visited int) (float64, int) {
	h := knnHeap{d: make([]float64, 0, j.k), k: j.k}
	visited = j.search(j.root, q, &h, visited)
	return h.sum(), visited
}

func (j *Job) search(id, q int, h *knnHeap, visited int) int {
	visited++
	n := &j.nodes[id]
	p := j.pts[q]
	if n.axis < 0 {
		for _, i := range j.idx[n.lo:n.hi] {
			if i == q {
				continue
			}
			h.add(p.Dist2(j.pts[i]))
		}
		visited += n.hi - n.lo
		return visited
	}
	var qc float64
	if n.axis == 0 {
		qc = p.X
	} else {
		qc = p.Y
	}
	near, far := n.left, n.right
	if qc > n.split {
		near, far = far, near
	}
	visited = j.search(near, q, h, visited)
	diff := qc - n.split
	if diff*diff < h.worst() {
		visited = j.search(far, q, h, visited)
	}
	return visited
}

// Check verifies a deterministic sample of queries against brute
// force.
func (j *Job) Check() error {
	n := len(j.pts)
	if n == 0 {
		return nil
	}
	step := n / 17
	if step == 0 {
		step = 1
	}
	for q := 0; q < n; q += step {
		h := knnHeap{d: make([]float64, 0, j.k), k: j.k}
		for i := range j.pts {
			if i == q {
				continue
			}
			h.add(j.pts[q].Dist2(j.pts[i]))
		}
		want := h.sum()
		got := j.Result[q]
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9*(1+want) {
			return fmt.Errorf("knn: query %d result %g, brute force %g", q, got, want)
		}
	}
	return nil
}

// SortedResultSample returns a sorted copy of a small result sample,
// used by example programs for stable output.
func (j *Job) SortedResultSample(m int) []float64 {
	if m > len(j.Result) {
		m = len(j.Result)
	}
	s := make([]float64, m)
	copy(s, j.Result[:m])
	sort.Float64s(s)
	return s
}

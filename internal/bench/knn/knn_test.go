package knn

import (
	"testing"

	"hermes/internal/core"
	"hermes/internal/cpu"
)

func TestQueriesMatchBruteForce(t *testing.T) {
	j := New(5000, 8, 1)
	core.Run(core.Config{Spec: cpu.SystemA(), Workers: 8, Mode: core.Unified, Seed: 1}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallInputs(t *testing.T) {
	for _, n := range []int{2, 3, 33, 64, 100} {
		j := New(n, 3, 2)
		core.Run(core.Config{Workers: 2, Seed: 2}, j.Root)
		if err := j.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestKClamp(t *testing.T) {
	j := New(100, 0, 4) // k < 1 clamps to 1
	core.Run(core.Config{Workers: 2, Seed: 4}, j.Root)
	if err := j.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	j := New(2000, 4, 5)
	core.Run(core.Config{Workers: 4, Seed: 5}, j.Root)
	j.Result[0] += 1
	if err := j.Check(); err == nil {
		t.Fatal("corrupted result passed verification")
	}
}

func TestSelectNth(t *testing.T) {
	j := New(1000, 1, 6)
	// Partition around the median by x and verify the partition
	// property directly.
	mid := 500
	j.selectNth(0, 1000, mid, 0)
	pivot := j.pts[j.idx[mid]].X
	for i := 0; i < mid; i++ {
		if j.pts[j.idx[i]].X > pivot {
			t.Fatalf("idx[%d].x > median", i)
		}
	}
	for i := mid + 1; i < 1000; i++ {
		if j.pts[j.idx[i]].X < pivot {
			t.Fatalf("idx[%d].x < median", i)
		}
	}
}

func TestHeapSemantics(t *testing.T) {
	h := knnHeap{d: make([]float64, 0, 3), k: 3}
	for _, d := range []float64{9, 1, 5, 7, 3} {
		h.add(d)
	}
	// Best three of {9,1,5,7,3} are {1,3,5}.
	if h.sum() != 9 {
		t.Fatalf("heap sum = %v, want 9", h.sum())
	}
	if h.worst() != 5 {
		t.Fatalf("heap worst = %v, want 5", h.worst())
	}
}

func TestSortedResultSample(t *testing.T) {
	j := New(500, 2, 7)
	core.Run(core.Config{Workers: 2, Seed: 7}, j.Root)
	s := j.SortedResultSample(10)
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("sample not sorted")
		}
	}
}

package control

import (
	"strings"
	"testing"
	"time"

	"hermes"
)

// TestPrioritySheddingEscalation drives the controller into Shedding
// with two priority classes offered and pins the escalation ladder:
// the floor starts at 0 (only priority-0 traffic sheds), climbs one
// class per sustained over-knee streak up to the highest priority
// seen, and resets fully on recovery.
func TestPrioritySheddingEscalation(t *testing.T) {
	src := newFakeSource()
	c := New(Config{
		Model:  testModel(t),
		Mode:   hermes.Baseline, // knee 100 rps / 10 ms
		Source: src,
		// Defaults: EnterTicks 2, ExitTicks 3.
	})
	// offer both classes so the controller learns priority 1 exists.
	offerBoth := func(n int) (lo, hi int) {
		for i := 0; i < n; i++ {
			if c.AdmitPriority(0) {
				lo++
			}
			if c.AdmitPriority(1) {
				hi++
			}
		}
		return lo, hi
	}
	step := func(rps int, latSec float64) State {
		offerBoth(rps / 2)
		src.addLat(int64(rps), latSec)
		c.Tick(time.Second)
		return c.State()
	}

	// Two sustained over-knee ticks enter Shedding with the floor at 0.
	step(150, 0.030)
	if st := step(150, 0.030); st != Shedding {
		t.Fatalf("state = %v, want shedding", st)
	}
	if s := c.Status(); s.ShedFloor != 0 || s.MaxPriority != 1 {
		t.Fatalf("entry status: %+v", s)
	}
	lo, hi := offerBoth(10)
	if lo != 0 {
		t.Fatalf("floor 0 admitted %d/10 priority-0 requests", lo)
	}
	if hi != 10 {
		t.Fatalf("floor 0 shed %d/10 priority-1 requests", 10-hi)
	}
	c.Tick(time.Second) // absorb the probe traffic (calm)

	// Pressure persists: after EnterTicks more over-knee ticks the
	// floor escalates to 1 and the higher class sheds too.
	step(150, 0.030)
	step(150, 0.030)
	if s := c.Status(); s.ShedFloor != 1 {
		t.Fatalf("floor did not escalate: %+v", s)
	}
	lo, hi = offerBoth(10)
	if lo != 0 || hi != 0 {
		t.Fatalf("floor 1 admitted %d lo / %d hi requests", lo, hi)
	}
	c.Tick(time.Second)

	// The ceiling is the highest priority ever offered: more pressure
	// must not push the floor past it.
	step(150, 0.030)
	step(150, 0.030)
	if s := c.Status(); s.ShedFloor != 1 {
		t.Fatalf("floor passed the max seen priority: %+v", s)
	}

	// The floor appears on the metrics surface.
	var sb strings.Builder
	c.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "hermes_control_shed_floor 1") {
		t.Fatalf("metrics missing shed floor:\n%s", sb.String())
	}

	// Recovery resets the ladder: the next episode starts at floor 0.
	for i := 0; i < 3; i++ {
		step(20, 0.002)
	}
	if st := c.State(); st != Recovered {
		t.Fatalf("state = %v, want recovered", st)
	}
	if s := c.Status(); s.ShedFloor != 0 {
		t.Fatalf("floor survived recovery: %+v", s)
	}
	lo, hi = offerBoth(5)
	if lo != 5 || hi != 5 {
		t.Fatalf("recovered controller shed traffic: %d lo / %d hi", lo, hi)
	}
}

// TestAdmitPriorityDisabled: an unmodeled controller admits every
// class unconditionally — the priority path adds no new gate when
// control is off.
func TestAdmitPriorityDisabled(t *testing.T) {
	c := New(Config{Source: newFakeSource()})
	if c.Enabled() {
		t.Fatal("controller without a model reported enabled")
	}
	for p := -1; p <= 2; p++ {
		if !c.AdmitPriority(p) {
			t.Fatalf("disabled controller shed priority %d", p)
		}
	}
}

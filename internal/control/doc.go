// Package control is the serving feedback path: a controller that
// compares live metrics against a sweep-calibrated capacity model and
// actuates — shedding load before the pool knees, and switching the
// runtime's tempo mode to the energy-optimal choice for the observed
// arrival rate.
//
// The offline side of the loop is the open-system sweep
// (internal/sweep): for each tempo mode it measures the latency/energy
// curve over an arrival-rate grid and marks the knee — the rate where
// p99 sojourn exceeds KneeFactor × the unloaded p50. Loaded back in as
// a sweep.Model, that artifact tells the controller two things per
// mode: the arrival rate the machine cannot sustain (the knee rate)
// and the p99 bound whose crossing defines it (the knee latency).
// The controller watches the live analogues of both — offered request
// rate from its own admission counter, windowed p99 from the metrics
// registry's latency histogram — and trips when either crosses its
// calibrated bound.
//
// Tripping is hysteretic so transient spikes cannot flap the admission
// decision: EnterTicks consecutive over-knee observations enter
// Shedding, ExitTicks consecutive observations below RecoverFrac of
// both bounds leave it, and a Recovered cooldown state absorbs
// after-shocks before declaring Normal. The state machine is
//
//	Normal ──(EnterTicks over knee)──▶ Shedding
//	Shedding ──(ExitTicks calm)──▶ Recovered
//	Recovered ──(CooldownTicks calm)──▶ Normal
//	Recovered ──(EnterTicks over knee)──▶ Shedding
//
// A controller with no usable model (missing file, stale artifact, no
// curve for the boot mode, unresolved knee) constructs Disabled: it
// admits everything, reports why, and never consults the model — the
// server boots and serves regardless.
package control

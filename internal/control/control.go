package control

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"hermes"
	"hermes/internal/metrics"
	"hermes/internal/sweep"
)

// State is the controller's admission state.
type State int32

const (
	// Disabled means no usable capacity model: admit everything.
	Disabled State = iota
	// Normal admits everything while watching for knee crossings.
	Normal
	// Shedding rejects new work (the server turns it into 429s) until
	// live signals fall back below the recovery fraction of the knee.
	Shedding
	// Recovered admits everything but stays alert: a fresh trip during
	// cooldown re-enters Shedding without the full entry debounce reset.
	Recovered
)

func (s State) String() string {
	switch s {
	case Disabled:
		return "disabled"
	case Normal:
		return "normal"
	case Shedding:
		return "shedding"
	case Recovered:
		return "recovered"
	}
	return "invalid"
}

// Source is where the controller reads live signals: satisfied by
// *metrics.Registry, faked by tests to script exact sequences.
type Source interface {
	Snapshot() metrics.Snapshot
	LatencyHist() metrics.Hist
}

// ModeSwitcher actuates a tempo-mode change: satisfied by
// *hermes.Runtime (Native backend).
type ModeSwitcher interface {
	SetMode(hermes.Mode) error
}

// Config parameterizes a Controller. Model and Source are required for
// an enabled controller; everything else has a default.
type Config struct {
	// Model is the calibrated capacity model (nil → Disabled).
	Model *sweep.Model
	// Mode is the tempo mode the runtime boots in. The model must carry
	// a curve with a resolved knee for it, or the controller disables.
	Mode hermes.Mode
	// Source supplies live metrics (nil → Disabled).
	Source Source

	// Switcher, when non-nil, lets the controller change tempo mode to
	// the model's energy-optimal choice for the observed rate. Nil
	// keeps admission control only.
	Switcher ModeSwitcher

	// EnterTicks over-knee observations in a row enter Shedding
	// (default 2); ExitTicks calm observations leave it (default 3);
	// CooldownTicks calm observations graduate Recovered → Normal
	// (default 5); ModeHoldTicks is the minimum spacing between mode
	// switches (default 10).
	EnterTicks, ExitTicks, CooldownTicks, ModeHoldTicks int
	// RecoverFrac scales both knee bounds for the exit test: recovery
	// requires rate AND p99 below RecoverFrac × bound (default 0.8).
	RecoverFrac float64

	// Log, when non-nil, receives one line per state transition and
	// mode switch.
	Log func(format string, args ...any)

	// DisabledReason, when non-empty, forces the controller Disabled
	// with this reason — how the server surfaces "model failed to
	// load: ..." on /controlz instead of a generic no-model message.
	DisabledReason string
}

// Controller runs the admission/actuation feedback loop. Admit is safe
// to call concurrently with Tick and Status.
type Controller struct {
	cfg     Config
	state   atomic.Int32
	offered atomic.Int64 // Admit calls
	shed    atomic.Int64 // Admit rejections

	// shedFloor is the highest service-class priority currently being
	// shed: while Shedding, requests with priority <= shedFloor are
	// refused and higher classes pass. It starts at 0 (only the
	// default class sheds) and escalates one class at a time while
	// pressure persists — lowest-priority-first, by construction.
	shedFloor atomic.Int32
	// prioMax is the highest priority observed across Admit calls, the
	// escalation ceiling: shedding every class the server has actually
	// seen is maximal shedding.
	prioMax atomic.Int32

	mu          sync.Mutex
	reason      string // why Disabled ("" when enabled)
	mode        string // current tempo mode name
	kneeRPS     float64
	kneeLatMS   float64
	tripStreak  int
	calmStreak  int
	holdTicks   int // ticks until the next mode switch is allowed
	ticks       int64
	switches    int64
	lastOffered int64 // offered counter at previous tick
	lastHist    metrics.Hist
	liveRPS     float64 // most recent windowed offered rate
	liveP99MS   float64 // most recent windowed p99
}

// New builds a controller. It never fails: configurations that cannot
// support the feedback loop come back Disabled with a reason, so the
// caller can always mount /controlz and scrape hermes_control_state.
func New(cfg Config) *Controller {
	if cfg.EnterTicks <= 0 {
		cfg.EnterTicks = 2
	}
	if cfg.ExitTicks <= 0 {
		cfg.ExitTicks = 3
	}
	if cfg.CooldownTicks <= 0 {
		cfg.CooldownTicks = 5
	}
	if cfg.ModeHoldTicks <= 0 {
		cfg.ModeHoldTicks = 10
	}
	if cfg.RecoverFrac <= 0 || cfg.RecoverFrac > 1 {
		cfg.RecoverFrac = 0.8
	}
	c := &Controller{cfg: cfg, mode: cfg.Mode.String()}
	if reason := c.usable(); reason != "" {
		c.reason = reason
		c.state.Store(int32(Disabled))
		return c
	}
	k, _ := cfg.Model.Knee(c.mode)
	c.kneeRPS = k
	c.kneeLatMS = cfg.Model.KneeLatencyMS(c.mode)
	c.state.Store(int32(Normal))
	return c
}

// usable reports why the controller cannot run, or "" if it can.
func (c *Controller) usable() string {
	switch {
	case c.cfg.DisabledReason != "":
		return c.cfg.DisabledReason
	case c.cfg.Model == nil:
		return "no capacity model loaded"
	case c.cfg.Source == nil:
		return "no metrics source"
	case !c.cfg.Model.HasMode(c.mode):
		return fmt.Sprintf("model has no curve for boot mode %q (has %v)",
			c.mode, c.cfg.Model.Modes())
	}
	if _, ok := c.cfg.Model.Knee(c.mode); !ok {
		return fmt.Sprintf("model's knee for mode %q did not resolve; re-run the sweep with a wider rate grid", c.mode)
	}
	return ""
}

// Enabled reports whether the feedback loop is live.
func (c *Controller) Enabled() bool { return State(c.state.Load()) != Disabled }

// State returns the current admission state.
func (c *Controller) State() State { return State(c.state.Load()) }

// Admit decides one incoming request of the default (priority 0)
// service class: true admits it, false tells the server to shed it
// (429). Every call counts toward the offered-rate signal, shed or not
// — the controller must see the load it is refusing, or it could never
// recover.
func (c *Controller) Admit() bool { return c.AdmitPriority(0) }

// AdmitPriority decides one incoming request carrying a service-class
// priority. Shedding is lowest-priority-first: while the controller is
// over the knee it refuses classes up to the current shed floor, which
// starts at the default class (0) and escalates one class per entry
// debounce while pressure persists — so latency-critical traffic is
// the last to be turned away.
func (c *Controller) AdmitPriority(priority int) bool {
	c.offered.Add(1)
	p := int32(priority)
	for {
		seen := c.prioMax.Load()
		if p <= seen || c.prioMax.CompareAndSwap(seen, p) {
			break
		}
	}
	if State(c.state.Load()) == Shedding && p <= c.shedFloor.Load() {
		c.shed.Add(1)
		return false
	}
	return true
}

// Tick runs one control step over the window since the previous tick:
// read live signals, update the hysteresis state machine, and (when
// allowed) actuate a tempo-mode switch. dt is the wall-clock width of
// the window and must be positive.
func (c *Controller) Tick(dt time.Duration) {
	if !c.Enabled() || dt <= 0 {
		return
	}
	hist := c.cfg.Source.LatencyHist()
	offered := c.offered.Load()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.ticks++
	win := hist.Sub(c.lastHist)
	c.lastHist = hist
	c.liveP99MS = win.Quantile(0.99) * 1e3
	c.liveRPS = float64(offered-c.lastOffered) / dt.Seconds()
	c.lastOffered = offered

	over := (c.kneeLatMS > 0 && c.liveP99MS > c.kneeLatMS) || c.liveRPS > c.kneeRPS
	calm := c.liveRPS < c.cfg.RecoverFrac*c.kneeRPS &&
		(c.kneeLatMS <= 0 || c.liveP99MS < c.cfg.RecoverFrac*c.kneeLatMS)

	switch State(c.state.Load()) {
	case Normal:
		if over {
			c.tripStreak++
			if c.tripStreak >= c.cfg.EnterTicks {
				c.transitionLocked(Shedding)
			}
		} else {
			c.tripStreak = 0
		}
	case Shedding:
		if calm {
			c.calmStreak++
			if c.calmStreak >= c.cfg.ExitTicks {
				c.transitionLocked(Recovered)
			}
		} else {
			c.calmStreak = 0
			// Still over the knee with the current classes shed:
			// escalate the floor one priority class at a time, after the
			// same debounce as entry, until every class the server has
			// seen is shedding. Lower classes always shed before higher.
			if over {
				c.tripStreak++
				if c.tripStreak >= c.cfg.EnterTicks && c.shedFloor.Load() < c.prioMax.Load() {
					c.tripStreak = 0
					floor := c.shedFloor.Add(1)
					if c.cfg.Log != nil {
						c.cfg.Log("control: shedding escalated to priority <= %d (offered %.1f rps, p99 %.1f ms)",
							floor, c.liveRPS, c.liveP99MS)
					}
				}
			} else {
				c.tripStreak = 0
			}
		}
	case Recovered:
		if over {
			c.tripStreak++
			if c.tripStreak >= c.cfg.EnterTicks {
				c.transitionLocked(Shedding)
			}
		} else {
			c.tripStreak = 0
			c.calmStreak++
			if c.calmStreak >= c.cfg.CooldownTicks {
				c.transitionLocked(Normal)
			}
		}
	}
	c.maybeSwitchModeLocked()
}

// transitionLocked moves the state machine and resets the streaks;
// c.mu must be held.
func (c *Controller) transitionLocked(next State) {
	prev := State(c.state.Load())
	c.state.Store(int32(next))
	c.tripStreak, c.calmStreak = 0, 0
	if next != Shedding {
		// Leaving Shedding de-escalates completely: the next episode
		// starts over from the default class.
		c.shedFloor.Store(0)
	}
	if c.cfg.Log != nil {
		c.cfg.Log("control: %v -> %v (offered %.1f rps, p99 %.1f ms; knee %.1f rps, %.1f ms)",
			prev, next, c.liveRPS, c.liveP99MS, c.kneeRPS, c.kneeLatMS)
	}
}

// maybeSwitchModeLocked actuates the model's energy-optimal mode for
// the observed rate, rate-limited by ModeHoldTicks; c.mu must be held.
func (c *Controller) maybeSwitchModeLocked() {
	if c.cfg.Switcher == nil {
		return
	}
	if c.holdTicks > 0 {
		c.holdTicks--
		return
	}
	best, ok := c.cfg.Model.BestMode(c.liveRPS)
	if !ok || best == c.mode {
		return
	}
	if _, ok := c.cfg.Model.Knee(best); !ok {
		return // never switch into a mode whose knee is unknown
	}
	m, err := hermes.ParseMode(best)
	if err != nil {
		return // model mode name outside the runtime's vocabulary
	}
	if err := c.cfg.Switcher.SetMode(m); err != nil {
		if c.cfg.Log != nil {
			c.cfg.Log("control: mode switch %s -> %s failed: %v", c.mode, best, err)
		}
		return
	}
	prev := c.mode
	c.mode = best
	c.switches++
	c.holdTicks = c.cfg.ModeHoldTicks
	k, _ := c.cfg.Model.Knee(best)
	c.kneeRPS = k
	c.kneeLatMS = c.cfg.Model.KneeLatencyMS(best)
	if c.cfg.Log != nil {
		c.cfg.Log("control: tempo mode %s -> %s (offered %.1f rps; new knee %.1f rps, %.1f ms)",
			prev, best, c.liveRPS, c.kneeRPS, c.kneeLatMS)
	}
}

// Run ticks the controller every interval until ctx-like done closes.
// The caller owns the goroutine; serve wires its shutdown channel in.
func (c *Controller) Run(done <-chan struct{}, interval time.Duration) {
	if !c.Enabled() || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			c.Tick(interval)
		}
	}
}

// Status is the /controlz document.
type Status struct {
	Enabled bool   `json:"enabled"`
	Reason  string `json:"reason,omitempty"` // why disabled
	State   string `json:"state"`
	Mode    string `json:"mode"`

	ModelPath     string   `json:"model_path,omitempty"`
	KneeRPS       float64  `json:"knee_rps"`
	KneeLatencyMS float64  `json:"knee_latency_ms"`
	ModelModes    []string `json:"model_modes,omitempty"`

	OfferedRPS float64 `json:"offered_rps"`
	LiveP99MS  float64 `json:"live_p99_ms"`

	Offered      int64 `json:"offered_total"`
	Shed         int64 `json:"shed_total"`
	ModeSwitches int64 `json:"mode_switches_total"`
	Ticks        int64 `json:"ticks"`

	// ShedFloor is the highest priority class currently refused while
	// shedding (meaningful only in the shedding state); MaxPriority the
	// highest class the controller has seen.
	ShedFloor   int `json:"shed_floor"`
	MaxPriority int `json:"max_priority"`
}

// Status returns a consistent snapshot of the controller.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Enabled:       c.reason == "",
		Reason:        c.reason,
		State:         State(c.state.Load()).String(),
		Mode:          c.mode,
		KneeRPS:       c.kneeRPS,
		KneeLatencyMS: c.kneeLatMS,
		OfferedRPS:    c.liveRPS,
		LiveP99MS:     c.liveP99MS,
		Offered:       c.offered.Load(),
		Shed:          c.shed.Load(),
		ModeSwitches:  c.switches,
		Ticks:         c.ticks,
		ShedFloor:     int(c.shedFloor.Load()),
		MaxPriority:   int(c.prioMax.Load()),
	}
	if c.cfg.Model != nil {
		s.ModelPath = c.cfg.Model.Path
		s.ModelModes = c.cfg.Model.Modes()
	}
	return s
}

// WritePrometheus renders the hermes_control_* series; mount it on the
// registry with AddCollector so /metrics carries the control plane.
func (c *Controller) WritePrometheus(w io.Writer) error {
	s := c.Status()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	enabled := 0
	if s.Enabled {
		enabled = 1
	}
	p("# HELP hermes_control_enabled Whether the admission controller has a usable capacity model.\n# TYPE hermes_control_enabled gauge\nhermes_control_enabled %d\n", enabled)
	p("# HELP hermes_control_state Admission state (0 disabled, 1 normal, 2 shedding, 3 recovered).\n# TYPE hermes_control_state gauge\nhermes_control_state %d\n", c.state.Load())
	p("# HELP hermes_control_offered_rps Offered request rate over the last control tick.\n# TYPE hermes_control_offered_rps gauge\nhermes_control_offered_rps %g\n", s.OfferedRPS)
	p("# HELP hermes_control_p99_ms Windowed p99 job sojourn over the last control tick.\n# TYPE hermes_control_p99_ms gauge\nhermes_control_p99_ms %g\n", s.LiveP99MS)
	p("# HELP hermes_control_knee_rps Calibrated knee rate for the current tempo mode.\n# TYPE hermes_control_knee_rps gauge\nhermes_control_knee_rps %g\n", s.KneeRPS)
	p("# HELP hermes_control_knee_latency_ms Calibrated p99 bound for the current tempo mode.\n# TYPE hermes_control_knee_latency_ms gauge\nhermes_control_knee_latency_ms %g\n", s.KneeLatencyMS)
	p("# HELP hermes_control_offered_total Requests seen by the admission controller.\n# TYPE hermes_control_offered_total counter\nhermes_control_offered_total %d\n", s.Offered)
	p("# HELP hermes_control_shed_total Requests shed while over the knee.\n# TYPE hermes_control_shed_total counter\nhermes_control_shed_total %d\n", s.Shed)
	p("# HELP hermes_control_mode_switches_total Tempo-mode switches actuated by the controller.\n# TYPE hermes_control_mode_switches_total counter\nhermes_control_mode_switches_total %d\n", s.ModeSwitches)
	p("# HELP hermes_control_shed_floor Highest service-class priority currently shed (lowest-priority-first).\n# TYPE hermes_control_shed_floor gauge\nhermes_control_shed_floor %d\n", s.ShedFloor)
	return err
}

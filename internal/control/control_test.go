package control

import (
	"strings"
	"testing"
	"time"

	"hermes"
	"hermes/internal/metrics"
	"hermes/internal/sweep"
	"hermes/internal/workload"
)

func f64(v float64) *float64 { return &v }

// testModel builds a two-mode capacity model: baseline knees at 100
// rps, hermes (unified) at 200, both with a 2 ms unloaded p50 and a
// knee factor of 5 → 10 ms knee latency. Unified is cheaper per
// request everywhere.
func testModel(t *testing.T) *sweep.Model {
	t.Helper()
	rates := []float64{50, 100, 200}
	mk := func(mode string, joules []float64, knee *float64) sweep.Curve {
		c := sweep.Curve{Mode: mode, UnloadedP50MS: 2, KneeRPS: knee}
		for i, r := range rates {
			c.Points = append(c.Points, sweep.Point{OfferedRPS: r, JoulesPerRequest: joules[i]})
		}
		return c
	}
	m, err := sweep.ModelFromResult(sweep.Result{
		Workload:   workload.Spec{Kind: "ticks"},
		RatesRPS:   rates,
		KneeFactor: 5,
		Curves: []sweep.Curve{
			mk("baseline", []float64{0.5, 0.6, 0.9}, f64(100)),
			mk("hermes", []float64{0.3, 0.4, 0.7}, f64(200)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// fakeSource scripts the latency signal the controller reads.
type fakeSource struct{ hist metrics.Hist }

func newFakeSource() *fakeSource {
	return &fakeSource{hist: metrics.Hist{Buckets: make([]int64, len(metrics.LatencyBuckets)+1)}}
}

func (f *fakeSource) Snapshot() metrics.Snapshot { return metrics.Snapshot{} }
func (f *fakeSource) LatencyHist() metrics.Hist {
	return metrics.Hist{
		Buckets: append([]int64(nil), f.hist.Buckets...),
		Sum:     f.hist.Sum,
		Count:   f.hist.Count,
	}
}

// addLat records n observations of sec seconds into the fake's
// cumulative histogram.
func (f *fakeSource) addLat(n int64, sec float64) {
	for i, ub := range metrics.LatencyBuckets {
		if sec <= ub {
			f.hist.Buckets[i] += n
			f.hist.Sum += sec * float64(n)
			f.hist.Count += n
			return
		}
		_ = i
	}
	f.hist.Buckets[len(metrics.LatencyBuckets)] += n
	f.hist.Sum += sec * float64(n)
	f.hist.Count += n
}

// offer drives n Admit calls and returns how many were admitted.
func offer(c *Controller, n int) int {
	admitted := 0
	for i := 0; i < n; i++ {
		if c.Admit() {
			admitted++
		}
	}
	return admitted
}

func TestDisabledWithoutModel(t *testing.T) {
	c := New(Config{Source: newFakeSource()})
	if c.Enabled() || c.State() != Disabled {
		t.Fatalf("no-model controller not disabled: %v", c.State())
	}
	if got := offer(c, 10); got != 10 {
		t.Fatalf("disabled controller shed %d requests", 10-got)
	}
	c.Tick(time.Second) // must be a no-op, not a panic
	s := c.Status()
	if s.Enabled || s.Reason == "" {
		t.Fatalf("disabled status lacks a reason: %+v", s)
	}
}

func TestDisabledForUnmodeledBootMode(t *testing.T) {
	// Boot in workpath mode: the model has no curve for it.
	c := New(Config{Model: testModel(t), Mode: hermes.WorkpathOnly, Source: newFakeSource()})
	if c.Enabled() {
		t.Fatal("controller enabled without a curve for the boot mode")
	}
	if !strings.Contains(c.Status().Reason, "workpath") {
		t.Fatalf("reason does not name the missing mode: %q", c.Status().Reason)
	}
}

func TestDisabledForUnresolvedKnee(t *testing.T) {
	m, err := sweep.ModelFromResult(sweep.Result{
		Workload:   workload.Spec{Kind: "ticks"},
		RatesRPS:   []float64{100},
		KneeFactor: 5,
		Curves: []sweep.Curve{{
			Mode:          "baseline",
			UnloadedP50MS: 2,
			KneeReason:    sweep.KneeReasonSingleRate,
			Points:        []sweep.Point{{OfferedRPS: 100}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{Model: m, Mode: hermes.Baseline, Source: newFakeSource()})
	if c.Enabled() {
		t.Fatal("controller enabled on a null-knee curve")
	}
	if !strings.Contains(c.Status().Reason, "knee") {
		t.Fatalf("reason does not mention the knee: %q", c.Status().Reason)
	}
}

// TestHysteresisNoFlap scripts the exact metrics sequence of a load
// spike and pins every transition: enter needs EnterTicks consecutive
// trips, exit needs ExitTicks calm, and alternating signals flap
// nothing.
func TestHysteresisNoFlap(t *testing.T) {
	src := newFakeSource()
	c := New(Config{
		Model:  testModel(t),
		Mode:   hermes.Baseline, // knee 100 rps / 10 ms
		Source: src,
		// Defaults: EnterTicks 2, ExitTicks 3, CooldownTicks 5.
	})
	if !c.Enabled() || c.State() != Normal {
		t.Fatalf("boot state = %v, want normal", c.State())
	}
	step := func(rps int, latSec float64) State {
		offer(c, rps)
		if latSec > 0 {
			src.addLat(int64(rps), latSec)
		}
		c.Tick(time.Second)
		return c.State()
	}

	// Calm traffic at half the knee.
	for i := 0; i < 3; i++ {
		if st := step(50, 0.002); st != Normal {
			t.Fatalf("calm tick %d: %v", i, st)
		}
	}
	// Alternating spike/calm never reaches EnterTicks=2 in a row.
	for i := 0; i < 4; i++ {
		if st := step(150, 0.002); st != Normal {
			t.Fatalf("single spike flipped state: %v", st)
		}
		if st := step(50, 0.002); st != Normal {
			t.Fatalf("post-spike calm: %v", st)
		}
	}
	// Two consecutive over-knee ticks enter Shedding.
	if st := step(150, 0.030); st != Normal {
		t.Fatalf("first sustained trip should not yet shed: %v", st)
	}
	if st := step(150, 0.030); st != Shedding {
		t.Fatalf("second sustained trip should shed: %v", st)
	}
	if got := offer(c, 10); got != 0 {
		t.Fatalf("shedding admitted %d/10", got)
	}
	c.Tick(time.Second) // absorb the probe traffic above (10 rps, calm): calm streak 1

	// Exit needs ExitTicks=3 consecutive calm ticks; the one above
	// counts, so one more keeps it Shedding and the third recovers.
	if st := step(20, 0.002); st != Shedding {
		t.Fatalf("calm streak 2 should still shed: %v", st)
	}
	if st := step(20, 0.002); st != Recovered {
		t.Fatalf("calm streak 3 should recover: %v", st)
	}
	if got := offer(c, 5); got != 5 {
		t.Fatalf("recovered shed %d/5", 5-got)
	}
	c.Tick(time.Second) // absorb probe; cooldown 1

	// A fresh sustained spike during cooldown re-enters Shedding.
	step(150, 0.030)
	if st := step(150, 0.030); st != Shedding {
		t.Fatalf("sustained spike in cooldown should re-shed: %v", st)
	}
	// Recover again, then let the full cooldown elapse back to Normal.
	for i := 0; i < 3; i++ {
		step(10, 0.002)
	}
	if st := c.State(); st != Recovered {
		t.Fatalf("after 3 calm: %v", st)
	}
	for i := 0; i < 5; i++ {
		step(10, 0.002)
	}
	if st := c.State(); st != Normal {
		t.Fatalf("after cooldown: %v", st)
	}
	s := c.Status()
	if s.Shed == 0 || s.State != "normal" {
		t.Fatalf("status inconsistent after episode: %+v", s)
	}
}

// fakeSwitcher records actuated modes.
type fakeSwitcher struct{ modes []hermes.Mode }

func (f *fakeSwitcher) SetMode(m hermes.Mode) error {
	f.modes = append(f.modes, m)
	return nil
}

func TestModeSwitchActuation(t *testing.T) {
	src := newFakeSource()
	sw := &fakeSwitcher{}
	c := New(Config{
		Model:         testModel(t),
		Mode:          hermes.Baseline,
		Source:        src,
		Switcher:      sw,
		ModeHoldTicks: 3,
	})
	// Low rate: unified ("hermes") is cheaper → switch on first tick.
	offer(c, 50)
	src.addLat(50, 0.002)
	c.Tick(time.Second)
	if len(sw.modes) != 1 || sw.modes[0] != hermes.Unified {
		t.Fatalf("switch calls = %v, want [Unified]", sw.modes)
	}
	s := c.Status()
	if s.Mode != "hermes" || s.ModeSwitches != 1 {
		t.Fatalf("status after switch: %+v", s)
	}
	// Knee bounds must now be the new mode's (200 rps).
	if s.KneeRPS != 200 {
		t.Fatalf("knee after switch = %g, want 200", s.KneeRPS)
	}
	// Hold window: no second switch for ModeHoldTicks ticks even if
	// the optimum changes.
	for i := 0; i < 3; i++ {
		offer(c, 50)
		c.Tick(time.Second)
		if len(sw.modes) != 1 {
			t.Fatalf("switched during hold window at tick %d", i)
		}
	}
}

func TestPrometheusSeries(t *testing.T) {
	c := New(Config{Model: testModel(t), Mode: hermes.Baseline, Source: newFakeSource()})
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hermes_control_enabled 1",
		"hermes_control_state 1",
		"hermes_control_knee_rps 100",
		"hermes_control_knee_latency_ms 10",
		"hermes_control_shed_total 0",
		"hermes_control_mode_switches_total 0",
		"hermes_control_offered_rps",
		"hermes_control_p99_ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

package fault

import (
	"fmt"
	"testing"

	"hermes/internal/core"
	"hermes/internal/units"
)

func TestRegistryNames(t *testing.T) {
	got := Names()
	want := []string{"none", "crash", "failslow", "blip"}
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestResolveAndCanonical(t *testing.T) {
	p, err := Resolve("")
	if err != nil || p.Name != Default {
		t.Fatalf(`Resolve("") = %q, %v; want the %q default`, p.Name, err, Default)
	}
	if _, err := Resolve("quake"); err == nil {
		t.Fatal("unknown plan resolved")
	}
	if c := Canonical(""); c != "" {
		t.Fatalf(`Canonical("") = %q, want ""`, c)
	}
	if c := Canonical(Default); c != "" {
		t.Fatalf("Canonical(%q) = %q, want \"\" — the default plan is fault-free", Default, c)
	}
	if c := Canonical("crash"); c != "crash" {
		t.Fatalf(`Canonical("crash") = %q`, c)
	}
}

func TestCompileErrors(t *testing.T) {
	h := units.Time(30) * units.Millisecond
	if _, err := Compile("quake", 1, 4, h); err == nil {
		t.Fatal("unknown plan compiled")
	}
	if _, err := Compile("crash", 1, 0, h); err == nil {
		t.Fatal("zero machines compiled")
	}
	if _, err := Compile("crash", 1, 4, 0); err == nil {
		t.Fatal("zero horizon compiled")
	}
}

// TestCompileDeterministic: same (plan, seed, machines, horizon) ⇒
// identical schedule; a different seed moves it.
func TestCompileDeterministic(t *testing.T) {
	h := units.Time(30) * units.Millisecond
	for _, name := range Names() {
		a, err := Compile(name, 7, 8, h)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Compile(name, 7, 8, h)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("plan %q not deterministic:\n%+v\nvs\n%+v", name, a, b)
		}
		if name == Default {
			if len(a) != 0 {
				t.Fatalf("plan %q injected %d events", name, len(a))
			}
			continue
		}
		if len(a) == 0 {
			t.Fatalf("plan %q injected nothing on 8 machines", name)
		}
		c, err := Compile(name, 8, 8, h)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", c) {
			t.Fatalf("plan %q ignores the seed", name)
		}
	}
}

// TestCompileWellFormed: every generated schedule passes the cluster's
// own validation — sorted, in-range machines, in-window times, sane
// factors — across a spread of seeds and fleet sizes.
func TestCompileWellFormed(t *testing.T) {
	h := units.Time(30) * units.Millisecond
	for _, name := range Names() {
		for seed := int64(0); seed < 20; seed++ {
			for _, machines := range []int{1, 2, 4, 16} {
				evs, err := Compile(name, seed, machines, h)
				if err != nil {
					t.Fatal(err)
				}
				for i, ev := range evs {
					if ev.Machine < 0 || ev.Machine >= machines {
						t.Fatalf("%s/seed=%d: event %d targets machine %d of %d", name, seed, i, ev.Machine, machines)
					}
					if ev.At <= 0 {
						t.Fatalf("%s/seed=%d: event %d at non-positive time %v", name, seed, i, ev.At)
					}
					if i > 0 && ev.At < evs[i-1].At {
						t.Fatalf("%s/seed=%d: schedule not sorted at %d", name, seed, i)
					}
					switch ev.Kind {
					case core.FaultCrash, core.FaultRejoin, core.FaultRecover:
					case core.FaultSlow:
						if ev.Factor != 0 && ev.Factor <= 1 {
							t.Fatalf("%s/seed=%d: slow factor %v", name, seed, ev.Factor)
						}
					default:
						t.Fatalf("%s/seed=%d: unknown kind %v", name, seed, ev.Kind)
					}
				}
			}
		}
	}
}

// TestCrashPlanSingleMachineRejoins: a one-machine fleet must always
// get its machine back, or the whole tail of every trace is lost.
func TestCrashPlanSingleMachineRejoins(t *testing.T) {
	h := units.Time(30) * units.Millisecond
	for seed := int64(0); seed < 50; seed++ {
		evs, err := Compile("crash", seed, 1, h)
		if err != nil {
			t.Fatal(err)
		}
		var crashes, rejoins int
		for _, ev := range evs {
			switch ev.Kind {
			case core.FaultCrash:
				crashes++
			case core.FaultRejoin:
				rejoins++
			}
		}
		if crashes == 0 || rejoins != crashes {
			t.Fatalf("seed %d: %d crashes, %d rejoins on a single machine", seed, crashes, rejoins)
		}
	}
}

// Package fault is the registry of named, seeded fault plans — the
// chaos counterpart of internal/trace's arrival processes. A plan
// compiles, for a given (seed, fleet size, window), into a sorted
// schedule of core.FaultEvents that the cluster's fault daemon replays
// on the shared virtual timeline; the same (config, seed, trace, plan)
// therefore yields byte-identical outcomes, crashes included.
package fault

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"hermes/internal/core"
	"hermes/internal/units"
)

// Salt is the PCG stream constant every fault plan draws from. It is
// deliberately distinct from trace.Salt so a plan's draws never
// correlate with the arrival schedule generated from the same seed.
const Salt = 0xc2b2ae3d27d4eb4f

// Default is the plan name an empty -faults entry (or config field)
// resolves to. Artifacts normalize it to "" (see Canonical) so the
// fault-free JSON shape is preserved byte-for-byte.
const Default = "none"

// Plan is one registered fault plan.
type Plan struct {
	// Name is the registry key (-faults flag value).
	Name string
	// Desc is a one-line description.
	Desc string
	// Gen draws the fault schedule for a fleet of machines over
	// (0, horizon] from rng. It must consume rng deterministically —
	// the schedule is a function of (seed, machines, horizon) alone.
	// Compile sorts the result, so generation order is free.
	Gen func(rng *rand.Rand, machines int, horizon units.Time) []core.FaultEvent
}

var (
	regMu sync.RWMutex
	plans = map[string]Plan{}
	order []string
)

// Register adds a fault plan to the registry, panicking on a duplicate
// or malformed Plan (registration happens in package init).
func Register(p Plan) {
	if p.Name == "" || p.Gen == nil {
		panic(fmt.Sprintf("fault: Register of malformed plan %+v", p))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := plans[p.Name]; dup {
		panic(fmt.Sprintf("fault: Register called twice for %q", p.Name))
	}
	plans[p.Name] = p
	order = append(order, p.Name)
}

// Lookup finds a registered plan by name.
func Lookup(name string) (Plan, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := plans[name]
	return p, ok
}

// Names lists the registered plan names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Resolve maps a user-supplied plan name ("" = Default) to its
// registered Plan, rejecting unknown names with the registered list.
func Resolve(name string) (Plan, error) {
	if name == "" {
		name = Default
	}
	p, ok := Lookup(name)
	if !ok {
		return Plan{}, fmt.Errorf("fault: unknown fault plan %q (registered: %v)", name, Names())
	}
	return p, nil
}

// Canonical returns the artifact form of a plan name: the default
// (fault-free) plan collapses to "" so pre-chaos artifacts keep their
// byte-exact shape; any other name passes through.
func Canonical(name string) string {
	if name == Default {
		return ""
	}
	return name
}

// Compile resolves a plan and generates its deterministic fault
// schedule for one seed, sorted by (At, Machine) — ready for
// ClusterConfig.Faults or hermes.WithFaults.
func Compile(name string, seed int64, machines int, horizon units.Time) ([]core.FaultEvent, error) {
	p, err := Resolve(name)
	if err != nil {
		return nil, err
	}
	if machines < 1 {
		return nil, fmt.Errorf("fault: plan %q needs at least one machine, got %d", p.Name, machines)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("fault: plan %q needs a positive horizon, got %v", p.Name, horizon)
	}
	rng := rand.New(rand.NewPCG(uint64(seed), Salt))
	evs := p.Gen(rng, machines, horizon)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Machine < evs[j].Machine
	})
	return evs, nil
}

// scale returns fraction f of the horizon as a virtual time.
func scale(horizon units.Time, f float64) units.Time {
	return units.Time(float64(horizon) * f)
}

// quarter returns max(1, n/4) — the victim count of the crash and
// failslow plans.
func quarter(n int) int {
	k := n / 4
	if k < 1 {
		k = 1
	}
	return k
}

func init() {
	Register(Plan{
		Name: "none",
		Desc: "no injected faults — the availability baseline",
		Gen: func(*rand.Rand, int, units.Time) []core.FaultEvent {
			return nil
		},
	})
	Register(Plan{
		Name: "crash",
		Desc: "fail-stop: ~¼ of the fleet crashes mid-window; most victims rejoin after a drawn downtime",
		Gen: func(rng *rand.Rand, machines int, horizon units.Time) []core.FaultEvent {
			var evs []core.FaultEvent
			for _, m := range rng.Perm(machines)[:quarter(machines)] {
				at := scale(horizon, 0.2+0.4*rng.Float64())
				evs = append(evs, core.FaultEvent{At: at, Machine: m, Kind: core.FaultCrash})
				// A single-machine fleet always rejoins — a permanent
				// total outage would just lose the whole tail of the
				// trace; larger fleets lose a victim for good 25% of the
				// time.
				if machines == 1 || rng.Float64() < 0.75 {
					down := scale(horizon, 0.1+0.2*rng.Float64())
					evs = append(evs, core.FaultEvent{At: at + down, Machine: m, Kind: core.FaultRejoin})
				}
			}
			return evs
		},
	})
	Register(Plan{
		Name: "failslow",
		Desc: "stragglers: ~¼ of the fleet runs slow for a long window — lowest-tier pinned, or work inflated 1.5–3×",
		Gen: func(rng *rand.Rand, machines int, horizon units.Time) []core.FaultEvent {
			var evs []core.FaultEvent
			for _, m := range rng.Perm(machines)[:quarter(machines)] {
				at := scale(horizon, 0.2+0.3*rng.Float64())
				dur := scale(horizon, 0.3+0.2*rng.Float64())
				factor := 0.0 // tier pin
				if rng.Float64() < 0.5 {
					factor = 1.5 + 1.5*rng.Float64()
				}
				evs = append(evs,
					core.FaultEvent{At: at, Machine: m, Kind: core.FaultSlow, Factor: factor},
					core.FaultEvent{At: at + dur, Machine: m, Kind: core.FaultRecover})
			}
			return evs
		},
	})
	Register(Plan{
		Name: "blip",
		Desc: "transient stalls: ~½ of the fleet suffers a short 25× slowdown window",
		Gen: func(rng *rand.Rand, machines int, horizon units.Time) []core.FaultEvent {
			k := machines / 2
			if k < 1 {
				k = 1
			}
			var evs []core.FaultEvent
			for _, m := range rng.Perm(machines)[:k] {
				at := scale(horizon, 0.1+0.7*rng.Float64())
				dur := scale(horizon, 0.02+0.03*rng.Float64())
				evs = append(evs,
					core.FaultEvent{At: at, Machine: m, Kind: core.FaultSlow, Factor: 25},
					core.FaultEvent{At: at + dur, Machine: m, Kind: core.FaultRecover})
			}
			return evs
		},
	})
}

package workload

import (
	"fmt"

	"hermes/internal/bench"
	"hermes/internal/hotload"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// The built-in catalog, in presentation order: the synthetic request
// workloads first (ported from the old internal/synth), then the
// trajectory fixpoints (bodies from internal/hotload), then the
// paper's figure benchmarks (internal/bench).
func init() {
	Register(Def{
		Name:     "fib",
		Desc:     "binary fib recursion with serial cutoff; every node accounts work cycles",
		Defaults: Spec{N: 18, Grain: 10, Work: 20_000},
		MaxN:     32,
		Build: func(s Spec) (wl.Task, error) {
			return func(c wl.Ctx) { fib(c, s.N, s.Grain, s.Work, s.MemFrac) }, nil
		},
	})
	Register(Def{
		Name:     "matmul",
		Desc:     "dense N×N multiply parallelized over rows; each element accounts work cycles",
		Defaults: Spec{N: 64, Grain: 8, Work: 1_500, MemFrac: 0.3},
		MaxN:     2048,
		Build:    func(s Spec) (wl.Task, error) { return s.matmul(), nil },
	})
	Register(Def{
		Name:     "ticks",
		Desc:     "flat loop of N independent units of work cycles each — a batch of homogeneous requests",
		Defaults: Spec{N: 256, Grain: 16, Work: 100_000},
		MaxN:     1 << 20,
		Build:    func(s Spec) (wl.Task, error) { return s.ticks(), nil },
	})
	Register(Def{
		Name:     "spawnjoin",
		Desc:     "trajectory fixpoint: N two-way fork-join blocks with no-op bodies (pure scheduler hot path)",
		Defaults: Spec{N: 4096},
		MaxN:     1 << 20,
		Build:    func(s Spec) (wl.Task, error) { return hotload.SpawnJoinLoop(s.N), nil },
	})
	Register(Def{
		Name:     "fibtree",
		Desc:     "trajectory fixpoint: real fib(n) spawn tree with serial cutoff grain, checked against the sequential reference",
		Defaults: Spec{N: hotload.FibN, Grain: hotload.FibCutoff},
		MaxN:     32,
		Build: func(s Spec) (wl.Task, error) {
			want := hotload.SerialFib(s.N)
			out := new(int)
			inner := hotload.Fib(s.N, s.Grain, out)
			return func(c wl.Ctx) {
				inner(c)
				if *out != want {
					panic(fmt.Sprintf("workload: fibtree(%d) = %d, want %d", s.N, *out, want))
				}
			}, nil
		},
	})
	// The figure benchmarks run real computation on a deterministic
	// seeded instance and verify their output inside the task, so a
	// wrong answer fails the job instead of returning silently. The
	// defaults are service-sized (well under the figure-scale inputs
	// the harness uses); MaxN caps requests at figure scale.
	for _, b := range bench.All() {
		Register(Def{
			Name:     b.Name,
			Desc:     b.Desc,
			Defaults: Spec{N: benchDefaultN[b.Name], Seed: 42},
			MaxN:     b.DefaultN,
			Build:    benchBuild(b),
		})
	}
}

// benchDefaultN holds the service-sized default input per figure
// benchmark — small enough that one request completes in milliseconds
// on either backend.
var benchDefaultN = map[string]int{
	"knn":     4_000,
	"ray":     4_000,
	"sort":    100_000,
	"compare": 50_000,
	"hull":    50_000,
}

// benchBuild wraps one figure benchmark as a self-verifying task.
func benchBuild(b *bench.Bench) func(Spec) (wl.Task, error) {
	return func(s Spec) (wl.Task, error) {
		w := b.Build(s.N, s.Seed)
		return func(c wl.Ctx) {
			w.Root(c)
			if w.Check != nil {
				if err := w.Check(); err != nil {
					panic(fmt.Sprintf("workload: %s(n=%d seed=%d) check failed: %v", b.Name, s.N, s.Seed, err))
				}
			}
		}, nil
	}
}

// fib spawns the canonical binary recursion; every node accounts work
// cycles, and subtrees of height <= cutoff run serially on the owning
// worker (the usual Cilk granularity control).
func fib(c wl.Ctx, n, cutoff int, work units.Cycles, memFrac float64) {
	c.WorkMix(work, memFrac)
	if n < 2 {
		return
	}
	if n <= cutoff {
		fibSerial(c, n-1, work, memFrac)
		fibSerial(c, n-2, work, memFrac)
		return
	}
	c.Go(
		func(c wl.Ctx) { fib(c, n-1, cutoff, work, memFrac) },
		func(c wl.Ctx) { fib(c, n-2, cutoff, work, memFrac) },
	)
}

func fibSerial(c wl.Ctx, n int, work units.Cycles, memFrac float64) {
	c.WorkMix(work, memFrac)
	if n < 2 {
		return
	}
	fibSerial(c, n-1, work, memFrac)
	fibSerial(c, n-2, work, memFrac)
}

// matmul models a dense N×N multiply parallelized over rows: each row
// accounts N·work cycles with the spec's memory fraction (dense
// kernels stall on loads, so the default mixes in 30%).
func (s Spec) matmul() wl.Task {
	n, work, memFrac := s.N, s.Work, s.MemFrac
	return func(c wl.Ctx) {
		wl.For(c, 0, n, s.Grain, func(c wl.Ctx, lo, hi int) {
			for range hi - lo {
				c.WorkMix(units.Cycles(n)*work, memFrac)
			}
		})
	}
}

// ticks is a flat loop of N independent units of work cycles each —
// the shape of a batch of homogeneous service requests.
func (s Spec) ticks() wl.Task {
	n, work, memFrac := s.N, s.Work, s.MemFrac
	return func(c wl.Ctx) {
		wl.For(c, 0, n, s.Grain, func(c wl.Ctx, lo, hi int) {
			for range hi - lo {
				c.WorkMix(work, memFrac)
			}
		})
	}
}

package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"hermes/internal/core"
	"hermes/internal/units"
)

// synthKinds are the WorkMix-accounting request workloads (the old
// internal/synth trio) whose defaults must fill every sizing knob.
var synthKinds = []string{"fib", "matmul", "ticks"}

func TestDefaultsFilled(t *testing.T) {
	for _, kind := range synthKinds {
		s, err := Spec{Kind: kind}.Validate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if s.N == 0 || s.Grain == 0 || s.Work == 0 {
			t.Fatalf("%s: defaults not filled: %+v", kind, s)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		spec Spec
		frag string
	}{
		{Spec{}, "missing workload"},
		{Spec{Kind: "quicksort"}, "unknown workload"},
		{Spec{Kind: "fib", N: 99}, "exceeds max"},
		{Spec{Kind: "matmul", N: 100000}, "exceeds max"},
		{Spec{Kind: "ticks", N: 1 << 24}, "exceeds max"},
		{Spec{Kind: "ticks", N: -1}, "must be positive"},
		{Spec{Kind: "ticks", Grain: -2}, "must be positive"},
		{Spec{Kind: "ticks", Work: -5}, "work must be"},
		{Spec{Kind: "ticks", Work: 2_000_000_000}, "work must be"},
		{Spec{Kind: "ticks", MemFrac: 1.5}, "memfrac"},
	}
	for _, c := range cases {
		if _, err := c.spec.Validate(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.spec, err, c.frag)
		}
	}
}

// TestUnknownListsRegistered pins the operator experience the serving
// and bench layers rely on: a rejected name tells you what IS
// registered.
func TestUnknownListsRegistered(t *testing.T) {
	_, err := Spec{Kind: "nope"}.Validate()
	if err == nil {
		t.Fatal("unknown workload validated")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered workload %q", err, name)
		}
	}
}

// TestCatalogShape is the registry contract: every entry carries a
// description, Names/All agree on order, and each entry's defaults
// validate without edits — a catalog row a client can submit verbatim.
func TestCatalogShape(t *testing.T) {
	names := Names()
	all := All()
	if len(names) == 0 || len(names) != len(all) {
		t.Fatalf("catalog inconsistent: %d names, %d defs", len(names), len(all))
	}
	for i, d := range all {
		if d.Name != names[i] {
			t.Errorf("All()[%d] = %q, Names()[%d] = %q", i, d.Name, i, names[i])
		}
		if d.Desc == "" {
			t.Errorf("%s: no description", d.Name)
		}
		if _, ok := Lookup(d.Name); !ok {
			t.Errorf("%s: Lookup failed", d.Name)
		}
		s, err := Spec{Kind: d.Name}.Validate()
		if err != nil {
			t.Errorf("%s: defaults do not validate: %v", d.Name, err)
		} else if s.N < 1 {
			t.Errorf("%s: effective default n = %d", d.Name, s.N)
		}
	}
}

// smallN keeps the contract runs fast: service-default inputs are
// milliseconds each, but across the whole catalog × repeats a smaller
// instance keeps the suite snappy while still exercising real spawns.
func smallN(kind string) int {
	switch kind {
	case "fib":
		return 12
	case "fibtree":
		return 14
	case "matmul":
		return 16
	case "sort", "compare", "hull":
		return 2_000
	case "knn", "ray":
		return 500
	default:
		return 32
	}
}

// TestWorkloadsRunOnSimulator compiles every catalog entry and runs it
// to completion on the deterministic backend, checking the accounted
// work landed (tasks executed, virtual time and energy charged). The
// self-verifying workloads (fibtree, the figure benchmarks) panic on a
// wrong answer, so a silent miscomputation fails here too.
func TestWorkloadsRunOnSimulator(t *testing.T) {
	for _, kind := range Names() {
		task, _, err := Spec{Kind: kind, N: smallN(kind)}.Task()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		r := core.Run(core.Config{Workers: 4}, task)
		if r.Tasks == 0 || r.Span <= 0 || r.EnergyJ <= 0 {
			t.Errorf("%s: degenerate run: tasks=%d span=%v energy=%g", kind, r.Tasks, r.Span, r.EnergyJ)
		}
	}
}

// TestFibSpawnShape asserts fib produces the irregular spawn tree the
// stealing benchmarks rely on: parallel spawns above the cutoff only.
func TestFibSpawnShape(t *testing.T) {
	task, _, err := Spec{Kind: "fib", N: 14, Grain: 8, Work: 100}.Task()
	if err != nil {
		t.Fatal(err)
	}
	r := core.Run(core.Config{Workers: 2}, task)
	if r.Spawns == 0 {
		t.Fatal("fib above cutoff spawned nothing")
	}
	sTask, _, err := Spec{Kind: "fib", N: 14, Grain: 14, Work: 100}.Task()
	if err != nil {
		t.Fatal(err)
	}
	sr := core.Run(core.Config{Workers: 2}, sTask)
	if sr.Spawns != 0 {
		t.Fatalf("fib at full cutoff should run serially, spawned %d", sr.Spawns)
	}
	if sr.Tasks != 1 {
		t.Fatalf("serial fib ran %d tasks, want 1", sr.Tasks)
	}
}

// TestDeterministicOnSim is the catalog-wide reproducibility contract:
// for EVERY registered workload, two sim runs of the same spec produce
// byte-identical reports (marshalled and compared as JSON, so any new
// Report field joins the pin automatically).
func TestDeterministicOnSim(t *testing.T) {
	for _, kind := range Names() {
		run := func() []byte {
			task, _, err := Spec{Kind: kind, N: smallN(kind)}.Task()
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			rep := core.Run(core.Config{Workers: 4, Seed: 7}, task)
			data, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			return data
		}
		a, b := run(), run()
		if string(a) != string(b) {
			t.Errorf("%s: sim runs diverged:\n%s\n%s", kind, a, b)
		}
	}
}

// TestSizedClamps pins the heavy-tail lever: Sized scales accounted
// work within [1, maxWork], leaves size-1 and non-accounting specs
// untouched, and never mutates anything but Work.
func TestSizedClamps(t *testing.T) {
	base := Spec{Kind: "ticks", N: 8, Grain: 2, Work: 1_000}
	if got := base.Sized(1); got != base {
		t.Errorf("Sized(1) changed the spec: %+v", got)
	}
	if got := base.Sized(2.5).Work; got != 2_500 {
		t.Errorf("Sized(2.5) work = %d, want 2500", got)
	}
	if got := base.Sized(1e12).Work; got != maxWork {
		t.Errorf("Sized(huge) work = %d, want clamp to %d", got, int64(maxWork))
	}
	if got := base.Sized(1e-9).Work; got != 1 {
		t.Errorf("Sized(tiny) work = %d, want clamp to 1", got)
	}
	noAccounting := Spec{Kind: "sort", N: 100}
	if got := noAccounting.Sized(50); got != noAccounting {
		t.Errorf("Sized on Work=0 spec changed it: %+v", got)
	}
}

func TestWorkDefaultsScaleSanely(t *testing.T) {
	// Guard the service sizing: a default job must stay under ~1 s of
	// accounted serial work so request latencies remain service-shaped.
	for _, kind := range synthKinds {
		spec, err := Spec{Kind: kind}.Validate()
		if err != nil {
			t.Fatal(err)
		}
		units_ := int64(0)
		switch kind {
		case "fib":
			units_ = fibNodes(spec.N)
		case "matmul":
			units_ = int64(spec.N) * int64(spec.N)
		case "ticks":
			units_ = int64(spec.N)
		}
		serial := units.Cycles(units_) * spec.Work
		if sec := serial.DurationAt(2400 * units.MHz).Seconds(); sec > 1 {
			t.Errorf("%s default = %.2fs serial at 2.4GHz; too heavy for a service default", kind, sec)
		}
	}
}

func fibNodes(n int) int64 {
	if n < 2 {
		return 1
	}
	return 1 + fibNodes(n-1) + fibNodes(n-2)
}

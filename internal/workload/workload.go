package workload

import (
	"fmt"
	"math"
	"sync"

	"hermes/internal/units"
	"hermes/internal/wl"
)

// Spec parameterizes one job of a registered workload. The zero value
// of every field except Kind picks the workload's registered default
// (sized for service requests — milliseconds, not minutes); Validate
// fills them in and bounds the rest so an HTTP client cannot request
// an effectively unbounded job.
type Spec struct {
	// Kind names a registered workload (see Names).
	Kind string `json:"workload"`
	// N scales the problem: fib argument, matrix dimension, tick
	// count, fork-join ops, input elements.
	N int `json:"n,omitempty"`
	// Grain bounds task granularity where the workload has one: fib
	// serial cutoff, matmul rows per task, ticks per task. Workloads
	// with internal granularity control (the bench kernels) ignore it.
	Grain int `json:"grain,omitempty"`
	// Work is the accounted cost in cycles of one unit for the
	// WorkMix-accounting workloads; 0 for workloads that run real
	// computation instead of accounting synthetic cycles.
	Work units.Cycles `json:"work,omitempty"`
	// MemFrac is the memory-bound (frequency-independent) fraction of
	// Work, 0..1.
	MemFrac float64 `json:"memfrac,omitempty"`
	// Seed derives deterministic inputs for workloads that build a
	// pseudo-random instance (the bench kernels). 0 picks the
	// registered default; WorkMix workloads ignore it.
	Seed int64 `json:"seed,omitempty"`
}

// maxWork bounds the accounted cycles per unit: 1e9 ≈ 0.4 s at
// 2.4 GHz, protecting the service from unbounded requests.
const maxWork = 1_000_000_000

// Def is one registered workload definition.
type Def struct {
	// Name is the catalog key clients submit ({"workload": Name}).
	Name string
	// Desc is a one-line description for the GET /workloads catalog.
	Desc string
	// Defaults fill the zero fields of an incoming Spec. MemFrac has
	// no in-band zero marker, so its default applies only when Work
	// was also left unset (the common "just give me a matmul"
	// request).
	Defaults Spec
	// MaxN bounds Spec.N (0 = unbounded).
	MaxN int
	// Build compiles a validated spec into a runnable root task. It
	// must be deterministic in the spec: any randomness derives from
	// Spec.Seed, never from global state.
	Build func(Spec) (wl.Task, error)
}

var (
	regMu sync.RWMutex
	defs  = map[string]Def{}
	order []string
)

// Register adds a workload definition to the catalog. It panics on a
// duplicate or malformed Def — registration happens in package init,
// where a bad catalog should stop the program, not limp.
func Register(d Def) {
	if d.Name == "" || d.Build == nil {
		panic(fmt.Sprintf("workload: Register of malformed def %+v", d))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := defs[d.Name]; dup {
		panic(fmt.Sprintf("workload: Register called twice for %q", d.Name))
	}
	defs[d.Name] = d
	order = append(order, d.Name)
}

// Lookup finds a registered workload by name.
func Lookup(name string) (Def, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	d, ok := defs[name]
	return d, ok
}

// Names lists the registered workload names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// All returns every registered definition in registration order.
func All() []Def {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Def, 0, len(order))
	for _, name := range order {
		out = append(out, defs[name])
	}
	return out
}

// Validate fills the workload's registered defaults and rejects
// out-of-range parameters, returning the effective spec.
func (s Spec) Validate() (Spec, error) {
	if s.Kind == "" {
		return s, fmt.Errorf("workload: missing workload kind (registered: %v)", Names())
	}
	d, ok := Lookup(s.Kind)
	if !ok {
		return s, fmt.Errorf("workload: unknown workload %q (registered: %v)", s.Kind, Names())
	}
	s = s.withDefaults(d.Defaults)
	if d.MaxN > 0 && s.N > d.MaxN {
		return s, fmt.Errorf("workload: %s n=%d exceeds max %d", s.Kind, s.N, d.MaxN)
	}
	if s.N < 1 {
		return s, fmt.Errorf("workload: n must be positive, got %d", s.N)
	}
	if s.Grain < 0 {
		return s, fmt.Errorf("workload: grain must be positive, got %d", s.Grain)
	}
	if s.Work < 0 || s.Work > maxWork {
		return s, fmt.Errorf("workload: work must be in [0, %d], got %d", int64(maxWork), s.Work)
	}
	if s.MemFrac < 0 || s.MemFrac > 1 {
		return s, fmt.Errorf("workload: memfrac must be in [0, 1], got %g", s.MemFrac)
	}
	return s, nil
}

// withDefaults fills zero fields from the def's defaults. MemFrac's
// default applies only when Work was also unset: a caller giving
// explicit work keeps full control of the mix.
func (s Spec) withDefaults(d Spec) Spec {
	if s.N == 0 {
		s.N = d.N
	}
	if s.Grain == 0 {
		s.Grain = d.Grain
	}
	if s.Work == 0 {
		s.Work = d.Work
		if s.MemFrac == 0 {
			s.MemFrac = d.MemFrac
		}
	}
	if s.Seed == 0 {
		s.Seed = d.Seed
	}
	return s
}

// Task validates the spec and compiles it into a runnable root task,
// returning the effective (defaults-filled) spec alongside so callers
// report exactly what will run without validating twice.
func (s Spec) Task() (wl.Task, Spec, error) {
	s, err := s.Validate()
	if err != nil {
		return nil, s, err
	}
	d, _ := Lookup(s.Kind)
	task, err := d.Build(s)
	if err != nil {
		return nil, s, err
	}
	return task, s, nil
}

// Sized returns the spec with its accounted work scaled by size
// (size 1 = unchanged), clamped to the service bound — the lever
// heavy-tailed arrival processes pull per request. Workloads that do
// no cycle accounting (Work 0) have no size lever and pass through
// unchanged.
func (s Spec) Sized(size float64) Spec {
	if size == 1 || s.Work == 0 {
		return s
	}
	w := units.Cycles(math.Round(float64(s.Work) * size))
	if w < 1 {
		w = 1
	}
	if w > maxWork {
		w = maxWork
	}
	s.Work = w
	return s
}

// SizedTask validates the spec and compiles it with its accounted
// work scaled by size — the builder shape internal/trace processes
// consume, one task per arrival.
func (s Spec) SizedTask(size float64) (wl.Task, error) {
	s, err := s.Validate()
	if err != nil {
		return nil, err
	}
	d, _ := Lookup(s.Kind)
	return d.Build(s.Sized(size))
}

// String renders the spec compactly for logs.
func (s Spec) String() string {
	out := fmt.Sprintf("%s(n=%d grain=%d work=%d memfrac=%g", s.Kind, s.N, s.Grain, s.Work, s.MemFrac)
	if s.Seed != 0 {
		out += fmt.Sprintf(" seed=%d", s.Seed)
	}
	return out + ")"
}

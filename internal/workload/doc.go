// Package workload is the single catalog of named, parameterized
// workloads behind every consumer of work in hermes: the serving
// layer (POST /jobs, GET /workloads), the load generator and sweep
// (hermes-bench -workload), and the figure harness.
//
// A workload is registered once as a Def — a name, a one-line
// description, parameter defaults and bounds, and a Build function
// compiling a validated Spec into a runnable wl.Task — and is then
// instantly servable, sweepable and benchable by name. The built-in
// catalog carries three families:
//
//   - fib, matmul, ticks: the synthetic HTTP request workloads
//     (accounted WorkMix cycles, service-sized defaults).
//   - spawnjoin, fibtree: the scheduler hot-path fixpoints the perf
//     trajectory is measured on, bodies from internal/hotload.
//   - knn, ray, sort, compare, hull: the paper's PBBS-style figure
//     benchmarks from internal/bench, self-verifying against their
//     sequential references.
//
// Spec is the wire type: its JSON shape ("workload", "n", "grain",
// "work", "memfrac", "seed" — all but the kind omitted when zero) is
// embedded in sweep artifacts and served over HTTP, so new fields
// must be omitempty and absent in the default path to keep existing
// artifacts byte-stable.
//
// The determinism contract: Build must return a task whose behaviour
// depends only on the validated Spec — any randomness is derived from
// Spec.Seed, never from global state — so a Sim-backend run of any
// registered workload is byte-identical for a fixed (spec, config,
// seed). docs/workloads.md describes the contract and how to add a
// workload.
package workload

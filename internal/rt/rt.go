package rt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/deque"
	"hermes/internal/job"
	"hermes/internal/meter"
	"hermes/internal/obs"
	"hermes/internal/power"
	"hermes/internal/tempo"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("rt: executor closed")

// ErrNilTask is returned by Submit for a nil root task.
var ErrNilTask = errors.New("rt: nil root task")

// injectCap bounds the submission queue; Submit blocks (or honours
// its context) once this many root jobs await pickup.
const injectCap = 4096

// freeListCap bounds each worker's task and block free lists: enough
// to keep steady-state spawn/join allocation-free at any realistic
// fork-join depth without pinning unbounded garbage.
const freeListCap = 256

// task is one deque item: a workload closure, the fork-join block it
// belongs to, and the job it is accounted against. Tasks are pooled
// per worker: a worker that executes a task (its own or stolen)
// recycles it into its own free list.
type task struct {
	fn  wl.Task
	blk *block
	job *jobState
}

// block tracks one fork-join block's outstanding tasks. done is a
// one-token buffered channel: the decrement that reaches zero sends
// the token (never blocking), and the joiner waits on it. Token
// semantics (instead of close) let blocks be pooled: a stale token
// from a previous generation is drained on reuse, and a late sender
// racing the recycle at worst produces one spurious wake, which the
// join loop's pending re-check absorbs.
//
// waiting gates the token: the common case — the owner drains its own
// block without ever sleeping — must not pay a channel operation per
// task. A joiner announces itself (waiting=true) before re-checking
// pending and sleeping; a decrementer that reaches zero signals only
// if a waiter is announced. Sequentially consistent atomics make the
// handshake lossless: either the decrementer sees the announcement
// and signals, or the joiner's re-check sees pending==0 and never
// sleeps.
type block struct {
	pending atomic.Int64
	waiting atomic.Bool
	done    chan struct{}
}

// signal delivers the block's completion token, non-blocking.
func (b *block) signal() {
	select {
	case b.done <- struct{}{}:
	default:
	}
}

// jobWCounts is one worker's private slice of a job's statistics:
// plain fields, written only by that worker, folded into the report
// after the job's fork-join structure has fully drained (the block
// pending-counter chain orders every write before the fold). Padded
// so two workers serving the same job never share a cache line.
type jobWCounts struct {
	tasks, spawns, steals int64
	busyNS                int64
	_                     [32]byte
}

// jobState is the executor-side record of one submitted job.
type jobState struct {
	id      int64
	ctx     context.Context
	j       *job.Job
	rootBlk *block
	start   time.Time
	snap    poolSnap
	// class is the job's service class: carried into the Report (and
	// so into per-class metrics), never scheduled on — this executor's
	// channel intake is inherently FIFO.
	class core.Class

	cancelled atomic.Bool
	// interrupted records that cancellation actually preempted work
	// (as opposed to the context merely expiring after the job
	// finished); only then does the job complete with ctx's error.
	interrupted atomic.Bool
	// execStart is the monotonic offset (nanoseconds since executor
	// start, 0 = never picked up) when a worker first ran one of the
	// job's tasks: Span measures from here, Sojourn from submission,
	// so Sojourn − Span is queueing delay — the same contract as the
	// Sim pool. Monotonic offsets keep Span immune to wall-clock
	// steps.
	execStart atomic.Int64
	// perW holds each worker's exact task/spawn/steal counts and
	// busy-nanoseconds for this job (the energy-attribution weight),
	// written lock-free by the owning worker.
	perW []jobWCounts

	failMu  sync.Mutex
	failErr error // first task panic, reported from Wait
}

// fail records the job's first task panic and drains the rest of the
// job like a cancellation.
func (js *jobState) fail(err error) {
	js.failMu.Lock()
	if js.failErr == nil {
		js.failErr = err
	}
	js.failMu.Unlock()
	js.cancelled.Store(true)
}

// taskErr returns the job's recorded task panic, if any.
func (js *jobState) taskErr() error {
	js.failMu.Lock()
	defer js.failMu.Unlock()
	return js.failErr
}

// poolSnap is a consistent copy of the pool-wide accumulators, taken
// at job start and completion; a job's report is the delta.
type poolSnap struct {
	joules                 float64
	busy, spin, idle, slow units.Time
	freqBusy               map[units.Freq]units.Time
	perWorker              []core.WorkerStats
	failedSteals           int64
	tempoSwitches          int64
	dvfsCommits            int64
}

type worker struct {
	e   *Exec
	id  int
	dq  deque.Queue[*task]
	rng rngState

	node    tempo.Node[*worker]
	th      *tempo.Thresholds
	wpLevel int
	backoff time.Duration

	// lastState shadows the published core state so the owner can
	// skip the accounting transition when the state is unchanged (the
	// common pop→run→pop chain stays Busy throughout). Only the
	// owning worker changes its state, so the shadow needs no lock.
	lastState cpu.CoreState
	// curFreq publishes the worker's tempo frequency for lock-free
	// reads on the Work hot path. Only retuneLocked (under tempoMu,
	// for this worker or a victim) writes it.
	curFreq atomic.Int64
	// reqFreq is the last frequency retuneLocked committed; tempoMu
	// guards it.
	reqFreq units.Freq
	// jsSinceNS marks (in monotonic ns since executor start) when the
	// worker last switched its accounting context (cur.js): the
	// contiguous interval since then is the current job's busy time.
	// Flushed by switchJob at job switches and top-level frame exits
	// only, so a run of same-job tasks costs zero clock reads at task
	// boundaries. Owner-only.
	jsSinceNS int64

	// acct is the worker's lock-free accounting cell (see acct.go).
	acct acct

	// freeTasks and freeBlocks recycle deque items and fork-join
	// blocks: owner-only, capacity-bounded, never grown past their
	// preallocated capacity.
	freeTasks  []*task
	freeBlocks []*block
	// idleTimer is the reusable backoff timer for idleWait — one
	// timer per worker, Reset per cycle, instead of an allocation on
	// every idle loop.
	idleTimer *time.Timer

	// cur is the worker's reusable task context: runTask points
	// cur.js at the running job (save/restore around nested frames)
	// and hands tasks curIface, so entering a task never boxes a new
	// interface value.
	cur      wctx
	curIface wl.Ctx
}

// rngState is a tiny splitmix64 PRNG: victim selection needs speed,
// not quality, and each worker owns its own state (no locking).
type rngState uint64

func (r *rngState) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rngState) intn(n int) int { return int(r.next() % uint64(n)) }

// Exec is a persistent real-concurrency worker pool serving submitted
// jobs. All methods are safe for concurrent use.
type Exec struct {
	cfg   core.Config
	model *power.Model

	// mode is the live tempo mode, read by the scheduling hot paths via
	// modeNow and replaced by SetMode: cfg.Mode is only the boot value.
	// Hot paths may pre-filter on a mode that SetMode concurrently
	// replaces; the locked tempo sections tolerate that (a stale
	// decision at worst retunes a worker once more), and SetMode's
	// reset under tempoMu restores the target mode's invariants.
	mode atomic.Int32

	workers []*worker
	injectq chan *task
	closeCh chan struct{}
	start   time.Time

	// watts[state-1][fi] is the modeled per-core draw for a worker in
	// that state at tempo frequency cfg.Freqs[fi]; baseWatts is the
	// constant machine floor (uncore per package plus the power-gated
	// draw of cores no worker occupies). Together with the per-worker
	// residency matrices they yield the exact integrated machine
	// energy without any global meter lock.
	watts     [3][acctFreqCap]float64
	baseWatts float64

	// tempoMu serializes all tempo state (immediacy list, levels,
	// thresholds, frequency votes). The hot path pre-filters through
	// the thresholds' lock-free published bounds, so this lock is
	// taken only when a tier crossing is actually possible, on steals
	// (already slow path), and by the profiler.
	tempoMu sync.Mutex
	prof    *tempo.Profiler

	tempoSwitches atomic.Int64
	dvfsCommits   atomic.Int64

	active atomic.Int64 // jobs submitted and not yet completed
	nextID atomic.Int64

	submitMu sync.Mutex
	closed   bool
	jobWG    sync.WaitGroup
	workerWG sync.WaitGroup
}

// nowNS is the executor's monotonic clock: nanoseconds since start.
func (e *Exec) nowNS() int64 { return time.Since(e.start).Nanoseconds() }

// newDeque instantiates the configured deque implementation;
// DequeAuto resolves to Chase–Lev here (real thieves contend, so the
// steal path must not serialize the pool).
func newDeque(kind core.DequeKind) deque.Queue[*task] {
	if kind == core.DequeTHE {
		return deque.New[*task](64)
	}
	return deque.NewChaseLev[task](64)
}

// NewExec validates cfg, starts the worker pool and returns the
// executor. The pool idles (halted cores, no modeled energy draw)
// until jobs arrive. An unset worker count defaults to
// min(GOMAXPROCS, clock domains) — unlike the simulator's
// one-per-domain default, real goroutine workers should not
// oversubscribe the host.
func NewExec(cfg core.Config) (*Exec, error) {
	if cfg.Workers == 0 {
		spec := cfg.Spec
		if spec == nil {
			spec = cpu.SystemA()
		}
		cfg.Workers = runtime.GOMAXPROCS(0)
		if d := spec.Domains(); cfg.Workers > d {
			cfg.Workers = d
		}
	}
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Dispatch != core.DispatchFIFO {
		return nil, fmt.Errorf("rt: dispatch policy %v needs the Sim backend (this executor's intake is FIFO)", cfg.Dispatch)
	}
	if cfg.PreemptQuantum != 0 {
		return nil, fmt.Errorf("rt: preemption quantum needs the Sim backend")
	}
	if len(cfg.Freqs) > acctFreqCap {
		return nil, fmt.Errorf("rt: at most %d tempo frequencies supported, got %d", acctFreqCap, len(cfg.Freqs))
	}
	// Workers are always statically pinned here; reflect that in the
	// config (and so in every report) rather than echoing a Dynamic
	// request this executor does not model. Likewise resolve the
	// deque choice so Config reports what actually runs.
	cfg.Scheduling = core.Static
	if cfg.Deque == core.DequeAuto {
		cfg.Deque = core.DequeChaseLev
	}
	e := &Exec{
		cfg:     cfg,
		model:   power.NewModel(cfg.Spec),
		injectq: make(chan *task, injectCap),
		closeCh: make(chan struct{}),
		start:   time.Now(),
		prof:    tempo.NewProfiler(cfg.ProfileWindow),
	}
	e.mode.Store(int32(cfg.Mode))
	for st := cpu.IdleHalt; st <= cpu.Busy; st++ {
		for fi, f := range cfg.Freqs {
			e.watts[st-1][fi] = e.model.CoreWatts(st, f)
		}
	}
	p := e.model.P
	e.baseWatts = p.UncoreW*float64(cfg.Spec.Packages) +
		p.UnusedW*float64(cfg.Spec.Cores-cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			e:          e,
			id:         i,
			dq:         newDeque(cfg.Deque),
			rng:        rngState(cfg.Seed*7_919 + int64(i) + 1),
			th:         tempo.NewThresholds(cfg.K, cfg.InitialAvgDeque),
			lastState:  cpu.IdleHalt,
			reqFreq:    cfg.Freqs[0],
			freeTasks:  make([]*task, 0, freeListCap),
			freeBlocks: make([]*block, 0, freeListCap),
		}
		w.node.Val = w
		w.cur.w = w
		w.curIface = &w.cur
		w.curFreq.Store(int64(cfg.Freqs[0]))
		w.acct.word.Store(packAcct(cpu.IdleHalt, 0, 0))
		e.workers = append(e.workers, w)
	}
	for _, w := range e.workers {
		e.workerWG.Add(1)
		go w.loop()
	}
	// The profiler always runs (cheap per tick) so a later SetMode into
	// a workload-sensitive mode finds live deque-size averages instead
	// of a cold window.
	e.workerWG.Add(1)
	go e.profLoop()
	if cfg.Observer != nil {
		e.workerWG.Add(1)
		go e.meterLoop()
	}
	return e, nil
}

// modeNow returns the live tempo mode (boot value until SetMode
// replaces it).
func (e *Exec) modeNow() core.Mode { return core.Mode(e.mode.Load()) }

// Config returns the validated configuration the pool runs with
// (defaults filled in), with Mode reflecting any live SetMode switch.
func (e *Exec) Config() core.Config {
	cfg := e.cfg
	cfg.Mode = e.modeNow()
	return cfg
}

// SetMode switches the pool's tempo mode while it serves traffic. The
// switch resets all tempo state to the target mode's boot invariants —
// immediacy list emptied, workpath levels zeroed, workload tiers back
// to the top — so every worker restarts at full tempo and the new
// mode's control law takes over from a clean slate (jobs in flight
// keep running throughout; only the DVFS control law changes).
// Switching into a tempo-controlled mode requires the ≥2-frequency
// ladder such a mode would need at construction.
func (e *Exec) SetMode(m core.Mode) error {
	if m > core.Unified {
		return fmt.Errorf("rt: unknown mode %d", m)
	}
	if m != core.Baseline && len(e.cfg.Freqs) < 2 {
		return fmt.Errorf("rt: mode %v needs at least 2 tempo frequencies, pool has %d", m, len(e.cfg.Freqs))
	}
	var evs []obs.Event
	e.tempoMu.Lock()
	if core.Mode(e.mode.Load()) == m {
		e.tempoMu.Unlock()
		return nil
	}
	e.mode.Store(int32(m))
	for _, w := range e.workers {
		w.node.Unlink()
		w.wpLevel = 0
		w.th.SetTier(w.th.K())
		w.retuneLocked(&evs)
	}
	e.tempoMu.Unlock()
	e.emitAll(evs)
	return nil
}

// Submit enqueues root as a new job multiplexed over the shared pool
// and returns its handle as soon as the job is queued; if the intake
// queue is full (injectCap root jobs awaiting pickup) Submit blocks
// until space frees or ctx is cancelled — natural backpressure for a
// saturated pool. The job observes ctx: once ctx is cancelled the
// scheduler stops executing the job's task bodies at spawn and steal
// boundaries, drains its fork-join structure, and completes the job
// with ctx's error.
func (e *Exec) Submit(ctx context.Context, root wl.Task) (*job.Job, error) {
	return e.SubmitClass(ctx, root, core.Class{})
}

// SubmitClass is Submit with an explicit service class: the class is
// recorded on the job and echoed in its Report (per-class metrics,
// tenant filters). The channel intake stays FIFO regardless — ranked
// dispatch is a Sim-backend capability, rejected at NewExec.
func (e *Exec) SubmitClass(ctx context.Context, root wl.Task, class core.Class) (*job.Job, error) {
	if root == nil {
		return nil, ErrNilTask
	}
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.submitMu.Lock()
	if e.closed {
		e.submitMu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		// Already cancelled: never enters the pool, matching the Sim
		// backend's refusal to start a cancelled job (including its
		// job-lifecycle telemetry).
		id := e.nextID.Add(1)
		e.submitMu.Unlock()
		j := job.New(id)
		e.emit(obs.Event{Kind: obs.JobStart, Job: id, Worker: -1, Victim: -1})
		e.emit(obs.Event{Kind: obs.JobDone, Job: id, Worker: -1, Victim: -1})
		j.Finish(core.Report{}, err)
		return j, nil
	}
	js := &jobState{
		id:      e.nextID.Add(1),
		ctx:     ctx,
		rootBlk: &block{done: make(chan struct{}, 1)},
		perW:    make([]jobWCounts, len(e.workers)),
		class:   class,
	}
	js.j = job.New(js.id)
	// watch always waits on the root block, so announce its waiter up
	// front: the final decrement will signal the token.
	js.rootBlk.waiting.Store(true)
	js.rootBlk.pending.Store(1)
	e.active.Add(1)
	e.jobWG.Add(1)
	e.submitMu.Unlock()

	// Baseline snapshot outside submitMu: it folds per-worker cells,
	// and concurrent submitters need not serialize behind that. The
	// job is not yet enqueued, so the baseline still precedes all of
	// its own activity.
	js.snap = e.snapshot()
	js.start = time.Now()
	e.emit(obs.Event{Kind: obs.JobStart, Job: js.id, Worker: -1, Victim: -1})
	go e.watch(js)
	select {
	case e.injectq <- &task{fn: root, blk: js.rootBlk, job: js}:
	case <-ctx.Done():
		// Cancelled before any worker picked the job up: it never
		// entered the pool, so drain its root block directly. This is
		// a genuine interruption even though watch may find the block
		// already signalled.
		js.interrupted.Store(true)
		js.cancelled.Store(true)
		if js.rootBlk.pending.Add(-1) == 0 {
			js.rootBlk.signal()
		}
	}
	return js.j, nil
}

// Close rejects further submissions, waits for every submitted job to
// complete, then stops the workers. It is safe to call from multiple
// goroutines; every call returns only once the pool has fully shut
// down.
func (e *Exec) Close() error {
	e.submitMu.Lock()
	first := !e.closed
	e.closed = true
	e.submitMu.Unlock()
	if first {
		e.jobWG.Wait()
		close(e.closeCh)
	}
	// Concurrent or repeated closers block here until the workers
	// (released by the first closer) have all exited.
	e.workerWG.Wait()
	return nil
}

// watch drives one job's lifecycle: flag cancellation the moment its
// context fires, wait for the fork-join structure to drain, then
// assemble the per-job report from pool deltas. A job whose work
// completed before cancellation took effect reports success — the
// context error is returned only when the run was actually
// interrupted (a task panic beats both).
func (e *Exec) watch(js *jobState) {
	defer e.jobWG.Done()
	select {
	case <-js.ctx.Done():
		// Flag cancellation and wait for the drain. interrupted is
		// set only at the sites that actually skip or cut work short,
		// so a job whose tasks all completed anyway still reports
		// success even if its context expired at the finish line.
		js.cancelled.Store(true)
		<-js.rootBlk.done
	case <-js.rootBlk.done:
	}
	end := e.snapshot()
	r := e.buildReport(js, end)
	e.active.Add(-1)
	e.emit(obs.Event{Kind: obs.JobDone, Job: js.id, Worker: -1, Victim: -1,
		Energy: r.EnergyJ, Sojourn: r.Sojourn})
	err := js.taskErr()
	if err == nil && js.interrupted.Load() {
		err = js.ctx.Err()
	}
	js.j.Finish(r, err)
}

// Run executes root as a single job on a fresh pool and tears the
// pool down: the one-shot convenience entry, and the shape the old
// rt.Run API had.
func Run(cfg core.Config, root wl.Task) (core.Report, error) {
	e, err := NewExec(cfg)
	if err != nil {
		return core.Report{}, err
	}
	defer e.Close()
	j, err := e.Submit(context.Background(), root)
	if err != nil {
		return core.Report{}, err
	}
	return j.Wait()
}

// snapshot folds every worker's accounting cell into a consistent
// copy of the pool accumulators: residency by state and frequency,
// per-worker stats, and the machine's exact integrated energy. No
// lock is taken — each cell is read through its seqlock — so
// snapshots never stall the pool.
func (e *Exec) snapshot() poolSnap {
	s := poolSnap{
		freqBusy:      map[units.Freq]units.Time{},
		perWorker:     make([]core.WorkerStats, len(e.workers)),
		tempoSwitches: e.tempoSwitches.Load(),
		dvfsCommits:   e.dvfsCommits.Load(),
	}
	nf := len(e.cfg.Freqs)
	var coreJ float64
	for i, w := range e.workers {
		f := e.foldAcct(&w.acct)
		coreJ += e.cellJoules(&f)
		pw := &s.perWorker[i]
		for st := 0; st < 3; st++ {
			row := st * acctFreqCap
			for fi := 0; fi < nf; fi++ {
				ns := f.res[row+fi]
				if ns == 0 {
					continue
				}
				dt := units.Time(ns) * units.Nanosecond
				switch cpu.CoreState(st + 1) {
				case cpu.Busy:
					s.busy += dt
					s.freqBusy[e.cfg.Freqs[fi]] += dt
					pw.Busy += dt
					if fi != 0 {
						s.slow += dt
						pw.SlowBusy += dt
					}
				case cpu.Spin:
					s.spin += dt
					pw.Spin += dt
					if fi != 0 {
						pw.SlowSpin += dt
					}
				case cpu.IdleHalt:
					s.idle += dt
					pw.Idle += dt
				}
			}
		}
		pw.Steals = f.steals
		s.failedSteals += f.failedSteals
	}
	s.joules = coreJ + e.baseWatts*float64(e.nowNS())*1e-9
	return s
}

// cellJoules integrates one folded cell's residency matrix against
// the watts table — the single definition of the per-core energy
// fold, shared by snapshot and powerNow so the per-job reports and
// the observer's EnergySample stream cannot drift apart.
func (e *Exec) cellJoules(f *acctFold) float64 {
	var j float64
	nf := len(e.cfg.Freqs)
	for st := 0; st < 3; st++ {
		row := st * acctFreqCap
		for fi := 0; fi < nf; fi++ {
			if ns := f.res[row+fi]; ns != 0 {
				j += e.watts[st][fi] * float64(ns) * 1e-9
			}
		}
	}
	return j
}

// powerNow folds instantaneous machine watts (from the published
// words) and cumulative joules for the meter stream.
func (e *Exec) powerNow() (watts, joules float64) {
	for _, w := range e.workers {
		f := e.foldAcct(&w.acct)
		joules += e.cellJoules(&f)
		if f.st >= cpu.IdleHalt {
			watts += e.watts[f.st-1][f.fi]
		}
	}
	watts += e.baseWatts
	joules += e.baseWatts * float64(e.nowNS()) * 1e-9
	return watts, joules
}

// buildReport renders a job's report as the pool delta over its span.
// Counts the pool cannot attribute to one job (failed steals, tempo
// switches, residency) cover everything that happened during the
// job's span, concurrent neighbours included; Tasks, Spawns and
// Steals are exact per-job attributions folded from the per-worker
// counters. Energy is worker-time weighted: the machine's modeled
// joules over the span are shared in proportion to the Busy core
// residency attributed to this job, so concurrent jobs partition the
// pool's energy instead of each claiming the whole machine (a job
// running alone keeps the full draw, idle cores included).
func (e *Exec) buildReport(js *jobState, end poolSnap) core.Report {
	now := time.Now()
	sojourn := units.Time(now.Sub(js.start).Nanoseconds()) * units.Nanosecond
	var span units.Time
	if es := js.execStart.Load(); es != 0 {
		// Both readings are monotonic offsets from executor start, so
		// a wall-clock step cannot skew (or negate) the span.
		if d := now.Sub(e.start).Nanoseconds() - es; d > 0 {
			span = units.Time(d) * units.Nanosecond
		}
	}
	var tasks, spawns, steals, busyNS int64
	for i := range js.perW {
		c := &js.perW[i]
		tasks += c.tasks
		spawns += c.spawns
		steals += c.steals
		busyNS += c.busyNS
	}
	machineJ := end.joules - js.snap.joules
	energy := machineJ
	if poolBusy := end.busy - js.snap.busy; poolBusy > 0 {
		jobBusy := units.Time(busyNS) * units.Nanosecond
		if jobBusy < poolBusy {
			energy = machineJ * float64(jobBusy) / float64(poolBusy)
		}
	}
	r := core.Report{
		System:        e.cfg.Spec.Name,
		Workers:       e.cfg.Workers,
		Mode:          e.modeNow(),
		Sched:         e.cfg.Scheduling,
		Class:         js.class,
		Span:          span,
		Sojourn:       sojourn,
		EnergyJ:       energy,
		MeterJ:        energy, // no modeled DAQ on the host
		EDP:           meter.EDP(energy, span),
		Tasks:         tasks,
		Spawns:        spawns,
		Steals:        steals,
		FailedSteals:  end.failedSteals - js.snap.failedSteals,
		TempoSwitches: end.tempoSwitches - js.snap.tempoSwitches,
		DVFSCommits:   end.dvfsCommits - js.snap.dvfsCommits,
		BusyTime:      end.busy - js.snap.busy,
		SpinTime:      end.spin - js.snap.spin,
		IdleTime:      end.idle - js.snap.idle,
		SlowBusyTime:  end.slow - js.snap.slow,
		FreqBusy:      map[units.Freq]units.Time{},
		PerWorker:     make([]core.WorkerStats, len(end.perWorker)),
	}
	if sojourn > 0 {
		// Average over the job's whole stay: the delta accumulators
		// behind the report cover [submission, completion].
		r.AvgPowerW = energy / sojourn.Seconds()
	}
	for f, t := range end.freqBusy {
		if d := t - js.snap.freqBusy[f]; d > 0 {
			r.FreqBusy[f] = d
		}
	}
	for i := range end.perWorker {
		a, b := js.snap.perWorker[i], end.perWorker[i]
		r.PerWorker[i] = core.WorkerStats{
			Busy:     b.Busy - a.Busy,
			SlowBusy: b.SlowBusy - a.SlowBusy,
			Spin:     b.Spin - a.Spin,
			SlowSpin: b.SlowSpin - a.SlowSpin,
			Idle:     b.Idle - a.Idle,
			Steals:   b.Steals - a.Steals,
		}
	}
	return r
}

// emit streams an event to the configured observer, stamping
// wall-clock time since executor start if the event carries none.
func (e *Exec) emit(ev obs.Event) {
	if e.cfg.Observer == nil {
		return
	}
	if ev.Time == 0 {
		ev.Time = units.Time(time.Since(e.start).Nanoseconds()) * units.Nanosecond
	}
	e.cfg.Observer.Observe(ev)
}

// setState publishes a core-state change into the worker's accounting
// cell. Owner-only; no-ops when the state is unchanged, so the
// pop→run→pop chain costs one shadow compare.
func (w *worker) setState(st cpu.CoreState) {
	if w.lastState == st {
		return
	}
	w.lastState = st
	w.e.acctSet(&w.acct, int(st), -1)
}

// freq reads the worker's current tempo frequency from its lock-free
// shadow: Work only needs a fresh snapshot.
func (w *worker) freq() units.Freq {
	return units.Freq(w.curFreq.Load())
}

// profLoop is the online profiler of Section 3.2 on wall-clock time:
// every ProfilePeriod it samples all deque sizes and retunes every
// worker's thresholds from the rolling average.
func (e *Exec) profLoop() {
	defer e.workerWG.Done()
	tick := time.NewTicker(e.cfg.ProfilePeriod.Duration())
	defer tick.Stop()
	sizes := make([]int, len(e.workers))
	for {
		select {
		case <-e.closeCh:
			return
		case <-tick.C:
		}
		for i, w := range e.workers {
			sizes[i] = w.dq.Size()
		}
		e.tempoMu.Lock()
		e.prof.Observe(sizes)
		if e.modeNow().Workload() {
			avg := e.prof.Average()
			for _, w := range e.workers {
				w.th.Retune(avg)
			}
		}
		e.tempoMu.Unlock()
	}
}

// meterLoop streams 100 Hz energy samples to the observer, mirroring
// the paper's DAQ cadence on wall-clock time. This is the only
// periodic integration point — the accounting itself is exact and
// lock-free, so the cadence affects the observer stream's resolution,
// not the totals in any report.
func (e *Exec) meterLoop() {
	defer e.workerWG.Done()
	tick := time.NewTicker(meter.SamplePeriod.Duration())
	defer tick.Stop()
	for {
		select {
		case <-e.closeCh:
			return
		case <-tick.C:
		}
		watts, joules := e.powerNow()
		e.emit(obs.Event{Kind: obs.EnergySample, Worker: -1, Victim: -1, Power: watts, Energy: joules})
	}
}

// loop is Algorithm 3.1 on a real goroutine, extended with the job
// intake: pop local work; failing that, accept a submitted root;
// failing that, steal; failing that, idle with backoff parked on the
// intake queue so fresh jobs wake an idle pool immediately.
func (w *worker) loop() {
	defer w.e.workerWG.Done()
	for {
		select {
		case <-w.e.closeCh:
			return
		default:
		}
		if t, ok := w.popLocal(); ok {
			w.runTask(t)
			continue
		}
		w.outOfWork()
		select {
		case t := <-w.e.injectq:
			w.runTask(t)
			continue
		default:
		}
		if t, ok := w.stealRound(); ok {
			w.runTask(t)
			continue
		}
		w.idleWait()
	}
}

// idleWait parks the worker on the intake queue with exponential
// backoff. A pool with no jobs at all halts its cores (no modeled
// energy draw) and backs off further than one between steal rounds.
// The backoff timer is per-worker and reused across cycles.
func (w *worker) idleWait() {
	maxBackoff := 200 * time.Microsecond
	if w.e.active.Load() == 0 {
		w.setState(cpu.IdleHalt)
		maxBackoff = 2 * time.Millisecond
	} else {
		w.setState(cpu.Spin)
	}
	if w.backoff < 20*time.Microsecond {
		w.backoff = 20 * time.Microsecond
	} else if w.backoff < maxBackoff {
		w.backoff *= 2
	} else {
		w.backoff = maxBackoff
	}
	if w.idleTimer == nil {
		w.idleTimer = time.NewTimer(w.backoff)
	} else {
		w.idleTimer.Reset(w.backoff)
	}
	select {
	case tk := <-w.e.injectq:
		w.runTask(tk)
	case <-w.e.closeCh:
	case <-w.idleTimer.C:
	}
}

func (w *worker) popLocal() (*task, bool) {
	t, ok := w.dq.Pop()
	if !ok {
		return nil, false
	}
	w.afterShrink()
	return t, true
}

// getTask recycles a deque item from the worker's free list, or
// allocates when the list is dry (cold start, burst deeper than the
// list). Owner-only.
func (w *worker) getTask(fn wl.Task, blk *block, js *jobState) *task {
	if n := len(w.freeTasks); n > 0 {
		t := w.freeTasks[n-1]
		w.freeTasks = w.freeTasks[:n-1]
		t.fn, t.blk, t.job = fn, blk, js
		return t
	}
	return &task{fn: fn, blk: blk, job: js}
}

// putTask clears and recycles a task the worker has finished with.
// Tasks migrate between workers through steals; each lands in the
// free list of whichever worker executed it.
func (w *worker) putTask(t *task) {
	if len(w.freeTasks) < cap(w.freeTasks) {
		t.fn, t.blk, t.job = nil, nil, nil
		w.freeTasks = append(w.freeTasks, t)
	}
}

// getBlock recycles a fork-join block, draining any stale completion
// token from the previous generation. Owner-only.
func (w *worker) getBlock(pending int64) *block {
	var blk *block
	if n := len(w.freeBlocks); n > 0 {
		blk = w.freeBlocks[n-1]
		w.freeBlocks = w.freeBlocks[:n-1]
		select {
		case <-blk.done:
		default:
		}
	} else {
		blk = &block{done: make(chan struct{}, 1)}
	}
	blk.waiting.Store(false)
	blk.pending.Store(pending)
	return blk
}

// putBlock recycles a drained block. Safe even with a stray late
// signal in flight: the token lands in the buffered channel and is
// drained on reuse (or causes one spurious, absorbed wake).
func (w *worker) putBlock(blk *block) {
	if len(w.freeBlocks) < cap(w.freeBlocks) {
		w.freeBlocks = append(w.freeBlocks, blk)
	}
}

// push places a spawned task on the worker's own tail (Figure 5
// PUSH), then applies the workload-sensitive growth check. The check
// pre-filters through the thresholds' lock-free published bound:
// tempoMu is taken only when the new size can actually cross a tier.
func (w *worker) push(t *task) {
	w.acct.spawns.Add(1)
	if t.job != nil {
		t.job.perW[w.id].spawns++
	}
	w.dq.Push(t)
	if !w.e.modeNow().Workload() {
		return
	}
	if !w.th.WouldRaiseFast(w.dq.Size()) {
		return
	}
	var evs []obs.Event
	w.e.tempoMu.Lock()
	if w.th.WouldRaise(w.dq.Size()) {
		w.th.Raise()
		// Top-tier veto: a deque past the top threshold marks a
		// worker with substantial pending work, shedding any
		// remaining thief procrastination (as in internal/core).
		if w.th.Tier() == w.th.K() && w.wpLevel > 0 {
			w.wpLevel = 0
		}
		w.retuneLocked(&evs)
	}
	w.e.tempoMu.Unlock()
	w.e.emitAll(evs)
}

// afterShrink applies Figure 5's POP tail check: a deque that shrank
// below the current tier's threshold lowers the tempo — unless the
// worker holds the most immediate work (head of the immediacy list).
// Like push, it pre-checks the published bound before locking.
func (w *worker) afterShrink() {
	if !w.e.modeNow().Workload() {
		return
	}
	if !w.th.WouldLowerFast(w.dq.Size()) {
		return
	}
	var evs []obs.Event
	w.e.tempoMu.Lock()
	atHead := w.e.modeNow().Workpath() && w.node.AtHead()
	if !atHead && w.th.WouldLower(w.dq.Size()) {
		w.th.Lower()
		w.retuneLocked(&evs)
	}
	w.e.tempoMu.Unlock()
	w.e.emitAll(evs)
}

// outOfWork relays immediacy down the thief chain and leaves the
// immediacy list (Algorithm 3.1 lines 6–14).
func (w *worker) outOfWork() {
	if !w.e.modeNow().Workpath() {
		return
	}
	var evs []obs.Event
	w.e.tempoMu.Lock()
	if w.node.InList() {
		w.node.Relay(func(x *worker) {
			if x.wpLevel > 0 {
				x.wpLevel--
			}
			x.retuneLocked(&evs)
		})
		w.node.Unlink()
	}
	w.e.tempoMu.Unlock()
	w.e.emitAll(evs)
}

// stealRound probes every other worker once from a random start until
// a steal lands, applying the thief- and victim-side tempo rules.
func (w *worker) stealRound() (*task, bool) {
	n := len(w.e.workers)
	if n == 1 {
		return nil, false
	}
	start := w.rng.intn(n)
	for i := 0; i < n; i++ {
		v := w.e.workers[(start+i)%n]
		if v == w {
			continue
		}
		t, ok := v.dq.Steal()
		if !ok {
			w.acct.failedSteals.Add(1)
			continue
		}
		w.acct.steals.Add(1)
		if t.job != nil {
			t.job.perW[w.id].steals++
		}
		w.e.emit(obs.Event{Kind: obs.Steal, Worker: w.id, Victim: v.id})
		mode := w.e.modeNow()
		var evs []obs.Event
		if mode.Workpath() {
			w.e.tempoMu.Lock()
			// Thief procrastination: one workpath level below the
			// victim, inserted after it on the immediacy list.
			w.wpLevel = v.wpLevel + 1
			if max := w.e.cfg.MaxTempoLevels - 1; w.wpLevel > max {
				w.wpLevel = max
			}
			if !w.node.InList() {
				tempo.InsertThief(&w.node, &v.node)
			}
			w.retuneLocked(&evs)
			w.victimShrinkLocked(v, &evs)
			w.e.tempoMu.Unlock()
		} else if mode.Workload() {
			w.e.tempoMu.Lock()
			// Figure 4(b): the fresh thief's tempo comes from its own
			// deque size — empty deque, lowest tier.
			w.th.SetTier(w.th.TierFor(w.dq.Size()))
			w.retuneLocked(&evs)
			w.victimShrinkLocked(v, &evs)
			w.e.tempoMu.Unlock()
		}
		w.e.emitAll(evs)
		return t, true
	}
	return nil, false
}

// victimShrinkLocked applies Figure 5's STEAL check on the victim
// side; tempoMu must be held.
func (w *worker) victimShrinkLocked(v *worker, pend *[]obs.Event) {
	if !w.e.modeNow().Workload() {
		return
	}
	atHead := w.e.modeNow().Workpath() && v.node.AtHead()
	if !atHead && v.th.WouldLower(v.dq.Size()) {
		v.th.Lower()
		v.retuneLocked(pend)
	}
}

// retuneLocked applies the composed level as the worker's tempo
// frequency. Transitions commit immediately (the host has no modeled
// latency daemon), and each worker owns its whole clock domain, so an
// accepted tempo request is a DVFS commit; the new frequency is
// published to the Work hot path (curFreq) and the accounting cell.
// tempoMu must be held. Observer events are not emitted here — user
// callbacks must not run under tempoMu — but appended to pend for the
// caller to emit after unlocking.
func (w *worker) retuneLocked(pend *[]obs.Event) {
	level := w.wpLevel
	if w.e.modeNow().Workload() {
		level += w.th.K() - w.th.Tier()
	}
	fi := level
	if max := len(w.e.cfg.Freqs) - 1; fi > max {
		fi = max
	}
	f := w.e.cfg.Freqs[fi]
	if w.reqFreq == f {
		return
	}
	w.reqFreq = f
	w.e.tempoSwitches.Add(1)
	w.e.dvfsCommits.Add(1)
	w.curFreq.Store(int64(f))
	w.e.acctSet(&w.acct, -1, fi)
	if w.e.cfg.Observer != nil {
		*pend = append(*pend,
			obs.Event{Kind: obs.TempoSwitch, Worker: w.id, Victim: -1, Freq: f},
			obs.Event{Kind: obs.DVFSCommit, Worker: w.id, Victim: -1, Freq: f})
	}
}

// emitAll streams deferred events once no scheduler lock is held.
func (e *Exec) emitAll(evs []obs.Event) {
	for _, ev := range evs {
		e.emit(ev)
	}
}

// switchJob flushes the worker's current contiguous busy interval to
// the job that owns it and repoints the accounting context at js.
// Owner-only; called only when the context actually changes, so a
// run of same-job tasks never reads the clock at task boundaries.
func (w *worker) switchJob(js *jobState) {
	now := w.e.nowNS()
	if cur := w.cur.js; cur != nil {
		if d := now - w.jsSinceNS; d > 0 {
			cur.perW[w.id].busyNS += d
		}
	}
	w.cur.js = js
	w.jsSinceNS = now
}

// runTask executes one task, skipping the body (but not the fork-join
// bookkeeping) when its job has been cancelled, so cancelled jobs
// drain instead of running. A panicking task body fails its job (the
// error surfaces from Job.Wait, matching the Sim backend) without
// taking the shared pool down. The task itself is recycled into this
// worker's free list before the body runs; per-job accounting is
// written to this worker's plain counter slice, ordered before the
// block decrement so the job's report fold (which happens after the
// pending chain reaches zero) observes every write.
//
// Busy-time attribution is interval-based: the worker charges the
// whole contiguous stretch it spends with one accounting context
// (task bodies plus the join helping/waiting inside them, exactly as
// the old per-frame self-time scheme did) to that job, flushing at
// job switches and top-level exits via switchJob. A join that runs
// another job's stolen task inline switches contexts on the way in
// and back out, so interleaved jobs still partition the worker's
// time exactly.
func (w *worker) runTask(t *task) {
	fn, blk, js := t.fn, t.blk, t.job
	w.putTask(t)
	w.backoff = 0
	w.setState(cpu.Busy)
	prev := w.cur.js
	if js != prev {
		w.switchJob(js)
	}
	if js != nil && js.execStart.Load() == 0 {
		js.execStart.CompareAndSwap(0, w.e.nowNS())
	}
	defer func() {
		if js != prev {
			w.switchJob(prev)
		}
		// The decrement comes last: every accounting flush above is
		// ordered before the pending chain that releases the fold.
		if blk != nil && blk.pending.Add(-1) == 0 && blk.waiting.Load() {
			blk.signal()
		}
	}()
	if js != nil && js.cancelled.Load() {
		js.interrupted.Store(true) // body skipped: cancellation bit
	} else {
		w.acct.tasks.Add(1)
		if js != nil {
			js.perW[w.id].tasks++
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					if js == nil {
						panic(p)
					}
					js.fail(fmt.Errorf("rt: job %d task panicked: %v\n%s", js.id, p, debug.Stack()))
				}
			}()
			fn(w.curIface)
		}()
	}
}

// join drains a block: run own-block tasks from the local tail, help
// by stealing, and finally wait for the block's completion token.
func (w *worker) join(blk *block) {
	for blk.pending.Load() > 0 {
		if t, ok := w.dq.Pop(); ok {
			if t.blk != blk {
				w.dq.Push(t) // enclosing block's task; not runnable yet
			} else {
				w.afterShrink()
				w.runTask(t)
				continue
			}
		}
		if blk.pending.Load() == 0 {
			return
		}
		w.outOfWork()
		if t, ok := w.stealRound(); ok {
			w.runTask(t)
			continue
		}
		// Nothing runnable anywhere: announce ourselves, re-check, and
		// wait for the completion token. The buffered token cannot be
		// lost (the last decrement either sees the announcement and
		// signals, or our re-check sees zero), and a stale token from
		// a recycled generation at worst wakes the loop into one more
		// pending check.
		blk.waiting.Store(true)
		if blk.pending.Load() > 0 {
			<-blk.done
		}
		blk.waiting.Store(false)
	}
}

// wctx implements wl.Ctx over a real worker executing one job's
// tasks. Each worker owns a single wctx (and one interface value
// wrapping it); runTask repoints js around task bodies, so entering a
// task allocates nothing. A worker runs one frame at a time, nested
// frames save and restore js, and the contract that a task uses the
// Ctx it was passed (rather than one captured from another spawn)
// matches wl's documented semantics.
type wctx struct {
	w  *worker
	js *jobState
}

var _ wl.Ctx = (*wctx)(nil)

func (c *wctx) Go(tasks ...wl.Task) {
	js := c.js
	if js != nil && js.cancelled.Load() {
		// Spawn boundary: a cancelled job forks no new work.
		if len(tasks) > 0 {
			js.interrupted.Store(true)
		}
		return
	}
	w := c.w
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0](c)
		return
	}
	blk := w.getBlock(int64(len(tasks) - 1))
	for i := len(tasks) - 1; i >= 1; i-- {
		w.push(w.getTask(tasks[i], blk, js))
	}
	tasks[0](c)
	w.join(blk)
	w.putBlock(blk)
}

// Work executes declared cycles at the worker's current tempo
// frequency in wall-clock time: tempo throttling is real here.
func (c *wctx) Work(cy units.Cycles) {
	if cy <= 0 {
		return
	}
	c.sleepFor(cy.DurationAt(c.w.freq()).Duration())
}

// Mem executes frequency-independent time.
func (c *wctx) Mem(d units.Time) { c.sleepFor(d.Duration()) }

// WorkMix splits cycles into tempo-scaled and frequency-independent
// parts, as in the simulator.
func (c *wctx) WorkMix(cy units.Cycles, memFrac float64) {
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	memCycles := units.Cycles(float64(cy) * memFrac)
	c.Work(cy - memCycles)
	c.Mem(memCycles.DurationAt(c.w.e.cfg.Spec.MaxFreq()))
}

func (c *wctx) Worker() int { return c.w.id }

// sleepFor burns the requested wall time in cancellation-aware slices:
// sleep in ≤1 ms chunks, spin the sub-100µs remainder for fidelity,
// and bail out the moment the job is cancelled.
func (c *wctx) sleepFor(d time.Duration) {
	if d <= 0 {
		return
	}
	js := c.js
	end := time.Now().Add(d)
	for {
		rem := time.Until(end)
		if rem <= 0 {
			return
		}
		if js != nil && js.cancelled.Load() {
			js.interrupted.Store(true) // work cut short
			return
		}
		switch {
		case rem > time.Millisecond:
			time.Sleep(time.Millisecond)
		case rem > 100*time.Microsecond:
			time.Sleep(rem - 50*time.Microsecond)
		default:
			runtime.Gosched()
		}
	}
}

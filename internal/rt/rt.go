// Package rt is the real-concurrency executor: the same HERMES
// scheduling algorithms as internal/core — THE-protocol deques, thief
// procrastination, immediacy relays, workload thresholds — run by
// actual goroutine workers in parallel on the host.
//
// Unlike the one-shot simulator, rt is a persistent service: NewExec
// starts a worker pool that outlives any single computation, Submit
// enqueues concurrent root jobs multiplexed over the shared pool, and
// Close drains it. Every job gets its own report; tempo state (the
// immediacy list, workload tiers, profiled thresholds) persists across
// jobs, so the deque-size thresholds react to aggregate traffic rather
// than a single fork-join tree. The executor shares internal/core's
// Config and Report types: all four tempo modes run here, and reports
// carry the same residency and scheduler statistics, measured over
// wall-clock time.
//
// Since the host exposes neither per-domain DVFS nor an energy meter,
// tempo control here is emulated and accounted rather than physically
// applied: a worker at tempo frequency f executes declared Work cycles
// at rate f in wall-clock time (slow tempos genuinely take longer),
// and energy integrates the same calibrated power model over
// wall-clock residency. Real computation inside tasks runs at native
// speed regardless. The executor therefore demonstrates and tests the
// algorithms under true parallelism (including the race behaviour of
// the deques), while the discrete-event executor in internal/core
// remains the measurement instrument.
//
// Unlike the simulator, runs are not deterministic: the OS scheduler
// decides races, exactly as on the paper's machines. The sim-only
// Config knobs are ignored here: the overheads (StealCost,
// PushPopCost, yield spins, AffinityCost) because real locks and
// syscalls cost what they cost, the Cancelled hook because rt cancels
// per job through the Submit context, and Scheduling because workers
// are always statically pinned (reports are normalized to Static).
package rt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/deque"
	"hermes/internal/job"
	"hermes/internal/meter"
	"hermes/internal/obs"
	"hermes/internal/power"
	"hermes/internal/tempo"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("rt: executor closed")

// ErrNilTask is returned by Submit for a nil root task.
var ErrNilTask = errors.New("rt: nil root task")

// injectCap bounds the submission queue; Submit blocks (or honours
// its context) once this many root jobs await pickup.
const injectCap = 4096

// task is one deque item: a workload closure, the fork-join block it
// belongs to, and the job it is accounted against.
type task struct {
	fn  wl.Task
	blk *block
	job *jobState
}

// block tracks one fork-join block's outstanding tasks.
type block struct {
	pending atomic.Int64
	done    chan struct{} // closed when pending reaches zero
}

// jobState is the executor-side record of one submitted job.
type jobState struct {
	id      int64
	ctx     context.Context
	j       *job.Job
	rootBlk *block
	start   time.Time
	snap    poolSnap

	cancelled atomic.Bool
	// interrupted records that cancellation actually preempted work
	// (as opposed to the context merely expiring after the job
	// finished); only then does the job complete with ctx's error.
	interrupted           atomic.Bool
	tasks, spawns, steals atomic.Int64
	// execStart is the monotonic offset (nanoseconds since executor
	// start, 0 = never picked up) when a worker first ran one of the
	// job's tasks: Span measures from here, Sojourn from submission,
	// so Sojourn − Span is queueing delay — the same contract as the
	// Sim pool. Monotonic offsets keep Span immune to wall-clock
	// steps.
	execStart atomic.Int64
	// busyNS accumulates the wall-clock nanoseconds workers spent
	// serving this job — per-task self time, exclusive of nested
	// tasks a join runs inline — the weight for sharing the pool's
	// energy among concurrent jobs.
	busyNS atomic.Int64

	failMu  sync.Mutex
	failErr error // first task panic, reported from Wait
}

// fail records the job's first task panic and drains the rest of the
// job like a cancellation.
func (js *jobState) fail(err error) {
	js.failMu.Lock()
	if js.failErr == nil {
		js.failErr = err
	}
	js.failMu.Unlock()
	js.cancelled.Store(true)
}

// taskErr returns the job's recorded task panic, if any.
func (js *jobState) taskErr() error {
	js.failMu.Lock()
	defer js.failMu.Unlock()
	return js.failErr
}

// poolSnap is a consistent copy of the pool-wide accumulators, taken
// at job start and completion; a job's report is the delta.
type poolSnap struct {
	joules                 float64
	busy, spin, idle, slow units.Time
	freqBusy               map[units.Freq]units.Time
	perWorker              []core.WorkerStats
	failedSteals           int64
	tempoSwitches          int64
	dvfsCommits            int64
}

type worker struct {
	e    *Exec
	id   int
	core *cpu.Core
	dq   *deque.Deque[*task]
	rng  rngState

	node    tempo.Node[*worker]
	th      *tempo.Thresholds
	wpLevel int
	backoff time.Duration

	// lastState shadows core.State so the owner can skip the meterMu
	// round-trip when the state is unchanged (the common
	// pop→run→pop chain stays Busy throughout). Only the owning
	// worker writes its core's state, so the shadow needs no lock.
	lastState cpu.CoreState
	// curFreq publishes the worker's domain frequency for lock-free
	// reads on the Work hot path. Workers sit on distinct clock
	// domains, so only retuneLocked (under meterMu, for this worker or
	// a victim) writes it.
	curFreq atomic.Int64
	// childNS counts wall-clock nanoseconds consumed by completed
	// runTask frames nested below the currently-running one, so each
	// frame can attribute its exclusive self time to its job (a join
	// runs other tasks — possibly other jobs' — inline). Owner-only.
	childNS int64
}

// rngState is a tiny splitmix64 PRNG: victim selection needs speed,
// not quality, and each worker owns its own state (no locking).
type rngState uint64

func (r *rngState) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rngState) intn(n int) int { return int(r.next() % uint64(n)) }

// Exec is a persistent real-concurrency worker pool serving submitted
// jobs. All methods are safe for concurrent use.
type Exec struct {
	cfg   core.Config
	mach  *cpu.Machine
	model *power.Model

	workers []*worker
	injectq chan *task
	closeCh chan struct{}
	start   time.Time

	// tempoMu serializes all tempo state (immediacy list, levels,
	// thresholds, frequency votes). Tempo events are rare relative to
	// task execution, so one lock is cheap and keeps the cross-worker
	// list mutations safe.
	tempoMu sync.Mutex
	prof    *tempo.Profiler

	// meterMu guards the machine state (core states, domain
	// frequencies) and the piecewise residency/energy integration over
	// wall time. Lock order: tempoMu (if held) before meterMu.
	meterMu   sync.Mutex
	lastTouch time.Time
	joules    float64
	busy      units.Time
	spin      units.Time
	idle      units.Time
	slowBusy  units.Time
	freqBusy  map[units.Freq]units.Time
	perWorker []core.WorkerStats

	tasks, spawns, steals       atomic.Int64
	failedSteals, tempoSwitches atomic.Int64
	dvfsCommits                 atomic.Int64
	workerSteals                []atomic.Int64

	active atomic.Int64 // jobs submitted and not yet completed
	nextID atomic.Int64

	submitMu sync.Mutex
	closed   bool
	jobWG    sync.WaitGroup
	workerWG sync.WaitGroup
}

// NewExec validates cfg, starts the worker pool and returns the
// executor. The pool idles (halted cores, no modeled energy draw)
// until jobs arrive. An unset worker count defaults to
// min(GOMAXPROCS, clock domains) — unlike the simulator's
// one-per-domain default, real goroutine workers should not
// oversubscribe the host.
func NewExec(cfg core.Config) (*Exec, error) {
	if cfg.Workers == 0 {
		spec := cfg.Spec
		if spec == nil {
			spec = cpu.SystemA()
		}
		cfg.Workers = runtime.GOMAXPROCS(0)
		if d := spec.Domains(); cfg.Workers > d {
			cfg.Workers = d
		}
	}
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	// Workers are always statically pinned here; reflect that in the
	// config (and so in every report) rather than echoing a Dynamic
	// request this executor does not model.
	cfg.Scheduling = core.Static
	e := &Exec{
		cfg:       cfg,
		mach:      cpu.NewMachine(cfg.Spec),
		model:     power.NewModel(cfg.Spec),
		injectq:   make(chan *task, injectCap),
		closeCh:   make(chan struct{}),
		start:     time.Now(),
		lastTouch: time.Now(),
		prof:      tempo.NewProfiler(cfg.ProfileWindow),
		freqBusy:  map[units.Freq]units.Time{},
		perWorker: make([]core.WorkerStats, cfg.Workers),
	}
	e.workerSteals = make([]atomic.Int64, cfg.Workers)
	cores := e.mach.DistinctDomainCores(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			e:         e,
			id:        i,
			core:      cores[i],
			dq:        deque.New[*task](64),
			rng:       rngState(cfg.Seed*7_919 + int64(i) + 1),
			th:        tempo.NewThresholds(cfg.K, cfg.InitialAvgDeque),
			lastState: cpu.IdleHalt,
		}
		w.node.Val = w
		w.core.State = cpu.IdleHalt
		w.curFreq.Store(int64(w.core.Dom.Freq()))
		e.workers = append(e.workers, w)
	}
	for _, w := range e.workers {
		e.workerWG.Add(1)
		go w.loop()
	}
	if cfg.Mode.Workload() {
		e.workerWG.Add(1)
		go e.profLoop()
	}
	if cfg.Observer != nil {
		e.workerWG.Add(1)
		go e.meterLoop()
	}
	return e, nil
}

// Config returns the validated configuration the pool runs with
// (defaults filled in).
func (e *Exec) Config() core.Config { return e.cfg }

// Submit enqueues root as a new job multiplexed over the shared pool
// and returns its handle as soon as the job is queued; if the intake
// queue is full (injectCap root jobs awaiting pickup) Submit blocks
// until space frees or ctx is cancelled — natural backpressure for a
// saturated pool. The job observes ctx: once ctx is cancelled the
// scheduler stops executing the job's task bodies at spawn and steal
// boundaries, drains its fork-join structure, and completes the job
// with ctx's error.
func (e *Exec) Submit(ctx context.Context, root wl.Task) (*job.Job, error) {
	if root == nil {
		return nil, ErrNilTask
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.submitMu.Lock()
	if e.closed {
		e.submitMu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		// Already cancelled: never enters the pool, matching the Sim
		// backend's refusal to start a cancelled job (including its
		// job-lifecycle telemetry).
		id := e.nextID.Add(1)
		e.submitMu.Unlock()
		j := job.New(id)
		e.emit(obs.Event{Kind: obs.JobStart, Job: id, Worker: -1, Victim: -1})
		e.emit(obs.Event{Kind: obs.JobDone, Job: id, Worker: -1, Victim: -1})
		j.Finish(core.Report{}, err)
		return j, nil
	}
	js := &jobState{
		id:      e.nextID.Add(1),
		ctx:     ctx,
		rootBlk: &block{done: make(chan struct{})},
	}
	js.j = job.New(js.id)
	js.rootBlk.pending.Store(1)
	e.active.Add(1)
	e.jobWG.Add(1)
	e.submitMu.Unlock()

	// Baseline snapshot outside submitMu: it takes meterMu and copies
	// per-worker stats, and concurrent submitters need not serialize
	// behind that. The job is not yet enqueued, so the baseline still
	// precedes all of its own activity.
	js.snap = e.snapshot()
	js.start = time.Now()
	e.emit(obs.Event{Kind: obs.JobStart, Job: js.id, Worker: -1, Victim: -1})
	go e.watch(js)
	select {
	case e.injectq <- &task{fn: root, blk: js.rootBlk, job: js}:
	case <-ctx.Done():
		// Cancelled before any worker picked the job up: it never
		// entered the pool, so drain its root block directly. This is
		// a genuine interruption even though watch may find the block
		// already closed.
		js.interrupted.Store(true)
		js.cancelled.Store(true)
		if js.rootBlk.pending.Add(-1) == 0 {
			close(js.rootBlk.done)
		}
	}
	return js.j, nil
}

// Close rejects further submissions, waits for every submitted job to
// complete, then stops the workers. It is safe to call from multiple
// goroutines; every call returns only once the pool has fully shut
// down.
func (e *Exec) Close() error {
	e.submitMu.Lock()
	first := !e.closed
	e.closed = true
	e.submitMu.Unlock()
	if first {
		e.jobWG.Wait()
		close(e.closeCh)
	}
	// Concurrent or repeated closers block here until the workers
	// (released by the first closer) have all exited.
	e.workerWG.Wait()
	e.mutate(nil) // final integration
	return nil
}

// watch drives one job's lifecycle: flag cancellation the moment its
// context fires, wait for the fork-join structure to drain, then
// assemble the per-job report from pool deltas. A job whose work
// completed before cancellation took effect reports success — the
// context error is returned only when the run was actually
// interrupted (a task panic beats both).
func (e *Exec) watch(js *jobState) {
	defer e.jobWG.Done()
	select {
	case <-js.ctx.Done():
		// Flag cancellation and wait for the drain. interrupted is
		// set only at the sites that actually skip or cut work short,
		// so a job whose tasks all completed anyway still reports
		// success even if its context expired at the finish line.
		js.cancelled.Store(true)
		<-js.rootBlk.done
	case <-js.rootBlk.done:
	}
	end := e.snapshot()
	r := e.buildReport(js, end)
	e.active.Add(-1)
	e.emit(obs.Event{Kind: obs.JobDone, Job: js.id, Worker: -1, Victim: -1,
		Energy: r.EnergyJ, Sojourn: r.Sojourn})
	err := js.taskErr()
	if err == nil && js.interrupted.Load() {
		err = js.ctx.Err()
	}
	js.j.Finish(r, err)
}

// Run executes root as a single job on a fresh pool and tears the
// pool down: the one-shot convenience entry, and the shape the old
// rt.Run API had.
func Run(cfg core.Config, root wl.Task) (core.Report, error) {
	e, err := NewExec(cfg)
	if err != nil {
		return core.Report{}, err
	}
	defer e.Close()
	j, err := e.Submit(context.Background(), root)
	if err != nil {
		return core.Report{}, err
	}
	return j.Wait()
}

// snapshot copies the pool accumulators consistently (integrating up
// to now first).
func (e *Exec) snapshot() poolSnap {
	e.meterMu.Lock()
	e.integrateLocked(time.Now())
	s := poolSnap{
		joules:        e.joules,
		busy:          e.busy,
		spin:          e.spin,
		idle:          e.idle,
		slow:          e.slowBusy,
		freqBusy:      make(map[units.Freq]units.Time, len(e.freqBusy)),
		perWorker:     make([]core.WorkerStats, len(e.perWorker)),
		failedSteals:  e.failedSteals.Load(),
		tempoSwitches: e.tempoSwitches.Load(),
		dvfsCommits:   e.dvfsCommits.Load(),
	}
	for f, t := range e.freqBusy {
		s.freqBusy[f] = t
	}
	copy(s.perWorker, e.perWorker)
	for i := range s.perWorker {
		s.perWorker[i].Steals = e.workerSteals[i].Load()
	}
	e.meterMu.Unlock()
	return s
}

// buildReport renders a job's report as the pool delta over its span.
// Counts the pool cannot attribute to one job (failed steals, tempo
// switches, residency) cover everything that happened during the
// job's span, concurrent neighbours included; Tasks, Spawns and
// Steals are exact per-job attributions. Energy is worker-time
// weighted: the machine's modeled joules over the span are shared in
// proportion to the Busy core residency the meter attributed to this
// job, so concurrent jobs partition the pool's energy instead of each
// claiming the whole machine (a job running alone keeps the full
// draw, idle cores included).
func (e *Exec) buildReport(js *jobState, end poolSnap) core.Report {
	now := time.Now()
	sojourn := units.Time(now.Sub(js.start).Nanoseconds()) * units.Nanosecond
	var span units.Time
	if es := js.execStart.Load(); es != 0 {
		// Both readings are monotonic offsets from executor start, so
		// a wall-clock step cannot skew (or negate) the span.
		if d := now.Sub(e.start).Nanoseconds() - es; d > 0 {
			span = units.Time(d) * units.Nanosecond
		}
	}
	machineJ := end.joules - js.snap.joules
	energy := machineJ
	if poolBusy := end.busy - js.snap.busy; poolBusy > 0 {
		jobBusy := units.Time(js.busyNS.Load()) * units.Nanosecond
		if jobBusy < poolBusy {
			energy = machineJ * float64(jobBusy) / float64(poolBusy)
		}
	}
	r := core.Report{
		System:        e.cfg.Spec.Name,
		Workers:       e.cfg.Workers,
		Mode:          e.cfg.Mode,
		Sched:         e.cfg.Scheduling,
		Span:          span,
		Sojourn:       sojourn,
		EnergyJ:       energy,
		MeterJ:        energy, // no modeled DAQ on the host
		EDP:           meter.EDP(energy, span),
		Tasks:         js.tasks.Load(),
		Spawns:        js.spawns.Load(),
		Steals:        js.steals.Load(),
		FailedSteals:  end.failedSteals - js.snap.failedSteals,
		TempoSwitches: end.tempoSwitches - js.snap.tempoSwitches,
		DVFSCommits:   end.dvfsCommits - js.snap.dvfsCommits,
		BusyTime:      end.busy - js.snap.busy,
		SpinTime:      end.spin - js.snap.spin,
		IdleTime:      end.idle - js.snap.idle,
		SlowBusyTime:  end.slow - js.snap.slow,
		FreqBusy:      map[units.Freq]units.Time{},
		PerWorker:     make([]core.WorkerStats, len(end.perWorker)),
	}
	if sojourn > 0 {
		// Average over the job's whole stay: the delta accumulators
		// behind the report cover [submission, completion].
		r.AvgPowerW = energy / sojourn.Seconds()
	}
	for f, t := range end.freqBusy {
		if d := t - js.snap.freqBusy[f]; d > 0 {
			r.FreqBusy[f] = d
		}
	}
	for i := range end.perWorker {
		a, b := js.snap.perWorker[i], end.perWorker[i]
		r.PerWorker[i] = core.WorkerStats{
			Busy:     b.Busy - a.Busy,
			SlowBusy: b.SlowBusy - a.SlowBusy,
			Spin:     b.Spin - a.Spin,
			SlowSpin: b.SlowSpin - a.SlowSpin,
			Idle:     b.Idle - a.Idle,
			Steals:   b.Steals - a.Steals,
		}
	}
	return r
}

// emit streams an event to the configured observer, stamping
// wall-clock time since executor start if the event carries none.
func (e *Exec) emit(ev obs.Event) {
	if e.cfg.Observer == nil {
		return
	}
	if ev.Time == 0 {
		ev.Time = units.Time(time.Since(e.start).Nanoseconds()) * units.Nanosecond
	}
	e.cfg.Observer.Observe(ev)
}

// mutate integrates modeled power and residency up to now under
// meterMu, then applies fn to machine state. All reads and writes of
// core states and domain frequencies go through meterMu, so the
// integration always sees a consistent machine and the race detector
// stays quiet. Lock order: tempoMu (if held) before meterMu.
func (e *Exec) mutate(fn func()) {
	e.meterMu.Lock()
	e.integrateLocked(time.Now())
	if fn != nil {
		fn()
	}
	e.meterMu.Unlock()
}

// integrateLocked advances energy and residency accumulators to now;
// meterMu must be held.
func (e *Exec) integrateLocked(now time.Time) {
	dt := now.Sub(e.lastTouch)
	if dt <= 0 {
		return
	}
	e.lastTouch = now
	e.joules += e.model.MachineWatts(e.mach) * dt.Seconds()
	dtu := units.Time(dt.Nanoseconds()) * units.Nanosecond
	maxF := e.cfg.Spec.MaxFreq()
	for i, w := range e.workers {
		f := w.core.Dom.Freq()
		pw := &e.perWorker[i]
		switch w.core.State {
		case cpu.Busy:
			e.busy += dtu
			e.freqBusy[f] += dtu
			pw.Busy += dtu
			if f != maxF {
				e.slowBusy += dtu
				pw.SlowBusy += dtu
			}
		case cpu.Spin:
			e.spin += dtu
			pw.Spin += dtu
			if f != maxF {
				pw.SlowSpin += dtu
			}
		case cpu.IdleHalt:
			e.idle += dtu
			pw.Idle += dtu
		}
	}
}

func (w *worker) setState(st cpu.CoreState) {
	if w.lastState == st {
		return
	}
	w.lastState = st
	w.e.mutate(func() {
		w.core.State = st
	})
}

// freq reads the worker's current domain frequency from its
// lock-free shadow: Work only needs a fresh snapshot, and taking the
// global meterMu per leaf task would serialize the pool.
func (w *worker) freq() units.Freq {
	return units.Freq(w.curFreq.Load())
}

// profLoop is the online profiler of Section 3.2 on wall-clock time:
// every ProfilePeriod it samples all deque sizes and retunes every
// worker's thresholds from the rolling average.
func (e *Exec) profLoop() {
	defer e.workerWG.Done()
	tick := time.NewTicker(e.cfg.ProfilePeriod.Duration())
	defer tick.Stop()
	sizes := make([]int, len(e.workers))
	for {
		select {
		case <-e.closeCh:
			return
		case <-tick.C:
		}
		for i, w := range e.workers {
			sizes[i] = w.dq.Size()
		}
		e.tempoMu.Lock()
		e.prof.Observe(sizes)
		avg := e.prof.Average()
		for _, w := range e.workers {
			w.th.Retune(avg)
		}
		e.tempoMu.Unlock()
	}
}

// meterLoop streams 100 Hz energy samples to the observer, mirroring
// the paper's DAQ cadence on wall-clock time.
func (e *Exec) meterLoop() {
	defer e.workerWG.Done()
	tick := time.NewTicker(meter.SamplePeriod.Duration())
	defer tick.Stop()
	for {
		select {
		case <-e.closeCh:
			return
		case <-tick.C:
		}
		e.meterMu.Lock()
		e.integrateLocked(time.Now())
		watts := e.model.MachineWatts(e.mach)
		joules := e.joules
		e.meterMu.Unlock()
		e.emit(obs.Event{Kind: obs.EnergySample, Worker: -1, Victim: -1, Power: watts, Energy: joules})
	}
}

// loop is Algorithm 3.1 on a real goroutine, extended with the job
// intake: pop local work; failing that, accept a submitted root;
// failing that, steal; failing that, idle with backoff parked on the
// intake queue so fresh jobs wake an idle pool immediately.
func (w *worker) loop() {
	defer w.e.workerWG.Done()
	for {
		select {
		case <-w.e.closeCh:
			return
		default:
		}
		if t, ok := w.popLocal(); ok {
			w.runTask(t)
			continue
		}
		w.outOfWork()
		select {
		case t := <-w.e.injectq:
			w.runTask(t)
			continue
		default:
		}
		if t, ok := w.stealRound(); ok {
			w.runTask(t)
			continue
		}
		w.idleWait()
	}
}

// idleWait parks the worker on the intake queue with exponential
// backoff. A pool with no jobs at all halts its cores (no modeled
// energy draw) and backs off further than one between steal rounds.
func (w *worker) idleWait() {
	maxBackoff := 200 * time.Microsecond
	if w.e.active.Load() == 0 {
		w.setState(cpu.IdleHalt)
		maxBackoff = 2 * time.Millisecond
	} else {
		w.setState(cpu.Spin)
	}
	if w.backoff < 20*time.Microsecond {
		w.backoff = 20 * time.Microsecond
	} else if w.backoff < maxBackoff {
		w.backoff *= 2
	} else {
		w.backoff = maxBackoff
	}
	t := time.NewTimer(w.backoff)
	defer t.Stop()
	select {
	case tk := <-w.e.injectq:
		w.runTask(tk)
	case <-w.e.closeCh:
	case <-t.C:
	}
}

func (w *worker) popLocal() (*task, bool) {
	t, ok := w.dq.Pop()
	if !ok {
		return nil, false
	}
	w.afterShrink()
	return t, true
}

// push places a spawned task on the worker's own tail (Figure 5
// PUSH), then applies the workload-sensitive growth check.
func (w *worker) push(t *task) {
	w.e.spawns.Add(1)
	if t.job != nil {
		t.job.spawns.Add(1)
	}
	w.dq.Push(t)
	if !w.e.cfg.Mode.Workload() {
		return
	}
	var evs []obs.Event
	w.e.tempoMu.Lock()
	if w.th.WouldRaise(w.dq.Size()) {
		w.th.Raise()
		// Top-tier veto: a deque past the top threshold marks a
		// worker with substantial pending work, shedding any
		// remaining thief procrastination (as in internal/core).
		if w.th.Tier() == w.th.K() && w.wpLevel > 0 {
			w.wpLevel = 0
		}
		w.retuneLocked(&evs)
	}
	w.e.tempoMu.Unlock()
	w.e.emitAll(evs)
}

// afterShrink applies Figure 5's POP tail check: a deque that shrank
// below the current tier's threshold lowers the tempo — unless the
// worker holds the most immediate work (head of the immediacy list).
func (w *worker) afterShrink() {
	if !w.e.cfg.Mode.Workload() {
		return
	}
	var evs []obs.Event
	w.e.tempoMu.Lock()
	atHead := w.e.cfg.Mode.Workpath() && w.node.AtHead()
	if !atHead && w.th.WouldLower(w.dq.Size()) {
		w.th.Lower()
		w.retuneLocked(&evs)
	}
	w.e.tempoMu.Unlock()
	w.e.emitAll(evs)
}

// outOfWork relays immediacy down the thief chain and leaves the
// immediacy list (Algorithm 3.1 lines 6–14).
func (w *worker) outOfWork() {
	if !w.e.cfg.Mode.Workpath() {
		return
	}
	var evs []obs.Event
	w.e.tempoMu.Lock()
	if w.node.InList() {
		w.node.Relay(func(x *worker) {
			if x.wpLevel > 0 {
				x.wpLevel--
			}
			x.retuneLocked(&evs)
		})
		w.node.Unlink()
	}
	w.e.tempoMu.Unlock()
	w.e.emitAll(evs)
}

// stealRound probes every other worker once from a random start until
// a steal lands, applying the thief- and victim-side tempo rules.
func (w *worker) stealRound() (*task, bool) {
	n := len(w.e.workers)
	if n == 1 {
		return nil, false
	}
	start := w.rng.intn(n)
	for i := 0; i < n; i++ {
		v := w.e.workers[(start+i)%n]
		if v == w {
			continue
		}
		t, ok := v.dq.Steal()
		if !ok {
			w.e.failedSteals.Add(1)
			continue
		}
		w.e.steals.Add(1)
		w.e.workerSteals[w.id].Add(1)
		if t.job != nil {
			t.job.steals.Add(1)
		}
		w.e.emit(obs.Event{Kind: obs.Steal, Worker: w.id, Victim: v.id})
		mode := w.e.cfg.Mode
		var evs []obs.Event
		if mode.Workpath() {
			w.e.tempoMu.Lock()
			// Thief procrastination: one workpath level below the
			// victim, inserted after it on the immediacy list.
			w.wpLevel = v.wpLevel + 1
			if max := w.e.cfg.MaxTempoLevels - 1; w.wpLevel > max {
				w.wpLevel = max
			}
			if !w.node.InList() {
				tempo.InsertThief(&w.node, &v.node)
			}
			w.retuneLocked(&evs)
			w.victimShrinkLocked(v, &evs)
			w.e.tempoMu.Unlock()
		} else if mode.Workload() {
			w.e.tempoMu.Lock()
			// Figure 4(b): the fresh thief's tempo comes from its own
			// deque size — empty deque, lowest tier.
			w.th.SetTier(w.th.TierFor(w.dq.Size()))
			w.retuneLocked(&evs)
			w.victimShrinkLocked(v, &evs)
			w.e.tempoMu.Unlock()
		}
		w.e.emitAll(evs)
		return t, true
	}
	return nil, false
}

// victimShrinkLocked applies Figure 5's STEAL check on the victim
// side; tempoMu must be held.
func (w *worker) victimShrinkLocked(v *worker, pend *[]obs.Event) {
	if !w.e.cfg.Mode.Workload() {
		return
	}
	atHead := w.e.cfg.Mode.Workpath() && v.node.AtHead()
	if !atHead && v.th.WouldLower(v.dq.Size()) {
		v.th.Lower()
		v.retuneLocked(pend)
	}
}

// retuneLocked applies the composed level as the core's frequency
// vote. Transitions commit immediately (the host has no modeled
// latency daemon); tempoMu must be held. Observer events are not
// emitted here — user callbacks must not run under tempoMu — but
// appended to pend for the caller to emit after unlocking.
func (w *worker) retuneLocked(pend *[]obs.Event) {
	level := w.wpLevel
	if w.e.cfg.Mode.Workload() {
		level += w.th.K() - w.th.Tier()
	}
	fi := level
	if max := len(w.e.cfg.Freqs) - 1; fi > max {
		fi = max
	}
	f := w.e.cfg.Freqs[fi]
	if w.core.Req == f {
		return
	}
	w.e.tempoSwitches.Add(1)
	if w.e.cfg.Observer != nil {
		*pend = append(*pend, obs.Event{Kind: obs.TempoSwitch, Worker: w.id, Victim: -1, Freq: f})
	}
	w.e.mutate(func() {
		old := w.core.Dom.Freq()
		w.e.mach.Request(w.core, f, 0)
		w.core.Dom.ForceFreq(f)
		w.curFreq.Store(int64(w.core.Dom.Freq()))
		if w.core.Dom.Freq() != old {
			w.e.dvfsCommits.Add(1)
			if w.e.cfg.Observer != nil {
				*pend = append(*pend, obs.Event{Kind: obs.DVFSCommit, Worker: w.id, Victim: -1, Freq: f})
			}
		}
	})
}

// emitAll streams deferred events once no scheduler lock is held.
func (e *Exec) emitAll(evs []obs.Event) {
	for _, ev := range evs {
		e.emit(ev)
	}
}

// runTask executes one task, skipping the body (but not the fork-join
// bookkeeping) when its job has been cancelled, so cancelled jobs
// drain instead of running. A panicking task body fails its job (the
// error surfaces from Job.Wait, matching the Sim backend) without
// taking the shared pool down.
func (w *worker) runTask(t *task) {
	w.backoff = 0
	w.setState(cpu.Busy)
	js := t.job
	// Frame timing for per-job worker-time attribution: this frame's
	// self time is its wall-clock elapsed minus whatever nested
	// runTask frames (run inline by join — possibly serving other
	// jobs) consumed.
	frameStart := time.Now()
	if js != nil {
		js.execStart.CompareAndSwap(0, frameStart.Sub(w.e.start).Nanoseconds())
	}
	childBefore := w.childNS
	defer func() {
		total := time.Since(frameStart).Nanoseconds()
		if js != nil {
			if self := total - (w.childNS - childBefore); self > 0 {
				js.busyNS.Add(self)
			}
		}
		w.childNS = childBefore + total
	}()
	if js != nil && js.cancelled.Load() {
		js.interrupted.Store(true) // body skipped: cancellation bit
	} else {
		w.e.tasks.Add(1)
		if js != nil {
			js.tasks.Add(1)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					if js == nil {
						panic(p)
					}
					js.fail(fmt.Errorf("rt: job %d task panicked: %v\n%s", js.id, p, debug.Stack()))
				}
			}()
			t.fn(ctx{w, js})
		}()
	}
	if t.blk != nil && t.blk.pending.Add(-1) == 0 {
		close(t.blk.done)
	}
}

// join drains a block: run own-block tasks from the local tail, help
// by stealing, and finally wait on the block channel.
func (w *worker) join(blk *block) {
	for blk.pending.Load() > 0 {
		if t, ok := w.dq.Pop(); ok {
			if t.blk != blk {
				w.dq.Push(t) // enclosing block's task; not runnable yet
			} else {
				w.afterShrink()
				w.runTask(t)
				continue
			}
		}
		if blk.pending.Load() == 0 {
			return
		}
		w.outOfWork()
		if t, ok := w.stealRound(); ok {
			w.runTask(t)
			continue
		}
		select {
		case <-blk.done:
			return
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// ctx implements wl.Ctx over a real worker executing one job's task.
type ctx struct {
	w  *worker
	js *jobState
}

var _ wl.Ctx = ctx{}

func (c ctx) Go(tasks ...wl.Task) {
	if c.js != nil && c.js.cancelled.Load() {
		// Spawn boundary: a cancelled job forks no new work.
		if len(tasks) > 0 {
			c.js.interrupted.Store(true)
		}
		return
	}
	w := c.w
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0](c)
		return
	}
	blk := &block{done: make(chan struct{})}
	blk.pending.Store(int64(len(tasks) - 1))
	for i := len(tasks) - 1; i >= 1; i-- {
		w.push(&task{fn: tasks[i], blk: blk, job: c.js})
	}
	tasks[0](c)
	w.join(blk)
}

// Work executes declared cycles at the worker's current tempo
// frequency in wall-clock time: tempo throttling is real here.
func (c ctx) Work(cy units.Cycles) {
	if cy <= 0 {
		return
	}
	c.sleepFor(cy.DurationAt(c.w.freq()).Duration())
}

// Mem executes frequency-independent time.
func (c ctx) Mem(d units.Time) { c.sleepFor(d.Duration()) }

// WorkMix splits cycles into tempo-scaled and frequency-independent
// parts, as in the simulator.
func (c ctx) WorkMix(cy units.Cycles, memFrac float64) {
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	memCycles := units.Cycles(float64(cy) * memFrac)
	c.Work(cy - memCycles)
	c.Mem(memCycles.DurationAt(c.w.e.cfg.Spec.MaxFreq()))
}

func (c ctx) Worker() int { return c.w.id }

// sleepFor burns the requested wall time in cancellation-aware slices:
// sleep in ≤1 ms chunks, spin the sub-100µs remainder for fidelity,
// and bail out the moment the job is cancelled.
func (c ctx) sleepFor(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	for {
		rem := time.Until(end)
		if rem <= 0 {
			return
		}
		if c.js != nil && c.js.cancelled.Load() {
			c.js.interrupted.Store(true) // work cut short
			return
		}
		switch {
		case rem > time.Millisecond:
			time.Sleep(time.Millisecond)
		case rem > 100*time.Microsecond:
			time.Sleep(rem - 50*time.Microsecond)
		default:
			runtime.Gosched()
		}
	}
}

// Package rt is the real-concurrency executor: the same HERMES
// scheduling algorithms as internal/core — THE-protocol deques, thief
// procrastination, immediacy relays, workload thresholds — run by
// actual goroutine workers in parallel on the host.
//
// Since the host exposes neither per-domain DVFS nor an energy meter,
// tempo control here is emulated and accounted rather than physically
// applied: a worker at tempo frequency f executes declared Work cycles
// at rate f in wall-clock time (slow tempos genuinely take longer),
// and energy integrates the same calibrated power model over
// wall-clock residency. Real computation inside tasks runs at native
// speed regardless. The executor therefore demonstrates and tests the
// algorithms under true parallelism (including the race behaviour of
// the deques), while the discrete-event executor in internal/core
// remains the measurement instrument.
//
// Unlike the simulator, runs are not deterministic: the OS scheduler
// decides races, exactly as on the paper's machines.
package rt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hermes/internal/cpu"
	"hermes/internal/deque"
	"hermes/internal/power"
	"hermes/internal/tempo"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// Config configures a real-concurrency run.
type Config struct {
	// Spec selects the machine model used for tempo frequencies and
	// power accounting. Defaults to cpu.SystemB (small enough that a
	// typical host can host one worker per modeled domain).
	Spec *cpu.Spec
	// Workers defaults to min(GOMAXPROCS, domains).
	Workers int
	// Hermes enables unified tempo control; false runs the baseline.
	Hermes bool
	// Freqs is the N-frequency tempo set (defaults per system).
	Freqs []units.Freq
	// K is the workload threshold count (default 2).
	K int
	// InitialAvgDeque seeds thresholds (default 2).
	InitialAvgDeque float64
	// Seed for victim selection.
	Seed int64
}

// Report summarizes a real run.
type Report struct {
	Span    time.Duration
	EnergyJ float64 // modeled energy over wall-clock residency
	Tasks   int64
	Steals  int64
	Spawns  int64
}

func (r Report) String() string {
	return fmt.Sprintf("rt: span=%v energy=%.2fJ tasks=%d steals=%d",
		r.Span, r.EnergyJ, r.Tasks, r.Steals)
}

type task struct {
	fn  wl.Task
	blk *block
}

type block struct {
	pending atomic.Int64
	done    chan struct{} // closed when pending reaches zero
}

type worker struct {
	e    *executor
	id   int
	core *cpu.Core
	dq   *deque.Deque[*task]
	rng  *rand.Rand

	node    tempo.Node[*worker]
	th      *tempo.Thresholds
	wpLevel int
}

type executor struct {
	cfg     Config
	mach    *cpu.Machine
	model   *power.Model
	workers []*worker

	// tempoMu serializes all tempo state (immediacy list, levels,
	// thresholds, frequency votes). Tempo events are rare relative to
	// task execution, so one lock is cheap and keeps the cross-worker
	// list mutations safe.
	tempoMu sync.Mutex

	// Energy accounting: piecewise integration over wall time.
	meterMu   sync.Mutex
	lastTouch time.Time
	joules    float64

	tasks, steals, spawns atomic.Int64
	done                  atomic.Bool
	wg                    sync.WaitGroup
}

// Run executes root on real goroutine workers and returns the report.
func Run(cfg Config, root wl.Task) Report {
	if cfg.Spec == nil {
		cfg.Spec = cpu.SystemB()
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if d := cfg.Spec.Domains(); cfg.Workers > d {
			cfg.Workers = d
		}
	}
	if cfg.Workers < 1 || cfg.Workers > cfg.Spec.Domains() {
		panic(fmt.Sprintf("rt: %d workers not supported on %s", cfg.Workers, cfg.Spec.Name))
	}
	if len(cfg.Freqs) == 0 {
		cfg.Freqs = defaultFreqs(cfg.Spec)
	}
	if cfg.K == 0 {
		cfg.K = 2
	}
	if cfg.InitialAvgDeque == 0 {
		cfg.InitialAvgDeque = 2
	}

	e := &executor{
		cfg:       cfg,
		mach:      cpu.NewMachine(cfg.Spec),
		model:     power.NewModel(cfg.Spec),
		lastTouch: time.Now(),
	}
	cores := e.mach.DistinctDomainCores(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{
			e:    e,
			id:   i,
			core: cores[i],
			dq:   deque.New[*task](64),
			rng:  rand.New(rand.NewSource(cfg.Seed*7_919 + int64(i))),
			th:   tempo.NewThresholds(cfg.K, cfg.InitialAvgDeque),
		}
		w.node.Val = w
		w.core.State = cpu.IdleHalt
		e.workers = append(e.workers, w)
	}

	start := time.Now()
	rootBlk := &block{done: make(chan struct{})}
	rootBlk.pending.Store(1)
	e.workers[0].dq.Push(&task{fn: root, blk: rootBlk})

	for _, w := range e.workers[1:] {
		e.wg.Add(1)
		go func(w *worker) {
			defer e.wg.Done()
			w.loop()
		}(w)
	}
	// Worker 0 participates too.
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.workers[0].loop()
	}()

	<-rootBlk.done
	e.done.Store(true)
	e.wg.Wait()
	e.touch() // final integration
	return Report{
		Span:    time.Since(start),
		EnergyJ: e.joules,
		Tasks:   e.tasks.Load(),
		Steals:  e.steals.Load(),
		Spawns:  e.spawns.Load(),
	}
}

func defaultFreqs(spec *cpu.Spec) []units.Freq {
	switch spec.Name {
	case "SystemA":
		return []units.Freq{2_400_000 * units.KHz, 1_600_000 * units.KHz}
	default:
		return []units.Freq{spec.MaxFreq(), spec.Points[2].F}
	}
}

// mutate integrates modeled power up to now under meterMu, then
// applies fn to machine state. All reads and writes of core states and
// domain frequencies go through meterMu, so the integration always
// sees a consistent machine and the race detector stays quiet. Lock
// order: tempoMu (if held) before meterMu.
func (e *executor) mutate(fn func()) {
	e.meterMu.Lock()
	now := time.Now()
	dt := now.Sub(e.lastTouch).Seconds()
	if dt > 0 {
		e.joules += e.model.MachineWatts(e.mach) * dt
		e.lastTouch = now
	}
	if fn != nil {
		fn()
	}
	e.meterMu.Unlock()
}

// touch integrates power with no state change.
func (e *executor) touch() { e.mutate(nil) }

func (w *worker) setState(st cpu.CoreState) {
	w.e.mutate(func() {
		w.core.State = st
	})
}

// freq reads the worker's current domain frequency consistently.
func (w *worker) freq() units.Freq {
	w.e.meterMu.Lock()
	f := w.core.Dom.Freq()
	w.e.meterMu.Unlock()
	return f
}

// loop is Algorithm 3.1 on a real goroutine.
func (w *worker) loop() {
	backoff := time.Microsecond * 20
	for !w.e.done.Load() {
		if t, ok := w.popLocal(); ok {
			w.runTask(t)
			backoff = 20 * time.Microsecond
			continue
		}
		w.outOfWork()
		if t, ok := w.stealRound(); ok {
			w.runTask(t)
			backoff = 20 * time.Microsecond
			continue
		}
		w.setState(cpu.Spin)
		time.Sleep(backoff)
		if backoff < 200*time.Microsecond {
			backoff *= 2
		}
	}
}

func (w *worker) popLocal() (*task, bool) {
	t, ok := w.dq.Pop()
	if !ok {
		return nil, false
	}
	w.afterShrink()
	return t, true
}

func (w *worker) push(t *task) {
	w.e.spawns.Add(1)
	w.dq.Push(t)
	if !w.e.cfg.Hermes {
		return
	}
	w.e.tempoMu.Lock()
	if w.th.WouldRaise(w.dq.Size()) {
		w.th.Raise()
		if w.th.Tier() == w.th.K() && w.wpLevel > 0 {
			w.wpLevel = 0 // top-tier veto, as in internal/core
		}
		w.retuneLocked()
	}
	w.e.tempoMu.Unlock()
}

func (w *worker) afterShrink() {
	if !w.e.cfg.Hermes {
		return
	}
	w.e.tempoMu.Lock()
	if !w.node.AtHead() && w.th.WouldLower(w.dq.Size()) {
		w.th.Lower()
		w.retuneLocked()
	}
	w.e.tempoMu.Unlock()
}

func (w *worker) outOfWork() {
	if !w.e.cfg.Hermes {
		return
	}
	w.e.tempoMu.Lock()
	if w.node.InList() {
		w.node.Relay(func(x *worker) {
			if x.wpLevel > 0 {
				x.wpLevel--
			}
			x.retuneLocked()
		})
		w.node.Unlink()
	}
	w.e.tempoMu.Unlock()
}

func (w *worker) stealRound() (*task, bool) {
	n := len(w.e.workers)
	if n == 1 {
		return nil, false
	}
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.e.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t, ok := v.dq.Steal(); ok {
			w.e.steals.Add(1)
			if w.e.cfg.Hermes {
				w.e.tempoMu.Lock()
				w.wpLevel = v.wpLevel + 1
				if max := len(w.e.cfg.Freqs) + 1; w.wpLevel > max {
					w.wpLevel = max
				}
				if !w.node.InList() {
					tempo.InsertThief(&w.node, &v.node)
				}
				w.retuneLocked()
				// Victim-side shrink check (Figure 5 STEAL).
				if !v.node.AtHead() && v.th.WouldLower(v.dq.Size()) {
					v.th.Lower()
					v.retuneLocked()
				}
				w.e.tempoMu.Unlock()
			}
			return t, true
		}
	}
	return nil, false
}

// retuneLocked applies the composed level as the core's frequency
// vote. Transitions commit immediately (the host has no modeled
// latency daemon); tempoMu must be held.
func (w *worker) retuneLocked() {
	level := w.wpLevel + (w.th.K() - w.th.Tier())
	fi := level
	if max := len(w.e.cfg.Freqs) - 1; fi > max {
		fi = max
	}
	f := w.e.cfg.Freqs[fi]
	w.e.mutate(func() {
		if w.core.Req == f {
			return
		}
		w.e.mach.Request(w.core, f, 0)
		w.core.Dom.ForceFreq(f)
	})
}

func (w *worker) runTask(t *task) {
	w.setState(cpu.Busy)
	w.e.tasks.Add(1)
	t.fn(ctx{w})
	if t.blk != nil && t.blk.pending.Add(-1) == 0 {
		close(t.blk.done)
	}
}

// join drains a block: run own-block tasks from the local tail, help
// by stealing, and finally wait on the block channel.
func (w *worker) join(blk *block) {
	for blk.pending.Load() > 0 {
		if t, ok := w.dq.Pop(); ok {
			if t.blk != blk {
				w.dq.Push(t) // enclosing block's task; not runnable yet
			} else {
				w.afterShrink()
				w.runTask(t)
				continue
			}
		}
		if blk.pending.Load() == 0 {
			return
		}
		w.outOfWork()
		if t, ok := w.stealRound(); ok {
			w.runTask(t)
			continue
		}
		select {
		case <-blk.done:
			return
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// ctx implements wl.Ctx over a real worker.
type ctx struct{ w *worker }

var _ wl.Ctx = ctx{}

func (c ctx) Go(tasks ...wl.Task) {
	w := c.w
	switch len(tasks) {
	case 0:
		return
	case 1:
		tasks[0](c)
		return
	}
	blk := &block{done: make(chan struct{})}
	blk.pending.Store(int64(len(tasks) - 1))
	for i := len(tasks) - 1; i >= 1; i-- {
		w.push(&task{fn: tasks[i], blk: blk})
	}
	tasks[0](c)
	w.join(blk)
}

// Work executes declared cycles at the worker's current tempo
// frequency in wall-clock time: tempo throttling is real here.
func (c ctx) Work(cy units.Cycles) {
	if cy <= 0 {
		return
	}
	c.sleepFor(cy.DurationAt(c.w.freq()).Duration())
}

// Mem executes frequency-independent time.
func (c ctx) Mem(d units.Time) { c.sleepFor(d.Duration()) }

// WorkMix splits cycles into tempo-scaled and frequency-independent
// parts, as in the simulator.
func (c ctx) WorkMix(cy units.Cycles, memFrac float64) {
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	memCycles := units.Cycles(float64(cy) * memFrac)
	c.Work(cy - memCycles)
	c.Mem(memCycles.DurationAt(c.w.e.cfg.Spec.MaxFreq()))
}

func (c ctx) Worker() int { return c.w.id }

// sleepFor burns the requested wall time: sleep for the bulk, spin the
// sub-50µs remainder for fidelity.
func (c ctx) sleepFor(d time.Duration) {
	if d <= 0 {
		return
	}
	end := time.Now().Add(d)
	if d > 100*time.Microsecond {
		time.Sleep(d - 50*time.Microsecond)
	}
	for time.Now().Before(end) {
		runtime.Gosched()
	}
}

package rt

import (
	"runtime"
	"sync/atomic"

	"hermes/internal/cpu"
)

// This file is the lock-free accounting spine of the Native executor.
//
// The old design serialized the pool: every core-state transition took
// a global meterMu and walked all workers to integrate power piecewise
// (O(workers) under a lock, on the task-boundary hot path). Here each
// worker instead owns one padded accounting cell: it publishes its
// current (state, freq index, since-nanoseconds) in a single packed
// atomic word and accumulates its own exact residency matrix —
// nanoseconds spent in each (state, frequency) pair — locally. Nobody
// holds a global lock, and a worker's transition touches only its own
// cache lines.
//
// Because the power model is linear in per-core contributions
// (machine watts = uncore + Σ per-core watts(state, freq), and each
// worker owns a whole clock domain whose other cores stay Unused),
// the machine's exact integrated energy falls out of the residency
// matrix: joules = baseWatts·elapsed + Σ_w Σ_{state,freq}
// watts[state][freq]·residency_w[state][freq]. Readers (job
// snapshots, the 100 Hz meterLoop, Close) fold the cells on demand —
// integration happens at read time, not on every transition, and is
// still exact, not sampled.
//
// Consistency: each cell is guarded by a seqlock. The writer side is
// owner-mostly — the only foreign writer is a thief retuning its
// victim's tempo under tempoMu, so writer-side contention is rare and
// the CAS acquisition almost always succeeds first try. Readers
// retry until they observe a stable even sequence, making a fold a
// consistent snapshot of word + matrix without blocking the owner.

// acctFreqCap bounds the tempo-frequency set the matrix covers. Both
// modeled systems expose 5 operating points; NewExec rejects configs
// beyond the cap.
const acctFreqCap = 8

// packAcct packs a core state (2 bits), tempo-frequency index
// (6 bits) and monotonic nanoseconds since executor start (56 bits —
// over two years) into one publishable word.
func packAcct(st cpu.CoreState, fi int, sinceNS int64) uint64 {
	return uint64(st) | uint64(fi)<<2 | uint64(sinceNS)<<8
}

func unpackAcct(w uint64) (st cpu.CoreState, fi int, sinceNS int64) {
	return cpu.CoreState(w & 3), int(w >> 2 & 63), int64(w >> 8)
}

// acct is one worker's accounting cell. The leading and trailing pads
// keep neighbouring workers' cells off its cache lines; everything
// inside is written by the owning worker (or, rarely, by a retuning
// thief under the seqlock).
type acct struct {
	_    [64]byte
	seq  atomic.Uint64 // seqlock: odd while a writer is inside
	word atomic.Uint64 // packed (state, freq index, sinceNS)
	// res is the exact residency matrix in nanoseconds, indexed
	// (state-1)*acctFreqCap + freqIndex for states IdleHalt/Spin/Busy.
	res [3 * acctFreqCap]atomic.Int64
	// Per-worker scheduler counters, folded into pool totals on read:
	// the owner (acting as worker or as thief) is the only writer, so
	// the atomics never contend.
	tasks, spawns, steals, failedSteals atomic.Int64
	_                                   [64]byte
}

// lockCell acquires the writer side of the cell's seqlock. The only
// possible contention is owner vs a victim-retuning thief, so the
// loop effectively never spins.
func (a *acct) lockCell() {
	for {
		s := a.seq.Load()
		if s&1 == 0 && a.seq.CompareAndSwap(s, s+1) {
			return
		}
		runtime.Gosched()
	}
}

func (a *acct) unlockCell() { a.seq.Add(1) }

// acctSet transitions a cell's published (state, freq): st < 0 keeps
// the current state, fi < 0 the current frequency index. The elapsed
// interval is credited to the outgoing (state, freq) residency cell,
// so totals stay exact across every transition. The clock is read
// inside the critical section, which keeps published sinceNS values
// monotonic even when owner and thief writers interleave.
func (e *Exec) acctSet(a *acct, st int, fi int) {
	a.lockCell()
	now := e.nowNS()
	ost, ofi, since := unpackAcct(a.word.Load())
	if d := now - since; d > 0 && ost >= cpu.IdleHalt {
		a.res[(int(ost)-1)*acctFreqCap+ofi].Add(d)
	}
	nst, nfi := ost, ofi
	if st >= 0 {
		nst = cpu.CoreState(st)
	}
	if fi >= 0 {
		nfi = fi
	}
	a.word.Store(packAcct(nst, nfi, now))
	a.unlockCell()
}

// acctFold is a consistent read of one cell: the residency matrix
// with the in-flight interval already credited, the current (state,
// freq), and the scheduler counters.
type acctFold struct {
	res [3 * acctFreqCap]int64
	st  cpu.CoreState
	fi  int

	tasks, spawns, steals, failedSteals int64
}

// foldAcct snapshots a cell through the reader side of its seqlock,
// then extends the matrix to "now" using the published word, so the
// fold is an exact integral up to the moment of the read.
func (e *Exec) foldAcct(a *acct) acctFold {
	var f acctFold
	var word uint64
	for {
		s := a.seq.Load()
		if s&1 != 0 {
			runtime.Gosched()
			continue
		}
		word = a.word.Load()
		for i := range f.res {
			f.res[i] = a.res[i].Load()
		}
		if a.seq.Load() == s {
			break
		}
	}
	st, fi, since := unpackAcct(word)
	f.st, f.fi = st, fi
	// The clock read is ordered after the word read, and writers stamp
	// sinceNS from inside their critical section, so now >= since.
	if d := e.nowNS() - since; d > 0 && st >= cpu.IdleHalt {
		f.res[(int(st)-1)*acctFreqCap+fi] += d
	}
	f.tasks = a.tasks.Load()
	f.spawns = a.spawns.Load()
	f.steals = a.steals.Load()
	f.failedSteals = a.failedSteals.Load()
	return f
}

// Package rt is the real-concurrency executor: the same HERMES
// scheduling algorithms as internal/core — work-stealing deques, thief
// procrastination, immediacy relays, workload thresholds — run by
// actual goroutine workers in parallel on the host.
//
// Unlike the one-shot simulator, rt is a persistent service: NewExec
// starts a worker pool that outlives any single computation, Submit
// enqueues concurrent root jobs multiplexed over the shared pool, and
// Close drains it. Every job gets its own report; tempo state (the
// immediacy list, workload tiers, profiled thresholds) persists across
// jobs, so the deque-size thresholds react to aggregate traffic rather
// than a single fork-join tree. The executor shares internal/core's
// Config and Report types: all four tempo modes run here, and reports
// carry the same residency and scheduler statistics, measured over
// wall-clock time.
//
// The task-boundary hot path is lock-free and allocation-free in
// steady state. The deque defaults to the Chase–Lev implementation
// (CAS only on steals and the owner's last-item race; core.DequeTHE
// selects the paper-fidelity THE protocol instead); tasks and
// fork-join blocks come from per-worker free lists; and accounting
// never takes a global lock — each worker publishes its (state, freq,
// since) in a packed atomic word and accumulates an exact per-worker
// residency matrix (see acct.go), from which readers fold machine
// energy on demand: at job boundaries, at the paper's 100 Hz DAQ
// cadence in meterLoop, and on Close. Workload-tempo threshold checks
// pre-filter through lock-free published bounds, so PUSH and POP take
// tempoMu only when a tier crossing is actually possible.
//
// Since the host exposes neither per-domain DVFS nor an energy meter,
// tempo control here is emulated and accounted rather than physically
// applied: a worker at tempo frequency f executes declared Work cycles
// at rate f in wall-clock time (slow tempos genuinely take longer),
// and energy integrates the same calibrated power model over
// wall-clock residency. Real computation inside tasks runs at native
// speed regardless. The executor therefore demonstrates and tests the
// algorithms under true parallelism (including the race behaviour of
// the deques), while the discrete-event executor in internal/core
// remains the measurement instrument.
//
// Unlike the simulator, runs are not deterministic: the OS scheduler
// decides races, exactly as on the paper's machines. The sim-only
// Config knobs are ignored here: the overheads (StealCost,
// PushPopCost, yield spins, AffinityCost) because real locks and
// syscalls cost what they cost, the Cancelled hook because rt cancels
// per job through the Submit context, and Scheduling because workers
// are always statically pinned (reports are normalized to Static).
package rt

package rt

import (
	"sync/atomic"
	"testing"

	"hermes/internal/cpu"
	"hermes/internal/units"
	"hermes/internal/wl"
)

func TestEveryTaskRunsOnce(t *testing.T) {
	const n = 400
	var counts [n]atomic.Int32
	r := Run(Config{Spec: cpu.SystemB(), Workers: 4, Hermes: true, Seed: 1}, func(c wl.Ctx) {
		wl.For(c, 0, n, 4, func(c wl.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
			c.Work(units.Cycles(100_000 * (hi - lo)))
		})
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("element %d ran %d times", i, got)
		}
	}
	if r.Tasks == 0 || r.Span <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("bad report: %+v", r)
	}
}

func TestRealParallelism(t *testing.T) {
	// With 4 workers and plenty of independent leaves, several workers
	// must actually execute tasks (worker ids observed > 1).
	var seen [4]atomic.Int32
	Run(Config{Spec: cpu.SystemB(), Workers: 4, Seed: 2}, func(c wl.Ctx) {
		wl.For(c, 0, 64, 1, func(c wl.Ctx, lo, hi int) {
			seen[c.Worker()].Add(1)
			c.Work(2_000_000)
		})
	})
	workersUsed := 0
	for i := range seen {
		if seen[i].Load() > 0 {
			workersUsed++
		}
	}
	if workersUsed < 2 {
		t.Fatalf("only %d workers executed tasks", workersUsed)
	}
}

func TestNestedBlocks(t *testing.T) {
	var leaves atomic.Int32
	var tree func(d int) wl.Task
	tree = func(d int) wl.Task {
		return func(c wl.Ctx) {
			if d == 0 {
				leaves.Add(1)
				c.Work(50_000)
				return
			}
			c.Go(tree(d-1), tree(d-1))
		}
	}
	Run(Config{Spec: cpu.SystemB(), Workers: 4, Hermes: true, Seed: 3}, tree(7))
	if got := leaves.Load(); got != 128 {
		t.Fatalf("leaves = %d, want 128", got)
	}
}

func TestBaselineVsHermesBothComplete(t *testing.T) {
	work := func(c wl.Ctx) {
		wl.For(c, 0, 128, 2, func(c wl.Ctx, lo, hi int) {
			c.WorkMix(units.Cycles(300_000*(hi-lo)), 0.7)
		})
	}
	b := Run(Config{Spec: cpu.SystemB(), Workers: 4, Hermes: false, Seed: 4}, work)
	h := Run(Config{Spec: cpu.SystemB(), Workers: 4, Hermes: true, Seed: 4}, work)
	if b.EnergyJ <= 0 || h.EnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
	if b.Steals == 0 && h.Steals == 0 {
		t.Log("note: no steals occurred in either run (small workload)")
	}
	// No timing assertion: wall-clock on shared CI is not a meter.
}

func TestSingleWorker(t *testing.T) {
	ran := 0
	Run(Config{Spec: cpu.SystemB(), Workers: 1, Hermes: true, Seed: 5}, func(c wl.Ctx) {
		c.Go(
			func(wl.Ctx) { ran++ },
			func(wl.Ctx) { ran++ },
			func(wl.Ctx) { ran++ },
		)
	})
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}
}

func TestWorkerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too many workers")
		}
	}()
	Run(Config{Spec: cpu.SystemB(), Workers: 5}, func(wl.Ctx) {})
}

package rt

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/job"
	"hermes/internal/units"
	"hermes/internal/wl"
)

func TestEveryTaskRunsOnce(t *testing.T) {
	const n = 400
	var counts [n]atomic.Int32
	r, err := Run(core.Config{Spec: cpu.SystemB(), Workers: 4, Mode: core.Unified, Seed: 1}, func(c wl.Ctx) {
		wl.For(c, 0, n, 4, func(c wl.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
			c.Work(units.Cycles(100_000 * (hi - lo)))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("element %d ran %d times", i, got)
		}
	}
	if r.Tasks == 0 || r.Span <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("bad report: %+v", r)
	}
	if r.System != "SystemB" || r.Mode != core.Unified || r.Workers != 4 {
		t.Fatalf("unified report fields wrong: %+v", r)
	}
}

func TestRealParallelism(t *testing.T) {
	// With 4 workers and plenty of independent leaves, several workers
	// must actually execute tasks (worker ids observed > 1).
	var seen [4]atomic.Int32
	_, err := Run(core.Config{Spec: cpu.SystemB(), Workers: 4, Seed: 2}, func(c wl.Ctx) {
		wl.For(c, 0, 64, 1, func(c wl.Ctx, lo, hi int) {
			seen[c.Worker()].Add(1)
			c.Work(2_000_000)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	workersUsed := 0
	for i := range seen {
		if seen[i].Load() > 0 {
			workersUsed++
		}
	}
	if workersUsed < 2 {
		t.Fatalf("only %d workers executed tasks", workersUsed)
	}
}

func TestNestedBlocks(t *testing.T) {
	var leaves atomic.Int32
	var tree func(d int) wl.Task
	tree = func(d int) wl.Task {
		return func(c wl.Ctx) {
			if d == 0 {
				leaves.Add(1)
				c.Work(50_000)
				return
			}
			c.Go(tree(d-1), tree(d-1))
		}
	}
	if _, err := Run(core.Config{Spec: cpu.SystemB(), Workers: 4, Mode: core.Unified, Seed: 3}, tree(7)); err != nil {
		t.Fatal(err)
	}
	if got := leaves.Load(); got != 128 {
		t.Fatalf("leaves = %d, want 128", got)
	}
}

func TestAllModesComplete(t *testing.T) {
	for _, mode := range []core.Mode{core.Baseline, core.WorkpathOnly, core.WorkloadOnly, core.Unified} {
		work := func(c wl.Ctx) {
			wl.For(c, 0, 128, 2, func(c wl.Ctx, lo, hi int) {
				c.WorkMix(units.Cycles(300_000*(hi-lo)), 0.7)
			})
		}
		r, err := Run(core.Config{Spec: cpu.SystemB(), Workers: 4, Mode: mode, Seed: 4}, work)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.EnergyJ <= 0 {
			t.Fatalf("%v: no energy accounted", mode)
		}
		if mode == core.Baseline && r.TempoSwitches != 0 {
			t.Fatalf("baseline made %d tempo switches", r.TempoSwitches)
		}
		// No timing assertion: wall-clock on shared CI is not a meter.
	}
}

func TestSingleWorker(t *testing.T) {
	var ran atomic.Int32
	_, err := Run(core.Config{Spec: cpu.SystemB(), Workers: 1, Mode: core.Unified, Seed: 5}, func(c wl.Ctx) {
		c.Go(
			func(wl.Ctx) { ran.Add(1) },
			func(wl.Ctx) { ran.Add(1) },
			func(wl.Ctx) { ran.Add(1) },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("ran = %d, want 3", got)
	}
}

func TestWorkerValidation(t *testing.T) {
	if _, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 5}); err == nil {
		t.Fatal("expected error for too many workers")
	}
	if _, err := Run(core.Config{Spec: cpu.SystemB(), Workers: 5}, func(wl.Ctx) {}); err == nil {
		t.Fatal("expected error from Run for too many workers")
	}
}

func TestMultiJobSubmission(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 4, Mode: core.Unified, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const jobs, leaves = 5, 32
	counters := make([]atomic.Int32, jobs)
	var subs []*job.Job
	for i := 0; i < jobs; i++ {
		i := i
		j, err := e.Submit(context.Background(), func(c wl.Ctx) {
			wl.For(c, 0, leaves, 1, func(c wl.Ctx, lo, hi int) {
				counters[i].Add(int32(hi - lo))
				c.Work(200_000)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, j)
	}
	seenIDs := map[int64]bool{}
	for i, j := range subs {
		r, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if counters[i].Load() != leaves {
			t.Fatalf("job %d ran %d/%d leaves", i, counters[i].Load(), leaves)
		}
		if r.Tasks == 0 || r.Span <= 0 {
			t.Fatalf("job %d bad report: %+v", i, r)
		}
		if seenIDs[j.ID()] {
			t.Fatalf("duplicate job id %d", j.ID())
		}
		seenIDs[j.ID()] = true
	}
}

func TestJobCancellation(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 2, Mode: core.Baseline, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int32
	j, err := e.Submit(ctx, func(c wl.Ctx) {
		wl.For(c, 0, 10_000, 1, func(c wl.Ctx, lo, hi int) {
			ran.Add(1)
			select {
			case started <- struct{}{}:
			default:
			}
			c.Mem(500 * units.Microsecond)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job did not drain")
	}
	if _, err := j.Wait(); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop the job (ran %d leaves)", n)
	}
}

func TestTaskPanicFailsOnlyItsJob(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 2, Mode: core.Unified, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	bad, err := e.Submit(context.Background(), func(c wl.Ctx) {
		c.Go(
			func(wl.Ctx) { panic("boom") },
			func(c wl.Ctx) { c.Work(100_000) },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	good, err := e.Submit(context.Background(), func(c wl.Ctx) {
		wl.For(c, 0, 16, 1, func(c wl.Ctx, lo, hi int) {
			ran.Add(1)
			c.Work(100_000)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Wait(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job err = %v", err)
	}
	if _, err := good.Wait(); err != nil {
		t.Fatalf("good job failed after neighbour panic: %v", err)
	}
	if ran.Load() != 16 {
		t.Fatalf("good job ran %d/16 leaves", ran.Load())
	}
}

func TestPreCancelledSubmit(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	j, err := e.Submit(ctx, func(wl.Ctx) { ran.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	r, werr := j.Wait()
	if werr != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", werr)
	}
	if ran.Load() != 0 || r.Tasks != 0 {
		t.Fatalf("pre-cancelled job executed work (ran=%d tasks=%d)", ran.Load(), r.Tasks)
	}
}

func TestNativeDefaultWorkersClampedToHost(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	want := runtime.GOMAXPROCS(0)
	if d := cpu.SystemB().Domains(); want > d {
		want = d
	}
	if got := e.Config().Workers; got != want {
		t.Fatalf("default native workers = %d, want min(GOMAXPROCS, domains) = %d", got, want)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), func(wl.Ctx) {}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Submit(context.Background(), nil); err != ErrClosed && err != ErrNilTask {
		t.Fatalf("nil task after close: %v", err)
	}
	// A cancelled context must not smuggle a submission past Close.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Submit(cctx, func(wl.Ctx) {}); err != ErrClosed {
		t.Fatalf("cancelled-ctx submit after close: err = %v, want ErrClosed", err)
	}
}

func TestConcurrentClose(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(context.Background(), func(c wl.Ctx) { c.Work(1_000_000) }); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := e.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentJobEnergyPartition pins the worker-time-weighted
// energy attribution: concurrent jobs share the machine's modeled
// energy instead of each claiming the whole draw over its span. With
// span-delta attribution two fully-overlapping jobs would each report
// ~the machine total (sum ~2x); weighted attribution keeps the sum at
// ~1x.
func TestConcurrentJobEnergyPartition(t *testing.T) {
	e, err := NewExec(core.Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	work := func(c wl.Ctx) {
		wl.For(c, 0, 16, 1, func(c wl.Ctx, lo, hi int) {
			c.Work(50_000_000) // ~20ms at 2.4GHz per element
		})
	}
	machineStart := e.snapshot()
	j1, err := e.Submit(context.Background(), work)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := e.Submit(context.Background(), work)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	machineEnd := e.snapshot()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if r1.EnergyJ <= 0 || r2.EnergyJ <= 0 {
		t.Fatalf("jobs lost their energy: %g, %g", r1.EnergyJ, r2.EnergyJ)
	}
	total := machineEnd.joules - machineStart.joules
	sum := r1.EnergyJ + r2.EnergyJ
	if sum > total*1.05 {
		t.Fatalf("per-job energies double-count: sum=%.3fJ > machine total %.3fJ", sum, total)
	}
	// The two identical overlapping jobs should also split the energy
	// roughly evenly — neither claims the whole machine.
	if r1.EnergyJ > total*0.9 || r2.EnergyJ > total*0.9 {
		t.Fatalf("one job claimed nearly the whole machine: %.3fJ and %.3fJ of %.3fJ",
			r1.EnergyJ, r2.EnergyJ, total)
	}
}

// TestSoloJobKeepsFullMachineEnergy: a job running alone still owns
// the whole machine's draw over its span (idle cores included), as
// before the weighted attribution.
func TestSoloJobKeepsFullMachineEnergy(t *testing.T) {
	e, err := NewExec(core.Config{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := e.snapshot()
	j, err := e.Submit(context.Background(), func(c wl.Ctx) {
		wl.For(c, 0, 8, 1, func(c wl.Ctx, lo, hi int) {
			c.Work(50_000_000)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	end := e.snapshot()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	total := end.joules - start.joules
	if r.EnergyJ < total*0.80 || r.EnergyJ > total*1.01 {
		t.Fatalf("solo job energy %.3fJ out of band vs machine %.3fJ", r.EnergyJ, total)
	}
}

// TestAccountingResidencyContinuity pins the per-worker lock-free
// accounting against wall-clock continuity: over any window, each
// worker's busy+spin+idle residency must cover the window — the fold
// extends the in-flight interval to "now", so no time may leak
// between transitions.
func TestAccountingResidencyContinuity(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 4, Mode: core.Unified, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	t0 := e.nowNS()
	s0 := e.snapshot()
	j, err := e.Submit(context.Background(), func(c wl.Ctx) {
		wl.For(c, 0, 32, 1, func(c wl.Ctx, lo, hi int) {
			c.Work(20_000_000) // ~8ms at 2.4GHz
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	s1 := e.snapshot()
	t1 := e.nowNS()
	window := units.Time(t1-t0) * units.Nanosecond
	for i := range s1.perWorker {
		a, b := s0.perWorker[i], s1.perWorker[i]
		covered := (b.Busy - a.Busy) + (b.Spin - a.Spin) + (b.Idle - a.Idle)
		// The two snapshots bracket [t0, t1] loosely (each worker is
		// folded at a slightly different instant), so allow a few
		// percent of slack in both directions.
		if covered < window*9/10 || covered > window*11/10 {
			t.Fatalf("worker %d residency %v does not cover window %v", i, covered, window)
		}
	}
}

// TestAccountingSampledEquivalence is the accounting-equivalence
// contract: an independent old-style integrator — periodically
// sampling every worker's published (state, freq) word and summing
// watts·dt, exactly how the pre-lock-free meter integrated under its
// global mutex — must agree with the exact folded energy on a solo
// job within sampling tolerance. This pins that the published words
// track the real state trajectory and that the residency matrices the
// fold integrates match them.
func TestAccountingSampledEquivalence(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 4, Mode: core.Baseline, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	stop := make(chan struct{})
	done := make(chan float64)
	start := e.snapshot()
	go func() {
		var joules float64
		last := e.nowNS()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				done <- joules
				return
			case <-tick.C:
			}
			watts := e.baseWatts
			for _, w := range e.workers {
				st, fi, _ := unpackAcct(w.acct.word.Load())
				watts += e.watts[st-1][fi]
			}
			now := e.nowNS()
			joules += watts * float64(now-last) * 1e-9
			last = now
		}
	}()

	j, err := e.Submit(context.Background(), func(c wl.Ctx) {
		wl.For(c, 0, 16, 1, func(c wl.Ctx, lo, hi int) {
			c.Work(50_000_000) // ~20ms at 2.4GHz: dwell times >> sample period
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	sampled := <-done
	end := e.snapshot()

	exact := end.joules - start.joules
	if exact <= 0 {
		t.Fatalf("no exact energy integrated: %g", exact)
	}
	ratio := sampled / exact
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("sampled integration %.3fJ vs exact fold %.3fJ (ratio %.3f) out of tolerance",
			sampled, exact, ratio)
	}
}

// TestSpawnJoinSteadyStateZeroAlloc pins the free lists: once the
// pool is warm, a job performing tens of thousands of spawn/joins
// must allocate only its fixed per-job setup — no per-operation
// allocations anywhere in the scheduler.
func TestSpawnJoinSteadyStateZeroAlloc(t *testing.T) {
	e, err := NewExec(core.Config{Spec: cpu.SystemB(), Workers: 2, Mode: core.Baseline, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const ops = 20_000
	pair := []wl.Task{func(wl.Ctx) {}, func(wl.Ctx) {}}
	run := func() {
		j, err := e.Submit(context.Background(), func(c wl.Ctx) {
			for i := 0; i < ops; i++ {
				c.Go(pair...)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the free lists and idle timers
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc
	// Per-job setup (jobState, Job, snapshots, report, watch
	// goroutine) is fixed and small; 128 KiB of slack over 20k ops
	// still proves ~0 B/op on the spawn/join path itself.
	if allocated > 128<<10 {
		t.Fatalf("steady-state job allocated %d B over %d spawn/joins (%.1f B/op)",
			allocated, ops, float64(allocated)/ops)
	}
}

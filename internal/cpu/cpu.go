// Package cpu models the processors the paper evaluates on: multi-core
// CPUs whose cores are grouped into clock domains (two cores per
// domain on both AMD Piledriver and Bulldozer), with per-domain DVFS
// that takes effect after a transition latency in the tens of
// microseconds.
//
// The package is passive: it holds state and answers queries. The
// scheduler decides when transitions commit and what their
// consequences are (re-rating in-flight work, energy integration).
package cpu

import (
	"fmt"

	"hermes/internal/units"
)

// OperatingPoint pairs a supported core frequency with the voltage the
// hardware applies at that frequency. Dynamic power scales with V²·f,
// so the voltage column is what makes low frequencies profitable.
type OperatingPoint struct {
	F          units.Freq
	MilliVolts int
}

// Spec is the immutable description of a machine model.
type Spec struct {
	Name           string
	Cores          int
	CoresPerDomain int
	Packages       int
	// Points lists supported operating points in descending frequency
	// order (fastest first), matching the paper's f1 > f2 > … > fn.
	Points []OperatingPoint
	// DVFSLatency is the time between requesting a frequency change
	// and the domain running at the new frequency.
	DVFSLatency units.Time
}

// Domains reports the number of independent clock domains.
func (s *Spec) Domains() int { return s.Cores / s.CoresPerDomain }

// MaxFreq returns the fastest supported frequency.
func (s *Spec) MaxFreq() units.Freq { return s.Points[0].F }

// MinFreq returns the slowest supported frequency.
func (s *Spec) MinFreq() units.Freq { return s.Points[len(s.Points)-1].F }

// Freqs returns the supported frequencies, fastest first.
func (s *Spec) Freqs() []units.Freq {
	out := make([]units.Freq, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.F
	}
	return out
}

// Voltage returns the supply voltage (millivolts) at frequency f.
// It panics if f is not a supported operating point: requesting an
// unsupported frequency is a runtime bug, not an input error.
func (s *Spec) Voltage(f units.Freq) int {
	for _, p := range s.Points {
		if p.F == f {
			return p.MilliVolts
		}
	}
	panic(fmt.Sprintf("cpu: %s does not support %v", s.Name, f))
}

// Supports reports whether f is one of the spec's operating points.
func (s *Spec) Supports(f units.Freq) bool {
	for _, p := range s.Points {
		if p.F == f {
			return true
		}
	}
	return false
}

// SystemA models the paper's System A: two 16-core AMD Opteron 6378
// (Piledriver) packages — 32 cores in 16 independent clock domains —
// supporting 1.4, 1.6, 1.9, 2.2 and 2.4 GHz. Voltages follow the
// near-linear V/f slope of the Piledriver family.
func SystemA() *Spec {
	return &Spec{
		Name:           "SystemA",
		Cores:          32,
		CoresPerDomain: 2,
		Packages:       2,
		Points: []OperatingPoint{
			{2_400_000 * units.KHz, 1300},
			{2_200_000 * units.KHz, 1238},
			{1_900_000 * units.KHz, 1144},
			{1_600_000 * units.KHz, 1050},
			{1_400_000 * units.KHz, 988},
		},
		DVFSLatency: 50 * units.Microsecond,
	}
}

// SystemB models the paper's System B: one 8-core AMD FX-8150
// (Bulldozer) — 4 clock domains — supporting 1.4, 2.1, 2.7, 3.3 and
// 3.6 GHz.
func SystemB() *Spec {
	return &Spec{
		Name:           "SystemB",
		Cores:          8,
		CoresPerDomain: 2,
		Packages:       1,
		Points: []OperatingPoint{
			{3_600_000 * units.KHz, 1412},
			{3_300_000 * units.KHz, 1350},
			{2_700_000 * units.KHz, 1238},
			{2_100_000 * units.KHz, 1125},
			{1_400_000 * units.KHz, 1000},
		},
		DVFSLatency: 50 * units.Microsecond,
	}
}

// CoreState describes what a core is doing, for power accounting.
type CoreState uint8

const (
	// Unused: no worker assigned; the core sits in a deep sleep state.
	Unused CoreState = iota
	// IdleHalt: a worker is assigned but has parked (halted) the core.
	IdleHalt
	// Spin: the worker is busy-waiting — steal attempts, yield
	// backoff. Burns most, but not all, of full dynamic power.
	Spin
	// Busy: the worker executes task work or scheduler bookkeeping.
	Busy
)

func (s CoreState) String() string {
	switch s {
	case Unused:
		return "unused"
	case IdleHalt:
		return "idle"
	case Spin:
		return "spin"
	case Busy:
		return "busy"
	}
	return "invalid"
}

// Core is one hardware core.
type Core struct {
	ID    int
	Dom   *Domain
	State CoreState
	// Req is the frequency this core's worker last requested. The
	// domain runs at the maximum request across its in-use cores
	// (hardware picks the highest vote in a shared domain).
	Req units.Freq
}

// Domain is an independent clock domain: the unit of DVFS.
type Domain struct {
	ID    int
	Cores []*Core

	cur      units.Freq
	target   units.Freq
	pending  bool
	commitAt units.Time
}

// Freq returns the frequency the domain currently runs at.
func (d *Domain) Freq() units.Freq { return d.cur }

// Pending reports whether a transition is in flight and when it lands.
func (d *Domain) Pending() (units.Freq, units.Time, bool) {
	return d.target, d.commitAt, d.pending
}

// vote returns the frequency the domain should run at: the maximum
// request among cores that are in use, or the current frequency if no
// core is in use (idle domains hold their setting, per the paper's
// idle-worker policy).
func (d *Domain) vote() units.Freq {
	var best units.Freq
	for _, c := range d.Cores {
		if c.State != Unused && c.Req > best {
			best = c.Req
		}
	}
	if best == 0 {
		return d.cur
	}
	return best
}

// Machine is a runtime instance of a Spec.
type Machine struct {
	Spec    *Spec
	Domains []*Domain
	Cores   []*Core
}

// NewMachine instantiates spec with every core Unused and every domain
// at the maximum frequency (Linux performance governor boot state).
func NewMachine(spec *Spec) *Machine {
	m := &Machine{Spec: spec}
	nd := spec.Domains()
	m.Domains = make([]*Domain, nd)
	m.Cores = make([]*Core, spec.Cores)
	for i := range m.Domains {
		m.Domains[i] = &Domain{ID: i, cur: spec.MaxFreq()}
	}
	for i := range m.Cores {
		d := m.Domains[i/spec.CoresPerDomain]
		c := &Core{ID: i, Dom: d, State: Unused, Req: spec.MaxFreq()}
		d.Cores = append(d.Cores, c)
		m.Cores[i] = c
	}
	return m
}

// DistinctDomainCores returns n cores on n distinct clock domains (the
// first core of each domain), reproducing the paper's placement rule
// that avoids DVFS interference between workers. It panics if the
// machine has fewer domains than n.
func (m *Machine) DistinctDomainCores(n int) []*Core {
	if n > len(m.Domains) {
		panic(fmt.Sprintf("cpu: %s has %d domains, cannot place %d workers on distinct domains",
			m.Spec.Name, len(m.Domains), n))
	}
	cores := make([]*Core, n)
	for i := 0; i < n; i++ {
		cores[i] = m.Domains[i].Cores[0]
	}
	return cores
}

// Request records core c's vote for frequency f and recomputes the
// domain target. If the effective target differs from both the current
// frequency and any in-flight transition target, a new transition is
// started, committing at now + DVFSLatency; the returned commitAt is
// then valid and changed is true. A request that re-targets the
// current frequency cancels any in-flight transition.
func (m *Machine) Request(c *Core, f units.Freq, now units.Time) (changed bool, commitAt units.Time) {
	if !m.Spec.Supports(f) {
		panic(fmt.Sprintf("cpu: request for unsupported frequency %v on %s", f, m.Spec.Name))
	}
	c.Req = f
	d := c.Dom
	want := d.vote()
	if want == d.cur {
		d.pending = false
		return false, 0
	}
	if d.pending && d.target == want {
		return false, 0 // already heading there
	}
	d.pending = true
	d.target = want
	d.commitAt = now + m.Spec.DVFSLatency
	return true, d.commitAt
}

// Commit applies the in-flight transition on d if one is due at or
// before now. It reports whether the domain's effective frequency
// changed. Commit events can be stale (superseded by later requests);
// stale commits are no-ops.
func (d *Domain) Commit(now units.Time) bool {
	if !d.pending || now < d.commitAt {
		return false
	}
	d.pending = false
	if d.target == d.cur {
		return false
	}
	d.cur = d.target
	return true
}

// ForceFreq sets the domain frequency immediately, bypassing the
// transition latency. Used for boot-time initialization before the
// clock starts.
func (d *Domain) ForceFreq(f units.Freq) {
	d.cur = f
	d.pending = false
	for _, c := range d.Cores {
		if c.State != Unused {
			c.Req = f
		}
	}
}

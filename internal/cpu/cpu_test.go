package cpu

import (
	"testing"

	"hermes/internal/units"
)

func TestSystemSpecs(t *testing.T) {
	a, b := SystemA(), SystemB()
	if a.Cores != 32 || a.Domains() != 16 || a.Packages != 2 {
		t.Fatalf("SystemA topology: cores=%d domains=%d pkgs=%d", a.Cores, a.Domains(), a.Packages)
	}
	if b.Cores != 8 || b.Domains() != 4 || b.Packages != 1 {
		t.Fatalf("SystemB topology: cores=%d domains=%d pkgs=%d", b.Cores, b.Domains(), b.Packages)
	}
	if a.MaxFreq() != 2_400_000*units.KHz || a.MinFreq() != 1_400_000*units.KHz {
		t.Fatalf("SystemA freq range: %v..%v", a.MinFreq(), a.MaxFreq())
	}
	if b.MaxFreq() != 3_600_000*units.KHz {
		t.Fatalf("SystemB max freq: %v", b.MaxFreq())
	}
	// Five operating points each, descending, with descending voltage.
	for _, s := range []*Spec{a, b} {
		if len(s.Points) != 5 {
			t.Fatalf("%s: %d points, want 5", s.Name, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].F >= s.Points[i-1].F {
				t.Fatalf("%s: points not descending by frequency", s.Name)
			}
			if s.Points[i].MilliVolts >= s.Points[i-1].MilliVolts {
				t.Fatalf("%s: voltage must fall with frequency", s.Name)
			}
		}
	}
}

func TestVoltageLookup(t *testing.T) {
	a := SystemA()
	if v := a.Voltage(1_600_000 * units.KHz); v != 1050 {
		t.Fatalf("Voltage(1.6GHz) = %d", v)
	}
	if !a.Supports(1_900_000 * units.KHz) {
		t.Fatal("SystemA should support 1.9GHz")
	}
	if a.Supports(2_000_000 * units.KHz) {
		t.Fatal("SystemA should not support 2.0GHz")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Voltage of unsupported frequency should panic")
		}
	}()
	a.Voltage(1 * units.GHz)
}

func TestNewMachineBootState(t *testing.T) {
	m := NewMachine(SystemA())
	if len(m.Cores) != 32 || len(m.Domains) != 16 {
		t.Fatalf("machine size: %d cores, %d domains", len(m.Cores), len(m.Domains))
	}
	for _, d := range m.Domains {
		if d.Freq() != m.Spec.MaxFreq() {
			t.Fatalf("domain %d boots at %v, want max", d.ID, d.Freq())
		}
		if len(d.Cores) != 2 {
			t.Fatalf("domain %d has %d cores", d.ID, len(d.Cores))
		}
	}
	for _, c := range m.Cores {
		if c.State != Unused {
			t.Fatalf("core %d boots %v, want unused", c.ID, c.State)
		}
	}
}

func TestDistinctDomainCores(t *testing.T) {
	m := NewMachine(SystemA())
	cores := m.DistinctDomainCores(16)
	seen := map[int]bool{}
	for _, c := range cores {
		if seen[c.Dom.ID] {
			t.Fatalf("domain %d used twice", c.Dom.ID)
		}
		seen[c.Dom.ID] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for more workers than domains")
		}
	}()
	m.DistinctDomainCores(17)
}

func TestRequestCommitCycle(t *testing.T) {
	m := NewMachine(SystemA())
	c := m.Cores[0]
	c.State = Busy
	slow := units.Freq(1_600_000 * units.KHz)

	changed, at := m.Request(c, slow, 1*units.Millisecond)
	if !changed {
		t.Fatal("request to a new frequency should start a transition")
	}
	if want := 1*units.Millisecond + m.Spec.DVFSLatency; at != want {
		t.Fatalf("commitAt = %v, want %v", at, want)
	}
	if c.Dom.Freq() != m.Spec.MaxFreq() {
		t.Fatal("frequency changed before the transition latency elapsed")
	}
	// Early commit is a no-op.
	if c.Dom.Commit(at - 1) {
		t.Fatal("commit before commitAt should be a no-op")
	}
	if !c.Dom.Commit(at) {
		t.Fatal("commit at commitAt should apply")
	}
	if c.Dom.Freq() != slow {
		t.Fatalf("domain at %v, want %v", c.Dom.Freq(), slow)
	}
}

func TestRequestSameFreqNoChange(t *testing.T) {
	m := NewMachine(SystemA())
	c := m.Cores[0]
	c.State = Busy
	if changed, _ := m.Request(c, m.Spec.MaxFreq(), 0); changed {
		t.Fatal("requesting the current frequency should not transition")
	}
}

func TestRequestCancelsPending(t *testing.T) {
	m := NewMachine(SystemA())
	c := m.Cores[0]
	c.State = Busy
	slow := units.Freq(1_400_000 * units.KHz)
	m.Request(c, slow, 0)
	// Re-request max before commit: transition cancelled.
	if changed, _ := m.Request(c, m.Spec.MaxFreq(), 10*units.Microsecond); changed {
		t.Fatal("re-targeting current frequency should cancel, not transition")
	}
	if c.Dom.Commit(m.Spec.DVFSLatency) {
		t.Fatal("stale commit should be a no-op after cancellation")
	}
	if c.Dom.Freq() != m.Spec.MaxFreq() {
		t.Fatal("frequency should remain at max")
	}
}

func TestDomainMaxVote(t *testing.T) {
	// Two in-use cores in one domain: the domain runs at the faster
	// request (hardware picks the highest vote).
	m := NewMachine(SystemB())
	d := m.Domains[0]
	c0, c1 := d.Cores[0], d.Cores[1]
	c0.State, c1.State = Busy, Busy
	slow := units.Freq(2_700_000 * units.KHz)

	// Both vote slow → transition to slow.
	m.Request(c0, slow, 0)
	changed, at := m.Request(c1, slow, 0)
	_ = changed
	d.Commit(at)
	if d.Freq() != slow {
		t.Fatalf("both-slow vote: domain at %v", d.Freq())
	}
	// One core votes fast again → domain must go fast.
	changed, at = m.Request(c0, m.Spec.MaxFreq(), at)
	if !changed {
		t.Fatal("fast vote should win over slow sibling")
	}
	d.Commit(at)
	if d.Freq() != m.Spec.MaxFreq() {
		t.Fatalf("max-vote: domain at %v", d.Freq())
	}
}

func TestUnusedCoresDoNotVote(t *testing.T) {
	m := NewMachine(SystemA())
	d := m.Domains[0]
	c0 := d.Cores[0]
	c0.State = Busy
	slow := units.Freq(1_400_000 * units.KHz)
	// Sibling core is Unused with boot Req = max; it must not hold the
	// domain fast.
	changed, at := m.Request(c0, slow, 0)
	if !changed {
		t.Fatal("single in-use core's slow vote should win")
	}
	d.Commit(at)
	if d.Freq() != slow {
		t.Fatalf("domain at %v, want %v", d.Freq(), slow)
	}
}

func TestRequestUnsupportedPanics(t *testing.T) {
	m := NewMachine(SystemA())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported frequency")
		}
	}()
	m.Request(m.Cores[0], 5*units.GHz, 0)
}

func TestForceFreq(t *testing.T) {
	m := NewMachine(SystemA())
	d := m.Domains[3]
	d.Cores[0].State = Busy
	slow := units.Freq(1_600_000 * units.KHz)
	d.ForceFreq(slow)
	if d.Freq() != slow {
		t.Fatal("ForceFreq did not apply")
	}
	if d.Cores[0].Req != slow {
		t.Fatal("ForceFreq should align in-use core requests")
	}
}

func TestCoreStateString(t *testing.T) {
	want := map[CoreState]string{Unused: "unused", IdleHalt: "idle", Spin: "spin", Busy: "busy"}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("state %d prints %q", st, st.String())
		}
	}
}

package trace

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"hermes"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// Salt is the PCG stream constant every seeded arrival process draws
// from. It is THE single copy: the sweep and the wall-clock load
// generator both generate their schedules through this package, so a
// one-point sweep and `-load` replay the same seeded trace by
// construction, not by keeping two constants in sync.
const Salt = 0x9e3779b97f4a7c15

// Default is the process name an empty -trace flag (or config field)
// resolves to. Artifacts normalize it to "" (see Canonical) so the
// poisson-era JSON shape is preserved byte-for-byte.
const Default = "poisson"

// Point is one generated arrival: its offset from the window start,
// a service-size multiplier (1 = the workload's nominal size), and
// the service class the arrival belongs to (zero = unclassed, the
// single-class processes).
type Point struct {
	At    units.Time
	Size  float64
	Class hermes.Class
}

// Proc is one registered arrival process.
type Proc struct {
	// Name is the registry key (-trace flag value).
	Name string
	// Desc is a one-line description.
	Desc string
	// Gen draws the point sequence at mean rate rps over (0, horizon]
	// from rng. It must consume rng deterministically — the sequence
	// is a function of (seed, rps, horizon) alone — and return points
	// in ascending order.
	Gen func(rng *rand.Rand, rps float64, horizon units.Time) []Point
}

var (
	regMu sync.RWMutex
	procs = map[string]Proc{}
	order []string
)

// Register adds an arrival process to the registry, panicking on a
// duplicate or malformed Proc (registration happens in package init).
func Register(p Proc) {
	if p.Name == "" || p.Gen == nil {
		panic(fmt.Sprintf("trace: Register of malformed process %+v", p))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := procs[p.Name]; dup {
		panic(fmt.Sprintf("trace: Register called twice for %q", p.Name))
	}
	procs[p.Name] = p
	order = append(order, p.Name)
}

// Lookup finds a registered process by name.
func Lookup(name string) (Proc, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := procs[name]
	return p, ok
}

// Names lists the registered process names in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Resolve maps a user-supplied process name ("" = Default) to its
// registered Proc, rejecting unknown names with the registered list.
func Resolve(name string) (Proc, error) {
	if name == "" {
		name = Default
	}
	p, ok := Lookup(name)
	if !ok {
		return Proc{}, fmt.Errorf("trace: unknown arrival process %q (registered: %v)", name, Names())
	}
	return p, nil
}

// Canonical returns the artifact form of a process name: the default
// process collapses to "" so poisson-era artifacts keep their
// byte-exact shape; any other name passes through.
func Canonical(name string) string {
	if name == Default {
		return ""
	}
	return name
}

// Points validates the rate and window and generates the process's
// deterministic point sequence for one seed.
func (p Proc) Points(seed int64, rps float64, window time.Duration) ([]Point, error) {
	if p.Gen == nil {
		return nil, fmt.Errorf("trace: process %q has no generator", p.Name)
	}
	if rps <= 0 {
		return nil, fmt.Errorf("trace: rps must be positive, got %g", rps)
	}
	if window <= 0 {
		return nil, fmt.Errorf("trace: window must be positive, got %v", window)
	}
	rng := rand.New(rand.NewPCG(uint64(seed), Salt))
	horizon := units.Time(window.Nanoseconds()) * units.Nanosecond
	pts := p.Gen(rng, rps, horizon)
	if len(pts) == 0 {
		return nil, fmt.Errorf("trace: no arrivals in a %v window at %g rps; raise the rate or the window", window, rps)
	}
	return pts, nil
}

// Arrivals generates the point sequence and compiles it into a
// runnable virtual-time trace, one task per arrival at the drawn
// size. build is typically a workload Spec's SizedTask method.
func (p Proc) Arrivals(build func(size float64) (wl.Task, error), seed int64, rps float64, window time.Duration) ([]hermes.Arrival, error) {
	pts, err := p.Points(seed, rps, window)
	if err != nil {
		return nil, err
	}
	arrivals := make([]hermes.Arrival, len(pts))
	for i, pt := range pts {
		task, err := build(pt.Size)
		if err != nil {
			return nil, err
		}
		arrivals[i] = hermes.Arrival{At: pt.At, Task: task, Class: pt.Class}
	}
	return arrivals, nil
}

// SubProc is one named component of a mixed arrival process: a share
// of the total offered rate, a generator for its own point stream,
// and the service class stamped on every arrival it produces.
type SubProc struct {
	// Name labels the component (diagnostics; the Class carries the
	// identity the scheduler and reports see).
	Name string
	// Share is this component's fraction of the mix's total rate;
	// shares across a mix must sum to 1.
	Share float64
	// Class is stamped on every point the component generates.
	Class hermes.Class
	// Gen draws the component's points at its own (already scaled)
	// rate — the same contract as Proc.Gen.
	Gen func(rng *rand.Rand, rps float64, horizon units.Time) []Point
}

// Mix composes N named sub-processes into one arrival process under a
// single seed: each component draws from its own PCG sub-stream
// (seeded by one Uint64 from the parent stream, in declaration order)
// at share×rps, every point is stamped with the component's class,
// and the merged trace is ordered by arrival time with ties kept in
// declaration order. The composition is deterministic: a fixed
// (seed, rps, horizon) reproduces the identical mixed trace.
func Mix(name, desc string, subs ...SubProc) Proc {
	if len(subs) == 0 {
		panic("trace: Mix needs at least one sub-process")
	}
	var total float64
	for _, s := range subs {
		if s.Share <= 0 || s.Gen == nil {
			panic(fmt.Sprintf("trace: malformed mix component %q", s.Name))
		}
		total += s.Share
	}
	if math.Abs(total-1) > 1e-9 {
		panic(fmt.Sprintf("trace: mix %q shares sum to %g, want 1", name, total))
	}
	return Proc{
		Name: name,
		Desc: desc,
		Gen: func(rng *rand.Rand, rps float64, horizon units.Time) []Point {
			var all []Point
			for _, s := range subs {
				// One parent draw per component, in declaration order,
				// seeds an independent sub-stream: components never
				// perturb each other's sequences, whatever their rates.
				sub := rand.New(rand.NewPCG(rng.Uint64(), Salt))
				pts := s.Gen(sub, rps*s.Share, horizon)
				for i := range pts {
					pts[i].Class = s.Class
				}
				all = append(all, pts...)
			}
			sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
			return all
		},
	}
}

// Canonical 2-class mix parameters: heavy-tailed batch work carries
// most of the offered load while a light latency-critical class rides
// on top with a deadline and SLO target — the "who pays for energy
// savings" traffic shape.
const (
	MixBatchShare = 0.8
	MixLCShare    = 0.2
	// MixLCSize is the latency-critical request's service-size
	// multiplier: an order of magnitude lighter than the mean batch
	// request.
	MixLCSize = 0.1
	// MixLCDeadline and MixLCSLO are the latency-critical class's
	// relative deadline (DispatchEDF key) and sojourn target
	// (attainment reporting).
	MixLCDeadline = 5 * units.Millisecond
	MixLCSLO      = 5 * units.Millisecond
)

// MixBatchClass and MixLCClass are the service classes of the
// canonical "mix" process's two components.
func MixBatchClass() hermes.Class {
	return hermes.Class{Tenant: "batch", Priority: 0}
}

func MixLCClass() hermes.Class {
	return hermes.Class{Tenant: "lc", Priority: 1, Deadline: MixLCDeadline, SLOTarget: MixLCSLO}
}

// Mixed reports whether any point in pts carries a non-zero service
// class — i.e. whether the trace came from a mixed process and
// per-class breakouts are meaningful.
func Mixed(pts []Point) bool {
	for _, pt := range pts {
		if !pt.Class.IsZero() {
			return true
		}
	}
	return false
}

// MMPP shape: the high state bursts at 3× the target rate, the low
// state idles at ⅓ of it, and dwell times are chosen so the process
// spends ¼ of its time high — the stationary mean rate is exactly the
// target rps, a burst carries ~15 arrivals and a lull ~5 at any rate.
const (
	mmppHighRate  = 3.0
	mmppLowRate   = 1.0 / 3.0
	mmppHighDwell = 5.0  // mean high dwell × rps, seconds
	mmppLowDwell  = 15.0 // mean low dwell × rps, seconds
)

// Bounded-Pareto size distribution: α = 1.5 with x_m = ⅓ gives mean
// α·x_m/(α−1) = 1, so the offered work matches the poisson process on
// average while individual requests range up to the 100× cap.
const (
	paretoAlpha   = 1.5
	paretoXm      = 1.0 / 3.0
	paretoMaxSize = 100.0
)

// poissonSized returns a memoryless-arrival generator stamping every
// point with a fixed size. poissonSized(1) is stream-compatible with
// the pre-registry sweep generator: one ExpFloat64 per arrival, loop
// leaves on the first draw past the horizon.
func poissonSized(size float64) func(*rand.Rand, float64, units.Time) []Point {
	return func(rng *rand.Rand, rps float64, horizon units.Time) []Point {
		var pts []Point
		at := units.Time(0)
		for {
			at += units.Time(rng.ExpFloat64() / rps * float64(units.Second))
			if at > horizon {
				break
			}
			pts = append(pts, Point{At: at, Size: size})
		}
		return pts
	}
}

// paretoGen draws Poisson arrivals with bounded-Pareto sizes — the
// heavy-tailed service distribution (α=1.5, mean 1, cap 100×).
func paretoGen(rng *rand.Rand, rps float64, horizon units.Time) []Point {
	var pts []Point
	at := units.Time(0)
	for {
		at += units.Time(rng.ExpFloat64() / rps * float64(units.Second))
		if at > horizon {
			break
		}
		// Inverse-CDF draw; 1−U ∈ (0,1] keeps the pow argument
		// away from 0, the cap bounds the tail.
		size := paretoXm / math.Pow(1-rng.Float64(), 1/paretoAlpha)
		if size > paretoMaxSize {
			size = paretoMaxSize
		}
		pts = append(pts, Point{At: at, Size: size})
	}
	return pts
}

func init() {
	Register(Proc{
		Name: "poisson",
		Desc: "memoryless arrivals: exponential interarrivals at the target rate, unit size",
		Gen:  poissonSized(1),
	})
	Register(Proc{
		Name: "mmpp",
		Desc: "bursty two-state modulated Poisson: 3× bursts and ⅓× lulls, mean rate = target",
		Gen: func(rng *rand.Rand, rps float64, horizon units.Time) []Point {
			sec := float64(units.Second)
			var pts []Point
			at := units.Time(0)
			high := false
			dwellEnd := units.Time(rng.ExpFloat64() * mmppLowDwell / rps * sec)
			for {
				rate := mmppLowRate * rps
				if high {
					rate = mmppHighRate * rps
				}
				next := at + units.Time(rng.ExpFloat64()/rate*sec)
				if next > dwellEnd {
					// The state flips before this arrival lands; the
					// exponential is memoryless, so discarding the draw
					// and restarting from the switch point is exact.
					if dwellEnd > horizon {
						break
					}
					at = dwellEnd
					high = !high
					dwell := mmppLowDwell
					if high {
						dwell = mmppHighDwell
					}
					dwellEnd = at + units.Time(rng.ExpFloat64()*dwell/rps*sec)
					continue
				}
				at = next
				if at > horizon {
					break
				}
				pts = append(pts, Point{At: at, Size: 1})
			}
			return pts
		},
	})
	Register(Proc{
		Name: "pareto",
		Desc: "Poisson arrivals with heavy-tailed sizes: bounded Pareto (α=1.5, mean 1) scales each request's work",
		Gen:  paretoGen,
	})
	Register(Mix(
		"mix",
		"2-class mix: 80% heavy-tailed batch (pareto sizes) + 20% light latency-critical (priority 1, 5ms deadline/SLO)",
		SubProc{Name: "batch", Share: MixBatchShare, Class: MixBatchClass(), Gen: paretoGen},
		SubProc{Name: "lc", Share: MixLCShare, Class: MixLCClass(), Gen: poissonSized(MixLCSize)},
	))
}

package trace

import (
	"testing"
	"time"
)

// TestMixComposition pins the canonical 2-class mixed trace: batch
// and latency-critical sub-streams interleave in ascending arrival
// order, each point carries its sub-stream's class, the shares land
// near the registered 80/20 split, and the latency-critical points
// keep their small fixed service size.
func TestMixComposition(t *testing.T) {
	pts := points(t, "mix", 7, 1000, 500*time.Millisecond)
	if len(pts) == 0 {
		t.Fatal("empty mixed trace")
	}
	if !Mixed(pts) {
		t.Fatal("mix trace not Mixed()")
	}
	var batch, lc int
	for i, p := range pts {
		if i > 0 && pts[i-1].At > p.At {
			t.Fatalf("arrivals out of order at %d: %v after %v", i, p.At, pts[i-1].At)
		}
		switch p.Class {
		case MixBatchClass():
			batch++
		case MixLCClass():
			lc++
			if p.Size != MixLCSize {
				t.Fatalf("lc point %d size %g, want %g", i, p.Size, MixLCSize)
			}
		default:
			t.Fatalf("point %d carries an unregistered class: %+v", i, p.Class)
		}
	}
	total := float64(batch + lc)
	if share := float64(lc) / total; share < 0.1 || share > 0.3 {
		t.Fatalf("lc share %.2f far from the registered %.2f (batch %d, lc %d)",
			share, MixLCShare, batch, lc)
	}
	if c := MixLCClass(); c.Deadline != MixLCDeadline || c.SLOTarget != MixLCSLO || c.Priority != 1 {
		t.Fatalf("lc class drifted from its registered shape: %+v", c)
	}
}

// TestMixDeterminism: the mixed trace is a pure function of (seed,
// rps, window) — classes included — and distinct seeds genuinely
// draw distinct schedules.
func TestMixDeterminism(t *testing.T) {
	a := points(t, "mix", 7, 400, 200*time.Millisecond)
	b := points(t, "mix", 7, 400, 200*time.Millisecond)
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d diverged with the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := points(t, "mix", 8, 400, 200*time.Millisecond)
	if len(c) == len(a) && len(a) > 0 && c[0] == a[0] {
		t.Fatal("different seeds drew an identical mixed trace")
	}
}

// Package trace is the registry of named, seeded arrival processes —
// the open-system side of the workload/trace catalog. Where
// internal/workload answers "what does one request do?", trace
// answers "when do requests arrive, and how big is each one?".
//
// A process generates a deterministic sequence of Points — arrival
// offsets plus a per-arrival service-size multiplier — from a single
// seeded PCG stream (rand.NewPCG(seed, Salt)). The same (process,
// seed, rps, window) always yields the same byte-exact sequence, on
// any platform, which is what lets sweep artifacts and sim-load
// summaries be byte-diffed in CI. Three processes are built in:
//
//   - poisson: exponential interarrivals at the target rate, size 1.
//     The default, stream-compatible with the generator the sweep and
//     the wall-clock load generator historically shared only through
//     a duplicated salt constant.
//   - mmpp: a two-state Markov-modulated Poisson process — bursts at
//     3× the target rate alternating with lulls at ⅓ of it, mean rate
//     equal to the target. The bursty shape tail-latency scheduling
//     work evaluates against.
//   - pareto: Poisson arrival times with bounded-Pareto service-size
//     multipliers (α = 1.5, mean 1) scaling each request's accounted
//     work — the heavy-tailed size mix.
//
// Consumers turn Points into runnable hermes.Arrivals with
// Proc.Arrivals, supplying a builder (typically workload
// Spec.SizedTask) that compiles one task per arrival at the drawn
// size. docs/workloads.md describes the determinism contract and how
// to add a process.
package trace

package trace

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/units"
	"hermes/internal/wl"
)

func points(t *testing.T, name string, seed int64, rps float64, window time.Duration) []Point {
	t.Helper()
	p, err := Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := p.Points(seed, rps, window)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return pts
}

// TestResolve pins the name plumbing: "" is poisson, unknown names
// list the registered processes, Canonical collapses only the default.
func TestResolve(t *testing.T) {
	p, err := Resolve("")
	if err != nil || p.Name != Default {
		t.Fatalf("Resolve(\"\") = %q, %v; want %q", p.Name, err, Default)
	}
	_, err = Resolve("lognormal")
	if err == nil {
		t.Fatal("unknown process resolved")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered process %q", err, name)
		}
	}
	if Canonical("poisson") != "" || Canonical("") != "" {
		t.Error("Canonical should collapse the default process to \"\"")
	}
	if Canonical("mmpp") != "mmpp" {
		t.Error("Canonical should pass non-default names through")
	}
}

// TestSeedDeterminism is the registry contract every process signs:
// the point sequence is a pure function of (seed, rps, window), and
// different seeds draw different schedules.
func TestSeedDeterminism(t *testing.T) {
	for _, name := range Names() {
		a := points(t, name, 7, 200, time.Second)
		b := points(t, name, 7, 200, time.Second)
		if len(a) != len(b) {
			t.Fatalf("%s: same seed gave %d vs %d points", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at point %d: %+v vs %+v", name, i, a[i], b[i])
			}
		}
		c := points(t, name, 8, 200, time.Second)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: seeds 7 and 8 drew identical schedules", name)
		}
	}
}

// TestPointBounds checks every process's schedule is well-formed:
// strictly inside (0, horizon], ascending, positively sized, and with
// an arrival count in the right ballpark for the offered rate.
func TestPointBounds(t *testing.T) {
	const (
		rps    = 500.0
		window = 2 * time.Second
	)
	horizon := units.Time(window.Nanoseconds()) * units.Nanosecond
	want := rps * window.Seconds()
	for _, name := range Names() {
		pts := points(t, name, 3, rps, window)
		prev := units.Time(0)
		for i, pt := range pts {
			if pt.At <= 0 || pt.At > horizon {
				t.Fatalf("%s: point %d at %v outside (0, %v]", name, i, pt.At, horizon)
			}
			if pt.At < prev {
				t.Fatalf("%s: point %d at %v before predecessor %v", name, i, pt.At, prev)
			}
			prev = pt.At
			if pt.Size <= 0 {
				t.Fatalf("%s: point %d has size %g", name, i, pt.Size)
			}
		}
		// Mean-rate sanity, not a distribution test: all three
		// processes target the same stationary mean, so a 2 s window at
		// 500 rps should land within a factor of ~2 of 1000 arrivals
		// even for the bursty MMPP.
		if float64(len(pts)) < want/2 || float64(len(pts)) > want*2 {
			t.Errorf("%s: %d arrivals in a window targeting %.0f", name, len(pts), want)
		}
	}
}

// TestValidation pins the shared rate/window bounds.
func TestValidation(t *testing.T) {
	p, _ := Resolve("")
	if _, err := p.Points(1, 0, time.Second); err == nil || !strings.Contains(err.Error(), "rps must be positive") {
		t.Errorf("zero rps: %v", err)
	}
	if _, err := p.Points(1, -5, time.Second); err == nil || !strings.Contains(err.Error(), "rps must be positive") {
		t.Errorf("negative rps: %v", err)
	}
	if _, err := p.Points(1, 100, 0); err == nil || !strings.Contains(err.Error(), "window must be positive") {
		t.Errorf("zero window: %v", err)
	}
	if _, err := p.Points(1, 0.001, time.Millisecond); err == nil || !strings.Contains(err.Error(), "no arrivals") {
		t.Errorf("empty schedule: %v", err)
	}
}

// TestPoissonUnitSizes pins the poisson-era artifact contract: unit
// sizes only, so Sized(1) passthrough keeps old sweeps byte-exact.
func TestPoissonUnitSizes(t *testing.T) {
	for _, pt := range points(t, "poisson", 7, 300, time.Second) {
		if pt.Size != 1 {
			t.Fatalf("poisson drew size %g", pt.Size)
		}
	}
	for _, pt := range points(t, "mmpp", 7, 300, time.Second) {
		if pt.Size != 1 {
			t.Fatalf("mmpp drew size %g", pt.Size)
		}
	}
}

// TestParetoSizes checks the bounded-Pareto size draw: within
// [x_m, cap], heavy-tailed enough that some request exceeds the mean,
// and with a sample mean near 1 so offered work tracks the poisson
// process.
func TestParetoSizes(t *testing.T) {
	pts := points(t, "pareto", 11, 1000, 4*time.Second)
	sum, over := 0.0, 0
	for _, pt := range pts {
		if pt.Size < paretoXm || pt.Size > paretoMaxSize {
			t.Fatalf("size %g outside [%g, %g]", pt.Size, paretoXm, paretoMaxSize)
		}
		if pt.Size > 1 {
			over++
		}
		sum += pt.Size
	}
	mean := sum / float64(len(pts))
	if mean < 0.7 || mean > 1.4 {
		t.Errorf("sample mean size = %g, want ≈ 1", mean)
	}
	if over == 0 {
		t.Error("no request drew above the mean — not heavy-tailed")
	}
}

// TestMMPPBursty distinguishes the modulated process from plain
// poisson: its interarrival coefficient of variation must exceed 1
// (poisson's CV), the bursts/lulls signature.
func TestMMPPBursty(t *testing.T) {
	cv := func(name string) float64 {
		pts := points(t, name, 5, 500, 10*time.Second)
		var gaps []float64
		prev := units.Time(0)
		for _, pt := range pts {
			gaps = append(gaps, float64(pt.At-prev))
			prev = pt.At
		}
		mean := 0.0
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		varsum := 0.0
		for _, g := range gaps {
			varsum += (g - mean) * (g - mean)
		}
		sd := varsum / float64(len(gaps))
		return sqrt(sd) / mean
	}
	poisson, mmpp := cv("poisson"), cv("mmpp")
	if mmpp <= poisson*1.2 {
		t.Errorf("mmpp interarrival CV %.2f not meaningfully burstier than poisson %.2f", mmpp, poisson)
	}
}

// sqrt avoids importing math for one call in a test helper.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// TestArrivalsBuildsSizedTasks checks the Arrivals bridge hands each
// point's size to the builder, one task per arrival, preserving the
// schedule's timestamps.
func TestArrivalsBuildsSizedTasks(t *testing.T) {
	p, err := Resolve("pareto")
	if err != nil {
		t.Fatal(err)
	}
	var sizes []float64
	arr, err := p.Arrivals(func(size float64) (wl.Task, error) {
		sizes = append(sizes, size)
		return func(wl.Ctx) {}, nil
	}, 1, 100, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	pts := points(t, "pareto", 1, 100, time.Second)
	if len(arr) != len(pts) || len(sizes) != len(pts) {
		t.Fatalf("%d arrivals / %d builds for %d points", len(arr), len(sizes), len(pts))
	}
	for i := range pts {
		if arr[i].At != pts[i].At {
			t.Fatalf("arrival %d at %v, point at %v", i, arr[i].At, pts[i].At)
		}
		if sizes[i] != pts[i].Size {
			t.Fatalf("build %d got size %g, point has %g", i, sizes[i], pts[i].Size)
		}
	}
}

// Package job defines the handle returned by runtime job submission:
// a one-shot future carrying the per-job Report. Both executors (the
// discrete-event simulator and the real-concurrency pool) complete
// jobs through the same type, so callers wait on and read results the
// same way regardless of backend.
package job

import (
	"sync"

	"hermes/internal/core"
)

// Job is the handle for one submitted root task. It is completed
// exactly once by the executing backend; all methods are safe for
// concurrent use.
type Job struct {
	id   int64
	done chan struct{}

	once   sync.Once
	report core.Report
	err    error
}

// New returns an open job with the given id.
func New(id int64) *Job {
	return &Job{id: id, done: make(chan struct{})}
}

// ID returns the runtime-assigned job id (unique per executor,
// starting at 1).
func (j *Job) ID() int64 { return j.id }

// Done returns a channel closed when the job has completed, for use
// in select statements.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its report. A
// cancelled job still returns the (partial) report alongside the
// context's error; a job whose work completed before cancellation
// took effect reports success.
func (j *Job) Wait() (core.Report, error) {
	<-j.done
	return j.report, j.err
}

// Report returns the job's result without blocking; ok is false while
// the job is still running.
func (j *Job) Report() (r core.Report, err error, ok bool) {
	select {
	case <-j.done:
		return j.report, j.err, true
	default:
		return core.Report{}, nil, false
	}
}

// Finish completes the job with a report and error. It is called by
// the executing backend exactly once; later calls are no-ops so
// backend shutdown paths can complete defensively.
func (j *Job) Finish(r core.Report, err error) {
	j.once.Do(func() {
		j.report = r
		j.err = err
		close(j.done)
	})
}

package job

import (
	"errors"
	"testing"

	"hermes/internal/core"
)

func TestFinishOnce(t *testing.T) {
	j := New(7)
	if j.ID() != 7 {
		t.Fatalf("ID = %d", j.ID())
	}
	if _, _, ok := j.Report(); ok {
		t.Fatal("Report ok before Finish")
	}
	first := errors.New("first")
	j.Finish(core.Report{Tasks: 3}, first)
	j.Finish(core.Report{Tasks: 99}, nil) // must be a no-op
	r, err := j.Wait()
	if r.Tasks != 3 || err != first {
		t.Fatalf("Wait = %+v, %v; want first Finish to win", r, err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("Done channel not closed")
	}
}

func TestConcurrentWaiters(t *testing.T) {
	j := New(1)
	results := make(chan int64, 8)
	for i := 0; i < 8; i++ {
		go func() {
			r, _ := j.Wait()
			results <- r.Tasks
		}()
	}
	j.Finish(core.Report{Tasks: 42}, nil)
	for i := 0; i < 8; i++ {
		if got := <-results; got != 42 {
			t.Fatalf("waiter saw Tasks=%d", got)
		}
	}
}

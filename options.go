package hermes

import (
	"fmt"

	"hermes/internal/cpu"
)

// settings accumulates option values before validation.
type settings struct {
	cfg      Config
	backend  Backend
	asyncObs Observer
	asyncBuf int

	// Cluster-only options (NewCluster): machine count, placement
	// policy, fault schedule and retry policy. New rejects them — a
	// single Runtime has no fleet.
	machines     int
	placement    *Placement
	faults       []FaultEvent
	faultsSet    bool
	retryBudget  int
	retryBackoff Time
	retrySet     bool
}

// Option configures a Runtime under construction. Options that can
// fail return their error from New; everything else is validated
// together by Config.Validate before the backend starts.
type Option func(*settings) error

// WithBackend selects the execution engine: Sim (default, the
// deterministic discrete-event simulator) or Native (real goroutine
// workers).
func WithBackend(b Backend) Option {
	return func(s *settings) error {
		if b != Sim && b != Native {
			return fmt.Errorf("hermes: unknown backend %d", b)
		}
		s.backend = b
		return nil
	}
}

// WithSpec selects the machine model (SystemA, SystemB, or a custom
// *cpu.Spec). Default: SystemA.
func WithSpec(spec *cpu.Spec) Option {
	return func(s *settings) error {
		if spec == nil {
			return fmt.Errorf("hermes: nil machine spec")
		}
		s.cfg.Spec = spec
		return nil
	}
}

// WithWorkers sets the worker count; each worker is pinned to a core
// on a distinct clock domain, so n must not exceed the machine's
// domain count. Default: one worker per clock domain on the Sim
// backend, min(GOMAXPROCS, domains) on Native.
func WithWorkers(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("hermes: worker count must be positive, got %d", n)
		}
		s.cfg.Workers = n
		return nil
	}
}

// WithMode selects the tempo-control strategy (Baseline,
// WorkpathOnly, WorkloadOnly or Unified). Default: Baseline.
func WithMode(m Mode) Option {
	return func(s *settings) error {
		if m > Unified {
			return fmt.Errorf("hermes: invalid mode %d", m)
		}
		s.cfg.Mode = m
		return nil
	}
}

// WithScheduling selects the worker-core mapping policy (Static or
// Dynamic). Default: Static.
func WithScheduling(p Scheduling) Option {
	return func(s *settings) error {
		if p > Dynamic {
			return fmt.Errorf("hermes: invalid scheduling policy %d", p)
		}
		s.cfg.Scheduling = p
		return nil
	}
}

// WithFreqs sets the N-frequency tempo set, fastest first. The
// fastest must be the machine's maximum frequency and every entry
// must be a supported operating point. Default: the paper's
// 2-frequency pair for the system.
func WithFreqs(fastestFirst ...Freq) Option {
	return func(s *settings) error {
		if len(fastestFirst) == 0 {
			return fmt.Errorf("hermes: WithFreqs needs at least one frequency")
		}
		s.cfg.Freqs = append([]Freq(nil), fastestFirst...)
		return nil
	}
}

// WithDeque selects the work-stealing deque implementation behind the
// per-worker queues: DequeTHE (the paper's Figure 2 protocol, a mutex
// on every steal) or DequeChaseLev (lock-free, CAS only on steals and
// the owner's last-item race). The default, DequeAuto, picks
// Chase–Lev on the Native backend and THE on Sim.
func WithDeque(k DequeKind) Option {
	return func(s *settings) error {
		if k > DequeChaseLev {
			return fmt.Errorf("hermes: invalid deque kind %d", k)
		}
		s.cfg.Deque = k
		return nil
	}
}

// WithSeed sets the seed driving every random choice (victim
// selection). On the Sim backend, identical configs and seeds produce
// bit-identical per-job reports.
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithThresholds sets K, the number of workload thresholds (and so
// K+1 workload tiers). Default: 2.
func WithThresholds(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("hermes: threshold count must be positive, got %d", k)
		}
		s.cfg.K = k
		return nil
	}
}

// WithProfile sets the online-profiling sampling period for deque
// sizes and how many periods the rolling average spans. Defaults:
// 500µs, 16.
func WithProfile(period Time, window int) Option {
	return func(s *settings) error {
		if period <= 0 {
			return fmt.Errorf("hermes: profile period must be positive, got %v", period)
		}
		if window < 1 {
			return fmt.Errorf("hermes: profile window must be positive, got %d", window)
		}
		s.cfg.ProfilePeriod = period
		s.cfg.ProfileWindow = window
		return nil
	}
}

// WithObserver streams scheduler events (steals, tempo switches, DVFS
// commits, energy samples, job lifecycle) to o. Observation cannot
// influence scheduling; on the Native backend o must be
// concurrency-safe.
func WithObserver(o Observer) Option {
	return func(s *settings) error {
		s.cfg.Observer = o
		return nil
	}
}

// WithAsyncObserver streams scheduler events to o through a bounded
// asynchronous sink owned by the Runtime: workers enqueue events
// without blocking (a slow or stalled o cannot perturb the scheduler
// hot path), a dedicated goroutine drains the buffer into o, and
// Runtime.Close drains every buffered event before returning. When
// the buffer is full new events are dropped and counted —
// Runtime.EventsDropped reports the loss, so a deployment sized with
// enough buffer observes the complete stream (EventsDropped stays 0).
// buffer is the event capacity; <= 0 selects the default (4096).
// Unlike WithObserver, o is only ever called from one goroutine and
// need not be concurrency-safe. The two options are mutually
// exclusive.
func WithAsyncObserver(o Observer, buffer int) Option {
	return func(s *settings) error {
		if o == nil {
			return fmt.Errorf("hermes: nil async observer")
		}
		s.asyncObs = o
		s.asyncBuf = buffer
		return nil
	}
}

// WithMachines sets the fleet size for NewCluster: n independent
// simulated machines — each with its own workers, deques, tempo
// controller, DVFS state and power meter — multiplexed inside one
// discrete-event engine. Machine m runs with the configured seed plus
// m, so victim-selection streams differ across the fleet while staying
// deterministic. Cluster-only: New returns an error if set.
func WithMachines(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("hermes: machine count must be positive, got %d", n)
		}
		s.machines = n
		return nil
	}
}

// WithPlacement selects the cluster's placement policy — how arriving
// jobs are routed across machines. Use the constructors
// (PlacementRandom, PlacementJSQ, PlacementPowerOfChoices,
// PlacementGossip) or ParsePlacement. Default: power-of-two-choices.
// Cluster-only: New returns an error if set.
func WithPlacement(p Placement) Option {
	return func(s *settings) error {
		v, err := p.Validate()
		if err != nil {
			return err
		}
		s.placement = &v
		return nil
	}
}

// WithFaults installs a deterministic fault schedule for NewCluster:
// each FaultEvent crashes, rejoins, slows or recovers one machine at
// an explicit virtual time. Build schedules by hand or compile a named
// plan with fault.Compile ("crash", "failslow", "blip"). Jobs evicted
// by a crash are re-placed with bounded, seeded retries — see
// WithRetryPolicy. Events are validated against the fleet size at
// NewCluster time. Cluster-only: New returns an error if set.
func WithFaults(events ...FaultEvent) Option {
	return func(s *settings) error {
		s.faults = append([]FaultEvent(nil), events...)
		s.faultsSet = true
		return nil
	}
}

// WithRetryPolicy bounds crash recovery for NewCluster: a job evicted
// by a machine crash is re-placed up to budget times, each attempt
// delayed by a seeded, jittered exponential backoff starting at
// backoff (doubling per retry). A job past its budget is failed with
// ErrJobLost and counted in ClusterStats.Lost. Defaults: budget 3,
// backoff 100µs. budget must be >= 1 and backoff >= 0.
// Cluster-only: New returns an error if set.
func WithRetryPolicy(budget int, backoff Time) Option {
	return func(s *settings) error {
		if budget < 1 {
			return fmt.Errorf("hermes: retry budget must be at least 1, got %d", budget)
		}
		if backoff < 0 {
			return fmt.Errorf("hermes: retry backoff must not be negative, got %v", backoff)
		}
		s.retryBudget = budget
		s.retryBackoff = backoff
		s.retrySet = true
		return nil
	}
}

// WithDispatch selects how the machine's intake orders ready jobs
// awaiting a worker: DispatchFIFO (default, class-blind delivery
// order), DispatchPriority (strict Class.Priority, ties in delivery
// order) or DispatchEDF (earliest absolute deadline first,
// deadline-less jobs last). Ranked policies read each job's Class —
// attach one with WithClass or Arrival.Class. Sim backend (and
// NewCluster, where every machine's intake applies it); the Native
// executor's intake is inherently FIFO and rejects ranked policies.
func WithDispatch(d Dispatch) Option {
	return func(s *settings) error {
		if d > DispatchEDF {
			return fmt.Errorf("hermes: invalid dispatch policy %d", d)
		}
		s.cfg.Dispatch = d
		return nil
	}
}

// WithPreemptQuantum enables Shinjuku-style quantum preemption under a
// ranked dispatch policy (Sim backend): a worker executing a CPU
// segment re-checks the ready queue every q of virtual time, and a
// waiting job that strictly outranks the running one takes the worker
// immediately — so a short latency-critical arrival overtakes
// heavy-tailed batch work mid-stream instead of queueing behind it.
// Zero (the default) disables preemption; q must not be negative.
// No effect under DispatchFIFO, which never ranks one job above
// another.
func WithPreemptQuantum(q Time) Option {
	return func(s *settings) error {
		if q < 0 {
			return fmt.Errorf("hermes: preemption quantum must not be negative, got %v", q)
		}
		s.cfg.PreemptQuantum = q
		return nil
	}
}

// submitSettings accumulates per-job SubmitOption values.
type submitSettings struct {
	class Class
}

// SubmitOption stamps per-job attributes on one Submit call.
type SubmitOption func(*submitSettings)

// WithClass sets the submitted job's service class: the tenant label
// and priority that ranked dispatch policies, priority-aware load
// shedding and per-class metrics read, plus the optional deadline
// (DispatchEDF) and SLO target (per-class attainment reporting). The
// class travels with the job through every layer and is echoed in its
// Report.
func WithClass(c Class) SubmitOption {
	return func(ss *submitSettings) { ss.class = c }
}

// WithConfig replaces the entire base configuration — the escape
// hatch for callers migrating from the Config-struct API or setting
// fields no dedicated option covers (overheads, MaxTempoLevels, …).
// Later options still apply on top.
func WithConfig(cfg Config) Option {
	return func(s *settings) error {
		s.cfg = cfg
		return nil
	}
}

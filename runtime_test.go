package hermes_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes"
)

// leafWorkload returns a root task touching n elements plus an atomic
// counter recording how many leaves actually executed.
func leafWorkload(n int) (hermes.Task, *atomic.Int64) {
	var ran atomic.Int64
	return func(c hermes.Ctx) {
		hermes.For(c, 0, n, 4, func(c hermes.Ctx, lo, hi int) {
			ran.Add(int64(hi - lo))
			c.WorkMix(hermes.Cycles(300_000*(hi-lo)), 0.5)
		})
	}, &ran
}

// TestBothBackendsOneAPI drives the same workload through the one
// Runtime API on both backends and gets a unified Report from each.
func TestBothBackendsOneAPI(t *testing.T) {
	for _, backend := range []hermes.Backend{hermes.Sim, hermes.Native} {
		rt, err := hermes.New(
			hermes.WithBackend(backend),
			hermes.WithSpec(hermes.SystemB()),
			hermes.WithWorkers(4),
			hermes.WithMode(hermes.Unified),
			hermes.WithSeed(42),
		)
		if err != nil {
			t.Fatalf("%v: New: %v", backend, err)
		}
		if rt.Backend() != backend {
			t.Fatalf("Backend() = %v, want %v", rt.Backend(), backend)
		}
		root, ran := leafWorkload(128)
		r, err := rt.Run(context.Background(), root)
		if err != nil {
			t.Fatalf("%v: Run: %v", backend, err)
		}
		if got := ran.Load(); got != 128 {
			t.Fatalf("%v: %d/128 leaves ran", backend, got)
		}
		if r.System != "SystemB" || r.Workers != 4 || r.Mode != hermes.Unified {
			t.Fatalf("%v: report header wrong: %+v", backend, r)
		}
		if r.Span <= 0 || r.EnergyJ <= 0 || r.Tasks == 0 {
			t.Fatalf("%v: degenerate report: span=%v energy=%v tasks=%d",
				backend, r.Span, r.EnergyJ, r.Tasks)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("%v: Close: %v", backend, err)
		}
	}
}

// TestConcurrentSubmitsNative submits several jobs from separate
// goroutines to one Native Runtime and checks each completes with a
// correct per-job report (run under -race in CI).
func TestConcurrentSubmitsNative(t *testing.T) {
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(4),
		hermes.WithMode(hermes.Unified),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const jobs = 6
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	ids := make(chan int64, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root, ran := leafWorkload(64)
			j, err := rt.Submit(context.Background(), root)
			if err != nil {
				errs <- err
				return
			}
			r, err := j.Wait()
			if err != nil {
				errs <- err
				return
			}
			if got := ran.Load(); got != 64 {
				errs <- fmt.Errorf("job ran %d/64 leaves", got)
				return
			}
			if r.Tasks == 0 || r.Span <= 0 {
				errs <- fmt.Errorf("degenerate job report: tasks=%d span=%v", r.Tasks, r.Span)
				return
			}
			ids <- j.ID()
		}()
	}
	wg.Wait()
	close(errs)
	close(ids)
	for err := range errs {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != jobs {
		t.Fatalf("%d/%d jobs completed", len(seen), jobs)
	}
}

// TestConcurrentSubmitsSimMultiplex submits jobs concurrently to one
// Sim Runtime: they multiplex over the shared simulated machine as
// virtual-time arrivals, and each completes with a sound per-job
// report (sojourn covers execution, work is fully accounted).
// Reproducibility under concurrency is a property of fixed arrival
// traces, pinned by TestSubmitTraceDeterministic.
func TestConcurrentSubmitsSimMultiplex(t *testing.T) {
	rt, err := hermes.New(
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(4),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const jobs = 4
	var wg sync.WaitGroup
	reports := make([]hermes.Report, jobs)
	counts := make([]*atomic.Int64, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		root, ran := leafWorkload(128)
		counts[i] = ran
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := rt.Run(context.Background(), root)
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = r
		}()
	}
	wg.Wait()
	for i, r := range reports {
		if got := counts[i].Load(); got != 128 {
			t.Fatalf("job %d ran %d/128 leaves", i, got)
		}
		if r.Span <= 0 || r.Sojourn < r.Span || r.EnergyJ <= 0 || r.Tasks == 0 {
			t.Fatalf("job %d degenerate report: span=%v sojourn=%v energy=%v tasks=%d",
				i, r.Span, r.Sojourn, r.EnergyJ, r.Tasks)
		}
	}
}

// traceRun replays one fixed virtual-time arrival trace on a fresh
// Sim Runtime and returns the per-job reports plus the full observer
// event stream.
func traceRun(t *testing.T, arrivalGap hermes.Time, jobs int) ([]hermes.Report, []hermes.Event) {
	t.Helper()
	var events []hermes.Event
	rt, err := hermes.New(
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(4),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(42),
		hermes.WithObserver(hermes.ObserverFunc(func(e hermes.Event) {
			events = append(events, e) // sim observer: single engine goroutine
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([]hermes.Arrival, jobs)
	for i := range arrivals {
		root, _ := leafWorkload(96)
		arrivals[i] = hermes.Arrival{At: hermes.Time(i) * arrivalGap, Task: root}
	}
	handles, err := rt.SubmitTrace(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]hermes.Report, len(handles))
	for i, j := range handles {
		r, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
		reports[i] = r
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	return reports, events
}

// TestSubmitTraceDeterministic is the acceptance pin for virtual-time
// multiplexing: two identical traces on identical configs produce
// byte-identical per-job reports and identical observer event
// sequences, while at least two jobs demonstrably overlap in virtual
// time (asserted on the event stream).
func TestSubmitTraceDeterministic(t *testing.T) {
	const jobs = 5
	gap := 100 * hermes.Microsecond
	repA, evA := traceRun(t, gap, jobs)
	repB, evB := traceRun(t, gap, jobs)

	for i := range repA {
		a, b := fmt.Sprintf("%+v", repA[i]), fmt.Sprintf("%+v", repB[i])
		if a != b {
			t.Fatalf("job %d report diverged between identical traces:\n%s\nvs\n%s", i+1, a, b)
		}
	}
	if len(evA) != len(evB) {
		t.Fatalf("event streams differ in length: %d vs %d", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d diverged:\n%+v\nvs\n%+v", i, evA[i], evB[i])
		}
	}

	// Overlap: some job must start (JobStart event) while an earlier
	// job is still in the system (before its JobDone event).
	firstDone := -1
	overlap := false
	for i, e := range evA {
		switch e.Kind {
		case hermes.EventJobDone:
			if firstDone == -1 {
				firstDone = i
			}
		case hermes.EventJobStart:
			if e.Job > 1 && firstDone == -1 {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no two jobs overlapped in virtual time; the trace serialized")
	}
	// Sojourn vs span: queueing delay is visible for late jobs under
	// contention (sojourn >= span always).
	for i, r := range repA {
		if r.Sojourn < r.Span {
			t.Fatalf("job %d sojourn %v < span %v", i+1, r.Sojourn, r.Span)
		}
	}
}

// TestSubmitTraceNativeRejected: the Native backend has no virtual
// clock; SubmitTrace must refuse rather than misbehave.
func TestSubmitTraceNativeRejected(t *testing.T) {
	rt, err := hermes.New(hermes.WithBackend(hermes.Native), hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	root, _ := leafWorkload(8)
	if _, err := rt.SubmitTrace(context.Background(), []hermes.Arrival{{At: 0, Task: root}}); err == nil {
		t.Fatal("SubmitTrace on Native accepted; want error")
	}
}

// TestCancellationSim cancels a simulator job from inside its own
// workload; the run must stop forking at spawn boundaries and the job
// must complete with the context's error.
func TestCancellationSim(t *testing.T) {
	rt, err := hermes.New(hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	j, err := rt.Submit(ctx, func(c hermes.Ctx) {
		hermes.For(c, 0, 4096, 1, func(c hermes.Ctx, lo, hi int) {
			if ran.Add(1) == 3 {
				cancel()
			}
			c.Work(100_000)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 4096 {
		t.Fatalf("cancellation did not stop the job (ran %d leaves)", n)
	}
}

// TestCancellationNative cancels a running Native job from outside.
func TestCancellationNative(t *testing.T) {
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	var ran atomic.Int64
	j, err := rt.Submit(ctx, func(c hermes.Ctx) {
		hermes.For(c, 0, 100_000, 1, func(c hermes.Ctx, lo, hi int) {
			ran.Add(1)
			once.Do(func() { close(started) })
			c.Mem(300 * hermes.Microsecond)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled native job did not drain")
	}
	if _, err := j.Wait(); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100_000 {
		t.Fatalf("cancellation did not stop the job (ran %d leaves)", n)
	}
}

// TestOptionAndConfigErrors checks that every former configuration
// panic surfaces as an error through the option API.
func TestOptionAndConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []hermes.Option
		want string
	}{
		{"too many workers", []hermes.Option{
			hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(99),
		}, "workers not supported"},
		{"zero workers", []hermes.Option{hermes.WithWorkers(0)}, "must be positive"},
		{"nil spec", []hermes.Option{hermes.WithSpec(nil)}, "nil machine spec"},
		{"unknown backend", []hermes.Option{hermes.WithBackend(hermes.Backend(9))}, "unknown backend"},
		{"invalid mode", []hermes.Option{hermes.WithMode(hermes.Mode(9))}, "invalid mode"},
		{"invalid scheduling", []hermes.Option{hermes.WithScheduling(hermes.Scheduling(9))}, "invalid scheduling"},
		{"unsupported frequency", []hermes.Option{
			hermes.WithSpec(hermes.SystemB()),
			hermes.WithFreqs(3_600_000*hermes.KHz, 123*hermes.KHz),
		}, "does not support"},
		{"ascending frequencies", []hermes.Option{
			hermes.WithSpec(hermes.SystemB()),
			hermes.WithFreqs(3_600_000*hermes.KHz, 2_700_000*hermes.KHz, 3_300_000*hermes.KHz),
		}, "strictly descending"},
		{"fastest not max", []hermes.Option{
			hermes.WithSpec(hermes.SystemB()),
			hermes.WithFreqs(2_700_000 * hermes.KHz),
		}, "maximum frequency"},
		{"tempo needs two freqs", []hermes.Option{
			hermes.WithSpec(hermes.SystemB()),
			hermes.WithMode(hermes.Unified),
			hermes.WithFreqs(3_600_000 * hermes.KHz),
		}, "at least two frequencies"},
		{"empty freqs option", []hermes.Option{hermes.WithFreqs()}, "at least one frequency"},
		{"zero thresholds", []hermes.Option{hermes.WithThresholds(0)}, "must be positive"},
		{"bad profile", []hermes.Option{hermes.WithProfile(0, 0)}, "must be positive"},
		{"small MaxTempoLevels", []hermes.Option{
			hermes.WithConfig(hermes.Config{MaxTempoLevels: 1}),
		}, "MaxTempoLevels"},
		{"negative ProfilePeriod via WithConfig", []hermes.Option{
			hermes.WithConfig(hermes.Config{ProfilePeriod: -1}),
			hermes.WithBackend(hermes.Native),
		}, "ProfilePeriod"},
		{"negative StealCost via WithConfig", []hermes.Option{
			hermes.WithConfig(hermes.Config{StealCost: -1}),
		}, "StealCost"},
	}
	for _, tc := range cases {
		rt, err := hermes.New(tc.opts...)
		if err == nil {
			rt.Close()
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSubmitErrors covers the boundary errors of a live Runtime.
func TestSubmitErrors(t *testing.T) {
	for _, backend := range []hermes.Backend{hermes.Sim, hermes.Native} {
		rt, err := hermes.New(hermes.WithBackend(backend), hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Submit(context.Background(), nil); err != hermes.ErrNilTask {
			t.Fatalf("%v: nil task err = %v", backend, err)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Submit(context.Background(), func(hermes.Ctx) {}); err != hermes.ErrClosed {
			t.Fatalf("%v: submit-after-close err = %v", backend, err)
		}
		if err := rt.Close(); err != nil {
			t.Fatalf("%v: double close: %v", backend, err)
		}
	}
}

// TestObserverStream checks the Observer hook delivers scheduler
// events on the simulator backend: job lifecycle, steals, tempo
// switches and energy samples for a Unified run.
func TestObserverStream(t *testing.T) {
	counts := map[hermes.EventKind]int{}
	var mu sync.Mutex
	rt, err := hermes.New(
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(4),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(3),
		hermes.WithObserver(hermes.ObserverFunc(func(e hermes.Event) {
			mu.Lock()
			counts[e.Kind]++
			mu.Unlock()
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := leafWorkload(512)
	r, err := rt.Run(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if counts[hermes.EventJobStart] != 1 || counts[hermes.EventJobDone] != 1 {
		t.Fatalf("job lifecycle events: %+v", counts)
	}
	if int64(counts[hermes.EventSteal]) != r.Steals {
		t.Fatalf("observed %d steals, report says %d", counts[hermes.EventSteal], r.Steals)
	}
	if int64(counts[hermes.EventTempoSwitch]) != r.TempoSwitches {
		t.Fatalf("observed %d tempo switches, report says %d", counts[hermes.EventTempoSwitch], r.TempoSwitches)
	}
	if len(r.Samples) > 0 && counts[hermes.EventEnergySample] == 0 {
		t.Fatalf("no energy samples observed (report has %d)", len(r.Samples))
	}
}

// TestTaskPanicSimBackend pins the panic contract on the simulator: a
// panicking task body fails its own job (error from Wait) without
// crashing the process, matching the Native backend.
func TestTaskPanicSimBackend(t *testing.T) {
	rt, err := hermes.New(hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_, perr := rt.Run(context.Background(), func(c hermes.Ctx) {
		c.Go(
			func(hermes.Ctx) { panic("boom") },
			func(c hermes.Ctx) { c.Work(1_000_000) },
		)
	})
	if perr == nil || !strings.Contains(perr.Error(), "panicked") {
		t.Fatalf("sim panicking job err = %v", perr)
	}
	// The runtime must still serve jobs afterwards.
	root, ran := leafWorkload(32)
	if _, err := rt.Run(context.Background(), root); err != nil {
		t.Fatalf("job after panic: %v", err)
	}
	if ran.Load() != 32 {
		t.Fatalf("job after panic ran %d/32 leaves", ran.Load())
	}
}

// TestLateCancelReportsSuccess: a context cancelled only after the
// job's work completed must not turn a successful report into an
// error.
func TestLateCancelReportsSuccess(t *testing.T) {
	for _, backend := range []hermes.Backend{hermes.Sim, hermes.Native} {
		rt, err := hermes.New(hermes.WithBackend(backend), hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		j, err := rt.Submit(ctx, func(c hermes.Ctx) { c.Work(1_000_000) })
		if err != nil {
			t.Fatal(err)
		}
		if _, werr := j.Wait(); werr != nil {
			t.Fatalf("%v: job failed: %v", backend, werr)
		}
		cancel() // after completion: result must be unaffected
		if _, werr := j.Wait(); werr != nil {
			t.Fatalf("%v: late cancel changed result: %v", backend, werr)
		}
		rt.Close()
	}
}

// TestRunWrapperCompat pins the legacy one-shot API: existing
// hermes.Run call sites keep compiling and running unchanged.
func TestRunWrapperCompat(t *testing.T) {
	r := hermes.Run(hermes.Config{Spec: hermes.SystemB(), Workers: 2, Seed: 1},
		func(c hermes.Ctx) { c.Work(1_000_000) })
	if r.Span <= 0 || r.EnergyJ <= 0 {
		t.Fatalf("legacy Run degenerate report: %+v", r)
	}
}

// TestAsyncObserverSlowConsumerDoesNotBlockScheduler pins the point
// of WithAsyncObserver: a pathologically slow event consumer must not
// stretch job latency, because workers enqueue without waiting.
func TestAsyncObserverSlowConsumerDoesNotBlockScheduler(t *testing.T) {
	var seen atomic.Int64
	slow := hermes.ObserverFunc(func(hermes.Event) {
		seen.Add(1)
		time.Sleep(10 * time.Millisecond)
	})
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithMode(hermes.Unified),
		hermes.WithWorkers(4),
		hermes.WithAsyncObserver(slow, 64),
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	// A steal-heavy spawn tree: emits far more events than the slow
	// consumer could absorb synchronously in the latency bound.
	_, err = rt.Run(context.Background(), func(c hermes.Ctx) {
		hermes.For(c, 0, 256, 2, func(c hermes.Ctx, lo, hi int) {
			c.Work(hermes.Cycles(100_000 * (hi - lo)))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// The job itself is ~11ms of accounted work over 4 workers. Give
	// a wide margin for CI, but stay far under what synchronous
	// delivery of even 100 events at 10ms would cost (1s+).
	if elapsed > 800*time.Millisecond {
		t.Fatalf("job took %v behind a slow observer; scheduler is being blocked", elapsed)
	}
	go rt.Close() // draining 64 buffered slow events takes ~640ms; don't serialize the suite on it
	if seen.Load() == 0 {
		t.Fatal("no events reached the slow consumer")
	}
}

// TestAsyncObserverCompleteStreamBelowBufferSize: with a buffer sized
// for the run, the async pipeline must lose nothing — every job's
// lifecycle framing arrives, and EventsDropped stays 0.
func TestAsyncObserverCompleteStreamBelowBufferSize(t *testing.T) {
	var starts, dones atomic.Int64
	counting := hermes.ObserverFunc(func(e hermes.Event) {
		switch e.Kind {
		case hermes.EventJobStart:
			starts.Add(1)
		case hermes.EventJobDone:
			dones.Add(1)
		}
	})
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithWorkers(4),
		hermes.WithAsyncObserver(counting, 1<<16),
	)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 40
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.Run(context.Background(), func(c hermes.Ctx) {
				hermes.For(c, 0, 32, 4, func(c hermes.Ctx, lo, hi int) {
					c.Work(hermes.Cycles(50_000 * (hi - lo)))
				})
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rt.EventsDropped(); got != 0 {
		t.Fatalf("%d events dropped below buffer size", got)
	}
	if starts.Load() != jobs || dones.Load() != jobs {
		t.Fatalf("lifecycle framing incomplete: %d starts, %d dones, want %d each",
			starts.Load(), dones.Load(), jobs)
	}
}

// TestAsyncObserverDropsAreCounted: with a tiny buffer and a wedged
// consumer, the runtime reports loss instead of hiding it.
func TestAsyncObserverDropsAreCounted(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	wedged := hermes.ObserverFunc(func(hermes.Event) { <-block })
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithMode(hermes.Unified),
		hermes.WithWorkers(4),
		hermes.WithAsyncObserver(wedged, 2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer once.Do(func() { close(block) })
	if _, err := rt.Run(context.Background(), func(c hermes.Ctx) {
		hermes.For(c, 0, 128, 2, func(c hermes.Ctx, lo, hi int) {
			c.Work(hermes.Cycles(20_000 * (hi - lo)))
		})
	}); err != nil {
		t.Fatal(err)
	}
	if rt.EventsDropped() == 0 {
		t.Fatal("wedged 2-slot observer dropped nothing; drop accounting is broken")
	}
	once.Do(func() { close(block) })
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestObserverOptionsMutuallyExclusive: the sync and async observer
// options cannot be combined, and a nil async observer is rejected.
func TestObserverOptionsMutuallyExclusive(t *testing.T) {
	o := hermes.ObserverFunc(func(hermes.Event) {})
	if _, err := hermes.New(hermes.WithObserver(o), hermes.WithAsyncObserver(o, 16)); err == nil {
		t.Fatal("WithObserver + WithAsyncObserver accepted; want error")
	}
	if _, err := hermes.New(hermes.WithAsyncObserver(nil, 16)); err == nil {
		t.Fatal("nil async observer accepted; want error")
	}
}

// TestMachineStats: the Sim backend surfaces machine-lifetime totals
// after Close; Native has no discrete-event ledger and must refuse.
func TestMachineStats(t *testing.T) {
	rt, err := hermes.New(hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2), hermes.WithMode(hermes.Unified))
	if err != nil {
		t.Fatal(err)
	}
	root, _ := leafWorkload(32)
	var arrivals []hermes.Arrival
	for i := 0; i < 4; i++ {
		arrivals = append(arrivals, hermes.Arrival{At: hermes.Time(i) * 50 * hermes.Microsecond, Task: root})
	}
	jobs, err := rt.SubmitTrace(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	var jobJ float64
	for _, j := range jobs {
		rep, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		jobJ += rep.EnergyJ
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	ms, err := rt.MachineStats()
	if err != nil {
		t.Fatal(err)
	}
	if ms.EnergyJ <= 0 || ms.Busy <= 0 || len(ms.FreqBusy) == 0 {
		t.Fatalf("degenerate machine stats: %+v", ms)
	}
	if ms.EnergyJ < jobJ-1e-9 {
		t.Errorf("machine energy %g below per-job attribution sum %g", ms.EnergyJ, jobJ)
	}

	nrt, err := hermes.New(hermes.WithBackend(hermes.Native), hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nrt.Close()
	_, err = nrt.MachineStats()
	if err == nil {
		t.Fatal("MachineStats on Native accepted; want error")
	}
	// The refusal is the documented sentinel, so callers can branch on
	// it with errors.Is instead of string-matching.
	if !errors.Is(err, hermes.ErrStatsUnavailable) {
		t.Fatalf("MachineStats on Native returned %v; want ErrStatsUnavailable", err)
	}
}

// TestSetModeNative switches tempo mode on a live Native pool: jobs
// before, across and after the switch all complete, reports reflect
// the mode they ran under, and Config tracks the live mode.
func TestSetModeNative(t *testing.T) {
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithWorkers(4),
		hermes.WithMode(hermes.Baseline),
		hermes.WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	root, _ := leafWorkload(64)
	if r, err := rt.Run(context.Background(), root); err != nil || r.Mode != hermes.Baseline {
		t.Fatalf("pre-switch run: mode=%v err=%v", r.Mode, err)
	}

	// Switch under load: a job submitted before the switch keeps
	// running while the mode changes beneath it.
	before, _ := rt.Submit(context.Background(), root)
	if err := rt.SetMode(hermes.Unified); err != nil {
		t.Fatalf("SetMode(Unified): %v", err)
	}
	if _, err := before.Wait(); err != nil {
		t.Fatalf("job spanning the switch failed: %v", err)
	}
	if got := rt.Config().Mode; got != hermes.Unified {
		t.Fatalf("Config().Mode = %v after switch, want Unified", got)
	}
	if r, err := rt.Run(context.Background(), root); err != nil || r.Mode != hermes.Unified {
		t.Fatalf("post-switch run: mode=%v err=%v", r.Mode, err)
	}

	// Idempotent and reversible.
	if err := rt.SetMode(hermes.Unified); err != nil {
		t.Fatalf("no-op SetMode: %v", err)
	}
	if err := rt.SetMode(hermes.Baseline); err != nil {
		t.Fatalf("SetMode back to Baseline: %v", err)
	}
	if r, err := rt.Run(context.Background(), root); err != nil || r.Mode != hermes.Baseline {
		t.Fatalf("post-revert run: mode=%v err=%v", r.Mode, err)
	}
}

// TestSetModeSimRejected pins the Sim sentinel: the deterministic
// backend cannot change configuration mid-run.
func TestSetModeSimRejected(t *testing.T) {
	rt, err := hermes.New(hermes.WithBackend(hermes.Sim))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	err = rt.SetMode(hermes.Unified)
	if !errors.Is(err, hermes.ErrModeSwitchUnavailable) {
		t.Fatalf("Sim SetMode err = %v, want ErrModeSwitchUnavailable", err)
	}
}

// TestSetModeRejectsShortFreqLadder: a pool booted with one frequency
// cannot be switched into a mode that needs a ladder.
func TestSetModeRejectsShortFreqLadder(t *testing.T) {
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithWorkers(2),
		hermes.WithMode(hermes.Baseline),
		hermes.WithFreqs(2_400_000*hermes.KHz),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.SetMode(hermes.Unified); err == nil {
		t.Fatal("SetMode into Unified with a 1-frequency ladder should error")
	}
	if err := rt.SetMode(hermes.Mode(250)); err == nil {
		t.Fatal("SetMode with an invalid mode should error")
	}
}

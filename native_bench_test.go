package hermes_test

import (
	"context"
	"testing"

	"hermes"
	"hermes/internal/hotload"
)

// nativeRuntime builds the trajectory-scale Native runtime (8
// workers) for the hot-path micro-benchmarks. The machine model is
// the default System A (16 clock domains, so 8 workers stay on
// distinct domains). The workload bodies live in internal/hotload,
// shared with `hermes-bench -trajectory`, so the benchmark numbers
// and the BENCH_native.json artifact measure the same thing.
func nativeRuntime(b *testing.B, mode hermes.Mode) *hermes.Runtime {
	b.Helper()
	r, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithWorkers(hotload.Workers),
		hermes.WithMode(mode),
	)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkNativeSpawnJoin measures the steady-state spawn/join cycle:
// one long-lived job performs b.N two-way fork-join blocks, so the
// per-op cost is PUSH + POP (or STEAL) + join bookkeeping with the job
// setup amortized away. tasks/s counts scheduler task executions per
// wall-clock second — the headline hot-path throughput number.
func BenchmarkNativeSpawnJoin(b *testing.B) {
	for _, m := range []struct {
		name string
		mode hermes.Mode
	}{
		{"baseline", hermes.Baseline},
		{"unified", hermes.Unified},
	} {
		b.Run(m.name, func(b *testing.B) {
			r := nativeRuntime(b, m.mode)
			defer r.Close()
			b.ReportAllocs()
			b.ResetTimer()
			rep, err := r.Run(context.Background(), hotload.SpawnJoinLoop(b.N))
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(rep.Tasks)/s, "tasks/s")
			}
		})
	}
}

// BenchmarkNativeFib runs the paper's fib stress: a binary spawn tree
// with a serial cutoff, the fine-grained workload whose task-boundary
// rate exposes any lock or allocation on the scheduler hot path. One
// job per iteration, so job setup is included (it is noise at this
// task count).
func BenchmarkNativeFib(b *testing.B) {
	r := nativeRuntime(b, hermes.Unified)
	defer r.Close()
	want := hotload.SerialFib(hotload.FibN)
	b.ReportAllocs()
	b.ResetTimer()
	var tasks int64
	for i := 0; i < b.N; i++ {
		var out int
		rep, err := r.Run(context.Background(), hotload.Fib(hotload.FibN, hotload.FibCutoff, &out))
		if err != nil {
			b.Fatal(err)
		}
		if out != want {
			b.Fatalf("fib(%d) = %d, want %d", hotload.FibN, out, want)
		}
		tasks += rep.Tasks
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(tasks)/s, "tasks/s")
	}
}

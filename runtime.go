package hermes

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hermes/internal/core"
	"hermes/internal/job"
	"hermes/internal/obs"
	"hermes/internal/rt"
)

// Backend selects the execution engine behind a Runtime.
type Backend uint8

const (
	// Sim is the deterministic discrete-event simulator
	// (internal/core): virtual time, modeled DVFS latency, calibrated
	// power model and 100 Hz meter. Concurrent jobs multiplex over the
	// simulated machine as virtual-time arrivals — sharing workers,
	// deques, tempo and DVFS state — and runs are byte-reproducible
	// for a fixed config, seed and arrival trace (see SubmitTrace):
	// the measurement instrument, now for open systems too.
	Sim Backend = iota
	// Native is the real-concurrency executor (internal/rt): actual
	// goroutine workers multiplex every submitted job over one shared
	// work-stealing pool, with tempo throttling applied in wall-clock
	// time and energy accounted by the same power model.
	Native
)

func (b Backend) String() string {
	switch b {
	case Sim:
		return "sim"
	case Native:
		return "native"
	}
	return "invalid"
}

// ParseBackend maps a backend name ("sim" or "native") onto the
// Backend value — the one parser for every CLI flag.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "sim":
		return Sim, nil
	case "native":
		return Native, nil
	}
	return 0, fmt.Errorf("hermes: unknown backend %q (want sim or native)", s)
}

// ParseMode maps a tempo-mode name onto the Mode value ("unified" and
// "hermes" are synonyms) — the one parser for every CLI flag.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "baseline":
		return Baseline, nil
	case "workpath":
		return WorkpathOnly, nil
	case "workload":
		return WorkloadOnly, nil
	case "unified", "hermes":
		return Unified, nil
	}
	return 0, fmt.Errorf("hermes: unknown mode %q (want baseline, workpath, workload or unified)", s)
}

// ParseDispatch maps a dispatch-policy name ("fifo", "priority" or
// "edf"; "" selects fifo) onto the Dispatch value — the one parser for
// every CLI flag.
func ParseDispatch(s string) (Dispatch, error) { return core.ParseDispatch(s) }

// Job is the handle for one submitted root task: Wait blocks for the
// per-job Report, Done supports select-based completion.
type Job = job.Job

// Observer receives streamed scheduler events (steals, tempo
// switches, DVFS commits, energy samples, job lifecycle). On the
// Native backend it is called from many goroutines at once and must
// be concurrency-safe.
type Observer = obs.Observer

// Event is one scheduler occurrence delivered to an Observer.
type Event = obs.Event

// EventKind discriminates Events.
type EventKind = obs.Kind

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc = obs.Func

// Observer event kinds.
const (
	EventSteal        = obs.Steal
	EventTempoSwitch  = obs.TempoSwitch
	EventDVFSCommit   = obs.DVFSCommit
	EventEnergySample = obs.EnergySample
	EventJobStart     = obs.JobStart
	EventJobDone      = obs.JobDone
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("hermes: runtime closed")

// ErrNilTask is returned by Submit for a nil root task.
var ErrNilTask = errors.New("hermes: nil root task")

// ErrStatsUnavailable is the sentinel wrapped by MachineStats when the
// backend keeps no virtual-time machine ledger (today: Native, whose
// energy accounting lives in per-job Reports). Test with errors.Is.
var ErrStatsUnavailable = errors.New("hermes: machine stats unavailable on this backend")

// ErrModeSwitchUnavailable is the sentinel wrapped by SetMode when the
// backend cannot change tempo mode while running (today: Sim, whose
// determinism contract fixes the whole configuration for the run's
// virtual timeline). Test with errors.Is.
var ErrModeSwitchUnavailable = errors.New("hermes: live mode switching unavailable on this backend")

// Executor is the backend contract behind a Runtime: both the
// discrete-event simulator and the real-concurrency pool serve
// submitted jobs through it.
type Executor interface {
	// Submit enqueues root as a new job of the given service class and
	// returns its handle (pass the zero Class for unclassed traffic).
	// The job observes ctx: cancellation stops task execution at spawn
	// and steal boundaries and completes the job with ctx's error.
	Submit(ctx context.Context, root Task, class Class) (*Job, error)
	// Close rejects further submissions, waits for submitted jobs to
	// complete, and releases the backend's resources.
	Close() error
}

// Runtime is a persistent scheduler serving a stream of jobs over one
// configuration. Construct with New, submit with Submit (or the Run
// method for submit-and-wait), and release with Close. All methods
// are safe for concurrent use.
type Runtime struct {
	cfg     Config
	backend Backend
	exec    Executor
	// sink is the Runtime-owned async observer from WithAsyncObserver,
	// nil when events flow synchronously (WithObserver or none).
	sink *obs.Async
}

// New builds a Runtime from functional options. The zero option set
// selects the simulator backend on System A with one worker per clock
// domain, baseline mode — the same defaults as the package-level Run.
// Invalid configurations return errors (never panics).
func New(opts ...Option) (*Runtime, error) {
	var s settings
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&s); err != nil {
			return nil, err
		}
	}
	if s.machines != 0 || s.placement != nil || s.faultsSet || s.retrySet {
		return nil, errors.New("hermes: WithMachines, WithPlacement, WithFaults and WithRetryPolicy apply to NewCluster, not New")
	}
	var sink *obs.Async
	if s.asyncObs != nil {
		if s.cfg.Observer != nil {
			return nil, errors.New("hermes: WithObserver and WithAsyncObserver are mutually exclusive")
		}
		sink = obs.NewAsync(s.asyncObs, s.asyncBuf)
		s.cfg.Observer = sink
	}
	// fail releases the sink's consumer goroutine on any constructor
	// error after it has been started.
	fail := func(err error) (*Runtime, error) {
		if sink != nil {
			sink.Close()
		}
		return nil, err
	}
	cfg, err := s.cfg.Validate()
	if err != nil {
		return fail(err)
	}
	r := &Runtime{cfg: cfg, backend: s.backend, sink: sink}
	switch s.backend {
	case Sim:
		ex, err := newSimExec(cfg)
		if err != nil {
			return fail(err)
		}
		// Resolve the deque choice the way the Native backend does, so
		// Config() reports what actually runs on either backend: Auto
		// is THE here (the paper-fidelity measurement instrument).
		if r.cfg.Deque == core.DequeAuto {
			r.cfg.Deque = core.DequeTHE
		}
		r.exec = ex
	case Native:
		// Hand the backend the pre-validation config: an unset worker
		// count defaults to one per clock domain on the simulator but
		// to min(GOMAXPROCS, domains) on real goroutine workers.
		ex, err := rt.NewExec(s.cfg)
		if err != nil {
			return fail(err)
		}
		r.cfg = ex.Config()
		r.exec = nativeExec{ex}
	default:
		return fail(fmt.Errorf("hermes: unknown backend %d", s.backend))
	}
	return r, nil
}

// Config returns the validated configuration the Runtime runs with
// (defaults filled in). On backends that support live mode switching
// the returned Mode reflects the current mode, not the boot value.
func (r *Runtime) Config() Config {
	if ex, ok := r.exec.(interface{ Config() core.Config }); ok {
		return ex.Config()
	}
	return r.cfg
}

// SetMode switches the Runtime's tempo mode while it serves traffic —
// the serving control plane's actuator. Jobs in flight keep running;
// only the DVFS control law changes, with all tempo state (immediacy
// list, workload tiers) reset to the target mode's boot invariants.
// Native backend only: the simulator's determinism contract fixes the
// configuration for a run, so Sim returns an error wrapping
// ErrModeSwitchUnavailable. Switching into a tempo-controlled mode
// requires the ≥2-frequency ladder such a mode needs at construction.
func (r *Runtime) SetMode(m Mode) error {
	ms, ok := r.exec.(interface{ SetMode(core.Mode) error })
	if !ok {
		return fmt.Errorf("%w: SetMode needs the Native backend (runtime is %v)",
			ErrModeSwitchUnavailable, r.backend)
	}
	return ms.SetMode(m)
}

// Backend returns the execution engine the Runtime was built with.
func (r *Runtime) Backend() Backend { return r.backend }

// Submit enqueues root as a new job and returns its handle; Job.Wait
// returns the per-job Report. Concurrent jobs multiplex over the
// shared machine on both backends: real goroutine workers on Native
// (a saturated intake queue blocks Submit until space frees or ctx
// fires — backpressure), the simulated machine on Sim, where the job
// arrives at the engine's current virtual time. Cancelling ctx stops
// the job's task execution at spawn and steal boundaries and
// completes it with ctx's error; a job whose work completed before
// cancellation took effect reports success.
//
// Options stamp per-job attributes: WithClass sets the job's service
// class (tenant, priority, deadline, SLO target), which ranked
// dispatch policies (WithDispatch) schedule on and every Report
// carries. No options submits the zero class — exactly the
// pre-class behaviour.
func (r *Runtime) Submit(ctx context.Context, root Task, opts ...SubmitOption) (*Job, error) {
	var so submitSettings
	for _, o := range opts {
		if o != nil {
			o(&so)
		}
	}
	if err := so.class.Validate(); err != nil {
		return nil, err
	}
	j, err := r.exec.Submit(ctx, root, so.class)
	switch {
	case errors.Is(err, rt.ErrClosed):
		err = ErrClosed
	case errors.Is(err, rt.ErrNilTask):
		err = ErrNilTask
	}
	return j, err
}

// Arrival is one entry of a virtual-time arrival trace: Task enters
// the system at virtual time At (negative means "on receipt"; a time
// the virtual clock has already passed is clamped to now) carrying
// service class Class (zero = unclassed).
type Arrival struct {
	At    Time
	Task  Task
	Class Class
}

// SubmitTrace schedules a whole batch of jobs at explicit virtual
// arrival times on the Sim backend, atomically, and returns their
// handles in trace order. This is the reproducible open-system entry
// point: submitted to a quiescent Runtime, a fixed config, seed and
// trace make every per-job Report and the observer event sequence
// byte-identical run after run, while the jobs genuinely overlap —
// contending for workers, steals and DVFS state — inside the
// simulated machine. ctx cancels every job in the trace. The Native
// backend has no virtual clock to schedule against and returns an
// error.
func (r *Runtime) SubmitTrace(ctx context.Context, arrivals []Arrival) ([]*Job, error) {
	se, ok := r.exec.(*simExec)
	if !ok {
		return nil, fmt.Errorf("hermes: SubmitTrace needs the Sim backend (runtime is %v)", r.backend)
	}
	return se.SubmitTrace(ctx, arrivals)
}

// MachineStats returns the simulated machine's totals over the
// Runtime's whole lifetime — integrated energy, residency by DVFS
// tier, steal and tempo counts — the quantities per-job Reports carry
// only as deltas over their own (overlapping) sojourn windows.
// Open-system sweeps read run-level energy, average power and
// tier-residency curves from here. Sim backend only — Native returns
// an error wrapping ErrStatsUnavailable; it blocks until the engine
// has stopped, so call it after Close.
func (r *Runtime) MachineStats() (MachineStats, error) {
	se, ok := r.exec.(*simExec)
	if !ok {
		return MachineStats{}, fmt.Errorf("%w: MachineStats needs the Sim backend (runtime is %v)",
			ErrStatsUnavailable, r.backend)
	}
	return se.pool.MachineStats(), nil
}

// Run submits root and waits for its report: the submit-and-wait
// convenience for callers that want one job at a time.
func (r *Runtime) Run(ctx context.Context, root Task) (Report, error) {
	j, err := r.Submit(ctx, root)
	if err != nil {
		return Report{}, err
	}
	return j.Wait()
}

// Close rejects further submissions, waits for every submitted job to
// complete, then shuts the backend down. When the Runtime owns an
// asynchronous observer sink (WithAsyncObserver), Close drains every
// buffered event into the observer before returning — the executor
// stops first, so no events race the drain. Safe to call more than
// once.
func (r *Runtime) Close() error {
	err := r.exec.Close()
	if r.sink != nil {
		r.sink.Close()
	}
	return err
}

// EventsDropped reports how many observer events the asynchronous
// sink (WithAsyncObserver) has discarded because its buffer was full.
// It is 0 while the buffer keeps up, and always 0 without
// WithAsyncObserver (a synchronous Observer never drops).
func (r *Runtime) EventsDropped() uint64 {
	if r.sink == nil {
		return 0
	}
	return r.sink.Dropped()
}

// nativeExec adapts the real-concurrency executor (internal/rt) to
// the class-aware Executor contract: the class rides on the job for
// reporting and metrics while the intake stays FIFO.
type nativeExec struct{ *rt.Exec }

func (n nativeExec) Submit(ctx context.Context, root Task, class Class) (*Job, error) {
	return n.Exec.SubmitClass(ctx, root, class)
}

// --- simulator backend ----------------------------------------------

// simExec serves jobs through the persistent discrete-event pool
// (core.Pool): concurrently submitted jobs share the simulated
// machine's workers, deques, tempo controller and DVFS state as
// virtual-time arrivals, with per-job reports carrying virtual sojourn
// and worker-time-weighted energy attribution. Determinism holds per
// arrival trace: a fixed config, seed and set of (virtual arrival
// time, job) pairs reproduces byte-identical reports — SubmitTrace
// fixes the arrival times explicitly; plain Submit assigns "now",
// which depends on wall-clock submission timing.
type simExec struct {
	pool *core.Pool

	mu     sync.Mutex
	nextID int64
}

func newSimExec(cfg core.Config) (*simExec, error) {
	pool, err := core.NewPool(cfg)
	if err != nil {
		return nil, err
	}
	return &simExec{pool: pool}, nil
}

func (e *simExec) Submit(ctx context.Context, root Task, class Class) (*Job, error) {
	jobs, err := e.submit(ctx, []Arrival{{At: -1, Task: root, Class: class}})
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// SubmitTrace schedules a batch of jobs at explicit virtual arrival
// times, atomically: the whole trace enters the engine in one step.
func (e *simExec) SubmitTrace(ctx context.Context, arrivals []Arrival) ([]*Job, error) {
	return e.submit(ctx, arrivals)
}

func (e *simExec) submit(ctx context.Context, arrivals []Arrival) ([]*Job, error) {
	for _, a := range arrivals {
		if a.Task == nil {
			return nil, ErrNilTask
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := make([]*Job, len(arrivals))
	reqs := make([]core.JobRequest, len(arrivals))
	// Id assignment and the pool handoff share e.mu so a failed
	// submission can roll its ids back: job ids stay gapless, which
	// lets id-watermark consumers (hermes-serve's pruned detection)
	// trust that every id at or below the watermark really ran.
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, a := range arrivals {
		e.nextID++
		j := job.New(e.nextID)
		jobs[i] = j
		reqs[i] = core.JobRequest{
			ID:        j.ID(),
			At:        a.At,
			Root:      a.Task,
			Class:     a.Class,
			Cancelled: func() bool { return ctx.Err() != nil },
			Done: func(rep core.Report, err error) {
				if errors.Is(err, core.ErrInterrupted) {
					err = ctx.Err()
				}
				j.Finish(rep, err)
			},
		}
	}
	err := e.pool.Submit(reqs...)
	switch {
	case errors.Is(err, core.ErrPoolClosed):
		err = ErrClosed
	case errors.Is(err, core.ErrNilRoot):
		err = ErrNilTask
	}
	if err != nil {
		e.nextID -= int64(len(arrivals))
		return nil, err
	}
	return jobs, nil
}

func (e *simExec) Close() error { return e.pool.Close() }

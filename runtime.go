package hermes

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hermes/internal/core"
	"hermes/internal/job"
	"hermes/internal/obs"
	"hermes/internal/rt"
)

// Backend selects the execution engine behind a Runtime.
type Backend uint8

const (
	// Sim is the deterministic discrete-event simulator
	// (internal/core): virtual time, modeled DVFS latency, calibrated
	// power model and 100 Hz meter. Jobs run one at a time in
	// submission order so every report stays reproducible — the
	// measurement instrument.
	Sim Backend = iota
	// Native is the real-concurrency executor (internal/rt): actual
	// goroutine workers multiplex every submitted job over one shared
	// work-stealing pool, with tempo throttling applied in wall-clock
	// time and energy accounted by the same power model.
	Native
)

func (b Backend) String() string {
	switch b {
	case Sim:
		return "sim"
	case Native:
		return "native"
	}
	return "invalid"
}

// Job is the handle for one submitted root task: Wait blocks for the
// per-job Report, Done supports select-based completion.
type Job = job.Job

// Observer receives streamed scheduler events (steals, tempo
// switches, DVFS commits, energy samples, job lifecycle). On the
// Native backend it is called from many goroutines at once and must
// be concurrency-safe.
type Observer = obs.Observer

// Event is one scheduler occurrence delivered to an Observer.
type Event = obs.Event

// EventKind discriminates Events.
type EventKind = obs.Kind

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc = obs.Func

// Observer event kinds.
const (
	EventSteal        = obs.Steal
	EventTempoSwitch  = obs.TempoSwitch
	EventDVFSCommit   = obs.DVFSCommit
	EventEnergySample = obs.EnergySample
	EventJobStart     = obs.JobStart
	EventJobDone      = obs.JobDone
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("hermes: runtime closed")

// ErrNilTask is returned by Submit for a nil root task.
var ErrNilTask = errors.New("hermes: nil root task")

// Executor is the backend contract behind a Runtime: both the
// discrete-event simulator and the real-concurrency pool serve
// submitted jobs through it.
type Executor interface {
	// Submit enqueues root as a new job and returns its handle. The
	// job observes ctx: cancellation stops task execution at spawn and
	// steal boundaries and completes the job with ctx's error.
	Submit(ctx context.Context, root Task) (*Job, error)
	// Close rejects further submissions, waits for submitted jobs to
	// complete, and releases the backend's resources.
	Close() error
}

// Runtime is a persistent scheduler serving a stream of jobs over one
// configuration. Construct with New, submit with Submit (or the Run
// method for submit-and-wait), and release with Close. All methods
// are safe for concurrent use.
type Runtime struct {
	cfg     Config
	backend Backend
	exec    Executor
	// sink is the Runtime-owned async observer from WithAsyncObserver,
	// nil when events flow synchronously (WithObserver or none).
	sink *obs.Async
}

// New builds a Runtime from functional options. The zero option set
// selects the simulator backend on System A with one worker per clock
// domain, baseline mode — the same defaults as the package-level Run.
// Invalid configurations return errors (never panics).
func New(opts ...Option) (*Runtime, error) {
	var s settings
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&s); err != nil {
			return nil, err
		}
	}
	var sink *obs.Async
	if s.asyncObs != nil {
		if s.cfg.Observer != nil {
			return nil, errors.New("hermes: WithObserver and WithAsyncObserver are mutually exclusive")
		}
		sink = obs.NewAsync(s.asyncObs, s.asyncBuf)
		s.cfg.Observer = sink
	}
	// fail releases the sink's consumer goroutine on any constructor
	// error after it has been started.
	fail := func(err error) (*Runtime, error) {
		if sink != nil {
			sink.Close()
		}
		return nil, err
	}
	cfg, err := s.cfg.Validate()
	if err != nil {
		return fail(err)
	}
	r := &Runtime{cfg: cfg, backend: s.backend, sink: sink}
	switch s.backend {
	case Sim:
		r.exec = newSimExec(cfg)
	case Native:
		// Hand the backend the pre-validation config: an unset worker
		// count defaults to one per clock domain on the simulator but
		// to min(GOMAXPROCS, domains) on real goroutine workers.
		ex, err := rt.NewExec(s.cfg)
		if err != nil {
			return fail(err)
		}
		r.cfg = ex.Config()
		r.exec = ex
	default:
		return fail(fmt.Errorf("hermes: unknown backend %d", s.backend))
	}
	return r, nil
}

// Config returns the validated configuration the Runtime runs with
// (defaults filled in).
func (r *Runtime) Config() Config { return r.cfg }

// Backend returns the execution engine the Runtime was built with.
func (r *Runtime) Backend() Backend { return r.backend }

// Submit enqueues root as a new job and returns its handle; Job.Wait
// returns the per-job Report. On the Native backend concurrent jobs
// multiplex over the shared worker pool (a saturated intake queue
// blocks Submit until space frees or ctx fires — backpressure); on
// the Sim backend they run deterministically in submission order.
// Cancelling ctx stops the job's task execution at spawn and steal
// boundaries and completes it with ctx's error; a job whose work
// completed before cancellation took effect reports success.
func (r *Runtime) Submit(ctx context.Context, root Task) (*Job, error) {
	j, err := r.exec.Submit(ctx, root)
	switch {
	case errors.Is(err, rt.ErrClosed):
		err = ErrClosed
	case errors.Is(err, rt.ErrNilTask):
		err = ErrNilTask
	}
	return j, err
}

// Run submits root and waits for its report: the submit-and-wait
// convenience for callers that want one job at a time.
func (r *Runtime) Run(ctx context.Context, root Task) (Report, error) {
	j, err := r.Submit(ctx, root)
	if err != nil {
		return Report{}, err
	}
	return j.Wait()
}

// Close rejects further submissions, waits for every submitted job to
// complete, then shuts the backend down. When the Runtime owns an
// asynchronous observer sink (WithAsyncObserver), Close drains every
// buffered event into the observer before returning — the executor
// stops first, so no events race the drain. Safe to call more than
// once.
func (r *Runtime) Close() error {
	err := r.exec.Close()
	if r.sink != nil {
		r.sink.Close()
	}
	return err
}

// EventsDropped reports how many observer events the asynchronous
// sink (WithAsyncObserver) has discarded because its buffer was full.
// It is 0 while the buffer keeps up, and always 0 without
// WithAsyncObserver (a synchronous Observer never drops).
func (r *Runtime) EventsDropped() uint64 {
	if r.sink == nil {
		return 0
	}
	return r.sink.Dropped()
}

// --- simulator backend ----------------------------------------------

// simExec serves jobs through the discrete-event simulator. Jobs run
// strictly one at a time in submission order: the simulator is the
// measurement instrument, and serializing jobs keeps every report
// deterministic for a fixed config and seed regardless of how
// submissions interleave.
type simExec struct {
	cfg core.Config

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*simJob
	closed bool
	nextID int64
	wg     sync.WaitGroup
}

type simJob struct {
	ctx  context.Context
	root Task
	j    *Job
}

func newSimExec(cfg core.Config) *simExec {
	e := &simExec{cfg: cfg}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(1)
	go e.runLoop()
	return e
}

func (e *simExec) Submit(ctx context.Context, root Task) (*Job, error) {
	if root == nil {
		return nil, ErrNilTask
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	e.nextID++
	sj := &simJob{ctx: ctx, root: root, j: job.New(e.nextID)}
	e.queue = append(e.queue, sj)
	e.cond.Signal()
	return sj.j, nil
}

func (e *simExec) Close() error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		e.cond.Signal()
	}
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}

// runLoop drains the queue FIFO; Close lets already-submitted jobs
// finish before the loop exits.
func (e *simExec) runLoop() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		sj := e.queue[0]
		e.queue = e.queue[1:]
		e.mu.Unlock()
		e.runJob(sj)
	}
}

func (e *simExec) runJob(sj *simJob) {
	defer func() {
		if p := recover(); p != nil {
			// Keep the observer's JobStart/JobDone framing intact even
			// when the job dies by panic.
			e.emit(obs.Event{Kind: obs.JobDone, Job: sj.j.ID(), Worker: -1, Victim: -1})
			sj.j.Finish(core.Report{}, fmt.Errorf("hermes: job %d panicked: %v", sj.j.ID(), p))
		}
	}()
	e.emit(obs.Event{Kind: obs.JobStart, Job: sj.j.ID(), Worker: -1, Victim: -1})
	if err := sj.ctx.Err(); err != nil {
		e.emit(obs.Event{Kind: obs.JobDone, Job: sj.j.ID(), Worker: -1, Victim: -1})
		sj.j.Finish(core.Report{}, err)
		return
	}
	cfg := e.cfg
	// Track whether cancellation actually interrupted the run: every
	// poll returning true skips work, so a job that finishes without a
	// positive poll completed fully and reports success even if its
	// context expires at the finish line.
	interrupted := false
	cfg.Cancelled = func() bool {
		if sj.ctx.Err() != nil {
			interrupted = true
			return true
		}
		return false
	}
	rep := core.Run(cfg, sj.root)
	e.emit(obs.Event{Kind: obs.JobDone, Job: sj.j.ID(), Worker: -1, Victim: -1,
		Time: rep.Span, Energy: rep.EnergyJ})
	var err error
	if interrupted {
		err = sj.ctx.Err()
	}
	sj.j.Finish(rep, err)
}

func (e *simExec) emit(ev obs.Event) {
	if e.cfg.Observer != nil {
		e.cfg.Observer.Observe(ev)
	}
}

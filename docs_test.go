package hermes_test

import (
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown documents whose fenced Go snippets must be
// gofmt-clean — the ones that teach the API.
var docFiles = []string{"README.md", "ARCHITECTURE.md", "docs/serving.md", "docs/workloads.md", "docs/faults.md", "docs/tenancy.md"}

// goFence matches a fenced Go code block and captures its body.
var goFence = regexp.MustCompile("(?s)```go\n(.*?)```")

// mdLink matches inline markdown links and captures the destination.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// gofmtClean checks that a snippet is gofmt-formatted. Snippets may be
// full files, top-level declarations, or statement sequences; the
// latter two are wrapped the way gofmt would indent them and must
// match byte-for-byte after formatting.
func gofmtClean(snippet string) error {
	if !strings.HasSuffix(snippet, "\n") {
		snippet += "\n"
	}
	candidates := []string{
		snippet,
		"package p\n\n" + snippet,
		"package p\n\nfunc _() {\n" + indent(snippet) + "}\n",
	}
	var firstErr error
	for _, c := range candidates {
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "snippet.go", c, parser.ParseComments); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		got, err := format.Source([]byte(c))
		if err != nil {
			return err
		}
		if string(got) != c {
			return fmt.Errorf("not gofmt-clean; want:\n%s", got)
		}
		return nil
	}
	return fmt.Errorf("snippet does not parse under any wrapping: %v", firstErr)
}

// indent prefixes every non-blank line with one tab — the indentation
// gofmt gives a function body.
func indent(s string) string {
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "\t" + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestDocsGoSnippetsGofmt extracts every ```go fence from the docs and
// fails if any would be rewritten by gofmt — the docs-layer analogue
// of the gofmt CI gate on source files.
func TestDocsGoSnippetsGofmt(t *testing.T) {
	total := 0
	for _, path := range docFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for i, m := range goFence.FindAllStringSubmatch(string(data), -1) {
			total++
			if err := gofmtClean(m[1]); err != nil {
				t.Errorf("%s: go snippet %d: %v", path, i+1, err)
			}
		}
	}
	if total == 0 {
		t.Fatal("no Go snippets found in docs — extraction regex broken?")
	}
}

// TestDocsRelativeLinks walks every tracked markdown file and checks
// that each relative link points at a path that exists.
func TestDocsRelativeLinks(t *testing.T) {
	checked := 0
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			dest := m[1]
			if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") ||
				strings.HasPrefix(dest, "mailto:") || strings.HasPrefix(dest, "#") {
				continue
			}
			if i := strings.IndexByte(dest, '#'); i >= 0 {
				dest = dest[:i]
			}
			if dest == "" {
				continue
			}
			target := filepath.Join(filepath.Dir(path), dest)
			if _, statErr := os.Stat(target); statErr != nil {
				t.Errorf("%s: dead link %q (resolved %s)", path, m[1], target)
			}
			checked++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no relative links found in any markdown file — link regex broken?")
	}
}

// Package hermes is an energy-efficient work-stealing runtime — a Go
// reproduction of "Energy-Efficient Work-Stealing Language Runtimes"
// (Ribic & Liu, ASPLOS 2014) grown into a service-style scheduler.
//
// Programs express fork-join parallelism through the Ctx API and run
// on a Cilk-style work-stealing scheduler whose workers execute at
// different tempos: CPU frequencies chosen by the paper's
// workpath-sensitive algorithm (thieves run slower than their victims;
// immediacy is relayed when a victim drains) and workload-sensitive
// algorithm (deque size against online-profiled thresholds).
//
// The primary entry point is the persistent Runtime, constructed with
// functional options and serving a stream of jobs over one
// work-stealing pool:
//
//	rt, err := hermes.New(
//		hermes.WithWorkers(8),
//		hermes.WithMode(hermes.Unified),
//		hermes.WithBackend(hermes.Native),
//	)
//	if err != nil { ... }
//	defer rt.Close()
//
//	job, err := rt.Submit(ctx, func(c hermes.Ctx) {
//		hermes.For(c, 0, 1000, 10, func(c hermes.Ctx, lo, hi int) {
//			// real work for elements [lo, hi), plus its cost model
//			c.WorkMix(50_000*hermes.Cycles(hi-lo), 0.5)
//		})
//	})
//	if err != nil { ... }
//	report, err := job.Wait()
//
// Two backends serve the same API. Sim (the default) is the
// deterministic discrete-event simulator — clock domains, DVFS
// latency, a calibrated power model and a 100 Hz energy meter modeled
// on the paper's measurement rig — where concurrent jobs multiplex
// over the simulated machine as virtual-time arrivals: every Report
// is bit-reproducible for a fixed config, seed and arrival trace
// (SubmitTrace schedules a whole trace at explicit virtual times),
// making the simulator the measurement instrument for open-system
// queueing — sojourn time, steal interference between jobs, energy
// per request under load — as well as single runs. Native executes on
// real goroutine workers, multiplexing all submitted jobs over one
// shared pool with tempo throttling applied in wall-clock time: the
// service engine. Jobs are cancelled cooperatively through their
// submission context, and WithObserver streams scheduler events
// (steals, tempo switches, energy samples, job lifecycle with
// per-job sojourn) for telemetry.
//
// The original one-shot entry point remains for simulator runs:
//
//	report := hermes.Run(hermes.Config{Workers: 8}, root)
package hermes

import (
	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/units"
	"hermes/internal/wl"
)

// Ctx is the per-task handle workloads use to fork, join and account
// work. See internal/wl for the full contract.
type Ctx = wl.Ctx

// Task is a unit of parallel work.
type Task = wl.Task

// Config configures a run; the zero value selects System A with one
// worker per clock domain, baseline mode.
type Config = core.Config

// Report is the measured outcome of a run.
type Report = core.Report

// MachineStats is the simulated machine's lifetime aggregate
// (Runtime.MachineStats, Sim backend).
type MachineStats = core.MachineStats

// Mode selects the tempo-control strategy.
type Mode = core.Mode

// Scheduling selects the worker-core mapping policy.
type Scheduling = core.Scheduling

// Scheduler modes (Config.Mode).
const (
	// Baseline is classic work stealing, all cores at max frequency.
	Baseline = core.Baseline
	// WorkpathOnly enables thief procrastination + immediacy relay.
	WorkpathOnly = core.WorkpathOnly
	// WorkloadOnly enables deque-size-driven tempo control.
	WorkloadOnly = core.WorkloadOnly
	// Unified enables both strategies — full HERMES.
	Unified = core.Unified
)

// Worker-core scheduling policies (Config.Scheduling).
const (
	Static  = core.Static
	Dynamic = core.Dynamic
)

// Class is a job's service class: tenant label, scheduling priority,
// optional deadline and SLO target. The zero Class is unclassed
// traffic — exactly the pre-class behaviour. Attach with WithClass
// (Submit) or Arrival.Class (SubmitTrace).
type Class = core.Class

// Dispatch selects how a machine's intake orders ready jobs
// (WithDispatch).
type Dispatch = core.Dispatch

// Dispatch policies (Config.Dispatch, WithDispatch).
const (
	// DispatchFIFO serves ready jobs in delivery order — the
	// class-blind default, byte-identical to the pre-class runtime.
	DispatchFIFO = core.DispatchFIFO
	// DispatchPriority serves the highest Class.Priority first.
	DispatchPriority = core.DispatchPriority
	// DispatchEDF serves the earliest absolute deadline first;
	// deadline-less jobs run after every deadlined one.
	DispatchEDF = core.DispatchEDF
)

// DequeKind selects the work-stealing deque implementation.
type DequeKind = core.DequeKind

// Deque implementations (Config.Deque, WithDeque).
const (
	// DequeAuto picks per backend: Chase–Lev on Native, THE on Sim.
	DequeAuto = core.DequeAuto
	// DequeTHE is the paper's THE protocol (mutex on every steal).
	DequeTHE = core.DequeTHE
	// DequeChaseLev is the lock-free Chase–Lev deque.
	DequeChaseLev = core.DequeChaseLev
)

// Time and work units.
type (
	// Time is virtual time in picoseconds.
	Time = units.Time
	// Freq is a CPU frequency in kHz.
	Freq = units.Freq
	// Cycles is computational work in CPU cycles.
	Cycles = units.Cycles
)

// Common unit constants, re-exported for configuration literals.
const (
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
	KHz         = units.KHz
	MHz         = units.MHz
	GHz         = units.GHz
)

// SystemA returns the paper's System A machine model: 2× 16-core AMD
// Opteron 6378, 16 clock domains, 1.4–2.4 GHz.
func SystemA() *cpu.Spec { return cpu.SystemA() }

// SystemB returns the paper's System B machine model: 8-core AMD
// FX-8150, 4 clock domains, 1.4–3.6 GHz.
func SystemB() *cpu.Spec { return cpu.SystemB() }

// DefaultFreqs returns the paper's default 2-frequency tempo mapping
// for a system.
func DefaultFreqs(spec *cpu.Spec) []Freq { return core.DefaultFreqs(spec) }

// Run executes root to completion on the simulator under cfg and
// returns the measured report — the original one-shot API, kept as a
// thin wrapper over the Sim backend. Runs are deterministic for a
// fixed config and seed. Invalid configs panic; use New for the
// error-returning persistent API.
func Run(cfg Config, root Task) Report { return core.Run(cfg, root) }

// For runs body over [lo, hi) in parallel chunks of at most grain
// elements using Cilk-style recursive splitting.
func For(c Ctx, lo, hi, grain int, body func(Ctx, int, int)) { wl.For(c, lo, hi, grain, body) }

// Seq runs tasks serially on the current worker.
func Seq(c Ctx, tasks ...Task) { wl.Seq(c, tasks...) }

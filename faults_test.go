package hermes_test

import (
	"context"
	"fmt"
	"testing"

	"hermes"
)

// chaosFaults staggers a crash on each of two machines with staggered
// rejoins, so whichever machine a policy favours, some job is evicted
// mid-flight and must recover on the other.
func chaosFaults() []hermes.FaultEvent {
	return []hermes.FaultEvent{
		{At: 50 * hermes.Microsecond, Machine: 0, Kind: hermes.FaultCrash},
		{At: 120 * hermes.Microsecond, Machine: 1, Kind: hermes.FaultCrash},
		{At: 400 * hermes.Microsecond, Machine: 0, Kind: hermes.FaultRejoin},
		{At: 2 * hermes.Millisecond, Machine: 1, Kind: hermes.FaultRejoin},
	}
}

// runChaosTrace drives a two-machine fleet through the chaos plan
// under the given placement policy and returns the per-job report
// strings plus the fleet ledger.
func runChaosTrace(t *testing.T, p hermes.Placement) ([]string, hermes.ClusterStats) {
	t.Helper()
	c, err := hermes.NewCluster(
		hermes.WithMachines(2),
		hermes.WithPlacement(p),
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(2),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(31),
		hermes.WithFaults(chaosFaults()...),
	)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := leafWorkload(32)
	var arrivals []hermes.Arrival
	for i := 0; i < 6; i++ {
		arrivals = append(arrivals, hermes.Arrival{At: hermes.Time(i) * 30 * hermes.Microsecond, Task: root})
	}
	jobs, err := c.SubmitTrace(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for i, j := range jobs {
		rep, err := j.Wait()
		if err != nil {
			t.Fatalf("%s: job %d not recovered: %v", p, i+1, err)
		}
		out = append(out, fmt.Sprintf("%+v", rep))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return out, c.ClusterStats()
}

// TestClusterFaultRecoveryAllPolicies is the public recovery contract:
// under every placement policy, crashing both machines mid-trace
// evicts work, yet every job completes, nothing is lost under the
// default budget, and the availability ledger records the episode.
func TestClusterFaultRecoveryAllPolicies(t *testing.T) {
	for _, p := range []hermes.Placement{
		hermes.PlacementRandom(),
		hermes.PlacementJSQ(),
		hermes.PlacementPowerOfChoices(2),
		hermes.PlacementGossip(0, 0, 0),
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			reports, st := runChaosTrace(t, p)
			if st.Completed != int64(len(reports)) || st.Lost != 0 {
				t.Fatalf("completed %d, lost %d of %d jobs", st.Completed, st.Lost, len(reports))
			}
			if st.Crashes != 2 || st.Rejoins != 2 {
				t.Fatalf("ledger crashes=%d rejoins=%d, want 2/2", st.Crashes, st.Rejoins)
			}
			if st.Retries == 0 {
				t.Fatal("both machines crashed mid-trace yet no job retried")
			}
			if st.Goodput != 1 {
				t.Fatalf("goodput %g with nothing lost", st.Goodput)
			}
			if len(st.Downtime) != 2 || st.Downtime[0] <= 0 || st.Downtime[1] <= 0 {
				t.Fatalf("downtime ledger %v, want both machines down for a while", st.Downtime)
			}
		})
	}
}

// TestClusterFaultDeterminism: same options, seed, trace and fault
// plan ⇒ byte-identical per-job reports and fleet stats through the
// public API.
func TestClusterFaultDeterminism(t *testing.T) {
	repA, stA := runChaosTrace(t, hermes.PlacementPowerOfChoices(2))
	repB, stB := runChaosTrace(t, hermes.PlacementPowerOfChoices(2))
	for i := range repA {
		if repA[i] != repB[i] {
			t.Fatalf("job %d diverged under faults:\n%s\nvs\n%s", i+1, repA[i], repB[i])
		}
	}
	if a, b := fmt.Sprintf("%+v", stA), fmt.Sprintf("%+v", stB); a != b {
		t.Fatalf("fleet stats diverged under faults:\n%s\nvs\n%s", a, b)
	}
}

// TestFaultOptionFencing: fault and retry options are cluster-only,
// and the retry policy rejects nonsense.
func TestFaultOptionFencing(t *testing.T) {
	if _, err := hermes.New(hermes.WithFaults(chaosFaults()...)); err == nil {
		t.Fatal("New accepted WithFaults")
	}
	if _, err := hermes.New(hermes.WithRetryPolicy(3, hermes.Millisecond)); err == nil {
		t.Fatal("New accepted WithRetryPolicy")
	}
	if _, err := hermes.NewCluster(
		hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2),
		hermes.WithRetryPolicy(0, hermes.Millisecond),
	); err == nil {
		t.Fatal("NewCluster accepted a zero retry budget")
	}
	if _, err := hermes.NewCluster(
		hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2),
		hermes.WithRetryPolicy(1, -hermes.Millisecond),
	); err == nil {
		t.Fatal("NewCluster accepted a negative retry backoff")
	}
	if _, err := hermes.NewCluster(
		hermes.WithMachines(2),
		hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2),
		hermes.WithFaults(hermes.FaultEvent{At: 1, Machine: 7, Kind: hermes.FaultCrash}),
	); err == nil {
		t.Fatal("NewCluster accepted a fault aimed past the fleet")
	}
}

package hermes

import "hermes/internal/core"

// FaultEvent is one scheduled fault on the cluster's shared virtual
// timeline: at virtual time At, machine Machine crashes, rejoins,
// starts running slow, or recovers. Schedules are plain data — build
// them by hand for targeted tests, or compile a named, seeded plan
// with the internal/fault registry (surfaced by hermes-bench -faults)
// and pass the result to WithFaults. The same (config, seed, trace,
// schedule) reproduces byte-identical per-job Reports and
// ClusterStats, crashes included.
type FaultEvent = core.FaultEvent

// FaultKind discriminates what a FaultEvent does to its machine.
type FaultKind = core.FaultKind

// Fault kinds: FaultCrash is fail-stop — the machine's in-flight jobs
// are evicted and re-placed elsewhere, its power draw drops to zero,
// and placement and gossip skip it until a FaultRejoin brings it back
// cold. FaultSlow makes the machine a straggler — Factor >= 1
// inflates all work on it by that ratio, Factor 0 pins every worker
// to the lowest DVFS tier instead — until FaultRecover.
const (
	FaultCrash   = core.FaultCrash
	FaultRejoin  = core.FaultRejoin
	FaultSlow    = core.FaultSlow
	FaultRecover = core.FaultRecover
)

// ErrJobLost fails a job evicted by machine crashes more times than
// the cluster's retry budget allows (see WithRetryPolicy), or one that
// cannot be re-placed because the whole fleet is down for good. Lost
// jobs still resolve: Job.Wait returns this error and the partial
// Report records the retry history.
var ErrJobLost = core.ErrJobLost

// KNN service: the paper's "KNN" workload as a multi-job service —
// one persistent Runtime answers a stream of k-nearest-neighbour
// query batches submitted as concurrent jobs over the shared
// work-stealing pool. On the simulator backend the jobs serialize
// deterministically, so per-job reports are reproducible and the
// HERMES savings can be read off the aggregate stream.
//
//	go run ./examples/knnservice
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"hermes"
	"hermes/internal/bench/knn"
)

const (
	points  = 50_000
	queries = 4 // concurrent query-batch jobs per mode
)

func main() {
	fmt.Printf("KNN service: %d-point index, %d concurrent query jobs per mode, SystemA\n\n", points, queries)
	fmt.Printf("%-10s  %-6s  %-12s  %-10s  %-8s\n", "mode", "job", "span", "energy", "steals")

	for _, mode := range []hermes.Mode{hermes.Baseline, hermes.Unified} {
		reports := serve(mode)
		var energy, span float64
		for i, r := range reports {
			fmt.Printf("%-10s  %-6d  %-12v  %-10.2f  %-8d\n", mode, i, r.Span, r.EnergyJ, r.Steals)
			energy += r.EnergyJ
			span += r.Span.Seconds()
		}
		fmt.Printf("%-10s  total   %-12s  %-10.2f\n\n", mode, fmt.Sprintf("%.3fs", span), energy)
	}
}

// serve stands up one persistent Runtime and fires all query jobs at
// it from separate goroutines, as a service frontend would. Each job
// builds and answers one batch of KNN queries; each gets its own
// report.
func serve(mode hermes.Mode) []hermes.Report {
	rt, err := hermes.New(
		hermes.WithSpec(hermes.SystemA()),
		hermes.WithWorkers(16),
		hermes.WithMode(mode),
		hermes.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	reports := make([]hermes.Report, queries)
	var wg sync.WaitGroup
	for q := 0; q < queries; q++ {
		q := q
		batch := knn.New(points, 8, 11+int64(q))
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := rt.Submit(context.Background(), batch.Root)
			if err != nil {
				log.Fatal(err)
			}
			r, err := job.Wait()
			if err != nil {
				log.Fatal(err)
			}
			if err := batch.Check(); err != nil {
				log.Fatal(err)
			}
			reports[q] = r
		}()
	}
	wg.Wait()
	return reports
}

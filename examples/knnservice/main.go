// KNN service: the paper's "KNN" workload as an application — answer
// k-nearest-neighbour queries over a clustered point set, sweeping the
// worker count to show how HERMES's savings behave with parallelism
// (the paper's Figure 6 x-axis).
//
//	go run ./examples/knnservice
package main

import (
	"fmt"

	"hermes"
	"hermes/internal/bench/knn"
)

func main() {
	fmt.Println("k-nearest neighbours (k=8) over 100k clustered points, SystemA")
	fmt.Printf("%-8s  %-12s  %-10s  %-10s  %-8s\n", "workers", "span", "energy", "saving", "loss")
	for _, w := range []int{2, 4, 8, 16} {
		base := run(w, hermes.Baseline)
		herm := run(w, hermes.Unified)
		fmt.Printf("%-8d  %-12v  %-10.2f  %+-10.1f  %+-8.1f\n",
			w, herm.Span, herm.EnergyJ,
			100*(1-herm.EnergyJ/base.EnergyJ),
			100*(herm.Span.Seconds()/base.Span.Seconds()-1))
	}
}

func run(workers int, mode hermes.Mode) hermes.Report {
	job := knn.New(100_000, 8, 11)
	r := hermes.Run(hermes.Config{
		Spec:    hermes.SystemA(),
		Workers: workers,
		Mode:    mode,
		Seed:    11,
	}, job.Root)
	if err := job.Check(); err != nil {
		panic(err)
	}
	return r
}

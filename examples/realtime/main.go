// Realtime: run the HERMES algorithms on real goroutine workers (the
// Native backend) as a persistent multi-job service — true
// parallelism on the host, several jobs multiplexed over one shared
// work-stealing pool, tempo throttling applied in wall-clock time,
// energy accounted by the same calibrated power model, and an
// Observer streaming scheduler events.
//
//	go run ./examples/realtime
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"hermes"
)

func main() {
	var steals, tempoSwitches atomic.Int64
	rt, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(4),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(1),
		hermes.WithObserver(hermes.ObserverFunc(func(e hermes.Event) {
			switch e.Kind {
			case hermes.EventSteal:
				steals.Add(1)
			case hermes.EventTempoSwitch:
				tempoSwitches.Add(1)
			}
		})),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// A burst of mixed CPU/memory jobs, submitted concurrently: the
	// pool serves them all at once, so the deque-size thresholds react
	// to the aggregate traffic rather than one fork-join tree.
	const jobs = 3
	work := func(c hermes.Ctx) {
		hermes.For(c, 0, 256, 2, func(c hermes.Ctx, lo, hi int) {
			c.WorkMix(hermes.Cycles(2_000_000*(hi-lo)), 0.7)
		})
	}

	var wg sync.WaitGroup
	reports := make([]hermes.Report, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := rt.Run(context.Background(), work)
			if err != nil {
				log.Fatal(err)
			}
			reports[i] = r
		}()
	}
	wg.Wait()

	for i, r := range reports {
		fmt.Printf("job %d: span=%v energy=%.2fJ tasks=%d steals=%d\n",
			i, r.Span, r.EnergyJ, r.Tasks, r.Steals)
	}
	fmt.Printf("\npool events observed: %d steals, %d tempo switches\n",
		steals.Load(), tempoSwitches.Load())
	fmt.Println("(wall-clock numbers vary run to run — the OS schedules for real here;")
	fmt.Println(" use the Sim backend via cmd/hermes-bench for reproducible measurements)")
}

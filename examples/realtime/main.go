// Realtime: run the HERMES algorithms on real goroutine workers
// (internal/rt) instead of the simulator — true parallelism on the
// host, with tempo throttling applied in wall-clock time and energy
// accounted by the same calibrated power model.
//
//	go run ./examples/realtime
package main

import (
	"fmt"

	"hermes/internal/rt"
	"hermes/internal/units"
	"hermes/internal/wl"
)

func main() {
	// A mixed CPU/memory workload: 256 chunks of declared work.
	work := func(c wl.Ctx) {
		wl.For(c, 0, 256, 2, func(c wl.Ctx, lo, hi int) {
			c.WorkMix(units.Cycles(2_000_000*(hi-lo)), 0.7)
		})
	}

	base := rt.Run(rt.Config{Workers: 4, Hermes: false, Seed: 1}, work)
	herm := rt.Run(rt.Config{Workers: 4, Hermes: true, Seed: 1}, work)

	fmt.Println("baseline:", base)
	fmt.Println("hermes:  ", herm)
	fmt.Printf("modeled energy delta: %+.1f%%  wall-clock delta: %+.1f%%\n",
		100*(herm.EnergyJ/base.EnergyJ-1),
		100*(float64(herm.Span)/float64(base.Span)-1))
	fmt.Println("(wall-clock numbers vary run to run — the OS schedules for real here;")
	fmt.Println(" use the simulator via cmd/hermes-bench for reproducible measurements)")
}

// Quickstart: run a parallel computation on the HERMES runtime and
// compare the energy bill of the tempo-controlled scheduler against
// the classic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"hermes"
)

// workload is a divide-and-conquer "image filter": a tree of tasks
// whose leaves do mixed CPU/memory work of varying sizes.
func workload(depth int, cycles hermes.Cycles) hermes.Task {
	var node func(d int, c hermes.Cycles) hermes.Task
	node = func(d int, c hermes.Cycles) hermes.Task {
		return func(ctx hermes.Ctx) {
			if d == 0 {
				ctx.WorkMix(c, 0.8)
				return
			}
			// Uneven split: the recursion is deliberately lopsided so
			// deques grow and shrink irregularly, like real programs.
			ctx.Go(
				node(d-1, c/3),
				node(d-1, c-c/3),
			)
		}
	}
	return node(depth, cycles)
}

func main() {
	root := workload(10, 3_000_000_000) // ~3G cycles across 1024 leaves

	base := hermes.Run(hermes.Config{
		Spec:    hermes.SystemA(),
		Workers: 8,
		Mode:    hermes.Baseline,
		Seed:    1,
	}, root)

	herm := hermes.Run(hermes.Config{
		Spec:    hermes.SystemA(),
		Workers: 8,
		Mode:    hermes.Unified,
		Seed:    1,
	}, root)

	fmt.Println("baseline:", base.String())
	fmt.Println()
	fmt.Println("hermes:  ", herm.String())
	fmt.Println()
	fmt.Printf("energy saving: %+.1f%%   time loss: %+.1f%%   normalized EDP: %.3f\n",
		100*(1-herm.EnergyJ/base.EnergyJ),
		100*(herm.Span.Seconds()/base.Span.Seconds()-1),
		herm.EDP/base.EDP)
}

// Quickstart: build a persistent Runtime, submit a parallel
// computation as a job, and compare the energy bill of the
// tempo-controlled scheduler against the classic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hermes"
)

// workload is a divide-and-conquer "image filter": a tree of tasks
// whose leaves do mixed CPU/memory work of varying sizes.
func workload(depth int, cycles hermes.Cycles) hermes.Task {
	var node func(d int, c hermes.Cycles) hermes.Task
	node = func(d int, c hermes.Cycles) hermes.Task {
		return func(ctx hermes.Ctx) {
			if d == 0 {
				ctx.WorkMix(c, 0.8)
				return
			}
			// Uneven split: the recursion is deliberately lopsided so
			// deques grow and shrink irregularly, like real programs.
			ctx.Go(
				node(d-1, c/3),
				node(d-1, c-c/3),
			)
		}
	}
	return node(depth, cycles)
}

// measure runs root once on a fresh simulator Runtime in the given
// mode. hermes.New validates the configuration and returns errors
// instead of panicking; Submit hands back a Job whose Wait delivers
// the per-job report.
func measure(mode hermes.Mode, root hermes.Task) hermes.Report {
	rt, err := hermes.New(
		hermes.WithSpec(hermes.SystemA()),
		hermes.WithWorkers(8),
		hermes.WithMode(mode),
		hermes.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	job, err := rt.Submit(context.Background(), root)
	if err != nil {
		log.Fatal(err)
	}
	report, err := job.Wait()
	if err != nil {
		log.Fatal(err)
	}
	return report
}

func main() {
	root := workload(10, 3_000_000_000) // ~3G cycles across 1024 leaves

	base := measure(hermes.Baseline, root)
	herm := measure(hermes.Unified, root)

	fmt.Println("baseline:", base.String())
	fmt.Println()
	fmt.Println("hermes:  ", herm.String())
	fmt.Println()
	fmt.Printf("energy saving: %+.1f%%   time loss: %+.1f%%   normalized EDP: %.3f\n",
		100*(1-herm.EnergyJ/base.EnergyJ),
		100*(herm.Span.Seconds()/base.Span.Seconds()-1),
		herm.EDP/base.EDP)
}

// Powertrace: record the 100 Hz power samples of a run — what the
// paper's NI DAQ rig produced — and print them as CSV, ready for
// plotting (Figures 19–22 are these traces for KNN and Ray).
//
//	go run ./examples/powertrace > trace.csv
package main

import (
	"fmt"

	"hermes"
	"hermes/internal/bench/isort"
)

func main() {
	job := isort.New(6_000_000, 3)
	r := hermes.Run(hermes.Config{
		Spec:    hermes.SystemA(),
		Workers: 16,
		Mode:    hermes.Unified,
		Seed:    3,
	}, job.Root)
	if err := job.Check(); err != nil {
		panic(err)
	}
	fmt.Println("t_seconds,watts,amps_at_12V")
	for _, s := range r.Samples {
		fmt.Printf("%.2f,%.2f,%.3f\n", s.T.Seconds(), s.Watts, s.Amps)
	}
	fmt.Printf("# span=%v energy=%.2fJ meter=%.2fJ\n", r.Span, r.EnergyJ, r.MeterJ)
}

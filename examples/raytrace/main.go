// Raytrace: the paper's "Ray" workload as an application — build a BVH
// over a random scene and cast rays in parallel, reporting hits and
// the runtime's energy/time bill on both modeled systems.
//
//	go run ./examples/raytrace
package main

import (
	"fmt"

	"hermes"
	"hermes/internal/bench/ray"
	"hermes/internal/cpu"
)

func main() {
	for _, sys := range []*cpu.Spec{hermes.SystemA(), hermes.SystemB()} {
		workers := sys.Domains()
		job := ray.New(50_000, 100_000, 7)
		r := hermes.Run(hermes.Config{
			Spec:    sys,
			Workers: workers,
			Mode:    hermes.Unified,
			Seed:    7,
		}, job.Root)
		if err := job.Check(); err != nil {
			panic(err)
		}
		fmt.Printf("%s (%d workers): %d/%d rays hit, span %v, %.2f J (%.1f W avg)\n",
			sys.Name, workers, job.HitCount(), 100_000, r.Span, r.EnergyJ, r.AvgPowerW)
	}
}

package hermes_test

import (
	"context"
	"fmt"
	"testing"

	"hermes"
)

// mixedTrace builds a deterministic classed trace: a burst of
// heavy batch jobs at t=0 followed by small latency-critical jobs
// arriving while the batch work still queues, so dispatch policies
// have something real to reorder.
func mixedTrace(batch, lc int) []hermes.Arrival {
	var arrivals []hermes.Arrival
	for i := 0; i < batch; i++ {
		root, _ := leafWorkload(192)
		arrivals = append(arrivals, hermes.Arrival{
			At:    hermes.Time(i+1) * 10 * hermes.Microsecond,
			Task:  root,
			Class: hermes.Class{Tenant: "batch"},
		})
	}
	for i := 0; i < lc; i++ {
		root, _ := leafWorkload(8)
		arrivals = append(arrivals, hermes.Arrival{
			At:   hermes.Time(i+1) * 50 * hermes.Microsecond,
			Task: root,
			Class: hermes.Class{
				Tenant: "lc", Priority: 1,
				Deadline:  2 * hermes.Millisecond,
				SLOTarget: 2 * hermes.Millisecond,
			},
		})
	}
	return arrivals
}

// dispatchRun replays the mixed trace on a 2-worker Sim machine under
// one dispatch policy and returns the per-job reports in trace order.
func dispatchRun(t *testing.T, d hermes.Dispatch, quantum hermes.Time) []hermes.Report {
	t.Helper()
	opts := []hermes.Option{
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(2),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(42),
		hermes.WithDispatch(d),
	}
	if quantum > 0 {
		opts = append(opts, hermes.WithPreemptQuantum(quantum))
	}
	rt, err := hermes.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	handles, err := rt.SubmitTrace(context.Background(), mixedTrace(6, 4))
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]hermes.Report, len(handles))
	for i, j := range handles {
		r, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", j.ID(), err)
		}
		reports[i] = r
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	return reports
}

// TestDispatchDeterministicReports is the acceptance pin for the
// dispatch seam: under EVERY policy (and with preemption on), two
// identical classed traces on identical configs yield byte-identical
// per-job reports.
func TestDispatchDeterministicReports(t *testing.T) {
	cases := []struct {
		name    string
		d       hermes.Dispatch
		quantum hermes.Time
	}{
		{"fifo", hermes.DispatchFIFO, 0},
		{"priority", hermes.DispatchPriority, 0},
		{"edf", hermes.DispatchEDF, 0},
		{"edf-preempt", hermes.DispatchEDF, 20 * hermes.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := dispatchRun(t, tc.d, tc.quantum)
			b := dispatchRun(t, tc.d, tc.quantum)
			for i := range a {
				ra, rb := fmt.Sprintf("%+v", a[i]), fmt.Sprintf("%+v", b[i])
				if ra != rb {
					t.Fatalf("job %d report diverged between identical runs:\n%s\nvs\n%s", i+1, ra, rb)
				}
			}
		})
	}
}

// TestDispatchClassEchoedInReport: the submitted class must travel
// with the job and come back in its report, on both entry points.
func TestDispatchClassEchoedInReport(t *testing.T) {
	reports := dispatchRun(t, hermes.DispatchFIFO, 0)
	for i, r := range reports {
		want := "batch"
		if i >= 6 {
			want = "lc"
		}
		if r.Class.Tenant != want {
			t.Fatalf("job %d class = %+v, want tenant %q", i+1, r.Class, want)
		}
	}

	rt, err := hermes.New(hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	root, _ := leafWorkload(8)
	class := hermes.Class{Tenant: "t9", Priority: 3}
	j, err := rt.Submit(context.Background(), root, hermes.WithClass(class))
	if err != nil {
		t.Fatal(err)
	}
	r, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.Class != class {
		t.Fatalf("Submit class = %+v, want %+v", r.Class, class)
	}
}

// TestRankedDispatchReordersLatencyCritical: with batch work queued
// ahead of it, a priority-1 job must finish sooner under ranked
// dispatch than under FIFO — the policies genuinely separate.
func TestRankedDispatchReordersLatencyCritical(t *testing.T) {
	lcMax := func(reports []hermes.Report) hermes.Time {
		var max hermes.Time
		for _, r := range reports {
			if r.Class.Tenant == "lc" && r.Sojourn > max {
				max = r.Sojourn
			}
		}
		return max
	}
	fifo := lcMax(dispatchRun(t, hermes.DispatchFIFO, 0))
	prio := lcMax(dispatchRun(t, hermes.DispatchPriority, 0))
	edf := lcMax(dispatchRun(t, hermes.DispatchEDF, 0))
	if prio >= fifo {
		t.Fatalf("priority dispatch did not cut the lc tail: fifo %v vs priority %v", fifo, prio)
	}
	if edf >= fifo {
		t.Fatalf("EDF dispatch did not cut the lc tail: fifo %v vs edf %v", fifo, edf)
	}
}

// TestNativeRejectsRankedDispatch: the Native executor's intake is
// inherently FIFO; configuring a ranked policy there must fail loudly
// at construction instead of silently ignoring classes.
func TestNativeRejectsRankedDispatch(t *testing.T) {
	_, err := hermes.New(
		hermes.WithBackend(hermes.Native),
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(2),
		hermes.WithDispatch(hermes.DispatchPriority),
	)
	if err == nil {
		t.Fatal("Native runtime accepted a ranked dispatch policy")
	}
}

package hermes_test

import (
	"testing"

	"hermes"
)

func TestPublicAPIRun(t *testing.T) {
	done := make([]int, 64)
	r := hermes.Run(hermes.Config{
		Spec:    hermes.SystemB(),
		Workers: 4,
		Mode:    hermes.Unified,
		Seed:    1,
	}, func(c hermes.Ctx) {
		hermes.For(c, 0, len(done), 4, func(c hermes.Ctx, lo, hi int) {
			for i := lo; i < hi; i++ {
				done[i]++
			}
			c.WorkMix(hermes.Cycles(800_000*(hi-lo)), 0.5)
		})
	})
	for i, v := range done {
		if v != 1 {
			t.Fatalf("element %d ran %d times", i, v)
		}
	}
	if r.System != "SystemB" || r.EnergyJ <= 0 || r.Span <= 0 {
		t.Fatalf("bad report: %+v", r)
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() hermes.Report {
		return hermes.Run(hermes.Config{Workers: 8, Mode: hermes.Unified, Seed: 7},
			func(c hermes.Ctx) {
				hermes.For(c, 0, 256, 2, func(c hermes.Ctx, lo, hi int) {
					c.WorkMix(hermes.Cycles(400_000*(hi-lo)), 0.6)
				})
			})
	}
	a, b := run(), run()
	if a.Span != b.Span || a.EnergyJ != b.EnergyJ || a.Steals != b.Steals {
		t.Fatal("public API runs are not deterministic")
	}
}

func TestPublicAPIModesDiffer(t *testing.T) {
	work := func(c hermes.Ctx) {
		hermes.For(c, 0, 512, 2, func(c hermes.Ctx, lo, hi int) {
			c.WorkMix(hermes.Cycles(500_000*(hi-lo)), 0.8)
		})
	}
	base := hermes.Run(hermes.Config{Workers: 8, Mode: hermes.Baseline, Seed: 3}, work)
	herm := hermes.Run(hermes.Config{Workers: 8, Mode: hermes.Unified, Seed: 3}, work)
	if herm.TempoSwitches == 0 || base.TempoSwitches != 0 {
		t.Fatalf("tempo switches: hermes=%d baseline=%d", herm.TempoSwitches, base.TempoSwitches)
	}
	if herm.EnergyJ >= base.EnergyJ {
		t.Fatalf("hermes %.3fJ not below baseline %.3fJ on a memory-bound workload",
			herm.EnergyJ, base.EnergyJ)
	}
}

func TestSeqHelper(t *testing.T) {
	order := 0
	hermes.Run(hermes.Config{Workers: 2, Seed: 1}, func(c hermes.Ctx) {
		hermes.Seq(c,
			func(hermes.Ctx) { order = order*10 + 1 },
			func(hermes.Ctx) { order = order*10 + 2 },
		)
	})
	if order != 12 {
		t.Fatalf("Seq order = %d", order)
	}
}

func TestDefaultFreqs(t *testing.T) {
	a := hermes.DefaultFreqs(hermes.SystemA())
	if len(a) != 2 || a[0] != 2_400_000*hermes.KHz || a[1] != 1_600_000*hermes.KHz {
		t.Fatalf("SystemA defaults = %v", a)
	}
	b := hermes.DefaultFreqs(hermes.SystemB())
	if len(b) != 2 || b[0] != 3_600_000*hermes.KHz || b[1] != 2_700_000*hermes.KHz {
		t.Fatalf("SystemB defaults = %v", b)
	}
}

package hermes

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hermes/internal/cluster"
	"hermes/internal/core"
	"hermes/internal/job"
	"hermes/internal/obs"
)

// Placement describes how a Cluster routes arriving jobs across its
// machines: a named policy family plus parameters. Values are plain
// data (JSON-serialisable), so sweep configs can carry them; build
// them with the Placement* constructors or ParsePlacement.
type Placement = cluster.Policy

// ParsePlacement maps a placement-policy name onto its Placement:
// "random", "jsq", "p2c" (or any "p<k>c"), "gossip" — the one parser
// for every CLI flag.
func ParsePlacement(s string) (Placement, error) { return cluster.Parse(s) }

// PlacementNames lists the canonical policy names ParsePlacement
// accepts, for CLI help text and validation.
func PlacementNames() []string { return cluster.Known() }

// PlacementRandom places each job on a uniformly random machine —
// load-blind, the spreading baseline.
func PlacementRandom() Placement { return Placement{Kind: "random"} }

// PlacementJSQ is join-shortest-queue: each job joins the machine with
// the fewest jobs in its system, ties to the lowest index.
func PlacementJSQ() Placement { return Placement{Kind: "jsq"} }

// PlacementPowerOfChoices is power-of-k-choices backed by the
// cluster's idle-machine heap: while any machine is fully idle the job
// goes to the lowest-indexed idle one (consolidating load so
// higher-indexed machines stay parked in the lowest DVFS tier); once
// the fleet is saturated, k sampled machines compete and the least
// loaded wins. k = 2 is the classic p2c.
func PlacementPowerOfChoices(k int) Placement {
	return Placement{Kind: "pkc", Choices: k}
}

// PlacementGossip keeps placement load-blind (random) and balances via
// gossip instead: every interval, idle machines pull a batch of
// unstarted jobs from the most-loaded peer as seen through queue views
// refreshed at least staleness ago — realistically stale information.
// interval <= 0 selects the default; staleness 0 defaults to the
// interval; batch 0 pulls half the victim's visible backlog.
func PlacementGossip(interval, staleness Time, batch int) Placement {
	p := Placement{Kind: "gossip", Interval: interval, Staleness: staleness, Batch: batch}
	if p.Interval <= 0 {
		p.Interval = cluster.DefaultGossipInterval
	}
	return p
}

// ClusterStats is the fleet-wide aggregate through the cluster's last
// job completion: one MachineStats per machine (all snapshotted at the
// same virtual instant, idle machines' floor draw included), placement
// and migration counts, and the fleet energy total.
type ClusterStats = core.ClusterStats

// Cluster is a multi-machine virtual-time scheduler: n independent
// simulated machines multiplexed inside one discrete-event engine,
// fed by a placement tier. It serves the same job stream API as a
// Runtime (Submit, SubmitTrace) with the same determinism contract —
// a fixed option set, seed and arrival trace reproduce byte-identical
// per-job Reports, per-machine MachineStats and fleet totals — and is
// Sim-only: there is no native multi-machine executor.
//
// Construct with NewCluster(WithMachines(n), WithPlacement(p), plus
// any machine options: WithWorkers, WithMode, WithSpec, WithSeed, …).
type Cluster struct {
	inner    *core.Cluster
	cfg      Config
	machines int
	policy   Placement
	sink     *obs.Async

	mu     sync.Mutex
	nextID int64
}

// NewCluster builds a multi-machine cluster from functional options.
// Machine options (WithWorkers, WithMode, WithSpec, WithSeed, …) apply
// to every machine; WithMachines sets the fleet size (default 1) and
// WithPlacement the routing policy (default power-of-two-choices).
// The Native backend has no fleet — WithBackend(Native) is an error.
func NewCluster(opts ...Option) (*Cluster, error) {
	var s settings
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&s); err != nil {
			return nil, err
		}
	}
	if s.backend != Sim {
		return nil, fmt.Errorf("hermes: NewCluster needs the Sim backend (got %v)", s.backend)
	}
	machines := s.machines
	if machines == 0 {
		machines = 1
	}
	policy := PlacementPowerOfChoices(2)
	if s.placement != nil {
		policy = *s.placement
	}
	policy, err := policy.Validate()
	if err != nil {
		return nil, err
	}
	var sink *obs.Async
	if s.asyncObs != nil {
		if s.cfg.Observer != nil {
			return nil, errors.New("hermes: WithObserver and WithAsyncObserver are mutually exclusive")
		}
		sink = obs.NewAsync(s.asyncObs, s.asyncBuf)
		s.cfg.Observer = sink
	}
	fail := func(err error) (*Cluster, error) {
		if sink != nil {
			sink.Close()
		}
		return nil, err
	}
	interval, staleness, batch := policy.GossipParams()
	ccfg := core.ClusterConfig{
		Machines:        machines,
		Machine:         s.cfg,
		Placement:       policy.Placer(),
		GossipInterval:  interval,
		GossipStaleness: staleness,
		GossipBatch:     batch,
		Faults:          s.faults,
		RetryBudget:     s.retryBudget,
		RetryBackoff:    s.retryBackoff,
	}
	inner, err := core.NewCluster(ccfg)
	if err != nil {
		return fail(err)
	}
	return &Cluster{
		inner:    inner,
		cfg:      inner.Config().Machine,
		machines: machines,
		policy:   policy,
		sink:     sink,
	}, nil
}

// Config returns the validated per-machine configuration every machine
// in the fleet runs with.
func (c *Cluster) Config() Config { return c.cfg }

// Machines returns the fleet size.
func (c *Cluster) Machines() int { return c.machines }

// Placement returns the routing policy the cluster was built with.
func (c *Cluster) Placement() Placement { return c.policy }

// Submit enqueues root as a new job arriving at the engine's current
// virtual time; the placement tier picks its machine at that instant.
// Job.Wait returns the per-job Report. Options stamp per-job
// attributes (WithClass), exactly as on a Runtime; every machine's
// intake applies the cluster's dispatch policy (WithDispatch) to the
// classes it sees.
func (c *Cluster) Submit(ctx context.Context, root Task, opts ...SubmitOption) (*Job, error) {
	var so submitSettings
	for _, o := range opts {
		if o != nil {
			o(&so)
		}
	}
	if err := so.class.Validate(); err != nil {
		return nil, err
	}
	jobs, err := c.submit(ctx, []Arrival{{At: -1, Task: root, Class: so.class}})
	if err != nil {
		return nil, err
	}
	return jobs[0], nil
}

// SubmitTrace schedules a whole batch of jobs at explicit virtual
// arrival times, atomically, and returns their handles in trace order
// — the reproducible open-system entry point, exactly as on a Runtime
// but across the fleet: each arrival is routed by the placement policy
// at its virtual instant. ctx cancels every job in the trace.
func (c *Cluster) SubmitTrace(ctx context.Context, arrivals []Arrival) ([]*Job, error) {
	return c.submit(ctx, arrivals)
}

func (c *Cluster) submit(ctx context.Context, arrivals []Arrival) ([]*Job, error) {
	for _, a := range arrivals {
		if a.Task == nil {
			return nil, ErrNilTask
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := make([]*Job, len(arrivals))
	reqs := make([]core.JobRequest, len(arrivals))
	// Same id discipline as the single-machine simulator backend: ids
	// and the handoff share c.mu so a failed submission rolls back and
	// ids stay gapless.
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range arrivals {
		c.nextID++
		j := job.New(c.nextID)
		jobs[i] = j
		reqs[i] = core.JobRequest{
			ID:        j.ID(),
			At:        a.At,
			Root:      a.Task,
			Class:     a.Class,
			Cancelled: func() bool { return ctx.Err() != nil },
			Done: func(rep core.Report, err error) {
				if errors.Is(err, core.ErrInterrupted) {
					err = ctx.Err()
				}
				j.Finish(rep, err)
			},
		}
	}
	err := c.inner.Submit(reqs...)
	switch {
	case errors.Is(err, core.ErrPoolClosed):
		err = ErrClosed
	case errors.Is(err, core.ErrNilRoot):
		err = ErrNilTask
	}
	if err != nil {
		c.nextID -= int64(len(arrivals))
		return nil, err
	}
	return jobs, nil
}

// Run submits root and waits for its report.
func (c *Cluster) Run(ctx context.Context, root Task) (Report, error) {
	j, err := c.Submit(ctx, root)
	if err != nil {
		return Report{}, err
	}
	return j.Wait()
}

// ClusterStats returns the fleet aggregate through the cluster's last
// job completion — every machine snapshotted at the same virtual
// instant, so energy comparisons across policies charge idle machines
// over equal windows. It blocks until the engine has stopped: call it
// after Close.
func (c *Cluster) ClusterStats() ClusterStats { return c.inner.Stats() }

// Close rejects further submissions, completes every submitted job,
// and stops the engine; with WithAsyncObserver it then drains the sink.
// Safe to call more than once.
func (c *Cluster) Close() error {
	err := c.inner.Close()
	if c.sink != nil {
		c.sink.Close()
	}
	return err
}

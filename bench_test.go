// Package hermes_test hosts the benchmark harness entry points: one
// testing.B benchmark per figure of the paper's evaluation. Each
// benchmark regenerates its figure at CI scale and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=Fig -benchmem
//
// reproduces the whole evaluation. Paper-scale runs use
// cmd/hermes-bench.
package hermes_test

import (
	"strconv"
	"strings"
	"testing"

	"hermes/internal/harness"
)

// figSession is shared across benchmarks in one `go test -bench` run
// so figures that reuse configurations (6↔8, 7↔9, 10–13) hit the
// cache exactly like cmd/hermes-bench.
var figSession = harness.NewSession(harness.Quick())

func benchFigure(b *testing.B, id int) {
	b.ReportAllocs()
	var tab harness.Table
	for i := 0; i < b.N; i++ {
		t, err := figSession.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		tab = t
	}
	// Surface the figure's headline numbers as benchmark metrics.
	reportHeadlines(b, tab)
	if testing.Verbose() {
		b.Log("\n" + tab.String())
	}
}

// reportHeadlines extracts average energy-saving / time-loss / EDP
// values from a figure table and reports them as metrics.
func reportHeadlines(b *testing.B, t harness.Table) {
	var save, loss, edp float64
	var nSave, nLoss, nEDP int
	for _, row := range t.Rows {
		for i, col := range t.Columns {
			if i >= len(row) {
				continue
			}
			v, ok := parsePct(row[i])
			switch {
			case strings.HasPrefix(col, "energy-saving") || strings.HasPrefix(col, "save"):
				if ok {
					save += v
					nSave++
				}
			case strings.HasPrefix(col, "time-loss") || strings.HasPrefix(col, "loss"):
				if ok {
					loss += v
					nLoss++
				}
			case strings.HasPrefix(col, "normalized-EDP"):
				if x, err := parseFloat(row[i]); err == nil {
					edp += x
					nEDP++
				}
			}
		}
	}
	if nSave > 0 {
		b.ReportMetric(save/float64(nSave), "%energy-saved")
	}
	if nLoss > 0 {
		b.ReportMetric(loss/float64(nLoss), "%time-loss")
	}
	if nEDP > 0 {
		b.ReportMetric(edp/float64(nEDP), "EDP-ratio")
	}
}

func parsePct(s string) (float64, bool) {
	if !strings.HasSuffix(s, "%") {
		return 0, false
	}
	v, err := parseFloat(strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%"))
	return v, err == nil
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// Benchmarks, one per figure of the evaluation section.

func BenchmarkFig06_OverallSystemA(b *testing.B)  { benchFigure(b, 6) }
func BenchmarkFig07_OverallSystemB(b *testing.B)  { benchFigure(b, 7) }
func BenchmarkFig08_EDPSystemA(b *testing.B)      { benchFigure(b, 8) }
func BenchmarkFig09_EDPSystemB(b *testing.B)      { benchFigure(b, 9) }
func BenchmarkFig10_StrategyEnergyA(b *testing.B) { benchFigure(b, 10) }
func BenchmarkFig11_StrategyTimeA(b *testing.B)   { benchFigure(b, 11) }
func BenchmarkFig12_StrategyEnergyB(b *testing.B) { benchFigure(b, 12) }
func BenchmarkFig13_StrategyTimeB(b *testing.B)   { benchFigure(b, 13) }
func BenchmarkFig14_FreqSelectionA(b *testing.B)  { benchFigure(b, 14) }
func BenchmarkFig15_FreqSelectionB(b *testing.B)  { benchFigure(b, 15) }
func BenchmarkFig16_NFrequencyA(b *testing.B)     { benchFigure(b, 16) }
func BenchmarkFig17_NFrequencyB(b *testing.B)     { benchFigure(b, 17) }
func BenchmarkFig18_StaticDynamic(b *testing.B)   { benchFigure(b, 18) }
func BenchmarkFig19_TraceKNN16(b *testing.B)      { benchFigure(b, 19) }
func BenchmarkFig20_TraceKNN8(b *testing.B)       { benchFigure(b, 20) }
func BenchmarkFig21_TraceRay16(b *testing.B)      { benchFigure(b, 21) }
func BenchmarkFig22_TraceRay8(b *testing.B)       { benchFigure(b, 22) }

package hermes_test

import (
	"context"
	"fmt"
	"testing"

	"hermes"
)

// TestClusterServesTrace drives the public multi-machine API end to
// end: a fleet behind power-of-two-choices serves an arrival trace,
// every job reports, and the fleet ledger adds up.
func TestClusterServesTrace(t *testing.T) {
	c, err := hermes.NewCluster(
		hermes.WithMachines(4),
		hermes.WithPlacement(hermes.PlacementPowerOfChoices(2)),
		hermes.WithSpec(hermes.SystemB()),
		hermes.WithWorkers(2),
		hermes.WithMode(hermes.Unified),
		hermes.WithSeed(17),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Machines() != 4 {
		t.Fatalf("Machines() = %d, want 4", c.Machines())
	}
	root, _ := leafWorkload(32)
	var arrivals []hermes.Arrival
	for i := 0; i < 6; i++ {
		arrivals = append(arrivals, hermes.Arrival{At: hermes.Time(i) * 80 * hermes.Microsecond, Task: root})
	}
	jobs, err := c.SubmitTrace(context.Background(), arrivals)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		rep, err := j.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i+1, err)
		}
		if rep.Tasks == 0 || rep.EnergyJ <= 0 {
			t.Fatalf("job %d degenerate report: %+v", i+1, rep)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.ClusterStats()
	if st.Completed != int64(len(arrivals)) {
		t.Fatalf("completed %d of %d", st.Completed, len(arrivals))
	}
	if len(st.Machines) != 4 || len(st.Placed) != 4 {
		t.Fatalf("fleet shape wrong: %d machines, %d placed slots", len(st.Machines), len(st.Placed))
	}
	var placed int64
	var energy float64
	for m, ms := range st.Machines {
		if ms.Elapsed != st.Elapsed {
			t.Fatalf("machine %d window %v, fleet %v", m, ms.Elapsed, st.Elapsed)
		}
		placed += st.Placed[m]
		energy += ms.EnergyJ
	}
	if placed != st.Completed {
		t.Fatalf("placed %d jobs but completed %d", placed, st.Completed)
	}
	if energy != st.EnergyJ || st.EnergyJ <= 0 {
		t.Fatalf("fleet energy %g, machine sum %g", st.EnergyJ, energy)
	}
}

// TestClusterDeterministicReports: the public API keeps the simulator
// contract — identical options and trace give identical reports.
func TestClusterDeterministicReports(t *testing.T) {
	run := func() []string {
		c, err := hermes.NewCluster(
			hermes.WithMachines(3),
			hermes.WithPlacement(hermes.PlacementGossip(0, 0, 0)),
			hermes.WithSpec(hermes.SystemB()),
			hermes.WithWorkers(2),
			hermes.WithMode(hermes.Unified),
			hermes.WithSeed(23),
		)
		if err != nil {
			t.Fatal(err)
		}
		root, _ := leafWorkload(24)
		var arrivals []hermes.Arrival
		for i := 0; i < 5; i++ {
			arrivals = append(arrivals, hermes.Arrival{At: hermes.Time(i) * 60 * hermes.Microsecond, Task: root})
		}
		jobs, err := c.SubmitTrace(context.Background(), arrivals)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, j := range jobs {
			rep, err := j.Wait()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%+v", rep))
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d diverged between identical runs:\n%s\nvs\n%s", i+1, a[i], b[i])
		}
	}
}

// TestClusterOptionFencing: cluster-only options are rejected by New,
// NewCluster refuses the Native backend, and bad policies fail fast.
func TestClusterOptionFencing(t *testing.T) {
	if _, err := hermes.New(hermes.WithMachines(4)); err == nil {
		t.Fatal("New accepted WithMachines")
	}
	if _, err := hermes.New(hermes.WithPlacement(hermes.PlacementJSQ())); err == nil {
		t.Fatal("New accepted WithPlacement")
	}
	if _, err := hermes.NewCluster(hermes.WithBackend(hermes.Native)); err == nil {
		t.Fatal("NewCluster accepted the Native backend")
	}
	if _, err := hermes.NewCluster(hermes.WithMachines(0)); err == nil {
		t.Fatal("NewCluster accepted zero machines")
	}
	if _, err := hermes.NewCluster(hermes.WithPlacement(hermes.Placement{Kind: "spray"})); err == nil {
		t.Fatal("NewCluster accepted an unknown policy kind")
	}
	if _, err := hermes.ParsePlacement("spray"); err == nil {
		t.Fatal("ParsePlacement accepted an unknown policy")
	}
	p, err := hermes.ParsePlacement("p3c")
	if err != nil || p.Choices != 3 {
		t.Fatalf("ParsePlacement(p3c) = %+v, %v", p, err)
	}
	// Defaults: a one-machine cluster with the default policy works.
	c, err := hermes.NewCluster(hermes.WithSpec(hermes.SystemB()), hermes.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if c.Machines() != 1 {
		t.Fatalf("default fleet size %d, want 1", c.Machines())
	}
	if got := c.Placement().String(); got != "p2c" {
		t.Fatalf("default policy %q, want p2c", got)
	}
	rep, err := c.Run(context.Background(), func(ctx hermes.Ctx) { ctx.Work(1000) })
	if err != nil || rep.Tasks == 0 {
		t.Fatalf("single-machine cluster run: %+v, %v", rep, err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"hermes"
	"hermes/internal/deque"
	"hermes/internal/hotload"
	"hermes/internal/workload"
)

// The trajectory mode (-trajectory) is the perf snapshot CI records
// across PRs as BENCH_native.json: Native hot-path throughput
// (tasks/sec and allocation rate for spawn/join and fib), deque
// micro-numbers (THE vs Chase–Lev), and joules/request from the fixed
// deterministic virtual-time sim load. Absolute numbers vary with the
// host, so the artifact is for diffing trends commit to commit, not
// for cross-machine comparison.

// trajectorySummary is the JSON artifact schema.
type trajectorySummary struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	Deque      string `json:"deque"`

	SpawnJoin struct {
		Workers     int     `json:"workers"`
		Ops         int     `json:"ops"`
		TasksPerSec float64 `json:"tasks_per_sec"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"native_spawn_join"`

	Fib struct {
		N           int     `json:"n"`
		Cutoff      int     `json:"cutoff"`
		Tasks       int64   `json:"tasks"`
		TasksPerSec float64 `json:"tasks_per_sec"`
	} `json:"native_fib"`

	DequePushPopNs struct {
		THE      float64 `json:"the"`
		ChaseLev float64 `json:"chaselev"`
	} `json:"deque_push_pop_ns"`

	SimLoad loadSummary `json:"sim_load"`
}

// runTrajectory measures the trajectory snapshot. Every workload is
// fixed (sizes, seeds, modes), so two runs differ only by host noise
// — and the sim-load section, being virtual-time, not at all.
func runTrajectory(verbose bool) (trajectorySummary, error) {
	var sum trajectorySummary
	sum.GoMaxProcs = runtime.GOMAXPROCS(0)
	sum.Deque = hermes.DequeChaseLev.String()

	log := func(format string, args ...any) {
		if verbose {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Native spawn/join: one warm job, then a timed job of fixed ops
	// with allocation accounting around it. The workload bodies come
	// through the registry's "spawnjoin" entry — the same
	// internal/hotload loops the go-test benchmarks run — so this JSON
	// and the bench output stay comparable.
	const sjOps = 1_000_000
	r, err := hermes.New(hermes.WithBackend(hermes.Native),
		hermes.WithWorkers(hotload.Workers), hermes.WithMode(hermes.Unified))
	if err != nil {
		return sum, err
	}
	spawnJob := func(ops int) (hermes.Report, error) {
		task, _, err := workload.Spec{Kind: "spawnjoin", N: ops}.Task()
		if err != nil {
			return hermes.Report{}, err
		}
		return r.Run(context.Background(), task)
	}
	if _, err := spawnJob(10_000); err != nil { // warm free lists
		r.Close()
		return sum, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	startSJ := time.Now()
	rep, err := spawnJob(sjOps)
	elapsed := time.Since(startSJ)
	runtime.ReadMemStats(&after)
	if err != nil {
		r.Close()
		return sum, err
	}
	sum.SpawnJoin.Workers = hotload.Workers
	sum.SpawnJoin.Ops = sjOps
	sum.SpawnJoin.TasksPerSec = float64(rep.Tasks) / elapsed.Seconds()
	sum.SpawnJoin.NsPerOp = float64(elapsed.Nanoseconds()) / sjOps
	sum.SpawnJoin.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / sjOps
	sum.SpawnJoin.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / sjOps
	log("spawn/join: %.0f tasks/s, %.1f ns/op, %.2f B/op, %.4f allocs/op",
		sum.SpawnJoin.TasksPerSec, sum.SpawnJoin.NsPerOp,
		sum.SpawnJoin.BytesPerOp, sum.SpawnJoin.AllocsPerOp)

	// Native fib: the fine-grained stress whose task-boundary rate
	// exposes anything left on the hot path. A few jobs back to back
	// smooth out per-job setup noise. The registry's "fibtree" entry
	// (defaults: hotload's N and cutoff) self-checks the result, so a
	// wrong fib value surfaces as a job error.
	const fibJobs = 8
	startFib := time.Now()
	var fibTasks int64
	for i := 0; i < fibJobs; i++ {
		task, _, err := workload.Spec{Kind: "fibtree"}.Task()
		if err != nil {
			r.Close()
			return sum, err
		}
		frep, err := r.Run(context.Background(), task)
		if err != nil {
			r.Close()
			return sum, err
		}
		fibTasks += frep.Tasks
	}
	fibElapsed := time.Since(startFib)
	r.Close()
	sum.Fib.N = hotload.FibN
	sum.Fib.Cutoff = hotload.FibCutoff
	sum.Fib.Tasks = fibTasks
	sum.Fib.TasksPerSec = float64(fibTasks) / fibElapsed.Seconds()
	log("fib(%d)x%d: %d tasks, %.0f tasks/s", hotload.FibN, fibJobs, fibTasks, sum.Fib.TasksPerSec)

	// Deque micro: uncontended owner push/pop cycle per implementation.
	sum.DequePushPopNs.THE = dequePushPopNs(deque.New[*int](64))
	sum.DequePushPopNs.ChaseLev = dequePushPopNs(deque.NewChaseLev[int](64))
	log("deque push/pop: the=%.1f ns, chaselev=%.1f ns",
		sum.DequePushPopNs.THE, sum.DequePushPopNs.ChaseLev)

	// Fixed deterministic sim load: joules/request from the
	// virtual-time engine — byte-stable across runs, so any diff in
	// this section is a real scheduling/energy change.
	sl, err := runLoad(loadOpts{
		RPS:      150,
		Duration: 2 * time.Second,
		Spec:     workload.Spec{Kind: "ticks"},
		Seed:     7,
		Backend:  "sim",
		Mode:     "unified",
		Buffer:   1 << 16,
	})
	if err != nil {
		return sum, err
	}
	sum.SimLoad = sl
	log("sim load: %.4f joules/req, p95 %.2f ms", sl.JoulesPerRequest, sl.P95SojournMS)
	return sum, nil
}

// dequePushPopNs times the owner's push/pop cycle.
func dequePushPopNs(d deque.Queue[*int]) float64 {
	const ops = 2_000_000
	v := 42
	start := time.Now()
	for i := 0; i < ops; i++ {
		d.Push(&v)
		d.Pop()
	}
	return float64(time.Since(start).Nanoseconds()) / ops
}

package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"hermes/internal/sweep"
	"hermes/internal/trace"
	"hermes/internal/workload"
)

func TestPercentileMS(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := percentileMS(sorted, c.p); got != c.want {
			t.Errorf("p%.0f = %gms, want %gms", c.p*100, got, c.want)
		}
	}
	if got := percentileMS(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g, want 0", got)
	}
}

// TestPercentileMSSubMillisecond is the regression pin for the
// truncation bugfix: sub-millisecond sojourns — the norm for simulated
// requests — must keep nanosecond precision instead of collapsing
// through whole microseconds.
func TestPercentileMSSubMillisecond(t *testing.T) {
	sorted := []time.Duration{1500 * time.Nanosecond, 2750 * time.Nanosecond}
	if got := percentileMS(sorted, 0.5); got != 0.0015 {
		t.Errorf("p50 of 1500ns = %gms, want 0.0015ms", got)
	}
	if got := percentileMS(sorted, 1); got != 0.00275 {
		t.Errorf("max of 2750ns = %gms, want 0.00275ms", got)
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := runLoad(loadOpts{RPS: 0, Duration: time.Second}); err == nil {
		t.Error("rps=0 accepted")
	}
	if _, err := runLoad(loadOpts{RPS: 10, Duration: 0}); err == nil {
		t.Error("duration=0 accepted")
	}
	if _, err := runLoad(loadOpts{RPS: 10, Duration: time.Second,
		Spec: workload.Spec{Kind: "nope"}}); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := runLoad(loadOpts{RPS: 10, Duration: time.Second,
		Spec: workload.Spec{Kind: "ticks"}, Trace: "lognormal"}); err == nil {
		t.Error("bad trace accepted")
	} else if !strings.Contains(err.Error(), "poisson") {
		t.Errorf("bad-trace error %q does not list registered processes", err)
	}
}

// TestLoadAndSweepShareOneGenerator is the single-salt pin: the
// wall-clock load generator and the virtual-time sweep draw their
// arrival schedules from the SAME internal/trace process, so for one
// (trace, rps, window, seed) tuple both paths fire the identical
// sequence. Before the registry, each path kept its own copy of the
// PCG salt constant; this test fails if a second generator ever
// reappears.
func TestLoadAndSweepShareOneGenerator(t *testing.T) {
	const (
		rps    = 250.0
		window = time.Second
		seed   = int64(9)
	)
	spec, err := workload.Spec{Kind: "ticks", N: 16}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range trace.Names() {
		proc, err := trace.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		// The wall-clock path: runLoad pre-draws proc.Points and paces
		// them against real time.
		pts, err := proc.Points(seed, rps, window)
		if err != nil {
			t.Fatal(err)
		}
		// The sweep path: TraceArrivals compiles the same schedule into
		// a virtual-time trace.
		arr, err := sweep.TraceArrivals(spec, name, rps, window, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(arr) {
			t.Fatalf("%s: load draws %d arrivals, sweep %d", name, len(pts), len(arr))
		}
		for i := range pts {
			if pts[i].At != arr[i].At {
				t.Fatalf("%s: arrival %d at %v on the load path, %v on the sweep path",
					name, i, pts[i].At, arr[i].At)
			}
		}
	}
}

// TestInprocLoadShortRun drives the full open-loop pipeline against
// an in-process runtime for one short burst and checks the summary is
// self-consistent.
func TestInprocLoadShortRun(t *testing.T) {
	sum, err := runLoad(loadOpts{
		RPS:      200,
		Duration: 500 * time.Millisecond,
		Spec:     workload.Spec{Kind: "ticks", N: 16, Work: 50_000},
		Seed:     42,
		Backend:  "native",
		Mode:     "unified",
		Workers:  4,
		Buffer:   1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Submitted == 0 || sum.Completed != sum.Submitted {
		t.Fatalf("lost requests: %+v", sum)
	}
	if sum.Errors != 0 || sum.Rejected != 0 {
		t.Fatalf("unexpected failures: %+v", sum)
	}
	if sum.P50SojournMS <= 0 || sum.P99SojournMS < sum.P50SojournMS {
		t.Fatalf("implausible sojourn percentiles: %+v", sum)
	}
	if sum.JoulesPerRequest <= 0 {
		t.Fatalf("no energy attributed per request: %+v", sum)
	}
	if sum.DroppedEvents != 0 {
		t.Fatalf("%d events dropped below buffer size", sum.DroppedEvents)
	}
}

// TestVirtualLoadDeterministic is the load generator's acceptance pin:
// -load -backend sim replays the seeded Poisson trace in virtual time,
// two identical runs emit byte-identical JSON summaries, and the jobs
// overlap in virtual time (peak in-flight above 1).
func TestVirtualLoadDeterministic(t *testing.T) {
	opts := loadOpts{
		RPS:      400,
		Duration: 300 * time.Millisecond, // virtual window — no wall-clock pacing
		Spec:     workload.Spec{Kind: "ticks", N: 64, Work: 100_000},
		Seed:     7,
		Backend:  "sim",
		Mode:     "unified",
		Workers:  4,
	}
	spec, err := opts.Spec.Validate()
	if err != nil {
		t.Fatal(err)
	}
	opts.Spec = spec
	a, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runLoad(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeded virtual runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("JSON summaries differ:\n%s\nvs\n%s", ja, jb)
	}
	if a.Target != "in-process/sim-virtual" {
		t.Fatalf("virtual mode not selected: target %q", a.Target)
	}
	if a.Submitted == 0 || a.Completed != a.Submitted || a.Errors != 0 {
		t.Fatalf("virtual run lost requests: %+v", a)
	}
	if a.PeakInflight < 2 {
		t.Fatalf("no virtual-time overlap: peak in-flight %d", a.PeakInflight)
	}
	if a.JoulesPerRequest <= 0 || a.P50SojournMS <= 0 {
		t.Fatalf("degenerate virtual summary: %+v", a)
	}
	if a.ThroughputRPS <= 0 || a.DurationS <= 0 {
		t.Fatalf("virtual summary missing throughput accounting: %+v", a)
	}
	// Summary-field consistency with the wall-clock generator: the
	// virtual path surfaces dropped-event accounting too. The shared
	// point-runner reads per-job reports synchronously, so the honest
	// value is zero — but the field must be populated, not forgotten.
	if a.DroppedEvents != 0 {
		t.Fatalf("virtual path dropped %d events through a synchronous pipeline", a.DroppedEvents)
	}
}

// hermes-bench regenerates the paper's evaluation figures, and doubles
// as an open-loop load generator for the serving scenario.
//
// Figure mode:
//
//	hermes-bench                 # all figures, paper-scale
//	hermes-bench -fig 6          # one figure
//	hermes-bench -quick          # CI-scale (smaller inputs, 2 trials)
//	hermes-bench -csv out/       # also write CSV files
//
// Load mode (-load) fires Poisson arrivals at a target RPS — against
// a hermes-serve endpoint (-url) or an in-process Runtime — and
// reports throughput, p50/p95/p99 sojourn time and joules/request:
//
//	hermes-bench -load -rps 100 -duration 10s -workload ticks
//	hermes-bench -load -rps 50 -duration 30s -url http://localhost:8080 -json load.json
//
// With -backend sim (and no -url) the seeded trace is replayed in
// VIRTUAL time inside the deterministic discrete-event engine: jobs
// genuinely contend for the simulated machine, the sojourn
// percentiles are virtual-time quantities, there is no wall-clock
// pacing at all, and two runs with the same seed emit byte-identical
// JSON summaries:
//
//	hermes-bench -load -backend sim -rps 150 -duration 2s -seed 7 -json sim-load.json
//
// Sweep mode (-sweep) generalizes the virtual-time replay into the
// full open-system evaluation: a (workload × tempo-mode × rate) grid,
// each point a seeded Poisson trace replayed deterministically on the
// Sim pool, emitting per-mode curves of sojourn percentiles, queueing
// delay, joules/request, average power, steals/request and DVFS-tier
// residency vs offered load, with knee detection (first rate whose p99
// exceeds -kneefactor × the unloaded p50). Two runs with the same
// flags emit byte-identical JSON — the artifact CI diffs and uploads:
//
//	hermes-bench -sweep -workload ticks -rates 50,100,200,400 \
//	    -modes baseline,unified -duration 500ms -seed 7 -workers 4 \
//	    -json SWEEP_sim.json -csv out/
//
// Trajectory mode (-trajectory) snapshots the Native hot path for the
// cross-PR perf record: spawn/join and fib tasks/sec with allocation
// rates, deque micro-numbers (THE vs Chase–Lev), and joules/request
// from the fixed deterministic sim load. CI uploads the JSON as
// BENCH_native.json so future PRs can diff it:
//
//	hermes-bench -trajectory -json BENCH_native.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hermes/internal/fault"
	"hermes/internal/harness"
	"hermes/internal/sweep"
	"hermes/internal/trace"
	"hermes/internal/units"
	"hermes/internal/workload"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (0 = all)")
		quick   = flag.Bool("quick", false, "CI-scale runs: smaller inputs, fewer trials")
		trials  = flag.Int("trials", 0, "override trials per configuration")
		scale   = flag.Float64("scale", 0, "override input-size scale factor")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files")
		verbose = flag.Bool("v", false, "log each run")

		load       = flag.Bool("load", false, "run the open-loop Poisson load generator instead of figures")
		trajectory = flag.Bool("trajectory", false, "run the hot-path perf-trajectory snapshot (BENCH_native.json)")
		sweepMode  = flag.Bool("sweep", false, "run the open-system (mode × rate) sweep on the Sim backend")
		rates      = flag.String("rates", "25,50,100,200", "sweep: comma-separated offered-load grid, requests/second")
		modes      = flag.String("modes", "baseline,unified", "sweep: comma-separated tempo modes")
		machines   = flag.String("machines", "", "sweep: comma-separated fleet sizes; non-empty selects the cluster sweep (one -modes entry)")
		placement  = flag.String("placement", "p2c", "cluster sweep: comma-separated placement policies (random, jsq, p2c/p<k>c, gossip)")
		faults     = flag.String("faults", "",
			"cluster sweep: comma-separated fault plans ("+strings.Join(fault.Names(), ", ")+"; empty = fault-free)")
		kneeFactor = flag.Float64("kneefactor", sweep.DefaultKneeFactor, "sweep: knee threshold as a multiple of the unloaded p50 sojourn")
		dispatch   = flag.String("dispatch", "",
			"load/sweep: intake dispatch policy (fifo, priority, edf; empty = fifo)")
		quantum = flag.Duration("quantum", 0,
			"load/sweep: preemption quantum under ranked dispatch (0 = jobs run to completion)")
		rps      = flag.Float64("rps", 100, "load: target arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "load: arrival window")
		url      = flag.String("url", "", "load: hermes-serve base URL (empty = in-process Runtime)")
		kind     = flag.String("workload", "ticks",
			"load/sweep: workload kind ("+strings.Join(workload.Names(), ", ")+")")
		traceName = flag.String("trace", "",
			"load/sweep: arrival process ("+strings.Join(trace.Names(), ", ")+"; empty = poisson)")
		n        = flag.Int("n", 0, "load: workload size (0 = workload default)")
		grain    = flag.Int("grain", 0, "load: task granularity (0 = workload default)")
		work     = flag.Int64("work", 0, "load: cycles per unit (0 = workload default)")
		memfrac  = flag.Float64("memfrac", 0, "load: memory-bound fraction of work")
		backend  = flag.String("backend", "native", "load in-process: backend (native or sim)")
		mode     = flag.String("mode", "unified", "load in-process: tempo mode")
		workers  = flag.Int("workers", 0, "load in-process: worker count (0 = default)")
		buffer   = flag.Int("buffer", 1<<16, "load in-process: async observer buffer size")
		seed     = flag.Int64("seed", 1, "load: arrival-process seed")
		jsonPath = flag.String("json", "", "load: write the JSON summary to this path")
	)
	flag.Parse()

	if *trajectory {
		sum, err := runTrajectory(*verbose)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trajectory: spawn/join %.0f tasks/s (%.2f B/op, %.4f allocs/op), "+
			"fib %.0f tasks/s, deque push/pop the=%.1fns chaselev=%.1fns, sim %.4f J/req\n",
			sum.SpawnJoin.TasksPerSec, sum.SpawnJoin.BytesPerOp, sum.SpawnJoin.AllocsPerOp,
			sum.Fib.TasksPerSec, sum.DequePushPopNs.THE, sum.DequePushPopNs.ChaseLev,
			sum.SimLoad.JoulesPerRequest)
		if err := writeJSON(sum, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *sweepMode {
		err := runSweep(sweepOpts{
			Spec: workload.Spec{
				Kind: *kind, N: *n, Grain: *grain,
				Work: units.Cycles(*work), MemFrac: *memfrac,
			},
			Trace:          *traceName,
			Rates:          *rates,
			Modes:          *modes,
			Machines:       *machines,
			Placement:      *placement,
			Faults:         *faults,
			Window:         *duration,
			Seed:           *seed,
			Trials:         *trials,
			Workers:        *workers,
			KneeFactor:     *kneeFactor,
			Dispatch:       *dispatch,
			PreemptQuantum: *quantum,
			JSONPath:       *jsonPath,
			CSVDir:         *csvDir,
			Verbose:        *verbose,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *load {
		sum, err := runLoad(loadOpts{
			URL:      *url,
			RPS:      *rps,
			Duration: *duration,
			Spec: workload.Spec{
				Kind: *kind, N: *n, Grain: *grain,
				Work: units.Cycles(*work), MemFrac: *memfrac,
			},
			Trace:          *traceName,
			Seed:           *seed,
			Backend:        *backend,
			Mode:           *mode,
			Workers:        *workers,
			Buffer:         *buffer,
			Dispatch:       *dispatch,
			PreemptQuantum: *quantum,
			Verbose:        *verbose,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		if err := writeSummary(sum, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	opts := harness.Full()
	if *quick {
		opts = harness.Quick()
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	opts.Verbose = *verbose
	s := harness.NewSession(opts)
	s.Log = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

	ids := harness.Figures()
	if *fig != 0 {
		ids = []int{*fig}
	}
	for _, id := range ids {
		start := time.Now()
		t, err := s.Figure(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("figure%02d.csv", id))
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

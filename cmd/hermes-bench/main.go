// hermes-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	hermes-bench                 # all figures, paper-scale
//	hermes-bench -fig 6          # one figure
//	hermes-bench -quick          # CI-scale (smaller inputs, 2 trials)
//	hermes-bench -csv out/       # also write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hermes/internal/harness"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure number to regenerate (0 = all)")
		quick   = flag.Bool("quick", false, "CI-scale runs: smaller inputs, fewer trials")
		trials  = flag.Int("trials", 0, "override trials per configuration")
		scale   = flag.Float64("scale", 0, "override input-size scale factor")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files")
		verbose = flag.Bool("v", false, "log each run")
	)
	flag.Parse()

	opts := harness.Full()
	if *quick {
		opts = harness.Quick()
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	opts.Verbose = *verbose
	s := harness.NewSession(opts)
	s.Log = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

	ids := harness.Figures()
	if *fig != 0 {
		ids = []int{*fig}
	}
	for _, id := range ids {
		start := time.Now()
		t, err := s.Figure(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("figure%02d.csv", id))
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "hermes-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

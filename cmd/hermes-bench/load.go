package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hermes"
	"hermes/internal/metrics"
	"hermes/internal/sweep"
	"hermes/internal/trace"
	"hermes/internal/units"
	"hermes/internal/workload"
)

// loadOpts parameterizes one open-loop load-generation run.
type loadOpts struct {
	// URL targets a running hermes-serve instance; empty runs against
	// an in-process Runtime instead.
	URL      string
	RPS      float64
	Duration time.Duration
	Spec     workload.Spec
	// Trace names the arrival process from the internal/trace registry
	// ("" = poisson).
	Trace string
	Seed  int64

	// In-process runtime shape (ignored when URL is set).
	Backend string
	Mode    string
	Workers int
	Buffer  int
	// Dispatch names the intake dispatch policy ("" = fifo) and
	// PreemptQuantum the ranked-dispatch preemption quantum. In-process
	// only: a remote hermes-serve configures its own intake.
	Dispatch       string
	PreemptQuantum time.Duration

	JSONPath string
	Verbose  bool
}

// loadSummary is the run's JSON result — the artifact CI records for
// the perf trajectory.
type loadSummary struct {
	Target   string        `json:"target"`
	Workload workload.Spec `json:"workload"`
	// Trace is the arrival process, normalized so the default poisson
	// process stays "" (byte-stable poisson-era artifacts).
	Trace string `json:"trace,omitempty"`
	// Dispatch is the intake policy, normalized so the default fifo
	// stays "" (byte-stable pre-class artifacts).
	Dispatch  string  `json:"dispatch,omitempty"`
	RPSTarget float64 `json:"rps_target"`
	DurationS float64 `json:"duration_s"`
	Submitted int64   `json:"submitted"`
	Completed int64   `json:"completed"`
	// Rejected counts requests that ultimately failed admission: every
	// 429 retry was consumed without an accepted submission. Retries
	// counts individual re-submissions after a 429 (several may serve
	// one eventually-accepted request); GaveUp counts requests whose
	// retry budget ran dry — always equal to Rejected on an HTTP
	// target, kept separate so the accounting is explicit.
	Rejected int64 `json:"rejected"`
	Retries  int64 `json:"retries,omitempty"`
	GaveUp   int64 `json:"gave_up,omitempty"`
	// Pruned counts jobs that completed but whose status record was
	// evicted from the server's retention window before the client
	// observed it: done, but with no sojourn sample. Included in
	// Completed.
	Pruned           int64   `json:"pruned"`
	Errors           int64   `json:"errors"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	P50SojournMS     float64 `json:"p50_sojourn_ms"`
	P95SojournMS     float64 `json:"p95_sojourn_ms"`
	P99SojournMS     float64 `json:"p99_sojourn_ms"`
	MaxSojournMS     float64 `json:"max_sojourn_ms"`
	PeakInflight     int64   `json:"peak_inflight"`
	JoulesPerRequest float64 `json:"joules_per_request"`
	DroppedEvents    uint64  `json:"dropped_events"`
	// Classes breaks the run down per service class when the trace is
	// mixed (any arrival carried a non-zero class); nil otherwise, so
	// single-class summaries keep their pre-class bytes. The flat
	// totals above always cover every class.
	Classes []classSummary `json:"classes,omitempty"`
}

// classSummary is one service class's slice of a mixed-trace load run.
type classSummary struct {
	Tenant    string `json:"tenant"`
	Priority  int    `json:"priority"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Rejected  int64  `json:"rejected,omitempty"`
	Retries   int64  `json:"retries,omitempty"`
	Errors    int64  `json:"errors"`

	P50SojournMS float64 `json:"p50_sojourn_ms"`
	P95SojournMS float64 `json:"p95_sojourn_ms"`
	P99SojournMS float64 `json:"p99_sojourn_ms"`

	// SLOTargetMS echoes the class's sojourn target; SLOAttainment is
	// the fraction of completed jobs that met it. Both absent for
	// classes without a target.
	SLOTargetMS   *float64 `json:"slo_target_ms,omitempty"`
	SLOAttainment *float64 `json:"slo_attainment,omitempty"`

	// JoulesPerRequest is per-class attributed energy; 0 (omitted)
	// against an HTTP target, which only exposes the aggregate.
	JoulesPerRequest float64 `json:"joules_per_request,omitempty"`
}

func (s loadSummary) String() string {
	out := fmt.Sprintf(
		"load %s %s: rps=%.0f dur=%.1fs submitted=%d completed=%d (pruned %d) rejected=%d retries=%d errors=%d\n"+
			"  throughput=%.1f req/s sojourn p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n"+
			"  peak-inflight=%d joules/req=%.4f dropped-events=%d",
		s.Target, s.Workload, s.RPSTarget, s.DurationS, s.Submitted, s.Completed, s.Pruned,
		s.Rejected, s.Retries, s.Errors,
		s.ThroughputRPS, s.P50SojournMS, s.P95SojournMS, s.P99SojournMS, s.MaxSojournMS,
		s.PeakInflight, s.JoulesPerRequest, s.DroppedEvents)
	for _, c := range s.Classes {
		out += fmt.Sprintf(
			"\n  class tenant=%q priority=%d: submitted=%d completed=%d rejected=%d retries=%d errors=%d "+
				"p50=%.2fms p95=%.2fms p99=%.2fms",
			c.Tenant, c.Priority, c.Submitted, c.Completed, c.Rejected, c.Retries, c.Errors,
			c.P50SojournMS, c.P95SojournMS, c.P99SojournMS)
		if c.SLOAttainment != nil {
			out += fmt.Sprintf(" slo=%.1f%%", *c.SLOAttainment*100)
		}
	}
	return out
}

// outcome classifies one request's fate.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeRejected
	// outcomePruned: the job completed but the server evicted its
	// record before we saw the final status — done, sojourn unknown.
	outcomePruned
)

// target abstracts where requests go: a remote hermes-serve or an
// in-process Runtime. do blocks from arrival to completion, carrying
// the request's service class to the target, and returns the 429
// retries this request consumed plus its attributed joules where the
// target knows them per job (in-process), else 0 with energy
// recovered from metrics.
type target interface {
	do(spec workload.Spec, class hermes.Class) (out outcome, retries int64, joules float64, err error)
	// finish returns (joules attributed to completed requests, dropped events).
	finish() (float64, uint64, error)
	// stats returns (429 retry attempts, requests whose retry budget
	// ran dry). Zero for targets that never retry (in-process).
	stats() (retries, gaveUp int64)
	name() string
}

// runLoad drives an open-loop seeded arrival process at opts.RPS for
// opts.Duration: arrivals are scheduled independently of completions
// (sojourn time includes queueing delay, the open-system metric), and
// every request is tracked to completion even past the arrival window.
// The schedule comes from the internal/trace registry — the SAME
// generator the sweep replays in virtual time — so `-load` and
// `-sweep` fire identical arrival sequences for identical (trace,
// rps, window, seed).
func runLoad(opts loadOpts) (loadSummary, error) {
	if opts.RPS <= 0 {
		return loadSummary{}, fmt.Errorf("load: rps must be positive, got %g", opts.RPS)
	}
	if opts.Duration <= 0 {
		return loadSummary{}, fmt.Errorf("load: duration must be positive, got %v", opts.Duration)
	}
	spec, err := opts.Spec.Validate()
	if err != nil {
		return loadSummary{}, err
	}
	opts.Spec = spec
	proc, err := trace.Resolve(opts.Trace)
	if err != nil {
		return loadSummary{}, err
	}
	dispatch, err := hermes.ParseDispatch(opts.Dispatch)
	if err != nil {
		return loadSummary{}, err
	}
	if opts.PreemptQuantum < 0 {
		return loadSummary{}, fmt.Errorf("load: preempt quantum must be non-negative, got %v", opts.PreemptQuantum)
	}
	if opts.URL != "" && (dispatch != hermes.DispatchFIFO || opts.PreemptQuantum > 0) {
		return loadSummary{}, fmt.Errorf("load: -dispatch/-quantum shape the in-process runtime; a remote hermes-serve configures its own intake")
	}

	if opts.URL == "" && opts.Backend == "sim" {
		// The simulator multiplexes jobs in virtual time: replay the
		// whole arrival trace deterministically instead of racing the
		// wall clock.
		return runVirtualLoad(opts)
	}

	// Pre-draw the whole seeded schedule, then pace it against the
	// wall clock: each point carries its arrival offset and service
	// size.
	points, err := proc.Points(opts.Seed, opts.RPS, opts.Duration)
	if err != nil {
		return loadSummary{}, err
	}

	var tgt target
	if opts.URL != "" {
		tgt = &httpTarget{
			base:   opts.URL,
			client: &http.Client{Timeout: 60 * time.Second},
			rng:    rand.New(rand.NewSource(opts.Seed)),
		}
	} else {
		t, err := newInprocTarget(opts)
		if err != nil {
			return loadSummary{}, err
		}
		tgt = t
	}

	// A mixed trace (any arrival with a non-zero class) gets the
	// per-class breakdown; single-class traces skip it so their
	// summaries keep pre-class bytes.
	mixed := false
	for _, pt := range points {
		if !pt.Class.IsZero() {
			mixed = true
			break
		}
	}

	var (
		wg                  sync.WaitGroup
		mu                  sync.Mutex
		sojourns            []time.Duration
		classes             map[hermes.Class]*wallClassAcc
		submitted, rejected atomic.Int64
		pruned              atomic.Int64
		errs                atomic.Int64
		inflight, peak      atomic.Int64
	)
	if mixed {
		classes = make(map[hermes.Class]*wallClassAcc)
	}
	// classOf returns c's accumulator, creating it on first use.
	// Callers hold mu.
	classOf := func(c hermes.Class) *wallClassAcc {
		acc := classes[c]
		if acc == nil {
			acc = &wallClassAcc{}
			classes[c] = acc
		}
		return acc
	}
	start := time.Now()
	for _, pt := range points {
		due := start.Add(time.Duration(int64(pt.At / units.Nanosecond)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		spec := opts.Spec.Sized(pt.Size)
		class := pt.Class
		submitted.Add(1)
		if mixed {
			mu.Lock()
			classOf(class).submitted++
			mu.Unlock()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n := inflight.Add(1); n > peak.Load() {
				peak.Store(n) // racy max: diagnostics, not accounting
			}
			defer inflight.Add(-1)
			t0 := time.Now()
			out, retries, joules, err := tgt.do(spec, class)
			var acc *wallClassAcc
			if mixed {
				mu.Lock()
				acc = classOf(class)
				acc.retries += retries
				acc.joules += joules
				mu.Unlock()
			}
			switch {
			case err != nil:
				errs.Add(1)
				if acc != nil {
					mu.Lock()
					acc.errors++
					mu.Unlock()
				}
				if opts.Verbose {
					fmt.Fprintf(os.Stderr, "load: request error: %v\n", err)
				}
			case out == outcomeRejected:
				rejected.Add(1)
				if acc != nil {
					mu.Lock()
					acc.rejected++
					mu.Unlock()
				}
			case out == outcomePruned:
				pruned.Add(1)
				if acc != nil {
					mu.Lock()
					acc.pruned++
					mu.Unlock()
				}
			default:
				d := time.Since(t0)
				mu.Lock()
				sojourns = append(sojourns, d)
				if acc != nil {
					acc.sojourns = append(acc.sojourns, d)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	joules, dropped, err := tgt.finish()
	if err != nil {
		return loadSummary{}, err
	}
	retries, gaveUp := tgt.stats()

	sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
	// Pruned jobs completed too — the server just evicted the record
	// before we read it — so they count toward completion and
	// throughput, while the sojourn percentiles cover measured jobs.
	completed := int64(len(sojourns)) + pruned.Load()
	sum := loadSummary{
		Target:        tgt.name(),
		Workload:      opts.Spec,
		Trace:         trace.Canonical(proc.Name),
		Dispatch:      sweep.CanonicalDispatch(dispatch),
		RPSTarget:     opts.RPS,
		DurationS:     elapsed.Seconds(),
		Submitted:     submitted.Load(),
		Completed:     completed,
		Rejected:      rejected.Load(),
		Retries:       retries,
		GaveUp:        gaveUp,
		Pruned:        pruned.Load(),
		Errors:        errs.Load(),
		ThroughputRPS: float64(completed) / elapsed.Seconds(),
		P50SojournMS:  percentileMS(sojourns, 0.50),
		P95SojournMS:  percentileMS(sojourns, 0.95),
		P99SojournMS:  percentileMS(sojourns, 0.99),
		MaxSojournMS:  percentileMS(sojourns, 1),
		PeakInflight:  peak.Load(),
		DroppedEvents: dropped,
	}
	if completed > 0 {
		sum.JoulesPerRequest = joules / float64(completed)
	}
	sum.Classes = classSummaries(classes)
	return sum, nil
}

// wallClassAcc accumulates one service class's wall-clock run.
type wallClassAcc struct {
	submitted, rejected int64
	pruned, errors      int64
	retries             int64
	joules              float64
	sojourns            []time.Duration
}

// classSummaries folds the per-class accumulators into deterministic
// summary rows: priority descending (latency-critical first), then
// tenant, deadline, SLO target ascending — the same order the sweep's
// per-class artifact uses. Nil in, nil out.
func classSummaries(classes map[hermes.Class]*wallClassAcc) []classSummary {
	if len(classes) == 0 {
		return nil
	}
	order := make([]hermes.Class, 0, len(classes))
	for c := range classes {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		return a.SLOTarget < b.SLOTarget
	})
	rows := make([]classSummary, 0, len(order))
	for _, c := range order {
		acc := classes[c]
		sort.Slice(acc.sojourns, func(i, j int) bool { return acc.sojourns[i] < acc.sojourns[j] })
		completed := int64(len(acc.sojourns)) + acc.pruned
		row := classSummary{
			Tenant:       c.Tenant,
			Priority:     c.Priority,
			Submitted:    acc.submitted,
			Completed:    completed,
			Rejected:     acc.rejected,
			Retries:      acc.retries,
			Errors:       acc.errors,
			P50SojournMS: percentileMS(acc.sojourns, 0.50),
			P95SojournMS: percentileMS(acc.sojourns, 0.95),
			P99SojournMS: percentileMS(acc.sojourns, 0.99),
		}
		if c.SLOTarget > 0 {
			target := time.Duration(int64(c.SLOTarget / units.Nanosecond))
			met := 0
			for _, d := range acc.sojourns {
				if d <= target {
					met++
				}
			}
			targetMS := float64(target.Nanoseconds()) / 1e6
			row.SLOTargetMS = &targetMS
			if n := len(acc.sojourns); n > 0 {
				att := float64(met) / float64(n)
				row.SLOAttainment = &att
			}
		}
		if completed > 0 {
			row.JoulesPerRequest = acc.joules / float64(completed)
		}
		rows = append(rows, row)
	}
	return rows
}

// percentileMS returns the p-quantile (0..1) of sorted durations in
// milliseconds, by the nearest-rank method. It converts from
// nanoseconds so sub-millisecond sojourns (routine for simulated
// requests) keep their precision instead of truncating through whole
// microseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// --- in-process target ------------------------------------------------

// inprocTarget submits straight into a Runtime built for this run,
// with the same async-observer/metrics pipeline hermes-serve deploys.
type inprocTarget struct {
	rt   *hermes.Runtime
	reg  *metrics.Registry
	mu   sync.Mutex
	sumJ float64
}

// parseLoadMode maps the -mode flag onto a tempo mode ("" selects
// Unified for programmatic zero-value opts), rejecting typos instead
// of silently running Unified.
func parseLoadMode(s string) (hermes.Mode, error) {
	if s == "" {
		return hermes.Unified, nil
	}
	return hermes.ParseMode(s)
}

func newInprocTarget(opts loadOpts) (*inprocTarget, error) {
	be := hermes.Native
	if opts.Backend == "sim" {
		be = hermes.Sim
	}
	mode, err := parseLoadMode(opts.Mode)
	if err != nil {
		return nil, err
	}
	dispatch, err := hermes.ParseDispatch(opts.Dispatch)
	if err != nil {
		return nil, err
	}
	reg := metrics.New()
	hopts := []hermes.Option{
		hermes.WithBackend(be),
		hermes.WithMode(mode),
		hermes.WithAsyncObserver(reg, opts.Buffer),
	}
	if opts.Workers > 0 {
		hopts = append(hopts, hermes.WithWorkers(opts.Workers))
	}
	if dispatch != hermes.DispatchFIFO {
		hopts = append(hopts, hermes.WithDispatch(dispatch))
	}
	if opts.PreemptQuantum > 0 {
		hopts = append(hopts, hermes.WithPreemptQuantum(units.Time(opts.PreemptQuantum)*units.Nanosecond))
	}
	rt, err := hermes.New(hopts...)
	if err != nil {
		return nil, err
	}
	reg.SetDropSource(rt.EventsDropped)
	return &inprocTarget{rt: rt, reg: reg}, nil
}

func (t *inprocTarget) name() string { return "in-process/" + t.rt.Backend().String() }

func (t *inprocTarget) do(spec workload.Spec, class hermes.Class) (outcome, int64, float64, error) {
	task, _, err := spec.Task()
	if err != nil {
		return outcomeOK, 0, 0, err
	}
	j, err := t.rt.Submit(context.Background(), task, hermes.WithClass(class))
	if err != nil {
		return outcomeOK, 0, 0, err
	}
	rep, err := j.Wait()
	if err != nil {
		return outcomeOK, 0, 0, err
	}
	t.mu.Lock()
	t.sumJ += rep.EnergyJ
	t.mu.Unlock()
	return outcomeOK, 0, rep.EnergyJ, nil
}

func (t *inprocTarget) finish() (float64, uint64, error) {
	err := t.rt.Close()
	t.mu.Lock()
	j := t.sumJ
	t.mu.Unlock()
	return j, t.rt.EventsDropped(), err
}

// stats: the in-process target has no admission tier, so nothing
// retries and nothing gives up.
func (t *inprocTarget) stats() (int64, int64) { return 0, 0 }

// --- HTTP target ------------------------------------------------------

// httpTarget drives a remote hermes-serve: POST the job, poll its
// status to completion, and recover energy per request from the
// /metrics delta at the end of the run.
type httpTarget struct {
	base    string
	client  *http.Client
	baseJ   float64
	baseSet bool
	// rng jitters the 429-retry backoff; guarded by mu (request
	// goroutines share it).
	rng *rand.Rand
	mu  sync.Mutex

	retries atomic.Int64 // re-submissions after a 429
	gaveUp  atomic.Int64 // requests whose retry budget ran dry
}

// 429-retry policy: an overloaded server sheds load transiently, so a
// rejected submission re-tries a few times with capped, seeded,
// jittered exponential backoff before the request counts as rejected.
const (
	submitAttempts   = 5
	retryBackoffBase = 50 * time.Millisecond
	retryBackoffCap  = 2 * time.Second
)

// retryDelay draws the pre-retry sleep for a zero-based attempt
// number: base·2^attempt, jittered by ×[0.5,1.5) to de-synchronize
// concurrent retriers, with the server's Retry-After (whole seconds)
// honored as a floor. Both are capped at retryBackoffCap.
func (t *httpTarget) retryDelay(attempt int, retryAfter string) time.Duration {
	d := retryBackoffBase << attempt
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	t.mu.Lock()
	jitter := 0.5 + t.rng.Float64()
	t.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		if ra := time.Duration(secs) * time.Second; ra > d {
			d = ra
		}
	}
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	return d
}

func (t *httpTarget) name() string { return t.base }

// jobEnergyTotal scrapes hermes_job_energy_joules_total.
func (t *httpTarget) jobEnergyTotal() (float64, uint64, error) {
	resp, err := t.client.Get(t.base + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	vals := metrics.ParseText(string(body))
	return vals["hermes_job_energy_joules_total"], uint64(vals["hermes_observer_dropped_events_total"]), nil
}

// prime records the pre-run energy baseline on first use.
func (t *httpTarget) prime() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.baseSet {
		return nil
	}
	j, _, err := t.jobEnergyTotal()
	if err != nil {
		return err
	}
	t.baseJ, t.baseSet = j, true
	return nil
}

// statusWait is the long-poll window requested per GET /jobs/{id}:
// the server holds the request until completion or this much time
// passes, so the measured sojourn carries none of the old fixed
// 2 ms poll-interval bias and idle polling disappears.
const statusWait = 5 * time.Second

func (t *httpTarget) do(spec workload.Spec, class hermes.Class) (outcome, int64, float64, error) {
	if err := t.prime(); err != nil {
		return outcomeOK, 0, 0, err
	}
	// The submit body embeds the spec so unclassed requests serialize
	// exactly as the pre-class client did; tenant and priority ride
	// along only when set.
	body, err := json.Marshal(struct {
		workload.Spec
		Tenant   string `json:"tenant,omitempty"`
		Priority int    `json:"priority,omitempty"`
	}{Spec: spec, Tenant: class.Tenant, Priority: class.Priority})
	if err != nil {
		return outcomeOK, 0, 0, err
	}
	var retried int64
	for attempt := 0; ; attempt++ {
		resp, err := t.client.Post(t.base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return outcomeOK, retried, 0, err
		}
		rb, _ := io.ReadAll(resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if attempt == submitAttempts-1 {
				t.gaveUp.Add(1)
				return outcomeRejected, retried, 0, nil
			}
			t.retries.Add(1)
			retried++
			time.Sleep(t.retryDelay(attempt, retryAfter))
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return outcomeOK, retried, 0, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(rb))
		}
		var acc struct {
			ID int64 `json:"id"`
		}
		if err := json.Unmarshal(rb, &acc); err != nil {
			return outcomeOK, retried, 0, err
		}
		out, err := t.poll(acc.ID)
		return out, retried, 0, err
	}
}

// poll watches one job to completion, preferring the server's
// long-poll (?wait=). A server predating the wait parameter ignores
// it and answers immediately; when that happens (a "running" response
// arriving much faster than the requested window) poll degrades to
// client-side sleeps with exponential backoff instead of a tight
// 2 ms loop.
func (t *httpTarget) poll(id int64) (outcome, error) {
	backoff := 2 * time.Millisecond
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		reqStart := time.Now()
		resp, err := t.client.Get(fmt.Sprintf("%s/jobs/%d?wait=%s", t.base, id, statusWait))
		if err != nil {
			return outcomeOK, err
		}
		sb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		decodable := json.Unmarshal(sb, &st) == nil
		if resp.StatusCode == http.StatusGone && decodable && st.Status == "pruned" {
			// Completed but evicted from the server's retention window:
			// done, not failed.
			return outcomePruned, nil
		}
		if resp.StatusCode != http.StatusOK {
			return outcomeOK, fmt.Errorf("status: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(sb))
		}
		if !decodable {
			return outcomeOK, fmt.Errorf("status: bad body: %s", bytes.TrimSpace(sb))
		}
		switch st.Status {
		case "done":
			return outcomeOK, nil
		case "failed":
			return outcomeOK, fmt.Errorf("job %d failed: %s", id, st.Error)
		}
		if time.Since(reqStart) < statusWait/2 {
			// The server answered "running" without holding the
			// long-poll: fall back to client-side pacing.
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
		}
	}
	return outcomeOK, fmt.Errorf("job %d: poll timeout", id)
}

func (t *httpTarget) stats() (int64, int64) { return t.retries.Load(), t.gaveUp.Load() }

func (t *httpTarget) finish() (float64, uint64, error) {
	j, dropped, err := t.jobEnergyTotal()
	if err != nil {
		return 0, 0, err
	}
	t.mu.Lock()
	base := t.baseJ
	t.mu.Unlock()
	return j - base, dropped, nil
}

// writeSummary prints the summary and optionally writes it as JSON.
func writeSummary(sum loadSummary, jsonPath string) error {
	fmt.Println(sum.String())
	return writeJSON(sum, jsonPath)
}

// writeJSON writes any summary value as indented JSON, if a path is
// given.
func writeJSON(sum any, jsonPath string) error {
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hermes/internal/sweep"
	"hermes/internal/synth"
)

// sweepOpts parameterizes one -sweep invocation.
type sweepOpts struct {
	Spec       synth.Spec
	Rates      string // comma-separated offered RPS grid
	Modes      string // comma-separated tempo modes
	Window     time.Duration
	Seed       int64
	Trials     int
	Workers    int
	KneeFactor float64
	JSONPath   string
	CSVDir     string
	Verbose    bool
}

// splitCommaList splits a comma-separated flag value, trimming blanks.
func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseRates parses the -rates grid.
func parseRates(list string) ([]float64, error) {
	var rates []float64
	for _, s := range splitCommaList(list) {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad rate %q: %v", s, err)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("sweep: -rates is empty")
	}
	return rates, nil
}

// runSweep drives the open-system sweep from the CLI and writes the
// JSON (and optionally CSV) artifacts.
func runSweep(opts sweepOpts) error {
	rates, err := parseRates(opts.Rates)
	if err != nil {
		return err
	}
	modes, err := parseLoadModes(opts.Modes)
	if err != nil {
		return err
	}
	if len(modes) == 0 {
		return fmt.Errorf("sweep: -modes is empty")
	}
	cfg := sweep.Config{
		Workload:   opts.Spec,
		Modes:      modes,
		RatesRPS:   rates,
		Window:     opts.Window,
		Seed:       opts.Seed,
		Trials:     opts.Trials,
		Workers:    opts.Workers,
		KneeFactor: opts.KneeFactor,
	}
	if opts.Verbose {
		cfg.Log = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	res, err := sweep.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if err := writeJSON(res, opts.JSONPath); err != nil {
		return err
	}
	if opts.CSVDir != "" {
		if err := os.MkdirAll(opts.CSVDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(opts.CSVDir, fmt.Sprintf("sweep_%s.csv", res.Workload.Kind))
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hermes"
	"hermes/internal/fault"
	"hermes/internal/sweep"
	"hermes/internal/workload"
)

// sweepOpts parameterizes one -sweep invocation.
type sweepOpts struct {
	Spec       workload.Spec
	Trace      string // arrival process name ("" = poisson)
	Rates      string // comma-separated offered RPS grid
	Modes      string // comma-separated tempo modes
	Machines   string // comma-separated fleet sizes; "" = single-machine sweep
	Placement  string // comma-separated placement policies (cluster sweep)
	Faults     string // comma-separated fault plans (cluster sweep; "" = fault-free)
	Window     time.Duration
	Seed       int64
	Trials     int
	Workers    int
	KneeFactor float64
	// Dispatch names the intake dispatch policy ("" = fifo);
	// PreemptQuantum is the ranked-dispatch preemption quantum.
	Dispatch       string
	PreemptQuantum time.Duration
	JSONPath       string
	CSVDir         string
	Verbose        bool
}

// splitCommaList splits a comma-separated flag value, trimming blanks.
func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseRates parses and validates the -rates grid: every entry must be
// a positive number and appear once.
func parseRates(list string) ([]float64, error) {
	var rates []float64
	seen := map[float64]bool{}
	for _, s := range splitCommaList(list) {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad rate %q: %v", s, err)
		}
		// NaN parses without error and slips past every comparison;
		// reject it (and infinities) together with non-positive rates.
		if !(r > 0) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("sweep: rates must be positive finite numbers, got %q", s)
		}
		if seen[r] {
			return nil, fmt.Errorf("sweep: duplicate rate %q", s)
		}
		seen[r] = true
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("sweep: -rates is empty")
	}
	return rates, nil
}

// parseMachines parses and validates the -machines grid: positive
// integer fleet sizes, each appearing once.
func parseMachines(list string) ([]int, error) {
	var machines []int
	seen := map[int]bool{}
	for _, s := range splitCommaList(list) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad machine count %q: %v", s, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("sweep: machine counts must be positive, got %q", s)
		}
		if seen[n] {
			return nil, fmt.Errorf("sweep: duplicate machine count %q", s)
		}
		seen[n] = true
		machines = append(machines, n)
	}
	if len(machines) == 0 {
		return nil, fmt.Errorf("sweep: -machines is empty")
	}
	return machines, nil
}

// parsePlacements parses and validates the -placement list: known
// policy names only (random, jsq, p2c/p<k>c, gossip), each once.
func parsePlacements(list string) ([]hermes.Placement, error) {
	var policies []hermes.Placement
	seen := map[string]bool{}
	for _, s := range splitCommaList(list) {
		p, err := hermes.ParsePlacement(s)
		if err != nil {
			return nil, fmt.Errorf("sweep: %v", err)
		}
		if seen[p.String()] {
			return nil, fmt.Errorf("sweep: duplicate placement policy %q", s)
		}
		seen[p.String()] = true
		policies = append(policies, p)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("sweep: -placement is empty")
	}
	return policies, nil
}

// parseFaultPlans parses and validates the -faults list against the
// fault registry, each plan once (after Resolve: "" and "none" are the
// same plan). An empty flag means one fault-free pass.
func parseFaultPlans(list string) ([]string, error) {
	var plans []string
	seen := map[string]bool{}
	for _, s := range splitCommaList(list) {
		p, err := fault.Resolve(s)
		if err != nil {
			return nil, fmt.Errorf("sweep: %v", err)
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("sweep: duplicate fault plan %q", s)
		}
		seen[p.Name] = true
		plans = append(plans, p.Name)
	}
	return plans, nil
}

// runSweep drives the open-system sweep from the CLI and writes the
// JSON (and optionally CSV) artifacts. A non-empty -machines grid
// selects the cluster sweep (placement policy × fleet size × rate)
// instead of the single-machine tempo-mode sweep.
func runSweep(opts sweepOpts) error {
	rates, err := parseRates(opts.Rates)
	if err != nil {
		return err
	}
	modes, err := parseLoadModes(opts.Modes)
	if err != nil {
		return err
	}
	if len(modes) == 0 {
		return fmt.Errorf("sweep: -modes is empty")
	}
	if opts.Machines != "" {
		return runClusterSweep(opts, rates, modes)
	}
	cfg := sweep.Config{
		Workload:       opts.Spec,
		Trace:          opts.Trace,
		Modes:          modes,
		RatesRPS:       rates,
		Window:         opts.Window,
		Seed:           opts.Seed,
		Trials:         opts.Trials,
		Workers:        opts.Workers,
		KneeFactor:     opts.KneeFactor,
		Dispatch:       opts.Dispatch,
		PreemptQuantum: opts.PreemptQuantum,
	}
	if opts.Verbose {
		cfg.Log = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	res, err := sweep.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if err := writeJSON(res, opts.JSONPath); err != nil {
		return err
	}
	if opts.CSVDir != "" {
		if err := os.MkdirAll(opts.CSVDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(opts.CSVDir, fmt.Sprintf("sweep_%s.csv", res.Workload.Kind))
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		// Mixed traces additionally get the per-class breakdown; single
		// class traces write exactly the pre-tenancy file set.
		if cc := res.ClassCSV(); cc != "" {
			path := filepath.Join(opts.CSVDir, fmt.Sprintf("sweep_classes_%s.csv", res.Workload.Kind))
			if err := os.WriteFile(path, []byte(cc), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// runClusterSweep drives the multi-machine (placement × fleet size ×
// rate) sweep. The grid runs under ONE tempo mode — pass exactly one
// via -modes.
func runClusterSweep(opts sweepOpts, rates []float64, modes []hermes.Mode) error {
	if len(modes) != 1 {
		return fmt.Errorf("sweep: the cluster sweep runs one tempo mode; -modes gave %d", len(modes))
	}
	machines, err := parseMachines(opts.Machines)
	if err != nil {
		return err
	}
	policies, err := parsePlacements(opts.Placement)
	if err != nil {
		return err
	}
	plans, err := parseFaultPlans(opts.Faults)
	if err != nil {
		return err
	}
	cfg := sweep.ClusterConfig{
		Workload:       opts.Spec,
		Trace:          opts.Trace,
		Faults:         plans,
		Mode:           modes[0],
		Policies:       policies,
		Machines:       machines,
		RatesRPS:       rates,
		Window:         opts.Window,
		Seed:           opts.Seed,
		Trials:         opts.Trials,
		Workers:        opts.Workers,
		KneeFactor:     opts.KneeFactor,
		Dispatch:       opts.Dispatch,
		PreemptQuantum: opts.PreemptQuantum,
	}
	if opts.Verbose {
		cfg.Log = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	res, err := sweep.RunCluster(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if err := writeJSON(res, opts.JSONPath); err != nil {
		return err
	}
	if opts.CSVDir != "" {
		if err := os.MkdirAll(opts.CSVDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(opts.CSVDir, fmt.Sprintf("sweep_cluster_%s.csv", res.Workload.Kind))
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		if cc := res.ClassCSV(); cc != "" {
			path := filepath.Join(opts.CSVDir, fmt.Sprintf("sweep_cluster_classes_%s.csv", res.Workload.Kind))
			if err := os.WriteFile(path, []byte(cc), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

package main

import (
	"strings"
	"testing"
	"time"

	"hermes/internal/workload"
)

// TestParseRatesValidation: the -rates grid is validated up front —
// zero, negative, malformed and duplicate entries all fail with a
// clear error instead of surfacing mid-sweep.
func TestParseRatesValidation(t *testing.T) {
	rates, err := parseRates("25, 50,100")
	if err != nil || len(rates) != 3 {
		t.Fatalf("good grid rejected: %v %v", rates, err)
	}
	for _, bad := range []string{"", "0", "-5", "25,abc", "25,50,25", "nan"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

// TestParseMachinesValidation mirrors the rate checks for -machines.
func TestParseMachinesValidation(t *testing.T) {
	machines, err := parseMachines("1,4,8")
	if err != nil || len(machines) != 3 {
		t.Fatalf("good grid rejected: %v %v", machines, err)
	}
	for _, bad := range []string{"", "0", "-2", "2,two", "4,4", "2.5"} {
		if _, err := parseMachines(bad); err == nil {
			t.Errorf("parseMachines(%q) accepted", bad)
		}
	}
}

// TestParsePlacementsValidation: -placement accepts only known policy
// names, each once ("p2c" and "p3c" are distinct; "p2c,p2c" is not).
func TestParsePlacementsValidation(t *testing.T) {
	policies, err := parsePlacements("random,jsq,p2c,p3c,gossip")
	if err != nil || len(policies) != 5 {
		t.Fatalf("good list rejected: %v %v", policies, err)
	}
	for _, bad := range []string{"", "spray", "p2c,p2c", "jsq,least-loaded", "p0c"} {
		if _, err := parsePlacements(bad); err == nil {
			t.Errorf("parsePlacements(%q) accepted", bad)
		}
	}
	if _, err := parsePlacements("p2c,p2c"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate policy error missing: %v", err)
	}
}

// TestRunSweepClusterNeedsOneMode: the cluster sweep runs a single
// tempo mode; a multi-mode -modes list is rejected up front.
func TestRunSweepClusterNeedsOneMode(t *testing.T) {
	err := runSweep(sweepOpts{
		Spec:      workload.Spec{Kind: "ticks"},
		Rates:     "100",
		Modes:     "baseline,unified",
		Machines:  "2",
		Placement: "p2c",
		Window:    10 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "one tempo mode") {
		t.Fatalf("multi-mode cluster sweep accepted: %v", err)
	}
}

package main

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"hermes"
	"hermes/internal/units"
)

// runVirtualLoad replays a seeded Poisson arrival trace *in virtual
// time* on the Sim backend: every arrival is scheduled at an exact
// virtual timestamp and the discrete-event machine multiplexes the
// jobs — queueing, steal interference between concurrent jobs, DVFS
// under bursty arrivals — with zero wall-clock pacing. The summary
// (sojourn percentiles, joules/request, throughput) is measured in
// virtual time and is byte-identical across runs for a fixed seed,
// config and workload: the open-system curve as a reproducible
// artifact rather than a wall-clock experiment.
func runVirtualLoad(opts loadOpts) (loadSummary, error) {
	mode, err := parseLoadMode(opts.Mode)
	if err != nil {
		return loadSummary{}, err
	}
	// Synchronous observer: the engine is single-threaded, so tracking
	// in-flight depth inline costs nothing, drops nothing, and stays
	// deterministic.
	var cur, peak int64
	obsv := hermes.ObserverFunc(func(e hermes.Event) {
		switch e.Kind {
		case hermes.EventJobStart:
			cur++
			if cur > peak {
				peak = cur
			}
		case hermes.EventJobDone:
			cur--
		}
	})
	ropts := []hermes.Option{
		hermes.WithBackend(hermes.Sim),
		hermes.WithMode(mode),
		hermes.WithSeed(opts.Seed),
		hermes.WithObserver(obsv),
	}
	if opts.Workers > 0 {
		ropts = append(ropts, hermes.WithWorkers(opts.Workers))
	}
	rt, err := hermes.New(ropts...)
	if err != nil {
		return loadSummary{}, err
	}
	defer rt.Close()

	// The same exponential-interarrival process as the wall-clock
	// generator, emitted as virtual timestamps.
	rng := rand.New(rand.NewPCG(uint64(opts.Seed), 0x9e3779b97f4a7c15))
	horizon := units.Time(opts.Duration.Nanoseconds()) * units.Nanosecond
	var arrivals []hermes.Arrival
	at := units.Time(0)
	for {
		at += units.Time(rng.ExpFloat64() / opts.RPS * float64(units.Second))
		if at > horizon {
			break
		}
		task, _, err := opts.Spec.Task()
		if err != nil {
			return loadSummary{}, err
		}
		arrivals = append(arrivals, hermes.Arrival{At: at, Task: task})
	}
	if len(arrivals) == 0 {
		return loadSummary{}, fmt.Errorf("load: no arrivals in a %v window at %g rps; raise -rps or -duration", opts.Duration, opts.RPS)
	}

	jobs, err := rt.SubmitTrace(context.Background(), arrivals)
	if err != nil {
		return loadSummary{}, err
	}
	var (
		sojourns []time.Duration
		sumJ     float64
		makespan units.Time
		errs     int64
	)
	for i, j := range jobs {
		rep, err := j.Wait()
		if err != nil {
			errs++
			if opts.Verbose {
				fmt.Printf("load: job %d failed: %v\n", j.ID(), err)
			}
			continue
		}
		sojourns = append(sojourns, rep.Sojourn.Duration())
		sumJ += rep.EnergyJ
		if done := arrivals[i].At + rep.Sojourn; done > makespan {
			makespan = done
		}
	}
	if err := rt.Close(); err != nil {
		return loadSummary{}, err
	}

	sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
	completed := int64(len(sojourns))
	elapsed := makespan.Seconds()
	sum := loadSummary{
		Target:       "in-process/sim-virtual",
		Workload:     opts.Spec,
		RPSTarget:    opts.RPS,
		DurationS:    elapsed,
		Submitted:    int64(len(arrivals)),
		Completed:    completed,
		Errors:       errs,
		P50SojournMS: percentileMS(sojourns, 0.50),
		P95SojournMS: percentileMS(sojourns, 0.95),
		P99SojournMS: percentileMS(sojourns, 0.99),
		MaxSojournMS: percentileMS(sojourns, 1),
		PeakInflight: peak,
	}
	if elapsed > 0 {
		sum.ThroughputRPS = float64(completed) / elapsed
	}
	if completed > 0 {
		sum.JoulesPerRequest = sumJ / float64(completed)
	}
	return sum, nil
}

package main

import (
	"fmt"
	"os"

	"hermes"
	"hermes/internal/sweep"
	"hermes/internal/trace"
)

// runVirtualLoad replays a seeded Poisson arrival trace *in virtual
// time* on the Sim backend: every arrival is scheduled at an exact
// virtual timestamp and the discrete-event machine multiplexes the
// jobs — queueing, steal interference between concurrent jobs, DVFS
// under bursty arrivals — with zero wall-clock pacing. The summary
// (sojourn percentiles, joules/request, throughput) is measured in
// virtual time and is byte-identical across runs for a fixed seed,
// config and workload: the open-system curve as a reproducible
// artifact rather than a wall-clock experiment.
//
// It is a thin wrapper over the sweep point-runner (one workload, one
// mode, one rate), so the shared measurement semantics apply here too:
// peak in-flight counts jobs from arrival to completion (queued jobs
// included, like the wall-clock generator), percentiles keep full
// virtual-time resolution, the Runtime is closed exactly once with its
// error surfaced, and dropped-event accounting appears in the summary
// (always 0 here — the point-runner observes synchronously through
// per-job reports, nothing can drop).
func runVirtualLoad(opts loadOpts) (loadSummary, error) {
	mode, err := parseLoadMode(opts.Mode)
	if err != nil {
		return loadSummary{}, err
	}
	dispatch, err := hermes.ParseDispatch(opts.Dispatch)
	if err != nil {
		return loadSummary{}, err
	}
	if opts.PreemptQuantum < 0 {
		return loadSummary{}, fmt.Errorf("load: preempt quantum must be non-negative, got %v", opts.PreemptQuantum)
	}
	pcfg := sweep.PointConfig{
		Workload:       opts.Spec,
		Trace:          opts.Trace,
		Mode:           mode,
		RPS:            opts.RPS,
		Window:         opts.Duration,
		Seed:           opts.Seed,
		Trials:         1,
		Workers:        opts.Workers,
		Dispatch:       opts.Dispatch,
		PreemptQuantum: opts.PreemptQuantum,
	}
	if opts.Verbose {
		pcfg.Log = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	pt, err := sweep.RunPoint(pcfg)
	if err != nil {
		return loadSummary{}, err
	}
	sum := loadSummary{
		Target:           "in-process/sim-virtual",
		Workload:         opts.Spec,
		Trace:            trace.Canonical(opts.Trace),
		Dispatch:         sweep.CanonicalDispatch(dispatch),
		RPSTarget:        opts.RPS,
		DurationS:        pt.MakespanS,
		Submitted:        pt.Arrivals,
		Completed:        pt.Completed,
		Errors:           pt.Errors,
		ThroughputRPS:    pt.ObservedRPS,
		P50SojournMS:     pt.P50SojournMS,
		P95SojournMS:     pt.P95SojournMS,
		P99SojournMS:     pt.P99SojournMS,
		MaxSojournMS:     pt.MaxSojournMS,
		PeakInflight:     pt.PeakInflight,
		JoulesPerRequest: pt.JoulesPerRequest,
		DroppedEvents:    pt.DroppedEvents,
	}
	// A mixed trace carries the point-runner's per-class rows through
	// to the summary; single-class traces leave Classes nil and keep
	// their pre-class JSON bytes.
	for _, c := range pt.Classes {
		sum.Classes = append(sum.Classes, classSummary{
			Tenant:           c.Tenant,
			Priority:         c.Priority,
			Submitted:        c.Arrivals,
			Completed:        c.Completed,
			Errors:           c.Errors,
			P50SojournMS:     c.P50SojournMS,
			P95SojournMS:     c.P95SojournMS,
			P99SojournMS:     c.P99SojournMS,
			SLOTargetMS:      c.SLOTargetMS,
			SLOAttainment:    c.SLOAttainment,
			JoulesPerRequest: c.JoulesPerRequest,
		})
	}
	return sum, nil
}

// parseLoadModes splits a comma-separated tempo-mode list through the
// one shared parser.
func parseLoadModes(list string) ([]hermes.Mode, error) {
	var modes []hermes.Mode
	for _, s := range splitCommaList(list) {
		m, err := hermes.ParseMode(s)
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

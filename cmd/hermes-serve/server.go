package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hermes"
	"hermes/internal/control"
	"hermes/internal/metrics"
	"hermes/internal/workload"
)

// server exposes one hermes.Runtime as an HTTP job-submission
// service: POST /jobs runs a parameterized synthetic workload, GET
// /jobs/{id} reports its status, GET /metrics serves the Prometheus
// fold of the runtime's observer stream, GET /healthz liveness.
type server struct {
	rt  *hermes.Runtime
	reg *metrics.Registry

	// ctl is the knee-aware admission controller (nil = none, every
	// request admitted); trace captures accepted arrivals for the
	// /capacity replay (nil = capture off).
	ctl   *control.Controller
	trace *traceRing

	// inflight is the admission-control semaphore: a slot is held from
	// accepted POST to job completion, and a full semaphore turns new
	// submissions away with 429 instead of letting an open-loop client
	// queue without bound.
	inflight    chan struct{}
	maxInflight int
	peak        atomic.Int64 // high-water mark of concurrently in-flight jobs

	jobTimeout time.Duration
	// retainDone bounds how many completed job records stay queryable
	// before eviction (pruned jobs answer 410, not 404).
	retainDone int

	mu   sync.Mutex
	jobs map[int64]*jobRecord
	// doneOrder lists completed job ids oldest-first; records beyond
	// retainDone are pruned so a long-lived server's job index stays
	// bounded. failedPruned remembers which evicted jobs had FAILED,
	// exactly for the most recent retainDone evicted failures; once
	// that memory itself overflows, failedForgotten rises and ids at
	// or below it answer "unknown" rather than "pruned" — eviction
	// degrades to ambiguity, never to claiming success for a failure.
	doneOrder       []int64
	failedPruned    map[int64]bool
	failedOrder     []int64
	failedForgotten int64
	// maxID is the highest job id this server has accepted. Every id
	// in [1, maxID] was a real job (the runtime assigns them
	// monotonically and this server is its only submitter), so an id
	// at or below the watermark that is missing from the index was
	// completed and pruned — not unknown.
	maxID   int64
	started time.Time
}

// defaultRetainDone bounds how many completed job records stay
// queryable when the server is built with retain <= 0.
const defaultRetainDone = 4096

// maxStatusWait caps GET /jobs/{id}?wait= long-polls so a client
// cannot pin a handler goroutine indefinitely.
const maxStatusWait = 30 * time.Second

// jobRecord tracks one submitted job from HTTP accept to completion.
type jobRecord struct {
	spec      workload.Spec
	class     hermes.Class
	submitted time.Time
	j         *hermes.Job

	mu       sync.Mutex
	finished time.Time // zero while running
}

func (rec *jobRecord) finish(at time.Time) {
	rec.mu.Lock()
	rec.finished = at
	rec.mu.Unlock()
}

func (rec *jobRecord) finishedAt() (time.Time, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.finished, !rec.finished.IsZero()
}

func newServer(rt *hermes.Runtime, reg *metrics.Registry, maxInflight int, jobTimeout time.Duration) *server {
	if maxInflight < 1 {
		maxInflight = 1024
	}
	return &server{
		rt:           rt,
		reg:          reg,
		inflight:     make(chan struct{}, maxInflight),
		maxInflight:  maxInflight,
		jobTimeout:   jobTimeout,
		retainDone:   defaultRetainDone,
		jobs:         make(map[int64]*jobRecord),
		failedPruned: make(map[int64]bool),
		started:      time.Now(),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleIndex)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /workloads", s.handleWorkloads)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /capacity", s.handleCapacity)
	mux.HandleFunc("GET /controlz", s.handleControlz)
	return mux
}

// writeJSON renders v with the given status; encoding errors at this
// point can only be I/O on a dead connection, so they are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// submitRequest is the POST /jobs body: a workload spec plus the
// optional service class (tenant, priority). Both default to the
// unclassed job, so every pre-tenancy client body still parses.
type submitRequest struct {
	workload.Spec
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if req.Priority < 0 {
		writeError(w, http.StatusBadRequest, "bad priority %d (must be non-negative)", req.Priority)
		return
	}
	task, spec, err := req.Spec.Task()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	class := hermes.Class{Tenant: req.Tenant, Priority: req.Priority}

	// Admission control, two layers: the knee-aware controller sheds
	// lowest-priority-first when live signals say the machine is past
	// its calibrated capacity; the in-flight semaphore is the hard
	// backstop either way.
	if s.ctl != nil && !s.ctl.AdmitPriority(req.Priority) {
		shedError(w)
		return
	}
	select {
	case s.inflight <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"max in-flight jobs reached (%d); retry later", s.maxInflight)
		return
	}
	if n := int64(len(s.inflight)); n > s.peak.Load() {
		s.peak.Store(n) // racy high-water mark: good enough for ops visibility
	}

	// The job outlives this request; its lifetime is bounded by the
	// optional server-side timeout, not by the client connection.
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if s.jobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.jobTimeout)
	}
	rec := &jobRecord{spec: spec, class: class, submitted: time.Now()}
	j, err := s.rt.Submit(ctx, task, hermes.WithClass(class))
	if err != nil {
		cancel()
		<-s.inflight
		writeError(w, http.StatusServiceUnavailable, "submit failed: %v", err)
		return
	}
	rec.j = j
	s.mu.Lock()
	s.jobs[j.ID()] = rec
	if j.ID() > s.maxID {
		s.maxID = j.ID()
	}
	s.mu.Unlock()
	// Label the submission series and this job's latency observation
	// by workload kind and service class, and capture the arrival for
	// /capacity replays.
	s.reg.JobSubmittedClass(j.ID(), spec.Kind, class.Tenant, class.Priority)
	if s.trace != nil {
		s.trace.record(spec)
	}
	go func() {
		defer cancel()
		<-j.Done()
		rec.finish(time.Now())
		<-s.inflight
		s.pruneDone(j.ID())
	}()
	resp := map[string]any{
		"id":       j.ID(),
		"status":   "running",
		"workload": spec,
		"href":     fmt.Sprintf("/jobs/%d", j.ID()),
	}
	// Classed submissions echo the class back; unclassed responses keep
	// the pre-tenancy body shape.
	if !class.IsZero() {
		resp["tenant"] = class.Tenant
		resp["priority"] = class.Priority
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// jobStatusJSON is the GET /jobs/{id} response body.
type jobStatusJSON struct {
	ID       int64         `json:"id"`
	Status   string        `json:"status"` // running | done | failed | pruned | unknown
	Workload workload.Spec `json:"workload"`
	// Tenant and Priority echo the job's service class; omitted for
	// unclassed jobs so pre-tenancy bodies are unchanged.
	Tenant    string     `json:"tenant,omitempty"`
	Priority  int        `json:"priority,omitempty"`
	SojournMS float64    `json:"sojourn_ms,omitempty"`
	Error     string     `json:"error,omitempty"`
	Report    *reportOut `json:"report,omitempty"`
}

// reportOut is the wire shape of a completed job's hermes.Report.
// SojournMS here is the backend's own measurement — virtual time on
// the Sim backend, wall clock on Native — whereas the enclosing
// sojourn_ms is always the HTTP layer's wall-clock accept-to-finish.
type reportOut struct {
	SpanMS        float64 `json:"span_ms"`
	SojournMS     float64 `json:"sojourn_ms"`
	EnergyJ       float64 `json:"energy_j"`
	AvgPowerW     float64 `json:"avg_power_w"`
	Tasks         int64   `json:"tasks"`
	Spawns        int64   `json:"spawns"`
	Steals        int64   `json:"steals"`
	TempoSwitches int64   `json:"tempo_switches"`
	DVFSCommits   int64   `json:"dvfs_commits"`
}

// handleStatus reports one job's state. ?wait=<dur> long-polls: the
// handler holds the request until the job completes or the wait
// (capped at 30s) elapses, then answers with the current state —
// removing the poll-interval bias from sojourn measurements and the
// poll storm from high in-flight counts. Completed jobs evicted from
// the bounded retention window answer 410 with status "pruned": the
// job finished, only its record is gone — clients must not read it as
// a failure.
func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	var wait time.Duration
	if ws := r.URL.Query().Get("wait"); ws != "" {
		wait, err = time.ParseDuration(ws)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, "bad wait %q (want a duration like 500ms)", ws)
			return
		}
		if wait > maxStatusWait {
			wait = maxStatusWait
		}
	}
	s.mu.Lock()
	rec := s.jobs[id]
	pruned := rec == nil && id >= 1 && id <= s.maxID
	failed := pruned && s.failedPruned[id]
	ambiguous := pruned && !failed && id <= s.failedForgotten
	s.mu.Unlock()
	if rec == nil {
		switch {
		case failed:
			// The record is gone but the outcome was a failure: report
			// it as one, so clients cannot mistake eviction for
			// success.
			writeJSON(w, http.StatusGone, jobStatusJSON{ID: id, Status: "failed",
				Error: "job failed; record evicted from the retention window"})
		case ambiguous:
			// Old enough that a failure record for it could itself have
			// been evicted: the outcome is genuinely unknown, which
			// clients must not count as success.
			writeJSON(w, http.StatusGone, jobStatusJSON{ID: id, Status: "unknown",
				Error: "record evicted; outcome no longer known"})
		case pruned:
			writeJSON(w, http.StatusGone, jobStatusJSON{ID: id, Status: "pruned"})
		default:
			writeError(w, http.StatusNotFound, "no such job %d", id)
		}
		return
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-rec.j.Done():
		case <-t.C:
		case <-r.Context().Done():
		}
		t.Stop()
	}
	out := jobStatusJSON{ID: id, Status: "running", Workload: rec.spec,
		Tenant: rec.class.Tenant, Priority: rec.class.Priority}
	if rep, jobErr, done := rec.j.Report(); done {
		out.Status = "done"
		if jobErr != nil {
			out.Status = "failed"
			out.Error = jobErr.Error()
		}
		// The completion goroutine records the finish timestamp just
		// after the job future resolves; in the tiny window where the
		// job is done but the record isn't stamped yet, "now" is the
		// tightest honest bound.
		at, ok := rec.finishedAt()
		if !ok {
			at = time.Now()
		}
		out.SojournMS = float64(at.Sub(rec.submitted).Nanoseconds()) / 1e6
		out.Report = &reportOut{
			SpanMS:        rep.Span.Seconds() * 1e3,
			SojournMS:     rep.Sojourn.Seconds() * 1e3,
			EnergyJ:       rep.EnergyJ,
			AvgPowerW:     rep.AvgPowerW,
			Tasks:         rep.Tasks,
			Spawns:        rep.Spawns,
			Steals:        rep.Steals,
			TempoSwitches: rep.TempoSwitches,
			DVFSCommits:   rep.DVFSCommits,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// jobIndexEntry is one row of the GET /jobs index.
type jobIndexEntry struct {
	ID       int64  `json:"id"`
	Workload string `json:"workload"`
	// Tenant and Priority are the job's service class; omitted for
	// unclassed jobs so pre-tenancy rows are unchanged.
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Status   string `json:"status"` // running | done | failed
	// SojournMS is the HTTP layer's wall-clock accept-to-finish
	// latency, present once the job is done (the same quantity GET
	// /jobs/{id} reports at its top level).
	SojournMS float64 `json:"sojourn_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// jobIndexJSON is the GET /jobs response body.
type jobIndexJSON struct {
	// Count is the number of rows returned; Indexed is how many job
	// records the server currently holds (Count can be lower under
	// ?status= or ?limit=).
	Count   int `json:"count"`
	Indexed int `json:"indexed"`
	// MaxID is the highest job id ever accepted: ids at or below it
	// that are absent from the index were completed and pruned from the
	// retention window (GET /jobs/{id} still classifies them).
	MaxID      int64           `json:"max_id"`
	RetainDone int             `json:"retain_done"`
	Jobs       []jobIndexEntry `json:"jobs"`
}

// handleIndex lists every job record the server retains — running jobs
// plus completed ones inside the bounded retention window — sorted by
// id ascending, scrape-friendly by construction: the response size is
// bounded by max-inflight + the retention window regardless of uptime.
// ?status=running|done|failed, ?workload=<registered kind> and
// ?tenant=<service-class tenant> filter rows (they compose); ?limit=N
// keeps only the N highest-id (most recent) matching rows. Tenants are
// free-form client strings with no registry to validate against, so an
// unknown tenant yields an empty list, not a 400.
func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	statusFilter := r.URL.Query().Get("status")
	switch statusFilter {
	case "", "running", "done", "failed":
	default:
		writeError(w, http.StatusBadRequest, "bad status filter %q (want running, done or failed)", statusFilter)
		return
	}
	tenantFilter := r.URL.Query().Get("tenant")
	filterTenant := r.URL.Query().Has("tenant")
	workloadFilter := r.URL.Query().Get("workload")
	if workloadFilter != "" {
		if _, ok := workload.Lookup(workloadFilter); !ok {
			writeError(w, http.StatusBadRequest, "bad workload filter %q (want one of %s)",
				workloadFilter, strings.Join(workload.Names(), ", "))
			return
		}
	}
	limit := -1
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q (want a non-negative integer)", ls)
			return
		}
		limit = n
	}
	type idRec struct {
		id  int64
		rec *jobRecord
	}
	s.mu.Lock()
	maxID := s.maxID
	retain := s.retainDone
	indexed := len(s.jobs)
	recs := make([]idRec, 0, len(s.jobs))
	for id, rec := range s.jobs {
		recs = append(recs, idRec{id, rec})
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].id < recs[j].id })

	entries := make([]jobIndexEntry, 0, len(recs))
	for _, ir := range recs {
		e := jobIndexEntry{ID: ir.id, Workload: ir.rec.spec.Kind, Status: "running",
			Tenant: ir.rec.class.Tenant, Priority: ir.rec.class.Priority}
		if _, jobErr, done := ir.rec.j.Report(); done {
			e.Status = "done"
			if jobErr != nil {
				e.Status = "failed"
				e.Error = jobErr.Error()
			}
			at, ok := ir.rec.finishedAt()
			if !ok {
				at = time.Now()
			}
			e.SojournMS = float64(at.Sub(ir.rec.submitted).Nanoseconds()) / 1e6
		}
		if statusFilter != "" && e.Status != statusFilter {
			continue
		}
		if workloadFilter != "" && e.Workload != workloadFilter {
			continue
		}
		if filterTenant && e.Tenant != tenantFilter {
			continue
		}
		entries = append(entries, e)
	}
	if limit >= 0 && len(entries) > limit {
		entries = entries[len(entries)-limit:]
	}
	writeJSON(w, http.StatusOK, jobIndexJSON{
		Count:      len(entries),
		Indexed:    indexed,
		MaxID:      maxID,
		RetainDone: retain,
		Jobs:       entries,
	})
}

// pruneDone appends id to the completion order and evicts the oldest
// completed records beyond the retention window.
func (s *server) pruneDone(id int64) {
	s.mu.Lock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.retainDone {
		evict := s.doneOrder[0]
		if rec := s.jobs[evict]; rec != nil {
			if _, jobErr, done := rec.j.Report(); done && jobErr != nil {
				s.failedPruned[evict] = true
				s.failedOrder = append(s.failedOrder, evict)
				for len(s.failedOrder) > s.retainDone {
					old := s.failedOrder[0]
					if old > s.failedForgotten {
						s.failedForgotten = old
					}
					delete(s.failedPruned, old)
					s.failedOrder = s.failedOrder[1:]
				}
			}
		}
		delete(s.jobs, evict)
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
}

// workloadEntry is one row of the GET /workloads catalog.
type workloadEntry struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
	// Defaults is the effective spec an empty {"workload": name}
	// submission runs — the registry's defaults, validated.
	Defaults workload.Spec `json:"defaults"`
	// MaxN bounds the n parameter (0 = unbounded).
	MaxN int `json:"max_n,omitempty"`
}

// workloadsJSON is the GET /workloads response body.
type workloadsJSON struct {
	Count     int             `json:"count"`
	Workloads []workloadEntry `json:"workloads"`
}

// handleWorkloads serves the workload catalog: every registered kind
// with its description, effective defaults and bounds — the registry
// itself, so clients (and the selftest) can never disagree with what
// POST /jobs accepts.
func (s *server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	defs := workload.All()
	out := workloadsJSON{Count: len(defs), Workloads: make([]workloadEntry, 0, len(defs))}
	for _, d := range defs {
		eff, err := workload.Spec{Kind: d.Name}.Validate()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "catalog default for %q invalid: %v", d.Name, err)
			return
		}
		out.Workloads = append(out.Workloads, workloadEntry{
			Name: d.Name, Desc: d.Desc, Defaults: eff, MaxN: d.MaxN,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_s":       time.Since(s.started).Seconds(),
		"backend":        s.rt.Backend().String(),
		"mode":           s.rt.Config().Mode.String(),
		"workers":        s.rt.Config().Workers,
		"inflight":       len(s.inflight),
		"peak_inflight":  s.peak.Load(),
		"max_inflight":   s.maxInflight,
		"jobs_total":     total,
		"dropped_events": s.rt.EventsDropped(),
	})
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hermes"
	"hermes/internal/metrics"
	"hermes/internal/synth"
)

// server exposes one hermes.Runtime as an HTTP job-submission
// service: POST /jobs runs a parameterized synthetic workload, GET
// /jobs/{id} reports its status, GET /metrics serves the Prometheus
// fold of the runtime's observer stream, GET /healthz liveness.
type server struct {
	rt  *hermes.Runtime
	reg *metrics.Registry

	// inflight is the admission-control semaphore: a slot is held from
	// accepted POST to job completion, and a full semaphore turns new
	// submissions away with 429 instead of letting an open-loop client
	// queue without bound.
	inflight    chan struct{}
	maxInflight int
	peak        atomic.Int64 // high-water mark of concurrently in-flight jobs

	jobTimeout time.Duration

	mu   sync.Mutex
	jobs map[int64]*jobRecord
	// doneOrder lists completed job ids oldest-first; records beyond
	// retainDone are pruned so a long-lived server's job index stays
	// bounded (status queries for pruned jobs get 404).
	doneOrder []int64
	started   time.Time
}

// retainDone bounds how many completed job records stay queryable.
const retainDone = 4096

// jobRecord tracks one submitted job from HTTP accept to completion.
type jobRecord struct {
	spec      synth.Spec
	submitted time.Time
	j         *hermes.Job

	mu       sync.Mutex
	finished time.Time // zero while running
}

func (rec *jobRecord) finish(at time.Time) {
	rec.mu.Lock()
	rec.finished = at
	rec.mu.Unlock()
}

func (rec *jobRecord) finishedAt() (time.Time, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.finished, !rec.finished.IsZero()
}

func newServer(rt *hermes.Runtime, reg *metrics.Registry, maxInflight int, jobTimeout time.Duration) *server {
	if maxInflight < 1 {
		maxInflight = 1024
	}
	return &server{
		rt:          rt,
		reg:         reg,
		inflight:    make(chan struct{}, maxInflight),
		maxInflight: maxInflight,
		jobTimeout:  jobTimeout,
		jobs:        make(map[int64]*jobRecord),
		started:     time.Now(),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON renders v with the given status; encoding errors at this
// point can only be I/O on a dead connection, so they are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec synth.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	task, spec, err := spec.Task()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission control: take an in-flight slot or refuse immediately.
	select {
	case s.inflight <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"max in-flight jobs reached (%d); retry later", s.maxInflight)
		return
	}
	if n := int64(len(s.inflight)); n > s.peak.Load() {
		s.peak.Store(n) // racy high-water mark: good enough for ops visibility
	}

	// The job outlives this request; its lifetime is bounded by the
	// optional server-side timeout, not by the client connection.
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if s.jobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.jobTimeout)
	}
	rec := &jobRecord{spec: spec, submitted: time.Now()}
	j, err := s.rt.Submit(ctx, task)
	if err != nil {
		cancel()
		<-s.inflight
		writeError(w, http.StatusServiceUnavailable, "submit failed: %v", err)
		return
	}
	rec.j = j
	s.mu.Lock()
	s.jobs[j.ID()] = rec
	s.mu.Unlock()
	go func() {
		defer cancel()
		<-j.Done()
		rec.finish(time.Now())
		<-s.inflight
		s.pruneDone(j.ID())
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":       j.ID(),
		"status":   "running",
		"workload": spec,
		"href":     fmt.Sprintf("/jobs/%d", j.ID()),
	})
}

// jobStatusJSON is the GET /jobs/{id} response body.
type jobStatusJSON struct {
	ID        int64      `json:"id"`
	Status    string     `json:"status"` // running | done | failed
	Workload  synth.Spec `json:"workload"`
	SojournMS float64    `json:"sojourn_ms,omitempty"`
	Error     string     `json:"error,omitempty"`
	Report    *reportOut `json:"report,omitempty"`
}

// reportOut is the wire shape of a completed job's hermes.Report.
type reportOut struct {
	SpanMS        float64 `json:"span_ms"`
	EnergyJ       float64 `json:"energy_j"`
	AvgPowerW     float64 `json:"avg_power_w"`
	Tasks         int64   `json:"tasks"`
	Spawns        int64   `json:"spawns"`
	Steals        int64   `json:"steals"`
	TempoSwitches int64   `json:"tempo_switches"`
	DVFSCommits   int64   `json:"dvfs_commits"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	rec := s.jobs[id]
	s.mu.Unlock()
	if rec == nil {
		writeError(w, http.StatusNotFound, "no such job %d", id)
		return
	}
	out := jobStatusJSON{ID: id, Status: "running", Workload: rec.spec}
	if rep, jobErr, done := rec.j.Report(); done {
		out.Status = "done"
		if jobErr != nil {
			out.Status = "failed"
			out.Error = jobErr.Error()
		}
		// The completion goroutine records the finish timestamp just
		// after the job future resolves; in the tiny window where the
		// job is done but the record isn't stamped yet, "now" is the
		// tightest honest bound.
		at, ok := rec.finishedAt()
		if !ok {
			at = time.Now()
		}
		out.SojournMS = float64(at.Sub(rec.submitted).Microseconds()) / 1e3
		out.Report = &reportOut{
			SpanMS:        rep.Span.Seconds() * 1e3,
			EnergyJ:       rep.EnergyJ,
			AvgPowerW:     rep.AvgPowerW,
			Tasks:         rep.Tasks,
			Spawns:        rep.Spawns,
			Steals:        rep.Steals,
			TempoSwitches: rep.TempoSwitches,
			DVFSCommits:   rep.DVFSCommits,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// pruneDone appends id to the completion order and evicts the oldest
// completed records beyond the retention window.
func (s *server) pruneDone(id int64) {
	s.mu.Lock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > retainDone {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.mu.Unlock()
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_s":       time.Since(s.started).Seconds(),
		"backend":        s.rt.Backend().String(),
		"mode":           s.rt.Config().Mode.String(),
		"workers":        s.rt.Config().Workers,
		"inflight":       len(s.inflight),
		"peak_inflight":  s.peak.Load(),
		"max_inflight":   s.maxInflight,
		"jobs_total":     total,
		"dropped_events": s.rt.EventsDropped(),
	})
}

package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSubmitClassEchoed covers the classed submit path: tenant and
// priority ride the POST body, are echoed on acceptance and in the
// job's status, and label the metrics series; unclassed submissions
// keep their pre-tenancy response shape.
func TestSubmitClassEchoed(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)

	id, code := postJob(t, ts.URL, `{"workload":"ticks","n":4,"grain":4,"work":100000,"tenant":"acme","priority":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("classed submit: HTTP %d", code)
	}
	st := waitDoneOrPruned(t, ts.URL, id, 30*time.Second)
	if st.Status != "done" {
		t.Fatalf("job %d finished %q", id, st.Status)
	}
	if st.Tenant != "acme" || st.Priority != 2 {
		t.Fatalf("status lost the class: tenant=%q priority=%d", st.Tenant, st.Priority)
	}

	plainID, code := postJob(t, ts.URL, `{"workload":"ticks","n":4,"grain":4,"work":100000}`)
	if code != http.StatusAccepted {
		t.Fatalf("plain submit: HTTP %d", code)
	}
	if st := waitDoneOrPruned(t, ts.URL, plainID, 30*time.Second); st.Tenant != "" || st.Priority != 0 {
		t.Fatalf("unclassed job grew a class: %+v", st)
	}

	// The class labels the metrics series alongside the workload kind.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `hermes_jobs_submitted_total{workload="ticks",tenant="acme",priority="2"} 1`
	if !strings.Contains(string(body), want) {
		t.Fatalf("metrics missing classed series %q:\n%s", want, body)
	}

	// A negative priority is rejected loudly: shedding floors count
	// upward from zero.
	if _, code := postJob(t, ts.URL, `{"workload":"ticks","n":4,"priority":-1}`); code != http.StatusBadRequest {
		t.Fatalf("negative priority: HTTP %d, want 400", code)
	}
}

// TestJobIndexTenantFilter covers GET /jobs?tenant=: rows filter by
// the service-class tenant, the filter composes with workload and
// limit, the empty value selects unclassed jobs, and an unknown
// tenant (free-form, no registry) yields an empty list rather than a
// 400.
func TestJobIndexTenantFilter(t *testing.T) {
	ts, srv := newTestServer(t, 8, 1<<12)
	srv.retainDone = 16
	submit := func(body string) {
		t.Helper()
		id, code := postJob(t, ts.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d", body, code)
		}
		if st := waitDoneOrPruned(t, ts.URL, id, 30*time.Second); st.Status != "done" {
			t.Fatalf("job %d finished %q", id, st.Status)
		}
	}
	submit(`{"workload":"ticks","n":4,"grain":4,"work":100000,"tenant":"acme"}`)
	submit(`{"workload":"ticks","n":4,"grain":4,"work":100000,"tenant":"acme","priority":1}`)
	submit(`{"workload":"fib","n":8,"grain":4,"tenant":"umbrella"}`)
	submit(`{"workload":"ticks","n":4,"grain":4,"work":100000}`)

	get := func(url string) jobIndexJSON {
		t.Helper()
		var idx jobIndexJSON
		if code := getJSON(t, url, &idx); code != http.StatusOK {
			t.Fatalf("%s: HTTP %d", url, code)
		}
		return idx
	}

	acme := get(ts.URL + "/jobs?tenant=acme")
	if acme.Count != 2 {
		t.Fatalf("tenant=acme count %d, want 2: %+v", acme.Count, acme)
	}
	for _, e := range acme.Jobs {
		if e.Tenant != "acme" {
			t.Fatalf("tenant filter leaked %+v", e)
		}
	}

	// Composes with workload and limit.
	if idx := get(ts.URL + "/jobs?tenant=acme&workload=ticks&limit=1"); idx.Count != 1 || idx.Jobs[0].Tenant != "acme" {
		t.Fatalf("composed filter: %+v", idx)
	}
	if idx := get(ts.URL + "/jobs?tenant=umbrella&workload=ticks"); idx.Count != 0 {
		t.Fatalf("disjoint composition matched rows: %+v", idx)
	}

	// The empty value means "unclassed", distinct from no filter.
	if idx := get(ts.URL + "/jobs?tenant="); idx.Count != 1 || idx.Jobs[0].Tenant != "" {
		t.Fatalf("tenant= (empty) filter: %+v", idx)
	}
	if idx := get(ts.URL + "/jobs"); idx.Count != 4 {
		t.Fatalf("unfiltered count %d, want 4", idx.Count)
	}

	// Unknown tenants are not an error: empty list, HTTP 200.
	if idx := get(ts.URL + "/jobs?tenant=nobody"); idx.Count != 0 || len(idx.Jobs) != 0 {
		t.Fatalf("unknown tenant: %+v", idx)
	}
}

package main

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hermes"
	"hermes/internal/sweep"
	"hermes/internal/units"
	"hermes/internal/workload"
)

// capacitySeed fixes the Sim seed every /capacity replay runs with, so
// the same captured trace and scale always produce byte-identical
// predictions — the endpoint's determinism contract.
const capacitySeed = 1

// maxCapacityScale bounds ?scale= so a client cannot ask the digital
// twin to simulate an absurd compression of the trace.
const maxCapacityScale = 1000

// traceEntry is one captured arrival: when it hit the server (offset
// from server start) and what it asked for.
type traceEntry struct {
	at   time.Duration
	spec workload.Spec
}

// traceRing captures the most recent accepted submissions in a bounded
// ring — the arrival trace /capacity replays through the simulator.
type traceRing struct {
	start time.Time

	mu    sync.Mutex
	buf   []traceEntry
	next  int
	full  bool
	total int64
}

func newTraceRing(capacity int, start time.Time) *traceRing {
	if capacity < 1 {
		capacity = 4096
	}
	return &traceRing{start: start, buf: make([]traceEntry, capacity)}
}

// record captures one accepted submission.
func (tr *traceRing) record(spec workload.Spec) {
	at := time.Since(tr.start)
	tr.mu.Lock()
	tr.buf[tr.next] = traceEntry{at: at, spec: spec}
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next = 0
		tr.full = true
	}
	tr.total++
	tr.mu.Unlock()
}

// snapshot returns the captured entries oldest-first, plus how many
// submissions the server has seen in total (≥ len(entries): the ring
// forgets the oldest beyond its capacity).
func (tr *traceRing) snapshot() ([]traceEntry, int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []traceEntry
	if tr.full {
		out = make([]traceEntry, 0, len(tr.buf))
		out = append(out, tr.buf[tr.next:]...)
		out = append(out, tr.buf[:tr.next]...)
	} else {
		out = append(out, tr.buf[:tr.next]...)
	}
	return out, tr.total
}

// capacityJSON is the GET /capacity response body: the replay's
// prediction plus the question it answers.
type capacityJSON struct {
	// Scale is the rate multiplier applied to the captured trace:
	// scale 2 replays the same arrivals twice as fast.
	Scale float64 `json:"scale"`
	// Mode is the tempo mode the prediction simulates.
	Mode string `json:"mode"`
	// Workers is the simulated pool width (the serving pool's).
	Workers int `json:"workers"`
	// TraceLen is how many captured arrivals were replayed; TraceTotal
	// is how many the server has accepted in total (the ring keeps the
	// most recent TraceLen of them).
	TraceLen   int   `json:"trace_len"`
	TraceTotal int64 `json:"trace_total"`
	// ScaledSpanS is the replayed trace's arrival span after scaling.
	ScaledSpanS float64 `json:"scaled_span_s"`

	Prediction sweep.Replay `json:"prediction"`
}

// handleCapacity answers "what would this machine do if the traffic I
// have actually been receiving arrived scale× faster?" — by replaying
// the captured arrival trace, rate-scaled, through a throwaway
// deterministic Sim pool. Same captured trace + same query = byte-
// identical response. ?scale= defaults to 1; ?mode= defaults to the
// runtime's current tempo mode.
func (s *server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	if s.trace == nil {
		writeError(w, http.StatusNotFound, "capacity replay disabled (no trace capture)")
		return
	}
	scale := 1.0
	if qs := r.URL.Query().Get("scale"); qs != "" {
		v, err := strconv.ParseFloat(qs, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > maxCapacityScale {
			writeError(w, http.StatusBadRequest, "bad scale %q (want 0 < scale <= %d)", qs, maxCapacityScale)
			return
		}
		scale = v
	}
	mode := s.rt.Config().Mode
	if qm := r.URL.Query().Get("mode"); qm != "" {
		m, err := hermes.ParseMode(qm)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		mode = m
	}
	entries, total := s.trace.snapshot()
	if len(entries) == 0 {
		writeError(w, http.StatusConflict, "no captured arrivals yet; submit jobs first")
		return
	}

	// Normalize to a 0-based virtual timeline and compress by scale:
	// arrival offsets shrink, the work itself does not.
	base := entries[0].at
	arrivals := make([]hermes.Arrival, len(entries))
	for i, e := range entries {
		task, _, err := e.spec.Task()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "captured spec invalid: %v", err)
			return
		}
		off := float64((e.at - base).Nanoseconds()) / scale
		arrivals[i] = hermes.Arrival{
			At:   units.Time(off) * units.Nanosecond,
			Task: task,
		}
	}
	rep, err := sweep.ReplayTrace(sweep.ReplayConfig{
		Mode:    mode,
		Workers: s.rt.Config().Workers,
		Seed:    capacitySeed,
	}, arrivals)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "replay failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, capacityJSON{
		Scale:       scale,
		Mode:        mode.String(),
		Workers:     s.rt.Config().Workers,
		TraceLen:    len(entries),
		TraceTotal:  total,
		ScaledSpanS: (arrivals[len(arrivals)-1].At - arrivals[0].At).Seconds(),
		Prediction:  rep,
	})
}

// handleControlz reports the admission controller's state — enabled or
// not, which is the point: a disabled controller answers with why.
func (s *server) handleControlz(w http.ResponseWriter, _ *http.Request) {
	if s.ctl == nil {
		writeError(w, http.StatusNotFound, "no controller (server built without one)")
		return
	}
	writeJSON(w, http.StatusOK, s.ctl.Status())
}

// shedError is the 429 body for control-plane shedding, distinct from
// the semaphore's max-in-flight message so operators can tell the two
// admission layers apart.
func shedError(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		"shedding: offered load exceeds the calibrated knee; retry later")
}

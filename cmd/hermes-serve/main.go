// hermes-serve exposes a hermes.Runtime as an HTTP job-submission
// service — the open-system serving scenario the ROADMAP's north star
// names. Scheduler telemetry flows through a bounded asynchronous
// observer into a Prometheus-text /metrics endpoint, so a slow
// scraper can never stall the work-stealing hot path.
//
// Endpoints:
//
//	POST /jobs      submit a registered workload; 202 + job id, 429 over max in-flight
//	GET  /jobs/{id} job status: running / done / failed, sojourn, report.
//	                ?wait=<dur> long-polls until completion or the wait
//	                elapses (capped at 30s); completed jobs evicted from
//	                the retention window answer 410 status "pruned"
//	GET  /workloads the catalog POST /jobs accepts: every registered kind
//	                with its description, effective defaults and max n
//	GET  /metrics   Prometheus text: steals, tempo switches, DVFS commits,
//	                power/energy, per-workload submissions and job latency
//	                histogram, dropped events
//	GET  /healthz   liveness + in-flight / drop counters
//
// Both backends serve concurrent jobs over one shared machine: real
// goroutine workers with -backend native, the deterministic
// discrete-event machine (virtual-time multiplexing) with -backend
// sim.
//
// Quickstart:
//
//	hermes-serve -addr :8080 -backend native -mode unified &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/jobs -d '{"workload":"fib","n":20}'
//	curl -s localhost:8080/jobs/1
//	curl -s localhost:8080/metrics | grep hermes_
//
// The async observer drops (and counts) events instead of blocking
// when its buffer overflows; watch hermes_observer_dropped_events_total
// and raise -buffer if it moves.
//
// -selftest boots the full server on a loopback port, drives it over
// real HTTP (submit, poll to completion, scrape /metrics) and exits
// nonzero on any failure — the CI smoke for the serving path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hermes"
	"hermes/internal/control"
	"hermes/internal/metrics"
	"hermes/internal/sweep"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		backend     = flag.String("backend", "native", "execution backend: native or sim")
		mode        = flag.String("mode", "unified", "tempo mode: baseline, workpath, workload or unified")
		workers     = flag.Int("workers", 0, "worker count (0 = backend default)")
		buffer      = flag.Int("buffer", 1<<16, "async observer event buffer size")
		maxInflight = flag.Int("max-inflight", 1024, "max concurrently in-flight jobs before 429")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "per-job execution timeout (0 = none)")
		shutGrace   = flag.Duration("shutdown-grace", 30*time.Second, "drain window for in-flight requests on shutdown")
		ctlEnable   = flag.Bool("control", false, "enable the knee-aware admission controller (needs -sweep-model)")
		sweepModel  = flag.String("sweep-model", "", "sweep JSON artifact to load as the capacity model")
		ctlInterval = flag.Duration("control-interval", time.Second, "control loop tick period")
		traceCap    = flag.Int("trace-cap", 4096, "arrival-trace ring size for /capacity replays")
		selftest    = flag.Bool("selftest", false, "boot on a loopback port, exercise the HTTP API, exit nonzero on failure")
	)
	flag.Parse()

	if *selftest {
		if err := runSelftest(*mode, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "hermes-serve selftest: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("hermes-serve selftest: OK")
		return
	}

	srv, rt, err := buildServer(serveConfig{
		backend:         *backend,
		mode:            *mode,
		workers:         *workers,
		buffer:          *buffer,
		maxInflight:     *maxInflight,
		jobTimeout:      *jobTimeout,
		control:         *ctlEnable,
		sweepModel:      *sweepModel,
		controlInterval: *ctlInterval,
		traceCap:        *traceCap,
	})
	if err != nil {
		log.Fatalf("hermes-serve: %v", err)
	}
	stop := make(chan struct{})
	if srv.ctl != nil && srv.ctl.Enabled() {
		go srv.ctl.Run(stop, *ctlInterval)
		log.Printf("hermes-serve: control loop running every %v (model %s)", *ctlInterval, *sweepModel)
	} else if srv.ctl != nil {
		log.Printf("hermes-serve: controller disabled: %s", srv.ctl.Status().Reason)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hermes-serve: %v", err)
	}
	log.Printf("hermes-serve: listening on %s (backend=%s mode=%s workers=%d max-inflight=%d buffer=%d)",
		ln.Addr(), rt.Backend(), rt.Config().Mode, rt.Config().Workers, *maxInflight, *buffer)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("hermes-serve: %v — draining", s)
	case err := <-errCh:
		log.Printf("hermes-serve: server error: %v", err)
	}

	// Shutdown order: stop accepting HTTP, drain in-flight requests
	// within -shutdown-grace, let in-flight jobs finish via
	// Runtime.Close (which then drains the async observer), report any
	// telemetry loss.
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutGrace)
	defer cancel()
	close(stop)
	log.Printf("hermes-serve: draining %d in-flight job(s) (grace %v)", len(srv.inflight), *shutGrace)
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("hermes-serve: http shutdown: %v (%d job(s) still in flight after %v grace)",
			err, len(srv.inflight), *shutGrace)
	}
	if err := rt.Close(); err != nil {
		log.Printf("hermes-serve: runtime close: %v", err)
	}
	if n := rt.EventsDropped(); n > 0 {
		log.Printf("hermes-serve: %d observer events dropped (raise -buffer to capture all)", n)
	}
	log.Printf("hermes-serve: bye")
}

// serveConfig is everything buildServer needs to assemble a server.
type serveConfig struct {
	backend, mode string
	workers       int
	buffer        int
	maxInflight   int
	jobTimeout    time.Duration

	// control enables the knee-aware admission controller; sweepModel
	// is the sweep artifact it calibrates against. The controller is
	// constructed either way (so /controlz always answers), but without
	// both it reports itself disabled and admits everything.
	control         bool
	sweepModel      string
	controlInterval time.Duration
	// traceCap bounds the arrival-trace ring behind /capacity
	// (<1 = default 4096).
	traceCap int
}

// buildServer assembles the observability pipeline, runtime and
// control plane behind a server: Observer events -> bounded async sink
// -> metrics registry -> /metrics, with the controller reading the
// registry back and deciding admission.
func buildServer(cfg serveConfig) (*server, *hermes.Runtime, error) {
	be, err := hermes.ParseBackend(cfg.backend)
	if err != nil {
		return nil, nil, err
	}
	m, err := hermes.ParseMode(cfg.mode)
	if err != nil {
		return nil, nil, err
	}
	reg := metrics.New()
	opts := []hermes.Option{
		hermes.WithBackend(be),
		hermes.WithMode(m),
		hermes.WithAsyncObserver(reg, cfg.buffer),
	}
	if cfg.workers > 0 {
		opts = append(opts, hermes.WithWorkers(cfg.workers))
	}
	rt, err := hermes.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	reg.SetDropSource(rt.EventsDropped)
	srv := newServer(rt, reg, cfg.maxInflight, cfg.jobTimeout)
	srv.trace = newTraceRing(cfg.traceCap, srv.started)

	// The controller always exists so /controlz and hermes_control_*
	// answer; it only acts when -control and a loadable model agree.
	ccfg := control.Config{Mode: m, Source: reg, Log: log.Printf}
	switch {
	case !cfg.control:
		ccfg.DisabledReason = "control loop not enabled (start with -control -sweep-model=...)"
	case cfg.sweepModel == "":
		ccfg.DisabledReason = "-control needs -sweep-model pointing at a sweep JSON artifact"
	default:
		model, err := sweep.LoadModel(cfg.sweepModel)
		if err != nil {
			ccfg.DisabledReason = fmt.Sprintf("capacity model unusable: %v", err)
		} else {
			ccfg.Model = model
			if be == hermes.Native {
				// Live tempo-mode switching is a Native capability; on
				// Sim the controller keeps admission control only.
				ccfg.Switcher = rt
			}
		}
	}
	srv.ctl = control.New(ccfg)
	reg.AddCollector(srv.ctl.WritePrometheus)
	return srv, rt, nil
}

// hermes-serve exposes a hermes.Runtime as an HTTP job-submission
// service — the open-system serving scenario the ROADMAP's north star
// names. Scheduler telemetry flows through a bounded asynchronous
// observer into a Prometheus-text /metrics endpoint, so a slow
// scraper can never stall the work-stealing hot path.
//
// Endpoints:
//
//	POST /jobs      submit a synthetic workload; 202 + job id, 429 over max in-flight
//	GET  /jobs/{id} job status: running / done / failed, sojourn, report.
//	                ?wait=<dur> long-polls until completion or the wait
//	                elapses (capped at 30s); completed jobs evicted from
//	                the retention window answer 410 status "pruned"
//	GET  /metrics   Prometheus text: steals, tempo switches, DVFS commits,
//	                power/energy, per-workload submissions and job latency
//	                histogram, dropped events
//	GET  /healthz   liveness + in-flight / drop counters
//
// Both backends serve concurrent jobs over one shared machine: real
// goroutine workers with -backend native, the deterministic
// discrete-event machine (virtual-time multiplexing) with -backend
// sim.
//
// Quickstart:
//
//	hermes-serve -addr :8080 -backend native -mode unified &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/jobs -d '{"workload":"fib","n":20}'
//	curl -s localhost:8080/jobs/1
//	curl -s localhost:8080/metrics | grep hermes_
//
// The async observer drops (and counts) events instead of blocking
// when its buffer overflows; watch hermes_observer_dropped_events_total
// and raise -buffer if it moves.
//
// -selftest boots the full server on a loopback port, drives it over
// real HTTP (submit, poll to completion, scrape /metrics) and exits
// nonzero on any failure — the CI smoke for the serving path.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hermes"
	"hermes/internal/metrics"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		backend     = flag.String("backend", "native", "execution backend: native or sim")
		mode        = flag.String("mode", "unified", "tempo mode: baseline, workpath, workload or unified")
		workers     = flag.Int("workers", 0, "worker count (0 = backend default)")
		buffer      = flag.Int("buffer", 1<<16, "async observer event buffer size")
		maxInflight = flag.Int("max-inflight", 1024, "max concurrently in-flight jobs before 429")
		jobTimeout  = flag.Duration("job-timeout", 2*time.Minute, "per-job execution timeout (0 = none)")
		selftest    = flag.Bool("selftest", false, "boot on a loopback port, exercise the HTTP API, exit nonzero on failure")
	)
	flag.Parse()

	if *selftest {
		if err := runSelftest(*mode, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "hermes-serve selftest: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("hermes-serve selftest: OK")
		return
	}

	srv, rt, err := buildServer(*backend, *mode, *workers, *buffer, *maxInflight, *jobTimeout)
	if err != nil {
		log.Fatalf("hermes-serve: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("hermes-serve: %v", err)
	}
	log.Printf("hermes-serve: listening on %s (backend=%s mode=%s workers=%d max-inflight=%d buffer=%d)",
		ln.Addr(), rt.Backend(), rt.Config().Mode, rt.Config().Workers, *maxInflight, *buffer)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("hermes-serve: %v — draining", s)
	case err := <-errCh:
		log.Printf("hermes-serve: server error: %v", err)
	}

	// Shutdown order: stop accepting HTTP, let in-flight jobs finish
	// via Runtime.Close (which then drains the async observer), report
	// any telemetry loss.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("hermes-serve: http shutdown: %v", err)
	}
	if err := rt.Close(); err != nil {
		log.Printf("hermes-serve: runtime close: %v", err)
	}
	if n := rt.EventsDropped(); n > 0 {
		log.Printf("hermes-serve: %d observer events dropped (raise -buffer to capture all)", n)
	}
	log.Printf("hermes-serve: bye")
}

// buildServer assembles the observability pipeline and runtime behind
// a server: Observer events -> bounded async sink -> metrics registry
// -> /metrics.
func buildServer(backend, mode string, workers, buffer, maxInflight int, jobTimeout time.Duration) (*server, *hermes.Runtime, error) {
	be, err := hermes.ParseBackend(backend)
	if err != nil {
		return nil, nil, err
	}
	m, err := hermes.ParseMode(mode)
	if err != nil {
		return nil, nil, err
	}
	reg := metrics.New()
	opts := []hermes.Option{
		hermes.WithBackend(be),
		hermes.WithMode(m),
		hermes.WithAsyncObserver(reg, buffer),
	}
	if workers > 0 {
		opts = append(opts, hermes.WithWorkers(workers))
	}
	rt, err := hermes.New(opts...)
	if err != nil {
		return nil, nil, err
	}
	reg.SetDropSource(rt.EventsDropped)
	return newServer(rt, reg, maxInflight, jobTimeout), rt, nil
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hermes/internal/metrics"
)

// newTestServer boots the full pipeline (runtime + async observer +
// metrics + HTTP mux) behind an httptest server.
func newTestServer(t *testing.T, maxInflight, buffer int) (*httptest.Server, *server) {
	t.Helper()
	srv, rt, err := buildServer(serveConfig{backend: "native", mode: "unified", workers: 4, buffer: buffer, maxInflight: maxInflight, jobTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return ts, srv
}

func postJob(t *testing.T, base, spec string) (int64, int) {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return 0, resp.StatusCode
	}
	var out struct {
		ID int64 `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad accept body %q: %v", body, err)
	}
	return out.ID, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("bad body %q: %v", body, err)
		}
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, base string, id int64, timeout time.Duration) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var st jobStatusJSON
		if code := getJSON(t, fmt.Sprintf("%s/jobs/%d", base, id), &st); code != http.StatusOK {
			t.Fatalf("job %d: HTTP %d", id, code)
		}
		if st.Status != "running" {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d not done after %v", id, timeout)
	return jobStatusJSON{}
}

func TestSubmitPollReport(t *testing.T) {
	ts, _ := newTestServer(t, 64, 1<<16)
	id, code := postJob(t, ts.URL, `{"workload":"fib","n":16}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	st := waitDone(t, ts.URL, id, 30*time.Second)
	if st.Status != "done" || st.Report == nil {
		t.Fatalf("bad final status: %+v", st)
	}
	if st.Report.Tasks == 0 || st.Report.EnergyJ <= 0 || st.SojournMS <= 0 {
		t.Fatalf("degenerate report: %+v", st.Report)
	}
	if st.Workload.Kind != "fib" || st.Workload.N != 16 {
		t.Fatalf("spec not echoed: %+v", st.Workload)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)
	for _, spec := range []string{
		`{"workload":"nope"}`,
		`{"workload":"fib","n":1000}`,
		`{"workload":"ticks","memfrac":7}`,
		`not json`,
		`{"workload":"fib","bogus_field":1}`,
	} {
		if _, code := postJob(t, ts.URL, spec); code != http.StatusBadRequest {
			t.Errorf("submit %s: HTTP %d, want 400", spec, code)
		}
	}
	var v map[string]any
	if code := getJSON(t, ts.URL+"/jobs/99999", &v); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/abc", &v); code != http.StatusBadRequest {
		t.Errorf("bad job id: HTTP %d, want 400", code)
	}
}

func TestAdmissionControl(t *testing.T) {
	ts, _ := newTestServer(t, 2, 1<<12)
	// Two slow jobs fill the in-flight window...
	long := `{"workload":"ticks","n":64,"grain":1,"work":20000000}`
	for i := 0; i < 2; i++ {
		if _, code := postJob(t, ts.URL, long); code != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d", i, code)
		}
	}
	// ...so the third must be refused, not queued.
	if _, code := postJob(t, ts.URL, long); code != http.StatusTooManyRequests {
		t.Fatalf("over-admission submit: HTTP %d, want 429", code)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 16, 1<<12)
	var h struct {
		OK          bool   `json:"ok"`
		Backend     string `json:"backend"`
		MaxInflight int    `json:"max_inflight"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if !h.OK || h.Backend != "native" || h.MaxInflight != 16 {
		t.Fatalf("healthz fields wrong: %+v", h)
	}
}

// TestSustains200InflightWithZeroEventLoss is the PR's acceptance
// bar: the server holds >= 200 concurrently in-flight jobs, completes
// them all, and the async observability pipeline (sized above the
// event volume) loses nothing.
func TestSustains200InflightWithZeroEventLoss(t *testing.T) {
	const jobs = 250
	ts, srv := newTestServer(t, 512, 1<<18)
	// Each job is ~40ms of accounted work: slow enough that all 250
	// are in flight together once submitted, fast enough to finish
	// the run promptly.
	spec := `{"workload":"ticks","n":32,"grain":4,"work":3000000}`

	var wg sync.WaitGroup
	ids := make([]int64, jobs)
	var rejected atomic.Int64
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, code := postJob(t, ts.URL, spec)
			switch code {
			case http.StatusAccepted:
				ids[i] = id
			case http.StatusTooManyRequests:
				rejected.Add(1)
			default:
				t.Errorf("job %d: HTTP %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	if got := rejected.Load(); got != 0 {
		t.Fatalf("%d of %d jobs rejected below the max-inflight limit", got, jobs)
	}
	for _, id := range ids {
		if st := waitDone(t, ts.URL, id, 60*time.Second); st.Status != "done" {
			t.Fatalf("job %d finished %q: %s", id, st.Status, st.Error)
		}
	}

	if peak := srv.peak.Load(); peak < 200 {
		t.Fatalf("peak in-flight %d, want >= 200 (did submissions serialize?)", peak)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	vals := metrics.ParseText(string(body))
	if got := vals["hermes_jobs_completed_total"]; got < jobs {
		t.Fatalf("metrics saw %g completed jobs, want >= %d", got, jobs)
	}
	if dropped := vals["hermes_observer_dropped_events_total"]; dropped != 0 {
		t.Fatalf("%g events dropped below the configured buffer size", dropped)
	}
	if vals["hermes_job_latency_seconds_count"] < jobs {
		t.Fatalf("latency histogram observed %g jobs, want >= %d",
			vals["hermes_job_latency_seconds_count"], jobs)
	}
}

// TestLongPollStatus pins GET /jobs/{id}?wait: the handler holds the
// request until the job completes instead of answering "running", so
// a single request observes completion with no client-side poll loop.
func TestLongPollStatus(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)
	// ~80ms of accounted work: long enough that an immediate status
	// read says "running".
	id, code := postJob(t, ts.URL, `{"workload":"ticks","n":32,"grain":4,"work":6000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	var quick jobStatusJSON
	if code := getJSON(t, fmt.Sprintf("%s/jobs/%d", ts.URL, id), &quick); code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	if quick.Status != "running" {
		t.Skipf("job finished before the handler could be observed running (%q)", quick.Status)
	}
	var st jobStatusJSON
	if code := getJSON(t, fmt.Sprintf("%s/jobs/%d?wait=30s", ts.URL, id), &st); code != http.StatusOK {
		t.Fatalf("long-poll: HTTP %d", code)
	}
	if st.Status != "done" {
		t.Fatalf("long-poll returned %q, want done (wait not honoured)", st.Status)
	}
	if st.Report == nil || st.Report.SojournMS <= 0 {
		t.Fatalf("long-poll result missing backend sojourn: %+v", st.Report)
	}
	// A malformed wait is a client error, not a hang.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d?wait=nonsense", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestPrunedJobAnswers410 pins the eviction contract: a completed job
// whose record fell out of the retention window answers 410 with
// status "pruned" — distinguishable from both "no such job" (404) and
// a failure.
func TestPrunedJobAnswers410(t *testing.T) {
	ts, srv := newTestServer(t, 8, 1<<12)
	srv.retainDone = 2
	var ids []int64
	for i := 0; i < 4; i++ {
		id, code := postJob(t, ts.URL, `{"workload":"ticks","n":4,"grain":4,"work":100000}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		// Drive each job to completion before the next so eviction
		// order is deterministic.
		st := waitDoneOrPruned(t, ts.URL, id, 30*time.Second)
		if st.Status != "done" && st.Status != "pruned" {
			t.Fatalf("job %d finished %q", id, st.Status)
		}
		ids = append(ids, id)
	}
	// Retention 2 with 4 completions: the first job is evicted by now.
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, ids[0]))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted job: HTTP %d (%s), want 410", resp.StatusCode, body)
	}
	var st jobStatusJSON
	if err := json.Unmarshal(body, &st); err != nil || st.Status != "pruned" {
		t.Fatalf("evicted job body %q, want status pruned", body)
	}
	// Ids never issued stay 404.
	var v map[string]any
	if code := getJSON(t, ts.URL+"/jobs/99999", &v); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", code)
	}
}

// waitDoneOrPruned is waitDone tolerating eviction races (tiny
// retention windows in tests).
func waitDoneOrPruned(t *testing.T, base string, id int64, timeout time.Duration) jobStatusJSON {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("%s/jobs/%d?wait=5s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st jobStatusJSON
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job %d: bad body %q", id, body)
		}
		if resp.StatusCode == http.StatusGone || st.Status != "running" {
			return st
		}
	}
	t.Fatalf("job %d not done after %v", id, timeout)
	return jobStatusJSON{}
}

// TestServeOnSimBackend: the serving path now runs on the
// deterministic simulator too — concurrent HTTP jobs multiplex inside
// the discrete-event machine instead of serializing.
func TestServeOnSimBackend(t *testing.T) {
	srv, rt, err := buildServer(serveConfig{backend: "sim", mode: "unified", workers: 4, buffer: 1 << 16, maxInflight: 64, jobTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer func() {
		ts.Close()
		rt.Close()
	}()
	var ids []int64
	for i := 0; i < 6; i++ {
		id, code := postJob(t, ts.URL, `{"workload":"fib","n":14}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		st := waitDoneOrPruned(t, ts.URL, id, 30*time.Second)
		if st.Status != "done" {
			t.Fatalf("sim job %d finished %q: %s", id, st.Status, st.Error)
		}
		if st.Report == nil || st.Report.SojournMS <= 0 {
			t.Fatalf("sim job %d missing virtual sojourn: %+v", id, st.Report)
		}
	}
}

// TestPerWorkloadMetricsLabels: the /metrics fold labels submissions
// and latency by workload kind.
func TestPerWorkloadMetricsLabels(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)
	for _, spec := range []string{`{"workload":"fib","n":12}`, `{"workload":"ticks","n":16}`} {
		id, code := postJob(t, ts.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d", spec, code)
		}
		waitDone(t, ts.URL, id, 30*time.Second)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`hermes_jobs_submitted_total{workload="fib"} 1`,
		`hermes_jobs_submitted_total{workload="ticks"} 1`,
		`hermes_job_latency_seconds_count{workload="fib"}`,
		`hermes_job_latency_seconds_count{workload="ticks"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	vals := metrics.ParseText(text)
	if vals["hermes_jobs_submitted_total"] < 2 {
		t.Errorf("bare-name submitted fold = %g, want >= 2", vals["hermes_jobs_submitted_total"])
	}
}

func TestMetricsSeriesPresent(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)
	// One job per workload kind plus one per service class:
	// selftestSeries includes the labeled per-kind families and the
	// class-labeled (workload, tenant, priority) families.
	for _, spec := range []string{
		`{"workload":"fib","n":12}`, `{"workload":"matmul","n":24}`, `{"workload":"ticks","n":16}`,
		`{"workload":"ticks","n":16,"tenant":"batch"}`,
		`{"workload":"ticks","n":16,"tenant":"lc","priority":1}`,
		`{"workload":"ticks","n":16,"tenant":"lc","priority":2}`,
	} {
		id, _ := postJob(t, ts.URL, spec)
		waitDone(t, ts.URL, id, 30*time.Second)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, series := range selftestSeries {
		if !strings.Contains(text, series) {
			t.Errorf("scrape missing series %s", series)
		}
	}
}

// TestJobIndex covers GET /jobs: every retained record listed sorted
// by id with workload kind, status and (when done) sojourn; the
// response stays bounded by the retention window; status and limit
// filters apply.
func TestJobIndex(t *testing.T) {
	ts, srv := newTestServer(t, 8, 1<<12)
	srv.retainDone = 3
	var ids []int64
	for i := 0; i < 5; i++ {
		id, code := postJob(t, ts.URL, `{"workload":"ticks","n":4,"grain":4,"work":100000}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		st := waitDoneOrPruned(t, ts.URL, id, 30*time.Second)
		if st.Status != "done" && st.Status != "pruned" {
			t.Fatalf("job %d finished %q", id, st.Status)
		}
		ids = append(ids, id)
	}
	var idx jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs", &idx); code != http.StatusOK {
		t.Fatalf("index: HTTP %d", code)
	}
	// 5 completions against retention 3: the index is bounded by the
	// window, and the highest ids survive.
	if idx.Count != 3 || len(idx.Jobs) != 3 || idx.Indexed != 3 {
		t.Fatalf("index size: %+v", idx)
	}
	if idx.MaxID != ids[len(ids)-1] {
		t.Fatalf("index max_id %d, want %d", idx.MaxID, ids[len(ids)-1])
	}
	if idx.RetainDone != 3 {
		t.Fatalf("index retain_done %d, want 3", idx.RetainDone)
	}
	for i, e := range idx.Jobs {
		if i > 0 && idx.Jobs[i-1].ID >= e.ID {
			t.Fatalf("index not sorted by id: %+v", idx.Jobs)
		}
		if e.Workload != "ticks" {
			t.Errorf("job %d workload %q, want ticks", e.ID, e.Workload)
		}
		if e.Status != "done" {
			t.Errorf("job %d status %q, want done", e.ID, e.Status)
		}
		if e.SojournMS <= 0 {
			t.Errorf("job %d completed with sojourn %g", e.ID, e.SojournMS)
		}
	}

	// A running job appears with status "running" and no sojourn, and
	// the status filter separates it from the completed ones.
	slowID, code := postJob(t, ts.URL, `{"workload":"ticks","n":256,"grain":4,"work":100000000}`)
	if code != http.StatusAccepted {
		t.Fatalf("slow submit: HTTP %d", code)
	}
	var running jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?status=running", &running); code != http.StatusOK {
		t.Fatalf("index?status=running: HTTP %d", code)
	}
	if running.Count != 1 || running.Jobs[0].ID != slowID || running.Jobs[0].SojournMS != 0 {
		t.Fatalf("running filter: %+v", running)
	}
	var done jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?status=done", &done); code != http.StatusOK {
		t.Fatalf("index?status=done: HTTP %d", code)
	}
	if done.Count != 3 {
		t.Fatalf("done filter count %d, want 3: %+v", done.Count, done)
	}

	// limit keeps the most recent (highest-id) rows.
	var limited jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?limit=2", &limited); code != http.StatusOK {
		t.Fatalf("index?limit=2: HTTP %d", code)
	}
	if limited.Count != 2 || limited.Jobs[1].ID != slowID {
		t.Fatalf("limit filter: %+v", limited)
	}

	// Bad filters are rejected loudly.
	var v map[string]any
	if code := getJSON(t, ts.URL+"/jobs?status=nope", &v); code != http.StatusBadRequest {
		t.Fatalf("bad status filter: HTTP %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/jobs?limit=-1", &v); code != http.StatusBadRequest {
		t.Fatalf("bad limit: HTTP %d, want 400", code)
	}
	waitDoneOrPruned(t, ts.URL, slowID, 60*time.Second)
}

// TestJobIndexWorkloadFilter covers GET /jobs?workload=: rows filter
// by workload kind, the filter composes with status and limit, and
// unknown kinds are rejected loudly.
func TestJobIndexWorkloadFilter(t *testing.T) {
	ts, srv := newTestServer(t, 8, 1<<12)
	srv.retainDone = 16
	submit := func(body string) int64 {
		t.Helper()
		id, code := postJob(t, ts.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d", body, code)
		}
		if st := waitDoneOrPruned(t, ts.URL, id, 30*time.Second); st.Status != "done" {
			t.Fatalf("job %d finished %q", id, st.Status)
		}
		return id
	}
	var tickIDs, fibIDs []int64
	for i := 0; i < 3; i++ {
		tickIDs = append(tickIDs, submit(`{"workload":"ticks","n":4,"grain":4,"work":100000}`))
	}
	for i := 0; i < 2; i++ {
		fibIDs = append(fibIDs, submit(`{"workload":"fib","n":10,"grain":4}`))
	}

	var fib jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?workload=fib", &fib); code != http.StatusOK {
		t.Fatalf("index?workload=fib: HTTP %d", code)
	}
	if fib.Count != len(fibIDs) {
		t.Fatalf("fib filter count %d, want %d: %+v", fib.Count, len(fibIDs), fib)
	}
	for _, e := range fib.Jobs {
		if e.Workload != "fib" {
			t.Fatalf("fib filter leaked %+v", e)
		}
	}
	// Composes with status: every ticks job is done, so the pair of
	// filters returns exactly the ticks set.
	var done jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?workload=ticks&status=done", &done); code != http.StatusOK {
		t.Fatalf("index?workload=ticks&status=done: HTTP %d", code)
	}
	if done.Count != len(tickIDs) {
		t.Fatalf("composed filter count %d, want %d", done.Count, len(tickIDs))
	}
	// ...and with limit, keeping the highest-id matching row.
	var limited jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?workload=fib&limit=1", &limited); code != http.StatusOK {
		t.Fatalf("index?workload=fib&limit=1: HTTP %d", code)
	}
	if limited.Count != 1 || limited.Jobs[0].ID != fibIDs[len(fibIDs)-1] {
		t.Fatalf("workload+limit filter: %+v", limited)
	}
	// No matches is an empty result, not an error.
	var none jobIndexJSON
	if code := getJSON(t, ts.URL+"/jobs?workload=matmul", &none); code != http.StatusOK || none.Count != 0 {
		t.Fatalf("empty match: HTTP %d, %+v", code, none)
	}
	// Unknown kinds are a client error.
	var v map[string]any
	if code := getJSON(t, ts.URL+"/jobs?workload=bitcoin", &v); code != http.StatusBadRequest {
		t.Fatalf("bad workload filter: HTTP %d, want 400", code)
	}
}

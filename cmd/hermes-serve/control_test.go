package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hermes"
	"hermes/internal/control"
	"hermes/internal/sweep"
	"hermes/internal/workload"
)

// tinyKneeModel builds a capacity model whose knee is absurdly low, so
// any real traffic trips the controller.
func tinyKneeModel(t *testing.T, kneeRPS float64) *sweep.Model {
	t.Helper()
	res := sweep.Result{
		Workload:   workload.Spec{Kind: "ticks", N: 64},
		RatesRPS:   []float64{1, 10, 100},
		KneeFactor: 5,
	}
	for _, m := range []string{"baseline", "hermes"} {
		k := kneeRPS
		c := sweep.Curve{Mode: m, UnloadedP50MS: 1, KneeRPS: &k}
		for range res.RatesRPS {
			c.Points = append(c.Points, sweep.Point{JoulesPerRequest: 0.5})
		}
		res.Curves = append(res.Curves, c)
	}
	model, err := sweep.ModelFromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

// TestControlzDisabledByDefault pins the contract that /controlz always
// answers, reporting exactly why the controller is not acting.
func TestControlzDisabledByDefault(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)
	var st control.Status
	if code := getJSON(t, ts.URL+"/controlz", &st); code != http.StatusOK {
		t.Fatalf("/controlz: HTTP %d", code)
	}
	if st.Enabled {
		t.Fatalf("controller enabled without -control: %+v", st)
	}
	if !strings.Contains(st.Reason, "-control") {
		t.Fatalf("disabled reason should mention the flag, got %q", st.Reason)
	}
	if st.State != "disabled" {
		t.Fatalf("state = %q, want disabled", st.State)
	}
}

// TestControllerShedding429 drives the controller into Shedding and
// checks the serving path refuses with the control-plane 429 — a body
// distinct from the semaphore's max-in-flight message, plus a
// Retry-After hint.
func TestControllerShedding429(t *testing.T) {
	ts, srv := newTestServer(t, 64, 1<<16)
	ctl := control.New(control.Config{
		Model:  tinyKneeModel(t, 1),
		Mode:   hermes.Unified,
		Source: srv.reg,
	})
	if !ctl.Enabled() {
		t.Fatalf("controller did not enable: %s", ctl.Status().Reason)
	}
	srv.ctl = ctl

	// Offer far more than the 1 rps knee across two ticks (EnterTicks).
	for tick := 0; tick < 2; tick++ {
		for i := 0; i < 100; i++ {
			ctl.Admit()
		}
		ctl.Tick(time.Second)
	}
	if got := ctl.State(); got != control.Shedding {
		t.Fatalf("state = %v, want Shedding", got)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"workload":"fib","n":10}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: HTTP %d, want 429", resp.StatusCode)
	}
	if !strings.Contains(string(body), "shedding") {
		t.Fatalf("shed 429 body should say shedding, got %q", body)
	}
	if strings.Contains(string(body), "in-flight") {
		t.Fatalf("shed 429 must be distinct from the semaphore message, got %q", body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	if shed := ctl.Status().Shed; shed < 1 {
		t.Fatalf("shed_total = %d, want >= 1", shed)
	}
}

// TestCapacityReplayDeterministic pins the /capacity contract: 409
// before any trace exists, byte-identical JSON across repeated queries
// once it does, and 400s for malformed scale or mode.
func TestCapacityReplayDeterministic(t *testing.T) {
	ts, _ := newTestServer(t, 8, 1<<12)

	resp, err := http.Get(ts.URL + "/capacity")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("empty-trace /capacity: HTTP %d, want 409", resp.StatusCode)
	}

	for _, spec := range []string{
		`{"workload":"fib","n":12}`,
		`{"workload":"ticks","n":64}`,
		`{"workload":"matmul","n":16}`,
	} {
		id, code := postJob(t, ts.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: HTTP %d", spec, code)
		}
		waitDone(t, ts.URL, id, 30*time.Second)
	}

	fetch := func(q string) ([]byte, int) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/capacity" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return body, resp.StatusCode
	}

	b1, code := fetch("?scale=2.5")
	if code != http.StatusOK {
		t.Fatalf("/capacity: HTTP %d: %s", code, b1)
	}
	b2, _ := fetch("?scale=2.5")
	if !bytes.Equal(b1, b2) {
		t.Fatalf("capacity replay not byte-identical:\n%s\n---\n%s", b1, b2)
	}
	var out capacityJSON
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceLen != 3 || out.Prediction.Completed != 3 {
		t.Fatalf("replayed %d arrivals / completed %d, want 3/3", out.TraceLen, out.Prediction.Completed)
	}
	if out.Scale != 2.5 {
		t.Fatalf("scale = %g, want 2.5", out.Scale)
	}

	// An explicit ?mode= must change the simulated mode, not error.
	bBase, code := fetch("?scale=2.5&mode=baseline")
	if code != http.StatusOK {
		t.Fatalf("/capacity mode=baseline: HTTP %d", code)
	}
	var outBase capacityJSON
	if err := json.Unmarshal(bBase, &outBase); err != nil {
		t.Fatal(err)
	}
	if outBase.Mode != "baseline" {
		t.Fatalf("mode = %q, want baseline", outBase.Mode)
	}

	for _, q := range []string{"?scale=0", "?scale=-1", "?scale=NaN", "?scale=1e9", "?mode=warp"} {
		if _, code := fetch(q); code != http.StatusBadRequest {
			t.Fatalf("/capacity%s: HTTP %d, want 400", q, code)
		}
	}
}

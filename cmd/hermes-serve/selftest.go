package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"hermes/internal/metrics"
)

// selftestSeries are the /metrics series the CI smoke requires to be
// present after jobs have run — the steal/tempo/DVFS/energy/latency
// observability surface the serving layer promises.
var selftestSeries = []string{
	"hermes_steals_total",
	"hermes_tempo_switches_total",
	"hermes_dvfs_commits_total",
	"hermes_energy_joules",
	"hermes_power_watts",
	"hermes_job_energy_joules_total",
	"hermes_job_latency_seconds_bucket",
	"hermes_job_latency_seconds_count",
	"hermes_jobs_completed_total",
	"hermes_observer_dropped_events_total",
	`hermes_jobs_submitted_total{workload="fib"}`,
	`hermes_jobs_submitted_total{workload="matmul"}`,
	`hermes_jobs_submitted_total{workload="ticks"}`,
	`hermes_job_latency_seconds_count{workload="fib"}`,
}

// runSelftest boots the full server on a loopback port and exercises
// it the way a client would: health check, one job of each workload
// kind submitted over HTTP, polled to completion, then a /metrics
// scrape validated series-by-series.
func runSelftest(mode string, workers int) error {
	srv, rt, err := buildServer("native", mode, workers, 1<<16, 64, time.Minute)
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("selftest: serving on %s\n", base)

	if err := expectOK(base + "/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	specs := []string{
		`{"workload":"fib","n":18}`,
		`{"workload":"matmul","n":48}`,
		`{"workload":"ticks","n":128}`,
	}
	var ids []int64
	for _, spec := range specs {
		id, err := submit(base, spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", spec, err)
		}
		fmt.Printf("selftest: submitted %s -> job %d\n", spec, id)
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := pollDone(base, id, 60*time.Second); err != nil {
			return fmt.Errorf("job %d: %w", id, err)
		}
		fmt.Printf("selftest: job %d done\n", id)
	}

	// A rejected bad spec must 400, not enqueue garbage.
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("bad workload: got HTTP %d, want 400", resp.StatusCode)
	}

	text, err := get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range selftestSeries {
		if !strings.Contains(text, series) {
			return fmt.Errorf("metrics: series %s missing from scrape", series)
		}
	}
	vals := metrics.ParseText(text)
	if got := vals["hermes_jobs_completed_total"]; got < float64(len(ids)) {
		return fmt.Errorf("metrics: hermes_jobs_completed_total = %g, want >= %d", got, len(ids))
	}
	if vals["hermes_job_energy_joules_total"] <= 0 {
		return fmt.Errorf("metrics: no job energy accounted")
	}
	if vals["hermes_job_latency_seconds_count"] < float64(len(ids)) {
		return fmt.Errorf("metrics: latency histogram did not observe all jobs")
	}
	if dropped := vals["hermes_observer_dropped_events_total"]; dropped != 0 {
		return fmt.Errorf("metrics: %g observer events dropped below buffer size", dropped)
	}
	fmt.Printf("selftest: metrics OK (%d series checked, %g jobs completed, %.3f J attributed)\n",
		len(selftestSeries), vals["hermes_jobs_completed_total"], vals["hermes_job_energy_joules_total"])
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return string(body), nil
}

func expectOK(url string) error {
	_, err := get(url)
	return err
}

func submit(base, spec string) (int64, error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out struct {
		ID int64 `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

func pollDone(base string, id int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		body, err := get(fmt.Sprintf("%s/jobs/%d", base, id))
		if err != nil {
			return err
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			return err
		}
		switch st.Status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job failed: %s", st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("not done after %v", timeout)
}

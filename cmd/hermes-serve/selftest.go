package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"hermes"
	"hermes/internal/metrics"
	"hermes/internal/sweep"
	"hermes/internal/workload"
)

// selftestSeries are the /metrics series the CI smoke requires to be
// present after jobs have run — the steal/tempo/DVFS/energy/latency
// observability surface the serving layer promises.
var selftestSeries = []string{
	"hermes_control_enabled",
	"hermes_control_state",
	"hermes_control_offered_rps",
	"hermes_control_shed_total",
	"hermes_control_mode_switches_total",
	"hermes_steals_total",
	"hermes_tempo_switches_total",
	"hermes_dvfs_commits_total",
	"hermes_energy_joules",
	"hermes_power_watts",
	"hermes_job_energy_joules_total",
	"hermes_job_latency_seconds_bucket",
	"hermes_job_latency_seconds_count",
	"hermes_jobs_completed_total",
	"hermes_observer_dropped_events_total",
	`hermes_jobs_submitted_total{workload="fib"}`,
	`hermes_jobs_submitted_total{workload="matmul"}`,
	`hermes_jobs_submitted_total{workload="ticks"}`,
	`hermes_job_latency_seconds_count{workload="fib"}`,
	// Class-labeled series: the selftest submits one ticks job per
	// service class below, and each must land in its own
	// (workload, tenant, priority) series while the unclassed ticks
	// series above stays label-compatible with pre-tenancy scrapes.
	`hermes_jobs_submitted_total{workload="ticks",tenant="batch",priority="0"}`,
	`hermes_jobs_submitted_total{workload="ticks",tenant="lc",priority="1"}`,
	`hermes_jobs_submitted_total{workload="ticks",tenant="lc",priority="2"}`,
	`hermes_job_latency_seconds_count{workload="ticks",tenant="lc",priority="1"}`,
	"hermes_control_shed_floor",
}

// selftestModel writes a synthetic sweep artifact to a temp file: one
// curve per tempo mode, knees resolved far above any load the selftest
// offers (so the controller enables without ever shedding), with the
// boot mode cheapest so the mode actuator stays put.
func selftestModel(bootMode string) (string, error) {
	rates := []float64{100, 1_000, 10_000}
	knee := 10_000.0
	res := sweep.Result{
		Workload:   workload.Spec{Kind: "ticks", N: 128},
		RatesRPS:   rates,
		KneeFactor: 5,
	}
	for _, m := range []string{"baseline", "workpath", "workload", "hermes"} {
		j := 0.5
		if m == bootMode {
			j = 0.1
		}
		c := sweep.Curve{Mode: m, UnloadedP50MS: 1_000, KneeRPS: &knee}
		for range rates {
			c.Points = append(c.Points, sweep.Point{JoulesPerRequest: j})
		}
		res.Curves = append(res.Curves, c)
	}
	data, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	f, err := os.CreateTemp("", "hermes-selftest-sweep-*.json")
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", err
	}
	return f.Name(), f.Close()
}

// runSelftest boots the full server on a loopback port and exercises
// it the way a client would: health check, one job of each workload
// kind submitted over HTTP, polled to completion, the /capacity
// digital twin replayed twice (byte-identical), /controlz read, then a
// /metrics scrape validated series-by-series.
func runSelftest(mode string, workers int) error {
	m, err := hermes.ParseMode(mode)
	if err != nil {
		return err
	}
	modelPath, err := selftestModel(m.String())
	if err != nil {
		return err
	}
	defer os.Remove(modelPath)
	srv, rt, err := buildServer(serveConfig{
		backend: "native", mode: mode, workers: workers,
		buffer: 1 << 16, maxInflight: 64, jobTimeout: time.Minute,
		control: true, sweepModel: modelPath, controlInterval: 100 * time.Millisecond,
		traceCap: 1024,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	if !srv.ctl.Enabled() {
		return fmt.Errorf("controller did not enable: %s", srv.ctl.Status().Reason)
	}
	stop := make(chan struct{})
	defer close(stop)
	go srv.ctl.Run(stop, 100*time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("selftest: serving on %s\n", base)

	if err := expectOK(base + "/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Before any job: the digital twin has nothing to replay.
	if resp, err := http.Get(base + "/capacity"); err != nil {
		return err
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			return fmt.Errorf("empty-trace /capacity: got HTTP %d, want 409", resp.StatusCode)
		}
	}

	// The workload catalog drives the submissions: fetch GET
	// /workloads, check it agrees with the registry, then submit one
	// default-spec job per listed kind — serve's catalog can never
	// drift from what POST /jobs accepts.
	catBody, err := get(base + "/workloads")
	if err != nil {
		return fmt.Errorf("workloads: %w", err)
	}
	var cat struct {
		Count     int `json:"count"`
		Workloads []struct {
			Name string `json:"name"`
			Desc string `json:"desc"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal([]byte(catBody), &cat); err != nil {
		return fmt.Errorf("workloads: %w", err)
	}
	want := workload.Names()
	if cat.Count != len(want) || len(cat.Workloads) != len(want) {
		return fmt.Errorf("workloads: catalog lists %d kinds, registry has %d", cat.Count, len(want))
	}
	for i, entry := range cat.Workloads {
		if entry.Name != want[i] {
			return fmt.Errorf("workloads: catalog[%d] = %q, registry has %q", i, entry.Name, want[i])
		}
		if entry.Desc == "" {
			return fmt.Errorf("workloads: %q has no description", entry.Name)
		}
	}
	fmt.Printf("selftest: /workloads catalog OK (%d kinds)\n", cat.Count)

	var ids []int64
	for _, entry := range cat.Workloads {
		spec := fmt.Sprintf(`{"workload":%q}`, entry.Name)
		id, err := submit(base, spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", spec, err)
		}
		fmt.Printf("selftest: submitted %s -> job %d\n", spec, id)
		ids = append(ids, id)
	}

	// Service classes: one job per priority class, so the scrape below
	// can assert the class-labeled series exist alongside the unclassed
	// ones.
	classSubmits := []struct {
		tenant   string
		priority int
	}{
		{"batch", 0},
		{"lc", 1},
		{"lc", 2},
	}
	for _, cs := range classSubmits {
		spec := fmt.Sprintf(`{"workload":"ticks","tenant":%q,"priority":%d}`, cs.tenant, cs.priority)
		id, err := submit(base, spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", spec, err)
		}
		fmt.Printf("selftest: submitted %s -> job %d\n", spec, id)
		ids = append(ids, id)
	}

	for _, id := range ids {
		if err := pollDone(base, id, 60*time.Second); err != nil {
			return fmt.Errorf("job %d: %w", id, err)
		}
		fmt.Printf("selftest: job %d done\n", id)
	}

	// The tenant filter composes with the index: the lc jobs and only
	// they come back, and an unknown tenant yields an empty list (200,
	// not 400 — tenants are free-form).
	idxBody, err := get(base + "/jobs?tenant=lc")
	if err != nil {
		return fmt.Errorf("jobs?tenant=lc: %w", err)
	}
	var idxOut struct {
		Count int `json:"count"`
		Jobs  []struct {
			ID     int64  `json:"id"`
			Tenant string `json:"tenant"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(idxBody), &idxOut); err != nil {
		return fmt.Errorf("jobs?tenant=lc: %w", err)
	}
	if idxOut.Count != 2 {
		return fmt.Errorf("jobs?tenant=lc: got %d rows, want 2", idxOut.Count)
	}
	for _, row := range idxOut.Jobs {
		if row.Tenant != "lc" {
			return fmt.Errorf("jobs?tenant=lc: row %d has tenant %q", row.ID, row.Tenant)
		}
	}
	emptyBody, err := get(base + "/jobs?tenant=nobody")
	if err != nil {
		return fmt.Errorf("jobs?tenant=nobody: %w", err)
	}
	var emptyOut struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(emptyBody), &emptyOut); err != nil {
		return fmt.Errorf("jobs?tenant=nobody: %w", err)
	}
	if emptyOut.Count != 0 {
		return fmt.Errorf("jobs?tenant=nobody: got %d rows, want 0", emptyOut.Count)
	}
	fmt.Printf("selftest: /jobs?tenant= filter OK (2 lc rows, unknown tenant empty)\n")

	// A rejected bad spec must 400, not enqueue garbage.
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("bad workload: got HTTP %d, want 400", resp.StatusCode)
	}

	// The digital twin: replay the captured trace at 2× rate, twice —
	// the Sim replay is deterministic, so the responses must be
	// byte-identical.
	cap1, err := get(base + "/capacity?scale=2")
	if err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	cap2, err := get(base + "/capacity?scale=2")
	if err != nil {
		return fmt.Errorf("capacity (second): %w", err)
	}
	if cap1 != cap2 {
		return fmt.Errorf("capacity replay not deterministic:\n%s\n---\n%s", cap1, cap2)
	}
	var capOut struct {
		TraceLen   int `json:"trace_len"`
		Prediction struct {
			Completed int64 `json:"completed"`
		} `json:"prediction"`
	}
	if err := json.Unmarshal([]byte(cap1), &capOut); err != nil {
		return fmt.Errorf("capacity: %w", err)
	}
	if capOut.TraceLen != len(ids) || capOut.Prediction.Completed != int64(len(ids)) {
		return fmt.Errorf("capacity replayed %d arrivals / completed %d, want %d",
			capOut.TraceLen, capOut.Prediction.Completed, len(ids))
	}
	fmt.Printf("selftest: /capacity deterministic (%d arrivals replayed at 2x)\n", capOut.TraceLen)

	// Control plane status.
	ctlBody, err := get(base + "/controlz")
	if err != nil {
		return fmt.Errorf("controlz: %w", err)
	}
	var ctlOut struct {
		Enabled bool   `json:"enabled"`
		State   string `json:"state"`
		Shed    int64  `json:"shed_total"`
	}
	if err := json.Unmarshal([]byte(ctlBody), &ctlOut); err != nil {
		return fmt.Errorf("controlz: %w", err)
	}
	if !ctlOut.Enabled || ctlOut.State != "normal" || ctlOut.Shed != 0 {
		return fmt.Errorf("controlz unexpected: %s", ctlBody)
	}
	fmt.Printf("selftest: /controlz OK (state=%s)\n", ctlOut.State)

	text, err := get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range selftestSeries {
		if !strings.Contains(text, series) {
			return fmt.Errorf("metrics: series %s missing from scrape", series)
		}
	}
	vals := metrics.ParseText(text)
	if got := vals["hermes_jobs_completed_total"]; got < float64(len(ids)) {
		return fmt.Errorf("metrics: hermes_jobs_completed_total = %g, want >= %d", got, len(ids))
	}
	if vals["hermes_job_energy_joules_total"] <= 0 {
		return fmt.Errorf("metrics: no job energy accounted")
	}
	if vals["hermes_job_latency_seconds_count"] < float64(len(ids)) {
		return fmt.Errorf("metrics: latency histogram did not observe all jobs")
	}
	if dropped := vals["hermes_observer_dropped_events_total"]; dropped != 0 {
		return fmt.Errorf("metrics: %g observer events dropped below buffer size", dropped)
	}
	fmt.Printf("selftest: metrics OK (%d series checked, %g jobs completed, %.3f J attributed)\n",
		len(selftestSeries), vals["hermes_jobs_completed_total"], vals["hermes_job_energy_joules_total"])
	return nil
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return string(body), nil
}

func expectOK(url string) error {
	_, err := get(url)
	return err
}

func submit(base, spec string) (int64, error) {
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out struct {
		ID int64 `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

func pollDone(base string, id int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// Capped exponential backoff: quick jobs resolve within a couple of
	// fast polls, slow ones don't get hammered at a fixed 5ms cadence.
	wait := 2 * time.Millisecond
	for time.Now().Before(deadline) {
		body, err := get(fmt.Sprintf("%s/jobs/%d", base, id))
		if err != nil {
			return err
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			return err
		}
		switch st.Status {
		case "done":
			return nil
		case "failed":
			return fmt.Errorf("job failed: %s", st.Error)
		}
		time.Sleep(wait)
		if wait *= 2; wait > 250*time.Millisecond {
			wait = 250 * time.Millisecond
		}
	}
	return fmt.Errorf("not done after %v", timeout)
}

// hermes-trace emits the 100 Hz power time series for one benchmark
// under static and dynamic scheduling — the data behind the paper's
// Figures 19–22 — as CSV on stdout.
//
// Usage:
//
//	hermes-trace -bench knn -workers 16 > knn16.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"hermes/internal/bench"
	"hermes/internal/core"
	"hermes/internal/cpu"
)

func main() {
	var (
		benchN  = flag.String("bench", "knn", "benchmark to trace")
		workers = flag.Int("workers", 16, "worker count")
		n       = flag.Int("n", 0, "input size (0 = default)")
		seed    = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	b, err := bench.ByName(*benchN)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-trace:", err)
		os.Exit(1)
	}
	size := *n
	if size == 0 {
		size = b.DefaultN
	}

	run := func(pol core.Scheduling) core.Report {
		load := b.Build(size, *seed)
		return core.Run(core.Config{
			Spec:       cpu.SystemA(),
			Workers:    *workers,
			Mode:       core.Unified,
			Scheduling: pol,
			Seed:       *seed,
		}, load.Root)
	}
	st := run(core.Static)
	dy := run(core.Dynamic)

	fmt.Println("t_seconds,static_watts,dynamic_watts")
	max := len(st.Samples)
	if len(dy.Samples) > max {
		max = len(dy.Samples)
	}
	for i := 0; i < max; i++ {
		var t float64
		stW, dyW := "", ""
		if i < len(st.Samples) {
			t = st.Samples[i].T.Seconds()
			stW = fmt.Sprintf("%.2f", st.Samples[i].Watts)
		}
		if i < len(dy.Samples) {
			t = dy.Samples[i].T.Seconds()
			dyW = fmt.Sprintf("%.2f", dy.Samples[i].Watts)
		}
		fmt.Printf("%.2f,%s,%s\n", t, stW, dyW)
	}
	fmt.Fprintf(os.Stderr, "static:  span=%v energy=%.2fJ\ndynamic: span=%v energy=%.2fJ\n",
		st.Span, st.EnergyJ, dy.Span, dy.EnergyJ)
}

// hermes-sim runs a single simulated workload under a chosen scheduler
// configuration and prints the detailed report — the low-level probe
// into the runtime (cmd/hermes-bench regenerates whole figures).
//
// Usage:
//
//	hermes-sim -system A -workers 8 -mode hermes -bench sort -n 300000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hermes/internal/bench"
	"hermes/internal/core"
	"hermes/internal/cpu"
	"hermes/internal/units"
)

func main() {
	var (
		system    = flag.String("system", "A", "machine model: A (32-core Opteron) or B (8-core FX-8150)")
		workers   = flag.Int("workers", 8, "number of workers (≤ clock domains)")
		mode      = flag.String("mode", "hermes", "scheduler mode: baseline | workpath | workload | hermes")
		schedPol  = flag.String("sched", "static", "worker-core mapping: static | dynamic")
		benchN    = flag.String("bench", "sort", "workload: "+strings.Join(bench.Names(), " | "))
		n         = flag.Int("n", 0, "input size (0 = workload default)")
		seed      = flag.Int64("seed", 1, "random seed")
		freqs     = flag.String("freqs", "", "comma-separated tempo GHz list, fastest first (e.g. 2.4,1.6)")
		compare   = flag.Bool("compare", false, "also run baseline and print savings/loss")
		perWorker = flag.Bool("perworker", false, "print per-worker residency breakdown")
	)
	flag.Parse()

	cfg := core.Config{Workers: *workers, Seed: *seed}
	switch strings.ToUpper(*system) {
	case "A":
		cfg.Spec = cpu.SystemA()
	case "B":
		cfg.Spec = cpu.SystemB()
	default:
		fatalf("unknown system %q", *system)
	}
	switch *mode {
	case "baseline":
		cfg.Mode = core.Baseline
	case "workpath":
		cfg.Mode = core.WorkpathOnly
	case "workload":
		cfg.Mode = core.WorkloadOnly
	case "hermes":
		cfg.Mode = core.Unified
	default:
		fatalf("unknown mode %q", *mode)
	}
	switch *schedPol {
	case "static":
		cfg.Scheduling = core.Static
	case "dynamic":
		cfg.Scheduling = core.Dynamic
	default:
		fatalf("unknown scheduling %q", *schedPol)
	}
	if *freqs != "" {
		for _, part := range strings.Split(*freqs, ",") {
			var ghz float64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%f", &ghz); err != nil {
				fatalf("bad frequency %q", part)
			}
			cfg.Freqs = append(cfg.Freqs, units.Freq(ghz*1e6)*units.KHz)
		}
	}

	if _, err := cfg.Validate(); err != nil {
		fatalf("%v", err)
	}

	b, err := bench.ByName(*benchN)
	if err != nil {
		fatalf("%v", err)
	}
	size := *n
	if size == 0 {
		size = b.DefaultN
	}
	load := b.Build(size, *seed)

	r := core.Run(cfg, load.Root)
	fmt.Println(r.String())
	if *perWorker {
		for i, pw := range r.PerWorker {
			fmt.Printf("  w%-2d busy=%-12v slowBusy=%-12v spin=%-12v slowSpin=%-12v idle=%-10v steals=%d\n",
				i, pw.Busy, pw.SlowBusy, pw.Spin, pw.SlowSpin, pw.Idle, pw.Steals)
		}
	}
	if load.Check != nil {
		if err := load.Check(); err != nil {
			fatalf("verification failed: %v", err)
		}
		fmt.Println("  result verified against sequential reference")
	}

	if *compare && cfg.Mode != core.Baseline {
		bcfg := cfg
		bcfg.Mode = core.Baseline
		bload := b.Build(size, *seed)
		br := core.Run(bcfg, bload.Root)
		save := 1 - r.EnergyJ/br.EnergyJ
		loss := r.Span.Seconds()/br.Span.Seconds() - 1
		edp := r.EDP / br.EDP
		fmt.Printf("vs baseline: energy saving %+.1f%%  time loss %+.1f%%  normalized EDP %.3f\n",
			100*save, 100*loss, edp)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hermes-sim: "+format+"\n", args...)
	os.Exit(1)
}
